package main

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"spectrebench/internal/attacks"
	"spectrebench/internal/engine"
	"spectrebench/internal/faultinject"
	"spectrebench/internal/grid"
	"spectrebench/internal/harness"
	"spectrebench/internal/optimize"
	"spectrebench/internal/store"
)

// optimizeOptions carries the optimize subcommand's flags.
type optimizeOptions struct {
	require   string
	workloads string
	uarchs    string
	combos    int
	prune     bool
	cfg       harness.RunConfig
	storeDir  string
	codec     string
	verbose   bool
}

// optimizeCmd searches the boot-param lattice for the cheapest
// configuration that blocks the required attack set, per uarch, and
// prints the report (including recovered overhead vs kernel defaults)
// to w. Exit codes follow run: 0 when every uarch has a secure optimum,
// 1 when some requirement is unsatisfiable or every secure evaluation
// errored, 2 on a usage error. Like gridbench, store bookkeeping and
// engine statistics go to stderr only.
func optimizeCmd(w io.Writer, opts optimizeOptions) int {
	require, err := attacks.ParseRequirement(opts.require)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spectrebench: -require: %v\n", err)
		return 2
	}
	var workloads []grid.WorkloadSpec
	for _, name := range splitList(opts.workloads) {
		ws, err := grid.LookupWorkload(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spectrebench: -workloads: %v\n", err)
			return 2
		}
		workloads = append(workloads, ws)
	}
	uarchs, err := optimize.SelectUarchs(splitList(opts.uarchs))
	if err != nil {
		fmt.Fprintf(os.Stderr, "spectrebench: -uarch: %v\n", err)
		return 2
	}

	// Fault activation follows gridbench exactly: the global activation
	// plus the seed stamped into every cell key, so faulted searches
	// neither pollute nor replay fault-free store entries.
	var seed uint64
	if opts.cfg.Faults {
		seed = opts.cfg.Seed
		faultinject.Activate(faultinject.Config{Seed: opts.cfg.Seed})
		defer faultinject.Deactivate()
	}

	eng := engine.Default()
	if opts.storeDir != "" {
		st, err := store.Open(opts.storeDir, store.Options{
			Codec: opts.codec,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "spectrebench: "+format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "spectrebench: -store: %v\n", err)
			return 2
		}
		eng.SetSecondLevel(st)
		defer func() {
			fmt.Fprintln(os.Stderr, "spectrebench: "+st.Note())
			if err := st.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "spectrebench: store close: %v\n", err)
			}
		}()
	}

	start := time.Now()
	res, err := optimize.Search(eng, optimize.Options{
		Require:   require,
		Workloads: workloads,
		Uarchs:    uarchs,
		Combos:    opts.combos,
		Prune:     opts.prune,
		Seed:      seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "spectrebench: optimize: %v\n", err)
		return 1
	}
	res.Render(w, opts.verbose)
	fmt.Fprintf(os.Stderr,
		"spectrebench: optimize: %d classes evaluated across %d uarchs in %.2fs (jobs=%d, prune=%v)\n",
		res.Totals.Evaluated, len(res.PerUarch), time.Since(start).Seconds(),
		eng.Jobs(), opts.prune)
	if opts.verbose {
		fmt.Fprintf(os.Stderr, "spectrebench: engine: %s\n", eng.StatsDetail())
	}
	for _, u := range res.PerUarch {
		if u.Best == nil {
			return 1
		}
	}
	return 0
}

// splitList splits a comma-separated flag value, dropping empty tokens
// (so "" means "use defaults").
func splitList(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}
