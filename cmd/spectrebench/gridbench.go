package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"spectrebench/internal/engine"
	"spectrebench/internal/faultinject"
	"spectrebench/internal/gls"
	"spectrebench/internal/grid"
	"spectrebench/internal/harness"
	"spectrebench/internal/store"
)

// gridOptions carries the gridbench subcommand's flags.
type gridOptions struct {
	cells    int
	cfg      harness.RunConfig
	storeDir string
	codec    string
	batch    bool
	verbose  bool
}

// gridbench runs the synthetic boot-param configuration grid — the
// million-cell sweep throughput benchmark — writing one line per cell
// to w in submission order plus a deterministic trailer, so output is
// byte-identical across -jobs × -dedup × -plan × -batch × -codec ×
// -store settings (and across -faults runs at a fixed seed); timing and
// engine statistics go to stderr only, keeping w pipe-clean.
func gridbench(w io.Writer, opts gridOptions) int {
	if opts.cells <= 0 {
		fmt.Fprintln(os.Stderr, "spectrebench: gridbench: -cells must be positive")
		return 2
	}
	var seed uint64
	if opts.cfg.Faults {
		seed = opts.cfg.Seed
		faultinject.Activate(faultinject.Config{Seed: opts.cfg.Seed})
		defer faultinject.Deactivate()
	}
	cells := grid.Cells(opts.cells, seed)

	eng := engine.Default()
	// The canonicalizer is installed in every mode: with -dedup off it
	// no longer folds cells onto shared class tasks, but it still keys
	// each cell's fault seed and store identity canonically, which is
	// what keeps the ablation byte-identical.
	eng.SetCanonicalizer(grid.Canonicalizer(cells))

	if opts.storeDir != "" {
		st, err := store.Open(opts.storeDir, store.Options{
			Codec: opts.codec,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "spectrebench: "+format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "spectrebench: -store: %v\n", err)
			return 2
		}
		eng.SetSecondLevel(st)
		defer func() {
			fmt.Fprintln(os.Stderr, "spectrebench: "+st.Note())
			if err := st.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "spectrebench: store close: %v\n", err)
			}
		}()
	}

	start := time.Now()
	var tasks []*engine.Task
	if opts.batch {
		bcells := make([]engine.BatchCell, len(cells))
		for i, c := range cells {
			c := c
			bcells[i] = engine.BatchCell{Key: c.Display, Fn: c.Run}
		}
		tasks = eng.SubmitBatch(bcells)
	} else {
		tasks = make([]*engine.Task, len(cells))
		for i, c := range cells {
			c := c
			tasks[i] = eng.Submit(c.Display, c.Run)
		}
	}
	// Buffered result drain: per-cell Printf syscalls dominate warm
	// sweeps otherwise. Flushed once before the trailer-bearing return.
	// The batch path also drains batched: one goroutine-identity parse
	// (WaitG) and hand-rolled float formatting for the whole slice; the
	// -batch off path keeps the per-cell Wait round-trip it is the
	// ablation of. Both produce identical bytes (AppendFloat 'f'/2 is
	// %.2f).
	bw := bufio.NewWriterSize(w, 1<<16)
	failed := 0
	gid := gls.ID() // one parse for the whole drain loop
	line := make([]byte, 0, 128)
	for i, t := range tasks {
		c := cells[i]
		var v any
		var err error
		if opts.batch {
			v, err = t.WaitG(gid)
		} else {
			v, err = t.Wait()
		}
		if err != nil {
			failed++
			fmt.Fprintf(bw, "%s %s error: %v\n", c.Display.Uarch, c.Display.Config, err)
			continue
		}
		line = append(line[:0], c.Display.Uarch...)
		line = append(line, ' ')
		line = append(line, c.Display.Config...)
		line = append(line, " = "...)
		line = strconv.AppendFloat(line, v.(float64), 'f', 2, 64)
		line = append(line, " cyc\n"...)
		bw.Write(line)
	}
	elapsed := time.Since(start)
	classes := grid.Classes(cells)
	fmt.Fprintf(bw, "grid: %d cells, %d classes, %d failed\n", len(cells), classes, failed)
	if err := bw.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "spectrebench: gridbench: write: %v\n", err)
		return 1
	}

	d := eng.StatsDetail()
	fmt.Fprintf(os.Stderr,
		"spectrebench: gridbench: %d cells in %.2fs (%.0f cells/sec, jobs=%d, dedup=%v, plan=%v, batch=%v, dedup ratio %.1fx)\n",
		len(cells), elapsed.Seconds(), float64(len(cells))/elapsed.Seconds(),
		eng.Jobs(), eng.DedupEnabled(), eng.PlanEnabled(), opts.batch,
		float64(len(cells))/float64(classes))
	if opts.verbose {
		fmt.Fprintf(os.Stderr, "spectrebench: engine: %s\n", d)
		fmt.Fprintf(os.Stderr,
			"spectrebench: gridbench: examined %d configs -> %d classes; %d simulated, %d replayed from store\n",
			len(cells), d.Classes, d.Simulated, d.SecondLevelHits)
	}
	if failed > 0 {
		return 1
	}
	return 0
}
