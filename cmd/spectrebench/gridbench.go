package main

import (
	"fmt"
	"os"
	"time"

	"spectrebench/internal/engine"
	"spectrebench/internal/faultinject"
	"spectrebench/internal/grid"
	"spectrebench/internal/harness"
	"spectrebench/internal/store"
)

// gridbench runs the synthetic boot-param configuration grid — the
// million-cell sweep throughput benchmark. One line per cell on stdout
// in submission order plus a deterministic trailer, so output is
// byte-identical across -jobs × -dedup × -plan × -store settings (and
// across -faults runs at a fixed seed); timing and engine statistics
// go to stderr.
func gridbench(n int, cfg harness.RunConfig, storeDir string, verbose bool) int {
	if n <= 0 {
		fmt.Fprintln(os.Stderr, "spectrebench: gridbench: -cells must be positive")
		return 2
	}
	var seed uint64
	if cfg.Faults {
		seed = cfg.Seed
		faultinject.Activate(faultinject.Config{Seed: cfg.Seed})
		defer faultinject.Deactivate()
	}
	cells := grid.Cells(n, seed)

	eng := engine.Default()
	// The canonicalizer is installed in every mode: with -dedup off it
	// no longer folds cells onto shared class tasks, but it still keys
	// each cell's fault seed and store identity canonically, which is
	// what keeps the ablation byte-identical.
	eng.SetCanonicalizer(grid.Canonicalizer(cells))

	if storeDir != "" {
		st, err := store.Open(storeDir, store.Options{
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "spectrebench: "+format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "spectrebench: -store: %v\n", err)
			return 2
		}
		eng.SetSecondLevel(st)
		defer func() {
			fmt.Fprintln(os.Stderr, "spectrebench: "+st.Note())
			if err := st.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "spectrebench: store close: %v\n", err)
			}
		}()
	}

	start := time.Now()
	tasks := make([]*engine.Task, len(cells))
	for i, c := range cells {
		c := c
		tasks[i] = eng.Submit(c.Display, c.Run)
	}
	failed := 0
	for i, t := range tasks {
		c := cells[i]
		v, err := t.Wait()
		if err != nil {
			failed++
			fmt.Printf("%s %s error: %v\n", c.Display.Uarch, c.Display.Config, err)
			continue
		}
		fmt.Printf("%s %s = %.2f cyc\n", c.Display.Uarch, c.Display.Config, v.(float64))
	}
	elapsed := time.Since(start)
	classes := grid.Classes(cells)
	fmt.Printf("grid: %d cells, %d classes, %d failed\n", len(cells), classes, failed)

	d := eng.StatsDetail()
	fmt.Fprintf(os.Stderr,
		"spectrebench: gridbench: %d cells in %.2fs (%.0f cells/sec, jobs=%d, dedup=%v, plan=%v, dedup ratio %.1fx)\n",
		len(cells), elapsed.Seconds(), float64(len(cells))/elapsed.Seconds(),
		eng.Jobs(), eng.DedupEnabled(), eng.PlanEnabled(),
		float64(len(cells))/float64(classes))
	if verbose {
		fmt.Fprintf(os.Stderr, "spectrebench: engine: %s\n", d)
	}
	if failed > 0 {
		return 1
	}
	return 0
}
