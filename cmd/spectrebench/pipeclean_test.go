package main

import (
	"bytes"
	"strings"
	"testing"

	"spectrebench/internal/harness"
)

// TestRunStdoutIsPipeClean pins the S1 contract: everything run()
// writes to its output writer is result-table bytes — the cell-cache
// note, store notes and -v breakdowns all go to stderr. A stats line
// leaking into w breaks `spectrebench run | sort | md5sum` pipelines
// and the CI ablation diffs built on them.
func TestRunStdoutIsPipeClean(t *testing.T) {
	var buf bytes.Buffer
	if code := run(&buf, []string{"table2"}, false, harness.RunConfig{}, "", "v3", true); code != 0 {
		t.Fatalf("run returned %d", code)
	}
	out := buf.String()
	if out == "" {
		t.Fatal("run wrote nothing")
	}
	for _, bad := range []string{"spectrebench:", "cell cache", "engine:"} {
		if strings.Contains(out, bad) {
			t.Errorf("stdout contains %q — stats leaked off stderr:\n%s", bad, out)
		}
	}
	// Exactly the render of the same experiment: no extra prefix/suffix.
	if !strings.HasPrefix(out, "table2 — ") {
		t.Errorf("stdout does not start with the result table:\n%.120s", out)
	}
}

// TestGridbenchStdoutIsPipeClean: gridbench's writer carries one line
// per cell plus the deterministic trailer, nothing else, even with -v
// and a store attached (both print to stderr only).
func TestGridbenchStdoutIsPipeClean(t *testing.T) {
	var buf bytes.Buffer
	code := gridbench(&buf, gridOptions{
		cells:    200,
		cfg:      harness.RunConfig{},
		storeDir: t.TempDir(),
		codec:    "v3",
		batch:    true,
		verbose:  true,
	})
	if code != 0 {
		t.Fatalf("gridbench returned %d", code)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 201 {
		t.Fatalf("stdout holds %d lines, want 200 cells + trailer", len(lines))
	}
	for i, line := range lines[:200] {
		if !strings.Contains(line, " cyc") || strings.Contains(line, "spectrebench") {
			t.Errorf("line %d is not a cell result: %q", i, line)
		}
	}
	if !strings.HasPrefix(lines[200], "grid: 200 cells, ") {
		t.Errorf("trailer = %q", lines[200])
	}
}
