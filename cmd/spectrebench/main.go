// Command spectrebench reproduces the tables and figures of
// "Performance Evolution of Mitigating Transient Execution Attacks"
// (Behrens, Belay, Kaashoek — EuroSys 2022) on the repository's
// simulated CPUs.
//
// Usage:
//
//	spectrebench list                 list available experiments
//	spectrebench run <id> [...]      run one or more experiments
//	spectrebench run all             run everything
//	spectrebench -csv run <id>       CSV output instead of text tables
//
// Example:
//
//	spectrebench run table3 fig2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"spectrebench/internal/harness"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "list":
		list()
	case "run":
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "run: need at least one experiment id (or 'all')")
			os.Exit(2)
		}
		if err := run(args[1:], *csv); err != nil {
			fmt.Fprintln(os.Stderr, "spectrebench:", err)
			os.Exit(1)
		}
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `spectrebench — reproduce "Performance Evolution of Mitigating Transient Execution Attacks"

usage:
  spectrebench list
  spectrebench [-csv] run <experiment-id>... | all

experiments:
`)
	for _, e := range harness.All() {
		fmt.Fprintf(os.Stderr, "  %-16s %-12s %s\n", e.ID, e.Paper, e.Title)
	}
}

func list() {
	for _, e := range harness.All() {
		fmt.Printf("%-16s %-12s %s\n", e.ID, e.Paper, e.Title)
	}
}

func run(ids []string, csv bool) error {
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil
		for _, e := range harness.All() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		e, ok := harness.Lookup(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try 'spectrebench list')", id)
		}
		start := time.Now()
		tbl, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if csv {
			fmt.Print(tbl.CSV())
		} else {
			fmt.Print(tbl.Render())
			fmt.Printf("(%s, %.1fs)\n\n", e.Paper, time.Since(start).Seconds())
		}
	}
	return nil
}
