// Command spectrebench reproduces the tables and figures of
// "Performance Evolution of Mitigating Transient Execution Attacks"
// (Behrens, Belay, Kaashoek — EuroSys 2022) on the repository's
// simulated CPUs.
//
// Usage:
//
//	spectrebench list                 list available experiments
//	spectrebench run <id> [...]      run one or more experiments
//	spectrebench run all             run everything
//	spectrebench -csv run <id>       CSV output instead of text tables
//	spectrebench -faults -seed 7 run all
//	                                  run under deterministic fault injection
//	spectrebench -jobs 8 run all     run on 8 workers (same bytes as -jobs 1)
//
// Every experiment runs under a crash-safe supervisor: panics are
// caught, runaway experiments are stopped by a simulated-cycle
// watchdog, ambiguous probe readings are retried, and `run` keeps going
// past failures, printing a summary table and exiting nonzero at the
// end. Experiments decompose into simulation cells that are memoized
// and scheduled across a worker pool; output for a fixed seed is
// byte-identical across runs and across -jobs values.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"spectrebench/internal/cpu"
	"spectrebench/internal/engine"
	"spectrebench/internal/harness"
)

func main() {
	os.Exit(mainExitCode())
}

// mainExitCode is main with the exit code returned instead of called,
// so the profile-writing defers run before the process exits.
func mainExitCode() int {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	seed := flag.Uint64("seed", 1, "deterministic seed for fault injection")
	faults := flag.Bool("faults", false, "enable deterministic fault injection at the named fault points")
	cycleBudget := flag.Uint64("cycle-budget", harness.DefaultCycleBudget,
		"per-core watchdog budget in simulated cycles (0 disables)")
	retries := flag.Int("retries", harness.DefaultRetries,
		"max re-runs of an inconclusive or fault-injected failing experiment")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0),
		"worker pool size for experiments and simulation cells")
	blockcache := flag.String("blockcache", "on",
		"decoded basic-block cache for the CPU interpreter: on|off (ablation; output is byte-identical either way)")
	corepool := flag.String("corepool", "on",
		"recycle CPU core structures between simulation cells: on|off (ablation; output is byte-identical either way)")
	memfast := flag.String("memfast", "on",
		"memory-path fast path (epoch-stamped flushes, MRU way hits, translation/page caching): on|off (ablation; output is byte-identical either way)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Usage = usage
	flag.Parse()

	engine.SetDefaultJobs(*jobs)
	switch *blockcache {
	case "on":
		cpu.SetDefaultBlockCache(true)
	case "off":
		cpu.SetDefaultBlockCache(false)
	default:
		fmt.Fprintf(os.Stderr, "spectrebench: -blockcache must be on or off, got %q\n", *blockcache)
		return 2
	}
	switch *corepool {
	case "on":
		cpu.SetDefaultCorePool(true)
	case "off":
		cpu.SetDefaultCorePool(false)
	default:
		fmt.Fprintf(os.Stderr, "spectrebench: -corepool must be on or off, got %q\n", *corepool)
		return 2
	}
	switch *memfast {
	case "on":
		cpu.SetDefaultMemFast(true)
	case "off":
		cpu.SetDefaultMemFast(false)
	default:
		fmt.Fprintf(os.Stderr, "spectrebench: -memfast must be on or off, got %q\n", *memfast)
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spectrebench: -cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "spectrebench: -cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spectrebench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "spectrebench: -memprofile: %v\n", err)
			}
		}()
	}

	cfg := harness.RunConfig{
		Seed:        *seed,
		Faults:      *faults,
		Retries:     *retries,
		CycleBudget: *cycleBudget,
	}
	if *cycleBudget == 0 {
		cfg.CycleBudget = harness.NoCycleBudget
	}

	args := flag.Args()
	if len(args) == 0 {
		usage()
		return 2
	}
	switch args[0] {
	case "list":
		list()
		return 0
	case "run":
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "run: need at least one experiment id (or 'all')")
			return 2
		}
		return run(args[1:], *csv, cfg)
	default:
		usage()
		return 2
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `spectrebench — reproduce "Performance Evolution of Mitigating Transient Execution Attacks"

usage:
  spectrebench list
  spectrebench [-csv] [-faults] [-seed N] [-cycle-budget N] [-retries N] [-jobs N]
               [-blockcache on|off] [-corepool on|off] [-memfast on|off]
               [-cpuprofile FILE] [-memprofile FILE] run <experiment-id>... | all

experiments:
`)
	for _, e := range harness.All() {
		fmt.Fprintf(os.Stderr, "  %-16s %-12s %s\n", e.ID, e.Paper, e.Title)
	}
}

func list() {
	for _, e := range harness.All() {
		fmt.Printf("%-16s %-12s %s\n", e.ID, e.Paper, e.Title)
	}
}

// run supervises the selected experiments on the worker pool and
// returns the process exit code: 0 when every experiment completed ok,
// 1 otherwise (after all of them have run), 2 on a usage error.
func run(ids []string, csv bool, cfg harness.RunConfig) int {
	var exps []harness.Experiment
	if len(ids) == 1 && ids[0] == "all" {
		exps = harness.All()
	} else {
		for _, id := range ids {
			e, ok := harness.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "spectrebench: unknown experiment %q (try 'spectrebench list')\n", id)
				return 2
			}
			exps = append(exps, e)
		}
	}

	results := harness.SuperviseAll(exps, cfg)
	fmt.Print(harness.RenderResults(results, csv, engine.Default()))
	if harness.Failed(results) > 0 {
		return 1
	}
	return 0
}
