// Command spectrebench reproduces the tables and figures of
// "Performance Evolution of Mitigating Transient Execution Attacks"
// (Behrens, Belay, Kaashoek — EuroSys 2022) on the repository's
// simulated CPUs.
//
// Usage:
//
//	spectrebench list                 list available experiments
//	spectrebench run <id> [...]      run one or more experiments
//	spectrebench run all             run everything
//	spectrebench -csv run <id>       CSV output instead of text tables
//	spectrebench -faults -seed 7 run all
//	                                  run under deterministic fault injection
//
// Every experiment runs under a crash-safe supervisor: panics are
// caught, runaway experiments are stopped by a simulated-cycle
// watchdog, ambiguous probe readings are retried, and `run` keeps going
// past failures, printing a summary table and exiting nonzero at the
// end. Output for a fixed seed is byte-identical across runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"spectrebench/internal/harness"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	seed := flag.Uint64("seed", 1, "deterministic seed for fault injection")
	faults := flag.Bool("faults", false, "enable deterministic fault injection at the named fault points")
	cycleBudget := flag.Uint64("cycle-budget", harness.DefaultCycleBudget,
		"per-core watchdog budget in simulated cycles (0 disables)")
	retries := flag.Int("retries", harness.DefaultRetries,
		"max re-runs of an inconclusive or fault-injected failing experiment")
	flag.Usage = usage
	flag.Parse()

	cfg := harness.RunConfig{
		Seed:        *seed,
		Faults:      *faults,
		Retries:     *retries,
		CycleBudget: *cycleBudget,
	}
	if *cycleBudget == 0 {
		cfg.CycleBudget = harness.NoCycleBudget
	}

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "list":
		list()
	case "run":
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "run: need at least one experiment id (or 'all')")
			os.Exit(2)
		}
		os.Exit(run(args[1:], *csv, cfg))
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `spectrebench — reproduce "Performance Evolution of Mitigating Transient Execution Attacks"

usage:
  spectrebench list
  spectrebench [-csv] [-faults] [-seed N] [-cycle-budget N] [-retries N] run <experiment-id>... | all

experiments:
`)
	for _, e := range harness.All() {
		fmt.Fprintf(os.Stderr, "  %-16s %-12s %s\n", e.ID, e.Paper, e.Title)
	}
}

func list() {
	for _, e := range harness.All() {
		fmt.Printf("%-16s %-12s %s\n", e.ID, e.Paper, e.Title)
	}
}

// run supervises the selected experiments and returns the process exit
// code: 0 when every experiment completed ok, 1 otherwise (after all of
// them have run), 2 on a usage error.
func run(ids []string, csv bool, cfg harness.RunConfig) int {
	var exps []harness.Experiment
	if len(ids) == 1 && ids[0] == "all" {
		exps = harness.All()
	} else {
		for _, id := range ids {
			e, ok := harness.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "spectrebench: unknown experiment %q (try 'spectrebench list')\n", id)
				return 2
			}
			exps = append(exps, e)
		}
	}

	results := make([]harness.Result, 0, len(exps))
	for _, e := range exps {
		res := harness.Supervise(e, cfg)
		results = append(results, res)
		switch {
		case res.Status == harness.StatusOK && csv:
			fmt.Print(res.Table.CSV())
		case res.Status == harness.StatusOK:
			fmt.Print(res.Table.Render())
			fmt.Printf("(%s, %.1fM simulated cycles)\n\n", e.Paper, float64(res.Cycles)/1e6)
		default:
			// Graceful degradation: report inline and keep going.
			fmt.Printf("%s — %s\n  status: %s\n  error:  %v\n\n", e.ID, e.Title, res.Status, res.Err)
		}
	}

	summary := harness.SummaryTable(results)
	if csv {
		fmt.Print(summary.CSV())
	} else {
		fmt.Print(summary.Render())
	}
	if harness.Failed(results) > 0 {
		return 1
	}
	return 0
}
