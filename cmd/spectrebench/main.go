// Command spectrebench reproduces the tables and figures of
// "Performance Evolution of Mitigating Transient Execution Attacks"
// (Behrens, Belay, Kaashoek — EuroSys 2022) on the repository's
// simulated CPUs.
//
// Usage:
//
//	spectrebench list                 list available experiments
//	spectrebench run <id> [...]      run one or more experiments
//	spectrebench run all             run everything
//	spectrebench -csv run <id>       CSV output instead of text tables
//	spectrebench -faults -seed 7 run all
//	                                  run under deterministic fault injection
//	spectrebench -jobs 8 run all     run on 8 workers (same bytes as -jobs 1)
//	spectrebench -store DIR run all  persist simulation cells across runs
//	spectrebench -store DIR serve    sweep-as-a-service HTTP daemon
//	spectrebench client run all      run a sweep against a daemon
//	spectrebench -cells 100000 gridbench
//	                                  sweep a synthetic boot-param config grid
//	spectrebench -require default optimize
//	                                  find the cheapest secure mitigation config per uarch
//
// Every experiment runs under a crash-safe supervisor: panics are
// caught, runaway experiments are stopped by a simulated-cycle
// watchdog, ambiguous probe readings are retried, and `run` keeps going
// past failures, printing a summary table and exiting nonzero at the
// end. Experiments decompose into simulation cells that are memoized
// and scheduled across a worker pool; output for a fixed seed is
// byte-identical across runs and across -jobs values.
//
// With -store, completed cells are additionally persisted to a
// crash-safe on-disk store and replayed on later runs (or by the serve
// daemon), without changing a single output byte: store bookkeeping
// prints to stderr only. `serve` exposes the same sweeps over HTTP with
// admission control, per-request deadlines and graceful drain on
// SIGTERM; `client` submits sweeps to a daemon with retry and
// exponential backoff, printing results byte-identical to a local run.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	checkpointpkg "spectrebench/internal/checkpoint"
	"spectrebench/internal/cpu"
	"spectrebench/internal/engine"
	"spectrebench/internal/harness"
	"spectrebench/internal/server"
	"spectrebench/internal/store"
)

func main() {
	os.Exit(mainExitCode())
}

// mainExitCode is main with the exit code returned instead of called,
// so the profile-writing defers run before the process exits.
func mainExitCode() int {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	seed := flag.Uint64("seed", 1, "deterministic seed for fault injection")
	faults := flag.Bool("faults", false, "enable deterministic fault injection at the named fault points")
	cycleBudget := flag.Uint64("cycle-budget", harness.DefaultCycleBudget,
		"per-core watchdog budget in simulated cycles (0 disables)")
	retries := flag.Int("retries", harness.DefaultRetries,
		"max re-runs of an inconclusive or fault-injected failing experiment")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0),
		"worker pool size for experiments and simulation cells")
	blockcache := flag.String("blockcache", "on",
		"decoded basic-block cache for the CPU interpreter: on|off (ablation; output is byte-identical either way)")
	corepool := flag.String("corepool", "on",
		"recycle CPU core structures between simulation cells: on|off (ablation; output is byte-identical either way)")
	memfast := flag.String("memfast", "on",
		"memory-path fast path (epoch-stamped flushes, MRU way hits, translation/page caching): on|off (ablation; output is byte-identical either way)")
	superblock := flag.String("superblock", "on",
		"superblock chaining: follow resolved branch exits block-to-block (trace formation): on|off (ablation; output is byte-identical either way)")
	checkpoint := flag.String("checkpoint", "on",
		"checkpointed warmup: fork cells sharing a warmup prefix from copy-on-write snapshots: on|off (ablation; output is byte-identical either way)")
	dedup := flag.String("dedup", "on",
		"canonical-key dedup: fold cells whose configs lower to the same effective mitigation set into one simulation: on|off (ablation; output is byte-identical either way)")
	plan := flag.String("plan", "on",
		"prefix-locality planner: bucket pending cells by shared warmup prefix so workers drain one bucket at a time: on|off (ablation; output is byte-identical either way)")
	cells := flag.Int("cells", 10000, "gridbench: number of synthetic grid cells to sweep")
	require := flag.String("require", "default",
		"optimize: attack set to block — comma-separated taxonomy IDs, \"default\" (default threat model) or \"all\"")
	workloads := flag.String("workloads", "",
		"optimize: comma-separated cost-objective workloads (empty = the grid default workload)")
	uarch := flag.String("uarch", "",
		"optimize: comma-separated uarch names to search (empty = all models)")
	prune := flag.String("prune", "on",
		"optimize: dominance pruning on|off (ablation; the optima are byte-identical either way)")
	combos := flag.Int("combos", 0,
		"optimize: restrict the lattice to the first N boot-param combos per uarch (0 = full lattice)")
	batch := flag.String("batch", "on",
		"batch submission: enqueue each grid slice as one planner unit with inline fan-out of finished classes: on|off (ablation; output is byte-identical either way)")
	codec := flag.String("codec", "v3",
		"store record codec: v3 (binary records, sidecar links, manifest) or v2 (legacy gob replay ablation; output is byte-identical either way)")
	gzipHTTP := flag.String("gzip", "on",
		"client: request gzip-compressed sweep streams from the daemon: on|off (transport only; output is byte-identical either way)")
	verbose := flag.Bool("v", false, "print the engine's cell-cache breakdown to stderr after run/gridbench")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	storeDir := flag.String("store", "",
		"persist simulation cells to this crash-safe on-disk store (run, serve)")
	addr := flag.String("addr", "127.0.0.1:8077", "listen address (serve) / daemon address (client)")
	maxInflight := flag.Int("max-inflight", 4,
		"serve: max concurrently admitted sweeps before refusing with 429")
	requestTimeout := flag.Duration("request-timeout", 5*time.Minute,
		"serve: wall-clock cap per sweep; client: requested sweep deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"serve: how long SIGTERM waits for in-flight sweeps before exiting")
	httpRetries := flag.Int("http-retries", 4,
		"client: max retries of a sweep after a transient error (connection refused, 429, 503)")
	flag.Usage = usage
	flag.Parse()

	engine.SetDefaultJobs(*jobs)
	switch *dedup {
	case "on":
		engine.SetDedupDefault(true)
	case "off":
		engine.SetDedupDefault(false)
	default:
		fmt.Fprintf(os.Stderr, "spectrebench: -dedup must be on or off, got %q\n", *dedup)
		return 2
	}
	switch *plan {
	case "on":
		engine.SetPlanDefault(true)
	case "off":
		engine.SetPlanDefault(false)
	default:
		fmt.Fprintf(os.Stderr, "spectrebench: -plan must be on or off, got %q\n", *plan)
		return 2
	}
	switch *blockcache {
	case "on":
		cpu.SetDefaultBlockCache(true)
	case "off":
		cpu.SetDefaultBlockCache(false)
	default:
		fmt.Fprintf(os.Stderr, "spectrebench: -blockcache must be on or off, got %q\n", *blockcache)
		return 2
	}
	switch *corepool {
	case "on":
		cpu.SetDefaultCorePool(true)
	case "off":
		cpu.SetDefaultCorePool(false)
	default:
		fmt.Fprintf(os.Stderr, "spectrebench: -corepool must be on or off, got %q\n", *corepool)
		return 2
	}
	switch *memfast {
	case "on":
		cpu.SetDefaultMemFast(true)
	case "off":
		cpu.SetDefaultMemFast(false)
	default:
		fmt.Fprintf(os.Stderr, "spectrebench: -memfast must be on or off, got %q\n", *memfast)
		return 2
	}
	switch *superblock {
	case "on":
		cpu.SetDefaultSuperblock(true)
	case "off":
		cpu.SetDefaultSuperblock(false)
	default:
		fmt.Fprintf(os.Stderr, "spectrebench: -superblock must be on or off, got %q\n", *superblock)
		return 2
	}
	switch *checkpoint {
	case "on":
		checkpointpkg.SetDefault(true)
	case "off":
		checkpointpkg.SetDefault(false)
	default:
		fmt.Fprintf(os.Stderr, "spectrebench: -checkpoint must be on or off, got %q\n", *checkpoint)
		return 2
	}
	if *prune != "on" && *prune != "off" {
		fmt.Fprintf(os.Stderr, "spectrebench: -prune must be on or off, got %q\n", *prune)
		return 2
	}
	if *batch != "on" && *batch != "off" {
		fmt.Fprintf(os.Stderr, "spectrebench: -batch must be on or off, got %q\n", *batch)
		return 2
	}
	if *codec != store.CodecV3 && *codec != store.CodecV2 {
		fmt.Fprintf(os.Stderr, "spectrebench: -codec must be %s or %s, got %q\n", store.CodecV3, store.CodecV2, *codec)
		return 2
	}
	if *gzipHTTP != "on" && *gzipHTTP != "off" {
		fmt.Fprintf(os.Stderr, "spectrebench: -gzip must be on or off, got %q\n", *gzipHTTP)
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spectrebench: -cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "spectrebench: -cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "spectrebench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "spectrebench: -memprofile: %v\n", err)
			}
		}()
	}

	cfg := harness.RunConfig{
		Seed:        *seed,
		Faults:      *faults,
		Retries:     *retries,
		CycleBudget: *cycleBudget,
	}
	if *cycleBudget == 0 {
		cfg.CycleBudget = harness.NoCycleBudget
	}

	args := flag.Args()
	if len(args) == 0 {
		usage()
		return 2
	}
	switch args[0] {
	case "list":
		list()
		return 0
	case "run":
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "run: need at least one experiment id (or 'all')")
			return 2
		}
		return run(os.Stdout, args[1:], *csv, cfg, *storeDir, *codec, *verbose)
	case "gridbench":
		return gridbench(os.Stdout, gridOptions{
			cells:    *cells,
			cfg:      cfg,
			storeDir: *storeDir,
			codec:    *codec,
			batch:    *batch == "on",
			verbose:  *verbose,
		})
	case "optimize":
		return optimizeCmd(os.Stdout, optimizeOptions{
			require:   *require,
			workloads: *workloads,
			uarchs:    *uarch,
			combos:    *combos,
			prune:     *prune == "on",
			cfg:       cfg,
			storeDir:  *storeDir,
			codec:     *codec,
			verbose:   *verbose,
		})
	case "serve":
		return serve(serveOptions{
			storeDir:       *storeDir,
			codec:          *codec,
			addr:           *addr,
			maxInflight:    *maxInflight,
			requestTimeout: *requestTimeout,
			drainTimeout:   *drainTimeout,
		})
	case "client":
		if len(args) < 3 || args[1] != "run" {
			fmt.Fprintln(os.Stderr, "client: usage: spectrebench [-addr HOST:PORT] client run <experiment-id>... | all")
			return 2
		}
		return clientRun(args[2:], *csv, cfg, *addr, *httpRetries, *requestTimeout, *gzipHTTP == "on")
	default:
		usage()
		return 2
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `spectrebench — reproduce "Performance Evolution of Mitigating Transient Execution Attacks"

usage:
  spectrebench list
  spectrebench [-csv] [-faults] [-seed N] [-cycle-budget N] [-retries N] [-jobs N]
               [-blockcache on|off] [-corepool on|off] [-memfast on|off]
               [-superblock on|off] [-checkpoint on|off] [-dedup on|off]
               [-plan on|off] [-cpuprofile FILE] [-memprofile FILE] [-store DIR]
               [-codec v3|v2] [-v] run <experiment-id>... | all
  spectrebench [-cells N] [-faults] [-seed N] [-jobs N] [-dedup on|off]
               [-plan on|off] [-batch on|off] [-store DIR] [-codec v3|v2]
               [-v] gridbench
  spectrebench [-require IDS] [-workloads W,...] [-uarch U,...] [-prune on|off]
               [-combos N] [-faults] [-seed N] [-jobs N] [-store DIR]
               [-codec v3|v2] [-v] optimize
  spectrebench [-store DIR] [-codec v3|v2] [-addr HOST:PORT] [-max-inflight N]
               [-request-timeout D] [-drain-timeout D] [-jobs N] serve
  spectrebench [-addr HOST:PORT] [-http-retries N] [-request-timeout D]
               [-csv] [-faults] [-seed N] [-cycle-budget N] [-retries N]
               [-gzip on|off] client run <experiment-id>... | all

experiments:
`)
	for _, e := range harness.All() {
		fmt.Fprintf(os.Stderr, "  %-16s %-12s %s\n", e.ID, e.Paper, e.Title)
	}
}

func list() {
	for _, e := range harness.All() {
		fmt.Printf("%-16s %-12s %s\n", e.ID, e.Paper, e.Title)
	}
}

// run supervises the selected experiments on the worker pool, writes
// the rendered results to w, and returns the process exit code: 0 when
// every experiment completed ok, 1 otherwise (after all of them have
// run), 2 on a usage error. All statistics and bookkeeping — the cell
// cache note, store notes, -v breakdowns — go to stderr, so w carries
// exactly the result tables: pipe-clean, and byte-identical to a
// store-less run, an HTTP-fetched sweep, or any ablation flag setting.
func run(w io.Writer, ids []string, csv bool, cfg harness.RunConfig, storeDir, codec string, verbose bool) int {
	var exps []harness.Experiment
	if len(ids) == 1 && ids[0] == "all" {
		exps = harness.All()
	} else {
		for _, id := range ids {
			e, ok := harness.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "spectrebench: unknown experiment %q (try 'spectrebench list')\n", id)
				return 2
			}
			exps = append(exps, e)
		}
	}

	if storeDir != "" {
		st, err := store.Open(storeDir, store.Options{
			Codec: codec,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "spectrebench: "+format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "spectrebench: -store: %v\n", err)
			return 2
		}
		engine.Default().SetSecondLevel(st)
		defer func() {
			fmt.Fprintln(os.Stderr, "spectrebench: "+st.Note())
			if err := st.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "spectrebench: store close: %v\n", err)
			}
		}()
	}

	results := harness.SuperviseAll(exps, cfg)
	// Rendered with a nil engine — the same bytes the HTTP serving path
	// streams — and the cache note on stderr with the other stats.
	io.WriteString(w, harness.RenderResults(results, csv, nil))
	fmt.Fprintf(os.Stderr, "spectrebench: %s\n", harness.CacheNote(engine.Default()))
	if verbose {
		fmt.Fprintf(os.Stderr, "spectrebench: engine: %s\n", engine.Default().StatsDetail())
	}
	if harness.Failed(results) > 0 {
		return 1
	}
	return 0
}

// serveOptions carries the serve subcommand's flags.
type serveOptions struct {
	storeDir       string
	codec          string
	addr           string
	maxInflight    int
	requestTimeout time.Duration
	drainTimeout   time.Duration
}

// serve runs the sweep-as-a-service daemon until SIGTERM/SIGINT, then
// drains: no new sweeps are admitted, in-flight sweeps get
// drain-timeout to finish, and the engine and store shut down cleanly
// so every committed cell is readable by the next daemon.
func serve(opts serveOptions) int {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "spectrebench: "+format+"\n", args...)
	}

	var st *store.Store
	if opts.storeDir != "" {
		var err error
		st, err = store.Open(opts.storeDir, store.Options{Codec: opts.codec, Logf: logf})
		if err != nil {
			fmt.Fprintf(os.Stderr, "spectrebench: -store: %v\n", err)
			return 2
		}
		engine.Default().SetSecondLevel(st)
		logf("%s", st.Note())
	}

	srv := server.New(server.Config{
		Engine:         engine.Default(),
		Store:          st,
		MaxInflight:    opts.maxInflight,
		RequestTimeout: opts.requestTimeout,
		Logf:           logf,
	})
	httpSrv := &http.Server{Addr: opts.addr, Handler: srv.Handler()}

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spectrebench: serve: %v\n", err)
		return 2
	}
	logf("serving on http://%s (store: %s)", ln.Addr(), storeDesc(st))

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)

	select {
	case sig := <-sigCh:
		logf("received %v, draining (timeout %s)", sig, opts.drainTimeout)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "spectrebench: serve: %v\n", err)
		closeStore(st, logf)
		return 1
	}

	// Drain: refuse new sweeps, let in-flight work finish, then shut
	// down the listener, the engine and the store — in that order, so a
	// sweep completing during the drain still commits its cells.
	srv.BeginDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), opts.drainTimeout)
	defer cancel()
	if !srv.WaitIdle(drainCtx) {
		logf("drain timeout: abandoning in-flight work")
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	httpSrv.Shutdown(shutCtx)
	engine.CloseDefault()
	closeStore(st, logf)
	logf("shut down cleanly")
	return 0
}

func storeDesc(st *store.Store) string {
	if st == nil {
		return "none (memo cache only)"
	}
	return st.Dir()
}

func closeStore(st *store.Store, logf func(string, ...any)) {
	if st == nil {
		return
	}
	logf("%s", st.Note())
	if err := st.Close(); err != nil {
		logf("store close: %v", err)
	}
}

// clientRun submits one sweep to a daemon and prints the results
// byte-identically to a local run: per-experiment blocks in request
// order on stdout, the server-rendered summary after them, transport
// chatter on stderr. Transient failures (daemon restarting, admission
// control) are retried with exponential backoff.
func clientRun(ids []string, csv bool, cfg harness.RunConfig, addr string, retries int, timeout time.Duration, gzipOK bool) int {
	req := server.SweepRequest{
		Experiments: ids,
		Seed:        cfg.Seed,
		Faults:      cfg.Faults,
		CSV:         csv,
		TimeoutMs:   timeout.Milliseconds(),
	}
	budget := cfg.CycleBudget
	req.CycleBudget = &budget
	retriesVal := cfg.Retries
	req.Retries = &retriesVal

	cl := &server.Client{
		BaseURL:    "http://" + addr,
		MaxRetries: retries,
		Gzip:       gzipOK,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "spectrebench: "+format+"\n", args...)
		},
	}
	resp, err := cl.Sweep(context.Background(), req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spectrebench: client: %v\n", err)
		return 1
	}
	for _, rec := range resp.Results {
		if rec != nil {
			fmt.Print(rec.Rendered)
		}
	}
	fmt.Print(resp.Summary.Rendered)
	if resp.Summary.Failed > 0 || resp.Summary.TimedOut {
		return 1
	}
	return 0
}
