#!/bin/sh
# grid_bench.sh — emit BENCH_PR8.json: the recorded performance baseline
# for the million-cell sweep PR (canonical dedup + segmented store +
# prefix-locality planning).
#
# Two phases:
#
#   1. Byte-identity matrix at ID_CELLS cells (default 10000): gridbench
#      stdout must be identical across -dedup on/off x -plan on/off x
#      -jobs 1/4, across -faults runs at a fixed seed (its own
#      reference), and across store cold/warm runs — with the warm run
#      writing zero entries. Any divergence is fatal.
#   2. Headline timing at GRID_CELLS cells (default 100000): the 2x2
#      -dedup x -plan matrix at -jobs 4. The headline number is
#      dedup+plan versus the no-dedup/no-plan seed path.
#
# Wall clocks are only meaningful relative to the host; the JSON records
# nproc. CI runs both phases at 10k cells (GRID_CELLS=10000) for time;
# the committed BENCH_PR8.json is a 100k-cell run.
#
# Usage: scripts/grid_bench.sh [output.json]   (default BENCH_PR8.json)
set -eu

out=${1:-BENCH_PR8.json}
go=${GO:-go}
cells=${GRID_CELLS:-100000}
id_cells=${ID_CELLS:-10000}
reps=${BENCH_REPS:-3}
bin=$(mktemp /tmp/spectrebench.XXXXXX)
ref_txt=$(mktemp /tmp/sb_gridref.XXXXXX)
got_txt=$(mktemp /tmp/sb_gridgot.XXXXXX)
err_txt=$(mktemp /tmp/sb_griderr.XXXXXX)
store_dir=$(mktemp -d /tmp/sb_gridstore.XXXXXX)
trap 'rm -rf "$bin" "$ref_txt" "$got_txt" "$err_txt" "$store_dir"' EXIT

$go build -o "$bin" ./cmd/spectrebench

check_identical() { # check_identical <label>
    if ! cmp -s "$ref_txt" "$got_txt"; then
        echo "grid_bench.sh: FATAL: gridbench output for $1 differs from the reference" >&2
        diff "$ref_txt" "$got_txt" | head -20 >&2 || true
        exit 1
    fi
    echo "grid_bench.sh: $1: output identical" >&2
}

# ---- phase 1: byte-identity matrix ----
"$bin" -cells "$id_cells" -jobs 1 gridbench >"$ref_txt"
for d in on off; do
    for p in on off; do
        for j in 1 4; do
            "$bin" -cells "$id_cells" -jobs "$j" -dedup "$d" -plan "$p" gridbench >"$got_txt" 2>/dev/null
            check_identical "cells=$id_cells dedup=$d plan=$p jobs=$j"
        done
    done
done

# Fault runs compare against their own reference (fault-injected cells
# legitimately differ from clean ones; the matrix must still agree).
"$bin" -cells "$id_cells" -jobs 1 -faults -seed 7 gridbench >"$ref_txt"
for d in on off; do
    "$bin" -cells "$id_cells" -jobs 4 -faults -seed 7 -dedup "$d" gridbench >"$got_txt" 2>/dev/null
    check_identical "faults seed=7 dedup=$d jobs=4"
done

# Store cold then warm: same bytes, and the warm run must replay every
# class from the segment logs without writing anything.
"$bin" -cells "$id_cells" -jobs 1 gridbench >"$ref_txt"
"$bin" -cells "$id_cells" -jobs 4 -store "$store_dir" gridbench >"$got_txt" 2>"$err_txt"
check_identical "store=cold jobs=4"
"$bin" -cells "$id_cells" -jobs 4 -store "$store_dir" gridbench >"$got_txt" 2>"$err_txt"
check_identical "store=warm jobs=4"
warm_note=$(grep 'cell store:' "$err_txt")
case "$warm_note" in
*" 0 misses, 0 written,"*) ;;
*)
    echo "grid_bench.sh: FATAL: warm store run was not a pure replay: $warm_note" >&2
    exit 1
    ;;
esac
echo "grid_bench.sh: warm store replay clean: $warm_note" >&2

# ---- phase 2: headline timing ----
one_ns() { # one_ns <dedup> <plan>
    start=$(date +%s%N)
    "$bin" -cells "$cells" -jobs 4 -dedup "$1" -plan "$2" gridbench >"$got_txt" 2>/dev/null
    end=$(date +%s%N)
    echo $((end - start))
}

best_ns() { # best_ns <dedup> <plan> <reps>
    best=0
    for _rep in $(seq "$3"); do
        ns=$(one_ns "$1" "$2")
        if [ "$best" -eq 0 ] || [ "$ns" -lt "$best" ]; then best=$ns; fi
    done
    echo "$best"
}

# The slow (no-dedup) sides run once; the fast sides best-of-N.
off_off_ns=$(best_ns off off 1)
off_on_ns=$(best_ns off on 1)
on_off_ns=$(best_ns on off "$reps")
on_on_ns=$(best_ns on on "$reps")

# Cells/classes from the deterministic trailer of the last run.
trailer=$(tail -1 "$got_txt") # "grid: N cells, C classes, F failed"
n_cells=$(echo "$trailer" | awk '{print $2}')
n_classes=$(echo "$trailer" | awk '{print $4}')

ratio() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.2f", a / b }'; }

cat >"$out" <<EOF
{
  "pr": 8,
  "description": "million-cell sweep baseline: wall-clock ns for 'spectrebench gridbench' across -dedup and -plan at -jobs 4, plus the dedup ratio of the synthetic boot-param grid",
  "host": {
    "nproc": $(nproc),
    "note": "identity matrix verified at $id_cells cells (dedup x plan x jobs x faults x store-cold/warm); timings at $cells cells, slow sides best-of-1, fast sides best-of-$reps"
  },
  "grid": {
    "cells": $n_cells,
    "classes": $n_classes,
    "dedup_ratio": $(ratio "$n_cells" "$n_classes")
  },
  "gridbench_wall_ns": {
    "jobs4_dedup_off_plan_off": $off_off_ns,
    "jobs4_dedup_off_plan_on": $off_on_ns,
    "jobs4_dedup_on_plan_off": $on_off_ns,
    "jobs4_dedup_on_plan_on": $on_on_ns,
    "speedup_total": $(ratio "$off_off_ns" "$on_on_ns"),
    "speedup_dedup_only": $(ratio "$off_off_ns" "$on_off_ns"),
    "speedup_plan_only": $(ratio "$off_off_ns" "$off_on_ns"),
    "output_identical_across_matrix": true
  }
}
EOF
echo "wrote $out (total speedup $(ratio "$off_off_ns" "$on_on_ns")x over no-dedup/no-plan at $cells cells)" >&2
