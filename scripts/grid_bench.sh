#!/bin/sh
# grid_bench.sh — emit BENCH_PR9.json: the recorded performance baseline
# for the replay & fan-out fast path PR (batch submission + inline
# fan-out, v3 canonical-keyed store records, sidecar links, manifest).
#
# Two phases:
#
#   1. Byte-identity matrix at ID_CELLS cells (default 10000): gridbench
#      stdout must be identical across -batch on/off x -dedup on/off x
#      -jobs 1/4, across -plan off, across -faults runs at a fixed seed
#      (their own reference), and across store cold/warm runs for both
#      -codec v3 and -codec v2 — including a live v2→v3 migration open —
#      with every warm run replaying 100% from the store and writing
#      nothing. Any divergence is fatal.
#   2. Headline timing at GRID_CELLS cells (default 172000, the full
#      grid): store-backed cold and warm sweeps on the PR 9 fast path
#      (-batch on -codec v3) versus the PR 8 path (-batch off
#      -codec v2). The headline numbers are the cold and warm speedups.
#
# Wall clocks are only meaningful relative to the host; the JSON records
# nproc. CI runs both phases at 10k cells (GRID_CELLS=10000) for time;
# the committed BENCH_PR9.json is a full-grid 172k-cell run.
#
# Usage: scripts/grid_bench.sh [output.json]   (default BENCH_PR9.json)
set -eu

out=${1:-BENCH_PR9.json}
go=${GO:-go}
cells=${GRID_CELLS:-172000}
id_cells=${ID_CELLS:-10000}
reps=${BENCH_REPS:-3}
bin=$(mktemp /tmp/spectrebench.XXXXXX)
ref_txt=$(mktemp /tmp/sb_gridref.XXXXXX)
got_txt=$(mktemp /tmp/sb_gridgot.XXXXXX)
err_txt=$(mktemp /tmp/sb_griderr.XXXXXX)
store_root=$(mktemp -d /tmp/sb_gridstore.XXXXXX)
trap 'rm -rf "$bin" "$ref_txt" "$got_txt" "$err_txt" "$store_root"' EXIT

$go build -o "$bin" ./cmd/spectrebench

check_identical() { # check_identical <label>
    if ! cmp -s "$ref_txt" "$got_txt"; then
        echo "grid_bench.sh: FATAL: gridbench output for $1 differs from the reference" >&2
        diff "$ref_txt" "$got_txt" | head -20 >&2 || true
        exit 1
    fi
    echo "grid_bench.sh: $1: output identical" >&2
}

check_pure_replay() { # check_pure_replay <label> (reads $err_txt)
    warm_note=$(grep 'cell store:' "$err_txt")
    case "$warm_note" in
    *" 0 misses, 0 written,"*) ;;
    *)
        echo "grid_bench.sh: FATAL: $1 was not a pure replay: $warm_note" >&2
        exit 1
        ;;
    esac
    echo "grid_bench.sh: $1 replay clean: $warm_note" >&2
}

# ---- phase 1: byte-identity matrix ----
"$bin" -cells "$id_cells" -jobs 1 gridbench >"$ref_txt"
for b in on off; do
    for d in on off; do
        for j in 1 4; do
            [ "$b-$d-$j" = "on-on-1" ] && continue
            "$bin" -cells "$id_cells" -jobs "$j" -batch "$b" -dedup "$d" gridbench >"$got_txt" 2>/dev/null
            check_identical "cells=$id_cells batch=$b dedup=$d jobs=$j"
        done
    done
done
for b in on off; do
    "$bin" -cells "$id_cells" -jobs 4 -batch "$b" -plan off gridbench >"$got_txt" 2>/dev/null
    check_identical "cells=$id_cells batch=$b plan=off jobs=4"
done

# Fault runs compare against their own reference (fault-injected cells
# legitimately differ from clean ones; the matrix must still agree).
"$bin" -cells "$id_cells" -jobs 1 -faults -seed 7 gridbench >"$got_txt"
cp "$got_txt" "$err_txt" # reuse as the fault reference
for b in on off; do
    for d in on off; do
        "$bin" -cells "$id_cells" -jobs 4 -faults -seed 7 -batch "$b" -dedup "$d" gridbench >"$got_txt" 2>/dev/null
        if ! cmp -s "$err_txt" "$got_txt"; then
            echo "grid_bench.sh: FATAL: faulted batch=$b dedup=$d diverged" >&2
            exit 1
        fi
        echo "grid_bench.sh: faults seed=7 batch=$b dedup=$d jobs=4: output identical" >&2
    done
done

# Store cold/warm for both codecs: same bytes as the store-less
# reference, every warm run a pure replay. The v2 directory is then
# reopened with the default codec to exercise the live v2→v3 migration.
"$bin" -cells "$id_cells" -jobs 1 gridbench >"$ref_txt"
"$bin" -cells "$id_cells" -jobs 4 -store "$store_root/v3" gridbench >"$got_txt" 2>/dev/null
check_identical "store=cold codec=v3 batch=on"
"$bin" -cells "$id_cells" -jobs 4 -store "$store_root/v3" gridbench >"$got_txt" 2>"$err_txt"
check_identical "store=warm codec=v3 batch=on"
check_pure_replay "warm v3"
"$bin" -cells "$id_cells" -jobs 4 -batch off -store "$store_root/v3" gridbench >"$got_txt" 2>"$err_txt"
check_identical "store=warm codec=v3 batch=off"
check_pure_replay "warm v3 batch=off"

"$bin" -cells "$id_cells" -jobs 4 -batch off -codec v2 -store "$store_root/v2" gridbench >"$got_txt" 2>/dev/null
check_identical "store=cold codec=v2 batch=off"
"$bin" -cells "$id_cells" -jobs 4 -batch off -codec v2 -store "$store_root/v2" gridbench >"$got_txt" 2>"$err_txt"
check_identical "store=warm codec=v2 batch=off"
check_pure_replay "warm v2"

"$bin" -cells "$id_cells" -jobs 4 -store "$store_root/v2" gridbench >"$got_txt" 2>"$err_txt"
check_identical "store=warm after v2->v3 migration"
check_pure_replay "migrated warm"
grep -q 'migrated .* v2 records' "$err_txt" \
    || { echo "grid_bench.sh: FATAL: reopening the v2 dir did not migrate" >&2; exit 1; }
echo "grid_bench.sh: v2->v3 migration replayed clean" >&2

# ---- phase 2: headline timing ----
one_ns() { # one_ns <batch> <codec> <store-dir>
    start=$(date +%s%N)
    "$bin" -cells "$cells" -jobs 4 -batch "$1" -codec "$2" -store "$3" gridbench >"$got_txt" 2>/dev/null
    end=$(date +%s%N)
    echo $((end - start))
}

# cold_ns recreates the store dir each rep so every run is cold;
# warm_ns reuses a dir primed by the cold runs.
cold_ns() { # cold_ns <batch> <codec> <store-dir> <reps>
    best=0
    for _rep in $(seq "$4"); do
        rm -rf "$3"
        ns=$(one_ns "$1" "$2" "$3")
        if [ "$best" -eq 0 ] || [ "$ns" -lt "$best" ]; then best=$ns; fi
    done
    echo "$best"
}

warm_ns() { # warm_ns <batch> <codec> <store-dir> <reps>
    best=0
    for _rep in $(seq "$4"); do
        ns=$(one_ns "$1" "$2" "$3")
        if [ "$best" -eq 0 ] || [ "$ns" -lt "$best" ]; then best=$ns; fi
    done
    echo "$best"
}

# The slow PR 8 sides run once; the PR 9 fast sides best-of-N.
pr8_cold=$(cold_ns off v2 "$store_root/bench_v2" 1)
pr8_warm=$(warm_ns off v2 "$store_root/bench_v2" 1)
pr9_cold=$(cold_ns on v3 "$store_root/bench_v3" "$reps")
pr9_warm=$(warm_ns on v3 "$store_root/bench_v3" "$reps")

# Cells/classes from the deterministic trailer of the last run.
trailer=$(tail -1 "$got_txt") # "grid: N cells, C classes, F failed"
n_cells=$(echo "$trailer" | awk '{print $2}')
n_classes=$(echo "$trailer" | awk '{print $4}')

ratio() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.2f", a / b }'; }

cat >"$out" <<EOF
{
  "pr": 9,
  "description": "replay & fan-out fast path: wall-clock ns for store-backed 'spectrebench gridbench' cold and warm sweeps, PR 9 path (-batch on -codec v3) vs PR 8 path (-batch off -codec v2) at -jobs 4",
  "host": {
    "nproc": $(nproc),
    "note": "identity matrix verified at $id_cells cells (batch x dedup x jobs x plan x faults x store cold/warm x codec v3/v2 x v2->v3 migration); timings at $cells cells, PR 8 sides best-of-1, PR 9 sides best-of-$reps"
  },
  "grid": {
    "cells": $n_cells,
    "classes": $n_classes,
    "dedup_ratio": $(ratio "$n_cells" "$n_classes")
  },
  "gridbench_wall_ns": {
    "cold_pr8_path_nobatch_v2": $pr8_cold,
    "warm_pr8_path_nobatch_v2": $pr8_warm,
    "cold_pr9_path_batch_v3": $pr9_cold,
    "warm_pr9_path_batch_v3": $pr9_warm,
    "speedup_cold": $(ratio "$pr8_cold" "$pr9_cold"),
    "speedup_warm": $(ratio "$pr8_warm" "$pr9_warm"),
    "output_identical_across_matrix": true
  }
}
EOF
echo "wrote $out (cold $(ratio "$pr8_cold" "$pr9_cold")x, warm $(ratio "$pr8_warm" "$pr9_warm")x over the PR 8 path at $cells cells)" >&2
