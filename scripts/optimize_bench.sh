#!/bin/sh
# optimize_bench.sh — emit BENCH_PR10.json: the recorded baseline for
# the dominance-pruned mitigation-config optimizer PR.
#
# Two phases:
#
#   1. Equivalence matrix: the per-uarch optima table printed by
#      `spectrebench optimize` must be identical across -prune on/off x
#      -jobs 1/4, across a -faults run at a fixed seed (its own
#      reference, again prune on/off), and across store cold/warm runs
#      — with the warm run replaying every cost from the store (zero
#      simulations). Any divergence is fatal: pruning, parallelism and
#      the store are never allowed to change which configuration wins.
#   2. Headline numbers: the pruned full-lattice search versus the
#      brute-force search (prune off) and versus the full deduped
#      gridbench sweep of the same lattice at the same -jobs. The cell
#      ratio (deduped sweep cells / cells the search touched) is parsed
#      from the report and must be >= 10.
#
# Wall clocks are only meaningful relative to the host; the JSON records
# nproc. The committed BENCH_PR10.json is a full-lattice run; both
# phases are cheap enough that CI runs them unreduced.
#
# Usage: scripts/optimize_bench.sh [output.json]  (default BENCH_PR10.json)
set -eu

out=${1:-BENCH_PR10.json}
go=${GO:-go}
reps=${BENCH_REPS:-3}
bin=$(mktemp /tmp/spectrebench.XXXXXX)
ref_txt=$(mktemp /tmp/sb_optref.XXXXXX)
got_txt=$(mktemp /tmp/sb_optgot.XXXXXX)
err_txt=$(mktemp /tmp/sb_opterr.XXXXXX)
store_root=$(mktemp -d /tmp/sb_optstore.XXXXXX)
trap 'rm -rf "$bin" "$ref_txt" "$got_txt" "$err_txt" "$store_root"' EXIT

$go build -o "$bin" ./cmd/spectrebench

# table strips the parameter header and the search/engine trailers,
# leaving exactly the per-uarch optima table — the part that must be
# invariant across prune/jobs/store (the trailers legitimately differ:
# they report how much work each mode did).
table() { grep -v '^optimize:' "$1" | grep -v '^search:' | grep -v '^engine:'; }

check_same_optima() { # check_same_optima <label>
    if [ "$(table "$ref_txt")" != "$(table "$got_txt")" ]; then
        echo "optimize_bench.sh: FATAL: optima for $1 differ from the reference" >&2
        table "$got_txt" >&2
        exit 1
    fi
    echo "optimize_bench.sh: $1: optima identical" >&2
}

# ---- phase 1: equivalence matrix ----
"$bin" -jobs 1 -prune on optimize >"$ref_txt"
for p in on off; do
    for j in 1 4; do
        [ "$p-$j" = "on-1" ] && continue
        "$bin" -jobs "$j" -prune "$p" optimize >"$got_txt" 2>/dev/null
        check_same_optima "prune=$p jobs=$j"
    done
done

# Faulted runs compare against their own reference (fault noise
# legitimately shifts costs; prune on/off must still agree exactly).
"$bin" -jobs 1 -prune on -faults -seed 7 optimize >"$ref_txt"
for p in on off; do
    for j in 1 4; do
        [ "$p-$j" = "on-1" ] && continue
        "$bin" -jobs "$j" -prune "$p" -faults -seed 7 optimize >"$got_txt" 2>/dev/null
        check_same_optima "faults seed=7 prune=$p jobs=$j"
    done
done

# Store cold/warm: the warm search must replay every cost from the
# store (0 simulated) and still print the same optima.
"$bin" -jobs 1 -prune on optimize >"$ref_txt"
"$bin" -jobs 4 -prune on -store "$store_root/cells" optimize >"$got_txt" 2>/dev/null
check_same_optima "store=cold"
"$bin" -jobs 4 -prune on -store "$store_root/cells" optimize >"$got_txt" 2>"$err_txt"
check_same_optima "store=warm"
warm_sim=$(grep '^engine:' "$got_txt" | tr -d '(),;' | awk '{print $2}')
warm_rep=$(grep '^engine:' "$got_txt" | tr -d '(),;' | awk '{print $5}')
if [ "$warm_sim" -ne 0 ] || [ "$warm_rep" -eq 0 ]; then
    echo "optimize_bench.sh: FATAL: warm search simulated $warm_sim cells, replayed $warm_rep (want pure replay)" >&2
    exit 1
fi
echo "optimize_bench.sh: warm search replayed all $warm_rep cells from the store" >&2

# ---- phase 2: headline numbers ----
# Counters from the pruned full-lattice report.
"$bin" -jobs 4 -prune on optimize >"$got_txt" 2>/dev/null
search=$(grep '^search:' "$got_txt" | tr -d '(),;')
combos=$(echo "$search" | awk '{print $2}')
classes=$(echo "$search" | awk '{print $5}')
secure=$(echo "$search" | awk '{print $7}')
evaluated=$(echo "$search" | awk '{print $10}')
pruned_classes=$(echo "$search" | awk '{print $12}')
engine=$(grep '^engine:' "$got_txt" | tr -d '(),;')
touched=$(($(echo "$engine" | awk '{print $2}') + $(echo "$engine" | awk '{print $5}')))
sweep_cells=$(echo "$engine" | awk '{print $12}')
evaluated_brute=$("$bin" -jobs 4 -prune off optimize 2>/dev/null \
    | grep '^search:' | tr -d '(),;' | awk '{print $10}')

if [ $((touched * 10)) -gt "$sweep_cells" ]; then
    echo "optimize_bench.sh: FATAL: search touched $touched cells vs $sweep_cells sweep cells — less than 10x" >&2
    exit 1
fi
echo "optimize_bench.sh: search touched $touched cells vs $sweep_cells deduped sweep cells" >&2

one_ns() { # one_ns <cmd...>
    start=$(date +%s%N)
    "$@" >/dev/null 2>&1
    end=$(date +%s%N)
    echo $((end - start))
}

best_ns() { # best_ns <reps> <cmd...>
    n=$1
    shift
    best=0
    for _rep in $(seq "$n"); do
        ns=$(one_ns "$@")
        if [ "$best" -eq 0 ] || [ "$ns" -lt "$best" ]; then best=$ns; fi
    done
    echo "$best"
}

opt_pruned=$(best_ns "$reps" "$bin" -jobs 4 -prune on optimize)
opt_brute=$(best_ns "$reps" "$bin" -jobs 4 -prune off optimize)
# The exhaustive comparison: a full deduped gridbench sweep of the same
# 21504-combo-per-uarch lattice with the same workload at the same
# -jobs.
sweep_full=$(best_ns 1 "$bin" -cells "$combos" -jobs 4 gridbench)

ratio() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.2f", a / b }'; }

cat >"$out" <<EOF
{
  "pr": 10,
  "description": "dominance-pruned mitigation-config optimizer: 'spectrebench optimize' full-lattice search vs brute force (-prune off) and vs the full deduped gridbench sweep of the same lattice, all at -jobs 4",
  "host": {
    "nproc": $(nproc),
    "note": "optima verified identical across prune on/off x jobs 1/4, faulted (seed 7) prune on/off x jobs 1/4, and store cold/warm (warm = pure replay); search timings best-of-$reps, sweep best-of-1"
  },
  "search": {
    "combos": $combos,
    "classes": $classes,
    "secure_classes": $secure,
    "classes_evaluated_pruned": $evaluated,
    "classes_evaluated_brute": $evaluated_brute,
    "classes_pruned": $pruned_classes,
    "cells_touched": $touched,
    "deduped_sweep_cells": $sweep_cells,
    "cell_ratio_vs_sweep": $(ratio "$sweep_cells" "$touched")
  },
  "equivalence": {
    "optima_identical_across_matrix": true,
    "faulted_optima_identical": true,
    "warm_store_pure_replay": true
  },
  "wall_ns": {
    "optimize_pruned": $opt_pruned,
    "optimize_brute": $opt_brute,
    "gridbench_full_sweep": $sweep_full,
    "speedup_vs_brute": $(ratio "$opt_brute" "$opt_pruned"),
    "speedup_vs_sweep": $(ratio "$sweep_full" "$opt_pruned")
  }
}
EOF
echo "wrote $out (cells $(ratio "$sweep_cells" "$touched")x fewer than the deduped sweep; wall $(ratio "$sweep_full" "$opt_pruned")x vs the full sweep)" >&2
