#!/bin/sh
# serve_smoke.sh — end-to-end crash-safety smoke for sweep-as-a-service.
#
# Drives the real daemon binary through its whole lifecycle:
#
#   1. cold sweep    — fresh store dir, daemon up, client sweep; every
#                      cell is simulated and persisted.
#   2. warm sweep    — daemon restarted (graceful SIGTERM) on the same
#                      store dir so the first-level memo is empty; the
#                      same sweep must be served 100% from the store
#                      (/statsz: store misses 0, nothing written) and
#                      its output must be byte-identical to the cold
#                      sweep.
#   3. kill -9       — fresh store dir, daemon SIGKILLed mid-sweep.
#   4. recovery      — daemon restarted on the killed store dir. The
#                      store is an append-only segment log, so the only
#                      damage kill -9 can leave is a torn record at the
#                      tail of the newest segment; recovery truncates it
#                      and must quarantine nothing (committed entries
#                      survive intact in the segment logs). A full sweep
#                      must again match the cold output byte for byte.
#   5. drain         — final graceful SIGTERM must exit 0.
#
# Usage: scripts/serve_smoke.sh
# Env:   GO (toolchain, default go), ADDR (default 127.0.0.1:8077),
#        SWEEP (experiment ids, default "table3 fig3 whatif-v1hw").
set -eu

go=${GO:-go}
addr=${ADDR:-127.0.0.1:8077}
sweep=${SWEEP:-"table3 fig3 whatif-v1hw"}

work=$(mktemp -d /tmp/sb_serve_smoke.XXXXXX)
bin=$work/spectrebench
daemon_pid=""

cleanup() {
    [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

log() { echo "serve_smoke: $*" >&2; }

$go build -o "$bin" ./cmd/spectrebench

# start_daemon <store-dir> <log-file>
start_daemon() {
    "$bin" -store "$1" -addr "$addr" serve >/dev/null 2>"$2" &
    daemon_pid=$!
    i=0
    until curl -fsS "http://$addr/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            log "daemon did not become healthy; log follows"
            cat "$2" >&2
            exit 1
        fi
        sleep 0.1
    done
}

# stop_daemon_graceful <log-file> — SIGTERM, wait, require exit 0.
stop_daemon_graceful() {
    kill -TERM "$daemon_pid"
    if ! wait "$daemon_pid"; then
        log "daemon did not exit cleanly on SIGTERM; log follows"
        cat "$1" >&2
        exit 1
    fi
    daemon_pid=""
}

store1=$work/store1
store2=$work/store2

# --- 1. cold sweep ---------------------------------------------------
log "phase 1: cold sweep into fresh store"
start_daemon "$store1" "$work/daemon1.log"
# shellcheck disable=SC2086
"$bin" -addr "$addr" client run $sweep >"$work/cold.txt"
stop_daemon_graceful "$work/daemon1.log"
[ -s "$work/cold.txt" ] || { log "cold sweep produced no output"; exit 1; }

# --- 2. warm sweep on a restarted daemon -----------------------------
# The restart empties the in-memory memo cache, so every cell the warm
# sweep needs must come from the persistent store.
log "phase 2: warm sweep after daemon restart"
start_daemon "$store1" "$work/daemon2.log"
# shellcheck disable=SC2086
"$bin" -addr "$addr" client run $sweep >"$work/warm.txt"
curl -fsS "http://$addr/statsz" >"$work/statsz.json"
stop_daemon_graceful "$work/daemon2.log"

diff "$work/cold.txt" "$work/warm.txt" \
    || { log "warm sweep output differs from cold sweep"; exit 1; }

# The StatsSnapshot serializes the store block first, so the first
# hits/misses/puts fields in the document are the store's.
store_hits=$(grep -m1 '"hits"' "$work/statsz.json" | tr -dc '0-9')
store_misses=$(grep -m1 '"misses"' "$work/statsz.json" | tr -dc '0-9')
store_puts=$(grep -m1 '"puts"' "$work/statsz.json" | tr -dc '0-9')
log "warm store stats: hits=$store_hits misses=$store_misses puts=$store_puts"
[ "$store_hits" -gt 0 ] || { log "warm sweep had no store hits"; exit 1; }
[ "$store_misses" -eq 0 ] || { log "warm sweep missed the store $store_misses times (want 100% hit)"; exit 1; }
[ "$store_puts" -eq 0 ] || { log "warm sweep wrote $store_puts entries (replay must not churn the store)"; exit 1; }

# --- 3. kill -9 mid-sweep --------------------------------------------
log "phase 3: SIGKILL mid-sweep into fresh store"
start_daemon "$store2" "$work/daemon3.log"
# shellcheck disable=SC2086
"$bin" -addr "$addr" -http-retries -1 client run $sweep >"$work/killed.txt" 2>/dev/null &
client_pid=$!
sleep 0.7
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
wait "$client_pid" 2>/dev/null || true # the interrupted client may fail; that is its job

# --- 4. recovery on the killed store ---------------------------------
log "phase 4: restart on the killed store and re-sweep"
start_daemon "$store2" "$work/daemon4.log"
# shellcheck disable=SC2086
"$bin" -addr "$addr" client run $sweep >"$work/recovered.txt"
curl -fsS "http://$addr/statsz" >"$work/statsz2.json"

quarantined=$(grep -m1 '"quarantined"' "$work/statsz2.json" | tr -dc '0-9')
[ "${quarantined:-0}" -eq 0 ] \
    || { log "recovery quarantined $quarantined entries after kill -9 (committed entries must survive intact)"; exit 1; }
segments=$(grep -m1 '"segments"' "$work/statsz2.json" | tr -dc '0-9')
[ "${segments:-0}" -ge 1 ] \
    || { log "recovered store reports no segment logs (segmented layout missing)"; exit 1; }

diff "$work/cold.txt" "$work/recovered.txt" \
    || { log "post-recovery sweep output differs from cold sweep"; exit 1; }

# --- 5. graceful drain ------------------------------------------------
log "phase 5: graceful SIGTERM drain"
stop_daemon_graceful "$work/daemon4.log"

log "ok: cold == warm == post-kill-recovery, warm sweep 100% store-served, clean drains"
