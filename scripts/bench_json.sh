#!/bin/sh
# bench_json.sh — emit BENCH_PR7.json: the recorded performance baseline
# for the superblock-chaining + checkpointed-warmup PR.
#
# Measures:
#   - the 2x2 -superblock x -checkpoint ablation for `spectrebench run
#     all` at -jobs 1. All four variants are timed interleaved — each
#     repetition cycles through the whole matrix back to back — so host
#     noise hits every side of every ratio equally. The headline number
#     is both-on versus both-off,
#   - the same both-on/both-off pair at -jobs 4,
#   - ns/op for the superblock, checkpoint, memfast and block-cache
#     ablation benchmarks (go test -bench, -benchtime 1x).
#
# Every measured run's output is diffed against the -jobs 1/all-on
# reference: the matrix must be byte-identical or the script fails.
# Wall-clock numbers are only meaningful relative to the host — the
# JSON records nproc so a 1-CPU container's flat scaling curve isn't
# mistaken for a scheduler regression.
#
# Usage: scripts/bench_json.sh [output.json]   (default BENCH_PR7.json)
set -eu

out=${1:-BENCH_PR7.json}
go=${GO:-go}
reps=${BENCH_REPS:-5}
bin=$(mktemp /tmp/spectrebench.XXXXXX)
ref_txt=$(mktemp /tmp/sb_ref.XXXXXX)
got_txt=$(mktemp /tmp/sb_got.XXXXXX)
bench_txt=$(mktemp /tmp/sb_bench.XXXXXX)
trap 'rm -f "$bin" "$ref_txt" "$got_txt" "$bench_txt"' EXIT

$go build -o "$bin" ./cmd/spectrebench

# One timed run; prints wall-clock ns.
one_ns() { # one_ns <jobs> <superblock mode> <checkpoint mode> <output file>
    start=$(date +%s%N)
    "$bin" -jobs "$1" -superblock "$2" -checkpoint "$3" run all >"$4"
    end=$(date +%s%N)
    echo $((end - start))
}

# Best-of-N wall clock: the minimum is the least noisy estimator on a
# shared host, and every repetition's output is still checked below.
wall_ns() { # wall_ns <jobs> <superblock> <checkpoint> <output file>
    best=0
    for _rep in $(seq "$reps"); do
        ns=$(one_ns "$1" "$2" "$3" "$4")
        if [ "$best" -eq 0 ] || [ "$ns" -lt "$best" ]; then best=$ns; fi
    done
    echo "$best"
}

check_identical() { # check_identical <label> <output file>
    if ! cmp -s "$ref_txt" "$2"; then
        echo "bench_json.sh: FATAL: run all output for $1 differs from jobs=1/superblock=on/checkpoint=on" >&2
        diff "$ref_txt" "$2" >&2 || true
        exit 1
    fi
}

# Reference output (also warms the page cache for the timed reps).
"$bin" -jobs 1 -superblock on -checkpoint on run all >"$ref_txt"

# Headline ablation, interleaved: each repetition cycles the full 2x2
# flag matrix back to back so drift on a noisy host cancels out of
# every ratio.
on_on_ns=0; off_on_ns=0; on_off_ns=0; off_off_ns=0
for _rep in $(seq "$reps"); do
    ns=$(one_ns 1 on on "$got_txt")
    if [ "$on_on_ns" -eq 0 ] || [ "$ns" -lt "$on_on_ns" ]; then on_on_ns=$ns; fi
    check_identical "jobs=1/superblock=on/checkpoint=on" "$got_txt"
    ns=$(one_ns 1 off on "$got_txt")
    if [ "$off_on_ns" -eq 0 ] || [ "$ns" -lt "$off_on_ns" ]; then off_on_ns=$ns; fi
    check_identical "jobs=1/superblock=off/checkpoint=on" "$got_txt"
    ns=$(one_ns 1 on off "$got_txt")
    if [ "$on_off_ns" -eq 0 ] || [ "$ns" -lt "$on_off_ns" ]; then on_off_ns=$ns; fi
    check_identical "jobs=1/superblock=on/checkpoint=off" "$got_txt"
    ns=$(one_ns 1 off off "$got_txt")
    if [ "$off_off_ns" -eq 0 ] || [ "$ns" -lt "$off_off_ns" ]; then off_off_ns=$ns; fi
    check_identical "jobs=1/superblock=off/checkpoint=off" "$got_txt"
done

# The jobs=4 pair: both-on versus both-off.
jobs4_on_ns=$(wall_ns 4 on on "$got_txt");    check_identical "jobs=4/all-on" "$got_txt"
jobs4_off_ns=$(wall_ns 4 off off "$got_txt"); check_identical "jobs=4/all-off" "$got_txt"

$go test -run '^$' -bench 'BenchmarkAblation(Superblock|Checkpoint|MemFast|BlockCache)' -benchmem -benchtime 1x . | tee "$bench_txt" >&2

bench_col() { # bench_col <benchmark name substring> <awk column>
    awk -v pat="$1" -v col="$2" '$0 ~ pat { print $col; exit }' "$bench_txt"
}

ratio() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.2f", a / b }'; }

# The PR-5 recorded single-worker wall clock, for the cross-PR speedup
# line. The checked-in BENCH_PR5.json is the committed baseline; fall
# back to the fresh both-off number if it is missing.
pr5_jobs1_ns=$(awk -F': ' '/"jobs1_memfast_on"/ { gsub(/[^0-9]/, "", $2); print $2; exit }' BENCH_PR5.json 2>/dev/null || true)
[ -n "$pr5_jobs1_ns" ] || pr5_jobs1_ns=$off_off_ns

cat >"$out" <<EOF
{
  "pr": 7,
  "description": "superblock chaining + checkpointed warmup baseline: wall-clock ns for 'spectrebench run all' across -jobs, -superblock and -checkpoint, plus ablation benchmark ns/op",
  "host": {
    "nproc": $(nproc),
    "note": "best-of-$reps interleaved wall clocks; scaling is bounded by nproc, so on a 1-CPU host the jobs curve is flat and only the flag ratios are meaningful"
  },
  "run_all_wall_ns": {
    "jobs1_superblock_on_checkpoint_on": $on_on_ns,
    "jobs1_superblock_off_checkpoint_on": $off_on_ns,
    "jobs1_superblock_on_checkpoint_off": $on_off_ns,
    "jobs1_superblock_off_checkpoint_off": $off_off_ns,
    "jobs4_all_on": $jobs4_on_ns,
    "jobs4_all_off": $jobs4_off_ns,
    "combined_speedup_jobs1": $(ratio "$off_off_ns" "$on_on_ns"),
    "superblock_speedup_jobs1": $(ratio "$off_on_ns" "$on_on_ns"),
    "checkpoint_speedup_jobs1": $(ratio "$on_off_ns" "$on_on_ns"),
    "combined_speedup_jobs4": $(ratio "$jobs4_off_ns" "$jobs4_on_ns"),
    "speedup_vs_pr5_jobs1_baseline": $(ratio "$pr5_jobs1_ns" "$on_on_ns"),
    "pr5_jobs1_baseline_ns": $pr5_jobs1_ns,
    "output_identical_across_matrix": true
  },
  "bench_ns_per_op": {
    "AblationSuperblock/superblock=on": $(bench_col 'AblationSuperblock/superblock=on' 3),
    "AblationSuperblock/superblock=off": $(bench_col 'AblationSuperblock/superblock=off' 3),
    "AblationCheckpoint/checkpoint=on": $(bench_col 'AblationCheckpoint/checkpoint=on' 3),
    "AblationCheckpoint/checkpoint=off": $(bench_col 'AblationCheckpoint/checkpoint=off' 3),
    "AblationMemFast/memfast=on": $(bench_col 'AblationMemFast/memfast=on' 3),
    "AblationMemFast/memfast=off": $(bench_col 'AblationMemFast/memfast=off' 3),
    "AblationBlockCache/blockcache=on": $(bench_col 'AblationBlockCache/blockcache=on' 3),
    "AblationBlockCache/blockcache=off": $(bench_col 'AblationBlockCache/blockcache=off' 3)
  }
}
EOF
echo "wrote $out (combined jobs1 speedup $(ratio "$off_off_ns" "$on_on_ns")x)" >&2
