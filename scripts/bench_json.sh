#!/bin/sh
# bench_json.sh — emit BENCH_PR3.json: the recorded performance baseline
# for the decoded basic-block cache PR.
#
# Measures:
#   - wall-clock ns for `spectrebench -jobs 1 run all` with the block
#     cache on and off (the headline speedup; outputs are also diffed to
#     re-assert byte identity),
#   - ns/op for the block-cache and engine ablation benchmarks
#     (go test -bench, -benchtime 1x).
#
# Usage: scripts/bench_json.sh [output.json]   (default BENCH_PR3.json)
set -eu

out=${1:-BENCH_PR3.json}
go=${GO:-go}
bin=$(mktemp /tmp/spectrebench.XXXXXX)
on_txt=$(mktemp /tmp/sb_on.XXXXXX)
off_txt=$(mktemp /tmp/sb_off.XXXXXX)
bench_txt=$(mktemp /tmp/sb_bench.XXXXXX)
trap 'rm -f "$bin" "$on_txt" "$off_txt" "$bench_txt"' EXIT

$go build -o "$bin" ./cmd/spectrebench

wall_ns() { # wall_ns <blockcache mode> <output file>
    start=$(date +%s%N)
    "$bin" -jobs 1 -blockcache "$1" run all >"$2"
    end=$(date +%s%N)
    echo $((end - start))
}

on_ns=$(wall_ns on "$on_txt")
off_ns=$(wall_ns off "$off_txt")

if ! cmp -s "$on_txt" "$off_txt"; then
    echo "bench_json.sh: FATAL: run all output differs between -blockcache=on and off" >&2
    diff "$off_txt" "$on_txt" >&2 || true
    exit 1
fi

$go test -run '^$' -bench 'BenchmarkAblation(BlockCache|EngineJobs)' -benchtime 1x . | tee "$bench_txt" >&2

bench_metric() { # bench_metric <benchmark name substring>
    awk -v pat="$1" '$0 ~ pat { print $3; exit }' "$bench_txt"
}

speedup=$(awk -v on="$on_ns" -v off="$off_ns" 'BEGIN { printf "%.2f", off / on }')

cat >"$out" <<EOF
{
  "pr": 3,
  "description": "decoded basic-block cache baseline: wall-clock ns for 'spectrebench -jobs 1 run all' and ns/op for the ablation benchmarks",
  "run_all_jobs1": {
    "blockcache_on_ns": $on_ns,
    "blockcache_off_ns": $off_ns,
    "speedup_off_over_on": $speedup,
    "output_identical": true
  },
  "bench_ns_per_op": {
    "AblationBlockCache/blockcache=on": $(bench_metric 'AblationBlockCache/blockcache=on'),
    "AblationBlockCache/blockcache=off": $(bench_metric 'AblationBlockCache/blockcache=off'),
    "AblationEngineJobs/jobs=1": $(bench_metric 'AblationEngineJobs/jobs=1'),
    "AblationEngineJobs/jobs=4": $(bench_metric 'AblationEngineJobs/jobs=4')
  }
}
EOF
echo "wrote $out (speedup ${speedup}x)" >&2
