#!/bin/sh
# bench_json.sh — emit BENCH_PR4.json: the recorded performance baseline
# for the scaling PR (pooled cores + sharded scheduler).
#
# Measures:
#   - the wall-clock scaling curve for `spectrebench run all` at
#     -jobs 1, 2, 4, 8 with the core pool on,
#   - the corepool on/off ablation at -jobs 1 and 4 (allocation churn is
#     the target; wall clock is reported honestly),
#   - ns/op for the corepool, block-cache and engine ablation benchmarks
#     (go test -bench, -benchtime 1x).
#
# Every measured run's output is diffed against the -jobs 1 reference:
# the matrix must be byte-identical or the script fails. Wall-clock
# numbers are only meaningful relative to the host — the JSON records
# nproc so a 1-CPU container's flat curve isn't mistaken for a
# scheduler regression.
#
# Usage: scripts/bench_json.sh [output.json]   (default BENCH_PR4.json)
set -eu

out=${1:-BENCH_PR4.json}
go=${GO:-go}
bin=$(mktemp /tmp/spectrebench.XXXXXX)
ref_txt=$(mktemp /tmp/sb_ref.XXXXXX)
got_txt=$(mktemp /tmp/sb_got.XXXXXX)
bench_txt=$(mktemp /tmp/sb_bench.XXXXXX)
trap 'rm -f "$bin" "$ref_txt" "$got_txt" "$bench_txt"' EXIT

$go build -o "$bin" ./cmd/spectrebench

# Best-of-3 wall clock: the minimum is the least noisy estimator on a
# shared host, and every repetition's output is still checked below.
wall_ns() { # wall_ns <jobs> <corepool mode> <output file>
    best=0
    for _rep in 1 2 3; do
        start=$(date +%s%N)
        "$bin" -jobs "$1" -corepool "$2" run all >"$3"
        end=$(date +%s%N)
        ns=$((end - start))
        if [ "$best" -eq 0 ] || [ "$ns" -lt "$best" ]; then best=$ns; fi
    done
    echo "$best"
}

check_identical() { # check_identical <label> <output file>
    if ! cmp -s "$ref_txt" "$2"; then
        echo "bench_json.sh: FATAL: run all output for $1 differs from jobs=1/corepool=on" >&2
        diff "$ref_txt" "$2" >&2 || true
        exit 1
    fi
}

# Scaling curve, corepool on (reference is jobs=1).
jobs1_ns=$(wall_ns 1 on "$ref_txt")
jobs2_ns=$(wall_ns 2 on "$got_txt");   check_identical "jobs=2" "$got_txt"
jobs4_ns=$(wall_ns 4 on "$got_txt");   check_identical "jobs=4" "$got_txt"
jobs8_ns=$(wall_ns 8 on "$got_txt");   check_identical "jobs=8" "$got_txt"

# Core-pool ablation.
off1_ns=$(wall_ns 1 off "$got_txt");   check_identical "jobs=1/corepool=off" "$got_txt"
off4_ns=$(wall_ns 4 off "$got_txt");   check_identical "jobs=4/corepool=off" "$got_txt"

$go test -run '^$' -bench 'BenchmarkAblation(CorePool|BlockCache|EngineJobs)' -benchmem -benchtime 1x . | tee "$bench_txt" >&2

bench_col() { # bench_col <benchmark name substring> <awk column>
    awk -v pat="$1" -v col="$2" '$0 ~ pat { print $col; exit }' "$bench_txt"
}

ratio() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.2f", a / b }'; }

cat >"$out" <<EOF
{
  "pr": 4,
  "description": "scaling baseline: wall-clock ns for 'spectrebench run all' across -jobs and -corepool, plus ablation benchmark ns/op and allocs/op",
  "host": {
    "nproc": $(nproc),
    "note": "wall-clock scaling is bounded by nproc; on a 1-CPU host the curve is flat and only the corepool allocation delta is meaningful"
  },
  "run_all_wall_ns": {
    "jobs1_corepool_on": $jobs1_ns,
    "jobs2_corepool_on": $jobs2_ns,
    "jobs4_corepool_on": $jobs4_ns,
    "jobs8_corepool_on": $jobs8_ns,
    "jobs1_corepool_off": $off1_ns,
    "jobs4_corepool_off": $off4_ns,
    "speedup_jobs4_over_jobs1": $(ratio "$jobs1_ns" "$jobs4_ns"),
    "corepool_speedup_jobs4": $(ratio "$off4_ns" "$jobs4_ns"),
    "output_identical_across_matrix": true
  },
  "bench_ns_per_op": {
    "AblationCorePool/corepool=on": $(bench_col 'AblationCorePool/corepool=on' 3),
    "AblationCorePool/corepool=off": $(bench_col 'AblationCorePool/corepool=off' 3),
    "AblationBlockCache/blockcache=on": $(bench_col 'AblationBlockCache/blockcache=on' 3),
    "AblationBlockCache/blockcache=off": $(bench_col 'AblationBlockCache/blockcache=off' 3),
    "AblationEngineJobs/jobs=1": $(bench_col 'AblationEngineJobs/jobs=1' 3),
    "AblationEngineJobs/jobs=2": $(bench_col 'AblationEngineJobs/jobs=2' 3),
    "AblationEngineJobs/jobs=4": $(bench_col 'AblationEngineJobs/jobs=4' 3),
    "AblationEngineJobs/jobs=8": $(bench_col 'AblationEngineJobs/jobs=8' 3)
  },
  "bench_bytes_per_op": {
    "AblationCorePool/corepool=on": $(bench_col 'AblationCorePool/corepool=on' 5),
    "AblationCorePool/corepool=off": $(bench_col 'AblationCorePool/corepool=off' 5)
  },
  "bench_allocs_per_op": {
    "AblationCorePool/corepool=on": $(bench_col 'AblationCorePool/corepool=on' 7),
    "AblationCorePool/corepool=off": $(bench_col 'AblationCorePool/corepool=off' 7)
  }
}
EOF
echo "wrote $out (jobs4 speedup $(ratio "$jobs1_ns" "$jobs4_ns")x, corepool speedup $(ratio "$off4_ns" "$jobs4_ns")x)" >&2
