#!/bin/sh
# bench_json.sh — emit BENCH_PR5.json: the recorded performance baseline
# for the memory-path fast-path PR (epoch-stamped caches, MRU way hits,
# translation & page caching).
#
# Measures:
#   - the memfast on/off ablation for `spectrebench run all` at -jobs 1
#     (the headline single-worker speedup) and -jobs 4. The two -jobs 1
#     variants are timed interleaved — each repetition runs on then off
#     back to back — so host noise hits both sides of the ratio equally,
#   - the wall-clock scaling curve at -jobs 1, 4, 8 with memfast on,
#   - ns/op for the memfast, corepool and block-cache ablation
#     benchmarks (go test -bench, -benchtime 1x).
#
# Every measured run's output is diffed against the -jobs 1/memfast=on
# reference: the matrix must be byte-identical or the script fails.
# Wall-clock numbers are only meaningful relative to the host — the
# JSON records nproc so a 1-CPU container's flat scaling curve isn't
# mistaken for a scheduler regression.
#
# Usage: scripts/bench_json.sh [output.json]   (default BENCH_PR5.json)
set -eu

out=${1:-BENCH_PR5.json}
go=${GO:-go}
reps=${BENCH_REPS:-5}
bin=$(mktemp /tmp/spectrebench.XXXXXX)
ref_txt=$(mktemp /tmp/sb_ref.XXXXXX)
got_txt=$(mktemp /tmp/sb_got.XXXXXX)
bench_txt=$(mktemp /tmp/sb_bench.XXXXXX)
trap 'rm -f "$bin" "$ref_txt" "$got_txt" "$bench_txt"' EXIT

$go build -o "$bin" ./cmd/spectrebench

# One timed run; prints wall-clock ns.
one_ns() { # one_ns <jobs> <memfast mode> <output file>
    start=$(date +%s%N)
    "$bin" -jobs "$1" -memfast "$2" run all >"$3"
    end=$(date +%s%N)
    echo $((end - start))
}

# Best-of-N wall clock: the minimum is the least noisy estimator on a
# shared host, and every repetition's output is still checked below.
wall_ns() { # wall_ns <jobs> <memfast mode> <output file>
    best=0
    for _rep in $(seq "$reps"); do
        ns=$(one_ns "$1" "$2" "$3")
        if [ "$best" -eq 0 ] || [ "$ns" -lt "$best" ]; then best=$ns; fi
    done
    echo "$best"
}

check_identical() { # check_identical <label> <output file>
    if ! cmp -s "$ref_txt" "$2"; then
        echo "bench_json.sh: FATAL: run all output for $1 differs from jobs=1/memfast=on" >&2
        diff "$ref_txt" "$2" >&2 || true
        exit 1
    fi
}

# Reference output (also warms the page cache for the timed reps).
"$bin" -jobs 1 -memfast on run all >"$ref_txt"

# Headline ablation, interleaved: each repetition times memfast on and
# off back to back so drift on a noisy host cancels out of the ratio.
on1_ns=0
off1_ns=0
for _rep in $(seq "$reps"); do
    ns=$(one_ns 1 on "$got_txt")
    if [ "$on1_ns" -eq 0 ] || [ "$ns" -lt "$on1_ns" ]; then on1_ns=$ns; fi
    check_identical "jobs=1/memfast=on" "$got_txt"
    ns=$(one_ns 1 off "$got_txt")
    if [ "$off1_ns" -eq 0 ] || [ "$ns" -lt "$off1_ns" ]; then off1_ns=$ns; fi
    check_identical "jobs=1/memfast=off" "$got_txt"
done

# Scaling curve, memfast on, and the jobs=4 ablation point.
jobs4_ns=$(wall_ns 4 on "$got_txt");   check_identical "jobs=4" "$got_txt"
jobs8_ns=$(wall_ns 8 on "$got_txt");   check_identical "jobs=8" "$got_txt"
off4_ns=$(wall_ns 4 off "$got_txt");   check_identical "jobs=4/memfast=off" "$got_txt"

$go test -run '^$' -bench 'BenchmarkAblation(MemFast|CorePool|BlockCache)' -benchmem -benchtime 1x . | tee "$bench_txt" >&2

bench_col() { # bench_col <benchmark name substring> <awk column>
    awk -v pat="$1" -v col="$2" '$0 ~ pat { print $col; exit }' "$bench_txt"
}

ratio() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.2f", a / b }'; }

# The PR-4 recorded single-worker wall clock, for the cross-PR speedup
# line. The checked-in BENCH_PR4.json is the committed baseline; fall
# back to the fresh memfast=off number if it is missing.
pr4_jobs1_ns=$(awk -F': ' '/"jobs1_corepool_on"/ { gsub(/[^0-9]/, "", $2); print $2; exit }' BENCH_PR4.json 2>/dev/null || true)
[ -n "$pr4_jobs1_ns" ] || pr4_jobs1_ns=$off1_ns

cat >"$out" <<EOF
{
  "pr": 5,
  "description": "memory-path fast-path baseline: wall-clock ns for 'spectrebench run all' across -jobs and -memfast, plus ablation benchmark ns/op",
  "host": {
    "nproc": $(nproc),
    "note": "best-of-$reps interleaved wall clocks; scaling is bounded by nproc, so on a 1-CPU host the jobs curve is flat and only the memfast ratio is meaningful"
  },
  "run_all_wall_ns": {
    "jobs1_memfast_on": $on1_ns,
    "jobs1_memfast_off": $off1_ns,
    "jobs4_memfast_on": $jobs4_ns,
    "jobs4_memfast_off": $off4_ns,
    "jobs8_memfast_on": $jobs8_ns,
    "memfast_speedup_jobs1": $(ratio "$off1_ns" "$on1_ns"),
    "speedup_vs_pr4_jobs1_baseline": $(ratio "$pr4_jobs1_ns" "$on1_ns"),
    "pr4_jobs1_baseline_ns": $pr4_jobs1_ns,
    "memfast_speedup_jobs4": $(ratio "$off4_ns" "$jobs4_ns"),
    "speedup_jobs4_over_jobs1": $(ratio "$on1_ns" "$jobs4_ns"),
    "output_identical_across_matrix": true
  },
  "bench_ns_per_op": {
    "AblationMemFast/memfast=on": $(bench_col 'AblationMemFast/memfast=on' 3),
    "AblationMemFast/memfast=off": $(bench_col 'AblationMemFast/memfast=off' 3),
    "AblationCorePool/corepool=on": $(bench_col 'AblationCorePool/corepool=on' 3),
    "AblationCorePool/corepool=off": $(bench_col 'AblationCorePool/corepool=off' 3),
    "AblationBlockCache/blockcache=on": $(bench_col 'AblationBlockCache/blockcache=on' 3),
    "AblationBlockCache/blockcache=off": $(bench_col 'AblationBlockCache/blockcache=off' 3)
  },
  "bench_bytes_per_op": {
    "AblationCorePool/corepool=on": $(bench_col 'AblationCorePool/corepool=on' 5),
    "AblationCorePool/corepool=off": $(bench_col 'AblationCorePool/corepool=off' 5)
  }
}
EOF
echo "wrote $out (memfast jobs1 speedup $(ratio "$off1_ns" "$on1_ns")x)" >&2
