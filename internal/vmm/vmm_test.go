package vmm

import (
	"testing"

	"spectrebench/internal/isa"
	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
	"spectrebench/internal/stats"
	"spectrebench/internal/workloads/lebench"
)

func emitSyscall(a *isa.Asm, nr int64) {
	a.MovI(isa.R7, nr)
	a.Syscall()
}

// A guest program drives the disk with raw OUT/IN port I/O: the organic
// VM-exit path.
func TestGuestPortIODisk(t *testing.T) {
	m := model.SkylakeClient()
	hv := New(m, kernel.Defaults(m), kernel.Defaults(m), 64)
	hv.Boot()

	a := isa.NewAsm()
	// Fill a buffer, write it to sector 5, read it back elsewhere.
	a.MovI(isa.R1, kernel.UserDataBase)
	a.MovI(isa.R2, 0xfeedface)
	a.Store(isa.R1, 0, isa.R2)
	// The guest driver must pass guest-PHYSICAL addresses for DMA.
	a.MovI(isa.R3, 5)
	a.Out(PortDiskSector, isa.R3)
	a.MovI(isa.R3, int64(uint64(1)<<32+kernel.UserDataBase))
	a.Out(PortDiskAddr, isa.R3)
	a.MovI(isa.R3, 2) // write
	a.Out(PortDiskCmd, isa.R3)
	a.In(isa.R9, PortDiskStatus)
	// Read back into +0x1000.
	a.MovI(isa.R3, 5)
	a.Out(PortDiskSector, isa.R3)
	a.MovI(isa.R3, int64(uint64(1)<<32+kernel.UserDataBase+0x1000))
	a.Out(PortDiskAddr, isa.R3)
	a.MovI(isa.R3, 1) // read
	a.Out(PortDiskCmd, isa.R3)
	a.In(isa.R10, PortDiskStatus)
	a.MovI(isa.R1, kernel.UserDataBase+0x1000)
	a.Load(isa.R11, isa.R1, 0)
	a.MovI(isa.R1, 0)
	emitSyscall(a, kernel.SysExit)

	p := hv.NewGuestProcess("disk-test", a.MustAssemble(kernel.UserCodeBase))
	_ = p
	if err := hv.GuestKernel.RunProcessToCompletion(5_000_000); err != nil {
		t.Fatal(err)
	}
	c := hv.C
	if c.Regs[isa.R9] != 0 || c.Regs[isa.R10] != 0 {
		t.Fatalf("disk status: write=%d read=%d", c.Regs[isa.R9], c.Regs[isa.R10])
	}
	if c.Regs[isa.R11] != 0xfeedface {
		t.Errorf("readback = %#x", c.Regs[isa.R11])
	}
	if hv.Exits < 6 {
		t.Errorf("exits = %d, want ≥6 (one per port access)", hv.Exits)
	}
	if hv.Disk().Writes == 0 || hv.Disk().Reads == 0 {
		t.Error("disk counters did not move")
	}
}

func TestConsoleOutput(t *testing.T) {
	m := model.Zen2()
	hv := New(m, kernel.Defaults(m), kernel.Defaults(m), 8)
	hv.Boot()
	a := isa.NewAsm()
	for _, ch := range "ok" {
		a.MovI(isa.R2, int64(ch))
		a.Out(PortConsole, isa.R2)
	}
	a.MovI(isa.R1, 0)
	emitSyscall(a, kernel.SysExit)
	hv.NewGuestProcess("console", a.MustAssemble(kernel.UserCodeBase))
	if err := hv.GuestKernel.RunProcessToCompletion(1_000_000); err != nil {
		t.Fatal(err)
	}
	if string(hv.Console()) != "ok" {
		t.Errorf("console = %q", hv.Console())
	}
}

// L1TF: the host flushes the L1 on every entry on vulnerable parts; the
// flush count and the cache state must reflect it.
func TestL1FlushOnEntry(t *testing.T) {
	m := model.Broadwell() // L1TF vulnerable
	hv := New(m, kernel.Defaults(m), kernel.Defaults(m), 8)
	hv.Boot()
	a := isa.NewAsm()
	a.Vmcall()
	a.MovI(isa.R1, 0)
	emitSyscall(a, kernel.SysExit)
	hv.NewGuestProcess("hc", a.MustAssemble(kernel.UserCodeBase))
	if err := hv.GuestKernel.RunProcessToCompletion(1_000_000); err != nil {
		t.Fatal(err)
	}
	if hv.L1Flushes == 0 {
		t.Error("no L1 flushes on an L1TF-vulnerable host")
	}

	// Fixed hardware: no flushes even with the mitigation configured.
	m2 := model.IceLakeServer()
	hv2 := New(m2, kernel.Defaults(m2), kernel.Defaults(m2), 8)
	hv2.Boot()
	hv2.NewGuestProcess("hc2", a.MustAssemble(kernel.UserCodeBase))
	if err := hv2.GuestKernel.RunProcessToCompletion(1_000_000); err != nil {
		t.Fatal(err)
	}
	if hv2.L1Flushes != 0 {
		t.Error("L1 flushed on a part that is not L1TF vulnerable")
	}
}

// §4.4: LEBench inside a VM sees at most a few percent difference from
// host mitigations — execution stays in the guest.
func TestVMLEBenchHostMitigationsSmall(t *testing.T) {
	runGuest := func(m *model.CPU, hostMit kernel.Mitigations) float64 {
		var vals []float64
		for _, b := range lebench.Suite() {
			hv := New(m, hostMit, kernel.Defaults(m), 8)
			hv.Boot()
			cyc, err := lebench.RunOn(hv.C, hv.GuestKernel, b)
			if err != nil {
				t.Fatalf("%s/%s: %v", m.Uarch, b.Name, err)
			}
			vals = append(vals, cyc)
		}
		return stats.GeoMean(vals)
	}
	for _, m := range []*model.CPU{model.Broadwell(), model.IceLakeServer()} {
		hostOff := kernel.BootParams{MitigationsOff: true}.Apply(m, kernel.Defaults(m))
		base := runGuest(m, hostOff)
		with := runGuest(m, kernel.Defaults(m))
		ov := stats.Overhead(base, with)
		if ov > 0.03 || ov < -0.03 {
			t.Errorf("%s: guest LEBench host-mitigation overhead = %.2f%%, paper says ±3%%", m.Uarch, ov*100)
		}
	}
}

func TestDiskErrors(t *testing.T) {
	d := NewDisk(4)
	buf := make([]byte, BlockSize)
	if err := d.Read(-1, buf); err == nil {
		t.Error("negative block read accepted")
	}
	if err := d.Read(4, buf); err == nil {
		t.Error("past-end read accepted")
	}
	if err := d.Write(99, buf); err == nil {
		t.Error("past-end write accepted")
	}
	if d.Blocks() != 4 {
		t.Errorf("blocks = %d", d.Blocks())
	}
	// Reading an untouched block yields zeros even into a dirty buffer.
	for i := range buf {
		buf[i] = 0xff
	}
	if err := d.Read(1, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
}

func TestGuestBadDiskRequests(t *testing.T) {
	m := model.Zen2()
	hv := New(m, kernel.Defaults(m), kernel.Defaults(m), 4)
	hv.Boot()
	a := isa.NewAsm()
	// Out-of-range sector.
	a.MovI(isa.R3, 999)
	a.Out(PortDiskSector, isa.R3)
	a.MovI(isa.R3, int64(uint64(1)<<32+kernel.UserDataBase))
	a.Out(PortDiskAddr, isa.R3)
	a.MovI(isa.R3, 1)
	a.Out(PortDiskCmd, isa.R3)
	a.In(isa.R9, PortDiskStatus)
	// Unknown command.
	a.MovI(isa.R3, 0)
	a.Out(PortDiskSector, isa.R3)
	a.MovI(isa.R3, 7)
	a.Out(PortDiskCmd, isa.R3)
	a.In(isa.R10, PortDiskStatus)
	// Unknown IN port reads zero.
	a.In(isa.R11, 0x99)
	a.MovI(isa.R1, 0)
	emitSyscall(a, kernel.SysExit)
	hv.NewGuestProcess("bad-disk", a.MustAssemble(kernel.UserCodeBase))
	if err := hv.GuestKernel.RunProcessToCompletion(2_000_000); err != nil {
		t.Fatal(err)
	}
	c := hv.C
	if c.Regs[isa.R9] != 1 {
		t.Errorf("oob sector status = %d, want 1", c.Regs[isa.R9])
	}
	if c.Regs[isa.R10] != 1 {
		t.Errorf("bad command status = %d, want 1", c.Regs[isa.R10])
	}
	if c.Regs[isa.R11] != 0 {
		t.Errorf("unknown port = %d, want 0", c.Regs[isa.R11])
	}
}

func TestHostBlockIO(t *testing.T) {
	m := model.Broadwell()
	hv := New(m, kernel.Defaults(m), kernel.Defaults(m), 8)
	hv.Boot()
	data := make([]byte, BlockSize)
	data[0] = 0x42
	exitsBefore := hv.Exits
	if err := hv.HostBlockIO(3, data, true); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, BlockSize)
	if err := hv.HostBlockIO(3, got, false); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x42 {
		t.Errorf("readback = %#x", got[0])
	}
	if hv.Exits != exitsBefore+2 {
		t.Errorf("exits = %d, want +2", hv.Exits-exitsBefore)
	}
	// The L1TF host flushed the L1 on both re-entries.
	if hv.L1Flushes < 2 {
		t.Errorf("L1 flushes = %d", hv.L1Flushes)
	}
	if err := hv.HostBlockIO(99, got, false); err == nil {
		t.Error("past-end HostBlockIO accepted")
	}
}

func TestGuestDMAToUnmappedGPAFails(t *testing.T) {
	m := model.Zen()
	hv := New(m, kernel.Defaults(m), kernel.Defaults(m), 4)
	hv.Boot() // maps guest-physical space up to 1 TiB
	a := isa.NewAsm()
	a.MovI(isa.R3, 0)
	a.Out(PortDiskSector, isa.R3)
	a.MovI(isa.R3, 1<<41) // beyond every EPT mapping
	a.Out(PortDiskAddr, isa.R3)
	a.MovI(isa.R3, 1)
	a.Out(PortDiskCmd, isa.R3)
	a.In(isa.R9, PortDiskStatus)
	a.MovI(isa.R1, 0)
	emitSyscall(a, kernel.SysExit)
	hv.NewGuestProcess("dma", a.MustAssemble(kernel.UserCodeBase))
	if err := hv.GuestKernel.RunProcessToCompletion(2_000_000); err != nil {
		t.Fatal(err)
	}
	if hv.C.Regs[isa.R9] != 1 {
		t.Errorf("DMA to unmapped GPA: status = %d, want 1", hv.C.Regs[isa.R9])
	}
}
