// Package vmm implements the hypervisor substrate for the paper's §4.4
// virtual-machine experiments: guest execution under nested paging, VM
// exits for hypercalls and port I/O, an emulated disk, and the host-side
// mitigation work performed on every VM entry (the L1TF cache flush and
// the MDS buffer clear).
package vmm

import (
	"fmt"

	"spectrebench/internal/cpu"
	"spectrebench/internal/faultinject"
	"spectrebench/internal/isa"
	"spectrebench/internal/kernel"
	"spectrebench/internal/mem"
	"spectrebench/internal/model"
)

// Disk I/O ports (the virtio-over-ports protocol the guest driver uses).
const (
	PortDiskCmd    = 0x10 // command: 1 = read, 2 = write
	PortDiskSector = 0x11 // target sector
	PortDiskAddr   = 0x12 // guest-physical buffer address
	PortDiskStatus = 0x13 // read: 0 = ok, 1 = error
	PortConsole    = 0x20 // console byte output
)

// BlockSize is the emulated disk's sector size.
const BlockSize = 4096

// hostEmulationCost is the cycles the host spends emulating one disk
// request (kernel exit handling plus the userspace device model round
// trip — QEMU-scale, which is why §4.4's exit rates stay in the tens of
// thousands per second).
const hostEmulationCost = 80_000

// Hypervisor runs one guest machine and provides its devices.
type Hypervisor struct {
	C *cpu.Core
	// GuestKernel is the kernel booted inside the VM.
	GuestKernel *kernel.Kernel
	// HostMit is the host kernel's mitigation configuration; only the
	// VM-boundary mitigations apply here (L1TF flush, MDS clear).
	HostMit kernel.Mitigations

	disk *Disk

	// Statistics.
	Exits     uint64
	L1Flushes uint64

	// console accumulates PortConsole output.
	console []byte

	pendingSector uint64
	pendingAddr   uint64
}

// New boots a guest machine under a hypervisor. The guest gets its own
// kernel with guestMit; the host applies hostMit at the VM boundary.
func New(m *model.CPU, hostMit, guestMit kernel.Mitigations, diskBlocks int) *Hypervisor {
	c := cpu.New(m)
	// Nested paging: identity-map the guest-physical space the guest
	// kernel uses (per-process windows live at pid<<32).
	nt := mem.NewNestedTable()
	hv := &Hypervisor{C: c, HostMit: hostMit, disk: NewDisk(diskBlocks)}
	c.Guest = true
	c.Nested = nt
	c.OnVMExit = hv.handleExit

	hv.GuestKernel = kernel.New(c, guestMit)
	return hv
}

// MapGuestMemory installs an identity nested mapping for a guest-
// physical range (stored as one EPT interval). The kernel package
// allocates per-process physical windows at pid<<32.
func (hv *Hypervisor) MapGuestMemory(gpa, bytes uint64) {
	hv.C.Nested.MapIdentity(gpa, gpa, bytes, true)
}

// NewGuestProcess creates a process inside the guest.
func (hv *Hypervisor) NewGuestProcess(name string, prog *isa.Program) *kernel.Proc {
	return hv.GuestKernel.NewProcess(name, prog)
}

// Boot finalises guest setup: identity-map the guest-physical space
// (one EPT interval covering the kernel ranges and every per-process
// window the guest kernel will allocate at pid<<32).
func (hv *Hypervisor) Boot() {
	hv.MapGuestMemory(0, 1<<40)
}

// Close recycles the guest core into the CPU core pool. Call it only
// when the machine is dead — no guest or host code will touch the
// hypervisor again.
func (hv *Hypervisor) Close() { hv.C.Recycle() }

// Console returns everything the guest wrote to the console port.
func (hv *Hypervisor) Console() []byte { return hv.console }

// Disk exposes the emulated disk (for host-side inspection and for the
// guest kernel's paravirtual driver).
func (hv *Hypervisor) Disk() *Disk { return hv.disk }

// handleExit is the VM-exit handler: it emulates the device, then
// performs the host's entry mitigations before resuming the guest.
func (hv *Hypervisor) handleExit(c *cpu.Core, r cpu.VMExitReason) uint64 {
	hv.Exits++
	var ret uint64
	switch r.Op {
	case isa.OUT:
		switch r.Port {
		case PortDiskSector:
			hv.pendingSector = r.Val
		case PortDiskAddr:
			hv.pendingAddr = r.Val
		case PortDiskCmd:
			hv.doDiskCmd(c, r.Val)
		case PortConsole:
			hv.console = append(hv.console, byte(r.Val))
		}
	case isa.IN:
		if r.Port == PortDiskStatus {
			ret = hv.disk.status
		}
	case isa.VMCALL:
		// Hypercall: nothing to do; the exit/entry cost is the point.
	}
	hv.applyEntryMitigations(c)
	return ret
}

// doDiskCmd emulates one disk request (device model work + DMA).
func (hv *Hypervisor) doDiskCmd(c *cpu.Core, cmd uint64) {
	c.Charge(hostEmulationCost)
	buf := make([]byte, BlockSize)
	// DMA: translate the guest-physical buffer through the EPT.
	hpa, fault := c.Nested.Translate(hv.pendingAddr, mem.AccessWrite)
	if fault != mem.FaultNone {
		hv.disk.status = 1
		return
	}
	switch cmd {
	case 1: // read
		if err := hv.disk.Read(int(hv.pendingSector), buf); err != nil {
			hv.disk.status = 1
			return
		}
		c.Phys.WriteBytes(hpa, buf)
	case 2: // write
		c.Phys.ReadBytes(hpa, buf)
		if err := hv.disk.Write(int(hv.pendingSector), buf); err != nil {
			hv.disk.status = 1
			return
		}
	default:
		hv.disk.status = 1
		return
	}
	hv.disk.status = 0
}

// applyEntryMitigations performs the host's boundary work before
// re-entering the guest: the L1TF cache flush on vulnerable parts and
// the MDS buffer clear (§5.6).
func (hv *Hypervisor) applyEntryMitigations(c *cpu.Core) {
	if hv.HostMit.L1TFFlushOnVMEntry && c.Model.Vulns.L1TF {
		c.Charge(c.Model.Costs.L1Flush)
		c.L1.FlushAll()
		hv.L1Flushes++
	}
	if hv.HostMit.MDSClear && c.Model.Vulns.MDS {
		c.Charge(c.Model.Costs.VerwClear)
		if c.FI.Fire(faultinject.FBDrainDelay) {
			// Injected weather: the pre-entry buffer clear stalls; the
			// scrub still completes before the guest resumes.
			c.Charge(c.FI.Amount(faultinject.FBDrainDelay, 96))
		}
		c.FB.Clear()
	}
}

// HostBlockIO is the paravirtual path the guest kernel's Go-side disk
// driver uses: it charges the same exit/entry costs as an OUT-triggered
// exit and performs the transfer. write selects the direction.
func (hv *Hypervisor) HostBlockIO(sector int, buf []byte, write bool) error {
	c := hv.C
	hv.Exits++
	c.Charge(c.Model.Costs.VMExit)
	c.Charge(hostEmulationCost)
	var err error
	if write {
		err = hv.disk.Write(sector, buf)
	} else {
		err = hv.disk.Read(sector, buf)
	}
	hv.applyEntryMitigations(c)
	c.Charge(c.Model.Costs.VMEntry)
	return err
}

// Disk is the emulated block device.
type Disk struct {
	blocks [][]byte
	status uint64

	Reads, Writes uint64
}

// NewDisk creates a disk with n zeroed blocks.
func NewDisk(n int) *Disk {
	d := &Disk{blocks: make([][]byte, n)}
	return d
}

// Blocks returns the disk capacity in blocks.
func (d *Disk) Blocks() int { return len(d.blocks) }

// Read copies block n into buf.
func (d *Disk) Read(n int, buf []byte) error {
	if n < 0 || n >= len(d.blocks) {
		return fmt.Errorf("vmm: read past disk end (block %d of %d)", n, len(d.blocks))
	}
	d.Reads++
	if d.blocks[n] == nil {
		for i := range buf {
			buf[i] = 0
		}
		return nil
	}
	copy(buf, d.blocks[n])
	return nil
}

// Write copies buf into block n.
func (d *Disk) Write(n int, buf []byte) error {
	if n < 0 || n >= len(d.blocks) {
		return fmt.Errorf("vmm: write past disk end (block %d of %d)", n, len(d.blocks))
	}
	d.Writes++
	if d.blocks[n] == nil {
		d.blocks[n] = make([]byte, BlockSize)
	}
	copy(d.blocks[n], buf)
	return nil
}
