package mem

import "testing"

// TestPhysSnapshotForkCOW is the core copy-on-write contract: forks read
// the image's pages, a write privatises only the touched page, and
// neither the image nor sibling forks observe it.
func TestPhysSnapshotForkCOW(t *testing.T) {
	b := NewPhys()
	b.Write64(0x1000, 111)
	b.Write64(0x2008, 222)
	img := b.Snapshot()
	if img.Pages() != 2 {
		t.Fatalf("image has %d pages, want 2", img.Pages())
	}

	f1 := NewPhysFrom(img)
	f2 := NewPhysFrom(img)
	if got := f1.Read64(0x1000); got != 111 {
		t.Fatalf("fork read-through: got %d, want 111", got)
	}
	// Write in f1: privatises page 1 there, leaves the image and f2 alone.
	f1.Write64(0x1000, 999)
	if got := f1.Read64(0x1000); got != 999 {
		t.Errorf("fork write not visible to itself: got %d", got)
	}
	if got := f2.Read64(0x1000); got != 111 {
		t.Errorf("fork write leaked to sibling: got %d, want 111", got)
	}
	if got := f2.Read64(0x2008); got != 222 {
		t.Errorf("untouched page wrong in sibling: got %d, want 222", got)
	}
	// The privatised page carried the shared contents at other offsets.
	f1.Write64(0x1008, 5)
	if got := f1.Read64(0x1000); got != 999 {
		t.Errorf("privatised page lost earlier write: got %d", got)
	}

	// A fresh fork still sees the original image contents.
	f3 := NewPhysFrom(img)
	if got := f3.Read64(0x1000); got != 111 {
		t.Errorf("image mutated by fork write: got %d, want 111", got)
	}
}

// TestPhysForkPrivatisationCopiesSharedContents checks that the first
// write to a shared page starts from the image's bytes, not a zero page.
func TestPhysForkPrivatisationCopiesSharedContents(t *testing.T) {
	b := NewPhys()
	for off := uint64(0); off < PageSize; off += 8 {
		b.Write64(0x4000+off, off|1)
	}
	f := NewPhysFrom(b.Snapshot())
	f.Write64(0x4000, 7) // privatise
	for off := uint64(8); off < PageSize; off += 8 {
		if got := f.Read64(0x4000 + off); got != off|1 {
			t.Fatalf("offset %#x: got %d, want %d after privatisation", off, got, off|1)
		}
	}
}

// TestPhysForkPopulatedPages checks the population count dedupes pages
// present in both layers — fork cost accounting depends on it.
func TestPhysForkPopulatedPages(t *testing.T) {
	b := NewPhys()
	b.Write64(0x1000, 1)
	b.Write64(0x2000, 2)
	f := NewPhysFrom(b.Snapshot())
	if got := f.PopulatedPages(); got != 2 {
		t.Fatalf("fresh fork: %d populated pages, want 2", got)
	}
	f.Write64(0x1000, 9) // shadows a base page: still 2 distinct pages
	if got := f.PopulatedPages(); got != 2 {
		t.Errorf("after shadowing write: %d populated pages, want 2", got)
	}
	f.Write64(0x3000, 3) // a genuinely new page
	if got := f.PopulatedPages(); got != 3 {
		t.Errorf("after new page: %d populated pages, want 3", got)
	}
}

// TestPhysSnapshotOfFork re-freezes a fork and checks the merged image
// is self-contained: overlay pages win, untouched base pages survive.
func TestPhysSnapshotOfFork(t *testing.T) {
	b := NewPhys()
	b.Write64(0x1000, 1)
	b.Write64(0x2000, 2)
	f := NewPhysFrom(b.Snapshot())
	f.Write64(0x1000, 10)
	f.Write64(0x3000, 30)
	img2 := f.Snapshot()
	if img2.Pages() != 3 {
		t.Fatalf("merged image has %d pages, want 3", img2.Pages())
	}
	g := NewPhysFrom(img2)
	for pa, want := range map[uint64]uint64{0x1000: 10, 0x2000: 2, 0x3000: 30} {
		if got := g.Read64(pa); got != want {
			t.Errorf("refrozen image at %#x: got %d, want %d", pa, got, want)
		}
	}
}

// TestPhysForkReadBytesAcrossLayers exercises the bulk path spanning a
// private page and a base page in one call.
func TestPhysForkReadBytesAcrossLayers(t *testing.T) {
	b := NewPhys()
	b.Write64(0x1000, 0x1111)
	b.Write64(0x2000, 0x2222)
	f := NewPhysFrom(b.Snapshot())
	f.Write64(0x1000, 0x9999) // page 1 private, page 2 shared
	buf := make([]byte, 2*PageSize)
	f.ReadBytes(0x1000, buf)
	if got := f.Read64(0x1000); got != 0x9999 {
		t.Errorf("private layer: got %#x", got)
	}
	if got := f.Read64(0x2000); got != 0x2222 {
		t.Errorf("base layer: got %#x", got)
	}
}

// TestPTImageForkShadowUnmapLen covers the page-table overlay: forks see
// the frozen mappings, Map shadows, Unmap punches holes, and Len counts
// each vpn exactly once across layers.
func TestPTImageForkShadowUnmapLen(t *testing.T) {
	reg := NewRegistry()
	b := reg.NewTable(0)
	b.MapRange(0x10000, 0x10000, 4, true, true, false, false) // vpns 16..19
	img := b.Freeze()
	if img.Len() != 4 {
		t.Fatalf("image Len = %d, want 4", img.Len())
	}

	f := reg.NewTableFrom(img, 5)
	if f.PCID != 5 {
		t.Fatalf("fork PCID = %d, want 5", f.PCID)
	}
	if f.Len() != 4 {
		t.Fatalf("fresh fork Len = %d, want 4", f.Len())
	}
	if pte, ok := f.Lookup(VPN(0x11000)); !ok || pte.Phys != 0x11000 {
		t.Fatalf("fork Lookup fell through wrong: %+v %v", pte, ok)
	}

	// Shadow one base vpn with new permissions: Len unchanged.
	pte, _ := f.Lookup(16)
	pte.Writable = false
	f.Map(16, pte)
	if f.Len() != 4 {
		t.Errorf("Len after shadowing = %d, want 4", f.Len())
	}
	if got, _ := f.Lookup(16); got.Writable {
		t.Error("shadowed entry did not take precedence over the base")
	}

	// Unmap a base vpn: a hole, not a base mutation.
	f.Unmap(17)
	if _, ok := f.Lookup(17); ok {
		t.Error("unmapped base vpn still visible through the fork")
	}
	if f.Len() != 3 {
		t.Errorf("Len after hole = %d, want 3", f.Len())
	}
	// Re-map fills the hole back in.
	f.Map(17, PTE{Phys: 0x40000, Present: true})
	if f.Len() != 4 {
		t.Errorf("Len after re-map = %d, want 4", f.Len())
	}
	if got, ok := f.Lookup(17); !ok || got.Phys != 0x40000 {
		t.Errorf("re-mapped hole reads wrong: %+v %v", got, ok)
	}

	// A brand-new vpn extends the table.
	f.Map(100, PTE{Phys: 0x50000, Present: true})
	if f.Len() != 5 {
		t.Errorf("Len after new vpn = %d, want 5", f.Len())
	}

	// The image and a sibling fork never saw any of it.
	g := reg.NewTableFrom(img, 6)
	if g.Len() != 4 {
		t.Errorf("sibling fork Len = %d, want 4", g.Len())
	}
	if got, ok := g.Lookup(17); !ok || got.Phys != 0x11000 {
		t.Errorf("sibling sees mutated base: %+v %v", got, ok)
	}
	if got, _ := g.Lookup(16); !got.Writable {
		t.Error("sibling lost base permissions to a fork's shadow")
	}
}

// TestPTForkTranslateParity checks the hot Translate path resolves
// identically through a fork and through a cold-populated table —
// including permission faults and holes.
func TestPTForkTranslateParity(t *testing.T) {
	build := func(pt *PageTable) {
		pt.MapRange(0x10000, 0x80000, 8, true, true, false, false)
		pt.MapRange(0x30000, 0x90000, 2, false, false, true, true)
	}
	reg := NewRegistry()
	cold := reg.NewTable(1)
	build(cold)

	builder := reg.NewTable(0)
	build(builder)
	fork := reg.NewTableFrom(builder.Freeze(), 1)

	for _, tc := range []struct {
		va   uint64
		acc  Access
		user bool
	}{
		{0x10008, AccessRead, true},
		{0x12000, AccessWrite, true},
		{0x30000, AccessRead, true},   // supervisor page from user: fault
		{0x30000, AccessFetch, false}, // NX page: fault
		{0x70000, AccessRead, true},   // unmapped
	} {
		cpa, cpte, cf := cold.Translate(tc.va, tc.acc, tc.user)
		fpa, fpte, ff := fork.Translate(tc.va, tc.acc, tc.user)
		if cpa != fpa || cpte != fpte || cf != ff {
			t.Errorf("va %#x acc %v user %v: cold (%#x %+v %v) fork (%#x %+v %v)",
				tc.va, tc.acc, tc.user, cpa, cpte, cf, fpa, fpte, ff)
		}
	}

	// A hole must fault exactly like a never-mapped page.
	fork.Unmap(VPN(0x11000))
	cold.Unmap(VPN(0x11000))
	cpa, _, cf := cold.Translate(0x11000, AccessRead, true)
	fpa, _, ff := fork.Translate(0x11000, AccessRead, true)
	if cpa != fpa || cf != ff {
		t.Errorf("hole translate: cold (%#x %v) fork (%#x %v)", cpa, cf, fpa, ff)
	}
}

// TestPTCloneOfForkSharesBase checks Clone on a forked table: deep-copy
// semantics (mutations stay private) with the frozen base shared, holes
// copied, and Len preserved.
func TestPTCloneOfForkSharesBase(t *testing.T) {
	reg := NewRegistry()
	b := reg.NewTable(0)
	b.MapRange(0x10000, 0x10000, 6, true, true, false, false) // vpns 16..21
	f := reg.NewTableFrom(b.Freeze(), 2)
	f.Unmap(18)
	f.Map(30, PTE{Phys: 0x60000, Present: true})

	c := f.Clone(reg, 3)
	if c.Len() != f.Len() {
		t.Fatalf("clone Len = %d, want %d", c.Len(), f.Len())
	}
	if c.base == nil || &c.base != &f.base && c.base[16] != f.base[16] {
		t.Error("clone did not share the frozen base layer")
	}
	if _, ok := c.Lookup(18); ok {
		t.Error("clone lost the hole")
	}
	// Divergence after the clone stays private on both sides.
	c.Map(18, PTE{Phys: 0x70000, Present: true})
	if _, ok := f.Lookup(18); ok {
		t.Error("clone re-map leaked into the original")
	}
	f.Unmap(19)
	if _, ok := c.Lookup(19); !ok {
		t.Error("original unmap leaked into the clone")
	}
	if c.Root == f.Root {
		t.Error("clone shares the original's root id")
	}
}

// TestNewTableFromRootParity checks fork and cold construction draw
// identical root ids from the registry in the same order — CR3 values
// are part of the simulated output, so fork must be invisible there.
func TestNewTableFromRootParity(t *testing.T) {
	mk := func(fork bool) []uint64 {
		reg := NewRegistry()
		var img *PTImage
		{
			scratch := NewRegistry().NewTable(0)
			scratch.MapRange(0x10000, 0x10000, 2, true, true, false, false)
			img = scratch.Freeze()
		}
		var roots []uint64
		for i := 0; i < 3; i++ {
			var pt *PageTable
			if fork {
				pt = reg.NewTableFrom(img, uint16(i))
			} else {
				pt = reg.NewTable(uint16(i))
				pt.MapRange(0x10000, 0x10000, 2, true, true, false, false)
			}
			roots = append(roots, CR3(pt))
		}
		return roots
	}
	cold, forked := mk(false), mk(true)
	for i := range cold {
		if cold[i] != forked[i] {
			t.Fatalf("table %d: cold CR3 %#x, forked CR3 %#x", i, cold[i], forked[i])
		}
	}
}
