package mem

import (
	"testing"
	"testing/quick"
)

func TestPhysReadWrite64(t *testing.T) {
	p := NewPhys()
	if got := p.Read64(0x1000); got != 0 {
		t.Errorf("untouched memory = %#x, want 0", got)
	}
	p.Write64(0x1000, 0xdeadbeefcafef00d)
	if got := p.Read64(0x1000); got != 0xdeadbeefcafef00d {
		t.Errorf("read back = %#x", got)
	}
	// Neighbour remains zero.
	if got := p.Read64(0x1008); got != 0 {
		t.Errorf("neighbour = %#x, want 0", got)
	}
}

func TestPhysRoundTripProperty(t *testing.T) {
	p := NewPhys()
	f := func(page uint16, slot uint16, v uint64) bool {
		pa := uint64(page)<<PageShift | uint64(slot%512)*8
		p.Write64(pa, v)
		return p.Read64(pa) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPhysBytesCrossPage(t *testing.T) {
	p := NewPhys()
	data := make([]byte, 2*PageSize+17)
	for i := range data {
		data[i] = byte(i * 7)
	}
	base := uint64(0x5ff0) // deliberately unaligned, crosses pages
	p.WriteBytes(base, data)
	got := make([]byte, len(data))
	p.ReadBytes(base, got)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], data[i])
		}
	}
}

func TestPhysReadBytesUnmapped(t *testing.T) {
	p := NewPhys()
	buf := []byte{1, 2, 3, 4}
	p.ReadBytes(0x123456, buf)
	for i, b := range buf {
		if b != 0 {
			t.Errorf("buf[%d] = %d, want 0", i, b)
		}
	}
}

func TestTranslatePermissions(t *testing.T) {
	reg := NewRegistry()
	pt := reg.NewTable(1)
	pt.Map(VPN(0x400000), PTE{Phys: 0x8000, Present: true, Writable: false, User: true})
	pt.Map(VPN(0x500000), PTE{Phys: 0x9000, Present: true, Writable: true, User: false})
	pt.Map(VPN(0x600000), PTE{Phys: 0xa000, Present: true, Writable: true, User: true, NX: true})
	pt.Map(VPN(0x700000), PTE{Phys: 0xb000, Present: false, User: true})

	cases := []struct {
		name  string
		va    uint64
		acc   Access
		user  bool
		fault FaultKind
		pa    uint64
	}{
		{"user read user page", 0x400008, AccessRead, true, FaultNone, 0x8008},
		{"user write ro page", 0x400008, AccessWrite, true, FaultWrite, 0},
		{"user read kernel page", 0x500000, AccessRead, true, FaultProtection, 0},
		{"kernel read kernel page", 0x500010, AccessRead, false, FaultNone, 0x9010},
		{"kernel write kernel page", 0x500010, AccessWrite, false, FaultNone, 0x9010},
		{"fetch nx page", 0x600000, AccessFetch, true, FaultNX, 0},
		{"read nx page ok", 0x600000, AccessRead, true, FaultNone, 0xa000},
		{"not present", 0x700000, AccessRead, true, FaultNotPresent, 0},
		{"unmapped", 0x800000, AccessRead, false, FaultNotPresent, 0},
	}
	for _, c := range cases {
		pa, _, fault := pt.Translate(c.va, c.acc, c.user)
		if fault != c.fault {
			t.Errorf("%s: fault = %v, want %v", c.name, fault, c.fault)
		}
		if fault == FaultNone && pa != c.pa {
			t.Errorf("%s: pa = %#x, want %#x", c.name, pa, c.pa)
		}
	}
}

func TestMapRange(t *testing.T) {
	reg := NewRegistry()
	pt := reg.NewTable(0)
	pt.MapRange(0x400000, 0x10000, 4, true, true, false, false)
	for i := 0; i < 4; i++ {
		va := uint64(0x400000 + i*PageSize + 24)
		pa, _, fault := pt.Translate(va, AccessWrite, true)
		if fault != FaultNone {
			t.Fatalf("page %d: fault %v", i, fault)
		}
		want := uint64(0x10000 + i*PageSize + 24)
		if pa != want {
			t.Errorf("page %d: pa = %#x, want %#x", i, pa, want)
		}
	}
	if _, _, fault := pt.Translate(0x400000+4*PageSize, AccessRead, true); fault != FaultNotPresent {
		t.Error("page past range should not be mapped")
	}
}

func TestCloneIndependence(t *testing.T) {
	reg := NewRegistry()
	pt := reg.NewTable(1)
	pt.MapRange(0x1000, 0x2000, 1, true, true, false, false)
	cl := pt.Clone(reg, 2)
	if cl.Root == pt.Root {
		t.Fatal("clone must get a fresh root")
	}
	if cl.PCID != 2 {
		t.Errorf("clone pcid = %d, want 2", cl.PCID)
	}
	// Clone sees the mapping.
	if _, _, fault := cl.Translate(0x1000, AccessRead, true); fault != FaultNone {
		t.Error("clone lost mapping")
	}
	// Mutating the clone does not affect the original.
	cl.Unmap(VPN(0x1000))
	if _, _, fault := pt.Translate(0x1000, AccessRead, true); fault != FaultNone {
		t.Error("unmapping clone affected original")
	}
}

func TestCR3Encoding(t *testing.T) {
	reg := NewRegistry()
	pt := reg.NewTable(0xabc)
	cr3 := CR3(pt)
	if CR3Root(cr3) != pt.Root {
		t.Errorf("root round trip: %#x != %#x", CR3Root(cr3), pt.Root)
	}
	if CR3PCID(cr3) != 0xabc {
		t.Errorf("pcid round trip: %#x", CR3PCID(cr3))
	}
	if reg.Lookup(CR3Root(cr3)) != pt {
		t.Error("registry lookup failed")
	}
}

func TestNestedTranslate(t *testing.T) {
	nt := NewNestedTable()
	nt.MapRange(0x0, 0x100000, 16, true)
	pa, fault := nt.Translate(0x3456, AccessRead)
	if fault != FaultNone || pa != 0x103456 {
		t.Errorf("nested translate = %#x/%v", pa, fault)
	}
	if _, fault := nt.Translate(0x10000000, AccessRead); fault != FaultNotPresent {
		t.Error("unmapped gpa should fault")
	}
	// Read-only nested page rejects writes.
	ro := NewNestedTable()
	ro.MapRange(0x0, 0x0, 1, false)
	if _, fault := ro.Translate(0x10, AccessWrite); fault != FaultWrite {
		t.Error("write to ro nested page should fault")
	}
}

func TestFaultKindString(t *testing.T) {
	kinds := []FaultKind{FaultNone, FaultNotPresent, FaultProtection, FaultWrite, FaultNX}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("bad or duplicate string %q", s)
		}
		seen[s] = true
	}
}

func TestPhys64CrossPageNoPanic(t *testing.T) {
	p := NewPhys()
	// A 64-bit access straddling a page boundary must not panic: the
	// core raises an alignment fault for virtual accesses before they
	// reach physical memory, but library callers (device DMA, debug
	// dumps) may still hand us any address.
	pa := uint64(2*PageSize - 3)
	p.Write64(pa, 0x1122334455667788)
	if got := p.Read64(pa); got != 0x1122334455667788 {
		t.Errorf("cross-page read back = %#x", got)
	}
	// The byte-wise path must agree with WriteBytes layout.
	var buf [8]byte
	p.ReadBytes(pa, buf[:])
	var fromBytes uint64
	for i, b := range buf {
		fromBytes |= uint64(b) << (8 * i)
	}
	if fromBytes != 0x1122334455667788 {
		t.Errorf("byte view = %#x, want little-endian value", fromBytes)
	}
	// Neighbouring aligned words see exactly the overlapping bytes.
	if p.Read64(2*PageSize-8)>>40 != 0x667788 {
		t.Errorf("low page tail = %#x", p.Read64(2*PageSize-8))
	}
}
