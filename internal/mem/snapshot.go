// Copy-on-write snapshots: frozen images of physical memory and page
// tables that checkpointed warmup forks cells from. An image is built
// once (by constructing a throwaway machine and freezing its state) and
// then shared by every cell whose checkpoint key matches; forking from
// an image costs one small allocation, not a copy of the image.
//
// Both image kinds follow the same builder pattern: the builder
// constructs state into an ordinary Phys/PageTable, calls
// Snapshot/Freeze, and discards the builder object. Nothing may write
// through the builder after freezing — the image aliases its maps — so
// the freeze methods are documented as consuming their receiver.
// Consumers fork with NewPhysFrom/NewTableFrom and see the image as a
// read-only base layer: reads fall through to it, writes land in a
// private overlay (Phys privatises the touched page; PageTable shadows
// the entry), so forks never disturb the image or each other.
package mem

// PhysImage is an immutable snapshot of physical memory. Safe to share
// across goroutines: the pages are never written after Snapshot.
type PhysImage struct {
	pages map[uint64]*[PageSize]byte
}

// Pages returns the number of populated pages in the image.
func (img *PhysImage) Pages() int { return len(img.pages) }

// Snapshot freezes p's current contents into an immutable image. It
// consumes the receiver: the caller must not read or write p afterwards
// (the image aliases p's page map). Build the state, snapshot it, drop
// the builder.
func (p *Phys) Snapshot() *PhysImage {
	if p.base == nil {
		return &PhysImage{pages: p.pages}
	}
	// Snapshot of a fork: merge the overlay over the base so the image
	// is self-contained (pages are shared with both, never copied).
	merged := make(map[uint64]*[PageSize]byte, len(p.base)+len(p.pages))
	for ppn, pg := range p.base {
		merged[ppn] = pg
	}
	for ppn, pg := range p.pages {
		merged[ppn] = pg
	}
	return &PhysImage{pages: merged}
}

// NewPhysFrom returns physical memory forked from a snapshot: reads see
// the image's pages, and the first write to any shared page copies it
// into the fork (copy-on-write), so a fork costs one map allocation
// regardless of image size.
func NewPhysFrom(img *PhysImage) *Phys {
	return &Phys{pages: make(map[uint64]*[PageSize]byte), base: img.pages, fast: FastPath()}
}

// PTImage is an immutable snapshot of a page table's mappings. Safe to
// share across goroutines.
type PTImage struct {
	entries map[uint64]PTE
}

// Len returns the number of mappings in the image.
func (img *PTImage) Len() int { return len(img.entries) }

// Freeze converts pt's current mappings into an immutable image. Like
// Phys.Snapshot it consumes the receiver: the image aliases pt's entry
// map, so the caller must discard pt without further Map/Unmap calls.
func (pt *PageTable) Freeze() *PTImage {
	if pt.base == nil && len(pt.holes) == 0 {
		return &PTImage{entries: pt.entries}
	}
	merged := make(map[uint64]PTE, pt.Len())
	for vpn, pte := range pt.base {
		if _, hole := pt.holes[vpn]; !hole {
			merged[vpn] = pte
		}
	}
	for vpn, pte := range pt.entries {
		merged[vpn] = pte
	}
	return &PTImage{entries: merged}
}

// NewTableFrom allocates a table forked from a frozen image: the image
// becomes a read-only base layer and later Map/Unmap calls build a
// private overlay, so the fork is a page-table copy in name only — it
// costs one registry slot and an empty map. Root-id assignment is
// identical to NewTable, so a forked table is indistinguishable from a
// freshly populated one to everything that consumes CR3 values.
func (r *Registry) NewTableFrom(img *PTImage, pcid uint16) *PageTable {
	pt := r.NewTable(pcid)
	pt.base = img.entries
	return pt
}
