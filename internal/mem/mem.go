// Package mem models physical memory and page-table based address
// translation for the simulated machine, including the dual page tables
// used by kernel page-table isolation (PTI) and the nested page tables
// used when running guests under the hypervisor.
package mem

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// fastOff is inverted so the zero value means the fast path is on.
var fastOff atomic.Bool

// SetFastPath enables or disables the last-page pointer cache for
// subsequently constructed Phys instances, returning the previous
// setting. The cache is purely host-side — pages are never removed from
// a Phys, so a cached page pointer can never go stale — and exists
// behind a switch only so the -memfast ablation exercises the reference
// map-lookup path.
func SetFastPath(on bool) (prev bool) { return !fastOff.Swap(!on) }

// FastPath reports whether the fast path is enabled for new Phys
// instances.
func FastPath() bool { return !fastOff.Load() }

// PageSize is the architectural page size.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// PageMask extracts the offset within a page.
const PageMask = PageSize - 1

// VPN returns the virtual page number of va.
func VPN(va uint64) uint64 { return va >> PageShift }

// PageBase returns the page-aligned base of addr.
func PageBase(addr uint64) uint64 { return addr &^ uint64(PageMask) }

// Phys is sparse physical memory: pages spring into existence zeroed on
// first touch. All values are stored little-endian.
type Phys struct {
	pages map[uint64]*[PageSize]byte
	// base is the frozen snapshot layer when this Phys was forked with
	// NewPhysFrom (nil otherwise). Reads fall through to it; the first
	// write to a shared page copies it into pages (copy-on-write).
	base map[uint64]*[PageSize]byte
	// Last-page cache: consecutive accesses overwhelmingly land on the
	// page of the previous access (straight-line code, stack traffic,
	// array sweeps), so remembering the last resolved page skips the
	// map hash on repeats. Pages are never deleted, so the pointer can
	// never dangle; lastPg==nil means no page cached (PPN 0 is a real
	// page number, so the pointer is the sentinel, not the PPN).
	// lastPg only ever holds private pages; base pages get their own
	// read-side cache (lastBPg) so a writer can never be handed a
	// frozen snapshot page.
	lastPPN  uint64
	lastPg   *[PageSize]byte
	lastBPPN uint64
	lastBPg  *[PageSize]byte
	fast     bool
}

// NewPhys returns empty physical memory.
func NewPhys() *Phys {
	return &Phys{pages: make(map[uint64]*[PageSize]byte), fast: FastPath()}
}

func (p *Phys) page(pa uint64) *[PageSize]byte {
	ppn := pa >> PageShift
	if p.fast && p.lastPg != nil && p.lastPPN == ppn {
		return p.lastPg
	}
	pg, ok := p.pages[ppn]
	if !ok {
		pg = new([PageSize]byte)
		if bpg, shared := p.base[ppn]; shared {
			// Copy-on-write: privatise the snapshot page, and drop it
			// from the base read cache so reads see the private copy.
			*pg = *bpg
			if p.lastBPg != nil && p.lastBPPN == ppn {
				p.lastBPg = nil
			}
		}
		p.pages[ppn] = pg
	}
	if p.fast {
		p.lastPPN, p.lastPg = ppn, pg
	}
	return pg
}

// lookup resolves pa's page without allocating, caching a successful
// resolution. Absent pages are deliberately not cached as absent: the
// next access may allocate the page through page(), and a negative
// cache would have to be invalidated there — not worth it for a case
// (reads of never-written pages) that returns zero anyway.
func (p *Phys) lookup(pa uint64) (*[PageSize]byte, bool) {
	ppn := pa >> PageShift
	if p.fast && p.lastPg != nil && p.lastPPN == ppn {
		return p.lastPg, true
	}
	if pg, ok := p.pages[ppn]; ok {
		if p.fast {
			p.lastPPN, p.lastPg = ppn, pg
		}
		return pg, ok
	}
	if p.base != nil {
		// The private layer missed, so a base hit cannot be shadowed;
		// page() invalidates this cache when it privatises a page.
		if p.fast && p.lastBPg != nil && p.lastBPPN == ppn {
			return p.lastBPg, true
		}
		if pg, ok := p.base[ppn]; ok {
			if p.fast {
				p.lastBPPN, p.lastBPg = ppn, pg
			}
			return pg, true
		}
	}
	return nil, false
}

// PageFor returns the backing array for pa's page, allocating it on
// first touch. The pointer stays valid for the lifetime of the Phys
// (pages are never removed); callers such as the decoded-block
// interpreter may hold it to bypass per-access resolution entirely.
func (p *Phys) PageFor(pa uint64) *[PageSize]byte { return p.page(pa) }

// Read64 reads 8 bytes at physical address pa. The fast path serves
// accesses within one page (all the core ever issues — it raises an
// alignment fault for straddling virtual accesses before translation);
// a physical access that does cross a boundary falls back to the
// byte-wise path rather than panicking, so library callers can never
// crash the process with a bad address.
func (p *Phys) Read64(pa uint64) uint64 {
	off := pa & PageMask
	if off+8 > PageSize {
		var buf [8]byte
		p.ReadBytes(pa, buf[:])
		return binary.LittleEndian.Uint64(buf[:])
	}
	pg, ok := p.lookup(pa)
	if !ok {
		return 0
	}
	return binary.LittleEndian.Uint64(pg[off : off+8])
}

// Write64 writes 8 bytes at physical address pa, crossing a page
// boundary byte-wise when needed (see Read64).
func (p *Phys) Write64(pa uint64, v uint64) {
	off := pa & PageMask
	if off+8 > PageSize {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		p.WriteBytes(pa, buf[:])
		return
	}
	binary.LittleEndian.PutUint64(p.page(pa)[off:off+8], v)
}

// ReadBytes copies len(buf) bytes starting at pa into buf, crossing pages
// as needed.
func (p *Phys) ReadBytes(pa uint64, buf []byte) {
	for len(buf) > 0 {
		off := pa & PageMask
		n := PageSize - off
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		if pg, ok := p.lookup(pa); ok {
			copy(buf[:n], pg[off:off+n])
		} else {
			for i := range buf[:n] {
				buf[i] = 0
			}
		}
		buf = buf[n:]
		pa += n
	}
}

// WriteBytes copies buf into physical memory starting at pa.
func (p *Phys) WriteBytes(pa uint64, buf []byte) {
	for len(buf) > 0 {
		off := pa & PageMask
		n := PageSize - off
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		copy(p.page(pa)[off:off+n], buf[:n])
		buf = buf[n:]
		pa += n
	}
}

// PopulatedPages returns the number of physical pages that have been
// touched (useful for tests and memory accounting), counting snapshot
// pages not yet privatised exactly once.
func (p *Phys) PopulatedPages() int {
	n := len(p.pages)
	for ppn := range p.base {
		if _, ok := p.pages[ppn]; !ok {
			n++
		}
	}
	return n
}

// PTE is a page-table entry. The simulator uses a flat VPN→PTE map per
// table rather than a radix tree; the radix walk cost is folded into the
// TLB-miss penalty.
type PTE struct {
	Phys     uint64 // physical page base (page aligned)
	Present  bool
	Writable bool
	User     bool // accessible from user mode
	NX       bool // not executable
	Global   bool // survives PCID-specific TLB flushes
}

// FaultKind classifies a translation failure.
type FaultKind int

// Translation fault kinds.
const (
	FaultNone       FaultKind = iota
	FaultNotPresent           // no mapping / present bit clear
	FaultProtection           // user access to supervisor page
	FaultWrite                // write to read-only page
	FaultNX                   // fetch from no-execute page
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultNotPresent:
		return "not-present"
	case FaultProtection:
		return "protection"
	case FaultWrite:
		return "write-protect"
	case FaultNX:
		return "no-execute"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Access describes the kind of memory access being translated.
type Access int

// Access kinds.
const (
	AccessRead Access = iota
	AccessWrite
	AccessFetch
)

// PageTable maps virtual page numbers to PTEs. Root is the table's unique
// identity; loading Root<<12|PCID into CR3 activates the table.
type PageTable struct {
	Root    uint64 // unique id, assigned by the Registry
	PCID    uint16 // process-context id used to tag TLB entries
	entries map[uint64]PTE
	// base is the frozen template layer when this table was forked with
	// NewTableFrom (nil for plain tables). Lookups fall through to it;
	// Map shadows it in entries and Unmap records a hole over it. An
	// entry present in both layers counts once; entries and holes are
	// disjoint by construction (Map clears the hole).
	base  map[uint64]PTE
	holes map[uint64]struct{}
}

// Map installs a PTE for virtual page vpn.
func (pt *PageTable) Map(vpn uint64, pte PTE) {
	pt.entries[vpn] = pte
	if pt.holes != nil {
		delete(pt.holes, vpn)
	}
}

// MapRange identity-populates npages pages beginning at va onto physical
// memory beginning at pa with the given permissions.
func (pt *PageTable) MapRange(va, pa uint64, npages int, writable, user, nx bool, global bool) {
	if len(pt.entries) == 0 && npages > 8 {
		// First large range into a fresh table: size the map up front so
		// the insert loop doesn't rehash log(npages) times. Tables are
		// built per simulation cell, so construction cost is on the hot
		// path of every sweep.
		pt.entries = make(map[uint64]PTE, npages)
	}
	for i := 0; i < npages; i++ {
		pt.Map(VPN(va)+uint64(i), PTE{
			Phys:     PageBase(pa) + uint64(i)*PageSize,
			Present:  true,
			Writable: writable,
			User:     user,
			NX:       nx,
			Global:   global,
		})
	}
}

// Unmap removes the mapping for vpn.
func (pt *PageTable) Unmap(vpn uint64) {
	delete(pt.entries, vpn)
	if pt.base != nil {
		if _, ok := pt.base[vpn]; ok {
			if pt.holes == nil {
				pt.holes = make(map[uint64]struct{})
			}
			pt.holes[vpn] = struct{}{}
		}
	}
}

// Lookup returns the PTE for vpn. ok is false when there is no entry at
// all (distinct from an entry with Present=false, which matters for L1TF).
func (pt *PageTable) Lookup(vpn uint64) (PTE, bool) {
	if pte, ok := pt.entries[vpn]; ok {
		return pte, ok
	}
	if pt.base != nil {
		if _, hole := pt.holes[vpn]; !hole {
			pte, ok := pt.base[vpn]
			return pte, ok
		}
	}
	return PTE{}, false
}

// Len returns the number of installed entries. Forked tables count a
// vpn mapped in both layers once — fork's table-copy charge in the
// kernel depends on this matching a freshly populated table exactly.
func (pt *PageTable) Len() int {
	if pt.base == nil {
		return len(pt.entries)
	}
	n := len(pt.entries) + len(pt.base) - len(pt.holes)
	for vpn := range pt.entries {
		if _, ok := pt.base[vpn]; ok {
			n--
		}
	}
	return n
}

// Clone returns a deep copy of the table with a new identity assigned by
// reg. Used by fork and by PTI to derive the user-visible table. Cloning
// a forked table shares the frozen base layer and copies only the
// mutable overlay — the base is immutable, so sharing it preserves
// deep-copy semantics at a fraction of the cost (fork-heavy benchmarks
// clone kernel-sized tables every iteration).
func (pt *PageTable) Clone(reg *Registry, pcid uint16) *PageTable {
	n := reg.NewTable(pcid)
	n.base = pt.base
	if len(pt.holes) > 0 {
		n.holes = make(map[uint64]struct{}, len(pt.holes))
		for vpn := range pt.holes {
			n.holes[vpn] = struct{}{}
		}
	}
	// Pre-size for the copy: PTI clones every process table, so clone
	// cost (and its rehashing in particular) is paid per cell.
	n.entries = make(map[uint64]PTE, len(pt.entries))
	for vpn, pte := range pt.entries {
		n.entries[vpn] = pte
	}
	return n
}

// Translate checks a single access against the table.
func (pt *PageTable) Translate(va uint64, acc Access, user bool) (pa uint64, pte PTE, fault FaultKind) {
	pte, ok := pt.entries[VPN(va)]
	if !ok && pt.base != nil {
		if _, hole := pt.holes[VPN(va)]; !hole {
			pte, ok = pt.base[VPN(va)]
		}
	}
	if !ok || !pte.Present {
		return 0, pte, FaultNotPresent
	}
	if user && !pte.User {
		return 0, pte, FaultProtection
	}
	if acc == AccessWrite && !pte.Writable {
		return 0, pte, FaultWrite
	}
	if acc == AccessFetch && pte.NX {
		return 0, pte, FaultNX
	}
	return pte.Phys | (va & PageMask), pte, FaultNone
}

// Registry issues page tables with unique roots and resolves CR3 values
// back to tables, mimicking how hardware walks whatever CR3 points at.
type Registry struct {
	next   uint64
	tables map[uint64]*PageTable
}

// NewRegistry returns an empty page-table registry.
func NewRegistry() *Registry {
	return &Registry{next: 1, tables: make(map[uint64]*PageTable)}
}

// NewTable allocates a fresh empty table with the given PCID.
func (r *Registry) NewTable(pcid uint16) *PageTable {
	pt := &PageTable{Root: r.next, PCID: pcid, entries: make(map[uint64]PTE)}
	r.next++
	r.tables[pt.Root] = pt
	return pt
}

// Lookup resolves a root id to its table.
func (r *Registry) Lookup(root uint64) *PageTable { return r.tables[root] }

// CR3 encodes a table reference as a CR3 value (root<<12 | pcid).
func CR3(pt *PageTable) uint64 { return pt.Root<<PageShift | uint64(pt.PCID) }

// CR3Root extracts the root id from a CR3 value.
func CR3Root(cr3 uint64) uint64 { return cr3 >> PageShift }

// CR3PCID extracts the PCID from a CR3 value.
func CR3PCID(cr3 uint64) uint16 { return uint16(cr3 & PageMask) }

// NestedTable maps guest-physical to host-physical pages (EPT/NPT). A nil
// NestedTable means no virtualisation: guest-physical == host-physical.
// Large identity regions (the common huge-page EPT case) are stored as
// intervals rather than per-page entries.
type NestedTable struct {
	entries  map[uint64]PTE
	identity []identRange
}

type identRange struct {
	base, limit uint64 // [base, limit)
	offset      uint64 // hpa = gpa + offset
	writable    bool
}

// NewNestedTable returns an empty nested table.
func NewNestedTable() *NestedTable {
	return &NestedTable{entries: make(map[uint64]PTE)}
}

// MapIdentity installs a large mapping of [gpa, gpa+n) onto host physical
// memory starting at hpa, stored as a single interval (the EPT huge-page
// fast path).
func (nt *NestedTable) MapIdentity(gpa, hpa, n uint64, writable bool) {
	nt.identity = append(nt.identity, identRange{
		base: PageBase(gpa), limit: PageBase(gpa) + n, offset: hpa - PageBase(gpa), writable: writable,
	})
}

// Map installs a guest-physical → host-physical mapping.
func (nt *NestedTable) Map(gppn uint64, pte PTE) { nt.entries[gppn] = pte }

// MapRange populates npages starting at guest-physical gpa onto host
// physical hpa.
func (nt *NestedTable) MapRange(gpa, hpa uint64, npages int, writable bool) {
	for i := 0; i < npages; i++ {
		nt.Map(VPN(gpa)+uint64(i), PTE{
			Phys:     PageBase(hpa) + uint64(i)*PageSize,
			Present:  true,
			Writable: writable,
			User:     true,
		})
	}
}

// Translate maps a guest-physical address to host-physical.
func (nt *NestedTable) Translate(gpa uint64, acc Access) (uint64, FaultKind) {
	if pte, ok := nt.entries[VPN(gpa)]; ok {
		if !pte.Present {
			return 0, FaultNotPresent
		}
		if acc == AccessWrite && !pte.Writable {
			return 0, FaultWrite
		}
		return pte.Phys | (gpa & PageMask), FaultNone
	}
	for _, r := range nt.identity {
		if gpa >= r.base && gpa < r.limit {
			if acc == AccessWrite && !r.writable {
				return 0, FaultWrite
			}
			return gpa + r.offset, FaultNone
		}
	}
	return 0, FaultNotPresent
}
