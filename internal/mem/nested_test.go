package mem

import (
	"testing"
	"testing/quick"
)

func TestNestedIdentityIntervals(t *testing.T) {
	nt := NewNestedTable()
	nt.MapIdentity(0x1000_0000, 0x9000_0000, 1<<20, true)

	pa, fault := nt.Translate(0x1000_1234, AccessRead)
	if fault != FaultNone || pa != 0x9000_1234 {
		t.Errorf("identity translate = %#x/%v", pa, fault)
	}
	// Below and above the interval: not present.
	if _, fault := nt.Translate(0x0fff_f000, AccessRead); fault != FaultNotPresent {
		t.Error("below interval translated")
	}
	if _, fault := nt.Translate(0x1010_0000, AccessRead); fault != FaultNotPresent {
		t.Error("above interval translated")
	}
}

func TestNestedIdentityReadOnly(t *testing.T) {
	nt := NewNestedTable()
	nt.MapIdentity(0, 0, 1<<16, false)
	if _, fault := nt.Translate(0x100, AccessRead); fault != FaultNone {
		t.Error("read refused")
	}
	if _, fault := nt.Translate(0x100, AccessWrite); fault != FaultWrite {
		t.Error("write to read-only identity range allowed")
	}
}

func TestNestedExplicitEntryWinsOverIdentity(t *testing.T) {
	nt := NewNestedTable()
	nt.MapIdentity(0, 0, 1<<20, true)
	// A per-page entry overrides the identity interval.
	nt.Map(VPN(0x4000), PTE{Phys: 0xaa000, Present: true, Writable: true})
	pa, fault := nt.Translate(0x4010, AccessRead)
	if fault != FaultNone || pa != 0xaa010 {
		t.Errorf("explicit entry = %#x/%v, want remap to win", pa, fault)
	}
	// A non-present explicit entry blocks even inside the interval.
	nt.Map(VPN(0x5000), PTE{Present: false})
	if _, fault := nt.Translate(0x5000, AccessRead); fault != FaultNotPresent {
		t.Error("non-present explicit entry did not block")
	}
}

// Property: within an identity interval with offset, translation is
// exactly gpa+offset for reads.
func TestNestedIdentityOffsetProperty(t *testing.T) {
	nt := NewNestedTable()
	const base, hpa, size = 0x2000_0000, 0x7000_0000, 1 << 24
	nt.MapIdentity(base, hpa, size, true)
	f := func(off uint32) bool {
		gpa := uint64(base) + uint64(off)%size
		pa, fault := nt.Translate(gpa, AccessRead)
		return fault == FaultNone && pa == gpa+(hpa-base)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
