package harness

import (
	"fmt"

	"spectrebench/internal/cpu"
	"spectrebench/internal/js"
	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
	"spectrebench/internal/stats"
	"spectrebench/internal/workloads/octane"
)

func init() {
	register(Experiment{
		ID: "whatif-v1hw", Paper: "§7",
		Title: "What-if: hardware-fused cmov guards (the paper's Spectre V1 acceleration proposal)",
		Run:   runWhatIfV1HW,
	})
}

// runWhatIfV1HW quantifies §7's prediction: if hardware recognised the
// JIT's cmov-before-load guard pattern and fused it, the Spectre V1
// masking and object-guard costs would disappear while the JIT keeps
// emitting the same (now architecturally free) guards. The experiment
// runs the Octane suite on each CPU with the full browser hardening,
// with and without the hypothetical fusion, and reports the recovered
// fraction of runtime.
func runWhatIfV1HW() (*Table, error) {
	t := &Table{
		ID:    "whatif-v1hw",
		Title: "Octane with full hardening: today's hardware vs hypothetical guard-fusion",
		Columns: []string{"CPU", "hardened (cycles)", "with fusion (cycles)",
			"recovered", "guards left in code"},
	}
	for _, m := range model.All() {
		base, err := runOctaneHardened(m, false)
		if err != nil {
			return nil, err
		}
		fused, err := runOctaneHardened(m, true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			m.Uarch, cyc(base), cyc(fused),
			pct((base - fused) / base), "yes (still block the attack)",
		})
	}
	t.Notes = append(t.Notes,
		"the JIT emits identical guard instructions in both configurations; only their cycle cost changes",
		"§7: \"this pattern of a conditional move followed by a load could be detected by hardware\"")
	return t, nil
}

// runOctaneHardened runs the fully hardened Octane suite, optionally on
// a core with the hypothetical guard fusion enabled.
func runOctaneHardened(m *model.CPU, fusion bool) (float64, error) {
	var cycles []float64
	for _, k := range octane.Kernels() {
		e := js.NewEngine(m, kernel.Defaults(m), js.AllMitigations())
		if fusion {
			e.CPUSetup = func(c *cpu.Core) { c.FusedCmovGuards = true }
		}
		res, err := e.Run(k.Source, 200_000_000)
		if err != nil {
			return 0, fmt.Errorf("whatif %s: %w", k.Name, err)
		}
		if len(res.Reports) == 0 || res.Reports[len(res.Reports)-1] != k.Expect {
			return 0, fmt.Errorf("whatif %s: bad checksum %v", k.Name, res.Reports)
		}
		cycles = append(cycles, float64(res.Cycles))
	}
	return stats.GeoMean(cycles), nil
}
