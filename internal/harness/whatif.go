package harness

import (
	"fmt"

	"spectrebench/internal/cpu"
	"spectrebench/internal/engine"
	"spectrebench/internal/js"
	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
	"spectrebench/internal/stats"
	"spectrebench/internal/workloads/octane"
)

func init() {
	register(Experiment{
		ID: "whatif-v1hw", Paper: "§7",
		Title: "What-if: hardware-fused cmov guards (the paper's Spectre V1 acceleration proposal)",
		Run:   runWhatIfV1HW,
	})
}

// runWhatIfV1HW quantifies §7's prediction: if hardware recognised the
// JIT's cmov-before-load guard pattern and fused it, the Spectre V1
// masking and object-guard costs would disappear while the JIT keeps
// emitting the same (now architecturally free) guards. The experiment
// runs the Octane suite on each CPU with the full browser hardening,
// with and without the hypothetical fusion, and reports the recovered
// fraction of runtime.
//
// The unfused arm is exactly the fully hardened suite of Figure 3's
// first rung (octane.BrowserDefault folds the same mitigation set), so
// it is declared under the same "octane/suite" cell key and simulates
// once for both experiments.
func runWhatIfV1HW() (*Table, error) {
	t := &Table{
		ID:    "whatif-v1hw",
		Title: "Octane with full hardening: today's hardware vs hypothetical guard-fusion",
		Columns: []string{"CPU", "hardened (cycles)", "with fusion (cycles)",
			"recovered", "guards left in code"},
	}
	cs := declareCells()
	hardened := octane.BrowserDefault()
	type arms struct{ base, fused *engine.Task }
	cells := make([]arms, 0, len(model.All()))
	for _, m := range model.All() {
		m := m
		cells = append(cells, arms{
			base: cs.raw("octane/suite", m.Uarch, fmt.Sprintf("%+v", hardened), func() (any, error) {
				v, err := octane.RunSuite(m, hardened)
				if err != nil {
					return nil, err
				}
				return v, nil
			}),
			fused: cs.raw("octane/suite-fused", m.Uarch, fmt.Sprintf("%+v", hardened), func() (any, error) {
				v, err := runOctaneFused(m)
				if err != nil {
					return nil, err
				}
				return v, nil
			}),
		})
	}
	for i, m := range model.All() {
		base, err := waitF(cells[i].base)
		if err != nil {
			return nil, err
		}
		fused, err := waitF(cells[i].fused)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			m.Uarch, cyc(base), cyc(fused),
			pct((base - fused) / base), "yes (still block the attack)",
		})
	}
	t.Notes = append(t.Notes,
		"the JIT emits identical guard instructions in both configurations; only their cycle cost changes",
		"§7: \"this pattern of a conditional move followed by a load could be detected by hardware\"")
	return t, nil
}

// runOctaneFused runs the fully hardened Octane suite on a core with
// the hypothetical guard fusion enabled.
func runOctaneFused(m *model.CPU) (float64, error) {
	var cycles []float64
	for _, k := range octane.Kernels() {
		e := js.NewEngine(m, kernel.Defaults(m), js.AllMitigations())
		e.CPUSetup = func(c *cpu.Core) { c.FusedCmovGuards = true }
		res, err := e.Run(k.Source, 200_000_000)
		if err != nil {
			return 0, fmt.Errorf("whatif %s: %w", k.Name, err)
		}
		if len(res.Reports) == 0 || res.Reports[len(res.Reports)-1] != k.Expect {
			return 0, fmt.Errorf("whatif %s: bad checksum %v", k.Name, res.Reports)
		}
		cycles = append(cycles, float64(res.Cycles))
	}
	return stats.GeoMean(cycles), nil
}
