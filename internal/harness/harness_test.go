package harness

import (
	"strconv"
	"strings"
	"testing"

	"spectrebench/internal/model"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig2", "fig3", "fig5", "lebench-detail", "parsec-default", "security", "smt-cost",
		"table1", "table10", "table2", "table3", "table4", "table5",
		"table6", "table7", "table8", "table9",
		"vm-lebench", "vm-lfs", "whatif-v1hw",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %q, want %q", i, e.ID, want[i])
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("%s: incomplete metadata", e.ID)
		}
	}
	if _, ok := Lookup("table3"); !ok {
		t.Error("Lookup failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup found a ghost")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		ID: "x", Title: "demo",
		Columns: []string{"a", "longcolumn"},
		Rows:    [][]string{{"v1", "v2"}, {"wide-value", "w"}},
		Notes:   []string{"a note"},
	}
	out := tb.Render()
	if !strings.Contains(out, "x — demo") || !strings.Contains(out, "longcolumn") ||
		!strings.Contains(out, "wide-value") || !strings.Contains(out, "note: a note") {
		t.Errorf("render output:\n%s", out)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,longcolumn\n") {
		t.Errorf("csv output:\n%s", csv)
	}
}

func parseNum(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// Table 3: measured syscall/sysret must match the paper values closely
// (the simulator executes the same instructions the model prices).
func TestTable3MatchesPaper(t *testing.T) {
	tb, err := runTable3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 8 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		meas, paper := parseNum(t, row[1]), parseNum(t, row[2])
		if diff := meas - paper; diff < -3 || diff > 3 {
			t.Errorf("%s: syscall measured %v vs paper %v", row[0], meas, paper)
		}
		meas, paper = parseNum(t, row[3]), parseNum(t, row[4])
		if diff := meas - paper; diff < -6 || diff > 6 {
			t.Errorf("%s: sysret measured %v vs paper %v", row[0], meas, paper)
		}
		if row[0] == "Broadwell" || row[0] == "Skylake Client" {
			meas, paper = parseNum(t, row[5]), parseNum(t, row[6])
			if diff := meas - paper; diff < -3 || diff > 3 {
				t.Errorf("%s: swap cr3 measured %v vs paper %v", row[0], meas, paper)
			}
		} else if row[5] != "N/A" {
			t.Errorf("%s: swap cr3 should be N/A", row[0])
		}
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	tb, err := runTable4()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		meas := parseNum(t, row[1])
		if row[2] != "N/A" {
			paper := parseNum(t, row[2])
			if diff := meas - paper; diff < -3 || diff > 3 {
				t.Errorf("%s: verw measured %v vs paper %v", row[0], meas, paper)
			}
		} else if meas > 60 {
			t.Errorf("%s: legacy verw measured %v, want tens of cycles", row[0], meas)
		}
	}
}

func TestTable6MatchesPaper(t *testing.T) {
	tb, err := runTable6()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		meas, paper := parseNum(t, row[1]), parseNum(t, row[2])
		if rel := (meas - paper) / paper; rel < -0.05 || rel > 0.05 {
			t.Errorf("%s: IBPB measured %v vs paper %v", row[0], meas, paper)
		}
	}
}

func TestTable8MatchesPaper(t *testing.T) {
	tb, err := runTable8()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		meas, paper := parseNum(t, row[1]), parseNum(t, row[2])
		if diff := meas - paper; diff < -4 || diff > 4 {
			t.Errorf("%s: lfence measured %v vs paper %v", row[0], meas, paper)
		}
	}
}

// Table 5: the AMD retpoline delta is calibrated exactly; the generic
// retpoline is emergent and must land within a plausible band.
func TestTable5Sanity(t *testing.T) {
	tb, err := runTable5()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if !strings.Contains(row[3], "+") {
			t.Errorf("%s: generic retpoline column %q", row[0], row[3])
		}
	}
	// Spot checks: Broadwell baseline ≈ model's IndirectBase.
	bw := tb.Rows[0]
	base := parseNum(t, bw[1])
	want := float64(model.Broadwell().Costs.IndirectBase)
	if base < want-4 || base > want+8 {
		t.Errorf("Broadwell indirect baseline = %v, model %v", base, want)
	}
}

// Table 1 must reproduce the paper's checkmark pattern.
func TestTable1Pattern(t *testing.T) {
	tb, err := runTable1()
	if err != nil {
		t.Fatal(err)
	}
	find := func(mitigation string) []string {
		for _, row := range tb.Rows {
			if row[1] == mitigation {
				return row[2:]
			}
		}
		t.Fatalf("row %q missing", mitigation)
		return nil
	}
	// PTI: only the first two CPUs (Broadwell, Skylake).
	pti := find("Page Table Isolation")
	wantPTI := []string{"✓", "✓", "", "", "", "", "", ""}
	for i := range wantPTI {
		if pti[i] != wantPTI[i] {
			t.Errorf("PTI column %d = %q, want %q", i, pti[i], wantPTI[i])
		}
	}
	// eIBRS: Cascade Lake + both Ice Lakes.
	eibrs := find("Enhanced IBRS")
	wantE := []string{"", "", "✓", "✓", "✓", "", "", ""}
	for i := range wantE {
		if eibrs[i] != wantE[i] {
			t.Errorf("eIBRS column %d = %q, want %q", i, eibrs[i], wantE[i])
		}
	}
	// SSBD is "!" everywhere.
	for i, v := range find("SSBD") {
		if v != "!" {
			t.Errorf("SSBD column %d = %q, want !", i, v)
		}
	}
	// Everyone gets RSB stuffing and eager FPU.
	for i, v := range find("RSB Stuffing") {
		if v != "✓" {
			t.Errorf("RSB column %d = %q", i, v)
		}
	}
}

// Fig 2 totals must track the paper's shape: big on old Intel, small on
// new Intel and AMD.
func TestFig2Shape(t *testing.T) {
	tb, err := runFig2()
	if err != nil {
		t.Fatal(err)
	}
	totals := map[string]float64{}
	for _, row := range tb.Rows {
		totals[row[0]] = parseNum(t, row[6])
	}
	if totals["Broadwell"] < 15 {
		t.Errorf("Broadwell total = %v%%, want substantial", totals["Broadwell"])
	}
	if totals["Ice Lake Server"] > 8 {
		t.Errorf("Ice Lake Server total = %v%%, want small", totals["Ice Lake Server"])
	}
	if totals["Ice Lake Server"] >= totals["Broadwell"] {
		t.Error("overheads should decline across Intel generations")
	}
	if totals["Zen 3"] >= totals["Broadwell"] {
		t.Error("AMD should be far below old Intel")
	}
}

func TestProbeTablesRender(t *testing.T) {
	t9, err := runProbeTable("table9", false)
	if err != nil {
		t.Fatal(err)
	}
	// Broadwell row: all five columns checked.
	for i := 1; i <= 5; i++ {
		if t9.Rows[0][i] != "✓" {
			t.Errorf("table9 Broadwell col %d = %q", i, t9.Rows[0][i])
		}
	}
	// Zen 3 row: all blank.
	zen3 := t9.Rows[7]
	for i := 1; i <= 5; i++ {
		if zen3[i] != "" {
			t.Errorf("table9 Zen 3 col %d = %q", i, zen3[i])
		}
	}
	t10, err := runProbeTable("table10", true)
	if err != nil {
		t.Fatal(err)
	}
	// Zen: unsupported.
	if t10.Rows[5][1] != "N/A" {
		t.Errorf("table10 Zen = %q, want N/A", t10.Rows[5][1])
	}
	// Ice Lake Client: u→u works, k→k blocked.
	icl := t10.Rows[3]
	if icl[2] != "✓" || icl[3] != "" || icl[4] != "✓" || icl[5] != "" {
		t.Errorf("table10 Ice Lake Client row: %v", icl)
	}
}

// Golden render of Table 1: the full checkmark grid is the paper's most
// recognisable artifact; lock its shape.
func TestTable1GoldenRender(t *testing.T) {
	tb, err := runTable1()
	if err != nil {
		t.Fatal(err)
	}
	out := tb.Render()
	for _, want := range []string{
		"Meltdown            Page Table Isolation  ✓          ✓",
		"Spec. Store Bypass  SSBD                  !          !",
		"Spectre V2          Enhanced IBRS",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("golden fragment missing:\n%s\n---\n%s", want, out)
		}
	}
	if strings.Count(out, "\n") < 16 {
		t.Error("table suspiciously short")
	}
}

// CSV output round-trips the same cell count as the text renderer.
func TestCSVCellCounts(t *testing.T) {
	tb, err := runTable2()
	if err != nil {
		t.Fatal(err)
	}
	csv := tb.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != len(tb.Rows)+1 {
		t.Fatalf("csv lines = %d, want %d", len(lines), len(tb.Rows)+1)
	}
	for i, line := range lines {
		if got := len(strings.Split(line, ",")); got != len(tb.Columns) {
			t.Errorf("line %d: %d cells, want %d", i, got, len(tb.Columns))
		}
	}
}
