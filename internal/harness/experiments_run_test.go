package harness

import (
	"strings"
	"testing"
)

// TestEveryExperimentRuns executes the full registry once (the slower
// end-to-end experiments are skipped under -short). Each must produce a
// non-empty, renderable table with one row per CPU where applicable.
func TestEveryExperimentRuns(t *testing.T) {
	slow := map[string]bool{"fig2": true, "fig3": true, "whatif-v1hw": true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if testing.Short() && slow[e.ID] {
				t.Skip("slow experiment skipped in -short mode")
			}
			tbl, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tbl.ID != e.ID {
				t.Errorf("table id %q != experiment id %q", tbl.ID, e.ID)
			}
			if len(tbl.Rows) == 0 || len(tbl.Columns) == 0 {
				t.Fatalf("%s: empty table", e.ID)
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Errorf("%s: row %d has %d cells, want %d", e.ID, i, len(row), len(tbl.Columns))
				}
			}
			out := tbl.Render()
			if !strings.Contains(out, e.ID) {
				t.Errorf("%s: render missing id", e.ID)
			}
		})
	}
}

// The security experiment's matrix must never contain a NOT-BLOCKED or
// unexpected NO-LEAK cell — that would mean a mitigation stopped working
// or an attack regressed.
func TestSecurityMatrixClean(t *testing.T) {
	tbl, err := runSecurity()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		for i, cell := range row[1:] {
			if strings.Contains(cell, "NOT-BLOCKED") || cell == "NO-LEAK" {
				t.Errorf("%s / %s: %q", row[0], tbl.Columns[i+1], cell)
			}
		}
	}
}

// The §7 what-if must recover a positive fraction on every CPU while
// never exceeding the total guard cost.
func TestWhatIfV1HW(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tbl, err := runWhatIfV1HW()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		rec := parseNum(t, row[3])
		if rec <= 0 || rec > 10 {
			t.Errorf("%s: recovered %.2f%%, want (0,10]", row[0], rec)
		}
	}
}
