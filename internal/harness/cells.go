package harness

import (
	"fmt"

	"spectrebench/internal/cpu"
	"spectrebench/internal/engine"
	"spectrebench/internal/faultinject"
	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
	"spectrebench/internal/simscope"
	"spectrebench/internal/stats"
	"spectrebench/internal/workloads/lebench"
)

// cellSet is an experiment's handle for declaring simulation cells. It
// snapshots the determinism parameters of the surrounding supervised
// attempt — which engine to schedule on, the fault seed (0 when faults
// are off, so identical cells dedupe across experiments), and the
// watchdog budget (folded into every key: a cell observed under one
// budget is not interchangeable with the same cell under another) — so
// cell keys are a pure function of experiment identity, not of global
// mutable state.
type cellSet struct {
	eng    *engine.Engine
	seed   uint64
	budget uint64
}

// declareCells reads the current supervised scope. Experiments invoked
// outside a supervisor (tests calling Run directly) fall back to the
// process-default engine, seed 0 (unless a global fault activation is
// installed) and the process-default budget.
func declareCells() *cellSet {
	cs := &cellSet{budget: cpu.DefaultCycleBudget()}
	if sc := simscope.Current(); sc != nil {
		if sc.Fault != nil {
			cs.seed = sc.FaultSeed
		}
		if sc.HasBudget {
			cs.budget = sc.Budget
		}
		if eng, ok := sc.Tag.(*engine.Engine); ok {
			cs.eng = eng
		}
	} else if s, on := faultinject.ActiveSeed(); on {
		cs.seed = s
	}
	if cs.eng == nil {
		cs.eng = engine.Default()
	}
	return cs
}

// raw schedules a cell with an explicit config string (for workloads
// whose configuration is not a kernel.Mitigations value).
func (cs *cellSet) raw(workload, uarch, config string, fn func() (any, error)) *engine.Task {
	return cs.eng.Submit(engine.Key{
		Workload: workload,
		Uarch:    uarch,
		Config:   fmt.Sprintf("%s|budget=%d", config, cs.budget),
		Seed:     cs.seed,
	}, fn)
}

// cell schedules one simulation cell: workload × CPU model × mitigation
// configuration (plus the set's seed and budget).
func (cs *cellSet) cell(workload string, m *model.CPU, mit kernel.Mitigations, fn func() (any, error)) *engine.Task {
	return cs.raw(workload, m.Uarch, fmt.Sprintf("%+v", mit), fn)
}

// float is cell for the common case of a single float64 measurement.
func (cs *cellSet) float(workload string, m *model.CPU, mit kernel.Mitigations, fn func() (float64, error)) *engine.Task {
	return cs.cell(workload, m, mit, func() (any, error) {
		v, err := fn()
		if err != nil {
			return nil, err
		}
		return v, nil
	})
}

// waitF gathers a float cell.
func waitF(t *engine.Task) (float64, error) {
	v, err := t.Wait()
	if err != nil {
		return 0, err
	}
	return v.(float64), nil
}

// lebenchRun is the shared "run the LEBench suite" cell: one execution
// per (model, mitigations) for the whole process, shared by fig2's
// ladder rungs and lebench-detail. The returned slice is cached and
// must be treated as read-only.
func (cs *cellSet) lebenchRun(m *model.CPU, mit kernel.Mitigations) ([]lebench.Result, error) {
	v, err := cs.cell("lebench/run", m, mit, func() (any, error) {
		res, err := lebench.Run(m, mit)
		if err != nil {
			return nil, err
		}
		return res, nil
	}).Wait()
	if err != nil {
		return nil, err
	}
	return v.([]lebench.Result), nil
}

// lebenchGeo is the Figure 2 workload routed through the cell cache.
func (cs *cellSet) lebenchGeo(m *model.CPU, mit kernel.Mitigations) (float64, error) {
	res, err := cs.lebenchRun(m, mit)
	if err != nil {
		return 0, err
	}
	vals := make([]float64, len(res))
	for i, r := range res {
		vals[i] = r.Cycles
	}
	return stats.GeoMean(vals), nil
}
