package harness

import (
	"encoding/gob"

	"spectrebench/internal/attacks"
	"spectrebench/internal/workloads/lebench"
)

// Cell values travel through the on-disk cell store (internal/store) as
// gob-encoded interfaces, so every concrete type an experiment returns
// from a cell must be registered with encoding/gob. Scalar results
// (float64) and plain string rows ([]string) are covered by gob's
// built-in registrations; everything structured is named here.
//
// A type that is NOT registered does not break anything: the store
// skips the entry on Put (counted in store Stats.PutErrors) and the
// cell simply re-simulates on the next run. Registering it here is what
// promotes a cell from "always simulated" to "served from the store".
func init() {
	gob.Register([]lebench.Result(nil))  // "lebench/run" suite results
	gob.Register(&attacks.ProbeResult{}) // "attacks/probe/*" BTB poisoning rows
	gob.Register(SMTPair{})              // "smt/pair-wall" co-run vs sequential walls
	gob.Register([]string(nil))          // "attacks/security-row" rendered rows
}
