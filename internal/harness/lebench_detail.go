package harness

import (
	"fmt"

	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
	"spectrebench/internal/workloads/lebench"
)

func init() {
	register(Experiment{
		ID: "lebench-detail", Paper: "Figure 2 (underlying data)",
		Title: "Per-benchmark LEBench slowdown, defaults vs mitigations=off",
		Run:   runLEBenchDetail,
	})
}

// runLEBenchDetail prints every LEBench microbenchmark's individual
// slowdown on a representative old/new/AMD trio — the per-test data the
// Figure 2 geomean aggregates (the paper notes per-test variation from
// near-zero on heavy operations to multiples on null syscalls). Both
// configurations per model are the same "lebench/run" cells Figure 2's
// ladder samples, so in a batch run this experiment costs no extra
// simulation.
func runLEBenchDetail() (*Table, error) {
	models := []*model.CPU{model.Broadwell(), model.IceLakeServer(), model.Zen3()}
	t := &Table{
		ID: "lebench-detail", Title: "LEBench per-benchmark slowdown (defaults vs off)",
		Columns: []string{"benchmark"},
	}
	for _, m := range models {
		t.Columns = append(t.Columns, m.Uarch)
	}

	cs := declareCells()
	type pair struct{ on, off []lebench.Result }
	data := map[string]pair{}
	for _, m := range models {
		on, err := cs.lebenchRun(m, kernel.Defaults(m))
		if err != nil {
			return nil, err
		}
		off, err := cs.lebenchRun(m, kernel.BootParams{MitigationsOff: true}.Apply(m, kernel.Defaults(m)))
		if err != nil {
			return nil, err
		}
		data[m.Uarch] = pair{on: on, off: off}
	}

	for i, b := range lebench.Suite() {
		row := []string{b.Name}
		for _, m := range models {
			d := data[m.Uarch]
			if i >= len(d.on) || d.on[i].Name != b.Name {
				return nil, fmt.Errorf("lebench-detail: result order mismatch")
			}
			row = append(row, pct(d.on[i].Cycles/d.off[i].Cycles-1))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"null syscalls pay the boundary mitigations in full; large copies and fork dilute them — the Figure 2 geomean averages this spread")
	return t, nil
}
