package harness

import (
	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
	"spectrebench/internal/vmm"
)

// newGuest boots a VM with the given host mitigation set and default
// guest mitigations.
func newGuest(m *model.CPU, hostMit kernel.Mitigations) *vmm.Hypervisor {
	hv := vmm.New(m, hostMit, kernel.Defaults(m), 64)
	hv.Boot()
	return hv
}
