package harness

import (
	"errors"
	"testing"

	"spectrebench/internal/engine"
	"spectrebench/internal/faultinject"
	"spectrebench/internal/simscope"
)

// TestFaultedFailureRetriesWithDistinctInjectorStreams pins the retry
// contract under -faults end to end: a fault-provoked crash is re-run
// at most DefaultRetries times, every attempt sees a distinct,
// attempt-derived fault seed (reproducible weather, different each
// try), and the final error carries the attempt index and the fired
// fault point.
func TestFaultedFailureRetriesWithDistinctInjectorStreams(t *testing.T) {
	eng := engine.New(1)
	defer eng.Close()

	var seeds []uint64
	globalsSeen := false
	e := Experiment{ID: "retry-synthetic", Paper: "test", Title: "always crashes", Run: func() (*Table, error) {
		sc := simscope.Current()
		if sc == nil {
			t.Error("no scope installed for attempt")
			return nil, errors.New("no scope")
		}
		if faultinject.Enabled() {
			globalsSeen = true
		}
		seeds = append(seeds, sc.FaultSeed)
		// Simulate a fault-provoked crash: attribute a fired point to the
		// attempt scope, then die the way a corrupted simulation would.
		sc.NoteFired(uint8(faultinject.TLBGlitch))
		panic("synthetic fault-induced crash")
	}}

	cfg := RunConfig{Seed: 7, Faults: true, Retries: DefaultRetries, Engine: eng}
	res := SuperviseEach([]Experiment{e}, cfg, nil)[0]

	if globalsSeen {
		t.Error("SuperviseEach installed a process-global fault activation; daemon batches must stay scope-local")
	}
	if res.Status != StatusFailed {
		t.Fatalf("status=%s, want failed", res.Status)
	}
	if len(seeds) != DefaultRetries+1 {
		t.Fatalf("ran %d attempts, want %d (initial + DefaultRetries)", len(seeds), DefaultRetries+1)
	}
	if res.Retries != DefaultRetries {
		t.Errorf("res.Retries=%d, want %d", res.Retries, DefaultRetries)
	}

	// Every attempt's stream is derived from (seed, id, attempt) — check
	// both the exact derivation and pairwise distinctness.
	seen := map[uint64]bool{}
	for attempt, got := range seeds {
		if want := attemptSeed(cfg.Seed, e.ID, attempt); got != want {
			t.Errorf("attempt %d: fault seed %#x, want %#x", attempt, got, want)
		}
		if seen[got] {
			t.Errorf("attempt %d: fault seed %#x repeats an earlier attempt", attempt, got)
		}
		seen[got] = true
	}

	var ee *ExperimentError
	if !errors.As(res.Err, &ee) {
		t.Fatalf("final error %T, want *ExperimentError", res.Err)
	}
	if ee.Attempt != DefaultRetries {
		t.Errorf("final ExperimentError.Attempt=%d, want %d", ee.Attempt, DefaultRetries)
	}
	if want := faultinject.TLBGlitch.String(); ee.FaultPoint != want {
		t.Errorf("final ExperimentError.FaultPoint=%q, want %q", ee.FaultPoint, want)
	}
}

// TestSuperviseEachStreamsCompletionsAndKeepsInputOrder pins the
// server-facing contract: done fires once per experiment with its
// final result, and the returned slice is in input order regardless of
// completion order.
func TestSuperviseEachStreamsCompletionsAndKeepsInputOrder(t *testing.T) {
	eng := engine.New(4)
	defer eng.Close()

	mk := func(id string) Experiment {
		return Experiment{ID: id, Paper: "test", Title: "synthetic " + id, Run: func() (*Table, error) {
			return &Table{ID: id, Columns: []string{"v"}, Rows: [][]string{{id}}}, nil
		}}
	}
	exps := []Experiment{mk("a"), mk("b"), mk("c"), mk("d")}

	type evt struct {
		i  int
		id string
	}
	ch := make(chan evt, len(exps))
	results := SuperviseEach(exps, RunConfig{Retries: DefaultRetries, Engine: eng}, func(i int, r Result) {
		ch <- evt{i, r.ID}
	})
	close(ch)

	got := map[int]string{}
	for e := range ch {
		got[e.i] = e.id
	}
	if len(got) != len(exps) {
		t.Fatalf("done fired %d times, want %d", len(got), len(exps))
	}
	for i, e := range exps {
		if got[i] != e.ID {
			t.Errorf("done index %d reported %q, want %q", i, got[i], e.ID)
		}
		if results[i].ID != e.ID || results[i].Status != StatusOK {
			t.Errorf("results[%d] = {%s %s}, want {%s ok}", i, results[i].ID, results[i].Status, e.ID)
		}
	}
}
