package harness

import (
	"fmt"

	"spectrebench/internal/attacks"
	"spectrebench/internal/core"
	"spectrebench/internal/engine"
	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
	"spectrebench/internal/stats"
	"spectrebench/internal/workloads/lebench"
	"spectrebench/internal/workloads/lfs"
	"spectrebench/internal/workloads/octane"
	"spectrebench/internal/workloads/parsec"
)

// paperFig2Totals is the paper's Figure 2 total overhead, eyeballed from
// the published chart (fractions).
var paperFig2Totals = map[string]float64{
	"Broadwell": 0.32, "Skylake Client": 0.30, "Cascade Lake": 0.08,
	"Ice Lake Client": 0.04, "Ice Lake Server": 0.03,
	"Zen": 0.05, "Zen 2": 0.04, "Zen 3": 0.03,
}

func init() {
	register(Experiment{
		ID: "table1", Paper: "Table 1",
		Title: "Default mitigations used by Linux on each processor",
		Run:   runTable1,
	})
	register(Experiment{
		ID: "table2", Paper: "Table 2",
		Title: "Evaluated CPUs",
		Run:   runTable2,
	})
	register(Experiment{
		ID: "table3", Paper: "Table 3",
		Title: "Cycles for syscall, sysret, and page-table swap",
		Run:   runTable3,
	})
	register(Experiment{
		ID: "table4", Paper: "Table 4",
		Title: "Cycles to clear µarch buffers with verw",
		Run:   runTable4,
	})
	register(Experiment{
		ID: "table5", Paper: "Table 5",
		Title: "Indirect branch cost under IBRS and retpolines",
		Run:   runTable5,
	})
	register(Experiment{
		ID: "table6", Paper: "Table 6",
		Title: "Cycles per indirect branch prediction barrier (IBPB)",
		Run:   runTable6,
	})
	register(Experiment{
		ID: "table7", Paper: "Table 7",
		Title: "Cycles to stuff the RSB",
		Run:   runTable7,
	})
	register(Experiment{
		ID: "table8", Paper: "Table 8",
		Title: "Cycles per lfence (loads in flight)",
		Run:   runTable8,
	})
	register(Experiment{
		ID: "fig2", Paper: "Figure 2",
		Title: "LEBench mitigation overhead, attributed per mitigation",
		Run:   runFig2,
	})
	register(Experiment{
		ID: "fig3", Paper: "Figure 3",
		Title: "Octane slowdown from JavaScript and OS mitigations",
		Run:   runFig3,
	})
	register(Experiment{
		ID: "fig5", Paper: "Figure 5",
		Title: "PARSEC slowdown from forced SSBD",
		Run:   runFig5,
	})
	register(Experiment{
		ID: "table9", Paper: "Table 9",
		Title: "Speculation probe matrix, IBRS disabled",
		Run:   func() (*Table, error) { return runProbeTable("table9", false) },
	})
	register(Experiment{
		ID: "table10", Paper: "Table 10",
		Title: "Speculation probe matrix, IBRS enabled",
		Run:   func() (*Table, error) { return runProbeTable("table10", true) },
	})
	register(Experiment{
		ID: "vm-lebench", Paper: "§4.4",
		Title: "LEBench inside a VM: host mitigation overhead",
		Run:   runVMLEBench,
	})
	register(Experiment{
		ID: "vm-lfs", Paper: "§4.4",
		Title: "LFS smallfile/largefile in a VM against an emulated disk",
		Run:   runVMLFS,
	})
	register(Experiment{
		ID: "parsec-default", Paper: "§4.5",
		Title: "PARSEC overhead under default mitigations",
		Run:   runParsecDefault,
	})
	register(Experiment{
		ID: "security", Paper: "Table 1 (implied)",
		Title: "Attack × mitigation matrix: every PoC vs its defence",
		Run:   runSecurity,
	})
}

func runTable1() (*Table, error) {
	rows := []struct {
		attack, mitigation string
		enabled            func(m *model.CPU, mit kernel.Mitigations) string
	}{
		{"Meltdown", "Page Table Isolation", func(m *model.CPU, mit kernel.Mitigations) string {
			return mark(mit.PTI, false)
		}},
		{"L1TF", "PTE Inversion", func(m *model.CPU, mit kernel.Mitigations) string {
			return mark(mit.PTEInversion, false)
		}},
		{"L1TF", "Flush L1 Cache", func(m *model.CPU, mit kernel.Mitigations) string {
			return mark(mit.L1TFFlushOnVMEntry, false)
		}},
		{"LazyFP", "Always save FPU", func(m *model.CPU, mit kernel.Mitigations) string {
			return mark(mit.EagerFPU, false)
		}},
		{"Spectre V1", "Index Masking", func(m *model.CPU, mit kernel.Mitigations) string {
			return mark(mit.SpectreV1, false)
		}},
		{"Spectre V1", "lfence after swapgs", func(m *model.CPU, mit kernel.Mitigations) string {
			return mark(mit.SpectreV1, false)
		}},
		{"Spectre V2", "Generic Retpoline", func(m *model.CPU, mit kernel.Mitigations) string {
			return mark(mit.SpectreV2 == kernel.V2RetpolineGeneric, false)
		}},
		{"Spectre V2", "AMD Retpoline", func(m *model.CPU, mit kernel.Mitigations) string {
			return mark(mit.SpectreV2 == kernel.V2RetpolineAMD, false)
		}},
		{"Spectre V2", "Enhanced IBRS", func(m *model.CPU, mit kernel.Mitigations) string {
			return mark(mit.SpectreV2 == kernel.V2EIBRS, false)
		}},
		{"Spectre V2", "RSB Stuffing", func(m *model.CPU, mit kernel.Mitigations) string {
			return mark(mit.RSBStuff, false)
		}},
		{"Spectre V2", "IBPB", func(m *model.CPU, mit kernel.Mitigations) string {
			return mark(mit.IBPB, false)
		}},
		{"Spec. Store Bypass", "SSBD", func(m *model.CPU, mit kernel.Mitigations) string {
			// Available but not default-enabled: the paper's "!".
			return "!"
		}},
		{"MDS", "Flush CPU Buffers", func(m *model.CPU, mit kernel.Mitigations) string {
			return mark(mit.MDSClear, false)
		}},
		{"MDS", "Disable SMT", func(m *model.CPU, mit kernel.Mitigations) string {
			if m.Vulns.MDS {
				return "!"
			}
			return ""
		}},
	}
	t := &Table{
		ID: "table1", Title: "Default mitigations (✓ = enabled, ! = available but off)",
		Columns: append([]string{"Attack", "Mitigation"}, uarchs()...),
	}
	for _, r := range rows {
		row := []string{r.attack, r.mitigation}
		for _, m := range model.All() {
			row = append(row, r.enabled(m, kernel.Defaults(m)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func mark(on bool, bang bool) string {
	switch {
	case on && bang:
		return "!"
	case on:
		return "✓"
	}
	return ""
}

func uarchs() []string {
	out := make([]string, 0, 8)
	for _, m := range model.All() {
		out = append(out, m.Uarch)
	}
	return out
}

func runTable2() (*Table, error) {
	t := &Table{
		ID: "table2", Title: "Evaluated CPUs",
		Columns: []string{"Vendor", "Model", "Microarchitecture", "Power (W)", "Clock (GHz)", "Cores", "SMT"},
	}
	for _, m := range model.All() {
		t.Rows = append(t.Rows, []string{
			string(m.Vendor), m.Model, fmt.Sprintf("%s (%d)", m.Uarch, m.Year),
			fmt.Sprintf("%d", m.PowerW), fmt.Sprintf("%.2f", m.ClockGHz),
			fmt.Sprintf("%d", m.Cores), check(m.SMT),
		})
	}
	return t, nil
}

func runTable3() (*Table, error) {
	cs := declareCells()
	none := kernel.Mitigations{}
	type t3cells struct{ sc, pair, cr3 *engine.Task }
	cells := make([]t3cells, 0, len(model.All()))
	for _, m := range model.All() {
		m := m
		c := t3cells{
			sc:   cs.float("micro/syscall", m, none, func() (float64, error) { return MeasureSyscall(m) }),
			pair: cs.float("micro/syscall-sysret", m, none, func() (float64, error) { return MeasureSyscallSysret(m) }),
		}
		if m.Vulns.Meltdown {
			c.cr3 = cs.float("micro/swap-cr3", m, none, func() (float64, error) { return MeasureSwapCR3(m) })
		}
		cells = append(cells, c)
	}

	t := &Table{
		ID: "table3", Title: "syscall / sysret / swap cr3 cycles (measured vs paper)",
		Columns: []string{"CPU", "syscall", "paper", "sysret", "paper", "swap cr3", "paper"},
	}
	for i, m := range model.All() {
		sc, err := waitF(cells[i].sc)
		if err != nil {
			return nil, err
		}
		pair, err := waitF(cells[i].pair)
		if err != nil {
			return nil, err
		}
		sysret := pair - sc
		row := []string{m.Uarch, cyc(sc), fmt.Sprint(m.Costs.Syscall), cyc(sysret), fmt.Sprint(m.Costs.Sysret)}
		if cells[i].cr3 != nil {
			cr3, err := waitF(cells[i].cr3)
			if err != nil {
				return nil, err
			}
			row = append(row, cyc(cr3), fmt.Sprint(m.Costs.SwapCR3))
		} else {
			row = append(row, "N/A", "N/A")
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func runTable4() (*Table, error) {
	t := &Table{
		ID: "table4", Title: "verw buffer-clear cycles (measured vs paper)",
		Columns: []string{"CPU", "clear cycles", "paper"},
	}
	cs := declareCells()
	cells := make([]*engine.Task, 0, len(model.All()))
	for _, m := range model.All() {
		m := m
		cells = append(cells, cs.float("micro/verw", m, kernel.Mitigations{},
			func() (float64, error) { return MeasureVerw(m) }))
	}
	for i, m := range model.All() {
		v, err := waitF(cells[i])
		if err != nil {
			return nil, err
		}
		paper := "N/A"
		if m.Vulns.MDS {
			paper = fmt.Sprint(m.Costs.VerwClear)
		}
		t.Rows = append(t.Rows, []string{m.Uarch, cyc(v), paper})
	}
	t.Notes = append(t.Notes, "non-vulnerable parts execute only the legacy segmentation behaviour (tens of cycles)")
	return t, nil
}

func runTable5() (*Table, error) {
	t := &Table{
		ID: "table5", Title: "indirect branch cycles: baseline and mitigation deltas (paper deltas in parentheses)",
		Columns: []string{"CPU", "baseline", "IBRS", "generic", "AMD"},
	}
	cs := declareCells()
	none := kernel.Mitigations{}
	indirect := func(m *model.CPU, name string, v IndirectVariant) *engine.Task {
		return cs.float("micro/indirect/"+name, m, none,
			func() (float64, error) { return MeasureIndirect(m, v) })
	}
	type t5cells struct{ base, ibrs, generic, amd *engine.Task }
	cells := make([]t5cells, 0, len(model.All()))
	for _, m := range model.All() {
		c := t5cells{
			base:    indirect(m, "baseline", IndirectBaseline),
			generic: indirect(m, "retpoline-generic", IndirectRetpolineGeneric),
		}
		if m.Spec.IBRS {
			c.ibrs = indirect(m, "ibrs", IndirectIBRS)
		}
		if m.Costs.RetpolineAMDOK {
			c.amd = indirect(m, "retpoline-amd", IndirectRetpolineAMD)
		}
		cells = append(cells, c)
	}
	delta := func(t *engine.Task, base float64, paper uint64) (string, error) {
		if t == nil {
			return "N/A", nil
		}
		v, err := waitF(t)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%+.0f (%+d)", v-base, paper), nil
	}
	for i, m := range model.All() {
		base, err := waitF(cells[i].base)
		if err != nil {
			return nil, err
		}
		row := []string{m.Uarch, cyc(base)}
		for _, col := range []struct {
			task  *engine.Task
			paper uint64
		}{
			{cells[i].ibrs, m.Costs.IBRSDelta},
			{cells[i].generic, m.Costs.RetpolineGeneric},
			{cells[i].amd, m.Costs.RetpolineAMD},
		} {
			cell, err := delta(col.task, base, col.paper)
			if err != nil {
				return nil, err
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func runTable6() (*Table, error) {
	t := &Table{
		ID: "table6", Title: "IBPB cycles (measured vs paper)",
		Columns: []string{"CPU", "IBPB cycles", "paper"},
	}
	cs := declareCells()
	cells := make([]*engine.Task, 0, len(model.All()))
	for _, m := range model.All() {
		m := m
		cells = append(cells, cs.float("micro/ibpb", m, kernel.Mitigations{},
			func() (float64, error) { return MeasureIBPB(m) }))
	}
	for i, m := range model.All() {
		v, err := waitF(cells[i])
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{m.Uarch, cyc(v), fmt.Sprint(m.Costs.IBPB)})
	}
	return t, nil
}

func runTable7() (*Table, error) {
	t := &Table{
		ID: "table7", Title: "RSB stuffing cycles",
		Columns: []string{"CPU", "RSB fill cycles (paper)"},
	}
	for _, m := range model.All() {
		t.Rows = append(t.Rows, []string{m.Uarch, fmt.Sprint(m.Costs.RSBFill)})
	}
	t.Notes = append(t.Notes,
		"the kernel charges the paper-measured sequence cost on every context switch; see kernel/sched.go")
	return t, nil
}

func runTable8() (*Table, error) {
	t := &Table{
		ID: "table8", Title: "lfence cycles with a load in flight (measured vs paper)",
		Columns: []string{"CPU", "lfence cycles", "paper"},
	}
	cs := declareCells()
	cells := make([]*engine.Task, 0, len(model.All()))
	for _, m := range model.All() {
		m := m
		cells = append(cells, cs.float("micro/lfence", m, kernel.Mitigations{},
			func() (float64, error) { return MeasureLfence(m) }))
	}
	for i, m := range model.All() {
		v, err := waitF(cells[i])
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{m.Uarch, cyc(v), fmt.Sprint(m.Costs.Lfence)})
	}
	t.Notes = append(t.Notes, "with no loads in flight the fence costs ~4 cycles on every model (the paper's caveat)")
	return t, nil
}

func runFig2() (*Table, error) {
	t := &Table{
		ID: "fig2", Title: "LEBench overhead attributed per mitigation (fraction of unmitigated)",
		Columns: []string{"CPU", "MDS", "PTI", "SpectreV2", "SpectreV1", "other", "total", "paper total"},
	}
	// The workload routes every suite execution through the "lebench/run"
	// cell, so the repeated samples RunUntil takes of one configuration —
	// and ladder rungs whose boot parameters strip a mitigation the CPU
	// never had (e.g. PTI on post-Meltdown parts) — all collapse to one
	// simulation, shared further with lebench-detail.
	cs := declareCells()
	cfg := core.Config{MinRuns: 2, MaxRuns: 3, RelCI: 0.05}
	attrs, err := core.Sweep(cs.lebenchGeo, core.OSLadder(), cfg)
	if err != nil {
		return nil, err
	}
	for _, a := range attrs {
		row := []string{a.CPU}
		for _, p := range a.Parts {
			row = append(row, pct(p.Overhead))
		}
		row = append(row, pct(a.Total), pct(paperFig2Totals[a.CPU]))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func runFig3() (*Table, error) {
	t := &Table{
		ID: "fig3", Title: "Octane slowdown decomposition (fraction of unmitigated)",
		Columns: []string{"CPU", "index masking", "object mitigations", "other JS", "SSBD", "other OS", "total"},
	}
	// One cell per (model, ladder rung): the fully hardened rung is the
	// exact suite whatif-v1hw measures as its baseline, so the two
	// experiments share it.
	cs := declareCells()
	rungs := octane.Rungs()
	cells := make([][]*engine.Task, 0, len(model.All()))
	for _, m := range model.All() {
		m := m
		per := make([]*engine.Task, len(rungs))
		for r, rung := range rungs {
			rcfg := rung.Config
			per[r] = cs.raw("octane/suite", m.Uarch, fmt.Sprintf("%+v", rcfg), func() (any, error) {
				v, err := octane.RunSuite(m, rcfg)
				if err != nil {
					return nil, err
				}
				return v, nil
			})
		}
		cells = append(cells, per)
	}
	for i, m := range model.All() {
		cycles := make([]float64, len(rungs))
		for r, task := range cells[i] {
			v, err := waitF(task)
			if err != nil {
				return nil, fmt.Errorf("octane rung %q: %w", rungs[r].Name, err)
			}
			cycles[r] = v
		}
		a := octane.AttributeCycles(m.Uarch, cycles)
		row := []string{a.CPU}
		for _, p := range a.Parts {
			row = append(row, pct(p.Overhead))
		}
		row = append(row, pct(a.Total))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper: totals 15-25% on every CPU; index masking ~4%, object mitigations ~6%")
	return t, nil
}

func runFig5() (*Table, error) {
	t := &Table{
		ID: "fig5", Title: "PARSEC slowdown from forced SSBD",
		Columns: []string{"CPU", "swaptions", "facesim", "bodytrack"},
	}
	cs := declareCells()
	cells := make([][]*engine.Task, 0, len(model.All()))
	for _, m := range model.All() {
		m := m
		var per []*engine.Task
		for _, b := range parsec.Suite() {
			name := b.Name
			per = append(per, cs.float("parsec/ssbd/"+name, m, kernel.Mitigations{},
				func() (float64, error) { return parsec.SSBDSlowdown(m, name) }))
		}
		cells = append(cells, per)
	}
	for i, m := range model.All() {
		row := []string{m.Uarch}
		for _, task := range cells[i] {
			ov, err := waitF(task)
			if err != nil {
				return nil, err
			}
			row = append(row, pct(ov))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper: up to 34%, trending worse on newer parts")
	return t, nil
}

func runProbeTable(id string, ibrs bool) (*Table, error) {
	t := &Table{
		ID:    id,
		Title: fmt.Sprintf("BTB poisoning matrix (IBRS %v): can training in mode X steer mode Y?", ibrs),
		Columns: []string{"CPU", "u→k (sys)", "u→u (sys)", "k→k (sys)",
			"u→u (no sys)", "k→k (no sys)"},
	}
	cs := declareCells()
	cells := make([]*engine.Task, 0, len(model.All()))
	for _, m := range model.All() {
		m := m
		cells = append(cells, cs.raw(fmt.Sprintf("attacks/probe/ibrs=%v", ibrs), m.Uarch, "", func() (any, error) {
			r, err := attacks.RunProbe(m, ibrs)
			if err != nil {
				return nil, err
			}
			return r, nil
		}))
	}
	results := make([]*attacks.ProbeResult, 0, len(cells))
	for _, task := range cells {
		v, err := task.Wait()
		if err != nil {
			return nil, err
		}
		results = append(results, v.(*attacks.ProbeResult))
	}
	for _, r := range results {
		row := []string{r.CPU}
		if !r.Supported {
			row = append(row, "N/A", "N/A", "N/A", "N/A", "N/A")
		} else {
			for s := attacks.Scenario(0); s < 5; s++ {
				row = append(row, mark(r.Speculated[s], false))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func runVMLEBench() (*Table, error) {
	t := &Table{
		ID: "vm-lebench", Title: "LEBench in a guest VM: host-mitigation overhead (paper: ±3%)",
		Columns: []string{"CPU", "overhead"},
	}
	// Two cells per model — the guest suite under host mitigations off
	// and on — so the two boots fan out independently.
	cs := declareCells()
	type vmCells struct{ off, on *engine.Task }
	cells := make([]vmCells, 0, len(model.All()))
	for _, m := range model.All() {
		m := m
		off := kernel.BootParams{MitigationsOff: true}.Apply(m, kernel.Defaults(m))
		cells = append(cells, vmCells{
			off: cs.float("vm/lebench-suite", m, off,
				func() (float64, error) { return vmLEBenchSuite(m, off) }),
			on: cs.float("vm/lebench-suite", m, kernel.Defaults(m),
				func() (float64, error) { return vmLEBenchSuite(m, kernel.Defaults(m)) }),
		})
	}
	for i, m := range model.All() {
		base, err := waitF(cells[i].off)
		if err != nil {
			return nil, err
		}
		with, err := waitF(cells[i].on)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{m.Uarch, pct(stats.Overhead(base, with))})
	}
	return t, nil
}

func runVMLFS() (*Table, error) {
	t := &Table{
		ID: "vm-lfs", Title: "LFS in a guest VM: host-mitigation overhead (paper: median <2%)",
		Columns: []string{"CPU", "smallfile", "largefile"},
	}
	cs := declareCells()
	cells := make([][]*engine.Task, 0, len(model.All()))
	for _, m := range model.All() {
		m := m
		var per []*engine.Task
		for _, b := range []string{lfs.Smallfile, lfs.Largefile} {
			b := b
			per = append(per, cs.float("vm/lfs/"+b, m, kernel.Mitigations{},
				func() (float64, error) { return lfs.HostMitigationOverhead(m, b) }))
		}
		cells = append(cells, per)
	}
	for i, m := range model.All() {
		row := []string{m.Uarch}
		for _, task := range cells[i] {
			ov, err := waitF(task)
			if err != nil {
				return nil, err
			}
			row = append(row, pct(ov))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func runParsecDefault() (*Table, error) {
	t := &Table{
		ID: "parsec-default", Title: "PARSEC under default mitigations (paper: within ±0.5%, never >2%)",
		Columns: []string{"CPU", "swaptions", "facesim", "bodytrack"},
	}
	cs := declareCells()
	cells := make([][]*engine.Task, 0, len(model.All()))
	for _, m := range model.All() {
		m := m
		var per []*engine.Task
		for _, b := range parsec.Suite() {
			name := b.Name
			per = append(per, cs.float("parsec/default/"+name, m, kernel.Mitigations{},
				func() (float64, error) { return parsec.DefaultMitigationOverhead(m, name) }))
		}
		cells = append(cells, per)
	}
	for i, m := range model.All() {
		row := []string{m.Uarch}
		for _, task := range cells[i] {
			ov, err := waitF(task)
			if err != nil {
				return nil, err
			}
			row = append(row, pct(ov))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func runSecurity() (*Table, error) {
	t := &Table{
		ID: "security", Title: "Attack PoCs: leaks without mitigation / blocked with mitigation",
		Columns: []string{"CPU", "SpectreV1", "SpectreV2", "Meltdown", "MDS", "SSB", "L1TF", "LazyFP"},
	}
	cs := declareCells()
	cells := make([]*engine.Task, 0, len(model.All()))
	for _, m := range model.All() {
		m := m
		cells = append(cells, cs.cell("attacks/security-row", m, kernel.Mitigations{},
			func() (any, error) {
				row, err := securityRow(m)
				if err != nil {
					return nil, err
				}
				return row, nil
			}))
	}
	for _, task := range cells {
		v, err := task.Wait()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, v.([]string))
	}
	return t, nil
}

// securityRow runs every attack PoC on one CPU (one security cell).
func securityRow(m *model.CPU) ([]string, error) {
	row := []string{m.Uarch}
	cell := func(vuln, blocked bool, vulnerable bool) string {
		if !vulnerable {
			return "fixed"
		}
		if vuln && blocked {
			return "leak/blocked"
		}
		if vuln {
			return "leak/NOT-BLOCKED"
		}
		return "NO-LEAK"
	}
	_, v1leak, err := attacks.SpectreV1(m, attacks.V1None)
	if err != nil {
		return nil, err
	}
	_, v1block, err := attacks.SpectreV1(m, attacks.V1IndexMask)
	if err != nil {
		return nil, err
	}
	row = append(row, cell(v1leak, !v1block, true))

	v2leak, err := attacks.SpectreV2(m, attacks.SpectreV2Config{})
	if err != nil {
		return nil, err
	}
	v2block, err := attacks.SpectreV2(m, attacks.SpectreV2Config{IBPBBeforeVictim: true})
	if err != nil {
		return nil, err
	}
	// Zen 3's deep history makes even same-context training fail in
	// this PoC shape; report what we observe.
	if m.Uarch == "Zen 3" {
		row = append(row, fmt.Sprintf("poison=%v", v2leak))
	} else {
		row = append(row, cell(v2leak, !v2block, true))
	}

	_, mdleak, err := attacks.Meltdown(m, attacks.MeltdownConfig{})
	if err != nil {
		return nil, err
	}
	_, mdblock, err := attacks.Meltdown(m, attacks.MeltdownConfig{PTIUnmapped: true})
	if err != nil {
		return nil, err
	}
	row = append(row, cell(mdleak, !mdblock, m.Vulns.Meltdown))

	_, mdsleak, err := attacks.MDS(m, attacks.MDSConfig{})
	if err != nil {
		return nil, err
	}
	_, mdsblock, err := attacks.MDS(m, attacks.MDSConfig{VerwBeforeAttack: true})
	if err != nil {
		return nil, err
	}
	row = append(row, cell(mdsleak, !mdsblock, m.Vulns.MDS))

	_, ssbleak, err := attacks.SSB(m, false)
	if err != nil {
		return nil, err
	}
	_, ssbblock, err := attacks.SSB(m, true)
	if err != nil {
		return nil, err
	}
	row = append(row, cell(ssbleak, !ssbblock, true))

	_, l1leak, err := attacks.L1TF(m, false)
	if err != nil {
		return nil, err
	}
	_, l1block, err := attacks.L1TF(m, true)
	if err != nil {
		return nil, err
	}
	row = append(row, cell(l1leak, !l1block, m.Vulns.L1TF))

	_, lfleak, err := attacks.LazyFP(m, false)
	if err != nil {
		return nil, err
	}
	_, lfblock, err := attacks.LazyFP(m, true)
	if err != nil {
		return nil, err
	}
	row = append(row, cell(lfleak, !lfblock, m.Vulns.LazyFPLeak))

	return row, nil
}

// vmLEBenchSuite runs the guest LEBench suite under one host mitigation
// configuration and returns the geometric mean (one vm-lebench cell).
func vmLEBenchSuite(m *model.CPU, hostMit kernel.Mitigations) (float64, error) {
	var vals []float64
	for _, b := range lebench.Suite() {
		hv := newGuest(m, hostMit)
		cyc, err := lebench.RunOn(hv.C, hv.GuestKernel, b)
		hv.Close()
		if err != nil {
			return 0, err
		}
		vals = append(vals, cyc)
	}
	return stats.GeoMean(vals), nil
}
