package harness

import "testing"

func TestCSVQuoting(t *testing.T) {
	tbl := &Table{
		ID: "t", Title: "t",
		Columns: []string{"plain", "with,comma"},
		Rows: [][]string{
			{`say "hi"`, "line\nbreak"},
			{"trailing\r", "ok"},
		},
	}
	got := tbl.CSV()
	want := "plain,\"with,comma\"\n" +
		"\"say \"\"hi\"\"\",\"line\nbreak\"\n" +
		"\"trailing\r\",ok\n"
	if got != want {
		t.Errorf("CSV() = %q, want %q", got, want)
	}
}

func TestCSVCellPassthrough(t *testing.T) {
	for _, s := range []string{"", "plain", "1.5%", "Ice Lake Server"} {
		if got := csvCell(s); got != s {
			t.Errorf("csvCell(%q) = %q, want unquoted passthrough", s, got)
		}
	}
}
