package harness

import (
	"fmt"
	"runtime"
	"testing"

	"spectrebench/internal/cpu"
	"spectrebench/internal/engine"
)

// lookupAll resolves experiment IDs, failing the test on a bad ID.
func lookupAll(t *testing.T, ids []string) []Experiment {
	t.Helper()
	exps := make([]Experiment, 0, len(ids))
	for _, id := range ids {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("unknown experiment %q", id)
		}
		exps = append(exps, e)
	}
	return exps
}

// renderBatch supervises the experiments on a throwaway engine with the
// given worker count and returns the full rendered output (tables,
// summary, cache note) — the exact bytes the CLI would print.
func renderBatch(t *testing.T, exps []Experiment, jobs int, faults bool) string {
	t.Helper()
	eng := engine.New(jobs)
	defer eng.Close()
	cfg := RunConfig{Seed: 7, Faults: faults, Retries: DefaultRetries, Engine: eng}
	return RenderResults(SuperviseAll(exps, cfg), false, eng)
}

// TestParallelDeterminism is the PR's headline guarantee: the rendered
// output of a supervised batch — including per-experiment cycle counts
// and the cache hit/miss note — is byte-identical for any -jobs value.
// The subset includes the cell-sharing cliques (fig3 + whatif-v1hw on
// "octane/suite", fig2 + lebench-detail on "lebench/run") where
// scheduling-order bugs would surface first. vm-lfs is left out to keep
// the race-detector run bounded.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-jobs batch runs are slow")
	}
	exps := lookupAll(t, []string{
		"table3", "table5", "fig3", "whatif-v1hw", "lebench-detail", "smt-cost",
	})
	jobsLadder := []int{4, runtime.GOMAXPROCS(0)}

	want := renderBatch(t, exps, 1, false)
	for _, jobs := range jobsLadder {
		if got := renderBatch(t, exps, jobs, false); got != want {
			t.Errorf("jobs=%d output differs from jobs=1\n--- jobs=1 ---\n%s\n--- jobs=%d ---\n%s", jobs, want, jobs, got)
		}
	}
}

// TestParallelDeterminismWithFaults repeats the byte-identity check
// under deterministic fault injection (seed 7): per-cell injector
// streams derive from the cell key and the attempt scope, never from
// global creation order, so injected weather must not depend on worker
// count either.
func TestParallelDeterminismWithFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-jobs batch runs are slow")
	}
	exps := lookupAll(t, []string{"table3", "table9", "fig5"})

	want := renderBatch(t, exps, 1, true)
	for _, jobs := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := renderBatch(t, exps, jobs, true); got != want {
			t.Errorf("faulted jobs=%d output differs from jobs=1\n--- jobs=1 ---\n%s\n--- jobs=%d ---\n%s", jobs, want, jobs, got)
		}
	}
}

// TestAblationMatrixDeterminism is PR4's hard constraint in test form:
// the rendered output is byte-identical across the full ablation matrix
// — every -jobs value × core pooling on/off × fault injection on/off.
// Core reuse (reinit instead of reconstruct) and the sharded scheduler
// must both be invisible in the output.
func TestAblationMatrixDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation matrix batch runs are slow")
	}
	exps := lookupAll(t, []string{"table3", "fig3", "whatif-v1hw", "lebench-detail"})

	prev := cpu.DefaultCorePool()
	defer cpu.SetDefaultCorePool(prev)

	for _, faults := range []bool{false, true} {
		cpu.SetDefaultCorePool(true)
		want := renderBatch(t, exps, 1, faults)
		for _, jobs := range []int{1, 4, 8} {
			for _, pool := range []bool{true, false} {
				if jobs == 1 && pool {
					continue // the reference configuration itself
				}
				cpu.SetDefaultCorePool(pool)
				name := fmt.Sprintf("jobs=%d/corepool=%v/faults=%v", jobs, pool, faults)
				if got := renderBatch(t, exps, jobs, faults); got != want {
					t.Errorf("%s output differs from jobs=1/corepool=on\n--- want ---\n%s\n--- got ---\n%s", name, want, got)
				}
			}
		}
	}
}

// TestMemFastMatrixDeterminism is PR5's hard constraint in test form:
// the rendered output is byte-identical across -memfast on/off × -jobs
// × fault injection on/off. Epoch-stamped flushes, MRU way hints, and
// the translation/page caches are host-side accelerators and must be
// invisible in the output.
func TestMemFastMatrixDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation matrix batch runs are slow")
	}
	exps := lookupAll(t, []string{"table3", "fig3", "whatif-v1hw"})

	prev := cpu.DefaultMemFast()
	defer cpu.SetDefaultMemFast(prev)

	for _, faults := range []bool{false, true} {
		cpu.SetDefaultMemFast(true)
		want := renderBatch(t, exps, 1, faults)
		for _, jobs := range []int{1, 4} {
			for _, fast := range []bool{true, false} {
				if jobs == 1 && fast {
					continue // the reference configuration itself
				}
				cpu.SetDefaultMemFast(fast)
				name := fmt.Sprintf("jobs=%d/memfast=%v/faults=%v", jobs, fast, faults)
				if got := renderBatch(t, exps, jobs, faults); got != want {
					t.Errorf("%s output differs from jobs=1/memfast=on\n--- want ---\n%s\n--- got ---\n%s", name, want, got)
				}
			}
		}
	}
}

// TestCellCacheDedupesSharedCells pins the cache's reason to exist:
// whatif-v1hw's unfused arm is fig3's fully hardened rung, so running
// both in one batch serves at least one cell from cache.
func TestCellCacheDedupesSharedCells(t *testing.T) {
	if testing.Short() {
		t.Skip("batch run is slow")
	}
	eng := engine.New(1)
	defer eng.Close()
	cfg := RunConfig{Retries: DefaultRetries, Engine: eng}
	res := SuperviseAll(lookupAll(t, []string{"fig3", "whatif-v1hw"}), cfg)
	for _, r := range res {
		if r.Status != StatusOK {
			t.Fatalf("%s: %s: %v", r.ID, r.Status, r.Err)
		}
	}
	hits, misses := eng.Stats()
	if hits == 0 {
		t.Errorf("no cache hits across fig3 + whatif-v1hw (misses=%d); the shared octane/suite cells did not dedupe", misses)
	}
}
