// Package harness defines one runnable experiment per table and figure
// of the paper and renders their results, alongside the paper-reported
// values where the paper gives them. This is the layer the
// spectrebench CLI and the repository's benchmark suite drive.
package harness

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC 4180 comma-separated values: any cell
// containing a comma, double quote or line break is quoted, with
// embedded quotes doubled. Most cells in this repository need no
// quoting, but error summaries and free-form titles must not be able to
// corrupt the row structure.
func (t *Table) CSV() string {
	var b strings.Builder
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvCell(c))
		}
		b.WriteByte('\n')
	}
	row(t.Columns)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

// csvCell quotes one CSV field per RFC 4180 when needed.
func csvCell(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	// ID is the canonical name ("table3", "fig2", "vm-lfs", ...).
	ID string
	// Paper names the table/figure or section reproduced.
	Paper string
	// Title is a one-line description.
	Title string
	// Run executes the experiment.
	Run func() (*Table, error)
}

// The registry is a map so Lookup is O(1) and duplicate IDs fail fast at
// registration; All memoizes its sorted view (invalidated by register)
// instead of re-sorting on every call. The mutex exists because All and
// Lookup are now called from engine workers, not just the main
// goroutine.
var (
	registryMu sync.Mutex
	registry   = map[string]Experiment{}
	allCache   []Experiment
)

func register(e Experiment) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[e.ID]; dup {
		panic("harness: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
	allCache = nil
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, bool) {
	registryMu.Lock()
	defer registryMu.Unlock()
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	registryMu.Lock()
	defer registryMu.Unlock()
	if allCache == nil {
		allCache = make([]Experiment, 0, len(registry))
		for _, e := range registry {
			allCache = append(allCache, e)
		}
		sort.Slice(allCache, func(i, j int) bool { return allCache[i].ID < allCache[j].ID })
	}
	return append([]Experiment(nil), allCache...)
}

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// cyc formats a cycle count.
func cyc(f float64) string { return fmt.Sprintf("%.0f", f) }

func check(b bool) string {
	if b {
		return "yes"
	}
	return ""
}
