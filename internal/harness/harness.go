// Package harness defines one runnable experiment per table and figure
// of the paper and renders their results, alongside the paper-reported
// values where the paper gives them. This is the layer the
// spectrebench CLI and the repository's benchmark suite drive.
package harness

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes elided: cells
// in this repository never contain commas).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	// ID is the canonical name ("table3", "fig2", "vm-lfs", ...).
	ID string
	// Paper names the table/figure or section reproduced.
	Paper string
	// Title is a one-line description.
	Title string
	// Run executes the experiment.
	Run func() (*Table, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("harness: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// cyc formats a cycle count.
func cyc(f float64) string { return fmt.Sprintf("%.0f", f) }

func check(b bool) string {
	if b {
		return "yes"
	}
	return ""
}
