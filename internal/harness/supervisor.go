package harness

import (
	"errors"
	"fmt"
	"runtime/debug"
	"strings"

	"spectrebench/internal/attacks"
	"spectrebench/internal/cpu"
	"spectrebench/internal/engine"
	"spectrebench/internal/faultinject"
	"spectrebench/internal/simscope"
)

// ErrInconclusive aliases the probe layer's sentinel so harness callers
// (and synthetic test experiments) classify inconclusive outcomes
// without importing internal/attacks.
var ErrInconclusive = attacks.ErrInconclusive

// Status classifies a supervised experiment outcome.
type Status string

// Experiment statuses.
const (
	StatusOK           Status = "ok"
	StatusFailed       Status = "failed"
	StatusInconclusive Status = "inconclusive"
	StatusTimeout      Status = "timeout"
)

// Supervisor defaults.
const (
	// DefaultCycleBudget is the per-core simulated-cycle watchdog limit
	// applied to every core an experiment constructs: generous next to
	// the ~10M-cycle microbenchmarks, small enough to abort a runaway
	// experiment instead of hanging CI.
	DefaultCycleBudget = 500_000_000
	// DefaultRetries bounds re-runs of inconclusive or fault-injected
	// failures before the result is reported as-is.
	DefaultRetries = 2
)

// ExperimentError is the structured form a simulator panic (or wrapped
// run failure) takes once the supervisor catches it: the experiment ID,
// the attempt, the active fault point (when fault injection was on) and
// the recovered value with its stack.
type ExperimentError struct {
	// ID is the experiment that failed.
	ID string
	// Attempt is the zero-based attempt that produced the error.
	Attempt int
	// FaultPoint names the most recently fired fault-injection point
	// ("" when fault injection was inactive or nothing had fired) —
	// the weather that likely provoked the failure.
	FaultPoint string
	// PanicValue is the recovered panic value, nil for wrapped errors.
	PanicValue any
	// Stack is the goroutine stack at recovery time (panics only).
	Stack string
	// Err is the underlying error.
	Err error
}

func (e *ExperimentError) Error() string {
	msg := fmt.Sprintf("experiment %s (attempt %d)", e.ID, e.Attempt)
	if e.PanicValue != nil {
		msg += fmt.Sprintf(": panic: %v", e.PanicValue)
	} else if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	if e.FaultPoint != "" {
		msg += " [fault-point " + e.FaultPoint + "]"
	}
	return msg
}

func (e *ExperimentError) Unwrap() error { return e.Err }

// RunConfig configures supervised execution.
type RunConfig struct {
	// Seed roots the deterministic fault injector. Ignored unless
	// Faults is set.
	Seed uint64
	// Faults enables deterministic fault injection for each attempt.
	Faults bool
	// Retries is the maximum number of re-runs after an inconclusive
	// reading (always retried, with a reseeded injector) or a
	// fault-injected failure. Negative means DefaultRetries.
	Retries int
	// CycleBudget is the per-core watchdog in simulated cycles; 0 means
	// DefaultCycleBudget, NoCycleBudget disables the watchdog.
	CycleBudget uint64
	// Engine schedules the run's simulation cells and experiment tasks;
	// nil means the process-default engine. Tests pass throwaway engines
	// so cache statistics are isolated per run.
	Engine *engine.Engine
}

// engine returns the scheduling engine for this config.
func (cfg RunConfig) engine() *engine.Engine {
	if cfg.Engine != nil {
		return cfg.Engine
	}
	return engine.Default()
}

// NoCycleBudget disables the watchdog when placed in
// RunConfig.CycleBudget.
const NoCycleBudget = ^uint64(0)

func (cfg RunConfig) withDefaults() RunConfig {
	if cfg.Retries < 0 {
		cfg.Retries = DefaultRetries
	}
	switch cfg.CycleBudget {
	case 0:
		cfg.CycleBudget = DefaultCycleBudget
	case NoCycleBudget:
		cfg.CycleBudget = 0
	}
	return cfg
}

// Result is the supervised outcome of one experiment.
type Result struct {
	ID    string
	Paper string
	Title string
	// Status classifies the final attempt.
	Status Status
	// Table holds the rendered result when Status == StatusOK.
	Table *Table
	// Err is the final attempt's error for non-OK statuses.
	Err error
	// Retries is how many re-runs were consumed (0 = first attempt
	// decided).
	Retries int
	// Cycles is the simulated-cycle cost across all attempts (telemetry
	// is flushed periodically, so small experiments may under-report).
	Cycles uint64
}

// Supervise runs one experiment crash-safely: panics become typed
// *ExperimentError values, every core the experiment constructs is
// bounded by the watchdog cycle budget, and inconclusive probe readings
// are retried with a reseeded fault injector before being reported. The
// process never dies on a failing experiment — that is the contract that
// lets `run all` degrade gracefully and, later, lets experiments shard
// across workers.
func Supervise(e Experiment, cfg RunConfig) Result {
	cfg = cfg.withDefaults()
	prevBudget := cpu.SetDefaultCycleBudget(cfg.CycleBudget)
	defer cpu.SetDefaultCycleBudget(prevBudget)
	if cfg.Faults {
		faultinject.Activate(faultinject.Config{Seed: cfg.Seed})
		defer faultinject.Deactivate()
	}
	return supervise(e, cfg, cfg.engine(), faultinject.Snapshot())
}

// supervise runs the attempt loop for one experiment. snap is the
// fault-injection activation snapshot for this batch (nil when faults
// are off); each attempt gets its own simulation scope carrying the
// attempt's fault seed, the snapshot, the budget, and the engine —
// everything experiment code and the cells it declares need, with no
// reads of mutable process state from inside the attempt.
func supervise(e Experiment, cfg RunConfig, eng *engine.Engine, snap any) Result {
	res := Result{ID: e.ID, Paper: e.Paper, Title: e.Title}

	for attempt := 0; ; attempt++ {
		// The scope seed derives from (seed, experiment, attempt), so a
		// retry sees different — but still reproducible — weather, and a
		// single experiment re-run in isolation reproduces its `run all`
		// behaviour.
		sc := &simscope.Scope{
			FaultSeed: attemptSeed(cfg.Seed, e.ID, attempt),
			Budget:    cfg.CycleBudget,
			HasBudget: true,
			Tag:       eng,
		}
		if cfg.Faults {
			sc.Fault = snap
		}
		restore := simscope.Enter(sc)
		tbl, err := runProtected(e, attempt, sc)
		restore()
		res.Cycles += sc.Cycles()
		// The attempt is over: recycle any cores constructed directly
		// under the attempt scope (cells own separate scopes released by
		// the engine).
		sc.Release()
		res.Retries = attempt

		if err == nil {
			res.Status, res.Table, res.Err = StatusOK, tbl, nil
			return res
		}
		res.Err = err
		switch {
		case errors.Is(err, cpu.ErrCycleBudget):
			res.Status = StatusTimeout
		case errors.Is(err, ErrInconclusive):
			res.Status = StatusInconclusive
		default:
			res.Status = StatusFailed
		}
		if attempt >= cfg.Retries {
			return res
		}
		// Inconclusive readings are always worth a retry. Failures and
		// timeouts are retried only under fault injection, where the
		// reseeded injector gives the next attempt a real chance; a
		// deterministic failure would just repeat.
		if !cfg.Faults && res.Status != StatusInconclusive {
			return res
		}
	}
}

// attemptSeed derives the per-attempt injector seed. The experiment ID
// is folded in so seeds do not depend on execution order, and the
// attempt index reseeds retries.
func attemptSeed(seed uint64, id string, attempt int) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return seed ^ h ^ (uint64(attempt+1) * 0x9e3779b97f4a7c15)
}

// runProtected invokes e.Run with panic isolation. A panic's FaultPoint
// comes from the attempt scope's last-fired register (cells carry their
// own scopes, so a fault inside a cell surfaces through the cell's
// PanicError instead), with the legacy global register as a fallback for
// injectors constructed outside any scope.
func runProtected(e Experiment, attempt int, sc *simscope.Scope) (tbl *Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			ee := &ExperimentError{
				ID:         e.ID,
				Attempt:    attempt,
				PanicValue: r,
				Stack:      string(debug.Stack()),
				Err:        fmt.Errorf("panic: %v", r),
			}
			if p, ok := sc.LastFired(); ok {
				ee.FaultPoint = faultinject.Point(p).String()
			} else if p, ok := faultinject.LastFired(); ok {
				ee.FaultPoint = p.String()
			}
			err = ee
		}
	}()
	return e.Run()
}

// SuperviseAll supervises every experiment concurrently on the engine's
// worker pool, never stopping at a failure, and returns the results in
// input order. Each experiment is an unkeyed engine task; the cells it
// declares fan out further across the same pool. Gathering in input
// order (not completion order) is what keeps rendered output
// byte-identical for any worker count.
func SuperviseAll(exps []Experiment, cfg RunConfig) []Result {
	cfg = cfg.withDefaults()
	prevBudget := cpu.SetDefaultCycleBudget(cfg.CycleBudget)
	defer cpu.SetDefaultCycleBudget(prevBudget)
	if cfg.Faults {
		faultinject.Activate(faultinject.Config{Seed: cfg.Seed})
		defer faultinject.Deactivate()
	}
	return superviseBatch(exps, cfg, faultinject.Snapshot(), nil)
}

// SuperviseEach is SuperviseAll for daemons: it supervises every
// experiment concurrently on the engine pool without touching any
// process-global state (no fault activation install, no default-budget
// swap), so concurrent batches with different seeds, rates or budgets
// cannot interfere — every determinism parameter travels in the
// attempt scopes. Scoped code paths (everything the supervisor and
// engine run) read only the scope; output for a given cfg is
// byte-identical to a CLI run with the same cfg.
//
// done, when non-nil, is invoked as each experiment completes — in
// completion order, from worker goroutines — which is what lets a
// server stream results while the batch is still running. The returned
// slice is always in input order.
func SuperviseEach(exps []Experiment, cfg RunConfig, done func(int, Result)) []Result {
	cfg = cfg.withDefaults()
	var snap any
	if cfg.Faults {
		snap = faultinject.NewActivation(faultinject.Config{Seed: cfg.Seed})
	}
	return superviseBatch(exps, cfg, snap, done)
}

// superviseBatch fans the experiments out as unkeyed engine tasks and
// gathers the results in input order (the ordering that keeps rendered
// output byte-identical for any worker count).
func superviseBatch(exps []Experiment, cfg RunConfig, snap any, done func(int, Result)) []Result {
	eng := cfg.engine()
	items := make([]engine.BatchGo, len(exps))
	for i, e := range exps {
		i, e := i, e
		items[i] = engine.BatchGo{Label: "experiment/" + e.ID, Fn: func() (any, error) {
			r := supervise(e, cfg, eng, snap)
			if done != nil {
				done(i, r)
			}
			return r, nil
		}}
	}
	tasks := eng.GoBatch(items)
	out := make([]Result, len(exps))
	for i, t := range tasks {
		v, err := t.Wait()
		if err != nil {
			// A scheduler-level failure (a panic escaping supervise, or
			// ErrClosed from an engine shut down mid-batch). Degrade
			// gracefully all the same.
			out[i] = Result{ID: exps[i].ID, Paper: exps[i].Paper, Title: exps[i].Title,
				Status: StatusFailed, Err: err}
			if done != nil {
				done(i, out[i])
			}
			continue
		}
		out[i] = v.(Result)
	}
	return out
}

// Failed reports how many results are not StatusOK.
func Failed(results []Result) int {
	n := 0
	for _, r := range results {
		if r.Status != StatusOK {
			n++
		}
	}
	return n
}

// SummaryTable renders the per-experiment outcome table printed at the
// end of a supervised batch. Its contents are deterministic for a fixed
// seed (no wall-clock values), so two identical runs render identically.
func SummaryTable(results []Result) *Table {
	t := &Table{
		ID:      "summary",
		Title:   "supervised experiment outcomes",
		Columns: []string{"experiment", "status", "retries", "Mcycles", "error"},
	}
	for _, r := range results {
		errText := ""
		if r.Err != nil {
			errText = summarizeError(r.Err)
		}
		t.Rows = append(t.Rows, []string{
			r.ID, string(r.Status), fmt.Sprint(r.Retries),
			fmt.Sprintf("%.1f", float64(r.Cycles)/1e6), errText,
		})
	}
	if n := Failed(results); n > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("%d of %d experiments did not complete ok", n, len(results)))
	}
	return t
}

// summarizeError flattens an error to one table-cell-safe line.
func summarizeError(err error) string {
	s := strings.ReplaceAll(err.Error(), "\n", " ")
	s = strings.ReplaceAll(s, ",", ";") // keep the CSV rendering parseable
	const max = 80
	if len(s) > max {
		s = s[:max-1] + "…"
	}
	return s
}
