package harness

import (
	"fmt"
	"testing"

	"spectrebench/internal/checkpoint"
	"spectrebench/internal/cpu"
	"spectrebench/internal/engine"
)

// renderBatchCSV is renderBatch with CSV output: the machine-readable
// records the determinism contract covers alongside the rendered tables.
func renderBatchCSV(t *testing.T, exps []Experiment, jobs int, faults bool) string {
	t.Helper()
	eng := engine.New(jobs)
	defer eng.Close()
	cfg := RunConfig{Seed: 7, Faults: faults, Retries: DefaultRetries, Engine: eng}
	return RenderResults(SuperviseAll(exps, cfg), true, eng)
}

// TestCheckpointMatrixDeterminism is PR7's hard constraint in test form:
// rendered output and CSV records are byte-identical across -checkpoint
// on/off × -superblock on/off × -jobs × fault injection on/off. A cell
// forked from a checkpointed image (shared stub programs, COW page-table
// templates, reused JIT compiles) must be indistinguishable from a cell
// simulated cold — including every fault-injection draw, which is why
// the faults=true arm exists.
func TestCheckpointMatrixDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation matrix batch runs are slow")
	}
	exps := lookupAll(t, []string{"table3", "fig3", "whatif-v1hw"})

	prevCP := checkpoint.SetDefault(true)
	prevSB := cpu.DefaultSuperblock()
	defer func() {
		checkpoint.SetDefault(prevCP)
		cpu.SetDefaultSuperblock(prevSB)
		checkpoint.Clear()
	}()

	for _, faults := range []bool{false, true} {
		checkpoint.SetDefault(true)
		cpu.SetDefaultSuperblock(true)
		checkpoint.Clear() // reference batch starts from a cold registry
		want := renderBatch(t, exps, 1, faults)
		wantCSV := renderBatchCSV(t, exps, 1, faults)
		for _, jobs := range []int{1, 4} {
			for _, cp := range []bool{true, false} {
				for _, sb := range []bool{true, false} {
					if jobs == 1 && cp && sb {
						continue // the reference configuration itself
					}
					checkpoint.SetDefault(cp)
					cpu.SetDefaultSuperblock(sb)
					checkpoint.Clear()
					name := fmt.Sprintf("jobs=%d/checkpoint=%v/superblock=%v/faults=%v", jobs, cp, sb, faults)
					if got := renderBatch(t, exps, jobs, faults); got != want {
						t.Errorf("%s output differs from the all-on reference\n--- want ---\n%s\n--- got ---\n%s", name, want, got)
					}
					if got := renderBatchCSV(t, exps, jobs, faults); got != wantCSV {
						t.Errorf("%s CSV differs from the all-on reference\n--- want ---\n%s\n--- got ---\n%s", name, wantCSV, got)
					}
				}
			}
		}
	}
}

// TestCheckpointWarmRegistryDeterminism pins the fork path specifically:
// a batch run against an already-warm registry — where every cell forks
// from images built by a previous batch instead of building them itself
// — must produce the same bytes as the cold-registry run that built
// them. This is the "fork thousands of cells from snapshots" contract:
// first touch builds, every later touch replays.
func TestCheckpointWarmRegistryDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("batch runs are slow")
	}
	exps := lookupAll(t, []string{"table3", "fig3"})

	prev := checkpoint.SetDefault(true)
	defer func() {
		checkpoint.SetDefault(prev)
		checkpoint.Clear()
	}()

	checkpoint.Clear()
	cold := renderBatch(t, exps, 1, true)
	h0, _ := checkpoint.Stats()
	warm := renderBatch(t, exps, 1, true) // registry still holds the images
	h1, _ := checkpoint.Stats()
	if warm != cold {
		t.Errorf("warm-registry run differs from the cold run that built the images\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
	if h1 <= h0 {
		t.Errorf("warm run recorded no checkpoint hits (%d -> %d); the fork path was not exercised", h0, h1)
	}
}

// TestCheckpointRegistryServesForks sanity-checks coverage inside one
// batch: a multi-cell experiment list under -checkpoint on must fork at
// least some state from the registry rather than building every cell
// cold — otherwise the matrix above proves nothing about forked cells.
func TestCheckpointRegistryServesForks(t *testing.T) {
	if testing.Short() {
		t.Skip("batch run is slow")
	}
	prev := checkpoint.SetDefault(true)
	defer func() {
		checkpoint.SetDefault(prev)
		checkpoint.Clear()
	}()
	checkpoint.Clear()

	eng := engine.New(1)
	defer eng.Close()
	cfg := RunConfig{Retries: DefaultRetries, Engine: eng}
	res := SuperviseAll(lookupAll(t, []string{"fig3"}), cfg)
	for _, r := range res {
		if r.Status != StatusOK {
			t.Fatalf("%s: %s: %v", r.ID, r.Status, r.Err)
		}
	}
	hits, misses := checkpoint.Stats()
	if hits == 0 {
		t.Errorf("no checkpoint hits in a fig3 batch (misses=%d); cells never forked from images", misses)
	}
	if misses == 0 {
		t.Error("no checkpoint misses; nothing was ever built cold, which should be impossible for first touches")
	}
}
