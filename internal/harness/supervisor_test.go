package harness

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"spectrebench/internal/cpu"
	"spectrebench/internal/isa"
	"spectrebench/internal/model"
)

func exp(id string, run func() (*Table, error)) Experiment {
	return Experiment{ID: id, Paper: "test", Title: "synthetic " + id, Run: run}
}

func TestSupervisePanicBecomesExperimentError(t *testing.T) {
	e := exp("panicky", func() (*Table, error) {
		panic("deliberate out-of-bounds in simulator")
	})
	res := Supervise(e, RunConfig{Retries: 0})
	if res.Status != StatusFailed {
		t.Fatalf("status = %q, want %q", res.Status, StatusFailed)
	}
	var ee *ExperimentError
	if !errors.As(res.Err, &ee) {
		t.Fatalf("error %v (%T) is not *ExperimentError", res.Err, res.Err)
	}
	if ee.ID != "panicky" || ee.PanicValue == nil {
		t.Fatalf("bad ExperimentError: %+v", ee)
	}
	if !strings.Contains(ee.Stack, "supervisor_test.go") {
		t.Errorf("stack trace missing test frame:\n%s", ee.Stack)
	}
	if !strings.Contains(ee.Error(), "deliberate out-of-bounds") {
		t.Errorf("Error() = %q, want panic message included", ee.Error())
	}
}

func TestSuperviseCycleBudgetTimeout(t *testing.T) {
	// A core spinning in an infinite loop must be stopped by the
	// watchdog budget the supervisor installs, not hang the test.
	e := exp("runaway", func() (*Table, error) {
		c := microCore(model.SkylakeClient())
		a := isa.NewAsm()
		a.Label("spin")
		a.Jmp("spin")
		p := a.MustAssemble(microCode)
		c.LoadProgram(p)
		c.PC = p.Base
		for {
			if err := c.Step(); err != nil {
				return nil, fmt.Errorf("runaway stopped: %w", err)
			}
		}
	})
	res := Supervise(e, RunConfig{CycleBudget: 100_000, Retries: 0})
	if res.Status != StatusTimeout {
		t.Fatalf("status = %q (err %v), want %q", res.Status, res.Err, StatusTimeout)
	}
	if !errors.Is(res.Err, cpu.ErrCycleBudget) {
		t.Fatalf("error %v does not wrap cpu.ErrCycleBudget", res.Err)
	}
	if res.Cycles == 0 {
		t.Error("watchdog expiry should have flushed cycle telemetry")
	}
}

func TestSuperviseRetriesInconclusive(t *testing.T) {
	// Bimodally flaky experiment: the first probe reading lands in the
	// ambiguous band, the retry succeeds.
	calls := 0
	e := exp("flaky", func() (*Table, error) {
		calls++
		if calls == 1 {
			return nil, fmt.Errorf("scenario spectre-v1: %w", ErrInconclusive)
		}
		return &Table{ID: "flaky", Title: "ok now"}, nil
	})
	res := Supervise(e, RunConfig{Retries: 2})
	if res.Status != StatusOK {
		t.Fatalf("status = %q (err %v), want ok", res.Status, res.Err)
	}
	if res.Retries != 1 || calls != 2 {
		t.Fatalf("retries = %d, calls = %d, want 1 retry / 2 calls", res.Retries, calls)
	}
	if res.Table == nil || res.Table.Title != "ok now" {
		t.Fatalf("table from successful retry not returned: %+v", res.Table)
	}
}

func TestSuperviseAlwaysInconclusive(t *testing.T) {
	calls := 0
	e := exp("murky", func() (*Table, error) {
		calls++
		return nil, fmt.Errorf("reading: %w", ErrInconclusive)
	})
	res := Supervise(e, RunConfig{Retries: 2})
	if res.Status != StatusInconclusive {
		t.Fatalf("status = %q, want inconclusive", res.Status)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3 (initial + 2 retries)", calls)
	}
	if !errors.Is(res.Err, ErrInconclusive) {
		t.Fatalf("error %v does not wrap ErrInconclusive", res.Err)
	}
}

func TestSuperviseDeterministicFailureNotRetriedWithoutFaults(t *testing.T) {
	calls := 0
	e := exp("broken", func() (*Table, error) {
		calls++
		return nil, errors.New("deterministic failure")
	})
	res := Supervise(e, RunConfig{Retries: 2})
	if res.Status != StatusFailed {
		t.Fatalf("status = %q, want failed", res.Status)
	}
	if calls != 1 {
		t.Fatalf("calls = %d; plain failures without fault injection must not be retried", calls)
	}
}

func TestSuperviseAllGracefulDegradation(t *testing.T) {
	exps := []Experiment{
		exp("a-panics", func() (*Table, error) { panic("boom") }),
		exp("b-ok", func() (*Table, error) { return &Table{ID: "b-ok"}, nil }),
		exp("c-fails", func() (*Table, error) { return nil, errors.New("nope") }),
	}
	results := SuperviseAll(exps, RunConfig{Retries: 0})
	if len(results) != 3 {
		t.Fatalf("got %d results, want one per experiment", len(results))
	}
	want := []Status{StatusFailed, StatusOK, StatusFailed}
	for i, r := range results {
		if r.Status != want[i] {
			t.Errorf("results[%d] (%s) status = %q, want %q", i, r.ID, r.Status, want[i])
		}
	}
	if Failed(results) != 2 {
		t.Errorf("Failed = %d, want 2", Failed(results))
	}
	sum := SummaryTable(results).Render()
	for _, id := range []string{"a-panics", "b-ok", "c-fails"} {
		if !strings.Contains(sum, id) {
			t.Errorf("summary table missing row for %s:\n%s", id, sum)
		}
	}
}

// TestSuperviseSeedStability is the regression fence for deterministic
// fault injection: the same experiment run twice at the same seed must
// render byte-identical tables even though faults fire throughout.
func TestSuperviseSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full experiment twice")
	}
	e, ok := Lookup("table3")
	if !ok {
		t.Fatal("table3 experiment not registered")
	}
	cfg := RunConfig{Seed: 1, Faults: true}
	first := Supervise(e, cfg)
	second := Supervise(e, cfg)
	if first.Status != second.Status {
		t.Fatalf("statuses differ across identical runs: %q vs %q", first.Status, second.Status)
	}
	if first.Status != StatusOK {
		t.Fatalf("table3 under seed-1 fault injection: %v", first.Err)
	}
	a, b := first.Table.Render(), second.Table.Render()
	if a != b {
		t.Errorf("same-seed runs rendered differently:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if first.Retries != second.Retries {
		t.Errorf("retry counts differ: %d vs %d", first.Retries, second.Retries)
	}
}
