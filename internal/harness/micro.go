package harness

import (
	"fmt"

	"spectrebench/internal/cpu"
	"spectrebench/internal/isa"
	"spectrebench/internal/model"
)

// Microbenchmark scaffolding for Tables 3-8: time a loop containing the
// instruction sequence under test, subtract an empty loop, and average —
// the paper's §5 methodology ("average over one million runs"; the
// simulator is deterministic so fewer iterations suffice).

const (
	microCode  = 0x40_0000
	microData  = 0x80_0000
	microStack = 0xa0_0000
	microIters = 256
)

// microCore builds a bare machine whose code/data are reachable from
// both privilege modes.
func microCore(m *model.CPU) *cpu.Core {
	c := cpu.New(m)
	pt := c.PTs.NewTable(1)
	pt.MapRange(microCode, microCode, 16, false, true, false, false)
	pt.MapRange(microData, microData, 64, true, true, true, false)
	pt.MapRange(microStack-64*4096, microStack-64*4096, 64, true, true, true, false)
	c.SetPageTable(pt)
	c.Regs[isa.SP] = microStack
	return c
}

// measureLoop returns the per-iteration cost of body beyond the loop
// scaffolding. setup configures the core before the run.
func measureLoop(m *model.CPU, kernelMode bool, setup func(c *cpu.Core), body func(a *isa.Asm)) (float64, error) {
	run := func(withBody bool) (float64, error) {
		c := microCore(m)
		defer c.Recycle()
		if kernelMode {
			c.Priv = cpu.PrivKernel
		}
		if setup != nil {
			setup(c)
		}
		a := isa.NewAsm()
		a.MovI(isa.R9, microIters)
		// One warm-up body so first-touch effects (TLB, predictors)
		// land outside the measurement.
		if withBody {
			body(a)
		}
		a.Rdtsc(isa.R8)
		a.Label("loop")
		if withBody {
			body(a)
		}
		a.SubI(isa.R9, 1)
		a.CmpI(isa.R9, 0)
		a.Jne("loop")
		a.Rdtsc(isa.R10)
		a.Sub(isa.R10, isa.R8)
		a.MovI(isa.R11, microData+0x3f00)
		a.Store(isa.R11, 0, isa.R10)
		a.Hlt()
		p, err := a.Assemble(microCode)
		if err != nil {
			return 0, err
		}
		c.LoadProgram(p)
		c.PC = p.Base
		if err := c.RunUntilHalt(10_000_000); err != nil {
			return 0, err
		}
		return float64(c.Phys.Read64(microData+0x3f00)) / microIters, nil
	}
	with, err := run(true)
	if err != nil {
		return 0, err
	}
	empty, err := run(false)
	if err != nil {
		return 0, err
	}
	return with - empty, nil
}

// MeasureSyscall returns the syscall-instruction cost (Table 3, col 1).
func MeasureSyscall(m *model.CPU) (float64, error) {
	return measureLoop(m, false,
		func(c *cpu.Core) { c.OnSyscall = func(*cpu.Core) {} },
		func(a *isa.Asm) { a.Syscall() })
}

// MeasureSyscallSysret returns the round-trip cost through an LSTAR stub
// containing only sysret; subtracting MeasureSyscall isolates sysret
// (Table 3, col 2).
func MeasureSyscallSysret(m *model.CPU) (float64, error) {
	return measureLoop(m, false,
		func(c *cpu.Core) {
			stub := isa.NewAsm()
			stub.Sysret()
			p := stub.MustAssemble(0xd0_0000)
			c.PageTable().MapRange(0xd0_0000, 0xd0_0000, 1, false, false, false, true)
			c.LoadProgram(p)
			c.SetMSR(cpu.MSRLStar, p.Base)
		},
		func(a *isa.Asm) { a.Syscall() })
}

// MeasureSwapCR3 returns the mov-cr3 cost in kernel mode (Table 3,
// col 3).
func MeasureSwapCR3(m *model.CPU) (float64, error) {
	return measureLoop(m, true,
		func(c *cpu.Core) { c.Regs[isa.R12] = c.CR3 },
		func(a *isa.Asm) { a.MovCR3(isa.R12) })
}

// MeasureVerw returns the verw cost (Table 4).
func MeasureVerw(m *model.CPU) (float64, error) {
	return measureLoop(m, false, nil, func(a *isa.Asm) { a.Verw() })
}

// MeasureLfence returns the lfence cost with a load in flight (Table 8;
// the paper notes the cost depends heavily on outstanding loads).
func MeasureLfence(m *model.CPU) (float64, error) {
	withLoad := func(a *isa.Asm) {
		a.MovI(isa.R1, microData)
		a.Load(isa.R2, isa.R1, 0)
		a.Lfence()
	}
	loadOnly := func(a *isa.Asm) {
		a.MovI(isa.R1, microData)
		a.Load(isa.R2, isa.R1, 0)
	}
	full, err := measureLoop(m, false, nil, withLoad)
	if err != nil {
		return 0, err
	}
	base, err := measureLoop(m, false, nil, loadOnly)
	if err != nil {
		return 0, err
	}
	return full - base, nil
}

// MeasureIBPB returns the IBPB cost: a wrmsr to IA32_PRED_CMD in kernel
// mode (Table 6).
func MeasureIBPB(m *model.CPU) (float64, error) {
	return measureLoop(m, true,
		func(c *cpu.Core) { c.Regs[isa.R12] = 1 },
		func(a *isa.Asm) { a.Wrmsr(cpu.MSRPredCmd, isa.R12) })
}

// IndirectVariant selects a Table 5 configuration.
type IndirectVariant int

// Table 5 configurations.
const (
	IndirectBaseline IndirectVariant = iota
	IndirectIBRS
	IndirectRetpolineGeneric
	IndirectRetpolineAMD
)

// MeasureIndirect returns the per-branch cost of a trained indirect call
// under the given variant (Table 5). The caller subtracts the baseline
// to get the paper's "+N" deltas.
func MeasureIndirect(m *model.CPU, v IndirectVariant) (float64, error) {
	if v == IndirectIBRS && !m.Spec.IBRS {
		return 0, fmt.Errorf("harness: %s does not implement IBRS", m.Uarch)
	}
	if v == IndirectRetpolineAMD && !m.Costs.RetpolineAMDOK {
		return 0, fmt.Errorf("harness: AMD retpoline not applicable on %s", m.Uarch)
	}
	setup := func(c *cpu.Core) {
		if v == IndirectIBRS {
			c.SetMSR(cpu.MSRSpecCtrl, cpu.SpecCtrlIBRS)
		}
	}
	// The call target and (for the generic retpoline) the thunk live
	// after the measurement loop; MovLabel materialises their address.
	body := func(a *isa.Asm) {
		a.MovLabel(isa.R12, "micro_target")
		switch v {
		case IndirectRetpolineGeneric:
			a.Call("micro_retp")
		case IndirectRetpolineAMD:
			a.Lfence()
			a.CallInd(isa.R12)
		default:
			a.CallInd(isa.R12)
		}
	}
	// measureLoop doesn't know about our trailing code, so wrap: build
	// the program manually here.
	run := func(withBody bool) (float64, error) {
		c := microCore(m)
		defer c.Recycle()
		setup(c)
		a := isa.NewAsm()
		a.MovI(isa.R9, microIters)
		if withBody {
			body(a)
		}
		a.Rdtsc(isa.R8)
		a.Label("loop")
		if withBody {
			body(a)
		}
		a.SubI(isa.R9, 1)
		a.CmpI(isa.R9, 0)
		a.Jne("loop")
		a.Rdtsc(isa.R10)
		a.Sub(isa.R10, isa.R8)
		a.MovI(isa.R11, microData+0x3f00)
		a.Store(isa.R11, 0, isa.R10)
		a.Hlt()
		a.Label("micro_target")
		a.Ret()
		a.Label("micro_retp")
		a.Call("micro_retp_set")
		a.Label("micro_capture")
		a.Pause()
		a.Lfence()
		a.Jmp("micro_capture")
		a.Label("micro_retp_set")
		a.Store(isa.SP, 0, isa.R12)
		a.Ret()
		p, err := a.Assemble(microCode)
		if err != nil {
			return 0, err
		}
		c.LoadProgram(p)
		c.PC = p.Base
		if err := c.RunUntilHalt(10_000_000); err != nil {
			return 0, err
		}
		return float64(c.Phys.Read64(microData+0x3f00)) / microIters, nil
	}
	with, err := run(true)
	if err != nil {
		return 0, err
	}
	empty, err := run(false)
	if err != nil {
		return 0, err
	}
	return with - empty, nil
}
