package harness

import (
	"testing"

	"spectrebench/internal/engine"
	"spectrebench/internal/store"
)

// renderBatchStore renders the batch on a throwaway engine backed by
// the cell store at dir, returning the rendered bytes and the store's
// final counters.
func renderBatchStore(t *testing.T, exps []Experiment, dir string, faults bool) (string, store.Stats) {
	t.Helper()
	st, err := store.Open(dir, store.Options{NoSync: true, Logf: t.Logf})
	if err != nil {
		t.Fatalf("store.Open(%s): %v", dir, err)
	}
	defer st.Close()
	eng := engine.New(4)
	defer eng.Close()
	eng.SetSecondLevel(st)
	cfg := RunConfig{Seed: 7, Faults: faults, Retries: DefaultRetries, Engine: eng}
	out := RenderResults(SuperviseAll(exps, cfg), false, eng)
	return out, st.Stats()
}

// TestStoreReplayByteIdentical extends the ablation-matrix guarantee to
// the persistent store: the rendered output of a batch must be
// byte-identical with no store, with a cold store (every cell
// simulated and persisted), and with a warm store (every persistable
// cell replayed from disk). The store may change only where the bytes
// come from — never what they are.
func TestStoreReplayByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("store ablation batch runs are slow")
	}
	exps := lookupAll(t, []string{"table3", "fig3", "whatif-v1hw"})

	for _, faults := range []bool{false, true} {
		want := renderBatch(t, exps, 4, faults)

		dir := t.TempDir()
		cold, coldStats := renderBatchStore(t, exps, dir, faults)
		if cold != want {
			t.Errorf("faults=%v: cold-store output differs from store-less output\n--- store-less ---\n%s\n--- cold store ---\n%s", faults, want, cold)
		}
		if coldStats.Puts == 0 {
			t.Errorf("faults=%v: cold run persisted no cells", faults)
		}

		warm, warmStats := renderBatchStore(t, exps, dir, faults)
		if warm != want {
			t.Errorf("faults=%v: warm-store output differs from store-less output\n--- store-less ---\n%s\n--- warm store ---\n%s", faults, want, warm)
		}
		if warmStats.Hits == 0 {
			t.Errorf("faults=%v: warm run served no cells from the store", faults)
		}
		if warmStats.Puts != 0 {
			t.Errorf("faults=%v: warm run re-wrote %d cells; replay must not churn the store", faults, warmStats.Puts)
		}
		if warmStats.Quarantined != 0 {
			t.Errorf("faults=%v: warm run quarantined %d entries", faults, warmStats.Quarantined)
		}
	}
}
