package harness

import (
	"fmt"
	"strings"

	"spectrebench/internal/engine"
)

// RenderResults renders a supervised batch exactly as the CLI prints it:
// each result's table (or failure report) in input order, then the
// summary table, annotated with eng's cell-cache statistics when eng is
// non-nil. The CLI and the determinism tests share this function, so
// "byte-identical output" means the same bytes everywhere.
//
// Cache hit/miss totals depend only on the multiset of submitted cell
// keys — never on worker count or scheduling order — so the stats line
// is as deterministic as the tables above it.
func RenderResults(results []Result, csv bool, eng *engine.Engine) string {
	var b strings.Builder
	for _, res := range results {
		switch {
		case res.Status == StatusOK && csv:
			b.WriteString(res.Table.CSV())
		case res.Status == StatusOK:
			b.WriteString(res.Table.Render())
			fmt.Fprintf(&b, "(%s, %.1fM simulated cycles)\n\n", res.Paper, float64(res.Cycles)/1e6)
		default:
			// Graceful degradation: report inline and keep going.
			fmt.Fprintf(&b, "%s — %s\n  status: %s\n  error:  %v\n\n", res.ID, res.Title, res.Status, res.Err)
		}
	}
	summary := SummaryTable(results)
	if eng != nil {
		summary.Notes = append(summary.Notes, cacheNote(eng))
	}
	if csv {
		b.WriteString(summary.CSV())
	} else {
		b.WriteString(summary.Render())
	}
	return b.String()
}

// cacheNote summarizes the engine's cell cache. The worker count is
// deliberately omitted: output must not vary with -jobs.
func cacheNote(eng *engine.Engine) string {
	hits, misses := eng.Stats()
	total := hits + misses
	if total == 0 {
		return "cell cache: no cells scheduled"
	}
	return fmt.Sprintf("cell cache: %d cells simulated, %d reused (%.1f%% hit rate)",
		misses, hits, float64(hits)/float64(total)*100)
}
