package harness

import (
	"fmt"
	"strings"

	"spectrebench/internal/engine"
)

// RenderResults renders a supervised batch exactly as the CLI prints it:
// each result's table (or failure report) in input order, then the
// summary table, annotated with eng's cell-cache statistics when eng is
// non-nil. The CLI and the determinism tests share this function, so
// "byte-identical output" means the same bytes everywhere.
//
// Cache hit/miss totals depend only on the multiset of submitted cell
// keys — never on worker count or scheduling order — so the stats line
// is as deterministic as the tables above it.
func RenderResults(results []Result, csv bool, eng *engine.Engine) string {
	var b strings.Builder
	for _, res := range results {
		b.WriteString(RenderResult(res, csv))
	}
	b.WriteString(RenderSummary(results, csv, eng))
	return b.String()
}

// RenderResult renders one supervised result exactly as it appears in
// the batch output: the table (text or CSV) for a completed
// experiment, or the inline failure block for anything else. The
// server streams this per-experiment, so a result fetched over HTTP is
// byte-identical to the same result rendered locally.
func RenderResult(res Result, csv bool) string {
	var b strings.Builder
	switch {
	case res.Status == StatusOK && csv:
		b.WriteString(res.Table.CSV())
	case res.Status == StatusOK:
		b.WriteString(res.Table.Render())
		fmt.Fprintf(&b, "(%s, %.1fM simulated cycles)\n\n", res.Paper, float64(res.Cycles)/1e6)
	default:
		// Graceful degradation: report inline and keep going.
		fmt.Fprintf(&b, "%s — %s\n  status: %s\n  error:  %v\n\n", res.ID, res.Title, res.Status, res.Err)
	}
	return b.String()
}

// RenderSummary renders the batch summary table, annotated with eng's
// cell-cache note when eng is non-nil.
func RenderSummary(results []Result, csv bool, eng *engine.Engine) string {
	summary := SummaryTable(results)
	if eng != nil {
		summary.Notes = append(summary.Notes, CacheNote(eng))
	}
	if csv {
		return summary.CSV()
	}
	return summary.Render()
}

// CacheNote summarizes the engine's cell cache in one line. The worker
// count is deliberately omitted: the note must not vary with -jobs. The
// CLI prints it to stderr; passing a non-nil engine to RenderSummary
// embeds it in the summary table instead (the determinism tests do).
func CacheNote(eng *engine.Engine) string {
	hits, misses := eng.Stats()
	total := hits + misses
	if total == 0 {
		return "cell cache: no cells scheduled"
	}
	return fmt.Sprintf("cell cache: %d cells simulated, %d reused (%.1f%% hit rate)",
		misses, hits, float64(hits)/float64(total)*100)
}
