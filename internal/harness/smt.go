package harness

import (
	"fmt"

	"spectrebench/internal/cpu"
	"spectrebench/internal/engine"
	"spectrebench/internal/isa"
	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
)

func init() {
	register(Experiment{
		ID: "smt-cost", Paper: "§3.3 / Table 1",
		Title: "Throughput cost of disabling SMT (why the MDS 'Disable SMT' row stays '!')",
		Run:   runSMTCost,
	})
}

// runSMTCost quantifies the paper's rationale for leaving hyperthreading
// on even where MDS makes it unsafe: two compute threads per core are
// compared running simultaneously (SMT) versus sequentially (nosmt).
// "Not using hyperthreading would have an even larger cost" than the
// buffer clears (§3.3).
func runSMTCost() (*Table, error) {
	t := &Table{
		ID: "smt-cost", Title: "Two compute threads: SMT wall cycles vs nosmt, per physical core",
		Columns: []string{"CPU", "SMT", "SMT (wall)", "nosmt (wall)", "nosmt slowdown"},
	}
	cs := declareCells()
	cells := make([]*engine.Task, len(model.All()))
	for i, m := range model.All() {
		if !m.SMT {
			continue
		}
		m := m
		cells[i] = cs.cell("smt/pair-wall", m, kernel.Mitigations{}, func() (any, error) {
			smtWall, seqWall, err := smtPairWall(m)
			if err != nil {
				return nil, err
			}
			return SMTPair{SMT: smtWall, Seq: seqWall}, nil
		})
	}
	for i, m := range model.All() {
		if cells[i] == nil {
			t.Rows = append(t.Rows, []string{m.Uarch, "", "N/A", "N/A", "N/A"})
			continue
		}
		v, err := cells[i].Wait()
		if err != nil {
			return nil, err
		}
		p := v.(SMTPair)
		t.Rows = append(t.Rows, []string{
			m.Uarch, "yes", cyc(p.SMT), cyc(p.Seq), pct(p.Seq/p.SMT - 1),
		})
	}
	t.Notes = append(t.Notes,
		"the Ryzen 3 1200 (Zen) is the study's only part without SMT",
		"MDS-vulnerable parts keep SMT on by default despite the cross-thread leak (Table 1's '!')")
	return t, nil
}

// SMTPair is the "smt/pair-wall" cell's value: wall cycles for the
// thread pair co-run on SMT siblings vs back-to-back on one core. Its
// fields are exported so the value round-trips through the gob-encoded
// cell store (internal/store) like every other cell value.
type SMTPair struct{ SMT, Seq float64 }

// smtComputeProgram is a swaptions-like FP loop at the given base.
func smtComputeProgram(base uint64, dataVA int64) *isa.Program {
	a := isa.NewAsm()
	a.MovI(isa.R1, dataVA)
	a.FMovI(5, 1.0001)
	a.FMovI(7, 0.999)
	a.MovI(isa.R8, 400)
	a.Label("loop")
	a.FLoad(2, isa.R1, 0)
	a.FMul(2, 5)
	a.FStore(isa.R1, 0, 2)
	a.FMul(7, 5)
	a.FAdd(7, 5)
	a.FMul(7, 5)
	a.FAdd(7, 5)
	a.SubI(isa.R8, 1)
	a.CmpI(isa.R8, 0)
	a.Jne("loop")
	a.Hlt()
	return a.MustAssemble(base)
}

// smtPairWall runs the thread pair both ways and returns the wall cycles.
func smtPairWall(m *model.CPU) (smtWall, seqWall float64, err error) {
	build := func() (*cpu.Core, *cpu.Core) {
		a := cpu.New(m)
		b := cpu.NewSMTSibling(a)
		for i, c := range []*cpu.Core{a, b} {
			pt := c.PTs.NewTable(uint16(i + 1))
			base := uint64(0x40_0000 + i*0x10_0000)
			data := uint64(0x80_0000 + i*0x10_0000)
			pt.MapRange(base, base, 4, false, true, false, false)
			pt.MapRange(data, data, 4, true, true, true, false)
			c.SetPageTable(pt)
			c.LoadProgram(smtComputeProgram(base, int64(data)))
			c.PC = base
		}
		return a, b
	}

	// SMT: co-run on sibling cores.
	a, b := build()
	wall, err := cpu.RunSMTPair(a, b, 10_000_000)
	if err != nil {
		return 0, 0, fmt.Errorf("smt pair: %w", err)
	}
	smtWall = float64(wall)

	// nosmt: the same two threads run back-to-back on one core.
	a2, b2 := build()
	if err := a2.RunUntilHalt(10_000_000); err != nil {
		return 0, 0, err
	}
	if err := b2.RunUntilHalt(10_000_000); err != nil {
		return 0, 0, err
	}
	seqWall = float64(a2.Cycles + b2.Cycles)
	return smtWall, seqWall, nil
}
