package attacks

import (
	"testing"

	"spectrebench/internal/cpu"
	"spectrebench/internal/isa"
	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
)

// buildCrossProcV2 builds the two-process Spectre V2 scenario: the
// parent (attacker) trains a shared-address indirect branch and yields;
// the child (victim) then runs the same branch with a benign target and
// records the divider delta. Both processes run the same program, so
// the branch site sits at the same virtual address in both — the
// cross-process BTB aliasing IBPB exists to stop.
func buildCrossProcV2(victimProtects bool) *isa.Program {
	a := isa.NewAsm()
	a.Jmp("main")

	a.Label("branch_site")
	a.MovI(isa.R12, 64)
	a.Label("fill")
	a.SubI(isa.R12, 1)
	a.CmpI(isa.R12, 0)
	a.Jne("fill")
	a.CallInd(isa.R11)
	a.JmpInd(isa.R13)

	a.Label("victim_target")
	a.MovI(isa.R1, 12345)
	a.MovI(isa.R2, 6789)
	a.Div(isa.R1, isa.R2)
	a.Ret()
	a.Label("nop_target")
	a.Ret()

	a.Label("main")
	a.MovI(isa.R7, kernel.SysFork)
	a.Syscall()
	a.CmpI(isa.R0, 0)
	a.Jeq("child")

	// --- parent: train, then hand the CPU to the child ---------------
	a.MovI(isa.R9, 48)
	a.Label("train")
	a.MovLabel(isa.R11, "victim_target")
	a.MovLabel(isa.R13, "train_next")
	a.Jmp("branch_site")
	a.Label("train_next")
	a.SubI(isa.R9, 1)
	a.CmpI(isa.R9, 0)
	a.Jne("train")
	a.MovI(isa.R7, kernel.SysYield)
	a.Syscall()
	a.MovI(isa.R1, 0)
	a.MovI(isa.R7, kernel.SysExit)
	a.Syscall()

	// --- child: (optionally opt into protection,) wait, measure ------
	a.Label("child")
	if victimProtects {
		// Request speculation protection (seccomp implies IBPB on
		// context switches to/from this task).
		a.MovI(isa.R1, 0)
		a.MovI(isa.R7, kernel.SysSeccomp)
		a.Syscall()
	}
	a.MovI(isa.R7, kernel.SysYield)
	a.Syscall() // parent trains during this window
	a.MovLabel(isa.R11, "nop_target")
	a.MovLabel(isa.R13, "measured")
	a.Rdpmc(isa.R8, 2)
	a.Jmp("branch_site")
	a.Label("measured")
	a.Rdpmc(isa.R9, 2)
	a.Sub(isa.R9, isa.R8)
	a.MovI(isa.R12, kernel.UserDataBase+0x3d00)
	a.Store(isa.R12, 0, isa.R9)
	a.MovI(isa.R1, 0)
	a.MovI(isa.R7, kernel.SysExit)
	a.Syscall()

	return a.MustAssemble(kernel.UserCodeBase)
}

// crossProcV2Hit runs the scenario and reports whether the victim's
// branch speculatively executed the attacker's gadget.
func crossProcV2Hit(t *testing.T, m *model.CPU, victimProtects bool) bool {
	t.Helper()
	c := cpu.New(m)
	// Default mitigations: the kernel's own indirect branches are
	// protected (retpoline/eIBRS), but user→user protection is only the
	// conditional IBPB — the mitigation under test.
	mit := kernel.Defaults(m)
	k := kernel.New(c, mit)
	k.NewProcess("crossproc", buildCrossProcV2(victimProtects))
	if err := k.RunProcessToCompletion(10_000_000); err != nil {
		t.Fatal(err)
	}
	// The forked child shares the parent's physical window (fork clones
	// the page table), so the child's store lands under PID 1's base.
	return c.Phys.Read64((uint64(1)<<32)+kernel.UserDataBase+0x3d00) > 0
}

// The paper's cross-process story (§5.3): without protection, one user
// process can poison another's indirect branches across a context
// switch, because the default IBPB policy is conditional. A victim that
// opts in (seccomp / prctl) gets an IBPB on every switch and is safe.
func TestCrossProcessSpectreV2(t *testing.T) {
	m := model.Broadwell() // untagged BTB: cross-process aliasing works
	if !crossProcV2Hit(t, m, false) {
		t.Error("unprotected victim was not steered by the attacker's training")
	}
	if crossProcV2Hit(t, m, true) {
		t.Error("conditional IBPB failed to protect the opted-in victim")
	}
}

// On eIBRS parts the same user→user attack still works (mode tagging
// separates user from kernel, not user from user — the paper's §6.3
// point that eIBRS is not a complete Spectre V2 fix).
func TestCrossProcessSpectreV2OnEIBRSPart(t *testing.T) {
	m := model.IceLakeServer()
	if !crossProcV2Hit(t, m, false) {
		t.Error("user→user poisoning should still work on eIBRS hardware")
	}
	if crossProcV2Hit(t, m, true) {
		t.Error("IBPB failed on the eIBRS part")
	}
}
