// Package attacks implements working proofs-of-concept of every
// transient-execution attack the paper studies, running against the
// simulated CPU. Each PoC returns whether the secret actually leaked,
// which makes the mitigation claims of Table 1 testable: an attack must
// succeed on a vulnerable, unmitigated configuration and fail once the
// corresponding mitigation (or a fixed CPU) is in place.
//
// All PoCs use FLUSH+RELOAD over a 256-line probe array as the covert
// channel, timed in-program with rdtsc like a real attacker would.
package attacks

import (
	"fmt"

	"spectrebench/internal/cpu"
	"spectrebench/internal/isa"
	"spectrebench/internal/mem"
	"spectrebench/internal/model"
)

// Address layout for raw-core PoCs.
const (
	pocCode   = 0x40_0000
	pocData   = 0x80_0000
	pocProbe  = 0x90_0000
	pocStack  = 0xa0_0000
	pocKernel = 0xc0_0000
	pocResult = pocData + 0x3000 // leaked byte written here by the PoC
)

// pocCore builds a bare user-mode machine (no kernel) for PoCs that
// exercise the hardware directly.
func pocCore(m *model.CPU) *cpu.Core {
	c := cpu.New(m)
	pt := c.PTs.NewTable(1)
	pt.MapRange(pocCode, pocCode, 16, false, true, false, false)
	pt.MapRange(pocData, pocData, 64, true, true, true, false)
	pt.MapRange(pocProbe, pocProbe, 256*64/mem.PageSize+1, true, true, true, false)
	pt.MapRange(pocStack-16*mem.PageSize, pocStack-16*mem.PageSize, 16, true, true, true, false)
	pt.MapRange(pocKernel, pocKernel, 4, true, false, true, true)
	c.SetPageTable(pt)
	c.Regs[isa.SP] = pocStack
	c.OnTrap = func(_ *cpu.Core, _ cpu.Fault) cpu.TrapAction { return cpu.TrapSkip }
	return c
}

// emitFlushProbe flushes all 256 probe lines (r4 = probe base).
func emitFlushProbe(a *isa.Asm) {
	a.MovI(isa.R4, pocProbe)
	a.MovI(isa.R5, 0)
	a.Label("flush_loop")
	a.Mov(isa.R6, isa.R5)
	a.ShlI(isa.R6, 6)
	a.Add(isa.R6, isa.R4)
	a.Clflush(isa.R6, 0)
	a.AddI(isa.R5, 1)
	a.CmpI(isa.R5, 256)
	a.Jne("flush_loop")
}

// emitReload times every probe line with rdtsc and records the fastest
// (the cached one) into [pocResult]. threshold separates L1 hits from
// misses on every model we simulate.
func emitReload(a *isa.Asm) {
	a.MovI(isa.R4, pocProbe)
	a.MovI(isa.R5, 0)  // index
	a.MovI(isa.R9, ^0) // best latency so far
	a.MovI(isa.R12, 0) // best index
	a.Label("reload_loop")
	a.Mov(isa.R6, isa.R5)
	a.ShlI(isa.R6, 6)
	a.Add(isa.R6, isa.R4)
	a.Rdtsc(isa.R7)
	a.Load(isa.R8, isa.R6, 0)
	a.Rdtsc(isa.R10)
	a.Sub(isa.R10, isa.R7) // latency
	a.Cmp(isa.R10, isa.R9)
	a.CmovLt(isa.R9, isa.R10) // track min latency...
	// ...and its index: recompute the comparison for the index cmov.
	a.Cmp(isa.R10, isa.R9)
	a.CmovEq(isa.R12, isa.R5)
	a.AddI(isa.R5, 1)
	a.CmpI(isa.R5, 256)
	a.Jne("reload_loop")
	a.MovI(isa.R6, pocResult)
	a.Store(isa.R6, 0, isa.R12)
}

// runPoC executes the program and returns the byte recovered via the
// covert channel.
func runPoC(c *cpu.Core, p *isa.Program) (byte, error) {
	c.LoadProgram(p)
	c.PC = p.Base
	c.Regs[isa.SP] = pocStack
	if err := c.RunUntilHalt(3_000_000); err != nil {
		return 0, err
	}
	return byte(c.Phys.Read64(pocResult)), nil
}

// SpectreV1Mitigation selects the victim's Spectre V1 hardening.
type SpectreV1Mitigation int

// Spectre V1 mitigation choices.
const (
	V1None SpectreV1Mitigation = iota
	V1Lfence
	V1IndexMask
)

// SpectreV1 runs the bounds-check-bypass attack against a victim using
// the given mitigation. It returns the recovered byte and whether the
// recovery matches the planted secret.
func SpectreV1(m *model.CPU, mit SpectreV1Mitigation) (byte, bool, error) {
	const secret = 0x5a
	const secretOff = 400 // elements past the bounds
	c := pocCore(m)
	defer c.Recycle()
	c.Phys.Write64(pocData+secretOff*8, secret)

	a := isa.NewAsm()
	// Train the bounds check in-bounds, then strike out-of-bounds.
	a.MovI(isa.R15, pocStack)
	a.MovI(isa.R0, 0) // attempt index: 0..15 train, 16 attack
	a.Label("attempt")
	a.MovI(isa.R1, 3) // in-bounds index
	a.CmpI(isa.R0, 16)
	a.MovI(isa.R2, secretOff)
	a.CmovEq(isa.R1, isa.R2) // 17th run: out-of-bounds index
	// Victim: if (idx < len) y = probe[array[idx] * 64]
	a.MovI(isa.R2, pocData)
	a.MovI(isa.R3, 16) // array length
	a.MovI(isa.R13, 0) // zero for masking
	a.Cmp(isa.R1, isa.R3)
	a.Jge("out_of_bounds")
	switch mit {
	case V1Lfence:
		a.Lfence()
	case V1IndexMask:
		a.Cmp(isa.R1, isa.R3)
		a.CmovGe(isa.R1, isa.R13)
	}
	a.Mov(isa.R5, isa.R1)
	a.ShlI(isa.R5, 3)
	a.Add(isa.R5, isa.R2)
	a.Load(isa.R6, isa.R5, 0)
	a.AndI(isa.R6, 0xff)
	a.ShlI(isa.R6, 6)
	a.MovI(isa.R4, pocProbe)
	a.Add(isa.R6, isa.R4)
	a.Load(isa.R7, isa.R6, 0)
	a.Label("out_of_bounds")
	a.AddI(isa.R0, 1)
	a.CmpI(isa.R0, 16)
	a.Jne("next_or_done")
	// Before the attack run: flush the probe array.
	emitFlushProbe(a)
	a.Label("next_or_done")
	a.CmpI(isa.R0, 17)
	a.Jne("attempt")
	emitReload(a)
	a.Hlt()

	got, err := runPoC(c, a.MustAssemble(pocCode))
	if err != nil {
		return 0, false, err
	}
	return got, got == secret, nil
}

// MeltdownConfig controls the Meltdown PoC environment.
type MeltdownConfig struct {
	// PTIUnmapped emulates page-table isolation: the kernel page is
	// absent from the user-visible table.
	PTIUnmapped bool
}

// Meltdown attempts to read a byte of kernel memory from user mode.
func Meltdown(m *model.CPU, cfg MeltdownConfig) (byte, bool, error) {
	const secret = 0x61
	c := pocCore(m)
	defer c.Recycle()
	c.Phys.Write64(pocKernel, secret)
	if cfg.PTIUnmapped {
		pt := c.PageTable()
		for i := uint64(0); i < 4; i++ {
			pt.Unmap(mem.VPN(pocKernel) + i)
		}
	}

	a := isa.NewAsm()
	emitFlushProbe(a)
	a.MovI(isa.R1, pocKernel)
	a.MovI(isa.R4, pocProbe)
	a.Load(isa.R2, isa.R1, 0) // faults; transient continuation leaks
	a.AndI(isa.R2, 0xff)
	a.ShlI(isa.R2, 6)
	a.Add(isa.R2, isa.R4)
	a.Load(isa.R3, isa.R2, 0)
	emitReload(a)
	a.Hlt()

	got, err := runPoC(c, a.MustAssemble(pocCode))
	if err != nil {
		return 0, false, err
	}
	return got, got == secret, nil
}

// MDSConfig controls the MDS PoC.
type MDSConfig struct {
	// VerwBeforeAttack models the kernel clearing buffers on its way
	// back to user mode.
	VerwBeforeAttack bool
	// CrossSMT samples a value deposited by the sibling hyperthread
	// instead of a same-thread kernel leftover.
	CrossSMT bool
}

// MDS samples stale fill-buffer contents through a faulting load.
func MDS(m *model.CPU, cfg MDSConfig) (byte, bool, error) {
	const secret = 0x77
	c := pocCore(m)
	defer c.Recycle()

	if cfg.CrossSMT {
		// The sibling thread's loads deposit into the shared buffers.
		sib := cpu.NewSMTSibling(c)
		sib.FB.Deposit(secret)
	} else {
		// Kernel-side activity left the value in the buffers.
		c.FB.Deposit(secret)
	}

	a := isa.NewAsm()
	emitFlushProbe(a)
	if cfg.VerwBeforeAttack {
		a.Verw()
	}
	a.MovI(isa.R1, 0x7fff_0000) // unmapped: the faulting sampler load
	a.MovI(isa.R4, pocProbe)
	a.Load(isa.R2, isa.R1, 0)
	a.AndI(isa.R2, 0xff)
	a.ShlI(isa.R2, 6)
	a.Add(isa.R2, isa.R4)
	a.Load(isa.R3, isa.R2, 0)
	emitReload(a)
	a.Hlt()

	got, err := runPoC(c, a.MustAssemble(pocCode))
	if err != nil {
		return 0, false, err
	}
	return got, got == secret, nil
}

// SSB runs the Speculative Store Bypass attack: a load transiently
// bypasses an in-flight store and observes the stale secret.
func SSB(m *model.CPU, ssbd bool) (byte, bool, error) {
	const secret = 0x42
	c := pocCore(m)
	defer c.Recycle()
	if ssbd {
		c.SetMSR(cpu.MSRSpecCtrl, cpu.SpecCtrlSSBD)
	}
	c.Phys.Write64(pocData+0x100, secret)

	a := isa.NewAsm()
	emitFlushProbe(a)
	a.MovI(isa.R1, pocData+0x100)
	a.MovI(isa.R2, 0)
	a.MovI(isa.R4, pocProbe)
	a.Store(isa.R1, 0, isa.R2) // overwrite the secret
	a.Load(isa.R3, isa.R1, 0)  // bypass window sees the stale value
	a.AndI(isa.R3, 0xff)
	a.ShlI(isa.R3, 6)
	a.Add(isa.R3, isa.R4)
	a.Load(isa.R5, isa.R3, 0)
	emitReload(a)
	a.Hlt()

	got, err := runPoC(c, a.MustAssemble(pocCode))
	if err != nil {
		return 0, false, err
	}
	return got, got == secret, nil
}

// L1TF exploits a non-present PTE whose frame bits point at data
// resident in the L1. inversion applies the PTE-inversion mitigation.
func L1TF(m *model.CPU, inversion bool) (byte, bool, error) {
	const secret = 0x33
	c := pocCore(m)
	defer c.Recycle()
	// The victim's secret is resident in the L1 at a host physical
	// address the attacker cannot architecturally reach.
	secretPA := uint64(0xdead000)
	c.Phys.Write64(secretPA, secret)
	c.L1.Touch(secretPA)

	// Attacker-crafted PTE: not present, frame bits = secret's frame.
	pt := c.PageTable()
	evilVA := uint64(0x7000_0000)
	framePhys := mem.PageBase(secretPA)
	if inversion {
		framePhys = 0 // inverted: no cacheable frame reachable
	}
	pt.Map(mem.VPN(evilVA), mem.PTE{Phys: framePhys, Present: false, User: true})

	a := isa.NewAsm()
	emitFlushProbe(a)
	// Refresh the victim line (the probe flush evicted nothing there,
	// but keep the PoC self-contained).
	a.MovI(isa.R1, int64(evilVA+(secretPA&mem.PageMask)))
	a.MovI(isa.R4, pocProbe)
	a.Load(isa.R2, isa.R1, 0) // terminal fault: leaks L1 contents
	a.AndI(isa.R2, 0xff)
	a.ShlI(isa.R2, 6)
	a.Add(isa.R2, isa.R4)
	a.Load(isa.R3, isa.R2, 0)
	emitReload(a)
	a.Hlt()

	got, err := runPoC(c, a.MustAssemble(pocCode))
	if err != nil {
		return 0, false, err
	}
	return got, got == secret, nil
}

// LazyFP leaks the previous FPU owner's register transiently. eager
// selects the eager-FPU mitigation (state always loaded; no trap).
func LazyFP(m *model.CPU, eager bool) (byte, bool, error) {
	const secret = 0x2c
	c := pocCore(m)
	defer c.Recycle()
	if eager {
		c.FPUEnabled = true
		c.FRegs[3] = 0 // current process's state is loaded
	} else {
		c.FPUEnabled = false
		c.FRegs[3] = secret // stale: previous owner's register
	}
	c.OnTrap = func(cc *cpu.Core, f cpu.Fault) cpu.TrapAction {
		if f.Kind == cpu.FaultFPUDisabled {
			cc.FPUEnabled = true
			cc.FRegs[3] = 0 // lazy restore of the current process
			return cpu.TrapRetry
		}
		return cpu.TrapSkip
	}

	a := isa.NewAsm()
	emitFlushProbe(a)
	a.MovI(isa.R4, pocProbe)
	a.FToI(isa.R2, 3) // traps under lazy FPU; transient sees the secret
	a.AndI(isa.R2, 0xff)
	a.ShlI(isa.R2, 6)
	a.Add(isa.R2, isa.R4)
	a.Load(isa.R3, isa.R2, 0)
	emitReload(a)
	a.Hlt()

	got, err := runPoC(c, a.MustAssemble(pocCode))
	if err != nil {
		return 0, false, err
	}
	return got, got == secret, nil
}

// SpectreV2Config controls the branch-target-injection PoC.
type SpectreV2Config struct {
	// IBPBBeforeVictim issues an IBPB between training and the victim
	// branch (the context-switch mitigation).
	IBPBBeforeVictim bool
	// IBRS sets SPEC_CTRL.IBRS for the whole experiment.
	IBRS bool
}

// SpectreV2 trains the BTB to hijack an indirect branch into a
// divide-containing gadget and reports whether the gadget executed
// transiently (observed via the divider-active counter, §6).
func SpectreV2(m *model.CPU, cfg SpectreV2Config) (bool, error) {
	c := pocCore(m)
	defer c.Recycle()
	if cfg.IBRS {
		if !m.Spec.IBRS {
			return false, fmt.Errorf("attacks: %s does not implement IBRS", m.Uarch)
		}
		c.SetMSR(cpu.MSRSpecCtrl, cpu.SpecCtrlIBRS)
	}

	a := isa.NewAsm()
	a.Jmp("main")
	// The branch site embeds a history-filling loop so the branch
	// history at the indirect call matches between training and the
	// victim run (real exploits align history the same way).
	a.Label("branch_site")
	a.MovI(isa.R12, 32)
	a.Label("v2_fill")
	a.SubI(isa.R12, 1)
	a.CmpI(isa.R12, 0)
	a.Jne("v2_fill")
	a.CallInd(isa.R11)
	a.Ret()
	a.Label("victim_target")
	a.MovI(isa.R1, 12345)
	a.MovI(isa.R2, 6789)
	a.Div(isa.R1, isa.R2)
	a.Ret()
	a.Label("nop_target")
	a.Ret()
	a.Label("main")
	// Train 32 times.
	a.MovI(isa.R9, 32)
	a.MovLabel(isa.R11, "victim_target")
	a.Label("train")
	a.Call("branch_site")
	a.SubI(isa.R9, 1)
	a.CmpI(isa.R9, 0)
	a.Jne("train")
	a.Hlt() // pause for the host to optionally issue IBPB
	// Victim run with the benign target; divider delta is the signal.
	a.Label("victim_run")
	a.MovLabel(isa.R11, "nop_target")
	a.Rdpmc(isa.R8, 2) // ArithDividerActive
	a.Call("branch_site")
	a.Rdpmc(isa.R9, 2)
	a.Sub(isa.R9, isa.R8)
	a.MovI(isa.R6, pocResult)
	a.Store(isa.R6, 0, isa.R9)
	a.Hlt()

	p := a.MustAssemble(pocCode)
	c.LoadProgram(p)
	c.PC = p.Base
	if err := c.RunUntilHalt(1_000_000); err != nil {
		return false, err
	}
	if cfg.IBPBBeforeVictim {
		c.SetMSR(cpu.MSRPredCmd, 1)
	}
	c.ClearHalt()
	c.PC = p.LabelAddr("victim_run")
	if err := c.RunUntilHalt(1_000_000); err != nil {
		return false, err
	}
	return c.Phys.Read64(pocResult) > 0, nil
}
