package attacks

import (
	"spectrebench/internal/isa"
	"spectrebench/internal/model"
	"spectrebench/internal/pmc"
)

// SpectreRSB runs the return-stack-buffer variant (Koruyeh et al.,
// §5.3 of the paper): the attacker plants a stale RSB entry pointing at
// a gadget by calling a trampoline that discards its return address, so
// the victim's next RET consumes the stale prediction and transiently
// executes the gadget. stuffed applies the kernel's context-switch RSB
// refill between the planting and the victim return.
//
// It returns whether the gadget's divide executed transiently.
func SpectreRSB(m *model.CPU, stuffed bool) (bool, error) {
	c := pocCore(m)
	defer c.Recycle()

	a := isa.NewAsm()
	a.Jmp("main")

	// The gadget sits immediately after the trampoline call site, so
	// the planted RSB entry points straight at it.
	a.Label("victim_fn")
	a.Call("trampoline")
	a.Label("gadget") // = the stale RSB entry's target
	a.MovI(isa.R1, 12345)
	a.MovI(isa.R2, 6789)
	a.Div(isa.R1, isa.R2)
	a.Label("victim_body")
	// (the trampoline re-enters here architecturally)
	a.MovI(isa.R5, 1)
	a.Ret() // RSB now predicts "gadget"; architectural target is main

	a.Label("trampoline")
	a.AddI(isa.SP, 8) // discard the return address: the RSB entry goes stale
	a.Jmp("victim_body")

	a.Label("main")
	a.Call("victim_fn")
	a.Hlt()

	p := a.MustAssemble(pocCode)
	c.LoadProgram(p)
	c.PC = p.LabelAddr("main")
	c.Regs[isa.SP] = pocStack

	if !stuffed {
		divBefore := c.PMC.Read(pmc.ArithDividerActive)
		if err := c.RunUntilHalt(100_000); err != nil {
			return false, err
		}
		// The gadget never runs architecturally (R5 is set on the real
		// path and the divide result registers stay untouched there).
		return c.PMC.Read(pmc.ArithDividerActive) > divBefore, nil
	}

	// With stuffing: run until just before the victim's RET, refill the
	// RSB like the kernel does on a context switch, then continue.
	retPC := p.LabelAddr("victim_body") + 1*isa.InstrBytes // the RET
	for i := 0; i < 100_000 && c.PC != retPC; i++ {
		if err := c.Step(); err != nil {
			return false, err
		}
	}
	benign := p.LabelAddr("main") + 1*isa.InstrBytes // the HLT: harmless
	c.RSB.Fill(benign)
	c.Charge(m.Costs.RSBFill)
	divBefore := c.PMC.Read(pmc.ArithDividerActive)
	if err := c.RunUntilHalt(100_000); err != nil {
		return false, err
	}
	return c.PMC.Read(pmc.ArithDividerActive) > divBefore, nil
}
