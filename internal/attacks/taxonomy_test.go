package attacks

import (
	"testing"

	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
)

// TestDefaultsBlockDefaultModel asserts, for every simulated uarch,
// that the kernel's Defaults auto-selection blocks every default-model
// attack the model marks the part vulnerable to. This is the
// predicate/model drift tripwire: a new vulnerability flag without a
// matching default mitigation (or vice versa) fails here.
func TestDefaultsBlockDefaultModel(t *testing.T) {
	for _, m := range model.All() {
		mit := kernel.Defaults(m)
		for _, a := range DefaultModel() {
			if !a.Vulnerable(m) {
				continue
			}
			if !a.Blocked(m, mit) {
				t.Errorf("%s: Defaults leaves %s open", m.Uarch, a.ID)
			}
		}
		ok, open := Secure(m, mit, DefaultModel())
		if !ok {
			t.Errorf("%s: Secure(Defaults, default model) = false, open: %v", m.Uarch, open)
		}
	}
}

// TestNoMitigationsBlocksNothing asserts the zero mitigation set blocks
// no attack on any vulnerable part.
func TestNoMitigationsBlocksNothing(t *testing.T) {
	for _, m := range model.All() {
		for _, a := range Taxonomy {
			if !a.Vulnerable(m) {
				continue
			}
			if a.Blocked(m, kernel.Mitigations{}) {
				t.Errorf("%s: zero mitigation set claims to block %s", m.Uarch, a.ID)
			}
		}
	}
}

// TestMitigationsOffBlocksOnlyLazyFP pins the mitigations=off lowering:
// Apply deliberately keeps eager FPU (it is not a "mitigation" casualty
// on Linux), so lazyfp stays blocked while everything else opens up.
func TestMitigationsOffBlocksOnlyLazyFP(t *testing.T) {
	bp := kernel.BootParams{MitigationsOff: true}
	for _, m := range model.All() {
		mit := bp.Apply(m, kernel.Defaults(m))
		for _, a := range Taxonomy {
			if !a.Vulnerable(m) {
				continue
			}
			blocked := a.Blocked(m, mit)
			if a.ID == "lazyfp" {
				if !blocked {
					t.Errorf("%s: mitigations=off should keep eager FPU and block lazyfp", m.Uarch)
				}
				continue
			}
			if blocked {
				t.Errorf("%s: mitigations=off still blocks %s", m.Uarch, a.ID)
			}
		}
	}
}

// TestBeyondDefaultAttacksNeedExtraMitigations asserts the non-default
// entries are genuinely beyond the auto-selection: wherever a part is
// vulnerable, Defaults alone leaves them open.
func TestBeyondDefaultAttacksNeedExtraMitigations(t *testing.T) {
	anyVulnerable := false
	for _, m := range model.All() {
		mit := kernel.Defaults(m)
		for _, a := range Taxonomy {
			if a.Default || !a.Vulnerable(m) {
				continue
			}
			anyVulnerable = true
			if a.Blocked(m, mit) {
				t.Errorf("%s: %s marked beyond-default but Defaults blocks it", m.Uarch, a.ID)
			}
		}
	}
	if !anyVulnerable {
		t.Fatal("no part vulnerable to any beyond-default attack; matrix degenerate")
	}
}

func TestParseRequirement(t *testing.T) {
	def, err := ParseRequirement("default")
	if err != nil {
		t.Fatal(err)
	}
	if len(def) != len(DefaultModel()) {
		t.Fatalf("default expanded to %d attacks, want %d", len(def), len(DefaultModel()))
	}
	all, err := ParseRequirement("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Taxonomy) {
		t.Fatalf("all expanded to %d attacks, want %d", len(all), len(Taxonomy))
	}
	dup, err := ParseRequirement("meltdown, default,meltdown")
	if err != nil {
		t.Fatal(err)
	}
	if len(dup) != len(DefaultModel()) {
		t.Fatalf("deduplicated spec expanded to %d attacks, want %d", len(dup), len(DefaultModel()))
	}
	if _, err := ParseRequirement("meltdownn"); err == nil {
		t.Fatal("expected error for unknown attack ID")
	}
	if _, err := ParseRequirement(" , "); err == nil {
		t.Fatal("expected error for empty requirement")
	}
}
