package attacks

import (
	"fmt"
	"testing"

	"spectrebench/internal/cpu"
	"spectrebench/internal/isa"
	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
)

// buildSurvivalProgram: train a kernel-mode indirect branch via SYS_KMOD,
// perform n intervening getpid syscalls, then measure (again in kernel
// mode) whether the trained prediction survived.
func buildSurvivalProgram(n int) *isa.Program {
	a := isa.NewAsm()
	a.Jmp("driver")

	a.Label("branch_site")
	a.MovI(isa.R12, 64)
	a.Label("fill")
	a.SubI(isa.R12, 1)
	a.CmpI(isa.R12, 0)
	a.Jne("fill")
	a.CallInd(isa.R11)
	a.JmpInd(isa.R13)

	a.Label("victim_target")
	a.MovI(isa.R1, 12345)
	a.MovI(isa.R2, 6789)
	a.Div(isa.R1, isa.R2)
	a.Ret()
	a.Label("nop_target")
	a.Ret()

	a.Label("ktrain")
	a.Mov(isa.R6, isa.R10)
	a.MovI(isa.R9, 32)
	a.Label("tloop")
	a.MovLabel(isa.R11, "victim_target")
	a.MovLabel(isa.R13, "tnext")
	a.Jmp("branch_site")
	a.Label("tnext")
	a.SubI(isa.R9, 1)
	a.CmpI(isa.R9, 0)
	a.Jne("tloop")
	a.JmpInd(isa.R6)

	a.Label("kmeasure")
	a.Mov(isa.R6, isa.R10)
	a.MovLabel(isa.R11, "nop_target")
	a.MovLabel(isa.R13, "mdone")
	a.Rdpmc(isa.R8, 2)
	a.Jmp("branch_site")
	a.Label("mdone")
	a.Rdpmc(isa.R9, 2)
	a.Sub(isa.R9, isa.R8)
	a.MovI(isa.R12, kernel.UserDataBase+0x3e00)
	a.Store(isa.R12, 0, isa.R9)
	a.JmpInd(isa.R6)

	a.Label("driver")
	a.MovLabel(isa.R2, "ktrain")
	a.MovI(isa.R7, kernel.SysKMod)
	a.Syscall()
	for i := 0; i < n; i++ {
		a.MovI(isa.R7, kernel.SysGetPID)
		a.Syscall()
	}
	a.MovLabel(isa.R2, "kmeasure")
	a.MovI(isa.R7, kernel.SysKMod)
	a.Syscall()
	a.MovI(isa.R1, 0)
	a.MovI(isa.R7, kernel.SysExit)
	a.Syscall()
	return a.MustAssemble(kernel.UserCodeBase)
}

// trainingSurvives reports whether the kernel-mode BTB entry trained via
// one syscall still predicts after n intervening getpid syscalls.
func trainingSurvives(t *testing.T, m *model.CPU, n int) bool {
	t.Helper()
	c := cpu.New(m)
	k := kernel.New(c, kernel.Defaults(m))
	p := k.NewProcess(fmt.Sprintf("survival-%d", n), buildSurvivalProgram(n))
	if err := k.RunProcessToCompletion(10_000_000); err != nil {
		t.Fatal(err)
	}
	return c.Phys.Read64((uint64(p.PID)<<32)+kernel.UserDataBase+0x3e00) > 0
}

// The paper's §6.2.2 observation: with eIBRS enabled, roughly one in
// every 8-20 kernel entries is "slow" and scrubs kernel-mode BTB state;
// training survives an intervening syscall only when its entry was fast.
func TestEIBRSBimodalScrubsKernelBTB(t *testing.T) {
	m := model.CascadeLake() // eIBRS default, bimodal period 12
	survived, scrubbed := 0, 0
	for n := 0; n < 2*m.Spec.EIBRSBimodalPeriod; n++ {
		if trainingSurvives(t, m, n) {
			survived++
		} else {
			scrubbed++
		}
	}
	if survived == 0 {
		t.Error("training never survived: scrubbing should be periodic, not constant")
	}
	if scrubbed == 0 {
		t.Error("training always survived: no slow entries observed")
	}
	t.Logf("Cascade Lake: survived=%d scrubbed=%d over %d spacings",
		survived, scrubbed, 2*m.Spec.EIBRSBimodalPeriod)

	// Pre-eIBRS hardware has no bimodal scrub: under its default
	// (retpoline) configuration, kernel-mode training always survives.
	bw := model.Broadwell()
	for n := 0; n < 6; n++ {
		if !trainingSurvives(t, bw, n) {
			t.Errorf("Broadwell: training scrubbed at n=%d without eIBRS", n)
		}
	}
}
