package attacks

import (
	"testing"

	"spectrebench/internal/model"
)

// --- Spectre V1: everyone is vulnerable; lfence and masking stop it. ----

func TestSpectreV1Matrix(t *testing.T) {
	for _, m := range model.All() {
		_, leaked, err := SpectreV1(m, V1None)
		if err != nil {
			t.Fatalf("%s: %v", m.Uarch, err)
		}
		if !leaked {
			t.Errorf("%s: Spectre V1 must leak unmitigated", m.Uarch)
		}
		for _, mit := range []SpectreV1Mitigation{V1Lfence, V1IndexMask} {
			_, leaked, err := SpectreV1(m, mit)
			if err != nil {
				t.Fatalf("%s: %v", m.Uarch, err)
			}
			if leaked {
				t.Errorf("%s: Spectre V1 leaked despite mitigation %d", m.Uarch, mit)
			}
		}
	}
}

// --- Meltdown: Broadwell/Skylake only; PTI stops it. --------------------

func TestMeltdownMatrix(t *testing.T) {
	for _, m := range model.All() {
		_, leaked, err := Meltdown(m, MeltdownConfig{})
		if err != nil {
			t.Fatalf("%s: %v", m.Uarch, err)
		}
		if leaked != m.Vulns.Meltdown {
			t.Errorf("%s: Meltdown leak = %v, vulnerability = %v", m.Uarch, leaked, m.Vulns.Meltdown)
		}
		if m.Vulns.Meltdown {
			_, leaked, err := Meltdown(m, MeltdownConfig{PTIUnmapped: true})
			if err != nil {
				t.Fatalf("%s: %v", m.Uarch, err)
			}
			if leaked {
				t.Errorf("%s: Meltdown leaked despite PTI", m.Uarch)
			}
		}
	}
}

// --- MDS: Broadwell/Skylake/Cascade Lake; verw stops it. ----------------

func TestMDSMatrix(t *testing.T) {
	for _, m := range model.All() {
		_, leaked, err := MDS(m, MDSConfig{})
		if err != nil {
			t.Fatalf("%s: %v", m.Uarch, err)
		}
		if leaked != m.Vulns.MDS {
			t.Errorf("%s: MDS leak = %v, vulnerability = %v", m.Uarch, leaked, m.Vulns.MDS)
		}
		if m.Vulns.MDS {
			_, leaked, err := MDS(m, MDSConfig{VerwBeforeAttack: true})
			if err != nil {
				t.Fatalf("%s: %v", m.Uarch, err)
			}
			if leaked {
				t.Errorf("%s: MDS leaked despite verw", m.Uarch)
			}
		}
	}
}

func TestMDSCrossSMT(t *testing.T) {
	m := model.SkylakeClient()
	_, leaked, err := MDS(m, MDSConfig{CrossSMT: true})
	if err != nil {
		t.Fatal(err)
	}
	if !leaked {
		t.Error("cross-hyperthread MDS should leak on Skylake with SMT on")
	}
}

// --- SSB: everyone; SSBD stops it. ---------------------------------------

func TestSSBMatrix(t *testing.T) {
	for _, m := range model.All() {
		_, leaked, err := SSB(m, false)
		if err != nil {
			t.Fatalf("%s: %v", m.Uarch, err)
		}
		if !leaked {
			t.Errorf("%s: SSB must leak without SSBD", m.Uarch)
		}
		_, leaked, err = SSB(m, true)
		if err != nil {
			t.Fatalf("%s: %v", m.Uarch, err)
		}
		if leaked {
			t.Errorf("%s: SSB leaked despite SSBD", m.Uarch)
		}
	}
}

// --- L1TF: Broadwell/Skylake; PTE inversion stops it. --------------------

func TestL1TFMatrix(t *testing.T) {
	for _, m := range model.All() {
		_, leaked, err := L1TF(m, false)
		if err != nil {
			t.Fatalf("%s: %v", m.Uarch, err)
		}
		if leaked != m.Vulns.L1TF {
			t.Errorf("%s: L1TF leak = %v, vulnerability = %v", m.Uarch, leaked, m.Vulns.L1TF)
		}
		if m.Vulns.L1TF {
			_, leaked, err := L1TF(m, true)
			if err != nil {
				t.Fatalf("%s: %v", m.Uarch, err)
			}
			if leaked {
				t.Errorf("%s: L1TF leaked despite PTE inversion", m.Uarch)
			}
		}
	}
}

// --- LazyFP: pre-fix Intel; eager FPU stops it. --------------------------

func TestLazyFPMatrix(t *testing.T) {
	for _, m := range model.All() {
		_, leaked, err := LazyFP(m, false)
		if err != nil {
			t.Fatalf("%s: %v", m.Uarch, err)
		}
		if leaked != m.Vulns.LazyFPLeak {
			t.Errorf("%s: LazyFP leak = %v, hw leak = %v", m.Uarch, leaked, m.Vulns.LazyFPLeak)
		}
		_, leaked, err = LazyFP(m, true)
		if err != nil {
			t.Fatalf("%s: %v", m.Uarch, err)
		}
		if leaked {
			t.Errorf("%s: LazyFP leaked despite eager FPU", m.Uarch)
		}
	}
}

// --- Spectre V2 PoC -------------------------------------------------------

func TestSpectreV2HijackAndIBPB(t *testing.T) {
	m := model.Broadwell()
	hit, err := SpectreV2(m, SpectreV2Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("Spectre V2 should hijack on Broadwell")
	}
	hit, err = SpectreV2(m, SpectreV2Config{IBPBBeforeVictim: true})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("IBPB should stop the hijack")
	}
	hit, err = SpectreV2(m, SpectreV2Config{IBRS: true})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("legacy IBRS should stop speculation entirely on Broadwell")
	}
	if _, err := SpectreV2(model.Zen(), SpectreV2Config{IBRS: true}); err == nil {
		t.Error("IBRS on Zen must report unsupported")
	}
}

// --- §6 probe: Tables 9 and 10 --------------------------------------------

// table9Expected is the paper's Table 9 (IBRS disabled).
var table9Expected = map[string][numScenarios]bool{
	"Broadwell":       {true, true, true, true, true},
	"Skylake Client":  {true, true, true, true, true},
	"Cascade Lake":    {false, true, true, true, true},
	"Ice Lake Client": {false, true, true, true, true},
	"Ice Lake Server": {false, true, true, true, true},
	"Zen":             {true, true, true, true, true},
	"Zen 2":           {true, true, true, true, true},
	"Zen 3":           {false, false, false, false, false},
}

// table10Expected is the paper's Table 10 (IBRS enabled). Zen is absent
// (no IBRS support).
var table10Expected = map[string][numScenarios]bool{
	"Broadwell":       {false, false, false, false, false},
	"Skylake Client":  {false, false, false, false, false},
	"Cascade Lake":    {false, true, true, true, true},
	"Ice Lake Client": {false, true, false, true, false},
	"Ice Lake Server": {false, true, true, true, true},
	"Zen 2":           {false, false, false, false, false},
	"Zen 3":           {false, false, false, false, false},
}

func TestProbeTable9(t *testing.T) {
	for _, m := range model.All() {
		res, err := RunProbe(m, false)
		if err != nil {
			t.Fatalf("%s: %v", m.Uarch, err)
		}
		want := table9Expected[m.Uarch]
		for s := Scenario(0); s < numScenarios; s++ {
			if res.Speculated[s] != want[s] {
				t.Errorf("%s %v: speculated = %v, paper says %v", m.Uarch, s, res.Speculated[s], want[s])
			}
		}
	}
}

func TestProbeTable10(t *testing.T) {
	for _, m := range model.All() {
		res, err := RunProbe(m, true)
		if err != nil {
			t.Fatalf("%s: %v", m.Uarch, err)
		}
		if m.Uarch == "Zen" {
			if res.Supported {
				t.Error("Zen must report IBRS unsupported")
			}
			continue
		}
		want := table10Expected[m.Uarch]
		for s := Scenario(0); s < numScenarios; s++ {
			if res.Speculated[s] != want[s] {
				t.Errorf("%s %v: speculated = %v, paper says %v", m.Uarch, s, res.Speculated[s], want[s])
			}
		}
	}
}

func TestScenarioStrings(t *testing.T) {
	seen := map[string]bool{}
	for s := Scenario(0); s < numScenarios; s++ {
		str := s.String()
		if str == "" || seen[str] {
			t.Errorf("scenario %d: bad name %q", s, str)
		}
		seen[str] = true
	}
}

// --- SpectreRSB -----------------------------------------------------------

func TestSpectreRSBAndStuffing(t *testing.T) {
	for _, m := range []*model.CPU{model.Broadwell(), model.Zen3()} {
		hit, err := SpectreRSB(m, false)
		if err != nil {
			t.Fatalf("%s: %v", m.Uarch, err)
		}
		if !hit {
			t.Errorf("%s: SpectreRSB did not steer speculation", m.Uarch)
		}
		hit, err = SpectreRSB(m, true)
		if err != nil {
			t.Fatalf("%s: %v", m.Uarch, err)
		}
		if hit {
			t.Errorf("%s: RSB stuffing failed to stop SpectreRSB", m.Uarch)
		}
	}
}
