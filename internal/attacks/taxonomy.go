// Taxonomy: the attacks × mitigations × uarch blocking predicate the
// config optimizer searches against. Each entry pairs a vulnerability
// test (is this part affected at all, per the model's Table-1 flags)
// with a blocking test (does this effective mitigation set stop it).
// The split follows Canella et al.'s systematisation: Spectre-family
// attacks keyed by the predictor they poison (PHT, BTB same- and
// cross-process, RSB), Meltdown-family by the buffer they sample.
//
// The predicates consult only *model.CPU vulnerability flags and the
// lowered kernel.Mitigations — never raw boot parameters — so two
// boot-param combos in the same canonical class are secure or insecure
// together, which is what lets the optimizer decide security per
// equivalence class instead of per combo.
package attacks

import (
	"fmt"
	"sort"
	"strings"

	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
)

// Attack is one taxonomy entry.
type Attack struct {
	// ID is the stable handle used in -require specs and reports.
	ID string
	// Name is the human-readable attack name.
	Name string
	// Default reports whether the attack is part of the default threat
	// model — the set Linux's own Defaults() auto-selection defends
	// (same-thread MDS, seccomp-scoped SSB). Non-default entries need
	// mitigations no kernel enables by default (nosmt, SSBD-always).
	Default bool
	// Vulnerable reports whether the part is affected at all.
	Vulnerable func(m *model.CPU) bool
	// Blocked reports whether the mitigation set stops the attack on
	// this part. Only meaningful when Vulnerable; the optimizer treats
	// invulnerable parts as blocked for free.
	Blocked func(m *model.CPU, mit kernel.Mitigations) bool
}

// Taxonomy lists every attack the optimizer can be asked to block, in
// report order.
var Taxonomy = []Attack{
	{
		ID: "meltdown", Name: "Meltdown (rogue data cache load)", Default: true,
		Vulnerable: func(m *model.CPU) bool { return m.Vulns.Meltdown },
		Blocked:    func(_ *model.CPU, mit kernel.Mitigations) bool { return mit.PTI },
	},
	{
		ID: "spectre-v1", Name: "Spectre V1 (bounds check bypass)", Default: true,
		Vulnerable: func(m *model.CPU) bool { return m.Vulns.SpectreV1.SpectreV1 },
		Blocked:    func(_ *model.CPU, mit kernel.Mitigations) bool { return mit.SpectreV1 },
	},
	{
		ID: "spectre-v2-kernel", Name: "Spectre V2 (branch target injection, user→kernel)", Default: true,
		Vulnerable: func(m *model.CPU) bool { return m.Vulns.SpectreV2 },
		Blocked: func(_ *model.CPU, mit kernel.Mitigations) bool {
			return mit.SpectreV2 != kernel.V2Off
		},
	},
	{
		ID: "spectre-v2-user", Name: "Spectre V2 (branch target injection, cross-process)", Default: true,
		Vulnerable: func(m *model.CPU) bool { return m.Vulns.SpectreV2 },
		Blocked:    func(_ *model.CPU, mit kernel.Mitigations) bool { return mit.IBPB },
	},
	{
		ID: "spectre-rsb", Name: "Spectre-RSB (return stack underflow/poisoning)", Default: true,
		Vulnerable: func(m *model.CPU) bool { return m.Vulns.SpectreV2 },
		Blocked:    func(_ *model.CPU, mit kernel.Mitigations) bool { return mit.RSBStuff },
	},
	{
		ID: "l1tf", Name: "L1TF / Foreshadow (process side)", Default: true,
		Vulnerable: func(m *model.CPU) bool { return m.Vulns.L1TF },
		Blocked:    func(_ *model.CPU, mit kernel.Mitigations) bool { return mit.PTEInversion },
	},
	{
		ID: "l1tf-vmm", Name: "L1TF / Foreshadow-VMM (guest side)", Default: true,
		Vulnerable: func(m *model.CPU) bool { return m.Vulns.L1TF },
		Blocked:    func(_ *model.CPU, mit kernel.Mitigations) bool { return mit.L1TFFlushOnVMEntry },
	},
	{
		ID: "mds", Name: "MDS / RIDL (same-thread buffer sampling)", Default: true,
		Vulnerable: func(m *model.CPU) bool { return m.Vulns.MDS },
		Blocked:    func(_ *model.CPU, mit kernel.Mitigations) bool { return mit.MDSClear },
	},
	{
		ID: "lazyfp", Name: "LazyFP (stale FPU register leak)", Default: true,
		Vulnerable: func(m *model.CPU) bool { return m.Vulns.LazyFPLeak },
		Blocked:    func(_ *model.CPU, mit kernel.Mitigations) bool { return mit.EagerFPU },
	},
	{
		ID: "ssb", Name: "Speculative store bypass (seccomp-sandboxed victims)", Default: true,
		Vulnerable: func(m *model.CPU) bool { return m.Vulns.SSB },
		Blocked: func(_ *model.CPU, mit kernel.Mitigations) bool {
			return mit.SSBDSeccomp || mit.SSBDAlways
		},
	},
	// Beyond the default threat model: these need mitigations no kernel
	// auto-selects (Table 1's "!" rows), so they are opt-in requirement
	// tokens rather than part of "default".
	{
		ID: "mds-smt", Name: "MDS / RIDL (cross-hyperthread sampling)", Default: false,
		Vulnerable: func(m *model.CPU) bool { return m.Vulns.MDS && m.SMT },
		Blocked: func(_ *model.CPU, mit kernel.Mitigations) bool {
			return mit.MDSClear && mit.NoSMT
		},
	},
	{
		ID: "ssb-any", Name: "Speculative store bypass (unsandboxed victims)", Default: false,
		Vulnerable: func(m *model.CPU) bool { return m.Vulns.SSB },
		Blocked:    func(_ *model.CPU, mit kernel.Mitigations) bool { return mit.SSBDAlways },
	},
}

// ByID returns the taxonomy entry with the given ID.
func ByID(id string) (Attack, bool) {
	for _, a := range Taxonomy {
		if a.ID == id {
			return a, true
		}
	}
	return Attack{}, false
}

// DefaultModel returns the attacks of the default threat model — the
// set kernel.Defaults is meant to block wherever the part is
// vulnerable.
func DefaultModel() []Attack {
	var out []Attack
	for _, a := range Taxonomy {
		if a.Default {
			out = append(out, a)
		}
	}
	return out
}

// IDs returns the attack IDs of a set, sorted, for stable rendering.
func IDs(set []Attack) []string {
	out := make([]string, len(set))
	for i, a := range set {
		out[i] = a.ID
	}
	sort.Strings(out)
	return out
}

// ParseRequirement resolves a comma-separated requirement spec into a
// deduplicated attack set. "default" expands to the default threat
// model, "all" to the whole taxonomy; anything else must be a taxonomy
// ID.
func ParseRequirement(spec string) ([]Attack, error) {
	seen := make(map[string]bool)
	var out []Attack
	add := func(a Attack) {
		if !seen[a.ID] {
			seen[a.ID] = true
			out = append(out, a)
		}
	}
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		switch tok {
		case "":
		case "default":
			for _, a := range DefaultModel() {
				add(a)
			}
		case "all":
			for _, a := range Taxonomy {
				add(a)
			}
		default:
			a, ok := ByID(tok)
			if !ok {
				return nil, fmt.Errorf("unknown attack %q (known: %s, plus \"default\" and \"all\")",
					tok, strings.Join(IDs(Taxonomy), ", "))
			}
			add(a)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty requirement %q", spec)
	}
	return out, nil
}

// Required filters a requirement down to the attacks the part is
// actually vulnerable to — the ones the blocking predicate must check.
func Required(m *model.CPU, req []Attack) []Attack {
	var out []Attack
	for _, a := range req {
		if a.Vulnerable(m) {
			out = append(out, a)
		}
	}
	return out
}

// Secure reports whether the mitigation set blocks every required
// attack the part is vulnerable to, and returns the IDs of the attacks
// left open when not.
func Secure(m *model.CPU, mit kernel.Mitigations, req []Attack) (bool, []string) {
	var open []string
	for _, a := range req {
		if a.Vulnerable(m) && !a.Blocked(m, mit) {
			open = append(open, a.ID)
		}
	}
	return len(open) == 0, open
}
