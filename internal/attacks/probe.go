package attacks

import (
	"errors"
	"fmt"

	"spectrebench/internal/cpu"
	"spectrebench/internal/isa"
	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
)

// ErrInconclusive is wrapped by probe errors when repeated attack-probe
// readings stay in the bimodal threshold region: neither consistently
// positive nor consistently negative. Attack outcomes are probabilistic
// at the probe layer (Canella et al.), so a harness must absorb this
// with a retry — the experiment supervisor re-runs the experiment with
// a reseeded fault injector before reporting "inconclusive" — rather
// than let a borderline reading flip a pass/fail bit.
var ErrInconclusive = errors.New("attacks: probe reading inconclusive")

// Scenario is one column of Tables 9 and 10: where the BTB is trained,
// where the victim indirect branch runs, and whether a system call
// intervenes between training and the victim.
type Scenario int

// Probe scenarios.
const (
	UserToKernelSyscall Scenario = iota // train user, victim kernel (inherently via syscall)
	UserToUserSyscall
	KernelToKernelSyscall
	UserToUserNoSyscall
	KernelToKernelNoSyscall
	numScenarios
)

func (s Scenario) String() string {
	switch s {
	case UserToKernelSyscall:
		return "user→kernel (syscall)"
	case UserToUserSyscall:
		return "user→user (syscall)"
	case KernelToKernelSyscall:
		return "kernel→kernel (syscall)"
	case UserToUserNoSyscall:
		return "user→user (no syscall)"
	case KernelToKernelNoSyscall:
		return "kernel→kernel (no syscall)"
	}
	return fmt.Sprintf("scenario(%d)", int(s))
}

// ProbeResult is one row of Table 9 or 10.
type ProbeResult struct {
	CPU string
	// IBRS reports the SPEC_CTRL.IBRS state during the experiment.
	IBRS bool
	// Supported is false when the part does not implement IBRS at all
	// (Zen in Table 10).
	Supported bool
	// Speculated[s] reports whether training in scenario s steered the
	// victim branch into the divide gadget (observed via the
	// divider-active performance counter, Figure 6).
	Speculated [numScenarios]bool
}

// RunProbe reproduces the §6 methodology on one CPU model: poison the
// branch target buffer from each privilege mode and detect — through
// the divider-active performance counter — whether a victim indirect
// branch in each mode speculatively executes the trained target.
func RunProbe(m *model.CPU, ibrs bool) (*ProbeResult, error) {
	res := &ProbeResult{CPU: m.Uarch, IBRS: ibrs, Supported: true}
	if ibrs && !m.Spec.IBRS {
		res.Supported = false
		return res, nil
	}
	for s := Scenario(0); s < numScenarios; s++ {
		hit, err := runScenario(m, ibrs, s)
		if err != nil {
			return nil, fmt.Errorf("probe %s %v: %w", m.Uarch, s, err)
		}
		res.Speculated[s] = hit
	}
	return res, nil
}

// resultSlot is where the probe program accumulates divider deltas.
const resultSlot = kernel.UserDataBase + 0x3e00

// runScenario runs one (train-mode, victim-mode, syscall) combination
// over several attempts. Without fault injection the simulator is
// deterministic, so three attempts with any positive reading decide the
// outcome (the original methodology). Under fault injection the probe
// becomes retry-aware: it escalates to more attempts and requires a
// clear majority; readings stuck in the bimodal threshold region return
// an error wrapping ErrInconclusive instead of guessing.
func runScenario(m *model.CPU, ibrs bool, s Scenario) (bool, error) {
	c := cpu.New(m)
	defer c.Recycle()
	// Mitigations off: the probe studies the hardware, not the kernel.
	mit := kernel.BootParams{MitigationsOff: true}.Apply(m, kernel.Defaults(m))
	k := kernel.New(c, mit)
	var sc uint64
	if ibrs {
		sc = cpu.SpecCtrlIBRS
	}
	k.SpecCtrlOverride = &sc

	prog := buildProbeProgram(s)
	attempts := 3
	if c.FI != nil {
		attempts = 5
	}
	hits := 0
	for attempt := 0; attempt < attempts; attempt++ {
		p := k.NewProcess(fmt.Sprintf("probe-%d-%d", s, attempt), prog)
		if err := k.RunProcessToCompletion(10_000_000); err != nil {
			return false, fmt.Errorf("probe attempt %d: %w", attempt, err)
		}
		if c.Phys.Read64((uint64(p.PID)<<32)+resultSlot) > 0 {
			hits++
		}
	}
	if c.FI == nil {
		return hits > 0, nil
	}
	hit, ok := classifyHits(hits, attempts)
	if !ok {
		return false, fmt.Errorf("%w: scenario %v: %d/%d positive readings",
			ErrInconclusive, s, hits, attempts)
	}
	return hit, nil
}

// classifyHits maps a positive-reading count onto (outcome, conclusive).
// All-negative and majority-positive readings are conclusive; a thin
// positive tail (under injected probe jitter a genuine signal repeats,
// noise does not) is the bimodal threshold region.
func classifyHits(hits, attempts int) (hit, conclusive bool) {
	switch {
	case hits == 0:
		return false, true
	case hits*2 > attempts:
		return true, true
	default:
		return false, false
	}
}

// buildProbeProgram assembles the Figure 6 experiment for one scenario.
//
// The probed indirect branch lives at a fixed address reachable from
// both modes (the kernel enters it through SYS_KMOD; there is no SMEP
// in the model, as on the paper's pre-2020 kernels). Register roles:
//
//	R11 = branch target (victim_target while training, nop_target for
//	      the victim run); targets return with RET
//	R13 = driver continuation after the site completes
//	R6  = saved kernel-exit address inside kernel drivers (the KMOD
//	      ABI passes it in R10)
func buildProbeProgram(s Scenario) *isa.Program {
	a := isa.NewAsm()
	a.Jmp("driver")

	// ---- the probed branch site (fixed VA across scenarios) ----------
	// A 128-iteration history-filling loop precedes the indirect branch,
	// like the original probe; it erases history differences on parts
	// with shallow BTB indexing but not on Zen 3.
	a.Label("branch_site")
	a.MovI(isa.R12, 128)
	a.Label("bhb_fill")
	a.SubI(isa.R12, 1)
	a.CmpI(isa.R12, 0)
	a.Jne("bhb_fill")
	a.CallInd(isa.R11)
	a.Label("site_cont")
	a.JmpInd(isa.R13)

	a.Label("victim_target")
	a.MovI(isa.R1, 12345)
	a.MovI(isa.R2, 6789)
	a.Div(isa.R1, isa.R2)
	a.Ret()

	a.Label("nop_target")
	a.Ret()

	// ---- a history scrambler run between training and measurement ----
	// (the "potentially overwrite the entry" section of Figure 6: real
	// code between the phases always differs from the training loop).
	a.Label("spacer")
	a.MovI(isa.R12, 100)
	a.Label("spacer_loop")
	a.SubI(isa.R12, 1)
	a.CmpI(isa.R12, 0)
	a.Jne("spacer_loop")
	a.JmpInd(isa.R13)

	// ---- kernel-mode helpers (entered via SYS_KMOD) -------------------
	// ktrain: run the site 48 times with the victim target.
	a.Label("ktrain")
	a.Mov(isa.R6, isa.R10) // save the kernel-exit address
	a.MovI(isa.R9, 48)
	a.Label("ktrain_loop")
	a.MovLabel(isa.R11, "victim_target")
	a.MovLabel(isa.R13, "ktrain_next")
	a.Jmp("branch_site")
	a.Label("ktrain_next")
	a.SubI(isa.R9, 1)
	a.CmpI(isa.R9, 0)
	a.Jne("ktrain_loop")
	a.JmpInd(isa.R6)

	// ktrainspacer_measure: train, spacer, measure — all within one
	// kernel visit (the kernel→kernel no-syscall column).
	a.Label("ktrain_measure")
	a.Mov(isa.R6, isa.R10)
	a.MovI(isa.R9, 48)
	a.Label("ktm_loop")
	a.MovLabel(isa.R11, "victim_target")
	a.MovLabel(isa.R13, "ktm_next")
	a.Jmp("branch_site")
	a.Label("ktm_next")
	a.SubI(isa.R9, 1)
	a.CmpI(isa.R9, 0)
	a.Jne("ktm_loop")
	a.MovLabel(isa.R13, "ktm_spaced")
	a.Jmp("spacer")
	a.Label("ktm_spaced")
	a.MovLabel(isa.R11, "nop_target")
	a.MovLabel(isa.R13, "ktm_done")
	a.Rdpmc(isa.R8, 2) // ArithDividerActive
	a.Jmp("branch_site")
	a.Label("ktm_done")
	a.Rdpmc(isa.R9, 2)
	a.Sub(isa.R9, isa.R8)
	a.MovI(isa.R12, resultSlot)
	a.Store(isa.R12, 0, isa.R9)
	a.JmpInd(isa.R6)

	// kmeasure: measure the victim branch in kernel mode.
	a.Label("kmeasure")
	a.Mov(isa.R6, isa.R10)
	a.MovLabel(isa.R11, "nop_target")
	a.MovLabel(isa.R13, "kmeasure_done")
	a.Rdpmc(isa.R8, 2)
	a.Jmp("branch_site")
	a.Label("kmeasure_done")
	a.Rdpmc(isa.R9, 2)
	a.Sub(isa.R9, isa.R8)
	a.MovI(isa.R12, resultSlot)
	a.Store(isa.R12, 0, isa.R9)
	a.JmpInd(isa.R6)

	// ---- user-mode building blocks ------------------------------------
	// utrain: run the site 48 times in user mode.
	a.Label("utrain")
	a.MovI(isa.R9, 48)
	a.Label("utrain_loop")
	a.MovLabel(isa.R11, "victim_target")
	a.MovLabel(isa.R13, "utrain_next")
	a.Jmp("branch_site")
	a.Label("utrain_next")
	a.SubI(isa.R9, 1)
	a.CmpI(isa.R9, 0)
	a.Jne("utrain_loop")
	a.Ret()

	// umeasure: measure in user mode, accumulating into resultSlot.
	a.Label("umeasure")
	a.MovLabel(isa.R11, "nop_target")
	a.MovLabel(isa.R13, "umeasure_done")
	a.Rdpmc(isa.R8, 2)
	a.Jmp("branch_site")
	a.Label("umeasure_done")
	a.Rdpmc(isa.R9, 2)
	a.Sub(isa.R9, isa.R8)
	a.MovI(isa.R12, resultSlot)
	a.Store(isa.R12, 0, isa.R9)
	a.Ret()

	// uspacer: scramble history in user mode.
	a.Label("uspacer")
	a.MovLabel(isa.R13, "uspacer_done")
	a.Jmp("spacer")
	a.Label("uspacer_done")
	a.Ret()

	// ---- the per-scenario driver ---------------------------------------
	a.Label("driver")
	switch s {
	case UserToKernelSyscall:
		a.Call("utrain")
		a.Call("uspacer")
		emitKmod(a, "kmeasure")
	case UserToUserSyscall:
		a.Call("utrain")
		a.Call("uspacer")
		emitProbeSyscall(a, kernel.SysGetPID)
		a.Call("umeasure")
	case KernelToKernelSyscall:
		emitKmod(a, "ktrain")
		a.Call("uspacer")
		emitProbeSyscall(a, kernel.SysGetPID) // the intervening syscall
		emitKmod(a, "kmeasure")
	case UserToUserNoSyscall:
		a.Call("utrain")
		a.Call("uspacer")
		a.Call("umeasure")
	case KernelToKernelNoSyscall:
		emitKmod(a, "ktrain_measure")
	}
	a.MovI(isa.R1, 0)
	emitProbeSyscall(a, kernel.SysExit)

	return a.MustAssemble(kernel.UserCodeBase)
}

func emitProbeSyscall(a *isa.Asm, nr int64) {
	a.MovI(isa.R7, nr)
	a.Syscall()
}

// emitKmod invokes SYS_KMOD targeting the named in-program label, which
// then runs in kernel mode.
func emitKmod(a *isa.Asm, label string) {
	a.MovLabel(isa.R2, label)
	emitProbeSyscall(a, kernel.SysKMod)
}

// ProbeMatrix runs the probe across all CPUs for one IBRS setting —
// the full Table 9 (ibrs=false) or Table 10 (ibrs=true).
func ProbeMatrix(ibrs bool) ([]*ProbeResult, error) {
	out := make([]*ProbeResult, 0, len(model.All()))
	for _, m := range model.All() {
		r, err := RunProbe(m, ibrs)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
