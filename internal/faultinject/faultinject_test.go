package faultinject

import "testing"

func TestDeterministicStreams(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 10000; i++ {
		p := Point(i % int(numPoints))
		if a.Fire(p) != b.Fire(p) {
			t.Fatalf("streams diverged at consultation %d", i)
		}
	}
	c := New(43)
	diff := 0
	for i := 0; i < 10000; i++ {
		if a.Fire(ProbeJitter) != c.Fire(ProbeJitter) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical firing sequences")
	}
}

func TestRates(t *testing.T) {
	Activate(Config{Seed: 7, Rates: map[Point]float64{
		CacheEvict:   0,
		SyscallEINTR: 1,
	}})
	defer Deactivate()
	in := FromActive("test")
	for i := 0; i < 1000; i++ {
		if in.Fire(CacheEvict) {
			t.Fatal("rate-0 point fired")
		}
		if !in.Fire(SyscallEINTR) {
			t.Fatal("rate-1 point did not fire")
		}
	}
	if in.Checks(CacheEvict) != 1000 || in.Fired(SyscallEINTR) != 1000 {
		t.Errorf("counter mismatch: checks=%d fired=%d",
			in.Checks(CacheEvict), in.Fired(SyscallEINTR))
	}
	if p, ok := LastFired(); !ok || p != SyscallEINTR {
		t.Errorf("LastFired = %v, %v; want syscall-eintr, true", p, ok)
	}
}

func TestActivationReproducible(t *testing.T) {
	run := func() []bool {
		Activate(Config{Seed: 99})
		defer Deactivate()
		var out []bool
		for c := 0; c < 3; c++ { // three "cores", like one experiment
			in := FromActive("Broadwell")
			for i := 0; i < 5000; i++ {
				out = append(out, in.Fire(CacheEvict))
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("re-activation diverged at draw %d", i)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var in *Injector
	if in.Fire(CacheEvict) {
		t.Error("nil injector fired")
	}
	if in.Amount(ProbeJitter, 8) != 0 {
		t.Error("nil injector produced a nonzero amount")
	}
	if in.Fired(CacheEvict) != 0 || in.Checks(CacheEvict) != 0 {
		t.Error("nil injector has counters")
	}
	in.Reseed(1) // must not panic
	Deactivate()
	if FromActive("x") != nil {
		t.Error("FromActive returned an injector while inactive")
	}
	if _, ok := LastFired(); ok {
		t.Error("LastFired reported a point while inactive")
	}
}

func TestAmountBounds(t *testing.T) {
	in := New(5)
	for i := 0; i < 1000; i++ {
		v := in.Amount(ProbeJitter, 8)
		if v < 1 || v > 8 {
			t.Fatalf("Amount out of [1,8]: %d", v)
		}
	}
}

func TestPointStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Points() {
		s := p.String()
		if s == "" || seen[s] {
			t.Errorf("point %d has empty or duplicate name %q", p, s)
		}
		seen[s] = true
	}
}
