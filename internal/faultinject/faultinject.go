// Package faultinject provides deterministic, seedable fault injection
// for the simulated machine. The CPU core, kernel and hypervisor consult
// an Injector at named fault points — spurious cache-line evictions, TLB
// shootdown glitches, delayed fill-buffer drains, interrupted syscalls
// and probe-timing jitter — so every experiment can be re-run under
// adversarial microarchitectural weather and must either converge to the
// same result or return a structured error.
//
// Determinism is the contract: an Injector is a pure xorshift PRNG
// seeded from (scope fault seed, per-core salt, per-scope creation
// sequence). No wall-clock or math/rand state is ever consulted, so two
// runs with the same seed fire exactly the same faults at exactly the
// same points. When a simscope.Scope is current (the parallel engine and
// the supervisor always install one), derivation is keyed entirely by
// the scope — the simulation-cell identity — so the streams a cell sees
// do not depend on which other cells ran first or on which worker ran
// them. Without a scope, the legacy process-global derivation counter
// applies (standalone tests and tools).
//
// The package has two layers:
//
//   - A process-global activation (Activate/Deactivate) installed by the
//     experiment supervisor. While active, cpu.New attaches a derived
//     Injector to every core it constructs; while inactive, cores carry
//     a nil Injector and every fault point is dead (all Injector methods
//     are nil-receiver safe, so call sites stay unconditional).
//   - The Injector itself, which can also be constructed directly with
//     New for tests and standalone tools.
package faultinject

import (
	"fmt"
	"sync/atomic"

	"spectrebench/internal/simscope"
)

// Point names one fault-injection site in the simulator.
type Point uint8

// Fault points consulted by the substrate.
const (
	// CacheEvict spuriously evicts the just-accessed line from the
	// cache hierarchy after an architectural load (cache pressure from
	// an imaginary SMT sibling or DMA agent).
	CacheEvict Point = iota
	// TLBGlitch drops a hitting TLB entry, forcing a re-walk — a
	// shootdown IPI arriving at the worst moment.
	TLBGlitch
	// FBDrainDelay stalls a fill-buffer drain (verw, VM entry) for
	// extra cycles: the microcode clear hitting a busy buffer.
	FBDrainDelay
	// SyscallEINTR interrupts a syscall before its handler runs; the
	// kernel transparently restarts it (SA_RESTART semantics), charging
	// the aborted entry/exit round trip.
	SyscallEINTR
	// ProbeJitter perturbs timestamp reads (rdtsc) by a few cycles —
	// the measurement noise a real machine's probes must absorb.
	ProbeJitter
	// StoreWrite fails a cell-store segment append partway through — the
	// short write a full or failing disk produces. The store must repair
	// its log tail, count the error, and degrade to a smaller cache; it
	// must never fail the run or perturb simulated state.
	StoreWrite

	numPoints
)

func (p Point) String() string {
	switch p {
	case CacheEvict:
		return "cache-evict"
	case TLBGlitch:
		return "tlb-glitch"
	case FBDrainDelay:
		return "fb-drain-delay"
	case SyscallEINTR:
		return "syscall-eintr"
	case ProbeJitter:
		return "probe-jitter"
	case StoreWrite:
		return "store-write"
	}
	return fmt.Sprintf("point(%d)", int(p))
}

// Points returns every defined fault point (for documentation and CLI
// listings).
func Points() []Point {
	out := make([]Point, 0, numPoints)
	for p := Point(0); p < numPoints; p++ {
		out = append(out, p)
	}
	return out
}

// defaultRates are the per-consultation firing probabilities. They are
// tuned low enough that experiments still complete in CI time but high
// enough that a full `spectrebench run all` exercises every point.
var defaultRates = [numPoints]float64{
	CacheEvict:   1.0 / 2048,
	TLBGlitch:    1.0 / 4096,
	FBDrainDelay: 1.0 / 32,
	SyscallEINTR: 1.0 / 256,
	ProbeJitter:  1.0 / 16,
	StoreWrite:   1.0 / 64,
}

// Config describes one fault-injection activation.
type Config struct {
	// Seed is the root of every derived Injector's PRNG stream.
	Seed uint64
	// Rates overrides the default firing probability per point
	// (probability per consultation, in [0, 1]). Nil entries keep the
	// defaults.
	Rates map[Point]float64
}

// activation is the immutable global state plus its derivation counter.
type activation struct {
	seed       uint64
	thresholds [numPoints]uint64
	seq        atomic.Uint64 // per-activation injector creation counter
	lastFired  atomic.Uint32 // 1+Point of the most recent fire, 0 = none
}

var active atomic.Pointer[activation]

// threshold converts a probability to a compare threshold for a uniform
// 64-bit draw.
func threshold(rate float64) uint64 {
	if rate <= 0 {
		return 0
	}
	if rate >= 1 {
		return ^uint64(0)
	}
	return uint64(rate * float64(^uint64(0)))
}

// NewActivation builds an activation snapshot from cfg without
// installing anything globally, returning an opaque handle suitable for
// simscope.Scope.Fault. This is the daemon-safe entry point: a server
// supervising several concurrently running batches gives each batch its
// own activation through its scopes, so two sweeps with different seeds
// or rates cannot interfere through process state. Scoped injector
// derivation reads only the activation's thresholds (the stream seed
// comes from the scope), so an activation built here is
// indistinguishable from one installed by Activate with the same cfg.
func NewActivation(cfg Config) any {
	a := &activation{seed: cfg.Seed}
	for p := Point(0); p < numPoints; p++ {
		rate := defaultRates[p]
		if r, ok := cfg.Rates[p]; ok {
			rate = r
		}
		a.thresholds[p] = threshold(rate)
	}
	return a
}

// Activate installs cfg as the process-global fault-injection state.
// Cores constructed afterwards derive their Injector from it. The
// derivation counter restarts at zero, so activating the same config
// again reproduces the previous run exactly.
func Activate(cfg Config) {
	active.Store(NewActivation(cfg).(*activation))
}

// Deactivate removes the global activation; subsequently constructed
// cores carry a nil Injector.
func Deactivate() { active.Store(nil) }

// Snapshot returns the current activation as an opaque handle suitable
// for simscope.Scope.Fault, or nil when fault injection is inactive.
// Capturing the snapshot when a cell is scheduled (rather than reading
// the global when it runs) keeps a queued cell's weather fixed even if
// the activation is replaced or removed before a worker picks it up.
func Snapshot() any {
	a := active.Load()
	if a == nil {
		return nil
	}
	return a
}

// Enabled reports whether a global activation is installed.
func Enabled() bool { return active.Load() != nil }

// ActiveSeed returns the installed activation's root seed, if any.
func ActiveSeed() (uint64, bool) {
	a := active.Load()
	if a == nil {
		return 0, false
	}
	return a.seed, true
}

// LastFired returns the most recently fired point across the current
// activation and whether any point has fired at all. The supervisor
// stamps it into ExperimentErrors so a failure names the weather that
// likely provoked it.
func LastFired() (Point, bool) {
	a := active.Load()
	if a == nil {
		return 0, false
	}
	v := a.lastFired.Load()
	if v == 0 {
		return 0, false
	}
	return Point(v - 1), true
}

// Injector is a deterministic fault source for one core. It is not safe
// for concurrent use; each core owns its own instance.
type Injector struct {
	state      uint64
	thresholds [numPoints]uint64
	checks     [numPoints]uint64
	fired      [numPoints]uint64
	act        *activation     // nil for standalone and scoped injectors
	scope      *simscope.Scope // owning scope for fire attribution, or nil
}

// New returns a standalone Injector with the default rates. Intended for
// tests; simulator cores obtain theirs via FromActive.
func New(seed uint64) *Injector {
	in := &Injector{state: mix(seed, 0x9e3779b97f4a7c15)}
	for p := Point(0); p < numPoints; p++ {
		in.thresholds[p] = threshold(defaultRates[p])
	}
	return in
}

// FromActive derives an Injector for a newly constructed core, or
// returns nil when fault injection is off. salt (typically the CPU model
// name) and a creation sequence decorrelate the streams of multiple
// cores within one experiment while keeping the derivation reproducible.
//
// When the calling goroutine carries a simscope.Scope, the derivation is
// fully scope-local: the seed is the scope's FaultSeed, the sequence is
// the scope's own counter, and the activation is the snapshot captured
// when the scope was scheduled (a nil snapshot means faults are off for
// this scope regardless of the global activation). That makes a cell's
// injector streams a pure function of the cell identity — the property
// the parallel engine needs for order-independent replay. Without a
// scope, the legacy global activation and its process-wide counter
// apply.
func FromActive(salt string) *Injector {
	return FromActiveScope(simscope.Current(), salt)
}

// FromActiveScope is FromActive with the caller's scope already
// resolved. Core construction resolves its scope once and passes it to
// every scope-dependent derivation, instead of paying a goroutine-ID
// parse per consult; the derivation itself is identical to FromActive,
// so pooled-core reinitialisation draws the same injector stream a
// fresh construction would.
func FromActiveScope(sc *simscope.Scope, salt string) *Injector {
	if sc != nil {
		a, _ := sc.Fault.(*activation)
		if a == nil {
			return nil
		}
		return &Injector{
			state:      mix(mix(sc.FaultSeed, hashString(salt)), sc.NextSeq()),
			thresholds: a.thresholds,
			scope:      sc,
		}
	}
	a := active.Load()
	if a == nil {
		return nil
	}
	n := a.seq.Add(1)
	in := &Injector{
		state:      mix(mix(a.seed, hashString(salt)), n),
		thresholds: a.thresholds,
		act:        a,
	}
	return in
}

// Reseed restarts the injector's PRNG stream (the supervisor's
// per-retry "different weather, same storm intensity" knob).
func (in *Injector) Reseed(seed uint64) {
	if in == nil {
		return
	}
	in.state = mix(seed, 0x9e3779b97f4a7c15)
}

// Fire consults the injector at point p: it returns true when the fault
// fires this time. Nil-receiver safe (never fires).
func (in *Injector) Fire(p Point) bool {
	if in == nil {
		return false
	}
	in.checks[p]++
	if in.rand() >= in.thresholds[p] {
		return false
	}
	in.fired[p]++
	if in.scope != nil {
		in.scope.NoteFired(uint8(p))
	} else if in.act != nil {
		in.act.lastFired.Store(uint32(p) + 1)
	}
	return true
}

// Amount draws a deterministic magnitude in [1, max] for a fault that
// already fired (extra stall cycles, jitter width). Nil-receiver safe
// (returns 0).
func (in *Injector) Amount(p Point, max uint64) uint64 {
	if in == nil || max == 0 {
		return 0
	}
	return in.rand()%max + 1
}

// Fired returns how many times p has fired on this injector.
func (in *Injector) Fired(p Point) uint64 {
	if in == nil {
		return 0
	}
	return in.fired[p]
}

// Checks returns how many times p has been consulted on this injector.
func (in *Injector) Checks(p Point) uint64 {
	if in == nil {
		return 0
	}
	return in.checks[p]
}

// rand advances the xorshift64* PRNG.
func (in *Injector) rand() uint64 {
	x := in.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	in.state = x
	return x * 0x2545f4914f6cdd1d
}

// mix combines two words into a well-distributed, never-zero PRNG seed
// (splitmix64 finalizer).
func mix(a, b uint64) uint64 {
	z := a + b + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	return z
}

// hashString is FNV-1a, inlined to keep the package dependency-free.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
