package branch

import (
	"testing"
	"testing/quick"
)

func fillBHB(b *BHB, n int, seed uint64) {
	for i := 0; i < n; i++ {
		b.Record(seed+uint64(i)*4, seed+uint64(i)*4+16)
	}
}

func TestBTBTrainPredict(t *testing.T) {
	btb := NewBTB(BTBConfig{Sets: 64, Ways: 4, HistoryDepth: 8})
	bhb := &BHB{}
	fillBHB(bhb, 20, 0x1000)
	btb.Update(0x4000, bhb, ModeUser, 0x8000)
	target, ok := btb.Predict(0x4000, bhb, ModeUser)
	if !ok || target != 0x8000 {
		t.Fatalf("predict = %#x/%v, want 0x8000", target, ok)
	}
	// Unknown pc: no prediction.
	if _, ok := btb.Predict(0x5000, bhb, ModeUser); ok {
		t.Error("predicted untrained branch")
	}
}

func TestBTBModeTagging(t *testing.T) {
	// eIBRS-style part: entries trained in user mode must not steer
	// kernel-mode branches (Table 9: user→kernel blocked on Cascade
	// Lake / Ice Lake even with IBRS off).
	btb := NewBTB(BTBConfig{Sets: 64, Ways: 4, TagMode: true, HistoryDepth: 8})
	bhb := &BHB{}
	fillBHB(bhb, 20, 0x1000)
	btb.Update(0x4000, bhb, ModeUser, 0xbad0)
	if _, ok := btb.Predict(0x4000, bhb, ModeKernel); ok {
		t.Error("user-trained entry predicted in kernel mode with TagMode")
	}
	if tgt, ok := btb.Predict(0x4000, bhb, ModeUser); !ok || tgt != 0xbad0 {
		t.Error("same-mode prediction should work")
	}

	// Pre-Spectre part: no tagging, cross-mode poisoning works.
	old := NewBTB(BTBConfig{Sets: 64, Ways: 4, TagMode: false, HistoryDepth: 8})
	old.Update(0x4000, bhb, ModeUser, 0xbad0)
	if tgt, ok := old.Predict(0x4000, bhb, ModeKernel); !ok || tgt != 0xbad0 {
		t.Error("untagged BTB should allow user→kernel poisoning")
	}
}

func TestBTBHistoryDepthFoilsCrossTraining(t *testing.T) {
	// The Zen 3 behaviour: with a history depth deeper than the
	// attacker's history-filling loop, the residual differing history
	// changes the index and the trained entry is never found.
	shallow := NewBTB(BTBConfig{Sets: 256, Ways: 4, HistoryDepth: 16})
	deep := NewBTB(BTBConfig{Sets: 256, Ways: 4, HistoryDepth: 300})

	train := &BHB{}
	fillBHB(train, 40, 0xaaaa) // "victim function" branches differ...
	fillBHB(train, 128, 0x77)  // ...then the 128-branch fill loop
	measure := &BHB{}
	fillBHB(measure, 40, 0xbbbb)
	fillBHB(measure, 128, 0x77)

	shallow.Update(0x4000, train, ModeUser, 0xdead)
	if _, ok := shallow.Predict(0x4000, measure, ModeUser); !ok {
		t.Error("shallow history: fill loop should erase differences")
	}
	deep.Update(0x4000, train, ModeUser, 0xdead)
	if _, ok := deep.Predict(0x4000, measure, ModeUser); ok {
		t.Error("deep history: training should not transfer")
	}
	// Identical full history still predicts even with deep depth.
	deep.Update(0x4000, measure, ModeUser, 0xbeef)
	if tgt, ok := deep.Predict(0x4000, measure, ModeUser); !ok || tgt != 0xbeef {
		t.Error("deep history with identical history should predict")
	}
}

func TestBTBFlushAll(t *testing.T) {
	btb := NewBTB(BTBConfig{Sets: 16, Ways: 2, HistoryDepth: 4})
	bhb := &BHB{}
	for i := uint64(0); i < 10; i++ {
		btb.Update(0x1000+i*4, bhb, ModeUser, 0x2000+i*4)
	}
	if btb.Valid() == 0 {
		t.Fatal("nothing installed")
	}
	btb.FlushAll()
	if btb.Valid() != 0 {
		t.Error("entries survived IBPB flush")
	}
	if _, ok := btb.Predict(0x1000, bhb, ModeUser); ok {
		t.Error("prediction after flush")
	}
	if btb.Flushes != 1 {
		t.Errorf("flush count = %d", btb.Flushes)
	}
}

func TestBTBUpdateReplacesSameTag(t *testing.T) {
	btb := NewBTB(BTBConfig{Sets: 16, Ways: 2, HistoryDepth: 4})
	bhb := &BHB{}
	btb.Update(0x4000, bhb, ModeUser, 0x1111)
	btb.Update(0x4000, bhb, ModeUser, 0x2222)
	tgt, ok := btb.Predict(0x4000, bhb, ModeUser)
	if !ok || tgt != 0x2222 {
		t.Fatalf("predict = %#x/%v, want 0x2222", tgt, ok)
	}
	if btb.Valid() != 1 {
		t.Errorf("valid = %d, want 1 (update must replace)", btb.Valid())
	}
}

func TestRSBPushPop(t *testing.T) {
	r := NewRSB(4)
	r.Push(0x100)
	r.Push(0x200)
	if got, ok := r.Pop(); !ok || got != 0x200 {
		t.Fatalf("pop = %#x/%v", got, ok)
	}
	if got, ok := r.Pop(); !ok || got != 0x100 {
		t.Fatalf("pop = %#x/%v", got, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Error("pop on empty RSB should report underflow")
	}
}

func TestRSBOverflowWraps(t *testing.T) {
	r := NewRSB(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if got, _ := r.Pop(); got != 3 {
		t.Errorf("pop = %d, want 3", got)
	}
	if got, _ := r.Pop(); got != 2 {
		t.Errorf("pop = %d, want 2", got)
	}
	// Entry 1 was overwritten; this slot was consumed by the pop of 3.
	if _, ok := r.Pop(); ok {
		t.Error("expected underflow after depth pops")
	}
}

func TestRSBFill(t *testing.T) {
	r := NewRSB(16)
	r.Push(0xbad)
	r.Fill(0x5afe)
	if r.Live() != 16 {
		t.Fatalf("live = %d, want 16", r.Live())
	}
	for i := 0; i < 16; i++ {
		got, ok := r.Pop()
		if !ok || got != 0x5afe {
			t.Fatalf("pop %d = %#x/%v, want benign", i, got, ok)
		}
	}
}

func TestRSBClear(t *testing.T) {
	r := NewRSB(8)
	r.Push(1)
	r.Push(2)
	r.Clear()
	if r.Live() != 0 {
		t.Error("entries survive Clear")
	}
	if _, ok := r.Pop(); ok {
		t.Error("pop after clear")
	}
}

func TestCondPredictorTrainsOnLoop(t *testing.T) {
	p := NewCondPredictor(10)
	pc := uint64(0x4000)
	// A loop branch taken 100 times trains to predict taken.
	for i := 0; i < 100; i++ {
		p.Update(pc, true)
	}
	if !p.Predict(pc) {
		t.Error("predictor did not learn taken loop")
	}
	// The loop exit (not taken) mispredicts: this is the Spectre V1 window.
	if predicted := p.Update(pc, false); predicted != true {
		t.Error("loop exit should have been (mis)predicted taken")
	}
	if p.Mispredicts == 0 {
		t.Error("mispredict not counted")
	}
}

func TestCondPredictorLearnsNotTaken(t *testing.T) {
	p := NewCondPredictor(10)
	pc := uint64(0x8000)
	for i := 0; i < 10; i++ {
		p.Update(pc, false)
	}
	if p.Predict(pc) {
		t.Error("did not learn not-taken")
	}
}

func TestBHBHashDeterministicAndDepthSensitive(t *testing.T) {
	a, b := &BHB{}, &BHB{}
	fillBHB(a, 50, 7)
	fillBHB(b, 50, 7)
	if a.Hash(16) != b.Hash(16) {
		t.Error("identical histories hash differently")
	}
	c := &BHB{}
	fillBHB(c, 50, 9)
	if a.Hash(16) == c.Hash(16) {
		t.Error("different histories collide (improbable)")
	}
	if a.Hash(4) == a.Hash(32) {
		t.Error("depth should matter (improbable collision)")
	}
}

func TestBHBClear(t *testing.T) {
	a := &BHB{}
	fillBHB(a, 10, 3)
	h := a.Hash(16)
	a.Clear()
	if a.Hash(16) == h {
		t.Error("clear did not change hash")
	}
	b := &BHB{}
	if a.Hash(16) != b.Hash(16) {
		t.Error("cleared BHB should equal fresh BHB")
	}
}

// Property: a BTB update under any (pc, mode) is immediately predictable
// under the same history/mode.
func TestBTBUpdatePredictProperty(t *testing.T) {
	btb := NewBTB(BTBConfig{Sets: 128, Ways: 4, HistoryDepth: 8})
	bhb := &BHB{}
	f := func(pc, target uint64, kernel bool) bool {
		mode := ModeUser
		if kernel {
			mode = ModeKernel
		}
		bhb.Record(pc, target) // evolve history arbitrarily
		btb.Update(pc, bhb, mode, target)
		got, ok := btb.Predict(pc, bhb, mode)
		return ok && got == target
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBTBFlushMode(t *testing.T) {
	btb := NewBTB(BTBConfig{Sets: 32, Ways: 2, TagMode: true, HistoryDepth: 4})
	bhb := &BHB{}
	fillBHB(bhb, 10, 1)
	btb.Update(0x1000, bhb, ModeUser, 0xa)
	btb.Update(0x2000, bhb, ModeKernel, 0xb)
	btb.FlushMode(ModeKernel)
	if _, ok := btb.Predict(0x2000, bhb, ModeKernel); ok {
		t.Error("kernel entry survived FlushMode(kernel)")
	}
	if _, ok := btb.Predict(0x1000, bhb, ModeUser); !ok {
		t.Error("user entry lost to FlushMode(kernel)")
	}
}

func TestBTBConfigDefaultsAndAccessor(t *testing.T) {
	btb := NewBTB(BTBConfig{})
	cfg := btb.Config()
	if cfg.Sets == 0 || cfg.Ways == 0 || cfg.HistoryDepth == 0 {
		t.Errorf("zero-config defaults not applied: %+v", cfg)
	}
}

func TestBTBEvictionLRU(t *testing.T) {
	// One set, two ways: force eviction and check LRU ordering.
	btb := NewBTB(BTBConfig{Sets: 1, Ways: 2, HistoryDepth: 1})
	bhb := &BHB{}
	btb.Update(0x10, bhb, ModeUser, 0x100)
	btb.Update(0x20, bhb, ModeUser, 0x200)
	btb.Predict(0x10, bhb, ModeUser) // 0x10 becomes MRU
	btb.Update(0x30, bhb, ModeUser, 0x300)
	if _, ok := btb.Predict(0x10, bhb, ModeUser); !ok {
		t.Error("MRU entry evicted")
	}
	if _, ok := btb.Predict(0x20, bhb, ModeUser); ok {
		t.Error("LRU entry survived")
	}
}

func TestModeString(t *testing.T) {
	if ModeUser.String() != "user" || ModeKernel.String() != "kernel" {
		t.Error("mode strings")
	}
}

func TestRSBDepthDefaultAndAccessor(t *testing.T) {
	r := NewRSB(0)
	if r.Depth() != 16 {
		t.Errorf("default depth = %d", r.Depth())
	}
}

func TestCondPredictorPredictMatchesUpdate(t *testing.T) {
	p := NewCondPredictor(0) // default size
	pc := uint64(0x4000)
	for i := 0; i < 5; i++ {
		want := p.Predict(pc)
		got := p.Update(pc, i%2 == 0)
		if want != got {
			t.Fatalf("iteration %d: Predict %v != Update's reported prediction %v", i, want, got)
		}
	}
	if p.Predictions != 5 {
		t.Errorf("predictions = %d", p.Predictions)
	}
}
