// Package branch models the branch-prediction structures that Spectre
// V2 and its mitigations revolve around: the Branch Target Buffer (BTB),
// the Branch History Buffer (BHB) that indexes it, the Return Stack
// Buffer (RSB), and a gshare-style conditional predictor for Spectre V1.
//
// Two properties of real hardware are modelled explicitly because the
// paper's Tables 9 and 10 depend on them:
//
//   - Mode tagging: eIBRS-capable parts (Cascade Lake, Ice Lake) tag BTB
//     entries with the privilege mode they were trained in and only
//     predict from same-mode entries, even when the IBRS MSR bit is off.
//
//   - BHB depth: the BTB index mixes in the last D branches. A small D is
//     erased by the classic 128-branch history-filling loop, so cross
//     training works; Zen 3's much deeper history scheme is why the
//     paper could not poison its BTB at all (§6.2) — with D larger than
//     the fill loop, the branches executed *inside* the previous
//     architectural target still differ between training and measurement,
//     so the trained entry is never found.
package branch

// Mode is the privilege mode a BTB entry was trained in.
type Mode uint8

// Privilege modes for BTB tagging.
const (
	ModeUser Mode = iota
	ModeKernel
)

func (m Mode) String() string {
	if m == ModeUser {
		return "user"
	}
	return "kernel"
}

// BHB is the branch history buffer: a ring of recent taken-branch
// fingerprints. Predict-time BTB indexing folds the most recent Depth
// entries into a hash.
type BHB struct {
	ring [512]uint64
	pos  int
}

// Record notes a taken branch from pc to target.
func (b *BHB) Record(pc, target uint64) {
	b.ring[b.pos] = pc*0x9e3779b97f4a7c15 ^ target
	b.pos = (b.pos + 1) % len(b.ring)
}

// Hash folds the most recent depth entries into a single value. depth is
// clamped to the ring size.
func (b *BHB) Hash(depth int) uint64 {
	if depth > len(b.ring) {
		depth = len(b.ring)
	}
	var h uint64 = 0xcbf29ce484222325
	idx := b.pos
	for i := 0; i < depth; i++ {
		idx--
		if idx < 0 {
			idx = len(b.ring) - 1
		}
		h = (h ^ b.ring[idx]) * 0x100000001b3
	}
	return h
}

// Clear zeroes the history (used on IBPB in some implementations).
func (b *BHB) Clear() {
	b.ring = [512]uint64{}
	b.pos = 0
}

// BTBConfig describes a model's branch target buffer behaviour.
type BTBConfig struct {
	Sets int
	Ways int
	// TagMode makes prediction require that the entry was trained in the
	// current privilege mode (the eIBRS partitioning behaviour).
	TagMode bool
	// HistoryDepth is how many recent branches the index hash folds in.
	HistoryDepth int
}

type btbEntry struct {
	valid  bool
	tag    uint64
	target uint64
	mode   Mode
	used   uint64
}

// BTB is the branch target buffer.
type BTB struct {
	cfg   BTBConfig
	lines []btbEntry
	clock uint64

	// Stats.
	Predictions, Mispredicts, Flushes uint64
}

// NewBTB returns a BTB with the given configuration.
func NewBTB(cfg BTBConfig) *BTB {
	if cfg.Sets <= 0 {
		cfg.Sets = 512
	}
	if cfg.Ways <= 0 {
		cfg.Ways = 4
	}
	if cfg.HistoryDepth <= 0 {
		cfg.HistoryDepth = 16
	}
	return &BTB{cfg: cfg, lines: make([]btbEntry, cfg.Sets*cfg.Ways)}
}

// Config returns the active configuration.
func (b *BTB) Config() BTBConfig { return b.cfg }

func (b *BTB) index(pc uint64, bhb *BHB) (setBase int, tag uint64) {
	h := pc
	if bhb != nil {
		h ^= bhb.Hash(b.cfg.HistoryDepth)
	}
	set := int(h % uint64(b.cfg.Sets))
	return set * b.cfg.Ways, h
}

// Predict returns the predicted target for the indirect branch at pc
// given the current history and privilege mode. ok is false when there
// is no usable entry (no speculation happens).
func (b *BTB) Predict(pc uint64, bhb *BHB, mode Mode) (target uint64, ok bool) {
	base, tag := b.index(pc, bhb)
	set := b.lines[base : base+b.cfg.Ways]
	for i := range set {
		e := &set[i]
		if !e.valid || e.tag != tag {
			continue
		}
		if b.cfg.TagMode && e.mode != mode {
			continue
		}
		b.clock++
		e.used = b.clock
		return e.target, true
	}
	return 0, false
}

// Update installs or refreshes the entry for pc after the branch
// resolves to target in the given mode.
func (b *BTB) Update(pc uint64, bhb *BHB, mode Mode, target uint64) {
	base, tag := b.index(pc, bhb)
	set := b.lines[base : base+b.cfg.Ways]
	victim := &set[0]
	for i := range set {
		e := &set[i]
		if e.valid && e.tag == tag && (!b.cfg.TagMode || e.mode == mode) {
			victim = e
			break
		}
		if !e.valid {
			victim = e
			break
		}
		if e.used < victim.used {
			victim = e
		}
	}
	b.clock++
	*victim = btbEntry{valid: true, tag: tag, target: target, mode: mode, used: b.clock}
}

// FlushAll implements IBPB: every entry is invalidated. (The paper
// observes IBPB may actually redirect entries to a harmless gadget; the
// observable effect — subsequent indirect branches mispredict — is the
// same.)
func (b *BTB) FlushAll() {
	b.Flushes++
	for i := range b.lines {
		b.lines[i].valid = false
	}
}

// Reset returns the BTB to the observable state of NewBTB(cfg),
// reusing the entry array when the geometry matches (the common case:
// recycled cores of the same uarch). Unlike FlushAll it does not count
// as a flush — reuse is host-side recycling, not a simulated IBPB.
func (b *BTB) Reset(cfg BTBConfig) {
	if cfg.Sets <= 0 {
		cfg.Sets = 512
	}
	if cfg.Ways <= 0 {
		cfg.Ways = 4
	}
	if cfg.HistoryDepth <= 0 {
		cfg.HistoryDepth = 16
	}
	if cfg.Sets*cfg.Ways != len(b.lines) {
		b.lines = make([]btbEntry, cfg.Sets*cfg.Ways)
	} else {
		for i := range b.lines {
			b.lines[i] = btbEntry{}
		}
	}
	b.cfg = cfg
	b.clock = 0
	b.Predictions, b.Mispredicts, b.Flushes = 0, 0, 0
}

// FlushMode invalidates only entries trained in the given mode. Used to
// model the periodic kernel-entry BTB scrub the paper observed on eIBRS
// parts (§6.2.2).
func (b *BTB) FlushMode(mode Mode) {
	b.Flushes++
	for i := range b.lines {
		if b.lines[i].valid && b.lines[i].mode == mode {
			b.lines[i].valid = false
		}
	}
}

// Valid returns the number of valid entries (for tests).
func (b *BTB) Valid() int {
	n := 0
	for i := range b.lines {
		if b.lines[i].valid {
			n++
		}
	}
	return n
}

// RSB is the return stack buffer: a fixed-depth circular stack of
// predicted return addresses.
type RSB struct {
	entries []uint64
	valid   []bool
	top     int // next push slot
	depth   int
}

// NewRSB returns an RSB of the given depth (16 or 32 on real parts).
func NewRSB(depth int) *RSB {
	if depth <= 0 {
		depth = 16
	}
	return &RSB{entries: make([]uint64, depth), valid: make([]bool, depth), depth: depth}
}

// Depth returns the RSB capacity.
func (r *RSB) Depth() int { return r.depth }

// Push records a call's return address.
func (r *RSB) Push(ret uint64) {
	r.entries[r.top] = ret
	r.valid[r.top] = true
	r.top = (r.top + 1) % r.depth
}

// Pop predicts the target of a ret. ok is false on underflow (no valid
// entry), in which case no return-address speculation happens.
func (r *RSB) Pop() (uint64, bool) {
	r.top--
	if r.top < 0 {
		r.top = r.depth - 1
	}
	if !r.valid[r.top] {
		return 0, false
	}
	r.valid[r.top] = false
	return r.entries[r.top], true
}

// Fill stuffs the entire RSB with the given benign address — the
// RSB-stuffing mitigation Linux performs on context switches so that an
// interrupted retpoline cannot speculatively return into a Spectre
// gadget (§5.3, Table 7).
func (r *RSB) Fill(benign uint64) {
	for i := range r.entries {
		r.entries[i] = benign
		r.valid[i] = true
	}
	r.top = 0
}

// Clear invalidates all entries.
func (r *RSB) Clear() {
	for i := range r.valid {
		r.valid[i] = false
	}
	r.top = 0
}

// Live returns the number of valid entries (for tests).
func (r *RSB) Live() int {
	n := 0
	for _, v := range r.valid {
		if v {
			n++
		}
	}
	return n
}

// CondPredictor is a bimodal conditional branch predictor: a table of
// 2-bit saturating counters indexed by PC. (A global-history gshare
// index adds aliasing that none of the paper's experiments depend on,
// while making trained-branch behaviour dependent on unrelated code —
// real attacks pin history explicitly; the bimodal table captures the
// train-then-mispredict behaviour Spectre V1 needs.)
type CondPredictor struct {
	counters []uint8
	history  uint64 // retained for statistics/debugging
	mask     uint64

	Predictions, Mispredicts uint64
}

// NewCondPredictor returns a predictor with 2^bits counters.
func NewCondPredictor(bits int) *CondPredictor {
	if bits <= 0 {
		bits = 12
	}
	n := 1 << bits
	p := &CondPredictor{counters: make([]uint8, n), mask: uint64(n - 1)}
	// Initialise to weakly-taken so loops train fast.
	for i := range p.counters {
		p.counters[i] = 2
	}
	return p
}

// Reset returns the predictor to its freshly constructed state —
// every counter back to weakly-taken, history and statistics zeroed —
// reusing the counter table.
func (p *CondPredictor) Reset() {
	for i := range p.counters {
		p.counters[i] = 2
	}
	p.history = 0
	p.Predictions, p.Mispredicts = 0, 0
}

func (p *CondPredictor) idx(pc uint64) uint64 {
	return (pc >> 2) & p.mask
}

// Predict returns the predicted direction for the branch at pc.
func (p *CondPredictor) Predict(pc uint64) bool {
	return p.counters[p.idx(pc)] >= 2
}

// Update trains the predictor with the resolved direction and reports
// whether the earlier prediction was correct.
func (p *CondPredictor) Update(pc uint64, taken bool) (predicted bool) {
	i := p.idx(pc)
	predicted = p.counters[i] >= 2
	if taken {
		if p.counters[i] < 3 {
			p.counters[i]++
		}
	} else {
		if p.counters[i] > 0 {
			p.counters[i]--
		}
	}
	p.history = p.history<<1 | b2u(taken)
	p.Predictions++
	if predicted != taken {
		p.Mispredicts++
	}
	return predicted
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
