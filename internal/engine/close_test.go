package engine

import (
	"errors"
	"sync"
	"testing"
	"time"

	"spectrebench/internal/simscope"
)

// waitWithDeadline fails the test instead of deadlocking if t does not
// complete.
func waitWithDeadline(t *testing.T, task *Task) (any, error) {
	t.Helper()
	type outcome struct {
		val any
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		v, err := task.Wait()
		ch <- outcome{v, err}
	}()
	select {
	case o := <-ch:
		return o.val, o.err
	case <-time.After(10 * time.Second):
		t.Fatalf("task %s: Wait did not return", task.describe())
		return nil, nil
	}
}

// TestSubmitAfterCloseReturnsErrClosed is the daemon-safety contract:
// a closed engine refuses work with a typed error — no panic, no
// deadlock — so an in-flight HTTP request racing shutdown degrades to
// a failed result instead of taking the process down.
func TestSubmitAfterCloseReturnsErrClosed(t *testing.T) {
	e := New(2)
	if _, err := waitWithDeadline(t, e.Go("warmup", func() (any, error) { return 1, nil })); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	e.Close()
	e.Close() // idempotent

	_, err := waitWithDeadline(t, e.Submit(Key{Workload: "w"}, func() (any, error) { return 2, nil }))
	if !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close: err=%v, want ErrClosed", err)
	}
	_, err = waitWithDeadline(t, e.Go("late", func() (any, error) { return 3, nil }))
	if !errors.Is(err, ErrClosed) {
		t.Errorf("Go after Close: err=%v, want ErrClosed", err)
	}
}

// TestSubmitRacingCloseNeverStrandsAWaiter hammers the Submit/Close
// race: every submitted task must complete — with its value or with
// ErrClosed — never hang.
func TestSubmitRacingCloseNeverStrandsAWaiter(t *testing.T) {
	for round := 0; round < 20; round++ {
		e := New(4)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 20; i++ {
					task := e.Submit(Key{Workload: "race", Config: string(rune('a' + g)), Seed: uint64(i)},
						func() (any, error) { return i, nil })
					if _, err := task.Wait(); err != nil && !errors.Is(err, ErrClosed) {
						t.Errorf("unexpected error: %v", err)
						return
					}
				}
			}()
		}
		done := make(chan struct{})
		go func() {
			close(start)
			e.Close()
			wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			t.Fatalf("round %d: waiters stranded after Close", round)
		}
	}
}

// fakeSecond is an in-memory SecondLevel for hook tests.
type fakeSecond struct {
	mu   sync.Mutex
	vals map[Key]struct {
		val    any
		cycles uint64
	}
	gets, puts int
}

func newFakeSecond() *fakeSecond {
	return &fakeSecond{vals: map[Key]struct {
		val    any
		cycles uint64
	}{}}
}

func (f *fakeSecond) Get(key Key) (any, uint64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gets++
	e, ok := f.vals[key]
	return e.val, e.cycles, ok
}

func (f *fakeSecond) Put(key Key, val any, cycles uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.puts++
	f.vals[key] = struct {
		val    any
		cycles uint64
	}{val, cycles}
}

// TestSecondLevelHitSkipsComputationAndReplaysCycles: a second-level
// hit must complete the cell without running fn, replay the persisted
// cycle cost to the waiter's scope, and still count as a first-level
// miss so rendered cache statistics do not depend on store warmth.
func TestSecondLevelHitSkipsComputationAndReplaysCycles(t *testing.T) {
	e := New(2)
	defer e.Close()
	sl := newFakeSecond()
	key := Key{Workload: "cached", Uarch: "u", Config: "c"}
	sl.Put(key, "stored-value", 12345)
	e.SetSecondLevel(sl)

	sc := &simscope.Scope{FaultSeed: 1}
	restore := simscope.Enter(sc)
	defer restore()

	task := e.Submit(key, func() (any, error) {
		t.Error("fn ran despite a second-level hit")
		return nil, nil
	})
	val, err := task.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if val != "stored-value" {
		t.Errorf("val=%v, want stored-value", val)
	}
	if got := sc.Cycles(); got != 12345 {
		t.Errorf("waiter scope charged %d cycles, want 12345 (persisted cost replayed)", got)
	}
	hits, misses := e.Stats()
	if hits != 0 || misses != 1 {
		t.Errorf("stats hits=%d misses=%d, want 0/1 (store hit still a first-level miss)", hits, misses)
	}
}

// TestSecondLevelCapturesCompletedCells: a computed cell is published
// to the second level with its simulated-cycle cost, and a later
// Submit on a fresh engine is served from it.
func TestSecondLevelCapturesCompletedCells(t *testing.T) {
	sl := newFakeSecond()
	key := Key{Workload: "computed", Uarch: "u", Config: "c"}

	e1 := New(2)
	e1.SetSecondLevel(sl)
	val, err := waitWithDeadline(t, e1.Submit(key, func() (any, error) { return 7.5, nil }))
	if err != nil || val != 7.5 {
		t.Fatalf("compute: (%v, %v)", val, err)
	}
	e1.Close()
	sl.mu.Lock()
	ent, ok := sl.vals[key]
	puts := sl.puts
	sl.mu.Unlock()
	if !ok || ent.val != 7.5 {
		t.Fatalf("second level did not capture the cell (puts=%d)", puts)
	}

	e2 := New(2)
	defer e2.Close()
	e2.SetSecondLevel(sl)
	ran := false
	val2, err := waitWithDeadline(t, e2.Submit(key, func() (any, error) { ran = true; return nil, nil }))
	if err != nil || val2 != 7.5 {
		t.Fatalf("replay: (%v, %v)", val2, err)
	}
	if ran {
		t.Error("fn re-ran on the second engine despite a second-level hit")
	}
}

// TestSecondLevelErrorsNotPublished: failed cells must not poison the
// persistent store.
func TestSecondLevelErrorsNotPublished(t *testing.T) {
	sl := newFakeSecond()
	e := New(2)
	defer e.Close()
	e.SetSecondLevel(sl)
	boom := errors.New("boom")
	if _, err := waitWithDeadline(t, e.Submit(Key{Workload: "fails"}, func() (any, error) { return nil, boom })); !errors.Is(err, boom) {
		t.Fatalf("err=%v, want boom", err)
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.puts != 0 {
		t.Errorf("failed cell published to second level (puts=%d)", sl.puts)
	}
}
