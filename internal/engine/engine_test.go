package engine

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"spectrebench/internal/simscope"
)

func TestSubmitMemoizes(t *testing.T) {
	e := New(2)
	defer e.Close()
	var runs atomic.Int64
	key := Key{Workload: "w", Uarch: "u", Config: "c", Seed: 1}
	fn := func() (any, error) {
		runs.Add(1)
		return 42, nil
	}
	t1 := e.Submit(key, fn)
	t2 := e.Submit(key, fn)
	if t1 != t2 {
		t.Fatal("equal keys should share one task")
	}
	v, err := t1.Wait()
	if err != nil || v.(int) != 42 {
		t.Fatalf("Wait = %v, %v", v, err)
	}
	if _, err := t2.Wait(); err != nil {
		t.Fatalf("second Wait errored: %v", err)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("cell ran %d times, want 1", got)
	}
	hits, misses := e.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses; want 1, 1", hits, misses)
	}
}

func TestDistinctKeysDoNotAlias(t *testing.T) {
	e := New(2)
	defer e.Close()
	// Keys that a sloppy concatenation hash would collide.
	keys := []Key{
		{Workload: "ab", Uarch: "c", Config: "x", Seed: 0},
		{Workload: "a", Uarch: "bc", Config: "x", Seed: 0},
		{Workload: "a", Uarch: "b", Config: "cx", Seed: 0},
		{Workload: "ab", Uarch: "c", Config: "x", Seed: 1},
	}
	var tasks []*Task
	for i, k := range keys {
		i := i
		tasks = append(tasks, e.Submit(k, func() (any, error) { return i, nil }))
	}
	for i, tk := range tasks {
		v, err := tk.Wait()
		if err != nil || v.(int) != i {
			t.Fatalf("key %d: got %v, %v; want %d", i, v, err, i)
		}
	}
	if hits, misses := e.Stats(); hits != 0 || misses != 4 {
		t.Fatalf("stats = %d hits, %d misses; want 0, 4", hits, misses)
	}
}

func TestKeyHashSeparatesFields(t *testing.T) {
	// The hash only seeds fault streams (correctness never depends on
	// it), but field boundaries should still be respected so adjacent
	// cells get decorrelated weather.
	seen := map[uint64]Key{}
	for _, k := range []Key{
		{Workload: "ab", Uarch: "c"},
		{Workload: "a", Uarch: "bc"},
		{Workload: "abc"},
		{Config: "abc"},
		{Workload: "ab", Uarch: "c", Seed: 7},
	} {
		h := k.Hash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("hash collision between %v and %v", prev, k)
		}
		seen[h] = k
	}
}

func TestErrorsAreCached(t *testing.T) {
	e := New(1)
	defer e.Close()
	var runs atomic.Int64
	boom := errors.New("boom")
	key := Key{Workload: "failing"}
	fn := func() (any, error) { runs.Add(1); return nil, boom }
	if _, err := e.Submit(key, fn).Wait(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, err := e.Submit(key, fn).Wait(); !errors.Is(err, boom) {
		t.Fatalf("cached err = %v, want boom", err)
	}
	if runs.Load() != 1 {
		t.Fatalf("failing cell ran %d times, want 1", runs.Load())
	}
}

func TestPanicBecomesDeterministicError(t *testing.T) {
	e := New(2)
	defer e.Close()
	key := Key{Workload: "panicky"}
	task := e.Submit(key, func() (any, error) { panic("kaboom") })
	_, err := task.Wait()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PanicError", err, err)
	}
	if pe.Value != "kaboom" || pe.Stack == "" {
		t.Fatalf("PanicError = %+v", pe)
	}
	want := "cell panicky///seed=0: panic: kaboom"
	if pe.Error() != want {
		t.Fatalf("Error() = %q, want %q", pe.Error(), want)
	}
}

func TestCellScopeSeedIsKeyHash(t *testing.T) {
	e := New(1)
	defer e.Close()
	key := Key{Workload: "scoped", Uarch: "u"}
	v, err := e.Submit(key, func() (any, error) {
		sc := simscope.Current()
		if sc == nil {
			return nil, errors.New("no scope inside cell")
		}
		return sc.FaultSeed, nil
	}).Wait()
	if err != nil {
		t.Fatal(err)
	}
	if v.(uint64) != key.Hash() {
		t.Fatalf("cell FaultSeed = %d, want key hash %d", v, key.Hash())
	}
}

func TestUnkeyedTaskSharesSubmitterScope(t *testing.T) {
	e := New(2)
	defer e.Close()
	sc := &simscope.Scope{FaultSeed: 99}
	restore := simscope.Enter(sc)
	task := e.Go("probe", func() (any, error) { return simscope.Current(), nil })
	restore()
	v, err := task.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if v.(*simscope.Scope) != sc {
		t.Fatal("unkeyed task did not inherit the submitter's scope")
	}
}

func TestWaitChargesCellCyclesToWaiterScope(t *testing.T) {
	e := New(1)
	defer e.Close()
	key := Key{Workload: "costly"}
	task := e.Submit(key, func() (any, error) {
		simscope.Current().AddCycles(1234)
		return nil, nil
	})
	waiter := &simscope.Scope{}
	restore := simscope.Enter(waiter)
	if _, err := task.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := task.Wait(); err != nil { // second Wait charges again
		t.Fatal(err)
	}
	restore()
	if got := waiter.Cycles(); got != 2468 {
		t.Fatalf("waiter charged %d cycles, want 2468", got)
	}
}

// TestHelpingJoin saturates a 1-worker pool with a task that waits on
// subtasks; without worker helping this deadlocks.
func TestHelpingJoin(t *testing.T) {
	e := New(1)
	defer e.Close()
	outer := e.Go("outer", func() (any, error) {
		sum := 0
		var subs []*Task
		for i := 0; i < 8; i++ {
			i := i
			subs = append(subs, e.Submit(Key{Workload: "sub", Seed: uint64(i)},
				func() (any, error) { return i, nil }))
		}
		for _, s := range subs {
			v, err := s.Wait()
			if err != nil {
				return nil, err
			}
			sum += v.(int)
		}
		return sum, nil
	})
	v, err := outer.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if v.(int) != 28 {
		t.Fatalf("sum = %v, want 28", v)
	}
}

// TestParallelMatchesSerial runs the same task graph at 1 and 8 workers
// and requires identical gathered results and cache stats.
func TestParallelMatchesSerial(t *testing.T) {
	gather := func(jobs int) (string, uint64, uint64) {
		e := New(jobs)
		defer e.Close()
		var tasks []*Task
		for round := 0; round < 3; round++ { // repeats exercise the cache
			for i := 0; i < 16; i++ {
				i := i
				tasks = append(tasks, e.Submit(Key{Workload: "cell", Seed: uint64(i)},
					func() (any, error) {
						if i%5 == 4 {
							return nil, fmt.Errorf("cell %d failed", i)
						}
						return i * i, nil
					}))
			}
		}
		out := ""
		for _, tk := range tasks {
			v, err := tk.Wait()
			if err != nil {
				out += fmt.Sprintf("err:%v;", err)
			} else {
				out += fmt.Sprintf("ok:%v;", v)
			}
		}
		h, m := e.Stats()
		return out, h, m
	}
	s1, h1, m1 := gather(1)
	s8, h8, m8 := gather(8)
	if s1 != s8 {
		t.Fatalf("results differ between 1 and 8 workers:\n%s\nvs\n%s", s1, s8)
	}
	if h1 != h8 || m1 != m8 {
		t.Fatalf("cache stats differ: %d/%d vs %d/%d", h1, m1, h8, m8)
	}
	if m1 != 16 || h1 != 32 {
		t.Fatalf("stats = %d hits, %d misses; want 32, 16", h1, m1)
	}
}

func TestDefaultEngineJobs(t *testing.T) {
	// SetDefaultJobs after Default() must be a no-op; before, it sizes
	// the pool. The default engine is process-global, so only check the
	// invariant that holds regardless of test order.
	SetDefaultJobs(3)
	e := Default()
	if e == nil || e.Jobs() < 1 {
		t.Fatalf("Default() = %+v", e)
	}
	SetDefaultJobs(7)
	if Default() != e {
		t.Fatal("Default() changed identity after SetDefaultJobs")
	}
}
