package engine

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"spectrebench/internal/simscope"
)

// foldConfig canonicalises test keys: any Config with a "v=" prefix
// folds to the part before the first comma, so "v=1,extra" and "v=1"
// are one equivalence class.
func foldConfig(k Key) Key {
	if rest, ok := strings.CutPrefix(k.Config, "v="); ok {
		k.Config = "v=" + strings.SplitN(rest, ",", 2)[0]
	}
	return k
}

// TestDedupFoldsEquivalenceClasses: display keys with equal canonical
// keys share one execution, every submitter sees the class result, and
// the stats ledger adds up (misses = first sights, classHits = folds).
func TestDedupFoldsEquivalenceClasses(t *testing.T) {
	e := New(2)
	defer e.Close()
	e.SetCanonicalizer(foldConfig)
	if !e.DedupEnabled() {
		t.Fatal("dedup should default on")
	}

	var runs atomic.Int64
	fn := func() (any, error) {
		runs.Add(1)
		return simscope.Current().FaultSeed, nil
	}
	// Three display keys, two classes: v=1 and v=1,extra fold together.
	keys := []Key{
		{Workload: "w", Uarch: "u", Config: "v=1"},
		{Workload: "w", Uarch: "u", Config: "v=1,extra"},
		{Workload: "w", Uarch: "u", Config: "v=2"},
	}
	var tasks []*Task
	for _, k := range keys {
		tasks = append(tasks, e.Submit(k, fn))
	}
	var vals []uint64
	for i, tk := range tasks {
		v, err := tk.Wait()
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		vals = append(vals, v.(uint64))
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("ran %d simulations, want 2 (one per class)", got)
	}
	if vals[0] != vals[1] {
		t.Errorf("same-class cells saw different values: %d vs %d", vals[0], vals[1])
	}
	if vals[0] == vals[2] {
		t.Errorf("different classes aliased to one value")
	}
	// Scope seeds are canonical: the folded cell's seed is its CLASS
	// key's hash, not its display key's.
	if want := foldConfig(keys[1]).Hash(); vals[1] != want {
		t.Errorf("folded cell seed = %d, want canonical hash %d", vals[1], want)
	}
	d := e.StatsDetail()
	if d.Misses != 3 || d.ClassHits != 1 || d.Classes != 2 || d.Simulated != 2 {
		t.Errorf("detail = %+v, want misses=3 classHits=1 classes=2 simulated=2", d)
	}
	// Re-submitting any display key is a plain memo hit.
	if _, err := e.Submit(keys[1], fn).Wait(); err != nil {
		t.Fatal(err)
	}
	if d := e.StatsDetail(); d.Hits != 1 {
		t.Errorf("hits = %d after resubmit, want 1", d.Hits)
	}
}

// TestDedupOffKeepsCanonicalSeeds: with dedup disabled every display
// key runs its own simulation, but fault seeds still derive from the
// canonical key — the property that makes -dedup an output-identical
// ablation rather than a behaviour change.
func TestDedupOffKeepsCanonicalSeeds(t *testing.T) {
	SetDedupDefault(false)
	defer SetDedupDefault(true)
	e := New(2)
	defer e.Close()
	e.SetCanonicalizer(foldConfig)
	if e.DedupEnabled() {
		t.Fatal("dedup should be off")
	}

	var runs atomic.Int64
	fn := func() (any, error) {
		runs.Add(1)
		return simscope.Current().FaultSeed, nil
	}
	a, err := e.Submit(Key{Workload: "w", Uarch: "u", Config: "v=1"}, fn).Wait()
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Submit(Key{Workload: "w", Uarch: "u", Config: "v=1,extra"}, fn).Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("ran %d simulations, want 2 (dedup off)", got)
	}
	if a.(uint64) != b.(uint64) {
		t.Errorf("same-class cells drew different fault seeds with dedup off: %d vs %d", a, b)
	}
	if d := e.StatsDetail(); d.ClassHits != 0 || d.Simulated != 2 {
		t.Errorf("detail = %+v, want classHits=0 simulated=2", d)
	}
}

// TestDedupErrorsPropagateToFollowers: a failing class execution fails
// every folded submitter with the same (deterministic) error.
func TestDedupErrorsPropagateToFollowers(t *testing.T) {
	e := New(2)
	defer e.Close()
	e.SetCanonicalizer(foldConfig)
	fn := func() (any, error) { return nil, fmt.Errorf("deterministic failure") }
	t1 := e.Submit(Key{Workload: "w", Uarch: "u", Config: "v=9"}, fn)
	t2 := e.Submit(Key{Workload: "w", Uarch: "u", Config: "v=9,alias"}, fn)
	_, err1 := t1.Wait()
	_, err2 := t2.Wait()
	if err1 == nil || err2 == nil {
		t.Fatalf("errors = %v, %v; want both non-nil", err1, err2)
	}
	if err1.Error() != err2.Error() {
		t.Errorf("class error %q != follower error %q", err1, err2)
	}
}

// TestPlanOffMatchesPlanOn: the planner is a scheduling policy, not a
// semantics change — a batch of interdependent cells completes with
// identical values either way, including Waits issued from inside
// cells (the helping path must reach planner buckets or deadlock).
func TestPlanOffMatchesPlanOn(t *testing.T) {
	run := func(t *testing.T, e *Engine) map[int]uint64 {
		t.Helper()
		defer e.Close()
		out := map[int]uint64{}
		var tasks []*Task
		for i := 0; i < 32; i++ {
			i := i
			k := Key{Workload: fmt.Sprintf("w%d", i%4), Uarch: fmt.Sprintf("u%d", i%2), Config: fmt.Sprintf("c%d", i)}
			tasks = append(tasks, e.Submit(k, func() (any, error) {
				if i%5 == 0 {
					// A cell that waits on another cell: exercises
					// helping through the planner.
					sub := Key{Workload: "sub", Uarch: "u", Config: fmt.Sprintf("s%d", i)}
					if _, err := e.Submit(sub, func() (any, error) { return uint64(i), nil }).Wait(); err != nil {
						return nil, err
					}
				}
				return uint64(i) * 3, nil
			}))
		}
		for i, tk := range tasks {
			v, err := tk.Wait()
			if err != nil {
				t.Fatalf("cell %d: %v", i, err)
			}
			out[i] = v.(uint64)
		}
		return out
	}

	withPlan := run(t, New(4))

	SetPlanDefault(false)
	defer SetPlanDefault(true)
	e := New(4)
	if e.PlanEnabled() {
		t.Fatal("plan should be off")
	}
	withoutPlan := run(t, e)

	for i, v := range withPlan {
		if withoutPlan[i] != v {
			t.Errorf("cell %d: plan=on %d, plan=off %d", i, v, withoutPlan[i])
		}
	}
}
