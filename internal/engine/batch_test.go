package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"spectrebench/internal/simscope"
)

// batchKeys builds n display keys folding onto n/alias classes under
// foldConfig (every key "v=C,alias=A" folds to "v=C").
func batchKeys(n, alias int) []Key {
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = Key{
			Workload: "w",
			Uarch:    fmt.Sprintf("u%d", i%2),
			Config:   fmt.Sprintf("v=%d,alias=%d", i/alias, i%alias),
		}
	}
	return keys
}

// TestSubmitBatchMatchesSubmit pins the counter contract: a batch
// submission yields the same values and the same hits / misses /
// classHits / simulated ledger as the equivalent per-cell Submit loop —
// the invariant that keeps `-batch on|off` byte-identical.
func TestSubmitBatchMatchesSubmit(t *testing.T) {
	keys := batchKeys(24, 3)
	fn := func() (any, error) { return simscope.Current().FaultSeed, nil }

	run := func(batch bool) (vals []uint64, d StatsDetail) {
		e := New(2)
		defer e.Close()
		e.SetCanonicalizer(foldConfig)
		var tasks []*Task
		if batch {
			cells := make([]BatchCell, len(keys))
			for i, k := range keys {
				cells[i] = BatchCell{Key: k, Fn: fn}
			}
			tasks = e.SubmitBatch(cells)
		} else {
			for _, k := range keys {
				tasks = append(tasks, e.Submit(k, fn))
			}
		}
		for i, tk := range tasks {
			v, err := tk.Wait()
			if err != nil {
				t.Fatalf("batch=%v key %d: %v", batch, i, err)
			}
			vals = append(vals, v.(uint64))
		}
		return vals, e.StatsDetail()
	}

	loopVals, loopD := run(false)
	batchVals, batchD := run(true)
	for i := range loopVals {
		if loopVals[i] != batchVals[i] {
			t.Errorf("cell %d: submit=%d batch=%d", i, loopVals[i], batchVals[i])
		}
	}
	if loopD.Hits != batchD.Hits || loopD.Misses != batchD.Misses ||
		loopD.ClassHits != batchD.ClassHits || loopD.Classes != batchD.Classes ||
		loopD.Simulated != batchD.Simulated {
		t.Errorf("counters diverge:\n  submit: %+v\n  batch:  %+v", loopD, batchD)
	}
	if batchD.BatchedCells != uint64(len(keys)) {
		t.Errorf("batchedCells = %d, want %d", batchD.BatchedCells, len(keys))
	}
	if loopD.BatchedCells != 0 || loopD.InlineFanouts != 0 {
		t.Errorf("per-cell submit counted batch telemetry: %+v", loopD)
	}
}

// TestSubmitBatchInlineFanout: once a canonical class has finished, a
// batched alias of it is born complete — no scheduler round-trip, no
// extra simulation — and counted as an inline fanout.
func TestSubmitBatchInlineFanout(t *testing.T) {
	e := New(1)
	defer e.Close()
	e.SetCanonicalizer(foldConfig)
	var runs atomic.Int64
	fn := func() (any, error) { runs.Add(1); return simscope.Current().FaultSeed, nil }

	lead, err := e.Submit(Key{Workload: "w", Uarch: "u", Config: "v=1"}, fn).Wait()
	if err != nil {
		t.Fatal(err)
	}
	tasks := e.SubmitBatch([]BatchCell{
		{Key: Key{Workload: "w", Uarch: "u", Config: "v=1,a"}, Fn: fn},
		{Key: Key{Workload: "w", Uarch: "u", Config: "v=1,b"}, Fn: fn},
	})
	for i, tk := range tasks {
		v, err := tk.Wait()
		if err != nil {
			t.Fatalf("alias %d: %v", i, err)
		}
		if v.(uint64) != lead.(uint64) {
			t.Errorf("alias %d: value %d, want class value %d", i, v, lead)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("ran %d simulations, want 1", got)
	}
	d := e.StatsDetail()
	if d.InlineFanouts != 2 {
		t.Errorf("inlineFanouts = %d, want 2", d.InlineFanouts)
	}
	if d.ClassHits != 2 {
		t.Errorf("classHits = %d, want 2 (identical to the Submit path)", d.ClassHits)
	}
	// Inline-fanout tasks still memoize: resubmitting is a memo hit.
	if _, err := e.Submit(Key{Workload: "w", Uarch: "u", Config: "v=1,a"}, fn).Wait(); err != nil {
		t.Fatal(err)
	}
	if d := e.StatsDetail(); d.Hits != 1 {
		t.Errorf("hits = %d after alias resubmit, want 1", d.Hits)
	}
}

// batchSL is a BatchSecondLevel + LinkRecorder fake: a map store that
// counts GetBatch calls and records PutLink pairs.
type batchSL struct {
	mu       sync.Mutex
	vals     map[Key]float64
	getBatch int
	gets     int
	links    map[Key]Key
	puts     int
}

func newBatchSL() *batchSL {
	return &batchSL{vals: map[Key]float64{}, links: map[Key]Key{}}
}

func (s *batchSL) Get(key Key) (any, uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	v, ok := s.vals[key]
	return v, 7, ok
}

func (s *batchSL) Put(key Key, val any, cycles uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	s.vals[key] = val.(float64)
}

func (s *batchSL) GetBatch(keys []Key) []BatchGet {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.getBatch++
	out := make([]BatchGet, len(keys))
	for i, k := range keys {
		v, ok := s.vals[k]
		out[i] = BatchGet{Val: v, Cycles: 7, OK: ok}
	}
	return out
}

func (s *batchSL) PutLink(display, canonical Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.links[display] = canonical
}

// TestSubmitBatchUsesGetBatch: class leaders of a batch resolve through
// one GetBatch call; hits replay without simulating, misses simulate
// and publish back, and display→canonical folds reach the LinkRecorder.
func TestSubmitBatchUsesGetBatch(t *testing.T) {
	sl := newBatchSL()
	warmClass := Key{Workload: "w", Uarch: "u0", Config: "v=0"}
	sl.vals[warmClass] = 42.5

	e := New(2)
	defer e.Close()
	e.SetCanonicalizer(foldConfig)
	e.SetSecondLevel(sl)

	var runs atomic.Int64
	fn := func() (any, error) { runs.Add(1); return 3.25, nil }
	cells := []BatchCell{
		{Key: Key{Workload: "w", Uarch: "u0", Config: "v=0,alias"}, Fn: fn}, // warm class
		{Key: Key{Workload: "w", Uarch: "u0", Config: "v=1"}, Fn: fn},       // cold class
	}
	tasks := e.SubmitBatch(cells)
	v0, err0 := tasks[0].Wait()
	v1, err1 := tasks[1].Wait()
	if err0 != nil || err1 != nil {
		t.Fatalf("errors: %v, %v", err0, err1)
	}
	if v0.(float64) != 42.5 {
		t.Errorf("warm cell = %v, want 42.5 (store replay)", v0)
	}
	if _, _, c, _ := tasks[0].snapshot(); c != 7 {
		t.Errorf("warm cell cycles = %d, want 7 (replayed cost)", c)
	}
	if v1.(float64) != 3.25 {
		t.Errorf("cold cell = %v, want 3.25", v1)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("ran %d simulations, want 1 (warm class replays)", got)
	}
	sl.mu.Lock()
	gb, gets, links := sl.getBatch, sl.gets, len(sl.links)
	sl.mu.Unlock()
	if gb != 1 {
		t.Errorf("GetBatch calls = %d, want 1", gb)
	}
	if gets != 0 {
		t.Errorf("per-key Gets = %d, want 0 (batch path)", gets)
	}
	if links != 1 {
		t.Errorf("recorded links = %d, want 1 (the folded alias)", links)
	}
	if got := sl.links[cells[0].Key]; got != warmClass {
		t.Errorf("link %v -> %v, want -> %v", cells[0].Key, got, warmClass)
	}
	if d := e.StatsDetail(); d.SecondLevelHits != 1 {
		t.Errorf("secondLevelHits = %d, want 1", d.SecondLevelHits)
	}
}

// TestGoBatchRunsUnkeyedTasks: GoBatch is Go for a slice — same scope
// inheritance, one enqueue — and a closed engine pre-fails every task
// with ErrClosed, exactly like Go and SubmitBatch.
func TestGoBatchRunsUnkeyedTasks(t *testing.T) {
	e := New(2)
	items := make([]BatchGo, 8)
	for i := range items {
		i := i
		items[i] = BatchGo{Label: fmt.Sprintf("task-%d", i), Fn: func() (any, error) { return i * i, nil }}
	}
	for i, tk := range e.GoBatch(items) {
		v, err := tk.Wait()
		if err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
		if v.(int) != i*i {
			t.Errorf("task %d = %v, want %d", i, v, i*i)
		}
	}
	e.Close()

	for _, tk := range e.GoBatch(items[:2]) {
		if _, err := tk.Wait(); !errors.Is(err, ErrClosed) {
			t.Errorf("closed GoBatch error = %v, want ErrClosed", err)
		}
	}
	for _, tk := range e.SubmitBatch([]BatchCell{{Key: Key{Workload: "w", Uarch: "u", Config: "c"}}}) {
		if _, err := tk.Wait(); !errors.Is(err, ErrClosed) {
			t.Errorf("closed SubmitBatch error = %v, want ErrClosed", err)
		}
	}
}

// TestSubmitBatchWarmIsAllInline: a second identical batch is pure memo
// hits; a batch of fresh aliases of finished classes is pure inline
// fanout. Neither schedules anything.
func TestSubmitBatchWarmIsAllInline(t *testing.T) {
	keys := batchKeys(12, 2)
	fn := func() (any, error) { return 1.0, nil }
	cells := make([]BatchCell, len(keys))
	for i, k := range keys {
		cells[i] = BatchCell{Key: k, Fn: fn}
	}
	e := New(2)
	defer e.Close()
	e.SetCanonicalizer(foldConfig)
	for _, tk := range e.SubmitBatch(cells) {
		if _, err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	base := e.StatsDetail()

	// Identical resubmission: all memo hits.
	for _, tk := range e.SubmitBatch(cells) {
		if _, err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	d := e.StatsDetail()
	if d.Hits-base.Hits != uint64(len(cells)) {
		t.Errorf("resubmitted batch: hits +%d, want +%d", d.Hits-base.Hits, len(cells))
	}
	if d.Simulated != base.Simulated {
		t.Errorf("resubmitted batch simulated %d new cells", d.Simulated-base.Simulated)
	}

	// Fresh aliases of finished classes: all inline fanouts.
	fresh := make([]BatchCell, len(keys))
	for i, k := range keys {
		k.Config += ",fresh"
		fresh[i] = BatchCell{Key: k, Fn: fn}
	}
	for _, tk := range e.SubmitBatch(fresh) {
		if _, err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	d2 := e.StatsDetail()
	if d2.InlineFanouts-d.InlineFanouts != uint64(len(fresh)) {
		t.Errorf("fresh aliases: inlineFanouts +%d, want +%d", d2.InlineFanouts-d.InlineFanouts, len(fresh))
	}
	if d2.Simulated != d.Simulated {
		t.Errorf("fresh aliases simulated %d new cells, want 0", d2.Simulated-d.Simulated)
	}
}
