// Package engine runs simulation cells — independent units of simulated
// work — across a bounded pool of workers while keeping every observable
// result byte-identical to a serial run.
//
// # Cells and keys
//
// A cell is one (workload, uarch model, mitigation config, seed) tuple.
// Cells are pure: a cell's value, error and simulated-cycle cost are a
// function of its key alone. That purity is what makes the two engine
// features sound:
//
//   - Memoization. Submit deduplicates by key, so a cell shared by
//     several experiments (the OS-ladder sweeps of fig2/fig3/table9,
//     the LEBench runs shared by fig2 and lebench-detail) simulates
//     exactly once per process. The first Submit of a key counts as a
//     miss, every later one as a hit — totals that depend only on the
//     submitted key multiset, never on scheduling.
//   - Parallelism. Cells have no ordering constraints between them, so
//     any worker may run any ready cell; callers gather results in
//     canonical order via Task.Wait.
//
// The cache is keyed by the Key struct itself (Go map equality), not by
// its hash — a hash collision therefore cannot alias two cells. The hash
// only seeds the cell's deterministic fault-injection stream.
//
// # Scheduling
//
// The pool is a classic work-stealing design: each worker owns a deque
// (LIFO for the owner, to keep an experiment's freshly spawned cells
// hot; FIFO for thieves, to steal the oldest and largest pending work),
// plus a global injection queue for submissions from non-worker
// goroutines. Cells are milliseconds of simulation, so one mutex over
// all queues costs nothing measurable and keeps the invariants easy to
// state.
//
// Tasks may wait on other tasks (an experiment waits on its cells; a
// sweep waits on per-model tasks). A worker that blocks in Wait instead
// helps: it runs other pending tasks until the awaited task completes or
// no runnable work remains. Because waits only ever point from
// experiments toward cells (a DAG) and a helping worker can reach every
// queue, the pool cannot deadlock even at -jobs 1.
//
// # Determinism
//
// Each keyed task runs under its own simscope.Scope whose fault seed is
// the key hash and whose activation snapshot and cycle budget were
// captured at Submit time. Injector streams, fired-fault attribution and
// cycle accounting are therefore functions of the cell key — independent
// of worker count, steal order and submission interleaving.
package engine

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"spectrebench/internal/cpu"
	"spectrebench/internal/faultinject"
	"spectrebench/internal/gls"
	"spectrebench/internal/simscope"
)

// Key identifies one simulation cell. Two Submits with equal Keys share
// one execution; every field therefore must capture everything the
// cell's result depends on.
type Key struct {
	// Workload names the computation (e.g. "micro/syscall",
	// "lebench/run", "vm/lfs/smallfile").
	Workload string
	// Uarch is the CPU model name.
	Uarch string
	// Config is the canonical encoding of the mitigation configuration
	// (and any other knobs, e.g. the watchdog budget) the cell runs
	// under.
	Config string
	// Seed roots the cell's fault-injection stream (0 when faults are
	// off).
	Seed uint64
}

// Hash folds the key into the 64-bit fault seed for the cell's scope.
// Field boundaries are marked so ("ab","c") and ("a","bc") differ.
func (k Key) Hash() uint64 {
	h := uint64(14695981039346656037)
	step := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		h ^= 0xff
		h *= 1099511628211
	}
	step(k.Workload)
	step(k.Uarch)
	step(k.Config)
	for i := 0; i < 64; i += 8 {
		h ^= (k.Seed >> i) & 0xff
		h *= 1099511628211
	}
	return h
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s/%s/seed=%d", k.Workload, k.Uarch, k.Config, k.Seed)
}

// PanicError is the structured form a panicking task takes. Its Error
// string is deterministic (no goroutine IDs or addresses), so rendered
// output containing it stays byte-identical across runs; the stack is
// preserved separately for debugging.
type PanicError struct {
	// Label names the task ("cell <key>" or the Go label).
	Label string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack at recovery time.
	Stack string
	// FaultPoint names the most recently fired fault-injection point in
	// the task's scope ("" when none fired).
	FaultPoint string
}

func (e *PanicError) Error() string {
	msg := fmt.Sprintf("%s: panic: %v", e.Label, e.Value)
	if e.FaultPoint != "" {
		msg += " [fault-point " + e.FaultPoint + "]"
	}
	return msg
}

// Task is one scheduled unit: a keyed (memoized) cell or an unkeyed
// helper task. Wait may be called any number of times from any
// goroutine.
type Task struct {
	eng   *Engine
	key   Key
	keyed bool
	label string
	fn    func() (any, error)
	// scope is the determinism context the task runs under: a fresh
	// per-cell scope for keyed tasks, the submitter's (shared) scope for
	// unkeyed ones.
	scope *simscope.Scope

	done   chan struct{}
	val    any
	err    error
	cycles uint64 // keyed tasks: simulated cycles attributed to the cell
}

func (t *Task) describe() string {
	if t.keyed {
		return "cell " + t.key.String()
	}
	return t.label
}

// Engine is a work-stealing worker pool with a memoizing cell cache.
type Engine struct {
	jobs int

	mu      sync.Mutex
	cond    *sync.Cond
	started bool
	closed  bool

	cache        map[Key]*Task
	hits, misses uint64

	global   []*Task   // FIFO injection queue for non-worker submitters
	deques   [][]*Task // per-worker deques: owner pops the tail, thieves the head
	workerOf map[uint64]int
}

// New returns an engine with n workers (n < 1 means GOMAXPROCS). Workers
// start lazily on first submission.
func New(n int) *Engine {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		jobs:     n,
		cache:    make(map[Key]*Task),
		deques:   make([][]*Task, n),
		workerOf: make(map[uint64]int),
	}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// Jobs returns the worker count.
func (e *Engine) Jobs() int { return e.jobs }

// Stats returns the cache hit and miss totals: misses is the number of
// distinct cells simulated, hits the number of Submits served from the
// cache. Both depend only on what was submitted, so they are identical
// across worker counts.
func (e *Engine) Stats() (hits, misses uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hits, e.misses
}

// Submit schedules the cell identified by key, or returns the existing
// task when the key was already submitted. fn must be pure with respect
// to key. The cell's fault seed, activation snapshot and cycle budget
// are fixed here, at submission time, from the submitter's scope.
func (e *Engine) Submit(key Key, fn func() (any, error)) *Task {
	parent := simscope.Current()
	e.mu.Lock()
	if t, ok := e.cache[key]; ok {
		e.hits++
		e.mu.Unlock()
		return t
	}
	e.misses++
	sc := &simscope.Scope{FaultSeed: key.Hash()}
	if parent != nil {
		sc.Fault = parent.Fault
		sc.Budget, sc.HasBudget = parent.Budget, parent.HasBudget
		sc.Tag = parent.Tag
	} else {
		// Unmanaged submitter (an experiment invoked directly): capture
		// the globals the scope would otherwise shadow.
		sc.Fault = faultinject.Snapshot()
		sc.Budget, sc.HasBudget = cpu.DefaultCycleBudget(), true
	}
	t := &Task{eng: e, key: key, keyed: true, fn: fn, scope: sc, done: make(chan struct{})}
	e.cache[key] = t
	e.enqueueLocked(t)
	e.mu.Unlock()
	return t
}

// Go schedules an unkeyed task (no memoization) that runs under the
// submitter's current scope — the building block for fanning one
// experiment's per-model work across workers while cycle charges and
// fault attribution keep flowing to the experiment.
func (e *Engine) Go(label string, fn func() (any, error)) *Task {
	t := &Task{eng: e, label: label, fn: fn, scope: simscope.Current(), done: make(chan struct{})}
	e.mu.Lock()
	e.enqueueLocked(t)
	e.mu.Unlock()
	return t
}

// enqueueLocked places t on the submitting worker's own deque (tail =
// hottest) or the global queue for outside submitters, starting the
// workers on first use.
func (e *Engine) enqueueLocked(t *Task) {
	if e.closed {
		panic("engine: submit on closed engine")
	}
	if !e.started {
		e.started = true
		for i := 0; i < e.jobs; i++ {
			go e.worker(i)
		}
	}
	if w, ok := e.workerOf[gls.ID()]; ok {
		e.deques[w] = append(e.deques[w], t)
	} else {
		e.global = append(e.global, t)
	}
	e.cond.Broadcast()
}

// dequeueLocked returns a runnable task for worker w: own deque tail
// first, then the global queue head, then the head of any other deque.
func (e *Engine) dequeueLocked(w int) *Task {
	if n := len(e.deques[w]); n > 0 {
		t := e.deques[w][n-1]
		e.deques[w][n-1] = nil
		e.deques[w] = e.deques[w][:n-1]
		return t
	}
	if len(e.global) > 0 {
		t := e.global[0]
		e.global[0] = nil
		e.global = e.global[1:]
		return t
	}
	for i := 1; i <= len(e.deques); i++ {
		v := (w + i) % len(e.deques)
		if len(e.deques[v]) > 0 {
			t := e.deques[v][0]
			e.deques[v][0] = nil
			e.deques[v] = e.deques[v][1:]
			return t
		}
	}
	return nil
}

func (e *Engine) worker(idx int) {
	id := gls.ID()
	e.mu.Lock()
	e.workerOf[id] = idx
	for {
		t := e.dequeueLocked(idx)
		for t == nil {
			if e.closed {
				delete(e.workerOf, id)
				e.mu.Unlock()
				return
			}
			e.cond.Wait()
			t = e.dequeueLocked(idx)
		}
		e.mu.Unlock()
		e.run(t)
		e.mu.Lock()
	}
}

// run executes t under its scope (entering nil shadows any scope the
// helping worker happened to be carrying) and publishes the result.
func (e *Engine) run(t *Task) {
	restore := simscope.Enter(t.scope)
	func() {
		defer func() {
			if r := recover(); r != nil {
				pe := &PanicError{
					Label: t.describe(),
					Value: r,
					Stack: string(debug.Stack()),
				}
				if p, ok := t.scope.LastFired(); ok {
					pe.FaultPoint = faultinject.Point(p).String()
				}
				t.err = pe
			}
		}()
		t.val, t.err = t.fn()
	}()
	restore()
	if t.keyed {
		t.cycles = t.scope.Cycles()
	}
	close(t.done)
}

// workerIndex reports whether the calling goroutine is one of e's
// workers.
func (e *Engine) workerIndex() (int, bool) {
	e.mu.Lock()
	w, ok := e.workerOf[gls.ID()]
	e.mu.Unlock()
	return w, ok
}

// Wait blocks until the task completes and returns its value and error.
// A worker that waits helps: it runs other pending tasks rather than
// idling, which is what keeps -jobs 1 live when an experiment task
// blocks on its own cells. For keyed tasks, the cell's simulated cycles
// are charged to the waiter's current scope on every Wait — each
// requester pays for the cell as if it had simulated it, exactly as the
// serial engine-less code did, and the sum is independent of execution
// order.
func (t *Task) Wait() (any, error) {
	select {
	case <-t.done:
	default:
		if w, ok := t.eng.workerIndex(); ok {
			t.eng.help(t, w)
		}
		<-t.done
	}
	if t.keyed {
		simscope.Current().AddCycles(t.cycles)
	}
	return t.val, t.err
}

// help runs pending tasks on worker w until t completes or nothing is
// runnable (t is then in flight on some other worker; the caller
// blocks).
func (e *Engine) help(t *Task, w int) {
	for {
		select {
		case <-t.done:
			return
		default:
		}
		e.mu.Lock()
		nt := e.dequeueLocked(w)
		e.mu.Unlock()
		if nt == nil {
			return
		}
		e.run(nt)
	}
}

// Close shuts the worker pool down once idle workers notice (pending
// queued tasks are abandoned — only call Close after every submitted
// task has been awaited). Intended for tests that create throwaway
// engines; the process-default engine is never closed.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

// The process-default engine, used by any managed run that does not
// carry an explicit engine. Size it with SetDefaultJobs before first
// use.
var (
	defaultMu     sync.Mutex
	defaultEngine *Engine
	defaultJobs   int
)

// SetDefaultJobs fixes the worker count of the process-default engine.
// It must be called before the first Default call (the CLI does so while
// parsing flags); afterwards it has no effect.
func SetDefaultJobs(n int) {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultEngine == nil {
		defaultJobs = n
	}
}

// Default returns the lazily constructed process-default engine.
func Default() *Engine {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultEngine == nil {
		defaultEngine = New(defaultJobs)
	}
	return defaultEngine
}
