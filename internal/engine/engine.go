// Package engine runs simulation cells — independent units of simulated
// work — across a bounded pool of workers while keeping every observable
// result byte-identical to a serial run.
//
// # Cells and keys
//
// A cell is one (workload, uarch model, mitigation config, seed) tuple.
// Cells are pure: a cell's value, error and simulated-cycle cost are a
// function of its key alone. That purity is what makes the two engine
// features sound:
//
//   - Memoization. Submit deduplicates by key, so a cell shared by
//     several experiments (the OS-ladder sweeps of fig2/fig3/table9,
//     the LEBench runs shared by fig2 and lebench-detail) simulates
//     exactly once per process. The first Submit of a key counts as a
//     miss, every later one as a hit — totals that depend only on the
//     submitted key multiset, never on scheduling.
//   - Parallelism. Cells have no ordering constraints between them, so
//     any worker may run any ready cell; callers gather results in
//     canonical order via Task.Wait.
//
// The cache is keyed by the Key struct itself (sync.Map equality), not
// by its hash — a hash collision therefore cannot alias two cells. The
// hash only seeds the cell's deterministic fault-injection stream.
//
// # Canonical keys and dedup classes
//
// Many distinct configurations lower to identical effective behaviour
// (a boot parameter requesting an unsupported mitigation is ignored;
// mitigations=off collapses nearly everything). An installed
// Canonicalizer maps each submitted (display) key to the canonical key
// of its equivalence class. Cells in one class share a single
// execution: the first display key to reach a class schedules the class
// task; later display keys of the same class become followers that
// receive the class result when it completes. Hit/miss totals stay
// display-keyed (a display key's first sight is a miss even when it
// folds onto an existing class), so rendered cache notes are identical
// whether dedup is on or off; ClassHits counts the folds. When a
// canonicalizer is installed the cell's fault seed and second-level
// store key are the canonical key in BOTH dedup modes, so output and
// persisted state are byte-identical across the dedup ablation.
//
// # Scheduling
//
// The pool is a sharded work-stealing design built so that no two
// workers contend on a lock unless one is actually stealing from the
// other:
//
//   - The memo cache is a sync.Map consulted lock-free on the Submit
//     fast path; a racing first submission is resolved by LoadOrStore,
//     so exactly one task per key is ever scheduled and the hit/miss
//     totals stay scheduling-independent.
//   - Each worker owns a deque under its own mutex (LIFO for the owner,
//     to keep an experiment's freshly spawned cells hot; FIFO for
//     thieves, to steal the oldest and largest pending work), plus a
//     global injection queue — its own shard — for submissions from
//     non-worker goroutines. Submission, dequeue and memo lookup never
//     serialize on a pool-wide lock.
//   - With the sweep planner on (the default; see SetPlanDefault),
//     keyed cells are not pushed to deques at all but topologically
//     bucketed by their warmup prefix — (workload, uarch), the part of
//     the key that decides which checkpoint snapshots, pooled cores and
//     assembled programs a cell can reuse. Each worker claims one
//     bucket and drains it before claiming the next, so cells sharing a
//     prefix run back-to-back and PR 7's checkpointed warmup stays hot
//     even on million-cell grids. Helping waits may steal from any
//     bucket (claimed or not), so the liveness argument below is
//     unchanged; cell purity makes the output byte-identical across
//     plan on/off.
//   - Idle workers park on a condition variable. Publication uses a
//     store-buffer-proof handshake: a parking worker registers as a
//     sleeper and then re-checks the push sequence counter; a submitter
//     bumps the counter after the task is visible and then checks for
//     sleepers. Whichever order the two interleave in, one side sees
//     the other, so a wakeup cannot be lost while the signal itself
//     stays off the submission fast path.
//
// Workers resolve their goroutine ID once at startup and thread it
// through scope entry and helping joins (simscope.EnterG/CurrentG), so
// the scheduler's hot paths never pay the runtime.Stack parse behind
// gls.ID.
//
// Tasks may wait on other tasks (an experiment waits on its cells; a
// sweep waits on per-model tasks). A worker that blocks in Wait instead
// helps: it runs other pending tasks until the awaited task completes or
// no runnable work remains. Because waits only ever point from
// experiments toward cells (a DAG) and a helping worker can reach every
// queue, the pool cannot deadlock even at -jobs 1.
//
// # Determinism
//
// Each keyed task runs under its own simscope.Scope whose fault seed is
// the key hash and whose activation snapshot and cycle budget were
// captured at Submit time. Injector streams, fired-fault attribution and
// cycle accounting are therefore functions of the cell key — independent
// of worker count, steal order and submission interleaving.
//
// # Resource recycling
//
// A keyed task's scope is released (simscope.Scope.Release) after the
// task completes and its cycle total has been published. Resource
// layers — the CPU core pool — register reclamation on the scope at
// construction time, so every core a cell builds is recycled exactly
// when the cell can no longer touch it, without the engine knowing what
// a core is.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"spectrebench/internal/cpu"
	"spectrebench/internal/faultinject"
	"spectrebench/internal/gls"
	"spectrebench/internal/simscope"
)

// ErrClosed is returned (via Task.Wait) by tasks submitted to an engine
// that has been closed. A daemon that drains and closes its engine on
// shutdown sees straggler submissions fail with this typed error
// instead of panicking or deadlocking.
var ErrClosed = errors.New("engine: closed")

// SecondLevel is a pluggable second-level cell cache behind the
// in-process memo map — in production, the on-disk content-addressed
// store (internal/store). The engine consults it on every first
// submission of a key and publishes every successfully computed cell
// back to it.
//
// Determinism contract: Get must return exactly what a prior Put stored
// for the key — the cell's value and its simulated-cycle cost — so a
// replayed cell is indistinguishable from a fresh simulation in both
// rendered output and cycle accounting. Implementations must be safe
// for concurrent use by the worker pool and must degrade (miss / drop)
// rather than fail: neither method returns an error.
type SecondLevel interface {
	Get(key Key) (val any, cycles uint64, ok bool)
	Put(key Key, val any, cycles uint64)
}

// Canonicalizer folds a display key down to the canonical key of its
// equivalence class: two keys with the same canonical form are
// guaranteed (by the caller) to denote behaviourally identical cells.
// It must be pure and total — called on the Submit path for every first
// sight of a display key.
type Canonicalizer func(Key) Key

// noPlanDefault / noDedupDefault invert the package defaults so the
// zero value means "enabled": engines constructed by New bucket cells
// by warmup prefix and fold canonical equivalence classes unless the
// CLI ablation flags turned either off before construction.
var (
	noPlanDefault  atomic.Bool
	noDedupDefault atomic.Bool
)

// SetPlanDefault controls whether engines constructed from now on use
// the prefix-locality sweep planner (default on). The CLI's -plan flag
// calls this while parsing flags, before any engine exists.
func SetPlanDefault(on bool) { noPlanDefault.Store(!on) }

// SetDedupDefault controls whether engines constructed from now on fold
// canonical equivalence classes onto shared executions (default on; a
// no-op until a Canonicalizer is installed). The -dedup ablation flag.
func SetDedupDefault(on bool) { noDedupDefault.Store(!on) }

// Key identifies one simulation cell. Two Submits with equal Keys share
// one execution; every field therefore must capture everything the
// cell's result depends on.
type Key struct {
	// Workload names the computation (e.g. "micro/syscall",
	// "lebench/run", "vm/lfs/smallfile").
	Workload string
	// Uarch is the CPU model name.
	Uarch string
	// Config is the canonical encoding of the mitigation configuration
	// (and any other knobs, e.g. the watchdog budget) the cell runs
	// under.
	Config string
	// Seed roots the cell's fault-injection stream (0 when faults are
	// off).
	Seed uint64
}

// Hash folds the key into the 64-bit fault seed for the cell's scope.
// Field boundaries are marked so ("ab","c") and ("a","bc") differ.
func (k Key) Hash() uint64 {
	h := uint64(14695981039346656037)
	step := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		h ^= 0xff
		h *= 1099511628211
	}
	step(k.Workload)
	step(k.Uarch)
	step(k.Config)
	for i := 0; i < 64; i += 8 {
		h ^= (k.Seed >> i) & 0xff
		h *= 1099511628211
	}
	return h
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s/%s/seed=%d", k.Workload, k.Uarch, k.Config, k.Seed)
}

// PanicError is the structured form a panicking task takes. Its Error
// string is deterministic (no goroutine IDs or addresses), so rendered
// output containing it stays byte-identical across runs; the stack is
// preserved separately for debugging.
type PanicError struct {
	// Label names the task ("cell <key>" or the Go label).
	Label string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack at recovery time.
	Stack string
	// FaultPoint names the most recently fired fault-injection point in
	// the task's scope ("" when none fired).
	FaultPoint string
}

func (e *PanicError) Error() string {
	msg := fmt.Sprintf("%s: panic: %v", e.Label, e.Value)
	if e.FaultPoint != "" {
		msg += " [fault-point " + e.FaultPoint + "]"
	}
	return msg
}

// Task is one scheduled unit: a keyed (memoized) cell or an unkeyed
// helper task. Wait may be called any number of times from any
// goroutine.
type Task struct {
	eng   *Engine
	key   Key
	keyed bool
	label string
	fn    func() (any, error)
	// scope is the determinism context the task runs under: a fresh
	// per-cell scope for keyed tasks, the submitter's (shared) scope for
	// unkeyed ones.
	scope *simscope.Scope

	done   chan struct{}
	val    any
	err    error
	cycles uint64 // keyed tasks: simulated cycles attributed to the cell

	// Followers are display-key tasks folded onto this class task; they
	// receive the result when it completes, without a goroutine each.
	fmu       sync.Mutex
	finished  bool
	followers []*Task
}

// finish publishes t's completion: copies the result to every folded
// follower, then closes the done channels. Must be called exactly once,
// and only after val/err/cycles are final. Followers created by a batch
// submission share t's own done channel (they were registered before t
// could finish, so their values are always copied here, before the
// single close); conventional followers have their own channel, closed
// after their copy.
func (t *Task) finish() {
	t.fmu.Lock()
	t.finished = true
	fs := t.followers
	t.followers = nil
	t.fmu.Unlock()
	for _, f := range fs {
		f.val, f.err, f.cycles = t.val, t.err, t.cycles
	}
	close(t.done)
	for _, f := range fs {
		if f.done != t.done {
			close(f.done)
		}
	}
}

// follow registers f to receive t's result; if t already finished the
// result is copied immediately. The close of f.done orders the copies
// before any reader. A follower sharing t's done channel (batch-local
// fold) never reaches the finished branch: it only attaches while t is
// provably unscheduled.
func (t *Task) follow(f *Task) {
	t.fmu.Lock()
	if !t.finished {
		t.followers = append(t.followers, f)
		t.fmu.Unlock()
		return
	}
	t.fmu.Unlock()
	f.val, f.err, f.cycles = t.val, t.err, t.cycles
	if f.done != t.done {
		close(f.done)
	}
}

func (t *Task) describe() string {
	if t.keyed {
		return "cell " + t.key.String()
	}
	return t.label
}

// shard is one lockable task queue: a worker's deque or the global
// injection queue. The owner pushes and pops at the tail; thieves and
// global consumers pop at the head.
type shard struct {
	mu    sync.Mutex
	tasks []*Task
}

func (s *shard) push(t *Task) {
	s.mu.Lock()
	s.tasks = append(s.tasks, t)
	s.mu.Unlock()
}

// popTail removes the newest task (owner side, LIFO).
func (s *shard) popTail() *Task {
	s.mu.Lock()
	n := len(s.tasks)
	if n == 0 {
		s.mu.Unlock()
		return nil
	}
	t := s.tasks[n-1]
	s.tasks[n-1] = nil
	s.tasks = s.tasks[:n-1]
	s.mu.Unlock()
	return t
}

// popHead removes the oldest task (thief/global side, FIFO).
func (s *shard) popHead() *Task {
	s.mu.Lock()
	if len(s.tasks) == 0 {
		s.mu.Unlock()
		return nil
	}
	t := s.tasks[0]
	s.tasks[0] = nil
	s.tasks = s.tasks[1:]
	s.mu.Unlock()
	return t
}

// pbucket is one warmup-prefix bucket of pending keyed tasks. All
// fields are guarded by the owning planner's mutex.
type pbucket struct {
	tasks     []*Task
	queued    bool // in the planner's ready queue
	claimedBy int  // worker index draining this bucket, or -1
}

// pop removes the oldest pending task (submission order).
func (b *pbucket) pop() *Task {
	if len(b.tasks) == 0 {
		return nil
	}
	t := b.tasks[0]
	b.tasks[0] = nil
	b.tasks = b.tasks[1:]
	return t
}

// planner buckets pending cells by shared warmup prefix — (workload,
// uarch), the fields that decide which checkpoints, pooled cores and
// assembled programs a cell can reuse — and hands each worker one
// bucket at a time. A single mutex guards it: operations are O(1)
// appends and pops, and the cells behind them are many orders of
// magnitude heavier.
type planner struct {
	mu      sync.Mutex
	buckets map[string]*pbucket
	order   []*pbucket // creation order, for stealing and draining
	queue   []*pbucket // FIFO of buckets with unclaimed pending work
	claims  []*pbucket // per-worker claimed bucket
}

func newPlanner(jobs int) *planner {
	return &planner{
		buckets: map[string]*pbucket{},
		claims:  make([]*pbucket, jobs),
	}
}

// add enqueues a keyed task into its prefix bucket, making the bucket
// claimable if no worker is already draining it.
func (p *planner) add(t *Task) {
	prefix := t.key.Workload + "\x00" + t.key.Uarch
	p.mu.Lock()
	b := p.buckets[prefix]
	if b == nil {
		b = &pbucket{claimedBy: -1}
		p.buckets[prefix] = b
		p.order = append(p.order, b)
	}
	b.tasks = append(b.tasks, t)
	if !b.queued && b.claimedBy < 0 {
		b.queued = true
		p.queue = append(p.queue, b)
	}
	p.mu.Unlock()
}

// addBatch enqueues a whole slice of keyed tasks under one lock
// acquisition, bucketing each by its prefix exactly as add does. The
// batch submission path uses it so a grid slice becomes one planner
// unit instead of len(ts) lock round-trips.
func (p *planner) addBatch(ts []*Task) {
	p.mu.Lock()
	for _, t := range ts {
		prefix := t.key.Workload + "\x00" + t.key.Uarch
		b := p.buckets[prefix]
		if b == nil {
			b = &pbucket{claimedBy: -1}
			p.buckets[prefix] = b
			p.order = append(p.order, b)
		}
		b.tasks = append(b.tasks, t)
		if !b.queued && b.claimedBy < 0 {
			b.queued = true
			p.queue = append(p.queue, b)
		}
	}
	p.mu.Unlock()
}

// next returns a task for worker w: the next cell of w's claimed bucket
// while it lasts, then the oldest bucket nobody is draining.
func (p *planner) next(w int) *Task {
	p.mu.Lock()
	defer p.mu.Unlock()
	if b := p.claims[w]; b != nil {
		if t := b.pop(); t != nil {
			return t
		}
		// Drained; later adds re-queue the bucket.
		b.claimedBy = -1
		p.claims[w] = nil
	}
	for len(p.queue) > 0 {
		b := p.queue[0]
		p.queue[0] = nil
		p.queue = p.queue[1:]
		b.queued = false
		if len(b.tasks) == 0 || b.claimedBy >= 0 {
			continue
		}
		b.claimedBy = w
		p.claims[w] = b
		return b.pop()
	}
	return nil
}

// steal takes pending work from any bucket, claimed or not — the
// escape hatch that keeps helping waits live: every queued task stays
// reachable from every worker, claimed buckets included.
func (p *planner) steal() *Task {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, b := range p.order {
		if t := b.pop(); t != nil {
			return t
		}
	}
	return nil
}

// drain removes and returns every pending task (the Close path).
func (p *planner) drain() []*Task {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*Task
	for _, b := range p.order {
		for _, t := range b.tasks {
			if t != nil {
				out = append(out, t)
			}
		}
		b.tasks = nil
	}
	return out
}

// Engine is a sharded work-stealing worker pool with a lock-free
// memoizing cell cache.
type Engine struct {
	jobs int

	cache         sync.Map // display Key -> *Task
	classes       sync.Map // canonical Key -> *Task (dedup on + canonicalizer set)
	hits, misses  atomic.Uint64
	classHits     atomic.Uint64 // display first-sights folded onto an existing class
	slHits        atomic.Uint64 // class executions replayed from the second level
	inlineFanouts atomic.Uint64 // class hits resolved inline at submit time (SubmitBatch)
	batchedCells  atomic.Uint64 // cells that entered through SubmitBatch
	dedup         bool          // fixed at construction (SetDedupDefault)

	// canon is the optional display→canonical key mapping (atomic.Value
	// of canonBox). Install with SetCanonicalizer before the first
	// Submit.
	canon atomic.Value

	shards   []shard  // per-worker deques
	global   shard    // injection queue for non-worker submitters
	plan     *planner // prefix-locality cell buckets, nil when -plan=off
	workerOf sync.Map // goroutine ID -> worker index

	// second is the optional second-level cell cache (atomic.Value of
	// secondLevelBox). Install with SetSecondLevel before the first
	// Submit.
	second atomic.Value

	startOnce sync.Once
	closed    atomic.Bool

	// Parking. sleepers is written only under idleMu but read without it
	// on the submission fast path; pushSeq is bumped after every enqueue.
	// See the package doc for the lost-wakeup argument.
	idleMu   sync.Mutex
	cond     *sync.Cond
	sleepers atomic.Int64
	pushSeq  atomic.Uint64
}

// New returns an engine with n workers (n < 1 means GOMAXPROCS). Workers
// start lazily on first submission.
func New(n int) *Engine {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		jobs:   n,
		shards: make([]shard, n),
		dedup:  !noDedupDefault.Load(),
	}
	if !noPlanDefault.Load() {
		e.plan = newPlanner(n)
	}
	e.cond = sync.NewCond(&e.idleMu)
	return e
}

// Jobs returns the worker count.
func (e *Engine) Jobs() int { return e.jobs }

// secondLevelBox wraps a SecondLevel for atomic.Value (which rejects
// bare interface values of varying dynamic type).
type secondLevelBox struct{ sl SecondLevel }

// SetSecondLevel installs sl as the engine's second-level cell cache.
// Call before the first Submit; cells already resolved through the
// first-level memo are not retroactively published.
func (e *Engine) SetSecondLevel(sl SecondLevel) {
	e.second.Store(secondLevelBox{sl})
}

// secondLevel returns the installed second-level cache, or nil.
func (e *Engine) secondLevel() SecondLevel {
	if v := e.second.Load(); v != nil {
		return v.(secondLevelBox).sl
	}
	return nil
}

// canonBox wraps a Canonicalizer for atomic.Value.
type canonBox struct{ fn Canonicalizer }

// SetCanonicalizer installs fn as the engine's display→canonical key
// mapping. Call before the first Submit; keys already resolved through
// the memo are not re-folded. Installing a canonicalizer switches cell
// fault seeds and second-level keys to the canonical key (in both dedup
// modes, so the dedup ablation cannot change a single output byte).
func (e *Engine) SetCanonicalizer(fn Canonicalizer) {
	e.canon.Store(canonBox{fn})
}

// canonicalizer returns the installed key canonicalizer, or nil.
func (e *Engine) canonicalizer() Canonicalizer {
	if v := e.canon.Load(); v != nil {
		return v.(canonBox).fn
	}
	return nil
}

// DedupEnabled reports whether this engine folds equivalence classes.
func (e *Engine) DedupEnabled() bool { return e.dedup }

// PlanEnabled reports whether this engine buckets cells by warmup
// prefix.
func (e *Engine) PlanEnabled() bool { return e.plan != nil }

// Stats returns the cache hit and miss totals: misses is the number of
// distinct cells simulated, hits the number of Submits served from the
// cache. Both depend only on what was submitted, so they are identical
// across worker counts.
func (e *Engine) Stats() (hits, misses uint64) {
	return e.hits.Load(), e.misses.Load()
}

// StatsDetail breaks the cell cache down by level. All counters are
// functions of the submitted key multiset and the installed
// canonicalizer — identical across worker counts and scheduling.
type StatsDetail struct {
	// Hits / Misses are the display-keyed totals of Stats: repeats vs
	// first sights of a display key.
	Hits, Misses uint64
	// ClassHits counts display first-sights folded onto an already
	// scheduled equivalence class (dedup on + canonicalizer installed).
	ClassHits uint64
	// SecondLevelHits counts class executions replayed from the
	// second-level store instead of simulated.
	SecondLevelHits uint64
	// Classes is the number of distinct class executions scheduled or
	// replayed (Misses - ClassHits).
	Classes uint64
	// Simulated is the number of cells actually executed on the pool
	// (Classes - SecondLevelHits).
	Simulated uint64
	// InlineFanouts counts class hits resolved inline at SubmitBatch
	// time — the display key received a finished class's value during
	// submission instead of taking a task/park/wake round-trip. A subset
	// of ClassHits; scheduling-dependent (how many classes are already
	// finished when their followers are submitted varies with timing),
	// so it is reported on stderr//statsz only, never in output.
	InlineFanouts uint64
	// BatchedCells counts cells that entered through SubmitBatch rather
	// than per-cell Submit.
	BatchedCells uint64
}

// String renders the breakdown as the one-line summary `run all -v`
// and gridbench print to stderr.
func (d StatsDetail) String() string {
	s := fmt.Sprintf("cell cache: %d hits, %d misses; %d class hits, %d store hits, %d of %d classes simulated",
		d.Hits, d.Misses, d.ClassHits, d.SecondLevelHits, d.Simulated, d.Classes)
	if d.BatchedCells > 0 {
		s += fmt.Sprintf("; %d batched cells, %d inline fanouts", d.BatchedCells, d.InlineFanouts)
	}
	return s
}

// StatsDetail returns the full cache breakdown (Stats plus dedup-class
// and second-level counters).
func (e *Engine) StatsDetail() StatsDetail {
	d := StatsDetail{
		Hits:            e.hits.Load(),
		Misses:          e.misses.Load(),
		ClassHits:       e.classHits.Load(),
		SecondLevelHits: e.slHits.Load(),
		InlineFanouts:   e.inlineFanouts.Load(),
		BatchedCells:    e.batchedCells.Load(),
	}
	d.Classes = d.Misses - d.ClassHits
	d.Simulated = d.Classes - d.SecondLevelHits
	return d
}

// Sub returns the counter delta d - prev. Every StatsDetail field is a
// monotone counter (the derived Classes/Simulated are differences of
// monotone counters that never go negative per submission), so callers
// bracket a phase with two StatsDetail() reads and Sub to attribute
// simulate-vs-replay work to that phase — how the optimizer reports
// cells simulated against a shared engine/store without a profiler.
func (d StatsDetail) Sub(prev StatsDetail) StatsDetail {
	return StatsDetail{
		Hits:            d.Hits - prev.Hits,
		Misses:          d.Misses - prev.Misses,
		ClassHits:       d.ClassHits - prev.ClassHits,
		SecondLevelHits: d.SecondLevelHits - prev.SecondLevelHits,
		Classes:         d.Classes - prev.Classes,
		Simulated:       d.Simulated - prev.Simulated,
		InlineFanouts:   d.InlineFanouts - prev.InlineFanouts,
		BatchedCells:    d.BatchedCells - prev.BatchedCells,
	}
}

// Submit schedules the cell identified by key, or returns the existing
// task when the key was already submitted. fn must be pure with respect
// to key. The cell's fault seed, activation snapshot and cycle budget
// are fixed here, at submission time, from the submitter's scope.
func (e *Engine) Submit(key Key, fn func() (any, error)) *Task {
	if v, ok := e.cache.Load(key); ok {
		e.hits.Add(1)
		return v.(*Task)
	}
	if e.closed.Load() {
		return e.closedTask("cell " + key.String())
	}
	gid := gls.ID()
	parent := simscope.CurrentG(gid)
	// With a canonicalizer installed, the cell's identity — fault seed,
	// second-level key, profile labels — is its canonical key in BOTH
	// dedup modes, so folding classes cannot change one output byte.
	ckey := key
	cz := e.canonicalizer()
	if cz != nil {
		ckey = cz(key)
	}
	sc := &simscope.Scope{FaultSeed: ckey.Hash()}
	if parent != nil {
		sc.Fault = parent.Fault
		sc.Budget, sc.HasBudget = parent.Budget, parent.HasBudget
		sc.Tag = parent.Tag
	} else {
		// Unmanaged submitter (an experiment invoked directly): capture
		// the globals the scope would otherwise shadow.
		sc.Fault = faultinject.Snapshot()
		sc.Budget, sc.HasBudget = cpu.DefaultCycleBudget(), true
	}
	t := &Task{eng: e, key: ckey, keyed: true, fn: fn, scope: sc, done: make(chan struct{})}
	if v, loaded := e.cache.LoadOrStore(key, t); loaded {
		// Another submitter raced us to the same key; its task is the
		// cell. The scope built above is discarded — it was derived from
		// the canonical key and the same batch-wide activation/budget,
		// so which racer wins is unobservable.
		e.hits.Add(1)
		return v.(*Task)
	}
	// First sight of this display key: always a miss, even when it
	// folds onto an existing class below — the memo statistics stay a
	// function of the submitted key multiset alone.
	e.misses.Add(1)
	if e.dedup && cz != nil {
		if v, loaded := e.classes.LoadOrStore(ckey, t); loaded {
			// The class is already scheduled (or done): this display key
			// becomes a follower of the class task and never runs.
			e.classHits.Add(1)
			v.(*Task).follow(t)
			return t
		}
	}
	// Second-level (store) lookup, keyed canonically. A hit completes
	// the task in place — value and simulated-cycle cost replayed
	// exactly as a fresh run would have produced them — without ever
	// scheduling it. The hit still counts as a first-level miss (see
	// above), so rendered output is byte-identical between cold and
	// warm stores; the store keeps its own hit counters for
	// operational telemetry.
	if sl := e.secondLevel(); sl != nil {
		if val, cycles, ok := sl.Get(ckey); ok {
			e.slHits.Add(1)
			t.val, t.cycles = val, cycles
			t.scope.Release()
			t.finish()
			return t
		}
	}
	e.enqueue(t, gid)
	return t
}

// closedTask returns a pre-completed task carrying ErrClosed.
func (e *Engine) closedTask(label string) *Task {
	t := &Task{eng: e, label: label, err: ErrClosed, done: make(chan struct{})}
	close(t.done)
	return t
}

// Go schedules an unkeyed task (no memoization) that runs under the
// submitter's current scope — the building block for fanning one
// experiment's per-model work across workers while cycle charges and
// fault attribution keep flowing to the experiment.
func (e *Engine) Go(label string, fn func() (any, error)) *Task {
	if e.closed.Load() {
		return e.closedTask(label)
	}
	gid := gls.ID()
	t := &Task{eng: e, label: label, fn: fn, scope: simscope.CurrentG(gid), done: make(chan struct{})}
	e.enqueue(t, gid)
	return t
}

// enqueue places t where its consumer will find it — the planner's
// prefix bucket for keyed cells when planning is on, else the
// submitting worker's own deque (tail = hottest) or the global queue
// for outside submitters — starting the workers on first use and waking
// a parked worker if there is one.
func (e *Engine) enqueue(t *Task, gid uint64) {
	e.startOnce.Do(e.start)
	if e.plan != nil && t.keyed {
		e.plan.add(t)
	} else if w, ok := e.workerOf.Load(gid); ok {
		e.shards[w.(int)].push(t)
	} else {
		e.global.push(t)
	}
	// Publication handshake: the task is visible in its queue before the
	// sequence bump, and the bump happens before the sleeper check.
	e.pushSeq.Add(1)
	if e.sleepers.Load() > 0 {
		e.idleMu.Lock()
		e.cond.Signal()
		e.idleMu.Unlock()
	}
	// A Close that raced this submission may have drained the queues
	// before our push became visible to it; re-checking here closes the
	// window — whichever side runs second sees the other's write and
	// fails the task instead of stranding it.
	if e.closed.Load() {
		e.failPending()
	}
}

func (e *Engine) start() {
	for i := 0; i < e.jobs; i++ {
		go e.worker(i)
	}
}

// dequeue returns a runnable task for worker w: own deque tail first,
// then the worker's claimed prefix bucket (or a fresh claim), then the
// global queue head, the head of any other deque, and finally — the
// liveness escape hatch — a steal from any planner bucket.
func (e *Engine) dequeue(w int) *Task {
	if t := e.shards[w].popTail(); t != nil {
		return t
	}
	if e.plan != nil {
		if t := e.plan.next(w); t != nil {
			return t
		}
	}
	if t := e.global.popHead(); t != nil {
		return t
	}
	for i := 1; i < len(e.shards); i++ {
		if t := e.shards[(w+i)%len(e.shards)].popHead(); t != nil {
			return t
		}
	}
	if e.plan != nil {
		if t := e.plan.steal(); t != nil {
			return t
		}
	}
	return nil
}

func (e *Engine) worker(idx int) {
	id := gls.ID()
	e.workerOf.Store(id, idx)
	for {
		// Sample the push sequence before scanning: a task enqueued
		// after the scan passed its shard bumps the sequence, which the
		// parking check below observes.
		seq := e.pushSeq.Load()
		if t := e.dequeue(idx); t != nil {
			e.run(t, id)
			continue
		}
		if e.closed.Load() {
			e.workerOf.Delete(id)
			return
		}
		e.idleMu.Lock()
		e.sleepers.Add(1)
		if e.pushSeq.Load() == seq && !e.closed.Load() {
			e.cond.Wait()
		}
		e.sleepers.Add(-1)
		e.idleMu.Unlock()
	}
}

// run executes t under its scope (entering nil shadows any scope the
// helping worker happened to be carrying) and publishes the result. gid
// is the calling goroutine's ID, resolved once by the caller. A keyed
// task's scope is released afterwards, returning the cell's pooled
// resources.
func (e *Engine) run(t *Task, gid uint64) {
	restore := simscope.EnterG(gid, t.scope)
	body := func() {
		defer func() {
			if r := recover(); r != nil {
				pe := &PanicError{
					Label: t.describe(),
					Value: r,
					Stack: string(debug.Stack()),
				}
				if p, ok := t.scope.LastFired(); ok {
					pe.FaultPoint = faultinject.Point(p).String()
				}
				t.err = pe
			}
		}()
		t.val, t.err = t.fn()
	}
	if t.keyed {
		// Attribute profile samples to the cell: with many cells
		// interleaving on the worker pool, a flat -cpuprofile can only
		// say "StepBlock is hot"; the labels say which workload on which
		// microarchitecture under which configuration owns the samples
		// (pprof -tagfocus / the sample label view).
		pprof.Do(context.Background(), pprof.Labels(
			"workload", t.key.Workload,
			"uarch", t.key.Uarch,
			"config", t.key.Config,
		), func(context.Context) { body() })
	} else {
		body()
	}
	restore()
	if t.keyed {
		t.cycles = t.scope.Cycles()
	}
	t.finish()
	if t.keyed {
		// The cell owns its scope; unkeyed tasks borrow the submitter's.
		t.scope.Release()
		// Publish the freshly computed cell to the second-level store.
		// Only clean successes are stored: errors, panics and
		// watchdog-stopped cells must re-run next time.
		if t.err == nil && t.val != nil {
			if sl := e.secondLevel(); sl != nil {
				sl.Put(t.key, t.val, t.cycles)
			}
		}
	}
}

// Wait blocks until the task completes and returns its value and error.
// A worker that waits helps: it runs other pending tasks rather than
// idling, which is what keeps -jobs 1 live when an experiment task
// blocks on its own cells. For keyed tasks, the cell's simulated cycles
// are charged to the waiter's current scope on every Wait — each
// requester pays for the cell as if it had simulated it, exactly as the
// serial engine-less code did, and the sum is independent of execution
// order.
func (t *Task) Wait() (any, error) {
	return t.WaitG(gls.ID())
}

// WaitG is Wait for a caller that drains many tasks from one goroutine:
// it takes the caller's gls.ID so the goroutine identity is parsed once
// per drain loop instead of once per task — on a full-grid sweep that
// parse is the single largest per-cell cost. Semantics are identical to
// Wait; gid must be the calling goroutine's own ID.
func (t *Task) WaitG(gid uint64) (any, error) {
	select {
	case <-t.done:
	default:
		if w, ok := t.eng.workerOf.Load(gid); ok {
			t.eng.help(t, w.(int), gid)
		}
		<-t.done
	}
	if t.keyed {
		simscope.CurrentG(gid).AddCycles(t.cycles)
	}
	return t.val, t.err
}

// help runs pending tasks on worker w until t completes or nothing is
// runnable (t is then in flight on some other worker; the caller
// blocks).
func (e *Engine) help(t *Task, w int, gid uint64) {
	for {
		select {
		case <-t.done:
			return
		default:
		}
		nt := e.dequeue(w)
		if nt == nil {
			return
		}
		e.run(nt, gid)
	}
}

// Close shuts the worker pool down: workers exit once their queues are
// empty, and any task still queued (or submitted afterwards) completes
// with ErrClosed instead of being stranded — Wait never deadlocks
// across a Close. Idempotent, so a daemon's shutdown path can call it
// unconditionally. Call after draining for clean results; tasks failed
// by Close report ErrClosed, they are not cancelled mid-run.
func (e *Engine) Close() {
	if !e.closed.CompareAndSwap(false, true) {
		return
	}
	e.idleMu.Lock()
	e.cond.Broadcast()
	e.idleMu.Unlock()
	e.failPending()
}

// failPending drains every queue and completes the drained tasks with
// ErrClosed. Pops are mutually exclusive with the workers', so a task
// is either run once or failed once, never both.
func (e *Engine) failPending() {
	fail := func(t *Task) {
		t.err = ErrClosed
		t.finish()
		if t.keyed {
			t.scope.Release()
		}
	}
	for t := e.global.popHead(); t != nil; t = e.global.popHead() {
		fail(t)
	}
	for i := range e.shards {
		for t := e.shards[i].popHead(); t != nil; t = e.shards[i].popHead() {
			fail(t)
		}
	}
	if e.plan != nil {
		for _, t := range e.plan.drain() {
			fail(t)
		}
	}
}

// The process-default engine, used by any managed run that does not
// carry an explicit engine. Size it with SetDefaultJobs before first
// use.
var (
	defaultMu     sync.Mutex
	defaultEngine *Engine
	defaultJobs   int
)

// SetDefaultJobs fixes the worker count of the process-default engine.
// It must be called before the first Default call (the CLI does so while
// parsing flags); afterwards it has no effect.
func SetDefaultJobs(n int) {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultEngine == nil {
		defaultJobs = n
	}
}

// Default returns the lazily constructed process-default engine.
func Default() *Engine {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultEngine == nil {
		defaultEngine = New(defaultJobs)
	}
	return defaultEngine
}

// CloseDefault closes the process-default engine if it has been
// constructed. The closed engine stays installed: later Default()
// callers get an engine whose submissions fail with ErrClosed — the
// deterministic daemon-shutdown behaviour — rather than a fresh pool
// resurrecting behind the shutdown path's back. Idempotent.
func CloseDefault() {
	defaultMu.Lock()
	e := defaultEngine
	defaultMu.Unlock()
	if e != nil {
		e.Close()
	}
}
