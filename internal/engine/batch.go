// Batch submission: the replay & fan-out fast path.
//
// Submit pays a fixed per-cell toll — a scope allocation, a
// second-level Get, a planner lock round-trip, a wakeup check — that
// dominates once the cells themselves are cheap (a warm store replays a
// cell in microseconds; a folded follower never runs at all). For
// full-grid sweeps, where the caller holds the whole slice of cells up
// front, SubmitBatch amortizes the toll across the slice:
//
//   - One planner unit. All leaders enqueue under a single planner lock
//     acquisition, one push-sequence bump and one wakeup broadcast,
//     instead of len(cells) of each.
//   - Inline fan-out. A display key whose canonical class has already
//     finished receives the class value during submission — a struct
//     copy against a pre-closed channel — instead of allocating a done
//     channel and registering as a follower. On warm sweeps this is the
//     common case for every cell after the first of its class.
//   - Batched replay. Class leaders look the second level up through
//     one GetBatch call (stores that implement BatchSecondLevel sort
//     the reads for locality under one index lock) instead of
//     independent Gets.
//   - Deferred scopes. A cell's simscope is only allocated once the
//     cell is known to need simulating; memo hits, folds and store
//     replays allocate none.
//
// Counter contract: Hits/Misses/ClassHits/SecondLevelHits are computed
// exactly as the per-cell Submit path computes them — functions of the
// submitted key multiset alone — so `-batch on|off` cannot change a
// rendered byte. InlineFanouts/BatchedCells are batch-only telemetry.
package engine

import (
	"context"
	"runtime/pprof"

	"spectrebench/internal/cpu"
	"spectrebench/internal/faultinject"
	"spectrebench/internal/gls"
	"spectrebench/internal/simscope"
)

// BatchCell is one cell of a SubmitBatch call: a display key and the
// function that simulates it (pure with respect to the key, exactly as
// for Submit).
type BatchCell struct {
	Key Key
	Fn  func() (any, error)
}

// BatchGet is one result of a BatchSecondLevel.GetBatch lookup,
// positionally matching the requested key slice.
type BatchGet struct {
	Val    any
	Cycles uint64
	OK     bool
}

// BatchSecondLevel is an optional SecondLevel extension: a store that
// can resolve many keys in one call (one index lock, reads sorted for
// locality). SubmitBatch uses it for the class leaders of a batch;
// stores without it are consulted key by key.
type BatchSecondLevel interface {
	SecondLevel
	GetBatch(keys []Key) []BatchGet
}

// LinkRecorder is an optional SecondLevel extension: a store keeping a
// display→canonical sidecar index receives every display-key fold the
// engine performs, so a future process can resolve display keys it has
// never canonicalized. Implementations must tolerate duplicates and
// must not fail (degrade silently, like Put).
type LinkRecorder interface {
	PutLink(display, canonical Key)
}

// LinkPair is one display→canonical fold of a batch.
type LinkPair struct {
	Display, Canonical Key
}

// BatchLinkRecorder is an optional LinkRecorder extension: a store
// that can ingest a batch's folds in one call (one writer lock instead
// of one per aliased cell). SubmitBatch accumulates its folds and
// flushes them through it; recorders without it are fed pair by pair.
type BatchLinkRecorder interface {
	LinkRecorder
	PutLinkBatch(pairs []LinkPair)
}

// closedChan is the shared pre-closed done channel of tasks that are
// complete at construction time (inline fan-outs). Waiters fall through
// the select immediately; nothing ever closes it again.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// snapshot returns t's result if it has finished. The fmu acquisition
// orders the val/err/cycles writes (made before finish took the lock)
// before the reads.
func (t *Task) snapshot() (val any, err error, cycles uint64, finished bool) {
	t.fmu.Lock()
	defer t.fmu.Unlock()
	return t.val, t.err, t.cycles, t.finished
}

// SubmitBatch schedules every cell of the slice and returns their
// tasks in input order. It is equivalent to calling Submit per cell —
// same tasks, same memo/class/store counters, same determinism
// contract (fault seed, activation snapshot and cycle budget captured
// from the submitter's scope at submission time) — but amortizes the
// per-cell submission cost; see the package comment at the top of this
// file. Never returns nil tasks: a closed engine yields pre-failed
// ErrClosed tasks exactly as Submit does.
func (e *Engine) SubmitBatch(cells []BatchCell) []*Task {
	out := make([]*Task, len(cells))
	pprof.Do(context.Background(), pprof.Labels("engine", "submit-batch"), func(context.Context) {
		e.submitBatch(cells, out)
	})
	return out
}

func (e *Engine) submitBatch(cells []BatchCell, out []*Task) {
	e.batchedCells.Add(uint64(len(cells)))
	cz := e.canonicalizer()
	sl := e.secondLevel()
	bsl, _ := sl.(BatchSecondLevel)
	links, _ := sl.(LinkRecorder)
	blinks, _ := sl.(BatchLinkRecorder)
	// Folds are accumulated and flushed once after the loop: links are
	// duplicate-tolerant hints, so deferring them is unobservable, and a
	// cold full-grid sweep records one per aliased cell.
	var folds []LinkPair
	gid := gls.ID()
	parent := simscope.CurrentG(gid)

	// leaders are the first sights of their class this engine has not
	// resolved yet: they go through the second level, and the misses
	// simulate. All the batch's tasks come out of one slab — a full-grid
	// batch otherwise pays len(cells) individual allocations.
	var leaders []*Task
	slab := make([]Task, len(cells))
	// inBatch tracks the class leaders created by THIS call. They are
	// provably unscheduled until enqueueBatch at the bottom (no scope, in
	// no queue), so their followers can share the leader's done channel —
	// no per-follower channel allocation, no snapshot lock — and finish()
	// is guaranteed to copy their values before its single close.
	var inBatch map[Key]*Task
	if e.dedup && cz != nil {
		// Sized to the expected class count of a highly-deduped grid
		// (~1 class per 32 cells): growing a map to thousands of
		// entries from zero costs several rehashes of string keys.
		inBatch = make(map[Key]*Task, 16+len(cells)/32)
	}
	for i, c := range cells {
		if v, ok := e.cache.Load(c.Key); ok {
			e.hits.Add(1)
			out[i] = v.(*Task)
			continue
		}
		if e.closed.Load() {
			out[i] = e.closedTask("cell " + c.Key.String())
			continue
		}
		ckey := c.Key
		if cz != nil {
			ckey = cz(c.Key)
		}
		if e.dedup && cz != nil {
			if lead, ok := inBatch[ckey]; ok {
				// Batch-local fold: the leader cannot finish before
				// enqueueBatch, so the follower shares its done channel.
				t := &slab[i]
				t.eng, t.key, t.keyed, t.done = e, ckey, true, lead.done
				if old, loaded := e.cache.LoadOrStore(c.Key, t); loaded {
					e.hits.Add(1)
					out[i] = old.(*Task)
					continue
				}
				e.misses.Add(1)
				e.classHits.Add(1)
				if links != nil && ckey != c.Key {
					folds = append(folds, LinkPair{Display: c.Key, Canonical: ckey})
				}
				lead.follow(t)
				out[i] = t
				continue
			}
			if v, ok := e.classes.Load(ckey); ok {
				ct := v.(*Task)
				if val, err, cyc, fin := ct.snapshot(); fin {
					// Inline fan-out: the class already finished, so the
					// display key's task is born complete — value copied
					// here, done channel shared and pre-closed, no
					// follower registration, no wakeup.
					t := &slab[i]
					t.eng, t.key, t.keyed = e, ckey, true
					t.val, t.err, t.cycles, t.finished, t.done = val, err, cyc, true, closedChan
					if old, loaded := e.cache.LoadOrStore(c.Key, t); loaded {
						e.hits.Add(1)
						out[i] = old.(*Task)
						continue
					}
					e.misses.Add(1)
					e.classHits.Add(1)
					e.inlineFanouts.Add(1)
					if links != nil && ckey != c.Key {
						folds = append(folds, LinkPair{Display: c.Key, Canonical: ckey})
					}
					out[i] = t
					continue
				}
				// Class scheduled by an earlier submission and still
				// running: a conventional follower, as Submit would create.
				t := &slab[i]
				t.eng, t.key, t.keyed, t.done = e, ckey, true, make(chan struct{})
				if old, loaded := e.cache.LoadOrStore(c.Key, t); loaded {
					e.hits.Add(1)
					out[i] = old.(*Task)
					continue
				}
				e.misses.Add(1)
				e.classHits.Add(1)
				if links != nil && ckey != c.Key {
					folds = append(folds, LinkPair{Display: c.Key, Canonical: ckey})
				}
				ct.follow(t)
				out[i] = t
				continue
			}
		}
		// First sight of the class (or dedup off): candidate leader. The
		// scope is allocated later, only if the cell survives the store
		// lookup and actually needs simulating.
		t := &slab[i]
		t.eng, t.key, t.keyed, t.fn, t.done = e, ckey, true, c.Fn, make(chan struct{})
		if old, loaded := e.cache.LoadOrStore(c.Key, t); loaded {
			e.hits.Add(1)
			out[i] = old.(*Task)
			continue
		}
		e.misses.Add(1)
		if e.dedup && cz != nil {
			if v, loaded := e.classes.LoadOrStore(ckey, t); loaded {
				// Raced with a concurrent submitter of the same class.
				e.classHits.Add(1)
				if links != nil && ckey != c.Key {
					folds = append(folds, LinkPair{Display: c.Key, Canonical: ckey})
				}
				v.(*Task).follow(t)
				out[i] = t
				continue
			}
			inBatch[ckey] = t
		}
		if links != nil && ckey != c.Key {
			folds = append(folds, LinkPair{Display: c.Key, Canonical: ckey})
		}
		out[i] = t
		leaders = append(leaders, t)
	}

	if len(folds) > 0 {
		if blinks != nil {
			blinks.PutLinkBatch(folds)
		} else {
			for _, p := range folds {
				links.PutLink(p.Display, p.Canonical)
			}
		}
	}

	// Batched second-level replay for the class leaders. A hit completes
	// the task in place, exactly as Submit's inline store hit does; the
	// publication via cache/classes LoadOrStore above ordered the task's
	// fields, and finish() publishes the result to any follower that
	// attached meanwhile.
	if len(leaders) > 0 && sl != nil {
		keys := make([]Key, len(leaders))
		for i, t := range leaders {
			keys[i] = t.key
		}
		var got []BatchGet
		if bsl != nil {
			got = bsl.GetBatch(keys)
		} else {
			got = make([]BatchGet, len(keys))
			for i, k := range keys {
				v, cyc, ok := sl.Get(k)
				got[i] = BatchGet{Val: v, Cycles: cyc, OK: ok}
			}
		}
		live := leaders[:0]
		for i, t := range leaders {
			if i < len(got) && got[i].OK {
				e.slHits.Add(1)
				t.val, t.cycles = got[i].Val, got[i].Cycles
				t.finish()
				continue
			}
			live = append(live, t)
		}
		leaders = live
	}

	// The survivors simulate: allocate their determinism scopes (fault
	// seed = canonical key hash, activation/budget from the submitter's
	// scope — identical to Submit) and enqueue them as one planner unit.
	for _, t := range leaders {
		sc := &simscope.Scope{FaultSeed: t.key.Hash()}
		if parent != nil {
			sc.Fault = parent.Fault
			sc.Budget, sc.HasBudget = parent.Budget, parent.HasBudget
			sc.Tag = parent.Tag
		} else {
			sc.Fault = faultinject.Snapshot()
			sc.Budget, sc.HasBudget = cpu.DefaultCycleBudget(), true
		}
		t.scope = sc
	}
	e.enqueueBatch(leaders, gid)
}

// BatchGo is one unkeyed task of a GoBatch call.
type BatchGo struct {
	Label string
	Fn    func() (any, error)
}

// GoBatch schedules a slice of unkeyed tasks — all under the
// submitter's current scope, exactly as Go — with one queue lock
// acquisition and one wakeup instead of per-task rounds. The harness
// uses it to enqueue a whole supervised batch's experiments at once.
func (e *Engine) GoBatch(items []BatchGo) []*Task {
	out := make([]*Task, len(items))
	if e.closed.Load() {
		for i := range items {
			out[i] = e.closedTask(items[i].Label)
		}
		return out
	}
	gid := gls.ID()
	sc := simscope.CurrentG(gid)
	for i, it := range items {
		out[i] = &Task{eng: e, label: it.Label, fn: it.Fn, scope: sc, done: make(chan struct{})}
	}
	e.enqueueBatch(out, gid)
	return out
}

// pushAll appends a slice of tasks under one lock acquisition.
func (s *shard) pushAll(ts []*Task) {
	s.mu.Lock()
	s.tasks = append(s.tasks, ts...)
	s.mu.Unlock()
}

// enqueueBatch is enqueue for a slice: tasks land in their queues under
// one lock acquisition per destination, then one publication bump and
// one broadcast wake the pool. The same closed-engine re-check as
// enqueue closes the Close race.
func (e *Engine) enqueueBatch(ts []*Task, gid uint64) {
	if len(ts) == 0 {
		return
	}
	e.startOnce.Do(e.start)
	direct := ts
	if e.plan != nil {
		var planned []*Task
		direct = nil
		for _, t := range ts {
			if t.keyed {
				planned = append(planned, t)
			} else {
				direct = append(direct, t)
			}
		}
		if len(planned) > 0 {
			e.plan.addBatch(planned)
		}
	}
	if len(direct) > 0 {
		if w, ok := e.workerOf.Load(gid); ok {
			e.shards[w.(int)].pushAll(direct)
		} else {
			e.global.pushAll(direct)
		}
	}
	e.pushSeq.Add(1)
	if e.sleepers.Load() > 0 {
		e.idleMu.Lock()
		e.cond.Broadcast()
		e.idleMu.Unlock()
	}
	if e.closed.Load() {
		e.failPending()
	}
}
