// Package fs implements a small log-structured file system (after
// Rosenblum & Ousterhout's LFS, whose smallfile/largefile benchmarks the
// paper runs against an emulated disk, §4.4). All writes append to a
// log; an in-memory inode map locates the latest version of each inode,
// and a checkpoint block makes the volume remountable.
package fs

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// BlockSize is the filesystem block size (matches the emulated disk).
const BlockSize = 4096

// BlockDevice is the storage a volume lives on.
type BlockDevice interface {
	Read(block int, buf []byte) error
	Write(block int, buf []byte) error
	Blocks() int
}

// Layout:
//
//	block 0:   checkpoint (magic, log head, inode map)
//	block 1+:  the log — data blocks and inode blocks, appended in order
const (
	checkpointBlock = 0
	logStart        = 1
	magic           = 0x4c_46_53_31 // "LFS1"

	// maxFileBlocks bounds direct block pointers per inode.
	maxFileBlocks = 512
	// maxName bounds directory entry names.
	maxName = 64
)

// ErrNotFound is returned for missing files.
var ErrNotFound = errors.New("fs: file not found")

// ErrNoSpace is returned when the log reaches the end of the device.
var ErrNoSpace = errors.New("fs: device full")

// inode is the on-disk file metadata.
type inode struct {
	size   uint64
	blocks []uint32 // log block numbers of the data
}

// FS is a mounted volume.
type FS struct {
	dev     BlockDevice
	logHead uint32
	// imap: inode number → log block holding the latest inode.
	imap map[uint32]uint32
	// dir: the single root directory, name → inode number.
	dir       map[string]uint32
	nextInode uint32

	// Stats.
	Appends     uint64
	Checkpoints uint64
}

// Format initialises an empty volume on dev and returns it mounted.
func Format(dev BlockDevice) (*FS, error) {
	if dev.Blocks() < 8 {
		return nil, errors.New("fs: device too small")
	}
	f := &FS{
		dev:       dev,
		logHead:   logStart,
		imap:      make(map[uint32]uint32),
		dir:       make(map[string]uint32),
		nextInode: 1,
	}
	if err := f.checkpoint(); err != nil {
		return nil, err
	}
	return f, nil
}

// Mount loads an existing volume from dev.
func Mount(dev BlockDevice) (*FS, error) {
	buf := make([]byte, BlockSize)
	if err := dev.Read(checkpointBlock, buf); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(buf[0:]) != magic {
		return nil, errors.New("fs: bad magic (not formatted?)")
	}
	f := &FS{
		dev:  dev,
		imap: make(map[uint32]uint32),
		dir:  make(map[string]uint32),
	}
	f.logHead = binary.LittleEndian.Uint32(buf[4:])
	f.nextInode = binary.LittleEndian.Uint32(buf[8:])
	n := int(binary.LittleEndian.Uint32(buf[12:]))
	off := 16
	for i := 0; i < n; i++ {
		ino := binary.LittleEndian.Uint32(buf[off:])
		blk := binary.LittleEndian.Uint32(buf[off+4:])
		nameLen := int(buf[off+8])
		if off+9+nameLen > BlockSize {
			return nil, errors.New("fs: corrupt checkpoint")
		}
		name := string(buf[off+9 : off+9+nameLen])
		f.imap[ino] = blk
		f.dir[name] = ino
		off += 9 + nameLen
	}
	return f, nil
}

// checkpoint persists the log head, directory and inode map.
func (f *FS) checkpoint() error {
	buf := make([]byte, BlockSize)
	binary.LittleEndian.PutUint32(buf[0:], magic)
	binary.LittleEndian.PutUint32(buf[4:], f.logHead)
	binary.LittleEndian.PutUint32(buf[8:], f.nextInode)
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(f.dir)))
	off := 16
	for name, ino := range f.dir {
		if len(name) > maxName {
			return fmt.Errorf("fs: name %q too long", name)
		}
		if off+9+len(name) > BlockSize {
			return errors.New("fs: checkpoint overflow (too many files)")
		}
		binary.LittleEndian.PutUint32(buf[off:], ino)
		binary.LittleEndian.PutUint32(buf[off+4:], f.imap[ino])
		buf[off+8] = byte(len(name))
		copy(buf[off+9:], name)
		off += 9 + len(name)
	}
	f.Checkpoints++
	return f.dev.Write(checkpointBlock, buf)
}

// appendBlock writes one block at the log head.
func (f *FS) appendBlock(buf []byte) (uint32, error) {
	if int(f.logHead) >= f.dev.Blocks() {
		return 0, ErrNoSpace
	}
	blk := f.logHead
	if err := f.dev.Write(int(blk), buf); err != nil {
		return 0, err
	}
	f.logHead++
	f.Appends++
	return blk, nil
}

// writeInode serialises an inode into the log and updates the imap.
func (f *FS) writeInode(ino uint32, nd *inode) error {
	if len(nd.blocks) > maxFileBlocks {
		return fmt.Errorf("fs: file too large (%d blocks)", len(nd.blocks))
	}
	buf := make([]byte, BlockSize)
	binary.LittleEndian.PutUint64(buf[0:], nd.size)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(nd.blocks)))
	for i, b := range nd.blocks {
		binary.LittleEndian.PutUint32(buf[12+4*i:], b)
	}
	blk, err := f.appendBlock(buf)
	if err != nil {
		return err
	}
	f.imap[ino] = blk
	return nil
}

// readInode loads the latest version of an inode.
func (f *FS) readInode(ino uint32) (*inode, error) {
	blk, ok := f.imap[ino]
	if !ok {
		return nil, ErrNotFound
	}
	buf := make([]byte, BlockSize)
	if err := f.dev.Read(int(blk), buf); err != nil {
		return nil, err
	}
	nd := &inode{size: binary.LittleEndian.Uint64(buf[0:])}
	n := binary.LittleEndian.Uint32(buf[8:])
	if n > maxFileBlocks {
		return nil, errors.New("fs: corrupt inode")
	}
	nd.blocks = make([]uint32, n)
	for i := range nd.blocks {
		nd.blocks[i] = binary.LittleEndian.Uint32(buf[12+4*i:])
	}
	return nd, nil
}

// Create makes (or truncates) a file and returns a handle.
func (f *FS) Create(name string) (*File, error) {
	ino, exists := f.dir[name]
	if !exists {
		ino = f.nextInode
		f.nextInode++
		f.dir[name] = ino
	}
	nd := &inode{}
	if err := f.writeInode(ino, nd); err != nil {
		return nil, err
	}
	if err := f.checkpoint(); err != nil {
		return nil, err
	}
	return &File{fs: f, ino: ino, nd: nd}, nil
}

// Open returns a handle to an existing file.
func (f *FS) Open(name string) (*File, error) {
	ino, ok := f.dir[name]
	if !ok {
		return nil, ErrNotFound
	}
	nd, err := f.readInode(ino)
	if err != nil {
		return nil, err
	}
	return &File{fs: f, ino: ino, nd: nd}, nil
}

// Remove deletes a file (its log blocks become garbage for a cleaner
// this volume does not need).
func (f *FS) Remove(name string) error {
	ino, ok := f.dir[name]
	if !ok {
		return ErrNotFound
	}
	delete(f.dir, name)
	delete(f.imap, ino)
	return f.checkpoint()
}

// List returns the directory's file names.
func (f *FS) List() []string {
	out := make([]string, 0, len(f.dir))
	for name := range f.dir {
		out = append(out, name)
	}
	return out
}

// File is an open file handle with write-back buffering: writes
// accumulate in memory until Sync (or Close) appends them to the log —
// the page-cache behaviour that keeps §4.4's VM-exit rates in the tens
// of thousands per second rather than one per write().
type File struct {
	fs    *FS
	ino   uint32
	nd    *inode
	dirty map[int][]byte // block index → pending contents
}

// Size returns the file's current size.
func (fl *File) Size() uint64 { return fl.nd.size }

// WriteAt writes data at the given offset (extending the file).
func (fl *File) WriteAt(off int64, data []byte) (int, error) {
	if fl.dirty == nil {
		fl.dirty = make(map[int][]byte)
	}
	written := 0
	for len(data) > 0 {
		bi := int(off / BlockSize)
		if bi >= maxFileBlocks {
			return written, fmt.Errorf("fs: file too large")
		}
		bo := int(off % BlockSize)
		blk, err := fl.blockForWrite(bi)
		if err != nil {
			return written, err
		}
		n := copy(blk[bo:], data)
		data = data[n:]
		off += int64(n)
		written += n
		if uint64(off) > fl.nd.size {
			fl.nd.size = uint64(off)
		}
	}
	return written, nil
}

// blockForWrite returns the mutable pending buffer for block index bi,
// reading existing contents when the write is partial. Block pointer 0
// is the null pointer (block 0 holds the checkpoint): such entries are
// holes and read as zeros.
func (fl *File) blockForWrite(bi int) ([]byte, error) {
	if b, ok := fl.dirty[bi]; ok {
		return b, nil
	}
	b := make([]byte, BlockSize)
	if bi < len(fl.nd.blocks) && fl.nd.blocks[bi] != 0 {
		if err := fl.fs.dev.Read(int(fl.nd.blocks[bi]), b); err != nil {
			return nil, err
		}
	}
	fl.dirty[bi] = b
	return b, nil
}

// ReadAt reads up to len(buf) bytes from the offset; short reads happen
// at end of file. Pending (unsynced) writes are visible.
func (fl *File) ReadAt(off int64, buf []byte) (int, error) {
	if off < 0 || uint64(off) >= fl.nd.size {
		return 0, nil
	}
	max := fl.nd.size - uint64(off)
	if uint64(len(buf)) > max {
		buf = buf[:max]
	}
	read := 0
	tmp := make([]byte, BlockSize)
	for len(buf) > 0 {
		bi := int(off / BlockSize)
		bo := int(off % BlockSize)
		var src []byte
		if b, ok := fl.dirty[bi]; ok {
			src = b
		} else if bi < len(fl.nd.blocks) && fl.nd.blocks[bi] != 0 {
			if err := fl.fs.dev.Read(int(fl.nd.blocks[bi]), tmp); err != nil {
				return read, err
			}
			src = tmp
		} else {
			src = make([]byte, BlockSize) // hole (pointer 0 = null)
		}
		n := copy(buf, src[bo:])
		buf = buf[n:]
		off += int64(n)
		read += n
	}
	return read, nil
}

// Sync appends dirty blocks and the inode to the log, then checkpoints.
func (fl *File) Sync() error {
	if len(fl.dirty) == 0 {
		return nil
	}
	// Grow the block table to cover the file size.
	needed := int((fl.nd.size + BlockSize - 1) / BlockSize)
	for len(fl.nd.blocks) < needed {
		fl.nd.blocks = append(fl.nd.blocks, 0)
	}
	// Deterministic flush order.
	for bi := 0; bi < needed; bi++ {
		b, ok := fl.dirty[bi]
		if !ok {
			continue
		}
		blk, err := fl.fs.appendBlock(b)
		if err != nil {
			return err
		}
		fl.nd.blocks[bi] = blk
	}
	fl.dirty = nil
	if err := fl.fs.writeInode(fl.ino, fl.nd); err != nil {
		return err
	}
	return fl.fs.checkpoint()
}

// Close syncs and releases the handle.
func (fl *File) Close() error { return fl.Sync() }
