package fs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

// memDev is an in-memory block device for tests.
type memDev struct {
	blocks [][]byte
}

func newMemDev(n int) *memDev { return &memDev{blocks: make([][]byte, n)} }

func (d *memDev) Blocks() int { return len(d.blocks) }

func (d *memDev) Read(n int, buf []byte) error {
	if n < 0 || n >= len(d.blocks) {
		return fmt.Errorf("read oob %d", n)
	}
	if d.blocks[n] == nil {
		for i := range buf {
			buf[i] = 0
		}
		return nil
	}
	copy(buf, d.blocks[n])
	return nil
}

func (d *memDev) Write(n int, buf []byte) error {
	if n < 0 || n >= len(d.blocks) {
		return fmt.Errorf("write oob %d", n)
	}
	if d.blocks[n] == nil {
		d.blocks[n] = make([]byte, BlockSize)
	}
	copy(d.blocks[n], buf)
	return nil
}

func TestFormatCreateWriteRead(t *testing.T) {
	f, err := Format(newMemDev(256))
	if err != nil {
		t.Fatal(err)
	}
	fl, err := f.Create("hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the quick brown fox")
	if n, err := fl.WriteAt(0, data); err != nil || n != len(data) {
		t.Fatalf("write: %d %v", n, err)
	}
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}

	fl2, err := f.Open("hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if n, err := fl2.ReadAt(0, got); err != nil || n != len(data) {
		t.Fatalf("read: %d %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("read %q, want %q", got, data)
	}
	if fl2.Size() != uint64(len(data)) {
		t.Errorf("size = %d", fl2.Size())
	}
}

func TestUnsyncedWritesVisible(t *testing.T) {
	f, _ := Format(newMemDev(64))
	fl, _ := f.Create("x")
	fl.WriteAt(0, []byte("abc"))
	got := make([]byte, 3)
	if n, _ := fl.ReadAt(0, got); n != 3 || string(got) != "abc" {
		t.Errorf("pending read = %q (%d)", got, n)
	}
}

func TestMultiBlockFile(t *testing.T) {
	f, _ := Format(newMemDev(256))
	fl, _ := f.Create("big")
	data := make([]byte, 3*BlockSize+100)
	for i := range data {
		data[i] = byte(i * 13)
	}
	if _, err := fl.WriteAt(0, data); err != nil {
		t.Fatal(err)
	}
	if err := fl.Sync(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	n, err := fl.ReadAt(0, got)
	if err != nil || n != len(data) {
		t.Fatalf("read %d %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Error("multi-block contents differ")
	}
	// Partial mid-file read.
	part := make([]byte, 200)
	fl.ReadAt(int64(BlockSize-50), part)
	if !bytes.Equal(part, data[BlockSize-50:BlockSize+150]) {
		t.Error("mid-file read differs")
	}
}

func TestOverwriteMiddle(t *testing.T) {
	f, _ := Format(newMemDev(256))
	fl, _ := f.Create("ow")
	fl.WriteAt(0, bytes.Repeat([]byte{0xaa}, 2*BlockSize))
	fl.Sync()
	fl.WriteAt(100, []byte("patch"))
	fl.Sync()
	got := make([]byte, 2*BlockSize)
	fl.ReadAt(0, got)
	if string(got[100:105]) != "patch" {
		t.Error("overwrite lost")
	}
	if got[99] != 0xaa || got[105] != 0xaa {
		t.Error("overwrite damaged neighbours")
	}
}

func TestMountPersistence(t *testing.T) {
	dev := newMemDev(256)
	f, _ := Format(dev)
	fl, _ := f.Create("persist")
	fl.WriteAt(0, []byte("durable data"))
	fl.Close()
	f.Create("second")

	// Remount from the raw device.
	g, err := Mount(dev)
	if err != nil {
		t.Fatal(err)
	}
	names := g.List()
	if len(names) != 2 {
		t.Fatalf("list = %v", names)
	}
	fl2, err := g.Open("persist")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 12)
	fl2.ReadAt(0, got)
	if string(got) != "durable data" {
		t.Errorf("after mount: %q", got)
	}
}

func TestMountBadMagic(t *testing.T) {
	if _, err := Mount(newMemDev(64)); err == nil {
		t.Fatal("mounted unformatted device")
	}
}

func TestRemove(t *testing.T) {
	f, _ := Format(newMemDev(128))
	fl, _ := f.Create("gone")
	fl.Close()
	if err := f.Remove("gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Open("gone"); !errors.Is(err, ErrNotFound) {
		t.Errorf("open removed file: %v", err)
	}
	if err := f.Remove("gone"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double remove: %v", err)
	}
}

func TestDeviceFull(t *testing.T) {
	f, _ := Format(newMemDev(10))
	for i := 0; ; i++ {
		if i > 100 {
			t.Fatal("device never filled")
		}
		fl, err := f.Create(fmt.Sprintf("f%d", i))
		if err != nil {
			if !errors.Is(err, ErrNoSpace) {
				t.Fatalf("unexpected error: %v", err)
			}
			return
		}
		fl.WriteAt(0, make([]byte, BlockSize))
		if err := fl.Sync(); err != nil {
			if !errors.Is(err, ErrNoSpace) {
				t.Fatalf("unexpected error: %v", err)
			}
			return
		}
	}
}

func TestReadPastEOF(t *testing.T) {
	f, _ := Format(newMemDev(64))
	fl, _ := f.Create("short")
	fl.WriteAt(0, []byte("hi"))
	buf := make([]byte, 10)
	n, err := fl.ReadAt(5, buf)
	if err != nil || n != 0 {
		t.Errorf("read past EOF: %d %v", n, err)
	}
	n, _ = fl.ReadAt(1, buf)
	if n != 1 || buf[0] != 'i' {
		t.Errorf("tail read: %d %q", n, buf[:n])
	}
}

// Property: random (offset, data) writes followed by a full read match a
// shadow byte slice.
func TestWriteReadProperty(t *testing.T) {
	f, _ := Format(newMemDev(2048))
	fl, _ := f.Create("prop")
	shadow := make([]byte, 8*BlockSize)
	var size int

	check := func(off uint16, raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 1024 {
			raw = raw[:1024]
		}
		o := int(off) % (7 * BlockSize)
		if _, err := fl.WriteAt(int64(o), raw); err != nil {
			return false
		}
		copy(shadow[o:], raw)
		if o+len(raw) > size {
			size = o + len(raw)
		}
		got := make([]byte, size)
		n, err := fl.ReadAt(0, got)
		if err != nil || n != size {
			return false
		}
		return bytes.Equal(got, shadow[:size])
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
	// And after a sync + remount-level reload the contents still match.
	if err := fl.Sync(); err != nil {
		t.Fatal(err)
	}
	fl2, err := f.Open("prop")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, size)
	fl2.ReadAt(0, got)
	if !bytes.Equal(got, shadow[:size]) {
		t.Error("contents differ after sync/reopen")
	}
}

// Regression: a file whose first blocks are holes (write starts past
// block 0) must read zeros for the holes after Sync — block pointer 0
// is the null pointer, not the checkpoint block.
func TestHolesBelowFirstWriteSurviveSync(t *testing.T) {
	f, _ := Format(newMemDev(128))
	fl, _ := f.Create("holey")
	data := []byte("tail data")
	off := int64(3 * BlockSize)
	if _, err := fl.WriteAt(off, data); err != nil {
		t.Fatal(err)
	}
	if err := fl.Sync(); err != nil {
		t.Fatal(err)
	}
	fl2, err := f.Open("holey")
	if err != nil {
		t.Fatal(err)
	}
	head := make([]byte, 2*BlockSize)
	if _, err := fl2.ReadAt(0, head); err != nil {
		t.Fatal(err)
	}
	for i, b := range head {
		if b != 0 {
			t.Fatalf("hole byte %d = %#x, want 0 (leaked checkpoint block?)", i, b)
		}
	}
	tail := make([]byte, len(data))
	fl2.ReadAt(off, tail)
	if string(tail) != string(data) {
		t.Errorf("tail = %q", tail)
	}
	// Writing into a former hole must not resurrect stale bytes either.
	if _, err := fl2.WriteAt(10, []byte("x")); err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 20)
	fl2.ReadAt(0, one)
	for i, b := range one {
		switch {
		case i == 10 && b != 'x':
			t.Errorf("patched byte = %#x", b)
		case i != 10 && b != 0:
			t.Errorf("byte %d = %#x, want 0", i, b)
		}
	}
}
