// v3 record layout, sidecar link index, open-time manifest, batched
// reads, and the one-shot v2→v3 migration.
//
// # v3 records
//
// A v3 segment carries the same outer frame as v2 — magic, CRC32,
// payload length — under the magic "SBS3". What changed is the payload:
// v2 gob-encodes (key, cycles, value) as one stream, which costs a
// reflective encode on every Put and a reflective decode on every warm
// Get. The v3 payload is a fixed binary header plus raw bytes:
//
//	offset  size  field
//	------  ----  ---------------------------------------------
//	+0      1     payload version (3)
//	+1      1     value codec (see vcodec* constants)
//	+2      4     len(key.Workload), big endian
//	+6      4     len(key.Uarch)
//	+10     4     len(key.Config)
//	+14     8     key.Seed
//	+22     8     cycles
//	+30     4     len(value bytes)
//	+34     ...   workload | uarch | config | value bytes
//
// The value bytes are codec-tagged per record: float64 cells — the
// entire gridbench workload — store 8 raw bytes (vcodecFloat64);
// anything else stores a self-contained gob stream (vcodecGob); records
// carried forward by migration store the original v1/v2 gob triple
// untouched (vcodecGobTriple), so migration never decodes a value it
// might not have a registered type for. Key and cycles are readable
// with four slice indexes — the open scan and warm Gets never touch
// gob unless the value itself needs it.
//
// # Sidecar link index
//
// Under canonical dedup the engine folds many display keys onto one
// canonical class, and PR 9 keys segment records by the canonical key
// only — one simulated payload per class. The display→canonical folds
// are persisted as hints in side-NNNNNN.log files next to the
// segments, so a later process can replay a display cell it has never
// canonicalized itself. Links are deliberately compact: canonical keys
// are interned once per side file ('C' record: u32 id + full key), and
// each fold is a 'L' record of the display key's 128-bit fingerprint
// plus the u32 canonical id — ~21 bytes per display cell instead of
// the full config string (which runs to hundreds of bytes). Records
// buffer in memory and flush in CRC-framed chunks; a torn or corrupt
// chunk tail is simply ignored at open. Losing links is harmless — the
// engine re-derives the fold and re-records it — and a fingerprint
// collision (two display keys sharing 128 bits) is past the 2^-64
// probability of concern.
//
// # Manifest
//
// segments/MANIFEST is one CRC-framed record listing every sealed
// segment — name, byte size, dead-record count, and each live record's
// key/cycles/offset — written at rotation and Close. An open whose
// sealed segments stat to exactly the manifest's sizes indexes them
// straight from it without reading the logs; any mismatch (crash,
// self-heal rewrite, compaction) falls back to the full scan of that
// segment. The current (unsealed) segment is always scanned.
//
// # v2 → v3 migration
//
// Opening a v2-layout store under the v3 codec migrates it exactly
// once: the v2 scan machinery runs first (torn tails truncated,
// corrupt spans quarantined — quarantine/ lives outside segments/ and
// is preserved), then every live record is re-framed as a v3
// vcodecGobTriple record into a fresh segments.v3/ directory, fsynced,
// and swapped in: segments → segments.v2old, segments.v3 → segments,
// remove segments.v2old. Each rename is atomic, so every crash window
// leaves a state finishSwap recognises and settles on the next open.
// The legacy v2 codec (Options.Codec "v2") never migrates and refuses
// a v3 directory with ErrCodecMismatch.
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"spectrebench/internal/engine"
)

var (
	magicV3       = [4]byte{'S', 'B', 'S', '3'} // v3 segment record frame
	magicSide     = [4]byte{'S', 'B', 'L', '3'} // sidecar chunk frame
	magicManifest = [4]byte{'S', 'B', 'M', '3'} // manifest frame
)

// Value codecs (payload byte 1).
const (
	// vcodecGobTriple: the value bytes are a complete v1/v2 payload —
	// gob(key) gob(cycles) gob(value) — carried whole by migration so
	// the value is never re-encoded.
	vcodecGobTriple = 0
	// vcodecFloat64: 8 raw big-endian bits. The float64 cell values of
	// grid sweeps skip gob entirely.
	vcodecFloat64 = 1
	// vcodecGob: a self-contained gob stream of the interface-wrapped
	// value, for the rare non-float64 cell types.
	vcodecGob = 2
)

const (
	v3HeaderLen  = 34 // fixed payload header before the strings
	sidePrefix   = "side-"
	manifestName = "MANIFEST"
	// sideFlushBytes flushes the sidecar buffer once it grows past
	// this; the background flusher and Close drain the remainder.
	sideFlushBytes = 64 << 10
)

// encodeV3Payload lays out the v3 payload for key/cycles with
// already-encoded value bytes under the given value codec.
func encodeV3Payload(key engine.Key, cycles uint64, vcodec byte, valBytes []byte) []byte {
	buf := make([]byte, v3HeaderLen+len(key.Workload)+len(key.Uarch)+len(key.Config)+len(valBytes))
	buf[0] = 3
	buf[1] = vcodec
	binary.BigEndian.PutUint32(buf[2:6], uint32(len(key.Workload)))
	binary.BigEndian.PutUint32(buf[6:10], uint32(len(key.Uarch)))
	binary.BigEndian.PutUint32(buf[10:14], uint32(len(key.Config)))
	binary.BigEndian.PutUint64(buf[14:22], key.Seed)
	binary.BigEndian.PutUint64(buf[22:30], cycles)
	binary.BigEndian.PutUint32(buf[30:34], uint32(len(valBytes)))
	off := v3HeaderLen
	off += copy(buf[off:], key.Workload)
	off += copy(buf[off:], key.Uarch)
	off += copy(buf[off:], key.Config)
	copy(buf[off:], valBytes)
	return buf
}

// encodeV3Record encodes a fresh (key, cycles, val) put as a v3
// payload, choosing the cheapest value codec for the concrete type.
func encodeV3Record(key engine.Key, cycles uint64, val any) ([]byte, error) {
	if f, ok := val.(float64); ok {
		var vb [8]byte
		binary.BigEndian.PutUint64(vb[:], math.Float64bits(f))
		return encodeV3Payload(key, cycles, vcodecFloat64, vb[:]), nil
	}
	var vbuf bytes.Buffer
	if err := gob.NewEncoder(&vbuf).Encode(&val); err != nil {
		return nil, err
	}
	return encodeV3Payload(key, cycles, vcodecGob, vbuf.Bytes()), nil
}

// parseV3Payload validates the fixed header and string lengths of a v3
// payload, returning the key, cycles, value codec and value bytes. The
// caller has already CRC-verified the payload.
func parseV3Payload(payload []byte) (key engine.Key, cycles uint64, vcodec byte, valBytes []byte, err error) {
	if len(payload) < v3HeaderLen {
		return key, 0, 0, nil, fmt.Errorf("v3 payload truncated (%d bytes)", len(payload))
	}
	if payload[0] != 3 {
		return key, 0, 0, nil, fmt.Errorf("v3 payload version %d", payload[0])
	}
	vcodec = payload[1]
	if vcodec > vcodecGob {
		return key, 0, 0, nil, fmt.Errorf("unknown value codec %d", vcodec)
	}
	wlen := binary.BigEndian.Uint32(payload[2:6])
	ulen := binary.BigEndian.Uint32(payload[6:10])
	clen := binary.BigEndian.Uint32(payload[10:14])
	vlen := binary.BigEndian.Uint32(payload[30:34])
	if uint64(v3HeaderLen)+uint64(wlen)+uint64(ulen)+uint64(clen)+uint64(vlen) != uint64(len(payload)) {
		return key, 0, 0, nil, fmt.Errorf("v3 payload length %d, header says %d",
			len(payload), uint64(v3HeaderLen)+uint64(wlen)+uint64(ulen)+uint64(clen)+uint64(vlen))
	}
	off := uint32(v3HeaderLen)
	key.Workload = string(payload[off : off+wlen])
	off += wlen
	key.Uarch = string(payload[off : off+ulen])
	off += ulen
	key.Config = string(payload[off : off+clen])
	off += clen
	key.Seed = binary.BigEndian.Uint64(payload[14:22])
	cycles = binary.BigEndian.Uint64(payload[22:30])
	return key, cycles, vcodec, payload[off:], nil
}

// parseRecordV3 validates the v3 record framed at data[off:] — the v3
// counterpart of parseRecord, same frame, binary payload header instead
// of gob.
func parseRecordV3(data []byte, off int) (key engine.Key, cycles uint64, plen uint32, n int, err error) {
	if len(data)-off < headerLen {
		return key, 0, 0, 0, errTorn
	}
	if !bytes.Equal(data[off:off+4], magicV3[:]) {
		return key, 0, 0, 0, fmt.Errorf("bad magic %q", data[off:off+4])
	}
	wantCRC := binary.BigEndian.Uint32(data[off+4 : off+8])
	plen = binary.BigEndian.Uint32(data[off+8 : off+12])
	if uint64(len(data)-off-headerLen) < uint64(plen) {
		return key, 0, 0, 0, errTorn
	}
	payload := data[off+headerLen : off+headerLen+int(plen)]
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return key, 0, 0, 0, fmt.Errorf("checksum mismatch (stored %08x, computed %08x)", wantCRC, got)
	}
	if key, cycles, _, _, err = parseV3Payload(payload); err != nil {
		return key, 0, 0, 0, err
	}
	return key, cycles, plen, headerLen + int(plen), nil
}

// decodeRecordV3 re-validates the framed record bytes and decodes the
// value, checking the embedded key against the one the index promised.
func decodeRecordV3(raw []byte, want engine.Key) (val any, cycles uint64, err error) {
	key, cycles, _, _, err := parseRecordV3(raw, 0)
	if err != nil {
		return nil, 0, err
	}
	if key != want {
		return nil, 0, fmt.Errorf("record holds key %v", key)
	}
	_, _, vcodec, valBytes, err := parseV3Payload(raw[headerLen:])
	if err != nil {
		return nil, 0, err
	}
	switch vcodec {
	case vcodecFloat64:
		if len(valBytes) != 8 {
			return nil, 0, fmt.Errorf("float64 value is %d bytes", len(valBytes))
		}
		return math.Float64frombits(binary.BigEndian.Uint64(valBytes)), cycles, nil
	case vcodecGob:
		dec := gob.NewDecoder(bytes.NewReader(valBytes))
		if derr := dec.Decode(&val); derr != nil {
			return nil, 0, fmt.Errorf("value decode: %w", derr)
		}
		return val, cycles, nil
	default: // vcodecGobTriple: the original v1/v2 gob stream, whole
		dec := gob.NewDecoder(bytes.NewReader(valBytes))
		var k engine.Key
		var c uint64
		if derr := dec.Decode(&k); derr != nil {
			return nil, 0, fmt.Errorf("key decode: %w", derr)
		}
		if derr := dec.Decode(&c); derr != nil {
			return nil, 0, fmt.Errorf("cycles decode: %w", derr)
		}
		if k != want {
			return nil, 0, fmt.Errorf("migrated record holds key %v", k)
		}
		if derr := dec.Decode(&val); derr != nil {
			return nil, 0, fmt.Errorf("value decode: %w", derr)
		}
		return val, cycles, nil
	}
}

// fingerprint folds a key into the 128-bit sidecar link address: the
// engine's 64-bit FNV fold plus a second fold under different FNV
// constants, so the two halves fail independently.
func fingerprint(k engine.Key) [2]uint64 {
	h := uint64(0xcbf29ce484222325) // FNV-1a 64 offset, different walk
	step := func(s string) {
		for i := len(s) - 1; i >= 0; i-- { // reversed: independent of Hash
			h ^= uint64(s[i])
			h *= 0x100000001b3
		}
		h ^= 0xfe
		h *= 0x100000001b3
	}
	step(k.Config)
	step(k.Uarch)
	step(k.Workload)
	for i := 0; i < 64; i += 8 {
		h ^= (k.Seed >> i) & 0xff
		h *= 0x100000001b3
	}
	return [2]uint64{k.Hash(), h}
}

// ---------------------------------------------------------------------
// Format sniffing and the v2→v3 migration.

// sniffSegments classifies the record format of the segments directory
// by the leading magic of each segment log: 2, 3, or 0 for a directory
// with no records to judge. Mixed formats are refused — no crash window
// of the migration can produce them.
func (s *Store) sniffSegments() (int, error) {
	entries, err := os.ReadDir(s.segDir)
	if err != nil {
		return 0, fmt.Errorf("store: sniff: %w", err)
	}
	ver := 0
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segExt) {
			continue
		}
		var head [4]byte
		f, err := os.Open(filepath.Join(s.segDir, name))
		if err != nil {
			return 0, fmt.Errorf("store: sniff %s: %w", name, err)
		}
		n, _ := f.Read(head[:])
		f.Close()
		if n < 4 {
			continue // empty or sub-header torn tail; the scan handles it
		}
		var this int
		switch {
		case bytes.Equal(head[:], magic[:]):
			this = 2
		case bytes.Equal(head[:], magicV3[:]):
			this = 3
		default:
			continue // corrupt leading record; the scan quarantines it
		}
		if ver != 0 && ver != this {
			return 0, fmt.Errorf("%w (dir %s)", ErrMixedSegments, s.segDir)
		}
		ver = this
	}
	return ver, nil
}

// finishSwap settles any crash window of a previous migration's
// directory swap, before the segments directory is touched. The swap
// protocol (build segments.v3 → rename segments to segments.v2old →
// rename segments.v3 to segments → remove segments.v2old) makes every
// interrupted state recognisable:
//
//   - segments.v3 present alongside segments: the build was cut short —
//     segments is still authoritative; remove the debris and re-migrate.
//   - segments absent, segments.v3 present: both were complete and the
//     first rename happened; finish the second.
//   - segments.v2old present alongside segments: everything but the
//     final remove happened; remove it.
//   - segments absent, only segments.v2old present: roll the first
//     rename back (cannot arise from the protocol — the build precedes
//     the renames — but restores service if segments.v3 was lost).
func (s *Store) finishSwap() error {
	v3dir := s.segDir + ".v3"
	olddir := s.segDir + ".v2old"
	segsExists := dirExists(s.segDir)
	if !segsExists && dirExists(v3dir) {
		if err := os.Rename(v3dir, s.segDir); err != nil {
			return fmt.Errorf("store: finish migration swap: %w", err)
		}
		s.logf("store: finished interrupted v2->v3 migration swap")
		segsExists = true
	}
	if segsExists && dirExists(v3dir) {
		os.RemoveAll(v3dir)
		s.logf("store: removed incomplete migration build %s", filepath.Base(v3dir))
	}
	if dirExists(olddir) {
		if segsExists {
			os.RemoveAll(olddir)
		} else if err := os.Rename(olddir, s.segDir); err != nil {
			return fmt.Errorf("store: restore pre-migration segments: %w", err)
		}
	}
	return nil
}

func dirExists(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

// migrateV2 rebuilds a v2-layout segments directory in the v3 record
// format, exactly once. The v2 recovery scan runs first — under the v2
// codec, with all its repairs (torn tails, quarantined spans, segment
// rewrites) — then every live record's gob-triple payload is re-framed
// as a v3 vcodecGobTriple record (values never decoded) into
// segments.v3/, fsynced, and atomically swapped in. Only runs from
// Open, before any concurrent access exists.
func (s *Store) migrateV2() error {
	s.codec = CodecV2
	err := s.recoverScan()
	s.codec = CodecV3
	if err != nil {
		return err
	}

	v3dir := s.segDir + ".v3"
	os.RemoveAll(v3dir)
	if err := os.MkdirAll(v3dir, 0o777); err != nil {
		return fmt.Errorf("store: migrate v2: %w", err)
	}

	// Stable record order: walk segments by sequence, records by offset,
	// so repeated migrations of identical stores build identical files.
	type liveRec struct {
		key engine.Key
		r   ref
	}
	bySeg := map[*segment][]liveRec{}
	for k, r := range s.index {
		bySeg[r.seg] = append(bySeg[r.seg], liveRec{key: k, r: r})
	}

	var (
		out     *os.File
		outSize int64
		outSeq  uint64
		written []string
	)
	nextOut := func() error {
		if out != nil {
			if !s.opts.NoSync {
				if err := out.Sync(); err != nil {
					return err
				}
			}
			if err := out.Close(); err != nil {
				return err
			}
		}
		outSeq++
		name := fmt.Sprintf("%s%06d%s", segPrefix, outSeq, segExt)
		f, err := os.OpenFile(filepath.Join(v3dir, name), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o666)
		if err != nil {
			return err
		}
		out, outSize = f, 0
		written = append(written, name)
		return nil
	}
	if err := nextOut(); err != nil {
		return fmt.Errorf("store: migrate v2: %w", err)
	}
	for _, seg := range s.segs {
		recs := bySeg[seg]
		sort.Slice(recs, func(i, j int) bool { return recs[i].r.off < recs[j].r.off })
		for _, lr := range recs {
			raw := make([]byte, headerLen+int(lr.r.plen))
			if _, err := seg.f.ReadAt(raw, lr.r.off); err != nil {
				return fmt.Errorf("store: migrate v2: read %s@%d: %w", seg.name, lr.r.off, err)
			}
			if _, _, _, _, err := parseRecord(raw, 0); err != nil {
				// Rot between the scan and this read: quarantine and move
				// on, exactly as a Get self-heal would.
				s.quarantineBytes(fmt.Sprintf("%s@%d", seg.name, lr.r.off), raw)
				s.quarantined.Add(1)
				s.logf("store: migrate v2: quarantined record %s@%d: %v", seg.name, lr.r.off, err)
				continue
			}
			payload := encodeV3Payload(lr.key, lr.r.cycles, vcodecGobTriple, raw[headerLen:])
			frame := make([]byte, headerLen+len(payload))
			copy(frame, magicV3[:])
			binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
			binary.BigEndian.PutUint32(frame[8:12], uint32(len(payload)))
			copy(frame[headerLen:], payload)
			if outSize >= segMaxBytes {
				if err := nextOut(); err != nil {
					return fmt.Errorf("store: migrate v2: %w", err)
				}
			}
			if _, err := out.WriteAt(frame, outSize); err != nil {
				return fmt.Errorf("store: migrate v2: %w", err)
			}
			outSize += int64(len(frame))
			s.migratedV2++
		}
	}
	if !s.opts.NoSync {
		if err := out.Sync(); err != nil {
			return fmt.Errorf("store: migrate v2: %w", err)
		}
	}
	if err := out.Close(); err != nil {
		return fmt.Errorf("store: migrate v2: %w", err)
	}
	if !s.opts.NoSync {
		if err := syncDir(v3dir); err != nil {
			return fmt.Errorf("store: migrate v2: %w", err)
		}
	}

	// The swap. Each rename is atomic; finishSwap settles any crash
	// between them on the next open.
	for _, seg := range s.segs {
		seg.f.Close()
	}
	s.segs = nil
	s.index = map[engine.Key]ref{}
	olddir := s.segDir + ".v2old"
	if err := os.Rename(s.segDir, olddir); err != nil {
		return fmt.Errorf("store: migrate v2: %w", err)
	}
	if err := os.Rename(v3dir, s.segDir); err != nil {
		return fmt.Errorf("store: migrate v2: %w", err)
	}
	os.RemoveAll(olddir)
	s.logf("store: migrated %d v2 records to the v3 layout (%d segments)", s.migratedV2, len(written))
	return nil
}

func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ---------------------------------------------------------------------
// Manifest: skip-scan index for sealed segments.

// manifestRec is one live record in a manifest entry.
type manifestRec struct {
	key    engine.Key
	cycles uint64
	off    int64
	plen   uint32
}

// manifestSeg is one sealed segment's manifest entry. size gates its
// use: a stat mismatch at open means the file changed since the
// manifest was written (self-heal rewrite, compaction, crash) and the
// segment is scanned instead.
type manifestSeg struct {
	size int64
	dead int
	recs []manifestRec
}

// loadManifest reads segments/MANIFEST. Any damage — torn frame, bad
// CRC, short payload — yields nil: the manifest is an optimization, the
// scan is the authority.
func (s *Store) loadManifest() map[string]manifestSeg {
	if s.codec != CodecV3 {
		return nil
	}
	raw, err := os.ReadFile(filepath.Join(s.segDir, manifestName))
	if err != nil || len(raw) < headerLen || !bytes.Equal(raw[:4], magicManifest[:]) {
		return nil
	}
	wantCRC := binary.BigEndian.Uint32(raw[4:8])
	plen := binary.BigEndian.Uint32(raw[8:12])
	if uint64(len(raw)-headerLen) < uint64(plen) {
		return nil
	}
	payload := raw[headerLen : headerLen+int(plen)]
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil
	}
	r := bytes.NewReader(payload)
	readU32 := func() uint32 { var v uint32; binary.Read(r, binary.BigEndian, &v); return v }
	readU64 := func() uint64 { var v uint64; binary.Read(r, binary.BigEndian, &v); return v }
	readStr := func() string {
		n := readU32()
		if uint64(n) > uint64(r.Len()) {
			return ""
		}
		b := make([]byte, n)
		r.Read(b)
		return string(b)
	}
	m := map[string]manifestSeg{}
	nsegs := readU32()
	for i := uint32(0); i < nsegs && r.Len() > 0; i++ {
		name := readStr()
		ms := manifestSeg{size: int64(readU64()), dead: int(readU32())}
		nrecs := readU32()
		for j := uint32(0); j < nrecs && r.Len() > 0; j++ {
			var rec manifestRec
			rec.key.Workload = readStr()
			rec.key.Uarch = readStr()
			rec.key.Config = readStr()
			rec.key.Seed = readU64()
			rec.cycles = readU64()
			rec.off = int64(readU64())
			rec.plen = readU32()
			ms.recs = append(ms.recs, rec)
		}
		m[name] = ms
	}
	if r.Len() != 0 {
		return nil // trailing garbage: distrust the whole manifest
	}
	return m
}

// indexFromManifest indexes one sealed segment straight from its
// manifest entry, if the file on disk still stats to the manifest's
// size. Returns false to fall back to a scan.
func (s *Store) indexFromManifest(name string, m manifestSeg) bool {
	path := filepath.Join(s.segDir, name)
	fi, err := os.Stat(path)
	if err != nil || fi.Size() != m.size {
		return false
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o666)
	if err != nil {
		return false
	}
	seg := &segment{seq: segSeq(name), name: name, f: f, size: m.size, dead: m.dead}
	for _, rec := range m.recs {
		if _, dup := s.index[rec.key]; dup {
			seg.dead++
			continue
		}
		s.index[rec.key] = ref{seg: seg, off: rec.off, plen: rec.plen, cycles: rec.cycles}
		seg.live++
	}
	s.segs = append(s.segs, seg)
	s.manifestSegs++
	return true
}

// writeManifestLocked rewrites segments/MANIFEST from the sealed
// segments' live records (tmp + rename; the current segment is always
// scanned at open and never listed). Failures are logged, never fatal —
// a missing manifest only costs the next open a scan. Caller holds wmu.
func (s *Store) writeManifestLocked() {
	if s.codec != CodecV3 || len(s.segs) == 0 {
		return
	}
	sealed := s.segs[:len(s.segs)-1]
	var payload bytes.Buffer
	w32 := func(v uint32) { binary.Write(&payload, binary.BigEndian, v) }
	w64 := func(v uint64) { binary.Write(&payload, binary.BigEndian, v) }
	wstr := func(str string) { w32(uint32(len(str))); payload.WriteString(str) }

	s.mu.RLock()
	bySeg := map[*segment][]manifestRec{}
	for k, r := range s.index {
		bySeg[r.seg] = append(bySeg[r.seg], manifestRec{key: k, cycles: r.cycles, off: r.off, plen: r.plen})
	}
	w32(uint32(len(sealed)))
	for _, seg := range sealed {
		recs := bySeg[seg]
		sort.Slice(recs, func(i, j int) bool { return recs[i].off < recs[j].off })
		wstr(seg.name)
		w64(uint64(seg.size))
		w32(uint32(seg.dead))
		w32(uint32(len(recs)))
		for _, rec := range recs {
			wstr(rec.key.Workload)
			wstr(rec.key.Uarch)
			wstr(rec.key.Config)
			w64(rec.key.Seed)
			w64(rec.cycles)
			w64(uint64(rec.off))
			w32(rec.plen)
		}
	}
	s.mu.RUnlock()

	frame := make([]byte, headerLen+payload.Len())
	copy(frame, magicManifest[:])
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload.Bytes()))
	binary.BigEndian.PutUint32(frame[8:12], uint32(payload.Len()))
	copy(frame[headerLen:], payload.Bytes())

	path := filepath.Join(s.segDir, manifestName)
	tmp := path + tmpExt
	if err := os.WriteFile(tmp, frame, 0o666); err != nil {
		s.logf("store: manifest write: %v", err)
		return
	}
	if !s.opts.NoSync {
		if err := syncFile(tmp); err != nil {
			s.logf("store: manifest sync: %v", err)
			os.Remove(tmp)
			return
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		s.logf("store: manifest rename: %v", err)
	}
}

// ---------------------------------------------------------------------
// Sidecar: the display→canonical link log.

// scanSideLogs loads every side-*.log into the in-memory link map.
// Side files are CRC-framed chunks of 'C' (canonical-key intern) and
// 'L' (fingerprint→canonical-id link) records; intern ids are local to
// their file. A torn or corrupt chunk ends that file's useful prefix —
// links are hints, so the loss is silent by design. The writer always
// starts a fresh file above the highest existing sequence.
func (s *Store) scanSideLogs() error {
	entries, err := os.ReadDir(s.segDir)
	if err != nil {
		return fmt.Errorf("store: side scan: %w", err)
	}
	var names []string
	var maxSeq uint64
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasPrefix(name, sidePrefix) || !strings.HasSuffix(name, segExt) {
			continue
		}
		names = append(names, name)
		var seq uint64
		fmt.Sscanf(name, sidePrefix+"%d"+segExt, &seq)
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	sort.Strings(names)
	for _, name := range names {
		raw, err := os.ReadFile(filepath.Join(s.segDir, name))
		if err != nil {
			return fmt.Errorf("store: side scan %s: %w", name, err)
		}
		s.loadSideChunks(name, raw)
	}
	s.sideName = fmt.Sprintf("%s%06d%s", sidePrefix, maxSeq+1, segExt)
	return nil
}

// loadSideChunks parses one side file's chunk sequence into s.links.
func (s *Store) loadSideChunks(name string, raw []byte) {
	var canon []engine.Key // intern table, ids local to this file
	off := 0
	for off < len(raw) {
		if len(raw)-off < headerLen || !bytes.Equal(raw[off:off+4], magicSide[:]) {
			break
		}
		wantCRC := binary.BigEndian.Uint32(raw[off+4 : off+8])
		plen := binary.BigEndian.Uint32(raw[off+8 : off+12])
		if uint64(len(raw)-off-headerLen) < uint64(plen) {
			break // torn chunk tail: crash debris, ignore
		}
		chunk := raw[off+headerLen : off+headerLen+int(plen)]
		if crc32.ChecksumIEEE(chunk) != wantCRC {
			s.logf("store: %s: ignoring corrupt sidecar chunk at offset %d", name, off)
			break
		}
		if !s.parseSideChunk(chunk, &canon) {
			s.logf("store: %s: malformed sidecar chunk at offset %d", name, off)
			break
		}
		off += headerLen + int(plen)
	}
}

// parseSideChunk applies one CRC-verified chunk's records. Returns
// false on a malformed record (the chunk is then abandoned).
func (s *Store) parseSideChunk(chunk []byte, canon *[]engine.Key) bool {
	off := 0
	for off < len(chunk) {
		switch chunk[off] {
		case 'C':
			if len(chunk)-off < 1+4+4+4+4+8 {
				return false
			}
			id := binary.BigEndian.Uint32(chunk[off+1 : off+5])
			wlen := binary.BigEndian.Uint32(chunk[off+5 : off+9])
			ulen := binary.BigEndian.Uint32(chunk[off+9 : off+13])
			clen := binary.BigEndian.Uint32(chunk[off+13 : off+17])
			end := uint64(off) + 1 + 16 + 8 + uint64(wlen) + uint64(ulen) + uint64(clen)
			if end > uint64(len(chunk)) || uint64(id) != uint64(len(*canon)) {
				return false
			}
			p := off + 17
			var k engine.Key
			k.Workload = string(chunk[p : p+int(wlen)])
			p += int(wlen)
			k.Uarch = string(chunk[p : p+int(ulen)])
			p += int(ulen)
			k.Config = string(chunk[p : p+int(clen)])
			p += int(clen)
			k.Seed = binary.BigEndian.Uint64(chunk[p : p+8])
			*canon = append(*canon, k)
			off = int(end)
		case 'L':
			if len(chunk)-off < 1+16+4 {
				return false
			}
			var fp [2]uint64
			fp[0] = binary.BigEndian.Uint64(chunk[off+1 : off+9])
			fp[1] = binary.BigEndian.Uint64(chunk[off+9 : off+17])
			id := binary.BigEndian.Uint32(chunk[off+17 : off+21])
			if uint64(id) >= uint64(len(*canon)) {
				return false
			}
			s.links[fp] = (*canon)[id]
			off += 21
		default:
			return false
		}
	}
	return true
}

// PutLink records the engine's display→canonical fold of a pair of
// keys (engine.LinkRecorder): the in-memory link map serves this
// process, the buffered side-log append serves the next one. Never
// fails; duplicate folds are dropped early.
func (s *Store) PutLink(display, canonical engine.Key) {
	if s.codec != CodecV3 || s.closed.Load() || display == canonical {
		return
	}
	fp := fingerprint(display)
	s.mu.RLock()
	_, dup := s.links[fp]
	s.mu.RUnlock()
	if dup {
		return
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.closed.Load() {
		return
	}
	s.putLinkLocked(fp, canonical)
}

// PutLinkBatch records a slice of display→canonical folds under one
// writer round-trip (engine.BatchLinkRecorder) — a cold deduplicated
// full-grid sweep records one link per aliased cell, and per-link lock
// acquisitions are measurable at that volume. Semantically identical
// to calling PutLink per pair.
func (s *Store) PutLinkBatch(pairs []engine.LinkPair) {
	if s.codec != CodecV3 || s.closed.Load() || len(pairs) == 0 {
		return
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.closed.Load() {
		return
	}
	for _, p := range pairs {
		if p.Display == p.Canonical {
			continue
		}
		s.putLinkLocked(fingerprint(p.Display), p.Canonical)
	}
}

// putLinkLocked is the shared core of PutLink and PutLinkBatch: link
// map insert, canonical-key interning and side-log append. Caller
// holds wmu.
func (s *Store) putLinkLocked(fp [2]uint64, canonical engine.Key) {
	s.mu.Lock()
	if _, dup := s.links[fp]; dup {
		s.mu.Unlock()
		return
	}
	s.links[fp] = canonical
	s.mu.Unlock()

	id, known := s.canonIDs[canonical]
	if !known {
		id = uint32(len(s.canonByID))
		s.canonIDs[canonical] = id
		s.canonByID = append(s.canonByID, canonical)
		var hdr [17]byte
		hdr[0] = 'C'
		binary.BigEndian.PutUint32(hdr[1:5], id)
		binary.BigEndian.PutUint32(hdr[5:9], uint32(len(canonical.Workload)))
		binary.BigEndian.PutUint32(hdr[9:13], uint32(len(canonical.Uarch)))
		binary.BigEndian.PutUint32(hdr[13:17], uint32(len(canonical.Config)))
		s.sideBuf = append(s.sideBuf, hdr[:]...)
		s.sideBuf = append(s.sideBuf, canonical.Workload...)
		s.sideBuf = append(s.sideBuf, canonical.Uarch...)
		s.sideBuf = append(s.sideBuf, canonical.Config...)
		s.sideBuf = binary.BigEndian.AppendUint64(s.sideBuf, canonical.Seed)
	}
	var link [21]byte
	link[0] = 'L'
	binary.BigEndian.PutUint64(link[1:9], fp[0])
	binary.BigEndian.PutUint64(link[9:17], fp[1])
	binary.BigEndian.PutUint32(link[17:21], id)
	s.sideBuf = append(s.sideBuf, link[:]...)
	if len(s.sideBuf) >= sideFlushBytes {
		s.flushSideLocked(false)
	}
}

// Resolve maps a display key to its recorded canonical key, if a
// sidecar link exists.
func (s *Store) Resolve(display engine.Key) (engine.Key, bool) {
	s.mu.RLock()
	ck, ok := s.links[fingerprint(display)]
	s.mu.RUnlock()
	if !ok {
		s.sideMisses.Add(1)
	}
	return ck, ok
}

// flushSideLocked drains the sidecar buffer as one CRC-framed chunk.
// Errors are logged and the chunk dropped — links are hints. Caller
// holds wmu.
func (s *Store) flushSideLocked(sync bool) {
	if len(s.sideBuf) == 0 {
		return
	}
	if s.side == nil {
		if s.sideName == "" {
			s.sideName = fmt.Sprintf("%s%06d%s", sidePrefix, 1, segExt)
		}
		f, err := os.OpenFile(filepath.Join(s.segDir, s.sideName), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o666)
		if err != nil {
			s.logf("store: side log: %v", err)
			s.sideBuf = s.sideBuf[:0]
			return
		}
		s.side = f
		s.sideSize = 0
	}
	frame := make([]byte, headerLen+len(s.sideBuf))
	copy(frame, magicSide[:])
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(s.sideBuf))
	binary.BigEndian.PutUint32(frame[8:12], uint32(len(s.sideBuf)))
	copy(frame[headerLen:], s.sideBuf)
	if _, err := s.side.WriteAt(frame, s.sideSize); err != nil {
		s.logf("store: side log write: %v", err)
		s.sideBuf = s.sideBuf[:0]
		return
	}
	s.sideSize += int64(len(frame))
	s.sideBuf = s.sideBuf[:0]
	if sync && !s.opts.NoSync {
		s.side.Sync()
	}
}

// ---------------------------------------------------------------------
// Batched reads.

// GetBatch resolves many keys under one index lock
// (engine.BatchSecondLevel), reading records in segment-offset order
// for locality. Results are positional. A record that fails its read or
// checksum is retried through the per-key Get, which owns the self-heal
// path.
func (s *Store) GetBatch(keys []engine.Key) []engine.BatchGet {
	s.getBatches.Add(1)
	out := make([]engine.BatchGet, len(keys))
	type pending struct {
		i       int
		ent     ref
		want    engine.Key
		viaLink bool
	}
	var reads []pending
	if !s.closed.Load() {
		s.mu.RLock()
		for i, key := range keys {
			if ent, ok := s.index[key]; ok {
				reads = append(reads, pending{i: i, ent: ent, want: key})
				continue
			}
			if len(s.links) > 0 {
				if ck, ok := s.links[fingerprint(key)]; ok && ck != key {
					if ent, ok2 := s.index[ck]; ok2 {
						reads = append(reads, pending{i: i, ent: ent, want: ck, viaLink: true})
						continue
					}
				}
				s.sideMisses.Add(1)
			}
			s.misses.Add(1)
		}
		s.mu.RUnlock()
	}
	sort.Slice(reads, func(a, b int) bool {
		if reads[a].ent.seg != reads[b].ent.seg {
			return reads[a].ent.seg.seq < reads[b].ent.seg.seq
		}
		return reads[a].ent.off < reads[b].ent.off
	})
	for _, p := range reads {
		_, val, cycles, err := s.readRecord(p.ent, p.want)
		if err != nil {
			// Damage or a concurrent relocation: the per-key path owns
			// retries and quarantine, and does its own counting.
			val, cycles, ok := s.Get(keys[p.i])
			out[p.i] = engine.BatchGet{Val: val, Cycles: cycles, OK: ok}
			continue
		}
		if p.viaLink {
			s.sideHits.Add(1)
		}
		s.hits.Add(1)
		out[p.i] = engine.BatchGet{Val: val, Cycles: cycles, OK: true}
	}
	return out
}
