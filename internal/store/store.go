// Package store is the crash-safe, on-disk, content-addressed
// simulation-cell store behind `spectrebench serve` and `run -store`:
// the second level of the engine's cell cache, shared across processes
// and restarts.
//
// Determinism makes the store sound: a cell's value and simulated-cycle
// cost are a pure function of its engine.Key (PR 2/4/5's byte-identity
// guarantees), so a stored result replayed into a later run renders the
// exact bytes a fresh simulation would. The store's own job is to make
// that cache survive crashes while absorbing million-cell sweeps: v1
// wrote one fsynced file per cell, which means a million files and a
// million fsyncs for a million-cell grid; v2 appends records to a small
// number of segment logs with group-committed fsyncs and an in-memory
// index.
//
// # Layout
//
//	<dir>/LOCK                     flock'd while the store is open; holds the owner pid
//	<dir>/segments/seg-NNNNNN.log  append-only record logs (~4 MB each)
//	<dir>/quarantine/              damaged bytes set aside by recovery, never deleted
//	<dir>/cells/                   v1 file-per-entry layout; migrated and removed on open
//
// A segment is a sequence of framed records:
//
//	offset    size  field
//	------    ----  -----------------------------------------------
//	+0        4     magic "SBS2"
//	+4        4     crc32(payload), big endian
//	+8        4     len(payload), big endian
//	+12       len   payload: gob(engine.Key) gob(cycles) gob(value)
//
// The payload encoding is byte-identical to v1's, so migration re-frames
// each old entry without decoding its value. The full engine.Key in the
// payload is the content address — the in-memory index is keyed by the
// struct itself, so a hash collision cannot alias two cells.
//
// # Crash safety
//
//   - Appends are tail-only. A crash — up to and including kill -9
//     mid-write — can only tear the last record of the newest segment.
//     The open scan truncates a torn tail (counted in Stats.TornTail,
//     logged, nothing quarantined: it is the expected debris of a
//     crash, exactly like v1's swept *.tmp files) and every record
//     before it stays committed.
//   - Every record carries a CRC32 over its payload. Get re-verifies it
//     on every read, so a flipped bit on disk is detected, not replayed
//     into results; the damaged record is set aside in quarantine/ and
//     the entry re-simulates (self-healing).
//   - Mid-segment corruption (bit rot, overwritten spans) is found by
//     the open scan: the scan resynchronises on the next valid record
//     boundary, copies the damaged span to quarantine/ (preserved for
//     forensics, never deleted), and rewrites the segment without it —
//     every undamaged record keeps serving.
//   - Group commit: appends are fsynced every few records, on segment
//     rotation, by a background flusher, and at Close. A power cut can
//     cost the last unsynced group (they re-simulate); it cannot
//     corrupt committed records. Options.NoSync skips fsyncs entirely
//     for tests (atomicity against process death does not need them).
//   - An exclusive lock file (flock) makes a store single-writer: a
//     second daemon opening the same directory gets ErrLocked
//     immediately. The kernel releases the lock when the owner dies,
//     however it dies.
//
// # Compaction
//
// Records die when a duplicate key is found at scan, when Get
// quarantines a corrupt record, or when migration/compaction rewrites
// supersede them. Sealed segments whose records are mostly dead are
// compacted — live records re-appended to the current segment, the old
// file deleted — by Compact (called periodically by the background
// flusher, and available to tests and tools).
//
// Cell values cross the gob boundary as interfaces, so every concrete
// cell value type must be registered with encoding/gob (the harness
// registers its types in an init; see internal/harness). A value whose
// type is not registered is skipped on Put and counted in
// Stats.PutErrors — the store degrades to a smaller cache, it never
// fails a run. The same degradation applies to write errors (see
// Options.Fault for the injectable disk-full fault point).
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"spectrebench/internal/engine"
	"spectrebench/internal/faultinject"
)

// ErrLocked reports that another process holds the store's exclusive
// lock (a second daemon pointed at a live store directory).
var ErrLocked = errors.New("store: directory is locked by another process")

// ErrMixedSegments reports a segments directory containing both v2 and
// v3 record formats — a state no crash window of the one-shot v2→v3
// migration can produce, so it means two stores were spliced together
// by hand. The store refuses to guess which half is authoritative.
var ErrMixedSegments = errors.New("store: segments directory mixes v2 and v3 record formats")

// ErrCodecMismatch reports that the on-disk layout is newer than the
// requested codec (Options.Codec "v2" pointed at a v3 store). Reopen
// with the v3 codec; the legacy codec never downgrades a store.
var ErrCodecMismatch = errors.New("store: on-disk format is newer than the requested codec")

// Codec names for Options.Codec.
const (
	// CodecV3 (the default) reads and writes the v3 record layout:
	// fixed-header binary records, display→canonical sidecar, open-time
	// manifest. Opening a v2 or v1 store migrates it forward once.
	CodecV3 = "v3"
	// CodecV2 is the legacy gob-record codec, kept for the
	// codec-v2-replay ablation: it reads and writes exactly the PR 8
	// format and performs no migration.
	CodecV2 = "v2"
)

var (
	magic   = [4]byte{'S', 'B', 'S', '2'} // v2 segment record frame
	magicV1 = [4]byte{'S', 'B', 'C', '1'} // v1 file-per-entry header
)

const (
	lockName       = "LOCK"
	segsDirName    = "segments"
	cellsDirName   = "cells" // v1 layout, migrated on open
	quarantineName = "quarantine"
	segPrefix      = "seg-"
	segExt         = ".log"
	cellExt        = ".cell"
	tmpExt         = ".tmp"
	headerLen      = 12 // magic + crc32 + payload length

	// groupCommitEvery fsyncs the current segment after this many
	// unsynced appends (plus rotation, the background flusher and
	// Close).
	groupCommitEvery = 64
	// flushInterval is the background flusher's tick.
	flushInterval = 200 * time.Millisecond
	// compactEvery runs Compact every this many flusher ticks.
	compactEvery = 16
)

// segMaxBytes rotates the current segment once it grows past this. A
// variable so tests can exercise rotation and compaction without
// writing megabytes.
var segMaxBytes int64 = 4 << 20

// Options configures Open.
type Options struct {
	// NoSync skips every fsync. Committed entries are then atomic
	// against process death (kill -9) but not against power loss; the
	// background flusher and compactor are not started. Tests and
	// benchmarks use it; daemons should not.
	NoSync bool
	// Logf, when non-nil, receives recovery and degradation notices
	// (quarantined spans, truncated tails, skipped writes). The store
	// never logs to a default destination on its own.
	Logf func(format string, args ...any)
	// Fault, when non-nil, is consulted at the StoreWrite fault point
	// before each segment append: a fired fault simulates a disk-full
	// short write (half the record lands, the tail is rolled back, the
	// put is counted in Stats.PutErrors). The store serializes appends,
	// so the injector needs no locking of its own.
	Fault *faultinject.Injector
	// Codec selects the record layout: CodecV3 (default, "" means v3)
	// or CodecV2 (legacy replay ablation). See the codec constants.
	Codec string
}

// Stats is a snapshot of the store's counters. The scan fields are
// fixed at Open; the rest accumulate over the store's lifetime.
type Stats struct {
	// Entries is the number of committed, valid entries currently
	// indexed.
	Entries int
	// Hits / Misses count Get outcomes.
	Hits, Misses uint64
	// Puts counts entries committed by this process; PutErrors counts
	// Put attempts skipped or failed (unregistered value type, I/O
	// error, injected disk-full).
	Puts, PutErrors uint64
	// Quarantined counts damage events whose bytes were moved to
	// quarantine/ — corrupt spans found by the open scan, damaged v1
	// entries found by migration, and Get checksum failures since.
	Quarantined uint64
	// TmpSwept counts abandoned temporary files removed at Open (the
	// debris of a crash mid-write: v1 put temporaries, interrupted
	// segment rewrites).
	TmpSwept int
	// TornTail counts segment tails truncated at Open — the partial
	// record a crash mid-append leaves. Expected debris, not damage.
	TornTail int
	// Segments is the number of live segment files.
	Segments int
	// Migrated counts v1 entries re-framed into segments by this Open.
	Migrated int
	// DeadRecords counts records still occupying segment bytes whose
	// key has been superseded or quarantined (reclaimed by Compact).
	DeadRecords int
	// Compactions counts segments removed or rewritten by Compact.
	Compactions uint64
	// MigratedV2 counts v2 records re-encoded into v3 segments by this
	// Open (0 on every later open: the migration is one-shot).
	MigratedV2 int
	// ManifestSegments counts sealed segments indexed straight from the
	// open-time manifest, without scanning their bytes.
	ManifestSegments int
	// GetBatches counts GetBatch calls (each resolves many keys under
	// one index lock).
	GetBatches uint64
	// SidecarLinks is the number of display→canonical links currently
	// held; SidecarHits/SidecarMisses count reads resolved through a
	// link and Resolve calls that found none.
	SidecarLinks  int
	SidecarHits   uint64
	SidecarMisses uint64
}

// segment is one open segment log. size is guarded by the writer mutex;
// live/dead by the index mutex.
type segment struct {
	seq  uint64
	name string // base name under segments/
	f    *os.File
	size int64
	live int
	dead int
}

// ref locates one committed cell inside a segment.
type ref struct {
	seg    *segment
	off    int64 // offset of the record frame
	plen   uint32
	cycles uint64
}

// Store is an open cell store. It is safe for concurrent use by the
// engine's workers.
type Store struct {
	dir    string
	segDir string
	opts   Options
	codec  string // CodecV2 or CodecV3

	lockFile *os.File

	// mu guards the index, the sidecar link map and every segment's
	// live/dead counters.
	mu    sync.RWMutex
	index map[engine.Key]ref
	// links resolves a display key's fingerprint to its canonical key
	// (v3 sidecar; empty under the v2 codec).
	links map[[2]uint64]engine.Key

	// wmu serializes writers: appends, rotation, migration, compaction,
	// sidecar and manifest writes. Lock order: wmu before mu, never the
	// reverse.
	wmu      sync.Mutex
	segs     []*segment // ascending seq; the last is the append target
	unsynced int
	// Sidecar write state (v3): links buffer in memory and flush in
	// batches to the side log — they are replay hints, not committed
	// data, so losing a tail of them in a crash only costs future
	// lookups a fallback.
	canonIDs  map[engine.Key]uint32
	canonByID []engine.Key
	side      *os.File
	sideName  string
	sideSize  int64
	sideBuf   []byte

	closed  atomic.Bool
	stopCh  chan struct{}
	flushWG sync.WaitGroup

	hits, misses, puts, putErrors, quarantined atomic.Uint64
	compactions, getBatches                    atomic.Uint64
	sideHits, sideMisses                       atomic.Uint64
	tmpSwept, tornTail, migrated               int
	migratedV2, manifestSegs                   int
}

// Open opens (creating if necessary) the store rooted at dir, acquires
// its exclusive lock, runs the recovery scan over the segment logs, and
// migrates any v1 (file-per-entry) layout it finds. The returned store
// must be closed to release the lock (the kernel also releases it if
// the process dies).
func Open(dir string, opts Options) (*Store, error) {
	codec := opts.Codec
	switch codec {
	case "", CodecV3:
		codec = CodecV3
	case CodecV2:
	default:
		return nil, fmt.Errorf("store: unknown codec %q (want %q or %q)", opts.Codec, CodecV3, CodecV2)
	}
	s := &Store{
		dir:      dir,
		segDir:   filepath.Join(dir, segsDirName),
		opts:     opts,
		codec:    codec,
		index:    map[engine.Key]ref{},
		links:    map[[2]uint64]engine.Key{},
		canonIDs: map[engine.Key]uint32{},
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := s.acquireLock(); err != nil {
		return nil, err
	}
	fail := func(err error) (*Store, error) {
		s.releaseLock()
		return nil, err
	}
	if s.codec == CodecV3 {
		// Settle any crash window of a previous v2→v3 migration before
		// the segments directory is (re)created below.
		if err := s.finishSwap(); err != nil {
			return fail(err)
		}
	}
	for _, d := range []string{s.segDir, filepath.Join(dir, quarantineName)} {
		if err := os.MkdirAll(d, 0o777); err != nil {
			return fail(fmt.Errorf("store: %w", err))
		}
	}
	// Sniff the record format before scanning: mixed directories are
	// refused, the legacy codec refuses to open a v3 layout, and the v3
	// codec migrates a v2 layout forward exactly once.
	ver, err := s.sniffSegments()
	if err != nil {
		return fail(err)
	}
	switch {
	case ver == 2 && s.codec == CodecV2:
		// Legacy store under the legacy codec: nothing to do.
	case ver == 3 && s.codec == CodecV2:
		return fail(fmt.Errorf("%w (dir %s holds v3 segments)", ErrCodecMismatch, dir))
	case ver == 2 && s.codec == CodecV3:
		if err := s.migrateV2(); err != nil {
			return fail(err)
		}
	}
	if err := s.recoverScan(); err != nil {
		return fail(err)
	}
	if err := s.migrateV1(); err != nil {
		return fail(err)
	}
	if s.codec == CodecV3 {
		if err := s.scanSideLogs(); err != nil {
			return fail(err)
		}
	}
	if len(s.segs) == 0 {
		if err := s.addSegmentLocked(1); err != nil {
			return fail(err)
		}
	}
	if !s.opts.NoSync {
		s.stopCh = make(chan struct{})
		s.flushWG.Add(1)
		go s.flusher()
	}
	return s, nil
}

// acquireLock flocks <dir>/LOCK exclusively and non-blocking, writing
// the owner pid for diagnostics.
func (s *Store) acquireLock() error {
	f, err := os.OpenFile(filepath.Join(s.dir, lockName), os.O_RDWR|os.O_CREATE, 0o666)
	if err != nil {
		return fmt.Errorf("store: lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		owner, _ := os.ReadFile(filepath.Join(s.dir, lockName))
		f.Close()
		if len(owner) > 0 {
			return fmt.Errorf("%w (dir %s, held by pid %s)", ErrLocked, s.dir, strings.TrimSpace(string(owner)))
		}
		return fmt.Errorf("%w (dir %s)", ErrLocked, s.dir)
	}
	f.Truncate(0)
	fmt.Fprintf(f, "%d\n", os.Getpid())
	s.lockFile = f
	return nil
}

func (s *Store) releaseLock() {
	if s.lockFile != nil {
		syscall.Flock(int(s.lockFile.Fd()), syscall.LOCK_UN)
		s.lockFile.Close()
		s.lockFile = nil
	}
}

func (s *Store) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// recoverScan walks segments/: abandoned *.tmp files (interrupted
// rewrites) are removed, every seg-*.log is validated record by record
// and either indexed, truncated at a torn tail, or — for mid-segment
// corruption — resynchronised with the damaged span quarantined and the
// file rewritten without it. Under the v3 codec, sealed segments whose
// size matches the open-time manifest are indexed straight from it,
// without reading their bytes.
func (s *Store) recoverScan() error {
	entries, err := os.ReadDir(s.segDir)
	if err != nil {
		return fmt.Errorf("store: scan: %w", err)
	}
	var names []string
	for _, de := range entries {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		if strings.HasSuffix(name, tmpExt) {
			os.Remove(filepath.Join(s.segDir, name))
			s.tmpSwept++
			s.logf("store: swept abandoned temp file %s", name)
			continue
		}
		if strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segExt) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	manifest := s.loadManifest()
	for _, name := range names {
		if m, ok := manifest[name]; ok && s.indexFromManifest(name, m) {
			continue
		}
		if err := s.scanSegment(name); err != nil {
			return err
		}
	}
	return nil
}

// parseRec validates the record framed at data[off:] under the store's
// codec.
func (s *Store) parseRec(data []byte, off int) (key engine.Key, cycles uint64, plen uint32, n int, err error) {
	if s.codec == CodecV3 {
		return parseRecordV3(data, off)
	}
	return parseRecord(data, off)
}

// recMagic is the record frame magic the store writes and scans for.
func (s *Store) recMagic() []byte {
	if s.codec == CodecV3 {
		return magicV3[:]
	}
	return magic[:]
}

// errTorn distinguishes a record torn at end-of-file (expected crash
// debris) from in-place corruption.
var errTorn = errors.New("record torn at end of segment")

// parseRecord validates the record framed at data[off:] and decodes its
// key and cycle count (the value stays encoded). n is the full frame
// length.
func parseRecord(data []byte, off int) (key engine.Key, cycles uint64, plen uint32, n int, err error) {
	if len(data)-off < headerLen {
		return key, 0, 0, 0, errTorn
	}
	if !bytes.Equal(data[off:off+4], magic[:]) {
		return key, 0, 0, 0, fmt.Errorf("bad magic %q", data[off:off+4])
	}
	wantCRC := binary.BigEndian.Uint32(data[off+4 : off+8])
	plen = binary.BigEndian.Uint32(data[off+8 : off+12])
	if uint64(len(data)-off-headerLen) < uint64(plen) {
		return key, 0, 0, 0, errTorn
	}
	payload := data[off+headerLen : off+headerLen+int(plen)]
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return key, 0, 0, 0, fmt.Errorf("checksum mismatch (stored %08x, computed %08x)", wantCRC, got)
	}
	dec := gob.NewDecoder(bytes.NewReader(payload))
	if err := dec.Decode(&key); err != nil {
		return key, 0, 0, 0, fmt.Errorf("key decode: %w", err)
	}
	if err := dec.Decode(&cycles); err != nil {
		return key, 0, 0, 0, fmt.Errorf("cycles decode: %w", err)
	}
	return key, cycles, plen, headerLen + int(plen), nil
}

// resyncOffset finds the next offset >= from at which a fully valid
// record is framed, or len(data) when the rest of the segment is
// unsalvageable. CRC validation makes a payload byte that happens to
// spell the magic a non-issue.
func (s *Store) resyncOffset(data []byte, from int) int {
	want := s.recMagic()
	for from < len(data) {
		i := bytes.Index(data[from:], want)
		if i < 0 {
			return len(data)
		}
		cand := from + i
		if _, _, _, _, err := s.parseRec(data, cand); err == nil {
			return cand
		}
		from = cand + 1
	}
	return len(data)
}

// scanRec is one valid record located by the segment scan.
type scanRec struct {
	key    engine.Key
	cycles uint64
	off    int
	n      int
}

// scanSegment validates one segment log, repairing it in place: torn
// tails are truncated, corrupt spans quarantined and the file rewritten
// without them. Valid records are indexed (first writer of a key wins).
func (s *Store) scanSegment(name string) error {
	path := filepath.Join(s.segDir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("store: scan %s: %w", name, err)
	}
	var recs []scanRec
	damaged := false
	off := 0
	end := len(data)
	for off < len(data) {
		key, cycles, _, n, err := s.parseRec(data, off)
		if err == nil {
			recs = append(recs, scanRec{key: key, cycles: cycles, off: off, n: n})
			off += n
			continue
		}
		if errors.Is(err, errTorn) {
			// The partial record a crash mid-append leaves: expected
			// debris, truncated without ceremony.
			s.tornTail++
			s.logf("store: %s: truncated torn tail at offset %d (%d bytes)", name, off, len(data)-off)
			end = off
			break
		}
		// In-place corruption: set the damaged span aside and resume at
		// the next record boundary.
		next := s.resyncOffset(data, off+1)
		s.quarantineBytes(fmt.Sprintf("%s@%d", name, off), data[off:next])
		s.quarantined.Add(1)
		s.logf("store: %s: quarantined %d corrupt bytes at offset %d: %v", name, next-off, off, err)
		damaged = true
		off = next
	}

	seq := segSeq(name)
	seg := &segment{seq: seq, name: name}
	if damaged {
		// Rewrite the segment from its valid records so the next open
		// does not re-quarantine the same span. The rewrite is atomic
		// (tmp + rename); a crash mid-rewrite leaves the original.
		var buf bytes.Buffer
		newRecs := make([]scanRec, len(recs))
		for i, r := range recs {
			newRecs[i] = scanRec{key: r.key, cycles: r.cycles, off: buf.Len(), n: r.n}
			buf.Write(data[r.off : r.off+r.n])
		}
		tmp := path + tmpExt
		if err := os.WriteFile(tmp, buf.Bytes(), 0o666); err != nil {
			return fmt.Errorf("store: rewrite %s: %w", name, err)
		}
		if !s.opts.NoSync {
			if err := syncFile(tmp); err != nil {
				return fmt.Errorf("store: rewrite %s: %w", name, err)
			}
		}
		if err := os.Rename(tmp, path); err != nil {
			return fmt.Errorf("store: rewrite %s: %w", name, err)
		}
		recs = newRecs
		end = buf.Len()
	} else if end < len(data) {
		if err := os.Truncate(path, int64(end)); err != nil {
			return fmt.Errorf("store: truncate %s: %w", name, err)
		}
	}

	f, err := os.OpenFile(path, os.O_RDWR, 0o666)
	if err != nil {
		return fmt.Errorf("store: open %s: %w", name, err)
	}
	seg.f = f
	seg.size = int64(end)
	for _, r := range recs {
		if _, dup := s.index[r.key]; dup {
			// Two records claim one key (a crash between a migration
			// append and the v1 removal, or a healed re-put): the first
			// stays authoritative, the second is dead weight for
			// Compact.
			seg.dead++
			continue
		}
		s.index[r.key] = ref{seg: seg, off: int64(r.off), plen: uint32(r.n - headerLen), cycles: r.cycles}
		seg.live++
	}
	s.segs = append(s.segs, seg)
	return nil
}

// segSeq parses the sequence number out of a segment file name; 0 for
// foreign names (which sort first and are never the append target).
func segSeq(name string) uint64 {
	var seq uint64
	fmt.Sscanf(name, segPrefix+"%d"+segExt, &seq)
	return seq
}

func syncFile(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o666)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// addSegmentLocked creates and appends a fresh segment log. Caller
// holds wmu (or is the single-threaded Open path).
func (s *Store) addSegmentLocked(seq uint64) error {
	name := fmt.Sprintf("%s%06d%s", segPrefix, seq, segExt)
	f, err := os.OpenFile(filepath.Join(s.segDir, name), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		return fmt.Errorf("store: segment %s: %w", name, err)
	}
	s.segs = append(s.segs, &segment{seq: seq, name: name, f: f})
	return nil
}

// readV1Entry reads and validates one v1 (file-per-entry) cell file,
// returning its key, cycle count and still-encoded payload.
func readV1Entry(path string) (key engine.Key, cycles uint64, payload []byte, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return key, 0, nil, err
	}
	if len(raw) == 0 {
		return key, 0, nil, errors.New("zero-length entry")
	}
	if len(raw) < headerLen {
		return key, 0, nil, fmt.Errorf("truncated header (%d bytes)", len(raw))
	}
	if !bytes.Equal(raw[:4], magicV1[:]) {
		return key, 0, nil, fmt.Errorf("bad magic %q", raw[:4])
	}
	wantCRC := binary.BigEndian.Uint32(raw[4:8])
	plen := binary.BigEndian.Uint32(raw[8:12])
	payload = raw[headerLen:]
	if uint32(len(payload)) != plen {
		return key, 0, nil, fmt.Errorf("payload length %d, header says %d", len(payload), plen)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return key, 0, nil, fmt.Errorf("checksum mismatch (stored %08x, computed %08x)", wantCRC, got)
	}
	dec := gob.NewDecoder(bytes.NewReader(payload))
	if err := dec.Decode(&key); err != nil {
		return key, 0, nil, fmt.Errorf("key decode: %w", err)
	}
	if err := dec.Decode(&cycles); err != nil {
		return key, 0, nil, fmt.Errorf("cycles decode: %w", err)
	}
	return key, cycles, payload, nil
}

// migrateV1 re-frames a v1 file-per-entry layout into the segment logs:
// valid entries append (payload bytes unchanged — the value is never
// decoded), damaged entries quarantine exactly as the v1 recovery scan
// did, stale temporaries are swept. The v1 files are removed only after
// the appends are synced, so a crash anywhere leaves a layout the next
// open migrates idempotently (an entry present in both places is
// recognised by its indexed key and the file simply removed).
func (s *Store) migrateV1() error {
	cellsDir := filepath.Join(s.dir, cellsDirName)
	entries, err := os.ReadDir(cellsDir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: migrate: %w", err)
	}
	var names []string
	for _, de := range entries {
		if !de.IsDir() {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	var migratedFiles []string
	for _, name := range names {
		path := filepath.Join(cellsDir, name)
		if strings.HasSuffix(name, tmpExt) {
			os.Remove(path)
			s.tmpSwept++
			s.logf("store: swept abandoned temp file %s", name)
			continue
		}
		if !strings.HasSuffix(name, cellExt) {
			continue
		}
		key, cycles, payload, err := readV1Entry(path)
		if err != nil {
			s.quarantineMove(cellsDir, name, err)
			continue
		}
		if _, dup := s.index[key]; dup {
			// Already in a segment: a previous migration crashed after
			// the append but before this remove.
			migratedFiles = append(migratedFiles, path)
			continue
		}
		if s.codec == CodecV3 {
			// Re-head the v1 gob triple as a v3 record; the gob stream is
			// carried whole (value codec 0), still never decoded.
			payload = encodeV3Payload(key, cycles, vcodecGobTriple, payload)
		}
		seg, off, err := s.appendLocked(payload)
		if err != nil {
			return fmt.Errorf("store: migrate %s: %w", name, err)
		}
		s.index[key] = ref{seg: seg, off: off, plen: uint32(len(payload)), cycles: cycles}
		seg.live++
		s.migrated++
		migratedFiles = append(migratedFiles, path)
	}
	if s.migrated > 0 {
		s.logf("store: migrated %d v1 entries into segment logs", s.migrated)
	}
	if len(migratedFiles) > 0 {
		if err := s.syncCurrentLocked(); err != nil {
			return fmt.Errorf("store: migrate sync: %w", err)
		}
		for _, p := range migratedFiles {
			os.Remove(p)
		}
	}
	// Remove the empty v1 directory; harmless to leave if stragglers
	// (quarantine-move failures) remain.
	os.Remove(cellsDir)
	return nil
}

// quarantineMove moves a damaged v1 entry file into quarantine/ under a
// non-clobbering name.
func (s *Store) quarantineMove(srcDir, name string, cause error) {
	src := filepath.Join(srcDir, name)
	dst := filepath.Join(s.dir, quarantineName, name)
	for i := 1; ; i++ {
		if _, err := os.Lstat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(s.dir, quarantineName, fmt.Sprintf("%s.%d", name, i))
	}
	if err := os.Rename(src, dst); err != nil {
		s.logf("store: quarantine of %s failed: %v (entry left unindexed)", name, err)
	}
	s.quarantined.Add(1)
	s.logf("store: quarantined %s: %v", name, cause)
}

// quarantineBytes preserves a damaged byte span under quarantine/ with
// a non-clobbering name. Failure to write is logged, never fatal — the
// span is already dropped from the live store either way.
func (s *Store) quarantineBytes(name string, data []byte) {
	dst := filepath.Join(s.dir, quarantineName, name)
	for i := 1; ; i++ {
		if _, err := os.Lstat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(s.dir, quarantineName, fmt.Sprintf("%s.%d", name, i))
	}
	if err := os.WriteFile(dst, data, 0o666); err != nil {
		s.logf("store: quarantine write %s failed: %v", name, err)
	}
}

// appendLocked frames payload and appends it to the current segment,
// rotating first if it is full. Caller holds wmu (or is the
// single-threaded Open path). On any failure — including the injected
// StoreWrite disk-full fault — the segment tail is rolled back to the
// record boundary so the log stays clean for the next append.
func (s *Store) appendLocked(payload []byte) (*segment, int64, error) {
	if len(s.segs) == 0 {
		if err := s.addSegmentLocked(1); err != nil {
			return nil, 0, err
		}
	}
	seg := s.segs[len(s.segs)-1]
	if seg.size >= segMaxBytes {
		if err := s.rotateLocked(); err != nil {
			return nil, 0, err
		}
		seg = s.segs[len(s.segs)-1]
	}
	buf := make([]byte, headerLen+len(payload))
	copy(buf, s.recMagic())
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	binary.BigEndian.PutUint32(buf[8:12], uint32(len(payload)))
	copy(buf[headerLen:], payload)
	start := seg.size
	if s.opts.Fault.Fire(faultinject.StoreWrite) {
		// Simulated disk-full: half the record lands — the torn write a
		// failing disk produces — then the tail is rolled back.
		seg.f.WriteAt(buf[:len(buf)/2], start)
		seg.f.Truncate(start)
		return nil, 0, fmt.Errorf("injected disk-full short write (%d of %d bytes)", len(buf)/2, len(buf))
	}
	n, err := seg.f.WriteAt(buf, start)
	if err != nil || n < len(buf) {
		seg.f.Truncate(start)
		if err == nil {
			err = fmt.Errorf("short write (%d of %d bytes)", n, len(buf))
		}
		return nil, 0, err
	}
	seg.size += int64(len(buf))
	s.unsynced++
	if !s.opts.NoSync && s.unsynced >= groupCommitEvery {
		if err := seg.f.Sync(); err != nil {
			return nil, 0, err
		}
		s.unsynced = 0
	}
	return seg, start, nil
}

// rotateLocked seals the current segment (final fsync) and opens the
// next, refreshing the manifest so the next open can skip scanning the
// newly sealed file. Caller holds wmu.
func (s *Store) rotateLocked() error {
	cur := s.segs[len(s.segs)-1]
	if !s.opts.NoSync {
		if err := cur.f.Sync(); err != nil {
			return err
		}
		s.unsynced = 0
	}
	if err := s.addSegmentLocked(cur.seq + 1); err != nil {
		return err
	}
	if s.codec == CodecV3 {
		s.writeManifestLocked()
	}
	return nil
}

// syncCurrentLocked flushes the current segment if anything is
// unsynced. Caller holds wmu.
func (s *Store) syncCurrentLocked() error {
	if s.opts.NoSync || len(s.segs) == 0 || s.unsynced == 0 {
		return nil
	}
	if err := s.segs[len(s.segs)-1].f.Sync(); err != nil {
		return err
	}
	s.unsynced = 0
	return nil
}

// flusher is the background group-commit and compaction loop (daemons
// only; NoSync stores never start it).
func (s *Store) flusher() {
	defer s.flushWG.Done()
	tick := time.NewTicker(flushInterval)
	defer tick.Stop()
	n := 0
	for {
		select {
		case <-s.stopCh:
			return
		case <-tick.C:
			s.wmu.Lock()
			if err := s.syncCurrentLocked(); err != nil {
				s.logf("store: background sync: %v", err)
			}
			s.flushSideLocked(false)
			s.wmu.Unlock()
			if n++; n%compactEvery == 0 {
				s.Compact()
			}
		}
	}
}

// lookup resolves key to its record ref under one read lock. A key
// absent from the index may still resolve through the v3 sidecar: the
// link redirects the read to the canonical class record, whose embedded
// key (want) then differs from the requested one.
func (s *Store) lookup(key engine.Key) (ent ref, want engine.Key, found, viaLink bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if ent, ok := s.index[key]; ok {
		return ent, key, true, false
	}
	if len(s.links) > 0 {
		if ck, ok := s.links[fingerprint(key)]; ok && ck != key {
			if ent, ok2 := s.index[ck]; ok2 {
				return ent, ck, true, true
			}
		}
		s.sideMisses.Add(1)
	}
	return ref{}, key, false, false
}

// readRecord reads and fully validates the record at ent, expecting it
// to hold want's key, and decodes its value under the store's codec.
func (s *Store) readRecord(ent ref, want engine.Key) (raw []byte, val any, cycles uint64, err error) {
	raw = make([]byte, headerLen+int(ent.plen))
	if _, err = ent.seg.f.ReadAt(raw, ent.off); err != nil {
		return raw, nil, 0, err
	}
	if s.codec == CodecV3 {
		val, cycles, err = decodeRecordV3(raw, want)
		return raw, val, cycles, err
	}
	var gotKey engine.Key
	gotKey, cycles, _, _, err = parseRecord(raw, 0)
	if err == nil {
		dec := gob.NewDecoder(bytes.NewReader(raw[headerLen:]))
		var k engine.Key
		dec.Decode(&k)
		dec.Decode(&cycles)
		if derr := dec.Decode(&val); derr != nil {
			err = fmt.Errorf("value decode: %w", derr)
		}
	}
	if err == nil && gotKey != want {
		err = fmt.Errorf("record holds key %v", gotKey)
	}
	return raw, val, cycles, err
}

// Get returns the stored value and simulated-cycle cost for key. It
// satisfies engine.SecondLevel: a miss — including a read or decode
// failure, which also quarantines the damaged record — is (nil, 0,
// false), never an error. The checksum is re-verified on every read.
func (s *Store) Get(key engine.Key) (val any, cycles uint64, ok bool) {
	for attempt := 0; attempt < 2; attempt++ {
		if s.closed.Load() {
			return nil, 0, false
		}
		ent, want, found, viaLink := s.lookup(key)
		if !found {
			s.misses.Add(1)
			return nil, 0, false
		}
		raw, val, gotCycles, rerr := s.readRecord(ent, want)
		if rerr == nil {
			if viaLink {
				s.sideHits.Add(1)
			}
			s.hits.Add(1)
			return val, gotCycles, true
		}
		// Self-healing read path: if the index still points at the bytes
		// we just failed to read, drop the entry and set the bytes aside
		// so the cell re-simulates from here on. If the index moved
		// (compaction relocated the record), retry once at the new home.
		s.mu.Lock()
		cur, still := s.index[want]
		if still && cur == ent {
			delete(s.index, want)
			ent.seg.live--
			ent.seg.dead++
			s.mu.Unlock()
			if !s.closed.Load() {
				s.quarantineBytes(fmt.Sprintf("%s@%d", ent.seg.name, ent.off), raw)
				s.quarantined.Add(1)
				s.logf("store: quarantined record %s@%d for %s: %v", ent.seg.name, ent.off, want.String(), rerr)
			}
			s.misses.Add(1)
			return nil, 0, false
		}
		s.mu.Unlock()
	}
	s.misses.Add(1)
	return nil, 0, false
}

// Put commits (key, val, cycles): encode, append to the current segment
// log, group-commit. It satisfies engine.SecondLevel; failures are
// counted and logged, never returned — a broken disk degrades the
// cache, not the run.
func (s *Store) Put(key engine.Key, val any, cycles uint64) {
	if err := s.put(key, val, cycles); err != nil {
		s.putErrors.Add(1)
		s.logf("store: put %s: %v", key.String(), err)
	}
}

func (s *Store) put(key engine.Key, val any, cycles uint64) error {
	if s.closed.Load() {
		return errors.New("store closed")
	}
	if val == nil {
		return errors.New("nil value")
	}
	s.mu.RLock()
	_, dup := s.index[key]
	s.mu.RUnlock()
	if dup {
		// Deterministic cells make re-puts value-identical; skip the
		// write instead of churning the log.
		return nil
	}

	payload, err := s.encodePayload(key, cycles, val)
	if err != nil {
		return err // typically: concrete type not registered with gob
	}

	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.closed.Load() {
		return errors.New("store closed")
	}
	// Re-check under the writer lock: all index inserts happen with wmu
	// held, so this is the authoritative duplicate test.
	s.mu.RLock()
	_, dup = s.index[key]
	s.mu.RUnlock()
	if dup {
		return nil
	}
	seg, off, err := s.appendLocked(payload)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.index[key] = ref{seg: seg, off: off, plen: uint32(len(payload)), cycles: cycles}
	seg.live++
	s.mu.Unlock()
	s.puts.Add(1)
	return nil
}

// encodePayload builds a record payload for (key, cycles, val) under
// the store's codec: the v3 fixed-header binary layout (gob only for
// value types that need it), or the legacy v2 gob triple.
func (s *Store) encodePayload(key engine.Key, cycles uint64, val any) ([]byte, error) {
	if s.codec == CodecV3 {
		return encodeV3Record(key, cycles, val)
	}
	var payload bytes.Buffer
	enc := gob.NewEncoder(&payload)
	if err := enc.Encode(&key); err != nil {
		return nil, err
	}
	if err := enc.Encode(cycles); err != nil {
		return nil, err
	}
	if err := enc.Encode(&val); err != nil {
		return nil, err
	}
	return payload.Bytes(), nil
}

// Compact reclaims dead segment bytes: a sealed segment none of whose
// records are live is deleted outright; one with more dead records than
// live has its live records re-appended to the current segment before
// the file is deleted. Safe to call any time; the background flusher
// calls it periodically on syncing stores.
func (s *Store) Compact() {
	if s.closed.Load() {
		return
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.closed.Load() || len(s.segs) == 0 {
		return
	}
	sealed := s.segs[:len(s.segs)-1]
	for _, seg := range append([]*segment(nil), sealed...) {
		s.mu.RLock()
		live, dead := seg.live, seg.dead
		s.mu.RUnlock()
		if dead == 0 || dead <= live {
			continue
		}
		if live > 0 {
			if err := s.relocateLocked(seg); err != nil {
				s.logf("store: compact %s: %v", seg.name, err)
				continue
			}
		}
		s.dropSegmentLocked(seg)
		s.compactions.Add(1)
		s.logf("store: compacted %s (%d live, %d dead)", seg.name, live, dead)
	}
}

// relocateLocked re-appends every live record of seg to the current
// segment and repoints the index. Caller holds wmu.
func (s *Store) relocateLocked(seg *segment) error {
	s.mu.RLock()
	var keys []engine.Key
	for k, r := range s.index {
		if r.seg == seg {
			keys = append(keys, k)
		}
	}
	s.mu.RUnlock()
	for _, k := range keys {
		s.mu.RLock()
		r, ok := s.index[k]
		s.mu.RUnlock()
		if !ok || r.seg != seg {
			continue
		}
		raw := make([]byte, headerLen+int(r.plen))
		if _, err := seg.f.ReadAt(raw, r.off); err != nil {
			return err
		}
		if _, _, _, _, err := s.parseRec(raw, 0); err != nil {
			// Rot discovered during compaction: treat it like a Get
			// self-heal — quarantine, drop, move on.
			s.mu.Lock()
			delete(s.index, k)
			seg.live--
			seg.dead++
			s.mu.Unlock()
			s.quarantineBytes(fmt.Sprintf("%s@%d", seg.name, r.off), raw)
			s.quarantined.Add(1)
			continue
		}
		dst, off, err := s.appendLocked(raw[headerLen:])
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.index[k] = ref{seg: dst, off: off, plen: r.plen, cycles: r.cycles}
		seg.live--
		dst.live++
		s.mu.Unlock()
	}
	if err := s.syncCurrentLocked(); err != nil {
		return err
	}
	return nil
}

// dropSegmentLocked closes and deletes a fully dead segment. Caller
// holds wmu.
func (s *Store) dropSegmentLocked(seg *segment) {
	for i, sg := range s.segs {
		if sg == seg {
			s.segs = append(s.segs[:i], s.segs[i+1:]...)
			break
		}
	}
	seg.f.Close()
	os.Remove(filepath.Join(s.segDir, seg.name))
}

// Len returns the number of committed entries currently indexed.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Hits:             s.hits.Load(),
		Misses:           s.misses.Load(),
		Puts:             s.puts.Load(),
		PutErrors:        s.putErrors.Load(),
		Quarantined:      s.quarantined.Load(),
		Compactions:      s.compactions.Load(),
		GetBatches:       s.getBatches.Load(),
		SidecarHits:      s.sideHits.Load(),
		SidecarMisses:    s.sideMisses.Load(),
		TmpSwept:         s.tmpSwept,
		TornTail:         s.tornTail,
		Migrated:         s.migrated,
		MigratedV2:       s.migratedV2,
		ManifestSegments: s.manifestSegs,
	}
	s.mu.RLock()
	st.Entries = len(s.index)
	st.Segments = len(s.segs)
	st.SidecarLinks = len(s.links)
	for _, seg := range s.segs {
		st.DeadRecords += seg.dead
	}
	s.mu.RUnlock()
	return st
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close flushes the current segment, stops the background flusher,
// releases the exclusive lock and marks the store closed. Idempotent;
// Get/Put after Close are misses/no-ops, matching the engine's
// drain-then-close shutdown order.
func (s *Store) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	if s.stopCh != nil {
		close(s.stopCh)
		s.flushWG.Wait()
	}
	s.wmu.Lock()
	var err error
	if !s.opts.NoSync && len(s.segs) > 0 && s.unsynced > 0 {
		err = s.segs[len(s.segs)-1].f.Sync()
	}
	if s.codec == CodecV3 {
		s.flushSideLocked(!s.opts.NoSync)
		s.writeManifestLocked()
	}
	if s.side != nil {
		s.side.Close()
		s.side = nil
	}
	for _, seg := range s.segs {
		seg.f.Close()
	}
	s.wmu.Unlock()
	s.releaseLock()
	if err != nil {
		return fmt.Errorf("store: close sync: %w", err)
	}
	return nil
}

// Note reports the store's effectiveness in one batch-summary line,
// mirroring the engine's cell-cache note. Printed to stderr by the CLI
// so stdout stays byte-identical between cold and warm runs.
func (s *Store) Note() string {
	st := s.Stats()
	return fmt.Sprintf("cell store: %d entries, %d hits, %d misses, %d written, %d quarantined, %d segments (dir %s)",
		st.Entries, st.Hits, st.Misses, st.Puts, st.Quarantined, st.Segments, s.dir)
}
