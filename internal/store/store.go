// Package store is the crash-safe, on-disk, content-addressed
// simulation-cell store behind `spectrebench serve` and `run -store`:
// the second level of the engine's cell cache, shared across processes
// and restarts.
//
// Determinism makes the store sound: a cell's value and simulated-cycle
// cost are a pure function of its engine.Key (PR 2/4/5's byte-identity
// guarantees), so a stored result replayed into a later run renders the
// exact bytes a fresh simulation would. The store's own job is to make
// that cache survive crashes:
//
//   - Writes are atomic. An entry is encoded to a temporary file in the
//     same directory, synced, and renamed into place. A crash — up to
//     and including kill -9 mid-write — leaves either the complete new
//     entry or no entry, never a torn one visible under a committed
//     name. Stale *.tmp files are swept on the next open.
//   - Every entry carries a CRC32 checksum over its payload, plus a
//     magic/version header and an exact length. Get re-verifies the
//     checksum on every read, so a flipped bit on disk is detected, not
//     replayed into results.
//   - Open runs a recovery scan instead of trusting the directory:
//     entries that are truncated, zero-length, bit-flipped or otherwise
//     undecodable are moved to quarantine/ (preserved for forensics,
//     never deleted) and the rest of the store keeps serving. A damaged
//     entry costs a re-simulation, not an outage.
//   - An exclusive lock file (flock) makes a store single-writer: a
//     second daemon opening the same directory gets ErrLocked
//     immediately instead of silently interleaving writes. The kernel
//     releases the lock when the owner dies, however it dies.
//
// # Layout
//
//	<dir>/LOCK             flock'd while the store is open; holds the owner pid
//	<dir>/cells/<key-hash>[-n].cell   one entry per cell (n disambiguates hash collisions)
//	<dir>/quarantine/      damaged entries moved aside by the recovery scan
//
// An entry file is:
//
//	"SBC1" | crc32(payload) BE | len(payload) BE | payload
//
// where the payload is three gob values — the full engine.Key (the
// content address; the file name is only its 64-bit hash, so a hash
// collision degrades to a probe sequence, never aliases), the cell's
// simulated-cycle cost, and the cell value. The key and cycles decode
// cheaply during the open scan; the value is decoded only on Get, after
// the checksum has been verified.
//
// Cell values cross the gob boundary as interfaces, so every concrete
// cell value type must be registered with encoding/gob (the harness
// registers its types in an init; see internal/harness). A value whose
// type is not registered is skipped on Put and counted in
// Stats.PutErrors — the store degrades to a smaller cache, it never
// fails a run.
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"

	"spectrebench/internal/engine"
)

// ErrLocked reports that another process holds the store's exclusive
// lock (a second daemon pointed at a live store directory).
var ErrLocked = errors.New("store: directory is locked by another process")

var magic = [4]byte{'S', 'B', 'C', '1'}

const (
	lockName       = "LOCK"
	cellsDirName   = "cells"
	quarantineName = "quarantine"
	cellExt        = ".cell"
	tmpExt         = ".tmp"
	headerLen      = 12 // magic + crc32 + payload length
)

// Options configures Open.
type Options struct {
	// NoSync skips the fsync before each rename. Committed entries are
	// then atomic against process death (kill -9) but not against power
	// loss. Tests and benchmarks use it; daemons should not.
	NoSync bool
	// Logf, when non-nil, receives recovery and degradation notices
	// (quarantined entries, skipped writes). The store never logs to a
	// default destination on its own.
	Logf func(format string, args ...any)
}

// Stats is a snapshot of the store's counters. The scan fields are
// fixed at Open; the rest accumulate over the store's lifetime.
type Stats struct {
	// Entries is the number of committed, valid entries currently
	// indexed.
	Entries int
	// Hits / Misses count Get outcomes.
	Hits, Misses uint64
	// Puts counts entries committed by this process; PutErrors counts
	// Put attempts skipped or failed (unregistered value type, I/O
	// error).
	Puts, PutErrors uint64
	// Quarantined counts entries moved to quarantine/ — by the open
	// recovery scan and by Get checksum failures since.
	Quarantined uint64
	// TmpSwept counts abandoned temporary files removed at Open (the
	// debris of a crash mid-write).
	TmpSwept int
}

// Store is an open cell store. It is safe for concurrent use by the
// engine's workers.
type Store struct {
	dir      string
	cellsDir string
	opts     Options
	lockFile *os.File

	mu     sync.RWMutex
	index  map[engine.Key]indexEntry
	names  map[string]bool // committed file base names, for collision probing
	tmpSeq atomic.Uint64

	closed atomic.Bool

	hits, misses, puts, putErrors, quarantined atomic.Uint64
	tmpSwept                                   int
}

// indexEntry locates one committed cell on disk.
type indexEntry struct {
	file   string // base name under cells/
	cycles uint64
}

// diskKey mirrors engine.Key in the payload so the full key string is
// stored alongside the hash-derived file name (the content address).
// It is engine.Key itself: the struct has only exported fields.

// Open opens (creating if necessary) the store rooted at dir, acquires
// its exclusive lock, and runs the recovery scan. The returned store
// must be closed to release the lock (the kernel also releases it if
// the process dies).
func Open(dir string, opts Options) (*Store, error) {
	s := &Store{
		dir:      dir,
		cellsDir: filepath.Join(dir, cellsDirName),
		opts:     opts,
		index:    map[engine.Key]indexEntry{},
		names:    map[string]bool{},
	}
	for _, d := range []string{dir, s.cellsDir, filepath.Join(dir, quarantineName)} {
		if err := os.MkdirAll(d, 0o777); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	if err := s.acquireLock(); err != nil {
		return nil, err
	}
	if err := s.recoverScan(); err != nil {
		s.releaseLock()
		return nil, err
	}
	return s, nil
}

// acquireLock flocks <dir>/LOCK exclusively and non-blocking, writing
// the owner pid for diagnostics.
func (s *Store) acquireLock() error {
	f, err := os.OpenFile(filepath.Join(s.dir, lockName), os.O_RDWR|os.O_CREATE, 0o666)
	if err != nil {
		return fmt.Errorf("store: lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		owner, _ := os.ReadFile(filepath.Join(s.dir, lockName))
		f.Close()
		if len(owner) > 0 {
			return fmt.Errorf("%w (dir %s, held by pid %s)", ErrLocked, s.dir, strings.TrimSpace(string(owner)))
		}
		return fmt.Errorf("%w (dir %s)", ErrLocked, s.dir)
	}
	f.Truncate(0)
	fmt.Fprintf(f, "%d\n", os.Getpid())
	s.lockFile = f
	return nil
}

func (s *Store) releaseLock() {
	if s.lockFile != nil {
		syscall.Flock(int(s.lockFile.Fd()), syscall.LOCK_UN)
		s.lockFile.Close()
		s.lockFile = nil
	}
}

// recoverScan walks cells/: abandoned *.tmp files are removed, every
// *.cell file is validated (header, length, checksum, key decode) and
// either indexed or quarantined. The scan order is sorted so collision
// chains resolve deterministically.
func (s *Store) recoverScan() error {
	entries, err := os.ReadDir(s.cellsDir)
	if err != nil {
		return fmt.Errorf("store: scan: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, de := range entries {
		if de.IsDir() {
			continue
		}
		names = append(names, de.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(s.cellsDir, name)
		if strings.HasSuffix(name, tmpExt) {
			os.Remove(path)
			s.tmpSwept++
			s.logf("store: swept abandoned temp file %s", name)
			continue
		}
		if !strings.HasSuffix(name, cellExt) {
			continue
		}
		key, cycles, _, err := readEntry(path, false)
		if err != nil {
			s.quarantine(name, err)
			continue
		}
		if _, dup := s.index[key]; dup {
			// Two committed files claim one key (should be impossible;
			// defensive): keep the first, set the second aside.
			s.quarantine(name, errors.New("duplicate key"))
			continue
		}
		s.index[key] = indexEntry{file: name, cycles: cycles}
		s.names[name] = true
	}
	return nil
}

// quarantine moves a damaged entry into quarantine/ under a
// non-clobbering name. Removal of the source is the one thing that must
// succeed; if even the rename fails the file is left in place and the
// entry simply stays unindexed.
func (s *Store) quarantine(name string, cause error) {
	src := filepath.Join(s.cellsDir, name)
	dst := filepath.Join(s.dir, quarantineName, name)
	for i := 1; ; i++ {
		if _, err := os.Lstat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(s.dir, quarantineName, fmt.Sprintf("%s.%d", name, i))
	}
	if err := os.Rename(src, dst); err != nil {
		s.logf("store: quarantine of %s failed: %v (entry left unindexed)", name, err)
	}
	s.quarantined.Add(1)
	s.logf("store: quarantined %s: %v", name, cause)
}

func (s *Store) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// readEntry reads and validates one entry file: magic, exact length,
// CRC32 over the payload, then gob-decodes the key and cycle count, and
// — only when wantValue is set — the value itself.
func readEntry(path string, wantValue bool) (key engine.Key, cycles uint64, val any, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return key, 0, nil, err
	}
	if len(raw) == 0 {
		return key, 0, nil, errors.New("zero-length entry")
	}
	if len(raw) < headerLen {
		return key, 0, nil, fmt.Errorf("truncated header (%d bytes)", len(raw))
	}
	if !bytes.Equal(raw[:4], magic[:]) {
		return key, 0, nil, fmt.Errorf("bad magic %q", raw[:4])
	}
	wantCRC := binary.BigEndian.Uint32(raw[4:8])
	plen := binary.BigEndian.Uint32(raw[8:12])
	payload := raw[headerLen:]
	if uint32(len(payload)) != plen {
		return key, 0, nil, fmt.Errorf("payload length %d, header says %d", len(payload), plen)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return key, 0, nil, fmt.Errorf("checksum mismatch (stored %08x, computed %08x)", wantCRC, got)
	}
	dec := gob.NewDecoder(bytes.NewReader(payload))
	if err := dec.Decode(&key); err != nil {
		return key, 0, nil, fmt.Errorf("key decode: %w", err)
	}
	if err := dec.Decode(&cycles); err != nil {
		return key, 0, nil, fmt.Errorf("cycles decode: %w", err)
	}
	if wantValue {
		if err := dec.Decode(&val); err != nil {
			return key, 0, nil, fmt.Errorf("value decode: %w", err)
		}
	}
	return key, cycles, val, nil
}

// Get returns the stored value and simulated-cycle cost for key. It
// satisfies engine.SecondLevel: a miss — including a read or decode
// failure, which also quarantines the damaged file — is (nil, 0,
// false), never an error. The checksum is re-verified on every read.
func (s *Store) Get(key engine.Key) (val any, cycles uint64, ok bool) {
	if s.closed.Load() {
		return nil, 0, false
	}
	s.mu.RLock()
	ent, found := s.index[key]
	s.mu.RUnlock()
	if !found {
		s.misses.Add(1)
		return nil, 0, false
	}
	gotKey, cycles, val, err := readEntry(filepath.Join(s.cellsDir, ent.file), true)
	if err == nil && gotKey != key {
		err = fmt.Errorf("entry holds key %v", gotKey)
	}
	if err != nil {
		// Self-healing read path: drop the entry and set the file aside
		// so the cell re-simulates from here on.
		s.mu.Lock()
		if cur, still := s.index[key]; still && cur.file == ent.file {
			delete(s.index, key)
			delete(s.names, ent.file)
			s.quarantine(ent.file, err)
		}
		s.mu.Unlock()
		s.misses.Add(1)
		return nil, 0, false
	}
	s.hits.Add(1)
	return val, cycles, true
}

// Put commits (key, val, cycles) atomically: encode, write to a
// temporary file, sync (unless Options.NoSync), rename into place. It
// satisfies engine.SecondLevel; failures are counted and logged, never
// returned — a broken disk degrades the cache, not the run.
func (s *Store) Put(key engine.Key, val any, cycles uint64) {
	if err := s.put(key, val, cycles); err != nil {
		s.putErrors.Add(1)
		s.logf("store: put %s: %v", key.String(), err)
	}
}

func (s *Store) put(key engine.Key, val any, cycles uint64) error {
	if s.closed.Load() {
		return errors.New("store closed")
	}
	if val == nil {
		return errors.New("nil value")
	}
	s.mu.RLock()
	_, dup := s.index[key]
	s.mu.RUnlock()
	if dup {
		// Deterministic cells make re-puts value-identical; skip the
		// write instead of churning the file.
		return nil
	}

	var payload bytes.Buffer
	enc := gob.NewEncoder(&payload)
	if err := enc.Encode(&key); err != nil {
		return err
	}
	if err := enc.Encode(cycles); err != nil {
		return err
	}
	if err := enc.Encode(&val); err != nil {
		return err // typically: concrete type not registered with gob
	}
	buf := make([]byte, headerLen+payload.Len())
	copy(buf, magic[:])
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload.Bytes()))
	binary.BigEndian.PutUint32(buf[8:12], uint32(payload.Len()))
	copy(buf[headerLen:], payload.Bytes())

	tmp := filepath.Join(s.cellsDir, fmt.Sprintf("put-%d-%d%s", os.Getpid(), s.tmpSeq.Add(1), tmpExt))
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if !s.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}

	s.mu.Lock()
	if _, dup := s.index[key]; dup {
		s.mu.Unlock()
		os.Remove(tmp)
		return nil
	}
	name := s.pickNameLocked(key)
	if err := os.Rename(tmp, filepath.Join(s.cellsDir, name)); err != nil {
		s.mu.Unlock()
		os.Remove(tmp)
		return err
	}
	s.index[key] = indexEntry{file: name, cycles: cycles}
	s.names[name] = true
	s.mu.Unlock()
	s.puts.Add(1)
	return nil
}

// pickNameLocked chooses the entry file name for key: the key hash,
// with a probe suffix in the (astronomically unlikely) event two
// distinct keys share a 64-bit hash. Caller holds mu.
func (s *Store) pickNameLocked(key engine.Key) string {
	base := fmt.Sprintf("%016x", key.Hash())
	name := base + cellExt
	for i := 1; s.names[name]; i++ {
		name = fmt.Sprintf("%s-%d%s", base, i, cellExt)
	}
	return name
}

// Len returns the number of committed entries currently indexed.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Entries:     s.Len(),
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Puts:        s.puts.Load(),
		PutErrors:   s.putErrors.Load(),
		Quarantined: s.quarantined.Load(),
		TmpSwept:    s.tmpSwept,
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close releases the exclusive lock and marks the store closed.
// Idempotent; Get/Put after Close are misses/no-ops, matching the
// engine's drain-then-close shutdown order.
func (s *Store) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.releaseLock()
	return nil
}

// Note reports the store's effectiveness in one batch-summary line,
// mirroring the engine's cell-cache note. Printed to stderr by the CLI
// so stdout stays byte-identical between cold and warm runs.
func (s *Store) Note() string {
	st := s.Stats()
	return fmt.Sprintf("cell store: %d entries, %d hits, %d misses, %d written, %d quarantined (dir %s)",
		st.Entries, st.Hits, st.Misses, st.Puts, st.Quarantined, s.dir)
}
