package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
	"time"

	"spectrebench/internal/engine"
	"spectrebench/internal/faultinject"
)

// structVal is a registered structured cell value for round-trip tests.
type structVal struct {
	Name string
	Xs   []float64
}

func init() { gob.Register(structVal{}) }

func testKey(i int) engine.Key {
	return engine.Key{Workload: "test/cell", Uarch: "skylake", Config: fmt.Sprintf("case=%d", i)}
}

func openT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{NoSync: true, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

// segFiles returns the store's segment log paths in name order.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, segsDirName, segPrefix+"*"+segExt))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no segment logs under %s", dir)
	}
	return paths
}

// recordOffsets scans a segment file and returns the frame offset and
// length of every record in it (the test-side mirror of the scan).
func recordOffsets(t *testing.T, path string) [][2]int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	parse := parseRecord
	if len(data) >= 4 && string(data[:4]) == string(magicV3[:]) {
		parse = parseRecordV3
	}
	var out [][2]int
	off := 0
	for off < len(data) {
		_, _, _, n, err := parse(data, off)
		if err != nil {
			t.Fatalf("%s: record at %d: %v", path, off, err)
		}
		out = append(out, [2]int{off, n})
		off += n
	}
	return out
}

// TestRoundTripAcrossReopen pins the basic contract: heterogeneous
// values put into one store come back bit-equal from a fresh Open of
// the same directory.
func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	vals := map[int]any{
		0: float64(3.25),
		1: []string{"row-a", "row-b"},
		2: structVal{Name: "pair", Xs: []float64{1, 2.5}},
	}

	s := openT(t, dir)
	for i, v := range vals {
		s.Put(testKey(i), v, uint64(1000+i))
	}
	if st := s.Stats(); st.Puts != 3 || st.PutErrors != 0 {
		t.Fatalf("puts=%d putErrors=%d, want 3/0", st.Puts, st.PutErrors)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := openT(t, dir)
	defer s2.Close()
	if s2.Len() != 3 {
		t.Fatalf("reopened Len=%d, want 3", s2.Len())
	}
	for i, want := range vals {
		got, cycles, ok := s2.Get(testKey(i))
		if !ok {
			t.Fatalf("key %d: miss after reopen", i)
		}
		if cycles != uint64(1000+i) {
			t.Errorf("key %d: cycles=%d, want %d", i, cycles, 1000+i)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("key %d: value %#v, want %#v", i, got, want)
		}
	}
}

// TestWarmRePutSkipsDuplicate pins the warm-run contract `run`/serve
// depend on: re-putting a committed key writes nothing (Puts stays 0 on
// a fully warm sweep) and the stored value is untouched.
func TestWarmRePutSkipsDuplicate(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Put(testKey(0), 1.5, 10)
	s.Close()

	s2 := openT(t, dir)
	defer s2.Close()
	s2.Put(testKey(0), 999.0, 999)
	if st := s2.Stats(); st.Puts != 0 || st.PutErrors != 0 {
		t.Errorf("puts=%d putErrors=%d after warm re-put, want 0/0", st.Puts, st.PutErrors)
	}
	if val, cycles, ok := s2.Get(testKey(0)); !ok || val != 1.5 || cycles != 10 {
		t.Errorf("got (%v, %d, %v), want (1.5, 10, true)", val, cycles, ok)
	}
}

// TestTornTailIsTruncatedNotQuarantined: the partial record a crash
// mid-append leaves is expected debris — the scan truncates it,
// counts it in TornTail, and quarantines nothing.
func TestTornTailIsTruncatedNotQuarantined(t *testing.T) {
	dir := t.TempDir()
	const n = 5
	s := openT(t, dir)
	for i := 0; i < n; i++ {
		s.Put(testKey(i), float64(i), uint64(i))
	}
	s.Close()

	seg := segFiles(t, dir)[0]
	recs := recordOffsets(t, seg)
	if len(recs) != n {
		t.Fatalf("%d records, want %d", len(recs), n)
	}
	last := recs[n-1]
	// Tear the last record mid-payload.
	if err := os.Truncate(seg, int64(last[0]+last[1]/2)); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir)
	defer s2.Close()
	st := s2.Stats()
	if st.TornTail != 1 {
		t.Errorf("tornTail=%d, want 1", st.TornTail)
	}
	if st.Quarantined != 0 {
		t.Errorf("quarantined=%d, want 0 (a torn tail is not damage)", st.Quarantined)
	}
	if s2.Len() != n-1 {
		t.Errorf("Len=%d, want %d", s2.Len(), n-1)
	}
	for i := 0; i < n-1; i++ {
		if val, _, ok := s2.Get(testKey(i)); !ok || val != float64(i) {
			t.Errorf("key %d: got (%v, %v), want (%v, true)", i, val, ok, float64(i))
		}
	}
}

// TestMidSegmentCorruptionQuarantinesAndResyncs is the crash-safety
// core for the segmented layout: a corrupt span in the middle of a log
// must cost exactly the damaged record — the scan resynchronises on the
// next valid record, sets the damaged bytes aside in quarantine/, and
// rewrites the segment so a second open finds nothing left to repair.
func TestMidSegmentCorruptionQuarantinesAndResyncs(t *testing.T) {
	dir := t.TempDir()
	const n = 6
	s := openT(t, dir)
	for i := 0; i < n; i++ {
		s.Put(testKey(i), float64(i)*1.5, uint64(100+i))
	}
	s.Close()

	seg := segFiles(t, dir)[0]
	recs := recordOffsets(t, seg)
	// Flip a payload bit of record 2 and destroy record 4's magic —
	// one checksum failure and one framing failure, with an intact
	// record between them that must keep serving.
	f, err := os.OpenFile(seg, os.O_RDWR, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte{0xFF}, int64(recs[2][0]+headerLen+1))
	f.WriteAt([]byte("XXXX"), int64(recs[4][0]))
	f.Close()

	s2 := openT(t, dir)
	st := s2.Stats()
	if st.Quarantined != 2 {
		t.Errorf("quarantined=%d, want 2", st.Quarantined)
	}
	if s2.Len() != n-2 {
		t.Errorf("Len=%d, want %d", s2.Len(), n-2)
	}
	for i := 0; i < n; i++ {
		val, cycles, ok := s2.Get(testKey(i))
		if i == 2 || i == 4 {
			if ok {
				t.Errorf("key %d: served despite damage", i)
			}
			continue
		}
		if !ok || val != float64(i)*1.5 || cycles != uint64(100+i) {
			t.Errorf("key %d: got (%v, %d, %v), want (%v, %d, true)", i, val, cycles, ok, float64(i)*1.5, 100+i)
		}
	}
	// The damaged bytes are set aside, not deleted: operators can
	// inspect them.
	qents, err := os.ReadDir(filepath.Join(dir, quarantineName))
	if err != nil {
		t.Fatal(err)
	}
	if len(qents) != 2 {
		t.Errorf("quarantine/ holds %d files, want 2", len(qents))
	}
	s2.Close()

	// The scan rewrote the segment without the damaged span, so a
	// third open converges: nothing new quarantined, same entries.
	s3 := openT(t, dir)
	defer s3.Close()
	st3 := s3.Stats()
	if st3.Quarantined != 0 || st3.TornTail != 0 {
		t.Errorf("second reopen: quarantined=%d tornTail=%d, want 0/0 (repair did not converge)", st3.Quarantined, st3.TornTail)
	}
	if s3.Len() != n-2 {
		t.Errorf("second reopen: Len=%d, want %d", s3.Len(), n-2)
	}
}

// TestAbandonedTempFilesAreSwept: interrupted segment rewrites leave
// *.tmp debris that the next open removes without quarantining.
func TestAbandonedTempFilesAreSwept(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Put(testKey(0), 1.0, 1)
	s.Close()
	if err := os.WriteFile(filepath.Join(dir, segsDirName, "seg-000009.log.tmp"), []byte("partial"), 0o666); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir)
	defer s2.Close()
	if st := s2.Stats(); st.TmpSwept != 1 || st.Quarantined != 0 {
		t.Errorf("tmpSwept=%d quarantined=%d, want 1/0", st.TmpSwept, st.Quarantined)
	}
	if s2.Len() != 1 {
		t.Errorf("Len=%d, want 1", s2.Len())
	}
}

// TestGetSelfHealsCorruptionDiscoveredOnRead covers rot that appears
// after the open scan: a Get that fails the checksum quarantines the
// record and degrades to a miss instead of returning garbage.
func TestGetSelfHealsCorruptionDiscoveredOnRead(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	defer s.Close()
	s.Put(testKey(0), 42.0, 7)

	seg := segFiles(t, dir)[0]
	f, err := os.OpenFile(seg, os.O_RDWR, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt([]byte{0xAA}, int64(headerLen+2))
	f.Close()

	if _, _, ok := s.Get(testKey(0)); ok {
		t.Fatal("corrupt record served")
	}
	if st := s.Stats(); st.Quarantined != 1 || st.DeadRecords != 1 {
		t.Errorf("quarantined=%d deadRecords=%d, want 1/1", st.Quarantined, st.DeadRecords)
	}
	if s.Len() != 0 {
		t.Errorf("Len=%d after self-heal, want 0", s.Len())
	}
	// The cell re-simulates and re-puts cleanly from here on.
	s.Put(testKey(0), 42.0, 7)
	if val, _, ok := s.Get(testKey(0)); !ok || val != 42.0 {
		t.Errorf("re-put after self-heal: got (%v, %v), want (42, true)", val, ok)
	}
}

// TestRotationAndCompaction exercises segment rotation and the
// compactor: dead records (superseded by self-heals) make a sealed
// segment mostly dead, Compact rewrites its live records forward and
// deletes the file, and every live entry survives — across a reopen.
func TestRotationAndCompaction(t *testing.T) {
	old := segMaxBytes
	segMaxBytes = 256 // rotate every few records
	defer func() { segMaxBytes = old }()

	dir := t.TempDir()
	const n = 24
	s := openT(t, dir)
	for i := 0; i < n; i++ {
		s.Put(testKey(i), float64(i), uint64(i))
	}
	st := s.Stats()
	if st.Segments < 3 {
		t.Fatalf("segments=%d, want rotation to have produced several", st.Segments)
	}

	// Kill most of the first sealed segment's records via self-heal:
	// corrupt them on disk and Get them.
	first := segFiles(t, dir)[0]
	recs := recordOffsets(t, first)
	f, err := os.OpenFile(first, os.O_RDWR, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	dead := map[int]bool{}
	for _, r := range recs[:len(recs)-1] { // leave one live
		f.WriteAt([]byte{0xFF}, int64(r[0]+headerLen+1))
	}
	f.Close()
	for i := 0; i < n; i++ {
		if _, _, ok := s.Get(testKey(i)); !ok {
			dead[i] = true
		}
	}
	if len(dead) != len(recs)-1 {
		t.Fatalf("self-healed %d records, want %d", len(dead), len(recs)-1)
	}

	s.Compact()
	st = s.Stats()
	if st.Compactions == 0 {
		t.Errorf("compactions=%d, want > 0", st.Compactions)
	}
	if _, err := os.Stat(first); !os.IsNotExist(err) {
		t.Errorf("compacted segment %s still on disk", first)
	}
	for i := 0; i < n; i++ {
		val, cycles, ok := s.Get(testKey(i))
		if dead[i] {
			if ok {
				t.Errorf("key %d: resurrected by compaction", i)
			}
			continue
		}
		if !ok || val != float64(i) || cycles != uint64(i) {
			t.Errorf("key %d: got (%v, %d, %v), want (%v, %d, true)", i, val, cycles, ok, float64(i), i)
		}
	}
	s.Close()

	// The compacted layout reopens clean with the same live set.
	s2 := openT(t, dir)
	defer s2.Close()
	if s2.Len() != n-len(dead) {
		t.Errorf("reopened Len=%d, want %d", s2.Len(), n-len(dead))
	}
	for i := 0; i < n; i++ {
		if _, _, ok := s2.Get(testKey(i)); ok == dead[i] {
			t.Errorf("key %d: ok=%v after reopen, want %v", i, ok, !dead[i])
		}
	}
}

// TestStoreWriteFaultDegradesCleanly drives the StoreWrite disk-full
// fault point (satellite of the segmented-store work): injected short
// writes must be rolled back — counted in PutErrors, the failed key
// absent but re-puttable, the log tail clean enough that a reopen
// finds no damage at all.
func TestStoreWriteFaultDegradesCleanly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true, Logf: t.Logf, Fault: faultinject.New(42)})
	if err != nil {
		t.Fatal(err)
	}
	const n = 512 // rate is 1/64: expect several fires
	for i := 0; i < n; i++ {
		s.Put(testKey(i), float64(i), uint64(i))
	}
	st := s.Stats()
	if st.PutErrors == 0 {
		t.Fatal("no injected put errors in 512 puts at rate 1/64")
	}
	if st.Puts+st.PutErrors != n {
		t.Errorf("puts=%d + putErrors=%d != %d", st.Puts, st.PutErrors, n)
	}
	// A failed put degrades to a miss; the key can be re-put later
	// (the engine simply re-publishes next cold run).
	missing := -1
	for i := 0; i < n; i++ {
		if _, _, ok := s.Get(testKey(i)); !ok {
			missing = i
			break
		}
	}
	if missing < 0 {
		t.Fatal("every key present despite put errors")
	}
	s.Put(testKey(missing), float64(missing), uint64(missing))
	if _, _, ok := s.Get(testKey(missing)); !ok {
		t.Errorf("re-put of key %d after injected failure still missing", missing)
	}
	s.Close()

	// The rollback kept the log clean: reopening finds no torn tails,
	// no quarantines, and every committed entry.
	s2 := openT(t, dir)
	defer s2.Close()
	st2 := s2.Stats()
	if st2.TornTail != 0 || st2.Quarantined != 0 {
		t.Errorf("reopen after injected faults: tornTail=%d quarantined=%d, want 0/0", st2.TornTail, st2.Quarantined)
	}
	for i := 0; i < n; i++ {
		val, _, ok := s2.Get(testKey(i))
		if !ok {
			continue // lost to an injected failure and never re-put
		}
		if val != float64(i) {
			t.Errorf("key %d: value %v corrupted, want %v", i, val, float64(i))
		}
	}
}

// TestExclusiveLock pins single-writer semantics: a second Open of a
// live store fails with ErrLocked and succeeds after Close.
func TestExclusiveLock(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open: %v, want ErrLocked", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir)
	s2.Close()
}

// unregistered is deliberately NOT gob-registered.
type unregistered struct{ X int }

// TestPutDegradesOnUnregisteredType: an unencodable value must not
// error the caller or corrupt the store — it is counted and skipped.
func TestPutDegradesOnUnregisteredType(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	defer s.Close()
	s.Put(testKey(0), unregistered{1}, 5)
	if st := s.Stats(); st.PutErrors != 1 || st.Puts != 0 {
		t.Errorf("putErrors=%d puts=%d, want 1/0", st.PutErrors, st.Puts)
	}
	if s.Len() != 0 {
		t.Errorf("Len=%d, want 0", s.Len())
	}
}

// TestClosedStoreDegrades: Get and Put after Close are a miss and a
// no-op (the daemon's drain path closes the store while stragglers may
// still publish).
func TestClosedStoreDegrades(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Put(testKey(0), 1.0, 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close:", err)
	}
	if _, _, ok := s.Get(testKey(0)); ok {
		t.Error("Get served after Close")
	}
	s.Put(testKey(1), 2.0, 2)
	if st := s.Stats(); st.Puts != 1 {
		t.Errorf("puts=%d after post-close Put, want 1", st.Puts)
	}
}

// killHelperEnv gates the re-exec helper below.
const killHelperEnv = "SPECTREBENCH_STORE_KILL_HELPER"

// TestKillNineMidWriteNeverCorruptsCommittedEntries re-executes the
// test binary as a writer child that puts entries as fast as it can,
// SIGKILLs it mid-stream, and reopens the directory: every committed
// entry must read back intact, nothing may be quarantined (a torn log
// tail is truncated, not quarantined), and the committed set must be a
// clean prefix of the append order. Repeated for several kill/reopen
// rounds on the same directory.
func TestKillNineMidWriteNeverCorruptsCommittedEntries(t *testing.T) {
	if dir := os.Getenv(killHelperEnv); dir != "" {
		killHelperMain(dir)
		return
	}
	if testing.Short() {
		t.Skip("subprocess kill rounds are slow")
	}

	dir := t.TempDir()
	prev := 0
	for round := 0; round < 3; round++ {
		cmd := exec.Command(os.Args[0], "-test.run=TestKillNineMidWriteNeverCorruptsCommittedEntries$")
		cmd.Env = append(os.Environ(), killHelperEnv+"="+dir)
		if err := cmd.Start(); err != nil {
			t.Fatalf("round %d: start helper: %v", round, err)
		}
		time.Sleep(150 * time.Millisecond)
		if err := cmd.Process.Kill(); err != nil {
			t.Fatalf("round %d: kill: %v", round, err)
		}
		cmd.Wait() // reaps; exit status is the kill signal, ignore

		s := openT(t, dir)
		st := s.Stats()
		if st.Quarantined != 0 {
			t.Fatalf("round %d: %d committed entries quarantined after kill -9", round, st.Quarantined)
		}
		// The helper writes keys sequentially, so the committed set is a
		// prefix; verify every indexed entry round-trips with the value
		// the helper derives from its index.
		got := 0
		for ; ; got++ {
			val, cycles, ok := s.Get(killKey(got))
			if !ok {
				break
			}
			if want := killVal(got); val != want || cycles != uint64(got) {
				t.Fatalf("round %d: entry %d: got (%v, %d), want (%v, %d)", round, got, val, cycles, want, got)
			}
		}
		if got != s.Len() {
			t.Fatalf("round %d: verified prefix %d != Len %d (committed set is not a clean prefix)", round, got, s.Len())
		}
		if got < prev {
			t.Fatalf("round %d: entries went backwards (%d -> %d)", round, prev, got)
		}
		prev = got
		if err := s.Close(); err != nil {
			t.Fatalf("round %d: close: %v", round, err)
		}
	}
	if prev == 0 {
		t.Skip("helper committed no entries before the kill; nothing exercised")
	}
}

func killKey(i int) engine.Key {
	return engine.Key{Workload: "kill/cell", Uarch: "skylake", Config: "i=" + strconv.Itoa(i)}
}

func killVal(i int) float64 { return float64(i)*2.5 + 0.25 }

// killHelperMain is the writer child: it opens the store and puts
// sequential entries until SIGKILLed. NoSync keeps the write rate high
// (the contract under test is atomicity against process death, which
// tail-only appends give with or without the fsync).
func killHelperMain(dir string) {
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kill helper:", err)
		os.Exit(1)
	}
	for i := 0; ; i++ {
		s.Put(killKey(i), killVal(i), uint64(i))
	}
}

// ---- v1 migration coverage ----

// writeV1Entry builds a v1 (file-per-entry) cell file byte-for-byte the
// way PR 6's store did: SBC1 magic, CRC32, payload length, then
// gob(key) gob(cycles) gob(value), under cells/<hash>.cell.
func writeV1Entry(t *testing.T, dir string, key engine.Key, val any, cycles uint64) string {
	t.Helper()
	var payload bytes.Buffer
	enc := gob.NewEncoder(&payload)
	if err := enc.Encode(&key); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(cycles); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(&val); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, headerLen+payload.Len())
	copy(buf, magicV1[:])
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload.Bytes()))
	binary.BigEndian.PutUint32(buf[8:12], uint32(payload.Len()))
	copy(buf[headerLen:], payload.Bytes())

	cells := filepath.Join(dir, cellsDirName)
	if err := os.MkdirAll(cells, 0o777); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(cells, fmt.Sprintf("%016x%s", key.Hash(), cellExt))
	if err := os.WriteFile(path, buf, 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMigrationFromV1 opens a v1 file-per-entry directory with the
// segmented store: every valid entry must survive into the segment
// logs, damaged entries must quarantine exactly as v1 recovery did,
// temp debris is swept, and the cells/ directory is gone afterwards.
func TestMigrationFromV1(t *testing.T) {
	dir := t.TempDir()
	const n = 6
	vals := map[int]any{
		0: float64(0.5),
		1: []string{"a", "b"},
		2: structVal{Name: "m", Xs: []float64{9}},
		3: float64(3.5),
		4: float64(4.5),
		5: float64(5.5),
	}
	files := make([]string, n)
	for i := 0; i < n; i++ {
		files[i] = writeV1Entry(t, dir, testKey(i), vals[i], uint64(10+i))
	}
	// Damage entry 1 (bit flip) and entry 4 (truncation); leave an
	// abandoned v1 put temporary.
	raw, err := os.ReadFile(files[1])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x40
	if err := os.WriteFile(files[1], raw, 0o666); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(files[4])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(files[4], fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, cellsDirName, "put-7-1.tmp"), []byte("partial"), 0o666); err != nil {
		t.Fatal(err)
	}
	damaged := map[int]bool{1: true, 4: true}

	s := openT(t, dir)
	st := s.Stats()
	if st.Migrated != n-len(damaged) {
		t.Errorf("migrated=%d, want %d", st.Migrated, n-len(damaged))
	}
	if st.Quarantined != uint64(len(damaged)) {
		t.Errorf("quarantined=%d, want %d", st.Quarantined, len(damaged))
	}
	if st.TmpSwept != 1 {
		t.Errorf("tmpSwept=%d, want 1", st.TmpSwept)
	}
	if s.Len() != n-len(damaged) {
		t.Errorf("Len=%d, want %d", s.Len(), n-len(damaged))
	}
	for i := 0; i < n; i++ {
		val, cycles, ok := s.Get(testKey(i))
		if damaged[i] {
			if ok {
				t.Errorf("key %d: served despite v1 damage", i)
			}
			continue
		}
		if !ok {
			t.Errorf("key %d: lost in migration", i)
			continue
		}
		if !reflect.DeepEqual(val, vals[i]) || cycles != uint64(10+i) {
			t.Errorf("key %d: got (%#v, %d), want (%#v, %d)", i, val, cycles, vals[i], 10+i)
		}
	}
	// The old layout is gone; the damaged originals are preserved in
	// quarantine/ for inspection.
	if _, err := os.Stat(filepath.Join(dir, cellsDirName)); !os.IsNotExist(err) {
		t.Errorf("cells/ still present after migration")
	}
	qents, err := os.ReadDir(filepath.Join(dir, quarantineName))
	if err != nil {
		t.Fatal(err)
	}
	if len(qents) != len(damaged) {
		t.Errorf("quarantine/ holds %d files, want %d", len(qents), len(damaged))
	}
	s.Close()
}

// TestMigrationIsIdempotent: a second open after migration finds a pure
// v2 layout — nothing re-migrated, nothing re-quarantined, every entry
// still served. It also covers the crash-mid-migration case: an entry
// present in both a segment and a leftover v1 file is recognised and
// the file simply removed.
func TestMigrationIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	const n = 4
	for i := 0; i < n; i++ {
		writeV1Entry(t, dir, testKey(i), float64(i), uint64(i))
	}
	s := openT(t, dir)
	if s.Stats().Migrated != n {
		t.Fatalf("migrated=%d, want %d", s.Stats().Migrated, n)
	}
	s.Close()

	// Simulate a crash between a migration append and the v1 remove: a
	// v1 file re-appears for an already-migrated key.
	writeV1Entry(t, dir, testKey(0), float64(0), 0)

	s2 := openT(t, dir)
	st := s2.Stats()
	if st.Migrated != 0 {
		t.Errorf("second open migrated=%d, want 0", st.Migrated)
	}
	if st.Quarantined != 0 || st.TornTail != 0 {
		t.Errorf("second open quarantined=%d tornTail=%d, want 0/0", st.Quarantined, st.TornTail)
	}
	if s2.Len() != n {
		t.Errorf("Len=%d, want %d", s2.Len(), n)
	}
	for i := 0; i < n; i++ {
		if val, cycles, ok := s2.Get(testKey(i)); !ok || val != float64(i) || cycles != uint64(i) {
			t.Errorf("key %d: got (%v, %d, %v), want (%v, %d, true)", i, val, cycles, ok, float64(i), i)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, cellsDirName)); !os.IsNotExist(err) {
		t.Errorf("cells/ still present after second open")
	}
	s2.Close()
}
