package store

import (
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
	"time"

	"spectrebench/internal/engine"
)

// structVal is a registered structured cell value for round-trip tests.
type structVal struct {
	Name string
	Xs   []float64
}

func init() { gob.Register(structVal{}) }

func testKey(i int) engine.Key {
	return engine.Key{Workload: "test/cell", Uarch: "skylake", Config: fmt.Sprintf("case=%d", i)}
}

func openT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{NoSync: true, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

// cellFile returns the on-disk path of key's committed entry.
func cellFile(t *testing.T, dir string, key engine.Key) string {
	t.Helper()
	path := filepath.Join(dir, cellsDirName, fmt.Sprintf("%016x%s", key.Hash(), cellExt))
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("entry file for %s: %v", key.String(), err)
	}
	return path
}

// TestRoundTripAcrossReopen pins the basic contract: heterogeneous
// values put into one store come back bit-equal from a fresh Open of
// the same directory.
func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	vals := map[int]any{
		0: float64(3.25),
		1: []string{"row-a", "row-b"},
		2: structVal{Name: "pair", Xs: []float64{1, 2.5}},
	}

	s := openT(t, dir)
	for i, v := range vals {
		s.Put(testKey(i), v, uint64(1000+i))
	}
	if st := s.Stats(); st.Puts != 3 || st.PutErrors != 0 {
		t.Fatalf("puts=%d putErrors=%d, want 3/0", st.Puts, st.PutErrors)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := openT(t, dir)
	defer s2.Close()
	if s2.Len() != 3 {
		t.Fatalf("reopened Len=%d, want 3", s2.Len())
	}
	for i, want := range vals {
		got, cycles, ok := s2.Get(testKey(i))
		if !ok {
			t.Fatalf("key %d: miss after reopen", i)
		}
		if cycles != uint64(1000+i) {
			t.Errorf("key %d: cycles=%d, want %d", i, cycles, 1000+i)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("key %d: value %#v, want %#v", i, got, want)
		}
	}
}

// TestRecoveryQuarantinesExactlyTheDamagedEntries is the crash-safety
// core: after every damage mode the issue names — truncation, bit
// flips, zero-length files, plus bad magic and abandoned temp files —
// a fresh Open must quarantine exactly the damaged entries and serve
// every undamaged one.
func TestRecoveryQuarantinesExactlyTheDamagedEntries(t *testing.T) {
	dir := t.TempDir()
	const n = 8
	s := openT(t, dir)
	for i := 0; i < n; i++ {
		s.Put(testKey(i), float64(i)*1.5, uint64(100+i))
	}
	files := make([]string, n)
	for i := 0; i < n; i++ {
		files[i] = cellFile(t, dir, testKey(i))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	damaged := map[int]string{1: "truncated", 2: "bit-flipped", 3: "zero-length", 4: "bad-magic"}
	// Truncate entry 1 mid-payload.
	fi, err := os.Stat(files[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(files[1], fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit of entry 2.
	raw, err := os.ReadFile(files[2])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x40
	if err := os.WriteFile(files[2], raw, 0o666); err != nil {
		t.Fatal(err)
	}
	// Zero out entry 3 (crash before any byte reached the file).
	if err := os.Truncate(files[3], 0); err != nil {
		t.Fatal(err)
	}
	// Corrupt entry 4's magic.
	raw4, err := os.ReadFile(files[4])
	if err != nil {
		t.Fatal(err)
	}
	raw4[0] = 'X'
	if err := os.WriteFile(files[4], raw4, 0o666); err != nil {
		t.Fatal(err)
	}
	// Leave an abandoned temp file (crash mid-write) and a stray
	// non-entry file (must be ignored, not quarantined).
	if err := os.WriteFile(filepath.Join(dir, cellsDirName, "put-999-1.tmp"), []byte("partial"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, cellsDirName, "README"), []byte("not a cell"), 0o666); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir)
	defer s2.Close()
	st := s2.Stats()
	if st.Quarantined != uint64(len(damaged)) {
		t.Errorf("quarantined=%d, want %d", st.Quarantined, len(damaged))
	}
	if st.TmpSwept != 1 {
		t.Errorf("tmpSwept=%d, want 1", st.TmpSwept)
	}
	if s2.Len() != n-len(damaged) {
		t.Errorf("Len=%d, want %d", s2.Len(), n-len(damaged))
	}
	for i := 0; i < n; i++ {
		val, cycles, ok := s2.Get(testKey(i))
		if _, bad := damaged[i]; bad {
			if ok {
				t.Errorf("key %d (%s): served despite damage", i, damaged[i])
			}
			continue
		}
		if !ok {
			t.Errorf("key %d: undamaged entry not served", i)
			continue
		}
		if val != float64(i)*1.5 || cycles != uint64(100+i) {
			t.Errorf("key %d: got (%v, %d), want (%v, %d)", i, val, cycles, float64(i)*1.5, 100+i)
		}
	}

	// The damaged files are set aside, not deleted: operators can
	// inspect them.
	qents, err := os.ReadDir(filepath.Join(dir, quarantineName))
	if err != nil {
		t.Fatal(err)
	}
	if len(qents) != len(damaged) {
		t.Errorf("quarantine/ holds %d files, want %d", len(qents), len(damaged))
	}
}

// TestGetSelfHealsCorruptionDiscoveredOnRead covers rot that appears
// after the open scan: a Get that fails the checksum quarantines the
// entry and degrades to a miss instead of returning garbage.
func TestGetSelfHealsCorruptionDiscoveredOnRead(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	defer s.Close()
	s.Put(testKey(0), 42.0, 7)
	path := cellFile(t, dir, testKey(0))

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerLen+2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o666); err != nil {
		t.Fatal(err)
	}

	if _, _, ok := s.Get(testKey(0)); ok {
		t.Fatal("corrupt entry served")
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Errorf("quarantined=%d, want 1", st.Quarantined)
	}
	if s.Len() != 0 {
		t.Errorf("Len=%d after self-heal, want 0", s.Len())
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("damaged file still present at %s", path)
	}
}

// TestExclusiveLock pins single-writer semantics: a second Open of a
// live store fails with ErrLocked and succeeds after Close.
func TestExclusiveLock(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open: %v, want ErrLocked", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir)
	s2.Close()
}

// unregistered is deliberately NOT gob-registered.
type unregistered struct{ X int }

// TestPutDegradesOnUnregisteredType: an unencodable value must not
// error the caller or corrupt the store — it is counted and skipped.
func TestPutDegradesOnUnregisteredType(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	defer s.Close()
	s.Put(testKey(0), unregistered{1}, 5)
	if st := s.Stats(); st.PutErrors != 1 || st.Puts != 0 {
		t.Errorf("putErrors=%d puts=%d, want 1/0", st.PutErrors, st.Puts)
	}
	if s.Len() != 0 {
		t.Errorf("Len=%d, want 0", s.Len())
	}
}

// TestClosedStoreDegrades: Get and Put after Close are a miss and a
// no-op (the daemon's drain path closes the store while stragglers may
// still publish).
func TestClosedStoreDegrades(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Put(testKey(0), 1.0, 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close:", err)
	}
	if _, _, ok := s.Get(testKey(0)); ok {
		t.Error("Get served after Close")
	}
	s.Put(testKey(1), 2.0, 2)
	if st := s.Stats(); st.Puts != 1 {
		t.Errorf("puts=%d after post-close Put, want 1", st.Puts)
	}
}

// killHelperEnv gates the re-exec helper below.
const killHelperEnv = "SPECTREBENCH_STORE_KILL_HELPER"

// TestKillNineMidWriteNeverCorruptsCommittedEntries re-executes the
// test binary as a writer child that puts entries as fast as it can,
// SIGKILLs it mid-stream, and reopens the directory: every committed
// entry must read back intact, nothing may be quarantined, and the
// only debris allowed is swept temp files. Repeated for several
// kill/reopen rounds on the same directory.
func TestKillNineMidWriteNeverCorruptsCommittedEntries(t *testing.T) {
	if dir := os.Getenv(killHelperEnv); dir != "" {
		killHelperMain(dir)
		return
	}
	if testing.Short() {
		t.Skip("subprocess kill rounds are slow")
	}

	dir := t.TempDir()
	prev := 0
	for round := 0; round < 3; round++ {
		cmd := exec.Command(os.Args[0], "-test.run=TestKillNineMidWriteNeverCorruptsCommittedEntries$")
		cmd.Env = append(os.Environ(), killHelperEnv+"="+dir)
		if err := cmd.Start(); err != nil {
			t.Fatalf("round %d: start helper: %v", round, err)
		}
		time.Sleep(150 * time.Millisecond)
		if err := cmd.Process.Kill(); err != nil {
			t.Fatalf("round %d: kill: %v", round, err)
		}
		cmd.Wait() // reaps; exit status is the kill signal, ignore

		s := openT(t, dir)
		st := s.Stats()
		if st.Quarantined != 0 {
			t.Fatalf("round %d: %d committed entries quarantined after kill -9", round, st.Quarantined)
		}
		// The helper writes keys sequentially, so the committed set is a
		// prefix; verify every indexed entry round-trips with the value
		// the helper derives from its index.
		got := 0
		for ; ; got++ {
			val, cycles, ok := s.Get(killKey(got))
			if !ok {
				break
			}
			if want := killVal(got); val != want || cycles != uint64(got) {
				t.Fatalf("round %d: entry %d: got (%v, %d), want (%v, %d)", round, got, val, cycles, want, got)
			}
		}
		if got != s.Len() {
			t.Fatalf("round %d: verified prefix %d != Len %d (committed set is not a clean prefix)", round, got, s.Len())
		}
		if got < prev {
			t.Fatalf("round %d: entries went backwards (%d -> %d)", round, prev, got)
		}
		prev = got
		if err := s.Close(); err != nil {
			t.Fatalf("round %d: close: %v", round, err)
		}
	}
	if prev == 0 {
		t.Skip("helper committed no entries before the kill; nothing exercised")
	}
}

func killKey(i int) engine.Key {
	return engine.Key{Workload: "kill/cell", Uarch: "skylake", Config: "i=" + strconv.Itoa(i)}
}

func killVal(i int) float64 { return float64(i)*2.5 + 0.25 }

// killHelperMain is the writer child: it opens the store and puts
// sequential entries until SIGKILLed. NoSync keeps the write rate high
// (the contract under test is atomicity against process death, which
// rename gives with or without the fsync).
func killHelperMain(dir string) {
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kill helper:", err)
		os.Exit(1)
	}
	for i := 0; ; i++ {
		s.Put(killKey(i), killVal(i), uint64(i))
	}
}
