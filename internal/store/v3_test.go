package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"spectrebench/internal/engine"
)

func openCodec(t *testing.T, dir, codec string) *Store {
	t.Helper()
	s, err := Open(dir, Options{NoSync: true, Logf: t.Logf, Codec: codec})
	if err != nil {
		t.Fatalf("Open(%s, codec=%s): %v", dir, codec, err)
	}
	return s
}

// TestV3RecordValueCodecs pins the fast-path layout: a float64 cell is
// stored as 8 raw bytes (vcodecFloat64), anything else as a
// self-contained gob (vcodecGob), and both round-trip across reopen.
func TestV3RecordValueCodecs(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Put(testKey(0), 3.25, 10)
	s.Put(testKey(1), structVal{Name: "s", Xs: []float64{1, 2}}, 11)
	s.Close()

	seg := segFiles(t, dir)[0]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	offs := recordOffsets(t, seg)
	if len(offs) != 2 {
		t.Fatalf("segment holds %d records, want 2", len(offs))
	}
	wantVC := []byte{vcodecFloat64, vcodecGob}
	for i, span := range offs {
		if vc := data[span[0]+headerLen+1]; vc != wantVC[i] {
			t.Errorf("record %d: vcodec=%d, want %d", i, vc, wantVC[i])
		}
	}

	s2 := openT(t, dir)
	defer s2.Close()
	if v, c, ok := s2.Get(testKey(0)); !ok || v != 3.25 || c != 10 {
		t.Errorf("float64 cell: got (%v, %d, %v)", v, c, ok)
	}
	v, _, ok := s2.Get(testKey(1))
	if !ok || !reflect.DeepEqual(v, structVal{Name: "s", Xs: []float64{1, 2}}) {
		t.Errorf("struct cell: got (%#v, %v)", v, ok)
	}
}

// TestMigrationFromV2KeepsQuarantines: opening a v2 directory with the
// default codec migrates every intact record into v3 segments, and a
// record damaged in the v2 log is quarantined by the migration scan
// exactly as a plain v2 open would have done — the span lands in
// quarantine/ and the key is gone, not silently resurrected.
func TestMigrationFromV2KeepsQuarantines(t *testing.T) {
	dir := t.TempDir()
	const n = 6
	s := openCodec(t, dir, CodecV2)
	for i := 0; i < n; i++ {
		s.Put(testKey(i), float64(i)+0.5, uint64(100+i))
	}
	s.Close()

	// Flip a byte inside the third record's payload.
	seg := segFiles(t, dir)[0]
	offs := recordOffsets(t, seg)
	if len(offs) != n {
		t.Fatalf("v2 segment holds %d records, want %d", len(offs), n)
	}
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[offs[2][0]+headerLen+3] ^= 0x01
	if err := os.WriteFile(seg, data, 0o666); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir) // default codec: migrates
	st := s2.Stats()
	if st.MigratedV2 != n-1 {
		t.Errorf("migratedV2=%d, want %d", st.MigratedV2, n-1)
	}
	if st.Quarantined != 1 {
		t.Errorf("quarantined=%d, want 1", st.Quarantined)
	}
	if s2.Len() != n-1 {
		t.Errorf("Len=%d, want %d", s2.Len(), n-1)
	}
	for i := 0; i < n; i++ {
		v, c, ok := s2.Get(testKey(i))
		if i == 2 {
			if ok {
				t.Errorf("key 2: served despite v2 damage")
			}
			continue
		}
		if !ok || v != float64(i)+0.5 || c != uint64(100+i) {
			t.Errorf("key %d: got (%v, %d, %v), want (%v, %d, true)", i, v, c, ok, float64(i)+0.5, 100+i)
		}
	}
	// The rebuilt segments carry the v3 magic, and the damaged bytes
	// survive in quarantine/ for inspection.
	for _, p := range segFiles(t, dir) {
		head := make([]byte, 4)
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		f.Read(head)
		f.Close()
		if string(head) != string(magicV3[:]) {
			t.Errorf("%s starts with %q after migration, want %q", p, head, magicV3)
		}
	}
	qents, err := os.ReadDir(filepath.Join(dir, quarantineName))
	if err != nil {
		t.Fatal(err)
	}
	if len(qents) != 1 {
		t.Errorf("quarantine/ holds %d files, want 1", len(qents))
	}
	s2.Close()
}

// TestMigrationFromV2IsIdempotent: the open after a migration finds a
// pure v3 layout — nothing re-migrated, nothing re-quarantined, every
// entry still served, no v2 debris left behind.
func TestMigrationFromV2IsIdempotent(t *testing.T) {
	dir := t.TempDir()
	const n = 5
	s := openCodec(t, dir, CodecV2)
	for i := 0; i < n; i++ {
		s.Put(testKey(i), float64(i), uint64(i))
	}
	s.Close()

	s2 := openT(t, dir)
	if got := s2.Stats().MigratedV2; got != n {
		t.Fatalf("first open migratedV2=%d, want %d", got, n)
	}
	s2.Close()

	s3 := openT(t, dir)
	defer s3.Close()
	st := s3.Stats()
	if st.MigratedV2 != 0 {
		t.Errorf("second open migratedV2=%d, want 0 (no-op)", st.MigratedV2)
	}
	if st.Quarantined != 0 || st.TornTail != 0 {
		t.Errorf("second open quarantined=%d tornTail=%d, want 0/0", st.Quarantined, st.TornTail)
	}
	if s3.Len() != n {
		t.Errorf("Len=%d, want %d", s3.Len(), n)
	}
	for i := 0; i < n; i++ {
		if v, c, ok := s3.Get(testKey(i)); !ok || v != float64(i) || c != uint64(i) {
			t.Errorf("key %d: got (%v, %d, %v)", i, v, c, ok)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, segsDirName+".v2old")); !os.IsNotExist(err) {
		t.Errorf("segments.v2old still present after migration")
	}
}

// TestMixedSegmentsRejected: a directory holding both v2 and v3 segment
// logs is ambiguous — Open refuses it with ErrMixedSegments instead of
// guessing which half to trust.
func TestMixedSegmentsRejected(t *testing.T) {
	dir := t.TempDir()
	s := openCodec(t, dir, CodecV2)
	s.Put(testKey(0), 1.0, 1)
	s.Close()
	rogue := filepath.Join(dir, segsDirName, segPrefix+"000099"+segExt)
	if err := os.WriteFile(rogue, magicV3[:], 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{NoSync: true}); !errors.Is(err, ErrMixedSegments) {
		t.Errorf("Open(mixed dir) = %v, want ErrMixedSegments", err)
	}
}

// TestCodecMismatchRejected: the legacy v2 codec never migrates and
// refuses a directory already rebuilt as v3.
func TestCodecMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Put(testKey(0), 1.0, 1)
	s.Close()
	if _, err := Open(dir, Options{NoSync: true, Codec: CodecV2}); !errors.Is(err, ErrCodecMismatch) {
		t.Errorf("Open(v3 dir, codec=v2) = %v, want ErrCodecMismatch", err)
	}
}

// TestSidecarLinksSurviveReopen: PutLink'd display→canonical folds are
// durable — after a reopen a Get on the display key resolves through
// the sidecar to the canonical entry and is counted as a sidecar hit;
// a Get on an unlinked key counts a sidecar miss.
func TestSidecarLinksSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	canon := engine.Key{Workload: "w", Uarch: "u", Config: "v=1"}
	alias := engine.Key{Workload: "w", Uarch: "u", Config: "v=1,alias=3"}

	s := openT(t, dir)
	s.Put(canon, 42.5, 7)
	s.PutLink(alias, canon)
	s.PutLink(canon, canon) // self-link: must be a no-op
	if v, c, ok := s.Get(alias); !ok || v != 42.5 || c != 7 {
		t.Fatalf("live link Get = (%v, %d, %v), want (42.5, 7, true)", v, c, ok)
	}
	s.Close()

	s2 := openT(t, dir)
	defer s2.Close()
	st := s2.Stats()
	if st.SidecarLinks != 1 {
		t.Fatalf("sidecarLinks=%d after reopen, want 1", st.SidecarLinks)
	}
	if v, c, ok := s2.Get(alias); !ok || v != 42.5 || c != 7 {
		t.Errorf("replayed link Get = (%v, %d, %v), want (42.5, 7, true)", v, c, ok)
	}
	if _, _, ok := s2.Get(engine.Key{Workload: "w", Uarch: "u", Config: "v=9"}); ok {
		t.Error("unknown key served")
	}
	st = s2.Stats()
	if st.SidecarHits != 1 {
		t.Errorf("sidecarHits=%d, want 1", st.SidecarHits)
	}
	if st.SidecarMisses != 1 {
		t.Errorf("sidecarMisses=%d, want 1", st.SidecarMisses)
	}
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
}

// TestGetBatch: one call resolves a mixed hit/miss key set with the
// same per-key counting as Get, plus one GetBatches tick.
func TestGetBatch(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	for i := 0; i < 4; i++ {
		s.Put(testKey(i), float64(i)*1.5, uint64(i))
	}
	s.Close()

	s2 := openT(t, dir)
	defer s2.Close()
	keys := []engine.Key{testKey(3), testKey(0), testKey(9), testKey(2)}
	got := s2.GetBatch(keys)
	if len(got) != len(keys) {
		t.Fatalf("GetBatch returned %d results, want %d", len(got), len(keys))
	}
	want := []engine.BatchGet{
		{Val: 4.5, Cycles: 3, OK: true},
		{Val: 0.0, Cycles: 0, OK: true},
		{OK: false},
		{Val: 3.0, Cycles: 2, OK: true},
	}
	for i := range want {
		if got[i].OK != want[i].OK {
			t.Errorf("key %d: ok=%v, want %v", i, got[i].OK, want[i].OK)
			continue
		}
		if got[i].OK && (got[i].Val != want[i].Val || got[i].Cycles != want[i].Cycles) {
			t.Errorf("key %d: got (%v, %d), want (%v, %d)", i, got[i].Val, got[i].Cycles, want[i].Val, want[i].Cycles)
		}
	}
	st := s2.Stats()
	if st.GetBatches != 1 {
		t.Errorf("getBatches=%d, want 1", st.GetBatches)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Errorf("hits=%d misses=%d, want 3/1", st.Hits, st.Misses)
	}
}

// TestManifestSkipsSealedSegmentScan: after rotation has sealed
// segments and Close has written the manifest, a reopen indexes the
// sealed segments straight from the manifest (ManifestSegments > 0)
// with every entry intact; a damaged manifest silently falls back to
// the full scan.
func TestManifestSkipsSealedSegmentScan(t *testing.T) {
	old := segMaxBytes
	segMaxBytes = 256 // rotate every few records
	defer func() { segMaxBytes = old }()

	dir := t.TempDir()
	const n = 24
	s := openT(t, dir)
	for i := 0; i < n; i++ {
		s.Put(testKey(i), float64(i), uint64(i))
	}
	s.Close()
	if len(segFiles(t, dir)) < 2 {
		t.Fatalf("expected rotation to seal at least one segment")
	}

	s2 := openT(t, dir)
	st := s2.Stats()
	if st.ManifestSegments == 0 {
		t.Errorf("manifestSegments=0, want sealed segments indexed from the manifest")
	}
	if s2.Len() != n {
		t.Errorf("Len=%d, want %d", s2.Len(), n)
	}
	for i := 0; i < n; i++ {
		if v, _, ok := s2.Get(testKey(i)); !ok || v != float64(i) {
			t.Errorf("key %d: got (%v, %v)", i, v, ok)
		}
	}
	s2.Close()

	// Corrupt the manifest: the open must fall back to scanning and
	// still serve everything.
	mpath := filepath.Join(dir, segsDirName, manifestName)
	if err := os.WriteFile(mpath, []byte("garbage"), 0o666); err != nil {
		t.Fatal(err)
	}
	s3 := openT(t, dir)
	defer s3.Close()
	if st := s3.Stats(); st.ManifestSegments != 0 {
		t.Errorf("manifestSegments=%d with damaged manifest, want 0 (scan fallback)", st.ManifestSegments)
	}
	if s3.Len() != n {
		t.Errorf("scan-fallback Len=%d, want %d", s3.Len(), n)
	}
}

// TestCloseStopsBackgroundGoroutines: a sync-mode store starts the
// flusher/compactor loop; Close must stop it (and the sidecar writer)
// so long-lived daemons opening and closing stores do not leak.
func TestCloseStopsBackgroundGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	dir := t.TempDir()
	s, err := Open(dir, Options{Logf: t.Logf}) // sync mode: flusher runs
	if err != nil {
		t.Fatal(err)
	}
	canon := engine.Key{Workload: "w", Uarch: "u", Config: "v=0"}
	s.Put(canon, 1.0, 1)
	s.PutLink(engine.Key{Workload: "w", Uarch: "u", Config: "v=0,a"}, canon)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("goroutine leak after Close: %d before, %d after", before, got)
	}
	// Close is idempotent and the store stays safely unusable.
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, _, ok := s.Get(canon); ok {
		t.Error("closed store served a Get")
	}
}
