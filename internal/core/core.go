// Package core implements the paper's primary contribution: a harness
// that measures the end-to-end cost of transient-execution mitigations
// and attributes the total slowdown to individual mitigations, across
// CPU models (§4.1).
//
// The method: run a workload under the default mitigation set, then
// under a ladder of configurations that disable one mitigation at a
// time, cumulatively, ending at mitigations=off. The difference between
// adjacent rungs is the cost attributable to the mitigation disabled at
// that rung. Each configuration is sampled repeatedly with a 95%
// confidence interval, stopping once the interval is tight.
package core

import (
	"fmt"

	"spectrebench/internal/cpu"
	"spectrebench/internal/engine"
	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
	"spectrebench/internal/simscope"
	"spectrebench/internal/stats"
)

// Machine bundles a booted simulator: one core and one kernel.
type Machine struct {
	CPU    *cpu.Core
	Kernel *kernel.Kernel
}

// Boot creates a machine for the CPU model with the given mitigations.
func Boot(m *model.CPU, mit kernel.Mitigations) *Machine {
	c := cpu.New(m)
	k := kernel.New(c, mit)
	return &Machine{CPU: c, Kernel: k}
}

// BootDefault boots with the model's Table 1 default mitigations.
func BootDefault(m *model.CPU) *Machine {
	return Boot(m, kernel.Defaults(m))
}

// Workload measures one benchmark configuration: it must build a fresh
// machine from the inputs and return a cost (simulated cycles; lower is
// better).
type Workload func(m *model.CPU, mit kernel.Mitigations) (float64, error)

// Step is one rung of an attribution ladder: the named mitigation is
// disabled (cumulatively with all previous rungs) by applying Params.
type Step struct {
	// Name of the mitigation whose cost this rung isolates.
	Name string
	// Params are folded over the previous rung's boot parameters.
	Params kernel.BootParams
}

// OSLadder is the attribution ladder used for operating-system
// workloads (Figure 2): the mitigations the paper found responsible for
// nearly all of the LEBench overhead, most expensive first.
func OSLadder() []Step {
	return []Step{
		{Name: "MDS (verw)", Params: kernel.BootParams{MDSOff: true}},
		{Name: "Meltdown (PTI)", Params: kernel.BootParams{NoPTI: true}},
		{Name: "Spectre V2 (retpoline/eIBRS+IBPB+RSB)", Params: kernel.BootParams{NoSpectreV2: true}},
		{Name: "Spectre V1 (lfence/masking)", Params: kernel.BootParams{NoSpectreV1: true}},
		{Name: "other", Params: kernel.BootParams{MitigationsOff: true}},
	}
}

// Part is one mitigation's share of the total overhead.
type Part struct {
	Name string
	// Overhead is the slowdown fraction attributable to this mitigation
	// (relative to the fully-unmitigated baseline).
	Overhead float64
	// Sample carries the measurement statistics of the rung at which
	// the mitigation was still enabled.
	Sample *stats.Sample
}

// Attribution is the result of one CPU × workload decomposition.
type Attribution struct {
	CPU   string
	Total float64 // total overhead fraction: defaults vs mitigations=off
	Parts []Part
	// Baseline is the unmitigated cost in cycles.
	Baseline float64
	// Mitigated is the fully-mitigated cost in cycles.
	Mitigated float64
}

// Config controls the sampling methodology (§4.1).
type Config struct {
	// MinRuns/MaxRuns bound the repetitions per configuration.
	MinRuns, MaxRuns int
	// RelCI is the target relative half-width of the 95% CI.
	RelCI float64
	// Noise optionally perturbs each measurement to exercise the
	// adaptive-sampling path (the simulator itself is deterministic).
	Noise *stats.Noise
}

// DefaultConfig mirrors the paper's setup: runs repeat until the 95% CI
// is within 1% of the mean, with run-to-run variation of a couple
// percent when noise is enabled.
func DefaultConfig() Config {
	return Config{MinRuns: 3, MaxRuns: 40, RelCI: 0.01}
}

// Attribute decomposes the workload's mitigation overhead on one CPU.
func Attribute(m *model.CPU, wl Workload, ladder []Step, cfg Config) (*Attribution, error) {
	if cfg.MinRuns == 0 {
		cfg = DefaultConfig()
	}

	measure := func(mit kernel.Mitigations) (*stats.Sample, error) {
		var err error
		s := stats.RunUntil(cfg.MinRuns, cfg.MaxRuns, cfg.RelCI, func() float64 {
			v, e := wl(m, mit)
			if e != nil && err == nil {
				err = e
			}
			return cfg.Noise.Perturb(v)
		})
		return s, err
	}

	// Rung 0: full defaults.
	mit := kernel.Defaults(m)
	full, err := measure(mit)
	if err != nil {
		return nil, fmt.Errorf("core: defaults on %s: %w", m.Uarch, err)
	}

	attr := &Attribution{CPU: m.Uarch, Mitigated: full.Mean()}
	prev := full.Mean()
	params := kernel.BootParams{}
	for _, step := range ladder {
		params = merge(params, step.Params)
		s, err := measure(params.Apply(m, kernel.Defaults(m)))
		if err != nil {
			return nil, fmt.Errorf("core: rung %q on %s: %w", step.Name, m.Uarch, err)
		}
		attr.Parts = append(attr.Parts, Part{Name: step.Name, Overhead: prev - s.Mean(), Sample: s})
		prev = s.Mean()
	}
	attr.Baseline = prev
	if attr.Baseline > 0 {
		attr.Total = (attr.Mitigated - attr.Baseline) / attr.Baseline
		for i := range attr.Parts {
			attr.Parts[i].Overhead /= attr.Baseline
		}
	}
	return attr, nil
}

// merge folds b's set fields over a (boot parameters accumulate down
// the ladder).
func merge(a, b kernel.BootParams) kernel.BootParams {
	if b.MitigationsOff {
		a.MitigationsOff = true
	}
	if b.NoPTI {
		a.NoPTI = true
	}
	if b.ForcePTI {
		a.ForcePTI = true
	}
	if b.NoSpectreV1 {
		a.NoSpectreV1 = true
	}
	if b.NoSpectreV2 {
		a.NoSpectreV2 = true
	}
	if b.SpectreV2 != "" {
		a.SpectreV2 = b.SpectreV2
	}
	if b.MDSOff {
		a.MDSOff = true
	}
	if b.NoSSBSD {
		a.NoSSBSD = true
	}
	if b.SSBDOn {
		a.SSBDOn = true
	}
	if b.LazyFPU {
		a.LazyFPU = true
	}
	if b.L1TFOff {
		a.L1TFOff = true
	}
	if b.NoSMT {
		a.NoSMT = true
	}
	if b.NoIBPB {
		a.NoIBPB = true
	}
	if b.NoRSBStuff {
		a.NoRSBStuff = true
	}
	return a
}

// Sweep runs the attribution for every CPU in the registry against one
// workload — the full Figure 2 / Figure 3 data set. Each CPU's
// attribution runs as its own engine task, fanning out across the
// worker pool; results are gathered in registry order so the output is
// independent of scheduling. A sweep with Noise set stays serial: the
// noise source is a single mutable RNG stream whose draws must happen
// in a fixed order to stay reproducible.
func Sweep(wl Workload, ladder []Step, cfg Config) ([]*Attribution, error) {
	if cfg.Noise != nil {
		out := make([]*Attribution, 0, len(model.All()))
		for _, m := range model.All() {
			a, err := Attribute(m, wl, ladder, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, a)
		}
		return out, nil
	}

	eng := sweepEngine()
	tasks := make([]*engine.Task, 0, len(model.All()))
	for _, m := range model.All() {
		m := m
		tasks = append(tasks, eng.Go("sweep/"+m.Uarch, func() (any, error) {
			a, err := Attribute(m, wl, ladder, cfg)
			if err != nil {
				return nil, err
			}
			return a, nil
		}))
	}
	out := make([]*Attribution, 0, len(tasks))
	for _, t := range tasks {
		v, err := t.Wait()
		if err != nil {
			return nil, err
		}
		out = append(out, v.(*Attribution))
	}
	return out, nil
}

// sweepEngine resolves the scheduling engine: the one the surrounding
// supervised attempt carries, else the process default.
func sweepEngine() *engine.Engine {
	if sc := simscope.Current(); sc != nil {
		if eng, ok := sc.Tag.(*engine.Engine); ok {
			return eng
		}
	}
	return engine.Default()
}
