package core

import (
	"errors"
	"testing"

	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
	"spectrebench/internal/stats"
	"spectrebench/internal/workloads/lebench"
)

// lebenchGeo is the Figure 2 workload: LEBench geometric mean.
func lebenchGeo(m *model.CPU, mit kernel.Mitigations) (float64, error) {
	res, err := lebench.Run(m, mit)
	if err != nil {
		return 0, err
	}
	vals := make([]float64, len(res))
	for i, r := range res {
		vals[i] = r.Cycles
	}
	return stats.GeoMean(vals), nil
}

func TestBoot(t *testing.T) {
	mach := BootDefault(model.Broadwell())
	if mach.CPU == nil || mach.Kernel == nil {
		t.Fatal("boot returned incomplete machine")
	}
	if !mach.Kernel.Mit.PTI {
		t.Error("Broadwell default boot must enable PTI")
	}
}

func TestAttributeBroadwell(t *testing.T) {
	cfg := Config{MinRuns: 2, MaxRuns: 3, RelCI: 0.05}
	attr, err := Attribute(model.Broadwell(), lebenchGeo, OSLadder(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if attr.Total < 0.10 {
		t.Errorf("Broadwell total overhead = %.1f%%, want >10%%", attr.Total*100)
	}
	// The paper: PTI and MDS dominate on Broadwell.
	byName := map[string]float64{}
	for _, p := range attr.Parts {
		byName[p.Name] = p.Overhead
	}
	if byName["MDS (verw)"] <= 0 {
		t.Errorf("MDS share = %v, want positive", byName["MDS (verw)"])
	}
	if byName["Meltdown (PTI)"] <= 0 {
		t.Errorf("PTI share = %v, want positive", byName["Meltdown (PTI)"])
	}
	small := byName["Spectre V1 (lfence/masking)"] + byName["other"]
	big := byName["MDS (verw)"] + byName["Meltdown (PTI)"]
	if small >= big {
		t.Errorf("V1+other (%.3f) should be far below MDS+PTI (%.3f)", small, big)
	}
	// Parts must sum to the total (telescoping differences).
	var sum float64
	for _, p := range attr.Parts {
		sum += p.Overhead
	}
	if diff := sum - attr.Total; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("parts sum %.6f != total %.6f", sum, attr.Total)
	}
}

func TestAttributeIceLakeNearZero(t *testing.T) {
	cfg := Config{MinRuns: 2, MaxRuns: 3, RelCI: 0.05}
	attr, err := Attribute(model.IceLakeServer(), lebenchGeo, OSLadder(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if attr.Total > 0.08 {
		t.Errorf("Ice Lake Server total = %.1f%%, want small (paper ~3%%)", attr.Total*100)
	}
	// No PTI or MDS share on a fixed part.
	for _, p := range attr.Parts {
		if (p.Name == "MDS (verw)" || p.Name == "Meltdown (PTI)") && p.Overhead > 0.01 {
			t.Errorf("%s share = %.3f on a hardware-fixed part", p.Name, p.Overhead)
		}
	}
}

func TestAttributeWithNoiseConverges(t *testing.T) {
	cfg := Config{MinRuns: 3, MaxRuns: 60, RelCI: 0.01, Noise: stats.NewNoise(1, 0.02)}
	attr, err := Attribute(model.Zen2(), lebenchGeo, OSLadder(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range attr.Parts {
		if p.Sample.N() < 3 {
			t.Errorf("%s: only %d runs", p.Name, p.Sample.N())
		}
		if p.Sample.RelCI95() > 0.011 && p.Sample.N() < 60 {
			t.Errorf("%s: CI not met and budget not exhausted", p.Name)
		}
	}
}

func TestAttributeErrorPropagates(t *testing.T) {
	bad := func(*model.CPU, kernel.Mitigations) (float64, error) {
		return 0, errors.New("boom")
	}
	if _, err := Attribute(model.Zen(), bad, OSLadder(), DefaultConfig()); err == nil {
		t.Fatal("expected error")
	}
}

func TestMergeAccumulates(t *testing.T) {
	a := kernel.BootParams{MDSOff: true}
	b := kernel.BootParams{NoPTI: true}
	c := merge(a, b)
	if !c.MDSOff || !c.NoPTI {
		t.Errorf("merge lost fields: %+v", c)
	}
	d := merge(c, kernel.BootParams{SpectreV2: "off"})
	if !d.MDSOff || !d.NoPTI || d.SpectreV2 != "off" {
		t.Errorf("merge chain: %+v", d)
	}
}

// syntheticWorkload builds a deterministic fake workload that prices a
// few mitigations directly, letting Sweep be tested cheaply.
func syntheticWorkload(m *model.CPU, mit kernel.Mitigations) (float64, error) {
	cost := 1000.0
	if mit.PTI {
		cost += 100
	}
	if mit.MDSClear {
		cost += 80
	}
	if mit.SpectreV2 != kernel.V2Off {
		cost += 20
	}
	if mit.SpectreV1 {
		cost += 5
	}
	return cost, nil
}

func TestSweepAllCPUs(t *testing.T) {
	attrs, err := Sweep(syntheticWorkload, OSLadder(), Config{MinRuns: 2, MaxRuns: 2, RelCI: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 8 {
		t.Fatalf("attrs = %d", len(attrs))
	}
	for _, a := range attrs {
		m := model.ByName(a.CPU)
		wantPTI := 0.0
		if m.Vulns.Meltdown {
			wantPTI = 0.1
		}
		var gotPTI float64
		for _, p := range a.Parts {
			if p.Name == "Meltdown (PTI)" {
				gotPTI = p.Overhead
			}
		}
		if diff := gotPTI - wantPTI; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: PTI share = %v, want %v", a.CPU, gotPTI, wantPTI)
		}
		if a.Baseline != 1000 {
			t.Errorf("%s: baseline = %v", a.CPU, a.Baseline)
		}
	}
}

func TestDefaultConfigApplied(t *testing.T) {
	// A zero Config falls back to DefaultConfig.
	attr, err := Attribute(model.Zen(), syntheticWorkload, OSLadder(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if attr.Parts[0].Sample.N() < 2 {
		t.Error("default config did not run multiple samples")
	}
}
