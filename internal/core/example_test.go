package core_test

import (
	"fmt"

	"spectrebench/internal/core"
	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
)

// Attribute decomposes a workload's mitigation overhead. This example
// uses a synthetic workload whose costs are known exactly; real use
// passes a LEBench or Octane measurement function.
func ExampleAttribute() {
	workload := func(m *model.CPU, mit kernel.Mitigations) (float64, error) {
		cost := 1000.0
		if mit.PTI {
			cost += 150 // page-table isolation tax
		}
		if mit.MDSClear {
			cost += 100 // verw tax
		}
		return cost, nil
	}

	attr, err := core.Attribute(model.Broadwell(), workload, core.OSLadder(),
		core.Config{MinRuns: 2, MaxRuns: 2, RelCI: 0.1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("total overhead: %.0f%%\n", attr.Total*100)
	for _, p := range attr.Parts[:2] {
		fmt.Printf("%s: %.0f%%\n", p.Name, p.Overhead*100)
	}
	// Output:
	// total overhead: 25%
	// MDS (verw): 10%
	// Meltdown (PTI): 15%
}
