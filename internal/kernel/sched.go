package kernel

import (
	"errors"
	"fmt"

	"spectrebench/internal/cpu"
	"spectrebench/internal/mem"
)

// Start schedules the first ready process and prepares the core to run
// it. Call Run afterwards.
func (k *Kernel) Start() error {
	next := k.pickNext()
	if next == nil {
		return errors.New("kernel: no runnable process")
	}
	k.installProc(next)
	return nil
}

// Run drives the machine for at most maxSteps instructions, returning
// when every process has exited. It returns an error on an unhandled
// fault or when the step budget is exhausted with processes still live.
func (k *Kernel) Run(maxSteps int) error {
	// Short charge-heavy workloads can finish well inside one periodic
	// flush interval; publish their cycles when the loop ends.
	defer k.C.FlushCycleTelemetry()
	for i := 0; i < maxSteps; {
		if k.LiveProcs() == 0 {
			return nil
		}
		if k.cur == nil {
			// Everyone is blocked: a real kernel would idle; for the
			// deterministic workloads in this repository that is a bug.
			return errors.New("kernel: deadlock (all processes blocked)")
		}
		// StepBlock batches straight-line runs through the decoded-block
		// fast path; it stops at every thunk, trap and control-flow edge,
		// so the liveness checks above still run at each scheduling
		// boundary exactly as with per-instruction stepping.
		n, err := k.C.StepBlock(maxSteps - i)
		i += n
		if err != nil {
			if errors.Is(err, cpu.ErrHalted) && k.cur != nil {
				// A stray HLT in user mode is treated as exit.
				k.exitProc(k.cur, 0)
				k.C.ClearHalt()
				k.scheduleNext()
				continue
			}
			return fmt.Errorf("kernel: %w", err)
		}
	}
	if k.LiveProcs() == 0 {
		return nil
	}
	return fmt.Errorf("kernel: step budget exhausted with %d live processes", k.LiveProcs())
}

// pickNext pops the next ready process (round robin).
func (k *Kernel) pickNext() *Proc {
	for len(k.ready) > 0 {
		p := k.ready[0]
		k.ready = k.ready[1:]
		if p.State == ProcReady {
			return p
		}
	}
	return nil
}

// enqueue marks p ready and queues it.
func (k *Kernel) enqueue(p *Proc) {
	if p.State == ProcExited {
		return
	}
	p.State = ProcReady
	k.ready = append(k.ready, p)
}

// installProc makes p the current process: restores its register file,
// page tables, SPEC_CTRL and FPU according to the mitigation config,
// and resumes it *through the kernel exit stub* so every kernel→user
// transition pays the mitigation costs organically. This is the
// context-switch cost path (§5.3: IBPB, RSB stuffing; §3.1: eager FPU).
func (k *Kernel) installProc(p *Proc) {
	c := k.C
	prev := k.cur
	if prev == nil {
		// A process exited or blocked and cleared cur: the switch away
		// from it still pays the mm-switch costs.
		prev = k.lastRun
	}
	k.lastRun = nil

	if prev != nil && prev != p {
		k.ContextSwitches++

		// Indirect Branch Prediction Barrier between processes. Linux's
		// default is *conditional* IBPB: only tasks that asked for
		// protection (seccomp or the speculation prctl) pay it, which is
		// why Spectre V2 is only "a small but consistent drag" on
		// LEBench (§5.3).
		if k.Mit.IBPB && (p.Seccomp || p.SSBDPrctl || prev.Seccomp || prev.SSBDPrctl) {
			c.Charge(c.Model.Costs.IBPB)
			c.SetMSR(cpu.MSRPredCmd, 1)
		}
		// Refill the RSB with benign entries so interrupted user
		// retpolines stay safe.
		if k.Mit.RSBStuff {
			c.Charge(c.Model.Costs.RSBFill)
			c.RSB.Fill(k.rsbBenign())
		}
		// Switching address spaces costs a CR3 write, plus the
		// scheduler's own bookkeeping (runqueue, accounting, rseq).
		c.Charge(k.swapCR3Cost() + 900)
	}

	// FPU strategy.
	if k.Mit.EagerFPU {
		if prev != nil && prev != p {
			// xsave prev + xrstor next: cheap on modern parts (§3.1).
			c.Charge(2 * c.Model.Costs.Xsave)
			prev.FRegs = c.FRegs
			c.FRegs = p.FRegs
		}
		c.FPUEnabled = true
	} else if prev != p {
		// Lazy: leave the previous owner's registers live and disable
		// the FPU; the first FPU use traps (#NM) — and on LazyFP-leaky
		// parts, transiently exposes the stale registers.
		c.FPUEnabled = k.fpuOwner == p
	}

	// Kernel context: the exit stub performs the user-table switch.
	c.Priv = cpu.PrivKernel
	c.SetPageTable(p.KPT)

	// Trampoline slots for the stubs.
	c.Phys.Write64(KernDataBase+trampKernelCR3, mem.CR3(p.KPT))
	c.Phys.Write64(KernDataBase+trampUserCR3, mem.CR3(p.UPT))

	// Per-process SPEC_CTRL (SSBD policy; IBRS bit per kernel mode).
	userSC := k.userSpecCtrl(p)
	kernSC := userSC
	switch k.Mit.SpectreV2 {
	case V2IBRS:
		kernSC |= cpu.SpecCtrlIBRS
	case V2EIBRS:
		kernSC |= cpu.SpecCtrlIBRS
		userSC |= cpu.SpecCtrlIBRS // eIBRS stays set globally
	}
	if k.SpecCtrlOverride != nil {
		userSC = *k.SpecCtrlOverride
		kernSC = *k.SpecCtrlOverride
	}
	c.Phys.Write64(KernDataBase+trampKernSC, kernSC)
	c.Phys.Write64(KernDataBase+trampUserSC, userSC)
	if c.MSR(cpu.MSRSpecCtrl) != userSC && k.Mit.SpectreV2 != V2IBRS {
		// The kernel writes SPEC_CTRL when the policy differs between
		// processes (the SSBD-toggle cost). In per-entry IBRS mode the
		// exit stub performs this write itself.
		c.Charge(c.Model.Costs.WrmsrSpecCtrl)
		c.SetMSR(cpu.MSRSpecCtrl, userSC)
	}

	p.State = ProcRunning
	k.cur = p

	if p.pending != nil {
		// The process was blocked mid-syscall: re-run the handler.
		k.resumePending(p)
		return
	}

	// Resume in user mode via the exit stub.
	c.Regs = p.Regs
	c.FlagEQ, c.FlagLT = p.FlagEQ, p.FlagLT
	c.SavedUserPC = p.UserPC
	c.PC = k.exitPC
}

// userSpecCtrl computes the SPEC_CTRL value p runs under in user mode.
func (k *Kernel) userSpecCtrl(p *Proc) uint64 {
	var v uint64
	if !k.C.Model.Spec.SSBDImplemented {
		return v
	}
	if k.Mit.SSBDAlways || p.SSBDPrctl || (p.Seccomp && k.Mit.SSBDSeccomp) {
		v |= cpu.SpecCtrlSSBD
	}
	return v
}

// swapCR3Cost mirrors the core's cost rule for mov %cr3.
func (k *Kernel) swapCR3Cost() uint64 {
	if k.C.Model.Costs.SwapCR3 != 0 {
		return k.C.Model.Costs.SwapCR3
	}
	return 180
}

// saveCur snapshots the current process's user context (called at
// syscall entry by the dispatch thunk).
func (k *Kernel) saveCur() {
	p := k.cur
	p.Regs = k.C.Regs
	p.FlagEQ, p.FlagLT = k.C.FlagEQ, k.C.FlagLT
	p.UserPC = k.C.SavedUserPC
	if k.Mit.EagerFPU {
		p.FRegs = k.C.FRegs
	}
}

// scheduleNext picks and installs the next ready process (or leaves the
// machine idle when none are ready).
func (k *Kernel) scheduleNext() {
	next := k.pickNext()
	if next == nil {
		k.cur = nil
		return
	}
	k.installProc(next)
}

// blockCur marks the current process blocked mid-syscall and switches
// away. The pending syscall retries when the process is woken.
func (k *Kernel) blockCur(ctx *syscallCtx) {
	p := k.cur
	p.State = ProcBlocked
	p.pending = ctx
	k.scheduleNext()
}

// wake moves a blocked process back to the ready queue.
func (k *Kernel) wake(p *Proc) {
	if p.State == ProcBlocked {
		k.enqueue(p)
	}
}

// exitProc terminates a process, closing descriptors and waking waiters.
func (k *Kernel) exitProc(p *Proc, code uint64) {
	if p.State != ProcExited {
		k.live--
	}
	p.State = ProcExited
	p.exitCode = code
	for fd, f := range p.fds {
		f.close(k)
		delete(p.fds, fd)
	}
	if k.fpuOwner == p {
		k.fpuOwner = nil
	}
	if k.cur == p {
		k.lastRun = p
		k.cur = nil
	}
}

// handleTrap is the core's exception hook: demand paging and lazy-FPU
// restores resume; everything else kills the process.
func (k *Kernel) handleTrap(c *cpu.Core, f cpu.Fault) cpu.TrapAction {
	p := k.cur
	if p == nil {
		return cpu.TrapKill
	}
	// Trap entry/exit passes through the same mitigation work as the
	// syscall stubs: CR3 swaps under PTI, a buffer clear under MDS, and
	// the entry lfence under Spectre V1 hardening.
	k.chargeTrapMitigations()
	switch f.Kind {
	case cpu.FaultPage:
		if k.demandMap(p, f.VA) {
			k.PageFaults++
			return cpu.TrapRetry
		}
		if p.sigHandler != 0 {
			// Deliver a minimal SIGSEGV: resume user execution at the
			// registered handler with the faulting address in R14.
			k.PageFaults++
			c.Regs[14] = f.VA
			c.PC = p.sigHandler
			c.Priv = cpu.PrivUser
			return cpu.TrapContext
		}
	case cpu.FaultFPUDisabled:
		if !k.Mit.EagerFPU {
			// Lazy FPU switch: save the old owner's registers, load
			// ours, enable the FPU. The expensive path (§3.1).
			k.FPUTraps++
			if k.fpuOwner != nil && k.fpuOwner != p {
				k.fpuOwner.FRegs = c.FRegs
			}
			c.FRegs = p.FRegs
			c.FPUEnabled = true
			k.fpuOwner = p
			return cpu.TrapRetry
		}
	}
	k.exitProc(p, 128+uint64(f.Kind))
	k.scheduleNext()
	if k.cur != nil {
		// Resume in the next process rather than killing the machine.
		return cpu.TrapContext
	}
	return cpu.TrapKill
}

// chargeTrapMitigations accounts the boundary-crossing mitigation work
// on the exception path (performed Go-side; the syscall path executes
// the equivalent stub instructions organically).
func (k *Kernel) chargeTrapMitigations() {
	c := k.C
	if k.Mit.PTI {
		c.Charge(2 * k.swapCR3Cost())
	}
	if k.Mit.MDSClear && c.Model.Vulns.MDS {
		c.Charge(c.Model.Costs.VerwClear)
		c.FB.Clear()
		c.SB.Drain()
	}
	if k.Mit.SpectreV1 {
		c.Charge(4) // entry lfence with no loads in flight
	}
	if k.Mit.SpectreV2 == V2IBRS {
		c.Charge(2 * c.Model.Costs.WrmsrSpecCtrl)
	}
}

// demandMap installs a lazily-mapped page on first touch.
func (k *Kernel) demandMap(p *Proc, va uint64) bool {
	vpn := mem.VPN(va)
	lz, ok := p.lazy[vpn]
	if !ok {
		return false
	}
	delete(p.lazy, vpn)
	phys := (uint64(p.PID) << 32) + mem.PageBase(va)
	p.KPT.Map(vpn, mem.PTE{Phys: phys, Present: true, Writable: lz.writable, User: true, NX: true})
	if k.Mit.PTI {
		p.UPT.Map(vpn, mem.PTE{Phys: phys, Present: true, Writable: lz.writable, User: true, NX: true})
	}
	// Charge a representative fault-handling cost beyond the trap
	// entry/exit the core already charged (vma lookup, page allocation,
	// rmap accounting).
	k.C.Charge(1500)
	return true
}

// unmapRange removes pages and invalidates their TLB entries, writing
// inverted (or plain) non-present PTEs per the L1TF mitigation policy.
func (k *Kernel) unmapRange(p *Proc, va uint64, pages int) {
	for i := 0; i < pages; i++ {
		vpn := mem.VPN(va) + uint64(i)
		k.installNotPresent(p.KPT, vpn)
		if k.Mit.PTI {
			k.installNotPresent(p.UPT, vpn)
		}
		delete(p.lazy, vpn)
		k.C.TLB.FlushVPN(vpn)
	}
}

// installNotPresent writes a non-present PTE. Without PTE inversion the
// stale frame bits stay in place — the state L1TF exploits; with the
// mitigation the frame points at an uncacheable sentinel.
func (k *Kernel) installNotPresent(pt *mem.PageTable, vpn uint64) {
	old, ok := pt.Lookup(vpn)
	if !ok {
		return
	}
	pte := old
	pte.Present = false
	if k.Mit.PTEInversion {
		pte.Phys = 0 // inverted: no cacheable frame reachable
	}
	pt.Map(vpn, pte)
}

// RunProcessToCompletion is a convenience for single-process workloads:
// schedule p (which must be ready), run, and return.
func (k *Kernel) RunProcessToCompletion(maxSteps int) error {
	if err := k.Start(); err != nil {
		return err
	}
	return k.Run(maxSteps)
}
