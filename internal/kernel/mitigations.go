// Package kernel implements a simulated Linux-like operating system on
// top of the cpu core: processes, scheduling, a syscall interface whose
// entry/exit stubs are real simulated code, and — centrally for this
// reproduction — the transient-execution mitigation machinery with the
// same defaults and boot-parameter toggles the paper measures.
package kernel

import (
	"fmt"

	"spectrebench/internal/model"
)

// SpectreV2Mode selects the kernel's indirect-branch protection strategy.
type SpectreV2Mode int

// Spectre V2 kernel mitigation modes (Linux spectre_v2= values).
const (
	// V2Off leaves kernel indirect branches unprotected.
	V2Off SpectreV2Mode = iota
	// V2RetpolineGeneric replaces indirect branches with the
	// call/overwrite/ret retpoline sequence (works on all parts).
	V2RetpolineGeneric
	// V2RetpolineAMD uses lfence + indirect branch (the paper-era AMD
	// default, later found racy and withdrawn [Milburn et al.]).
	V2RetpolineAMD
	// V2IBRS writes IA32_SPEC_CTRL.IBRS on every kernel entry and
	// clears it on exit (the rejected first-generation mitigation).
	V2IBRS
	// V2EIBRS sets IBRS once at boot on enhanced-IBRS parts.
	V2EIBRS
)

func (m SpectreV2Mode) String() string {
	switch m {
	case V2Off:
		return "off"
	case V2RetpolineGeneric:
		return "retpoline,generic"
	case V2RetpolineAMD:
		return "retpoline,amd"
	case V2IBRS:
		return "ibrs"
	case V2EIBRS:
		return "eibrs"
	}
	return fmt.Sprintf("v2mode(%d)", int(m))
}

// Mitigations is the kernel's active mitigation configuration — the
// rows of Table 1 plus the toggles §4.1 flips for attribution.
type Mitigations struct {
	// PTI: kernel page-table isolation (Meltdown).
	PTI bool
	// PTEInversion: never write non-present PTEs whose frame bits point
	// at cacheable memory (L1TF, process side).
	PTEInversion bool
	// L1TFFlushOnVMEntry: flush the L1 before entering a guest (L1TF,
	// hypervisor side; consumed by the vmm package).
	L1TFFlushOnVMEntry bool
	// EagerFPU: save/restore FPU state on every context switch instead
	// of lazily trapping (LazyFP; also usually faster, §3.1).
	EagerFPU bool
	// SpectreV1: lfence after swapgs on kernel entry plus index masking
	// in kernel copy paths.
	SpectreV1 bool
	// SpectreV2 selects the kernel indirect-branch strategy.
	SpectreV2 SpectreV2Mode
	// IBPB: indirect branch prediction barrier on process switches.
	IBPB bool
	// RSBStuff: refill the return stack buffer on context switches.
	RSBStuff bool
	// MDSClear: verw on every kernel→user transition.
	MDSClear bool
	// SSBDSeccomp: enable SSBD for seccomp processes (the pre-5.16
	// default that taxes Firefox, §4.3).
	SSBDSeccomp bool
	// SSBDAlways forces SSBD for every process (the Figure 5 ablation;
	// never a default).
	SSBDAlways bool
	// NoSMT disables hyperthreading (the "!" row of Table 1; never a
	// default).
	NoSMT bool
}

// Defaults returns the mitigation set Linux enables by default on the
// given CPU — the checkmarks of Table 1. All per-uarch facts come
// through model.MitigationSupport, the same view the sweep
// canonicaliser folds configs with.
func Defaults(m *model.CPU) Mitigations {
	sup := m.Support()
	mit := Mitigations{
		EagerFPU:    true, // "Always save FPU": every CPU
		SpectreV1:   true, // index masking + lfence after swapgs: every CPU
		SSBDSeccomp: true, // kernels up to 5.15
	}
	mit.PTI = sup.NeedsPTI
	mit.PTEInversion = sup.NeedsL1TF
	mit.L1TFFlushOnVMEntry = sup.NeedsL1TF
	mit.MDSClear = sup.NeedsMDS
	if sup.NeedsSpectreV2 {
		switch {
		case sup.PreferEIBRS:
			mit.SpectreV2 = V2EIBRS
		case sup.PreferRetpolineAMD:
			// The paper-era default; Linux 5.15.28 later switched AMD
			// to generic retpolines (§5.3).
			mit.SpectreV2 = V2RetpolineAMD
		default:
			mit.SpectreV2 = V2RetpolineGeneric
		}
		mit.IBPB = true
		mit.RSBStuff = true
	}
	return mit
}

// BootParams mirrors the kernel command-line switches the paper uses to
// disable mitigations one at a time (§4.1).
type BootParams struct {
	MitigationsOff bool // mitigations=off
	NoPTI          bool // nopti
	NoSpectreV1    bool // nospectre_v1
	NoSpectreV2    bool // nospectre_v2 (also disables IBPB + RSB stuffing)
	SpectreV2      string
	// spectre_v2=: "off", "retpoline", "retpoline,generic",
	// "retpoline,amd", "ibrs", "eibrs"
	MDSOff     bool // mds=off
	NoSSBSD    bool // spec_store_bypass_disable=off (no seccomp auto-SSBD)
	SSBDOn     bool // spec_store_bypass_disable=on (force everywhere)
	LazyFPU    bool // eagerfpu=off (historic)
	ForcePTI   bool // pti=on
	L1TFOff    bool // l1tf=off
	NoSMT      bool // nosmt
	NoIBPB     bool // (part of nospectre_v2 in Linux; separate toggle for attribution)
	NoRSBStuff bool // (attribution toggle)
}

// Apply folds boot parameters over a default mitigation set, mimicking
// the kernel's parameter handling: requests the hardware cannot honor
// (per model.MitigationSupport) are inert, exactly as on Linux.
func (bp BootParams) Apply(m *model.CPU, mit Mitigations) Mitigations {
	sup := m.Support()
	if bp.MitigationsOff {
		return Mitigations{EagerFPU: mit.EagerFPU} // eager FPU is not a "mitigation=off" casualty
	}
	if bp.NoPTI {
		mit.PTI = false
	}
	if bp.ForcePTI {
		mit.PTI = true
	}
	if bp.NoSpectreV1 {
		mit.SpectreV1 = false
	}
	if bp.NoSpectreV2 {
		mit.SpectreV2 = V2Off
		mit.IBPB = false
		mit.RSBStuff = false
	}
	switch bp.SpectreV2 {
	case "":
	case "off":
		mit.SpectreV2 = V2Off
		mit.IBPB = false
		mit.RSBStuff = false
	case "retpoline", "retpoline,generic":
		mit.SpectreV2 = V2RetpolineGeneric
	case "retpoline,amd":
		mit.SpectreV2 = V2RetpolineAMD
	case "ibrs":
		if sup.HasIBRS {
			mit.SpectreV2 = V2IBRS
		}
	case "eibrs":
		if sup.HasEIBRS {
			mit.SpectreV2 = V2EIBRS
		}
	}
	if bp.NoIBPB {
		mit.IBPB = false
	}
	if bp.NoRSBStuff {
		mit.RSBStuff = false
	}
	if bp.MDSOff {
		mit.MDSClear = false
	}
	if bp.NoSSBSD {
		mit.SSBDSeccomp = false
	}
	if bp.SSBDOn && sup.HasSSBD {
		mit.SSBDAlways = true
	}
	if bp.LazyFPU {
		mit.EagerFPU = false
	}
	if bp.L1TFOff {
		mit.PTEInversion = false
		mit.L1TFFlushOnVMEntry = false
	}
	if bp.NoSMT {
		mit.NoSMT = true
	}
	return mit
}

// CanonicalKey renders the mitigation set as a compact, stable string:
// the equivalence-class label the sweep canonicaliser keys dedup on.
// Distinct boot-param configs that Apply to equal Mitigations have
// equal CanonicalKeys and simulate identically on the same
// uarch/workload — the fold that turns a combinatorial boot-param grid
// into its much smaller set of effective behaviours.
func (m Mitigations) CanonicalKey() string {
	b := func(v bool) byte {
		if v {
			return '1'
		}
		return '0'
	}
	// Hand-rolled append, not Sprintf: grid enumeration calls this once
	// per cell, and the formatter was visible in full-grid profiles.
	buf := make([]byte, 0, 96)
	buf = append(buf, "pti="...)
	buf = append(buf, b(m.PTI), ' ')
	buf = append(buf, "ptei="...)
	buf = append(buf, b(m.PTEInversion), ' ')
	buf = append(buf, "l1tf="...)
	buf = append(buf, b(m.L1TFFlushOnVMEntry), ' ')
	buf = append(buf, "fpu="...)
	buf = append(buf, b(m.EagerFPU), ' ')
	buf = append(buf, "v1="...)
	buf = append(buf, b(m.SpectreV1), ' ')
	buf = append(buf, "v2="...)
	buf = append(buf, m.SpectreV2.String()...)
	buf = append(buf, ' ')
	buf = append(buf, "ibpb="...)
	buf = append(buf, b(m.IBPB), ' ')
	buf = append(buf, "rsb="...)
	buf = append(buf, b(m.RSBStuff), ' ')
	buf = append(buf, "mds="...)
	buf = append(buf, b(m.MDSClear), ' ')
	buf = append(buf, "ssbds="...)
	buf = append(buf, b(m.SSBDSeccomp), ' ')
	buf = append(buf, "ssbda="...)
	buf = append(buf, b(m.SSBDAlways), ' ')
	buf = append(buf, "nosmt="...)
	buf = append(buf, b(m.NoSMT))
	return string(buf)
}

// Enabled returns a human-readable list of active mitigations, used by
// Table 1 rendering.
func (m Mitigations) Enabled() []string {
	var out []string
	add := func(ok bool, name string) {
		if ok {
			out = append(out, name)
		}
	}
	add(m.PTI, "pti")
	add(m.PTEInversion, "pte-inversion")
	add(m.L1TFFlushOnVMEntry, "l1tf-flush")
	add(m.EagerFPU, "eager-fpu")
	add(m.SpectreV1, "spectre-v1")
	add(m.SpectreV2 != V2Off, "spectre-v2("+m.SpectreV2.String()+")")
	add(m.IBPB, "ibpb")
	add(m.RSBStuff, "rsb-stuff")
	add(m.MDSClear, "mds-clear")
	add(m.SSBDSeccomp, "ssbd-seccomp")
	add(m.SSBDAlways, "ssbd-always")
	add(m.NoSMT, "nosmt")
	return out
}
