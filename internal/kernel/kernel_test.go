package kernel

import (
	"testing"

	"spectrebench/internal/cpu"
	"spectrebench/internal/isa"
	"spectrebench/internal/mem"
	"spectrebench/internal/model"
)

// boot creates a core + kernel for the model with the given mitigations.
func boot(m *model.CPU, mit Mitigations) (*cpu.Core, *Kernel) {
	c := cpu.New(m)
	k := New(c, mit)
	return c, k
}

// emitSyscall emits "movi r7, nr; syscall" with up to 3 args already in
// R1..R3.
func emitSyscall(a *isa.Asm, nr int64) {
	a.MovI(isa.R7, nr)
	a.Syscall()
}

func emitExit(a *isa.Asm, code int64) {
	a.MovI(isa.R1, code)
	emitSyscall(a, SysExit)
}

func TestGetPIDSyscall(t *testing.T) {
	c, k := boot(model.Broadwell(), Defaults(model.Broadwell()))
	a := isa.NewAsm()
	emitSyscall(a, SysGetPID)
	a.Mov(isa.R9, isa.R0) // keep the result
	emitExit(a, 0)
	p := k.NewProcess("getpid", a.MustAssemble(UserCodeBase))
	if err := k.RunProcessToCompletion(1_000_000); err != nil {
		t.Fatal(err)
	}
	if p.State != ProcExited {
		t.Fatal("process did not exit")
	}
	if c.Regs[isa.R9] != uint64(p.PID) {
		t.Errorf("getpid = %d, want %d", c.Regs[isa.R9], p.PID)
	}
	if k.Syscalls != 2 {
		t.Errorf("syscalls = %d, want 2", k.Syscalls)
	}
}

func TestSyscallReturnsToUserMode(t *testing.T) {
	c, k := boot(model.Zen2(), Defaults(model.Zen2()))
	a := isa.NewAsm()
	emitSyscall(a, SysGetPID)
	a.MovI(isa.R9, 123) // must execute in user mode after return
	emitExit(a, 0)
	k.NewProcess("p", a.MustAssemble(UserCodeBase))
	if err := k.RunProcessToCompletion(1_000_000); err != nil {
		t.Fatal(err)
	}
	if c.Regs[isa.R9] != 123 {
		t.Error("post-syscall user code did not run")
	}
}

func TestNullSyscallCostReflectsMitigations(t *testing.T) {
	// PTI adds two CR3 swaps; MDS adds a verw: a null syscall on
	// Broadwell with defaults must cost more than with mitigations off.
	measure := func(mit Mitigations) uint64 {
		c, k := boot(model.Broadwell(), mit)
		a := isa.NewAsm()
		// Warm-up syscall, then a measured one.
		emitSyscall(a, SysGetPID)
		emitSyscall(a, SysGetPID)
		emitExit(a, 0)
		k.NewProcess("p", a.MustAssemble(UserCodeBase))
		if err := k.RunProcessToCompletion(1_000_000); err != nil {
			t.Fatal(err)
		}
		return c.Cycles
	}
	m := model.Broadwell()
	on := measure(Defaults(m))
	off := measure(BootParams{MitigationsOff: true}.Apply(m, Defaults(m)))
	if on <= off {
		t.Fatalf("mitigated run (%d cycles) not slower than unmitigated (%d)", on, off)
	}
	// PTI alone should account for ≥ 2×SwapCR3 per syscall.
	noPTI := measure(BootParams{NoPTI: true}.Apply(m, Defaults(m)))
	if on-noPTI < 2*m.Costs.SwapCR3 {
		t.Errorf("PTI delta = %d cycles over the whole run, want ≥ %d per syscall",
			on-noPTI, 2*m.Costs.SwapCR3)
	}
}

func TestReadWriteFile(t *testing.T) {
	c, k := boot(model.IceLakeServer(), Defaults(model.IceLakeServer()))
	a := isa.NewAsm()
	// fd = open(0, 4096)
	a.MovI(isa.R1, 0)
	a.MovI(isa.R2, 0) // empty file; we write then read back
	emitSyscall(a, SysOpen)
	a.Mov(isa.R8, isa.R0) // fd
	// Write 16 bytes from a buffer we initialise.
	a.MovI(isa.R10, UserDataBase)
	a.MovI(isa.R11, 0x1122334455667788)
	a.Store(isa.R10, 0, isa.R11)
	a.Store(isa.R10, 8, isa.R11)
	a.Mov(isa.R1, isa.R8)
	a.MovI(isa.R2, UserDataBase)
	a.MovI(isa.R3, 16)
	emitSyscall(a, SysWrite)
	a.Mov(isa.R9, isa.R0) // bytes written
	// Read back into a different buffer.
	a.Mov(isa.R1, isa.R8)
	a.MovI(isa.R2, UserDataBase+0x100)
	a.MovI(isa.R3, 16)
	emitSyscall(a, SysRead)
	a.Mov(isa.R6, isa.R0) // bytes read
	a.MovI(isa.R10, UserDataBase+0x100)
	a.Load(isa.R5, isa.R10, 8)
	emitExit(a, 0)
	p := k.NewProcess("rw", a.MustAssemble(UserCodeBase))
	if err := k.RunProcessToCompletion(1_000_000); err != nil {
		t.Fatal(err)
	}
	_ = p
	if c.Regs[isa.R9] != 16 || c.Regs[isa.R6] != 16 {
		t.Fatalf("wrote %d read %d", c.Regs[isa.R9], c.Regs[isa.R6])
	}
	if c.Regs[isa.R5] != 0x1122334455667788 {
		t.Errorf("read back %#x", c.Regs[isa.R5])
	}
}

func TestMmapDemandPagingMunmap(t *testing.T) {
	c, k := boot(model.SkylakeClient(), Defaults(model.SkylakeClient()))
	a := isa.NewAsm()
	a.MovI(isa.R1, 4) // 4 pages
	emitSyscall(a, SysMmap)
	a.Mov(isa.R8, isa.R0) // base
	// Touch page 2 → demand fault → mapped.
	a.Mov(isa.R10, isa.R8)
	a.AddI(isa.R10, 2*mem.PageSize)
	a.MovI(isa.R11, 99)
	a.Store(isa.R10, 0, isa.R11)
	a.Load(isa.R9, isa.R10, 0)
	// munmap everything.
	a.Mov(isa.R1, isa.R8)
	a.MovI(isa.R2, 4)
	emitSyscall(a, SysMunmap)
	emitExit(a, 0)
	k.NewProcess("mm", a.MustAssemble(UserCodeBase))
	if err := k.RunProcessToCompletion(1_000_000); err != nil {
		t.Fatal(err)
	}
	if c.Regs[isa.R9] != 99 {
		t.Errorf("demand-paged readback = %d", c.Regs[isa.R9])
	}
	if k.PageFaults == 0 {
		t.Error("no demand-paging fault recorded")
	}
}

func TestPipePingPongContextSwitch(t *testing.T) {
	c, k := boot(model.Zen3(), Defaults(model.Zen3()))
	// Parent: create pipe, fork. Parent writes, child reads, both exit.
	a := isa.NewAsm()
	emitSyscall(a, SysPipe)
	a.Mov(isa.R8, isa.R0) // rfd | wfd<<32
	a.Mov(isa.R9, isa.R8)
	a.AndI(isa.R9, 0xffffffff)
	emitSyscall(a, SysFork)
	a.CmpI(isa.R0, 0)
	a.Jeq("child")
	// Parent: write 8 bytes.
	a.Mov(isa.R10, isa.R8)
	a.ShrI(isa.R10, 32) // wfd
	a.MovI(isa.R11, UserDataBase)
	a.MovI(isa.R12, 0xfeed)
	a.Store(isa.R11, 0, isa.R12)
	a.Mov(isa.R1, isa.R10)
	a.MovI(isa.R2, UserDataBase)
	a.MovI(isa.R3, 8)
	emitSyscall(a, SysWrite)
	emitExit(a, 0)
	// Child: read 8 bytes (blocks until parent writes).
	a.Label("child")
	a.Mov(isa.R1, isa.R9) // rfd
	a.MovI(isa.R2, UserDataBase+0x200)
	a.MovI(isa.R3, 8)
	emitSyscall(a, SysRead)
	a.MovI(isa.R10, UserDataBase+0x200)
	a.Load(isa.R13, isa.R10, 0)
	a.MovI(isa.R1, 55)
	emitSyscall(a, SysExit)
	prog := mustAssembleWithMask(a)
	k.NewProcess("pingpong", prog)
	if err := k.RunProcessToCompletion(2_000_000); err != nil {
		t.Fatal(err)
	}
	if k.ContextSwitches == 0 {
		t.Error("expected context switches")
	}
	// Child read the value (its registers were live at exit).
	if c.Regs[isa.R13] != 0xfeed && k.Proc(2) == nil {
		t.Errorf("child did not read value")
	}
	for pid := 1; pid <= 2; pid++ {
		if p := k.Proc(pid); p == nil || p.State != ProcExited {
			t.Errorf("pid %d did not exit cleanly", pid)
		}
	}
}

func mustAssembleWithMask(a *isa.Asm) *isa.Program {
	return a.MustAssemble(UserCodeBase)
}

func TestYieldRoundRobin(t *testing.T) {
	_, k := boot(model.CascadeLake(), Defaults(model.CascadeLake()))
	a := isa.NewAsm()
	emitSyscall(a, SysFork)
	a.MovI(isa.R9, 0)
	a.Label("loop")
	emitSyscall(a, SysYield)
	a.AddI(isa.R9, 1)
	a.CmpI(isa.R9, 5)
	a.Jne("loop")
	emitExit(a, 0)
	k.NewProcess("yield", a.MustAssemble(UserCodeBase))
	if err := k.RunProcessToCompletion(2_000_000); err != nil {
		t.Fatal(err)
	}
	if k.ContextSwitches < 8 {
		t.Errorf("context switches = %d, want ≥ 8", k.ContextSwitches)
	}
}

func TestSeccompEnablesSSBD(t *testing.T) {
	c, k := boot(model.IceLakeServer(), Defaults(model.IceLakeServer()))
	a := isa.NewAsm()
	emitSyscall(a, SysSeccomp)
	a.MovI(isa.R9, 1) // marker: running after seccomp
	a.Label("spin")
	a.CmpI(isa.R9, 0)
	a.Jne("exit")
	a.Label("exit")
	emitExit(a, 0)
	p := k.NewProcess("seccomp", a.MustAssemble(UserCodeBase))
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	// Step until the marker instruction ran.
	for i := 0; i < 100000 && c.Regs[isa.R9] != 1; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !p.Seccomp {
		t.Fatal("seccomp flag not set")
	}
	if !c.SSBDActive() {
		t.Error("kernels ≤5.15 must enable SSBD for seccomp processes")
	}

	// With spec_store_bypass_disable=off, seccomp must NOT imply SSBD.
	m := model.IceLakeServer()
	c2, k2 := boot(m, BootParams{NoSSBSD: true}.Apply(m, Defaults(m)))
	a2 := isa.NewAsm()
	emitSyscall(a2, SysSeccomp)
	a2.MovI(isa.R9, 1)
	emitExit(a2, 0)
	k2.NewProcess("seccomp2", a2.MustAssemble(UserCodeBase))
	if err := k2.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000 && c2.Regs[isa.R9] != 1; i++ {
		if err := c2.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if c2.SSBDActive() {
		t.Error("5.16 default: seccomp must not imply SSBD")
	}
}

func TestPrctlSSBD(t *testing.T) {
	c, k := boot(model.Zen2(), Defaults(model.Zen2()))
	a := isa.NewAsm()
	a.MovI(isa.R1, 53) // PR_SET_SPECULATION_CTRL
	a.MovI(isa.R2, 1)
	emitSyscall(a, SysPrctl)
	a.MovI(isa.R9, 1)
	emitExit(a, 0)
	k.NewProcess("prctl", a.MustAssemble(UserCodeBase))
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000 && c.Regs[isa.R9] != 1; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !c.SSBDActive() {
		t.Error("prctl opt-in did not enable SSBD")
	}
}

func TestLazyVsEagerFPU(t *testing.T) {
	runFPU := func(eager bool) (*cpu.Core, *Kernel) {
		m := model.SkylakeClient()
		mit := Defaults(m)
		mit.EagerFPU = eager
		c, k := boot(m, mit)
		a := isa.NewAsm()
		emitSyscall(a, SysFork) // two processes using the FPU
		a.FMovI(0, 1.5)
		a.FMovI(1, 2.0)
		a.FAdd(0, 1)
		emitSyscall(a, SysYield)
		a.FAdd(0, 1)
		emitExit(a, 0)
		k.NewProcess("fpu", a.MustAssemble(UserCodeBase))
		if err := k.RunProcessToCompletion(2_000_000); err != nil {
			t.Fatal(err)
		}
		return c, k
	}
	_, kEager := runFPU(true)
	if kEager.FPUTraps != 0 {
		t.Errorf("eager FPU trapped %d times", kEager.FPUTraps)
	}
	_, kLazy := runFPU(false)
	if kLazy.FPUTraps == 0 {
		t.Error("lazy FPU never trapped")
	}
}

func TestDefaultsMatchTable1(t *testing.T) {
	cases := []struct {
		m    *model.CPU
		pti  bool
		mds  bool
		v2   SpectreV2Mode
		l1tf bool
	}{
		{model.Broadwell(), true, true, V2RetpolineGeneric, true},
		{model.SkylakeClient(), true, true, V2RetpolineGeneric, true},
		{model.CascadeLake(), false, true, V2EIBRS, false},
		{model.IceLakeClient(), false, false, V2EIBRS, false},
		{model.IceLakeServer(), false, false, V2EIBRS, false},
		{model.Zen(), false, false, V2RetpolineAMD, false},
		{model.Zen2(), false, false, V2RetpolineAMD, false},
		{model.Zen3(), false, false, V2RetpolineAMD, false},
	}
	for _, cse := range cases {
		mit := Defaults(cse.m)
		if mit.PTI != cse.pti {
			t.Errorf("%s: PTI = %v, want %v", cse.m.Uarch, mit.PTI, cse.pti)
		}
		if mit.MDSClear != cse.mds {
			t.Errorf("%s: MDS = %v, want %v", cse.m.Uarch, mit.MDSClear, cse.mds)
		}
		if mit.SpectreV2 != cse.v2 {
			t.Errorf("%s: V2 = %v, want %v", cse.m.Uarch, mit.SpectreV2, cse.v2)
		}
		if mit.PTEInversion != cse.l1tf {
			t.Errorf("%s: PTE inversion = %v, want %v", cse.m.Uarch, mit.PTEInversion, cse.l1tf)
		}
		// Universal defaults.
		if !mit.EagerFPU || !mit.SpectreV1 || !mit.IBPB || !mit.RSBStuff || !mit.SSBDSeccomp {
			t.Errorf("%s: universal defaults wrong: %+v", cse.m.Uarch, mit)
		}
		// Never default: SSBD everywhere, SMT off.
		if mit.SSBDAlways || mit.NoSMT {
			t.Errorf("%s: SSBDAlways/NoSMT must not default on", cse.m.Uarch)
		}
	}
}

func TestBootParams(t *testing.T) {
	m := model.Broadwell()
	base := Defaults(m)

	off := BootParams{MitigationsOff: true}.Apply(m, base)
	if off.PTI || off.MDSClear || off.SpectreV2 != V2Off || off.IBPB || off.SpectreV1 {
		t.Errorf("mitigations=off left things on: %+v", off)
	}
	if !off.EagerFPU {
		t.Error("mitigations=off should keep eager FPU (it is a performance win)")
	}

	v2off := BootParams{NoSpectreV2: true}.Apply(m, base)
	if v2off.SpectreV2 != V2Off || v2off.IBPB || v2off.RSBStuff {
		t.Errorf("nospectre_v2: %+v", v2off)
	}
	if !v2off.PTI {
		t.Error("nospectre_v2 must not disable PTI")
	}

	ibrs := BootParams{SpectreV2: "ibrs"}.Apply(m, base)
	if ibrs.SpectreV2 != V2IBRS {
		t.Errorf("spectre_v2=ibrs: %v", ibrs.SpectreV2)
	}
	// eIBRS is refused on non-eIBRS hardware.
	eibrs := BootParams{SpectreV2: "eibrs"}.Apply(m, base)
	if eibrs.SpectreV2 == V2EIBRS {
		t.Error("eibrs accepted on Broadwell")
	}
	// ibrs is refused on Zen (unsupported).
	zen := BootParams{SpectreV2: "ibrs"}.Apply(model.Zen(), Defaults(model.Zen()))
	if zen.SpectreV2 == V2IBRS {
		t.Error("ibrs accepted on Zen")
	}

	ssbd := BootParams{SSBDOn: true}.Apply(m, base)
	if !ssbd.SSBDAlways {
		t.Error("spec_store_bypass_disable=on ignored")
	}
}

func TestMeltdownThroughRealStubs(t *testing.T) {
	// End-to-end: a user process attacks kernel memory around real
	// syscalls. With PTI the kernel data page is absent from the user
	// table; without PTI it is mapped (supervisor) and leaks.
	attack := func(mit Mitigations) bool {
		m := model.SkylakeClient()
		c, k := boot(m, mit)
		// Kernel secret: in kernel data space.
		secretVA := uint64(KernDataBase + 0x2000)
		c.Phys.Write64(secretVA, 0x61)

		a := isa.NewAsm()
		// Register a SIGSEGV handler so the faulting load does not kill
		// the process (how real Meltdown PoCs survive).
		a.MovI(isa.R1, 0)
		a.Jmp("setsig")
		a.Label("sighandler")
		emitExit(a, 1)
		a.Label("setsig")
		a.MovI(isa.R1, UserCodeBase+2*isa.InstrBytes) // &sighandler
		emitSyscall(a, SysSignal)
		// Attack: read kernel VA; dependent probe instructions execute
		// transiently before the fault.
		a.MovI(isa.R1, int64(secretVA))
		a.MovI(isa.R4, UserDataBase+0x10000)
		a.Load(isa.R2, isa.R1, 0)
		a.ShlI(isa.R2, 6)
		a.Add(isa.R2, isa.R4)
		a.Load(isa.R3, isa.R2, 0)
		emitExit(a, 0)
		p := k.NewProcess("meltdown", a.MustAssemble(UserCodeBase))
		// Extra data pages for the probe array.
		probeVA := uint64(UserDataBase + 0x10000)
		physBase := uint64(p.PID) << 32
		p.KPT.MapRange(probeVA, physBase+probeVA, 16, true, true, true, false)
		if mit.PTI {
			p.UPT.MapRange(probeVA, physBase+probeVA, 16, true, true, true, false)
		}
		for v := uint64(0); v < 256; v++ {
			pa := physBase + probeVA + v*64
			c.L1.Flush(pa)
		}
		if err := k.RunProcessToCompletion(1_000_000); err != nil {
			t.Fatal(err)
		}
		return c.L1.Probe(physBase + probeVA + 0x61*64)
	}
	m := model.SkylakeClient()
	noPTI := BootParams{NoPTI: true}.Apply(m, Defaults(m))
	if !attack(noPTI) {
		t.Error("Meltdown should leak without PTI on Skylake")
	}
	if attack(Defaults(m)) {
		t.Error("Meltdown leaked despite PTI")
	}
}

func TestKernelModuleCall(t *testing.T) {
	c, k := boot(model.Broadwell(), Defaults(model.Broadwell()))
	modMarker := uint64(0)
	mod := k.RegisterKernelModule(func(a *isa.Asm) {
		a.MovI(isa.R9, 4321)
		a.JmpInd(isa.R10) // return via the exit stub
	})
	_ = modMarker
	a := isa.NewAsm()
	a.MovI(isa.R2, int64(mod.Base))
	emitSyscall(a, SysKMod)
	a.Mov(isa.R8, isa.R9) // value set in kernel mode survives (KMOD ABI)
	emitExit(a, 0)
	k.NewProcess("kmod", a.MustAssemble(UserCodeBase))
	if err := k.RunProcessToCompletion(1_000_000); err != nil {
		t.Fatal(err)
	}
	if c.Regs[isa.R8] != 4321 {
		t.Errorf("module marker = %d", c.Regs[isa.R8])
	}
}

func TestMitigationsEnabledList(t *testing.T) {
	m := model.Broadwell()
	list := Defaults(m).Enabled()
	want := map[string]bool{"pti": true, "mds-clear": true, "eager-fpu": true}
	found := map[string]bool{}
	for _, s := range list {
		found[s] = true
	}
	for w := range want {
		if !found[w] {
			t.Errorf("missing %q in %v", w, list)
		}
	}
	if found["ssbd-always"] || found["nosmt"] {
		t.Error("non-default mitigations listed")
	}
}
