package kernel

import "testing"

// allMitigations enumerates the full Mitigations value space: every
// combination of the eleven bool fields crossed with every SpectreV2
// mode (2^11 × 5 = 10240 values).
func allMitigations() []Mitigations {
	setters := []func(m *Mitigations, v bool){
		func(m *Mitigations, v bool) { m.PTI = v },
		func(m *Mitigations, v bool) { m.PTEInversion = v },
		func(m *Mitigations, v bool) { m.L1TFFlushOnVMEntry = v },
		func(m *Mitigations, v bool) { m.EagerFPU = v },
		func(m *Mitigations, v bool) { m.SpectreV1 = v },
		func(m *Mitigations, v bool) { m.IBPB = v },
		func(m *Mitigations, v bool) { m.RSBStuff = v },
		func(m *Mitigations, v bool) { m.MDSClear = v },
		func(m *Mitigations, v bool) { m.SSBDSeccomp = v },
		func(m *Mitigations, v bool) { m.SSBDAlways = v },
		func(m *Mitigations, v bool) { m.NoSMT = v },
	}
	modes := []SpectreV2Mode{V2Off, V2RetpolineGeneric, V2RetpolineAMD, V2IBRS, V2EIBRS}
	out := make([]Mitigations, 0, (1<<len(setters))*len(modes))
	for bits := 0; bits < 1<<len(setters); bits++ {
		var base Mitigations
		for i, set := range setters {
			set(&base, bits&(1<<i) != 0)
		}
		for _, mode := range modes {
			m := base
			m.SpectreV2 = mode
			out = append(out, m)
		}
	}
	return out
}

// TestCanonicalKeyInjective asserts CanonicalKey is collision-free over
// the entire Mitigations value space: distinct mitigation sets must map
// to distinct keys, or checkpoint lookups (and sweep dedup classes)
// would silently alias unrelated configurations.
func TestCanonicalKeyInjective(t *testing.T) {
	all := allMitigations()
	seen := make(map[string]Mitigations, len(all))
	for _, m := range all {
		k := m.CanonicalKey()
		if prev, dup := seen[k]; dup {
			t.Fatalf("CanonicalKey collision: %+v and %+v both map to %q", prev, m, k)
		}
		seen[k] = m
	}
	if len(seen) != len(all) {
		t.Fatalf("expected %d distinct keys, got %d", len(all), len(seen))
	}
}

// TestMitKeyMatchesCanonicalKey pins the checkpoint fingerprint to the
// canonical builder so the stub-image cache and the sweep dedup fold
// cannot drift apart.
func TestMitKeyMatchesCanonicalKey(t *testing.T) {
	for _, m := range allMitigations()[:64] {
		if mitKey(m) != m.CanonicalKey() {
			t.Fatalf("mitKey diverges from CanonicalKey for %+v", m)
		}
	}
}
