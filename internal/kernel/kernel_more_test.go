package kernel

import (
	"strings"
	"testing"

	"spectrebench/internal/cpu"
	"spectrebench/internal/isa"
	"spectrebench/internal/model"
)

func TestUnknownSyscallENOSYS(t *testing.T) {
	c, k := boot(model.Zen(), Defaults(model.Zen()))
	a := isa.NewAsm()
	emitSyscall(a, 9999)
	a.Mov(isa.R9, isa.R0)
	emitExit(a, 0)
	k.NewProcess("bad", a.MustAssemble(UserCodeBase))
	if err := k.RunProcessToCompletion(1_000_000); err != nil {
		t.Fatal(err)
	}
	if c.Regs[isa.R9] != ENOSYS {
		t.Errorf("result = %#x, want ENOSYS", c.Regs[isa.R9])
	}
}

func TestBadFDErrors(t *testing.T) {
	c, k := boot(model.Zen(), Defaults(model.Zen()))
	a := isa.NewAsm()
	a.MovI(isa.R1, 42) // no such fd
	a.MovI(isa.R2, UserDataBase)
	a.MovI(isa.R3, 8)
	emitSyscall(a, SysRead)
	a.Mov(isa.R9, isa.R0)
	a.MovI(isa.R1, 42)
	emitSyscall(a, SysWrite)
	a.Mov(isa.R10, isa.R0)
	a.MovI(isa.R1, 42)
	emitSyscall(a, SysClose)
	a.Mov(isa.R11, isa.R0)
	emitExit(a, 0)
	k.NewProcess("badfd", a.MustAssemble(UserCodeBase))
	if err := k.RunProcessToCompletion(1_000_000); err != nil {
		t.Fatal(err)
	}
	if c.Regs[isa.R9] != EBADF || c.Regs[isa.R10] != EBADF || c.Regs[isa.R11] != EBADF {
		t.Errorf("read/write/close on bad fd = %#x/%#x/%#x", c.Regs[isa.R9], c.Regs[isa.R10], c.Regs[isa.R11])
	}
}

func TestBadUserBufferEFAULT(t *testing.T) {
	c, k := boot(model.Zen2(), Defaults(model.Zen2()))
	a := isa.NewAsm()
	a.MovI(isa.R1, 0)
	a.MovI(isa.R2, 4096)
	emitSyscall(a, SysOpen)
	a.Mov(isa.R8, isa.R0)
	a.Mov(isa.R1, isa.R8)
	a.MovI(isa.R2, 0x7900_0000) // unmapped buffer
	a.MovI(isa.R3, 64)
	emitSyscall(a, SysWrite)
	a.Mov(isa.R9, isa.R0)
	emitExit(a, 0)
	k.NewProcess("efault", a.MustAssemble(UserCodeBase))
	if err := k.RunProcessToCompletion(1_000_000); err != nil {
		t.Fatal(err)
	}
	if c.Regs[isa.R9] != EFAULT {
		t.Errorf("write from unmapped buffer = %#x, want EFAULT", c.Regs[isa.R9])
	}
}

func TestMmapBadArgs(t *testing.T) {
	c, k := boot(model.Zen(), Defaults(model.Zen()))
	a := isa.NewAsm()
	a.MovI(isa.R1, 0) // zero pages
	emitSyscall(a, SysMmap)
	a.Mov(isa.R9, isa.R0)
	a.MovI(isa.R1, UserMmapBase+1) // misaligned munmap
	a.MovI(isa.R2, 1)
	emitSyscall(a, SysMunmap)
	a.Mov(isa.R10, isa.R0)
	emitExit(a, 0)
	k.NewProcess("badmmap", a.MustAssemble(UserCodeBase))
	if err := k.RunProcessToCompletion(1_000_000); err != nil {
		t.Fatal(err)
	}
	if c.Regs[isa.R9] != EINVAL || c.Regs[isa.R10] != EINVAL {
		t.Errorf("mmap/munmap bad args = %#x/%#x", c.Regs[isa.R9], c.Regs[isa.R10])
	}
}

func TestBlockingSelectWokenByPipe(t *testing.T) {
	c, k := boot(model.CascadeLake(), Defaults(model.CascadeLake()))
	a := isa.NewAsm()
	emitSyscall(a, SysPipe) // fds 3 (r), 4 (w)
	emitSyscall(a, SysFork)
	a.CmpI(isa.R0, 0)
	a.Jeq("child")
	// Parent: blocking select on the read end.
	a.MovI(isa.R1, 8)
	a.MovI(isa.R2, 1) // blocking
	emitSyscall(a, SysSelect)
	a.Mov(isa.R9, isa.R0) // ready count
	emitExit(a, 0)
	// Child: write to wake the parent.
	a.Label("child")
	a.MovI(isa.R1, 4)
	a.MovI(isa.R2, UserDataBase)
	a.MovI(isa.R3, 8)
	emitSyscall(a, SysWrite)
	emitExit(a, 0)
	k.NewProcess("select", a.MustAssemble(UserCodeBase))
	if err := k.RunProcessToCompletion(2_000_000); err != nil {
		t.Fatal(err)
	}
	if c.Regs[isa.R9] != 1 {
		t.Errorf("select ready = %d, want 1", c.Regs[isa.R9])
	}
}

func TestPipeWriterBlocksWhenFull(t *testing.T) {
	_, k := boot(model.Zen3(), Defaults(model.Zen3()))
	a := isa.NewAsm()
	emitSyscall(a, SysPipe)
	emitSyscall(a, SysFork)
	a.CmpI(isa.R0, 0)
	a.Jeq("child")
	// Parent: write 65 chunks of 1 KiB (the 65th exceeds pipeCapacity
	// and blocks until the child drains).
	a.MovI(isa.R9, 0)
	a.Label("wloop")
	a.MovI(isa.R1, 4)
	a.MovI(isa.R2, UserDataBase)
	a.MovI(isa.R3, 1024)
	emitSyscall(a, SysWrite)
	a.AddI(isa.R9, 1)
	a.CmpI(isa.R9, 65)
	a.Jne("wloop")
	emitExit(a, 0)
	// Child: yield a few times (letting the parent fill the pipe), then
	// drain everything.
	a.Label("child")
	a.MovI(isa.R9, 0)
	a.Label("yloop")
	emitSyscall(a, SysYield)
	a.AddI(isa.R9, 1)
	a.CmpI(isa.R9, 3)
	a.Jne("yloop")
	a.MovI(isa.R9, 0)
	a.Label("rloop")
	a.MovI(isa.R1, 3)
	a.MovI(isa.R2, UserDataBase+0x8000)
	a.MovI(isa.R3, 1024)
	emitSyscall(a, SysRead)
	a.AddI(isa.R9, 1)
	a.CmpI(isa.R9, 65)
	a.Jne("rloop")
	emitExit(a, 0)
	k.NewProcess("pipefull", a.MustAssemble(UserCodeBase))
	if err := k.RunProcessToCompletion(20_000_000); err != nil {
		t.Fatal(err)
	}
	for pid := 1; pid <= 2; pid++ {
		if p := k.Proc(pid); p == nil || p.State != ProcExited {
			t.Errorf("pid %d did not exit", pid)
		}
	}
}

func TestNanosleepBurnsTime(t *testing.T) {
	c, k := boot(model.Zen(), Defaults(model.Zen()))
	a := isa.NewAsm()
	emitSyscall(a, SysGetTSC)
	a.Mov(isa.R8, isa.R0)
	a.MovI(isa.R1, 50000)
	emitSyscall(a, SysNanosleep)
	emitSyscall(a, SysGetTSC)
	a.Sub(isa.R0, isa.R8)
	a.Mov(isa.R9, isa.R0)
	emitExit(a, 0)
	k.NewProcess("sleep", a.MustAssemble(UserCodeBase))
	if err := k.RunProcessToCompletion(1_000_000); err != nil {
		t.Fatal(err)
	}
	if c.Regs[isa.R9] < 50000 {
		t.Errorf("elapsed = %d, want ≥ 50000", c.Regs[isa.R9])
	}
}

func TestIBRSModeStubsToggleMSR(t *testing.T) {
	// spectre_v2=ibrs: the entry stub sets IBRS and the exit stub
	// restores the user value, costing a wrmsr each way.
	m := model.Broadwell()
	mit := BootParams{SpectreV2: "ibrs"}.Apply(m, Defaults(m))
	if mit.SpectreV2 != V2IBRS {
		t.Fatal("boot param not applied")
	}
	c, k := boot(m, mit)
	var sawKernelIBRS bool
	mod := k.RegisterKernelModule(func(a *isa.Asm) {
		a.Rdmsr(isa.R9, cpu.MSRSpecCtrl) // read inside the kernel
		a.JmpInd(isa.R10)
	})
	a := isa.NewAsm()
	a.MovI(isa.R2, int64(mod.Base))
	emitSyscall(a, SysKMod)
	a.Mov(isa.R8, isa.R9) // kernel-observed SPEC_CTRL
	a.MovI(isa.R12, 1)    // marker: back in user mode
	a.Label("spin")
	a.Jmp("spin")
	k.NewProcess("ibrs", a.MustAssemble(UserCodeBase))
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500000 && c.Regs[isa.R12] != 1; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Regs[isa.R12] != 1 {
		t.Fatal("marker never reached")
	}
	sawKernelIBRS = c.Regs[isa.R8]&cpu.SpecCtrlIBRS != 0
	if !sawKernelIBRS {
		t.Error("IBRS not set while in the kernel under spectre_v2=ibrs")
	}
	if c.IBRSActive() {
		t.Error("IBRS still set after returning to user mode")
	}
}

func TestLazyFPUOwnershipHandoff(t *testing.T) {
	// Two FPU-using processes under lazy switching: each first FPU use
	// after a reschedule traps, and values never leak architecturally
	// between them.
	m := model.SkylakeClient()
	mit := Defaults(m)
	mit.EagerFPU = false
	c, k := boot(m, mit)
	a := isa.NewAsm()
	emitSyscall(a, SysFork)
	a.CmpI(isa.R0, 0)
	a.Jeq("child")
	// Parent: f0 = 111; yield; read back.
	a.FMovI(0, 111)
	emitSyscall(a, SysYield)
	a.FToI(isa.R9, 0)
	emitSyscall(a, SysYield)
	emitExit(a, 0)
	a.Label("child")
	a.FMovI(0, 222)
	emitSyscall(a, SysYield)
	a.FToI(isa.R10, 0)
	a.MovI(isa.R11, UserDataBase+0x3e00)
	a.Store(isa.R11, 0, isa.R10) // park the observation in shared memory
	emitExit(a, 0)
	p := k.NewProcess("fpu", a.MustAssemble(UserCodeBase))
	if err := k.RunProcessToCompletion(5_000_000); err != nil {
		t.Fatal(err)
	}
	if k.FPUTraps == 0 {
		t.Fatal("lazy FPU never trapped")
	}
	// The child (which shares the parent's physical window post-fork)
	// must have read back its own 222, not the parent's 111 or zero.
	got := c.Phys.Read64((uint64(p.PID) << 32) + UserDataBase + 0x3e00)
	if got != 222 {
		t.Errorf("child read f0 = %d, want its own 222", got)
	}
}

func TestSpectreV2ModeStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, v := range []SpectreV2Mode{V2Off, V2RetpolineGeneric, V2RetpolineAMD, V2IBRS, V2EIBRS} {
		s := v.String()
		if s == "" || seen[s] {
			t.Errorf("mode %d: bad string %q", v, s)
		}
		seen[s] = true
	}
	if !strings.Contains(SpectreV2Mode(99).String(), "99") {
		t.Error("unknown mode should print its value")
	}
}

func TestProcAccessors(t *testing.T) {
	_, k := boot(model.Zen(), Defaults(model.Zen()))
	a := isa.NewAsm()
	emitExit(a, 0)
	p := k.NewProcess("acc", a.MustAssemble(UserCodeBase))
	if k.Proc(p.PID) != p {
		t.Error("Proc lookup failed")
	}
	if k.LiveProcs() != 1 {
		t.Errorf("LiveProcs = %d", k.LiveProcs())
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	if k.Current() != p {
		t.Error("Current != started proc")
	}
	if err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if k.LiveProcs() != 0 {
		t.Errorf("LiveProcs after exit = %d", k.LiveProcs())
	}
	// Start with nothing runnable errors.
	if err := k.Start(); err == nil {
		t.Error("Start with no ready process should fail")
	}
}

func TestDeadlockDetected(t *testing.T) {
	_, k := boot(model.Zen(), Defaults(model.Zen()))
	a := isa.NewAsm()
	emitSyscall(a, SysPipe)
	// Read from the empty pipe with no writer ever coming (the same
	// process holds the write end, so no EOF either — a deadlock).
	a.MovI(isa.R1, 3)
	a.MovI(isa.R2, UserDataBase)
	a.MovI(isa.R3, 8)
	emitSyscall(a, SysRead)
	emitExit(a, 0)
	k.NewProcess("dead", a.MustAssemble(UserCodeBase))
	err := k.RunProcessToCompletion(1_000_000)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("err = %v, want deadlock", err)
	}
}

func TestSeccompFilterKillsViolations(t *testing.T) {
	_, k := boot(model.IceLakeClient(), Defaults(model.IceLakeClient()))
	a := isa.NewAsm()
	// Allow only getpid (and exit, implicitly).
	a.MovI(isa.R1, 1<<SysGetPID)
	emitSyscall(a, SysSeccomp)
	emitSyscall(a, SysGetPID) // fine
	a.MovI(isa.R1, 4)
	emitSyscall(a, SysMmap) // killed here
	a.MovI(isa.R9, 1)       // must never run
	emitExit(a, 0)
	p := k.NewProcess("filtered", a.MustAssemble(UserCodeBase))
	if err := k.RunProcessToCompletion(1_000_000); err != nil {
		t.Fatal(err)
	}
	if p.State != ProcExited {
		t.Fatal("process did not exit")
	}
	if p.exitCode != 128+31 {
		t.Errorf("exit code = %d, want SIGSYS-style 159", p.exitCode)
	}
}

func TestSeccompFilterAllowsPermitted(t *testing.T) {
	c, k := boot(model.IceLakeClient(), Defaults(model.IceLakeClient()))
	a := isa.NewAsm()
	a.MovI(isa.R1, 1<<SysGetPID|1<<SysGetTSC)
	emitSyscall(a, SysSeccomp)
	emitSyscall(a, SysGetPID)
	emitSyscall(a, SysGetTSC)
	a.MovI(isa.R9, 1)
	emitExit(a, 0)
	p := k.NewProcess("permitted", a.MustAssemble(UserCodeBase))
	if err := k.RunProcessToCompletion(1_000_000); err != nil {
		t.Fatal(err)
	}
	if p.exitCode != 0 {
		t.Errorf("exit code = %d", p.exitCode)
	}
	if c.Regs[isa.R9] != 1 {
		t.Error("permitted syscalls did not complete")
	}
}
