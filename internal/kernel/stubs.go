package kernel

import (
	"spectrebench/internal/cpu"
	"spectrebench/internal/isa"
)

// buildStubs assembles the kernel entry/exit stubs and the in-kernel
// indirect-call worker according to the active mitigation set. These run
// as real simulated code so every mitigation instruction (swapgs fence,
// CR3 swap, VERW, IBRS MSR writes, retpolines) is executed — and costed
// — organically on every boundary crossing.
//
// Register convention: R14 is kernel-clobbered (like rcx/r11 for x86
// syscall); R12/R13 are scratch inside the kernel after user registers
// have been saved by the dispatch thunk.
func (k *Kernel) buildStubs() {
	a := isa.NewAsm()

	// ---- syscall entry -------------------------------------------------
	a.Label("entry")
	a.Swapgs()
	if k.Mit.SpectreV1 {
		// "lfence after swapgs" (Table 1): stop Spectre V1 speculation
		// past the kernel entry.
		a.Lfence()
	}
	if k.Mit.PTI {
		// Switch from the user page table to the full kernel table.
		a.MovI(isa.R14, KernDataBase+trampKernelCR3)
		a.Load(isa.R14, isa.R14, 0)
		a.MovCR3(isa.R14)
	}
	if k.Mit.SpectreV2 == V2IBRS {
		// Legacy IBRS: restrict indirect speculation for the duration
		// of kernel execution. An MSR write on every entry (§5.3).
		a.MovI(isa.R14, KernDataBase+trampKernSC)
		a.Load(isa.R14, isa.R14, 0)
		a.Wrmsr(cpu.MSRSpecCtrl, isa.R14)
	}
	a.Jmp("dispatch") // lands on the dispatch thunk address

	// ---- syscall exit --------------------------------------------------
	a.Label("exit")
	if k.Mit.SpectreV2 == V2IBRS {
		a.MovI(isa.R14, KernDataBase+trampUserSC)
		a.Load(isa.R14, isa.R14, 0)
		a.Wrmsr(cpu.MSRSpecCtrl, isa.R14)
	}
	if k.Mit.MDSClear {
		// Clear µarch buffers on every kernel→user transition (§5.2).
		a.Verw()
	}
	if k.Mit.PTI {
		a.MovI(isa.R14, KernDataBase+trampUserCR3)
		a.Load(isa.R14, isa.R14, 0)
		a.MovCR3(isa.R14)
	}
	a.Swapgs()
	a.Sysret()

	// ---- in-kernel indirect-call worker ---------------------------------
	// Syscall handlers perform R13 dispatch-table calls through R12 —
	// the VFS-style indirect branches that retpolines/(e)IBRS protect.
	a.Label("kcall")
	a.Label("kcall_loop")
	a.CmpI(isa.R13, 0)
	a.Jeq("kcall_done")
	k.emitProtectedIndirectCall(a)
	a.SubI(isa.R13, 1)
	a.Jmp("kcall_loop")
	a.Label("kcall_done")
	a.Jmp("post") // lands on the post thunk address

	// ---- a representative kernel function -------------------------------
	a.Label("kfunc")
	a.AddI(isa.R12, 0) // a couple of ALU ops stand in for handler work
	a.Ret()

	// ---- generic retpoline thunk (__x86_indirect_thunk_r12) -------------
	a.Label("retp_thunk")
	a.Call("retp_set")
	a.Label("retp_capture") // RSB-predicted landing: speculation spins here
	a.Pause()
	a.Lfence()
	a.Jmp("retp_capture")
	a.Label("retp_set")
	a.Store(isa.SP, 0, isa.R12) // overwrite return address with real target
	a.Ret()                     // architectural jump to *R12; RSB mispredicts into the capture loop

	// ---- RSB stuffing helper --------------------------------------------
	// (performed Go-side via RSB.Fill; this label is the benign target.)
	a.Label("rsb_benign")
	a.Ret()

	// Placeholder labels for the host-Go thunk jumps; their real targets
	// are patched below.
	a.Label("dispatch")
	a.Label("post")
	a.Hlt()

	k.stubs = a.MustAssemble(KernTextBase)
	k.entryPC = k.stubs.LabelAddr("entry")
	k.exitPC = k.stubs.LabelAddr("exit")
	k.kcallPC = k.stubs.LabelAddr("kcall")
	k.kfuncPC = k.stubs.LabelAddr("kfunc")

	// Patch the thunk jumps onto their magic addresses.
	k.patchJump("dispatch-jmp", k.stubs.LabelAddr("entry"), k.dispatchThunkPC())
	k.patchJump("post-jmp", k.stubs.LabelAddr("kcall_done"), k.postThunkPC())
}

// patchJump rewrites the first JMP at or after fromPC to land on target.
// It runs once at kernel construction over the static stub program, so
// the panic below is a registration-time programming bug in the stub
// text — it cannot be reached from experiment input.
func (k *Kernel) patchJump(what string, fromPC, target uint64) {
	for i := int((fromPC - k.stubs.Base) / isa.InstrBytes); i < len(k.stubs.Code); i++ {
		if k.stubs.Code[i].Op == isa.JMP {
			k.stubs.Code[i].Target = target
			k.stubs.Code[i].Label = what
			return
		}
	}
	panic("kernel: no JMP to patch for " + what)
}

// emitProtectedIndirectCall emits "call *R12" protected per the active
// Spectre V2 mode.
func (k *Kernel) emitProtectedIndirectCall(a *isa.Asm) {
	switch k.Mit.SpectreV2 {
	case V2RetpolineGeneric:
		a.Call("retp_thunk")
	case V2RetpolineAMD:
		// lfence; call — the AMD-recommended (later withdrawn) variant.
		a.Lfence()
		a.CallInd(isa.R12)
	default:
		// V2Off, V2IBRS, V2EIBRS: a plain indirect call; protection (if
		// any) comes from MSR state.
		a.CallInd(isa.R12)
	}
}
