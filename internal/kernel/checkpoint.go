// Checkpointed kernel boot: the expensive parts of bringing a kernel up
// — assembling the mitigation-dependent entry/exit stubs and populating
// per-process page tables — are pure functions of the mitigation set
// and the process layout. Both are built once per distinct key, frozen,
// and forked by every later kernel with the same configuration (the
// engine constructs one or more kernels per simulation cell, and a
// sweep boots thousands). Everything captured here is host-side
// construction: no simulated instruction runs and no fault-injection
// draw happens while a checkpoint is built or consumed, so a kernel
// restored from a checkpoint is byte-identical to a cold boot with any
// injector state.
package kernel

import (
	"fmt"

	"spectrebench/internal/checkpoint"
	"spectrebench/internal/isa"
	"spectrebench/internal/mem"
)

// stubImage is the frozen product of buildStubs for one mitigation set:
// the assembled (and thunk-patched) kernel text plus its entry points.
// The program is immutable after patching, so sharing one *isa.Program
// across kernels — including concurrently under -jobs N — is safe.
type stubImage struct {
	stubs                             *isa.Program
	entryPC, exitPC, kcallPC, kfuncPC uint64
}

// mitKey fingerprints a mitigation set for checkpoint keys. It reuses
// the hand-rolled CanonicalKey builder — injective over every
// Mitigations field (see TestCanonicalKeyInjective) — instead of the
// reflective %+v formatter, which showed up in boot-heavy sweep
// profiles on every checkpoint lookup.
func mitKey(mit Mitigations) string { return mit.CanonicalKey() }

// loadStubs installs the entry/exit stub program and entry points,
// reusing the frozen image when a kernel with the same mitigation set
// has booted before and assembling from scratch otherwise.
func (k *Kernel) loadStubs() {
	v, ok := checkpoint.Get("kernel/stubs|"+mitKey(k.Mit), func() any {
		// Build on a scratch kernel: buildStubs reads only k.Mit and
		// layout constants, so the builder needs no core.
		b := &Kernel{Mit: k.Mit}
		b.buildStubs()
		return &stubImage{
			stubs:   b.stubs,
			entryPC: b.entryPC, exitPC: b.exitPC,
			kcallPC: b.kcallPC, kfuncPC: b.kfuncPC,
		}
	})
	if !ok {
		k.buildStubs()
		return
	}
	img := v.(*stubImage)
	k.stubs = img.stubs
	k.entryPC, k.exitPC = img.entryPC, img.exitPC
	k.kcallPC, k.kfuncPC = img.kcallPC, img.kfuncPC
}

// procImage holds frozen page-table templates for one process shape:
// the full kernel table and, under PTI, the user table.
type procImage struct {
	kpt, upt *mem.PTImage
}

// procTableImage returns the frozen KPT/UPT templates for a process
// with this pid, code size, and extra-region list, building them on
// first use. The tables NewProcess constructs are a pure function of
// (PTI, codePages, pid, regions): every mapping is derived from layout
// constants, the pid-keyed physical window, and the region list, so the
// same key always freezes the same entries.
func (k *Kernel) procTableImage(pid, codePages int, extra []Region) (*procImage, bool) {
	key := fmt.Sprintf("kernel/proctab|pti=%t|code=%d|pid=%d|regions=%+v",
		k.Mit.PTI, codePages, pid, extra)
	v, ok := checkpoint.Get(key, func() any {
		reg := mem.NewRegistry()
		kpt := reg.NewTable(0)
		var upt *mem.PageTable
		if k.Mit.PTI {
			upt = reg.NewTable(0)
		}
		k.populateProcTables(kpt, upt, uint64(pid)<<32, codePages, extra)
		img := &procImage{kpt: kpt.Freeze()}
		if upt != nil {
			img.upt = upt.Freeze()
		}
		return img
	})
	if !ok {
		return nil, false
	}
	return v.(*procImage), true
}
