package kernel

import (
	"spectrebench/internal/cpu"
	"spectrebench/internal/faultinject"
	"spectrebench/internal/isa"
	"spectrebench/internal/mem"
)

// Syscall numbers (passed in R7; args in R1..R5; result in R0).
const (
	SysExit = iota
	SysGetPID
	SysRead
	SysWrite
	SysMmap
	SysMunmap
	SysYield
	SysFork
	SysPipe
	SysSend
	SysRecv
	SysSelect
	SysPrctl
	SysSeccomp
	SysKMod
	SysNanosleep
	SysThreadSpawn
	SysOpen
	SysClose
	SysGetTSC
	SysSignal

	numSyscalls
)

// Errno-style results (returned as ^0, ^1... in R0).
const (
	EBADF  = ^uint64(8)
	EFAULT = ^uint64(13)
	EINVAL = ^uint64(21)
	ENOSYS = ^uint64(37)
)

// syscallInfo carries per-syscall dispatch metadata: how many in-kernel
// indirect calls the handler performs (the VFS-depth knob that decides
// how much retpoline/(e)IBRS cost a syscall pays) and a base handler
// cost representing its non-boundary work.
type syscallInfo struct {
	name      string
	nIndirect int64
	baseCost  uint64
	handler   func(k *Kernel, ctx *syscallCtx) (ret uint64, blocked bool)
}

var syscallTable [numSyscalls]syscallInfo

func init() {
	syscallTable = [numSyscalls]syscallInfo{
		SysExit:        {"exit", 1, 1500, (*Kernel).sysExit},
		SysGetPID:      {"getpid", 1, 700, (*Kernel).sysGetPID},
		SysRead:        {"read", 4, 900, (*Kernel).sysRead},
		SysWrite:       {"write", 4, 900, (*Kernel).sysWrite},
		SysMmap:        {"mmap", 6, 2000, (*Kernel).sysMmap},
		SysMunmap:      {"munmap", 6, 1800, (*Kernel).sysMunmap},
		SysYield:       {"yield", 2, 700, (*Kernel).sysYield},
		SysFork:        {"fork", 8, 4500, (*Kernel).sysFork},
		SysPipe:        {"pipe", 3, 800, (*Kernel).sysPipe},
		SysSend:        {"send", 6, 1000, (*Kernel).sysSend},
		SysRecv:        {"recv", 6, 1000, (*Kernel).sysRecv},
		SysSelect:      {"select", 5, 1400, (*Kernel).sysSelect},
		SysPrctl:       {"prctl", 2, 200, (*Kernel).sysPrctl},
		SysSeccomp:     {"seccomp", 2, 400, (*Kernel).sysSeccomp},
		SysKMod:        {"kmod", 1, 20, nil}, // special-cased in dispatch
		SysNanosleep:   {"nanosleep", 2, 150, (*Kernel).sysNanosleep},
		SysThreadSpawn: {"thread_spawn", 6, 3000, (*Kernel).sysThreadSpawn},
		SysOpen:        {"open", 5, 600, (*Kernel).sysOpen},
		SysClose:       {"close", 3, 250, (*Kernel).sysClose},
		SysGetTSC:      {"gettsc", 1, 60, (*Kernel).sysGetTSC},
		SysSignal:      {"signal", 2, 200, (*Kernel).sysSignal},
	}
}

// dispatchThunk runs at the end of the entry stub: it saves the user
// context, then routes execution into the in-kernel indirect-call worker
// before the Go handler runs.
func (k *Kernel) dispatchThunk(c *cpu.Core) {
	k.Syscalls++
	k.saveCur()
	p := k.cur

	if c.FI.Fire(faultinject.SyscallEINTR) {
		// Injected weather: the syscall is interrupted before its
		// handler runs and transparently restarted (SA_RESTART
		// semantics). Charge the aborted entry/exit round trip plus the
		// signal-delivery bookkeeping; dispatch then proceeds as the
		// restarted invocation, so user code never observes EINTR.
		k.SyscallRestarts++
		c.Charge(c.Model.Costs.Syscall + c.Model.Costs.Sysret + 600)
	}

	nr := c.Regs[isa.R7]
	ctx := &syscallCtx{proc: p, nr: nr}
	ctx.args = [5]uint64{c.Regs[isa.R1], c.Regs[isa.R2], c.Regs[isa.R3], c.Regs[isa.R4], c.Regs[isa.R5]}
	k.inflight = ctx

	// Seccomp filter: a disallowed syscall kills the process.
	if p.seccompAllowed != 0 && (nr >= 64 || p.seccompAllowed&(1<<nr) == 0) {
		k.inflight = nil
		k.exitProc(p, 128+31) // SIGSYS-style exit
		k.scheduleNext()
		return
	}

	if nr == SysKMod {
		// Jump straight into registered kernel-module code (the §6
		// probe's kernel-mode victim). The module receives the exit
		// stub address in R10 and its argument in R1. Targets outside
		// registered modules (or the user's own executable pages, which
		// the probe uses for shared-address experiments) are rejected.
		target := ctx.args[1] // args[1] = R2: module entry
		if !k.validKModTarget(p, target) {
			k.finishSyscall(ctx, EINVAL)
			return
		}
		c.Regs[isa.R10] = k.exitPC
		c.PC = target
		c.Regs[isa.R1] = ctx.args[0]
		return
	}
	if nr >= numSyscalls || syscallTable[nr].handler == nil {
		k.finishSyscall(ctx, ENOSYS)
		return
	}

	// Route through the indirect-call worker: R12 = target kernel
	// function, R13 = call count for this syscall.
	info := &syscallTable[nr]
	c.Regs[isa.R12] = k.kfuncPC
	c.Regs[isa.R13] = uint64(info.nIndirect)
	c.PC = k.kcallPC
}

// validKModTarget accepts addresses inside registered kernel modules or
// inside the calling process's executable user pages (the speculation
// probe runs its shared branch site from both modes).
func (k *Kernel) validKModTarget(p *Proc, target uint64) bool {
	if target >= KernModBase && target < k.nextModBase {
		return true
	}
	pte, ok := p.KPT.Lookup(target >> 12)
	return ok && pte.Present && !pte.NX
}

// postThunk runs when the indirect-call worker finishes: it executes the
// Go handler semantics and either completes the syscall or blocks.
func (k *Kernel) postThunk(c *cpu.Core) {
	ctx := k.inflight
	k.inflight = nil
	if ctx == nil || ctx.proc != k.cur {
		// A context switch happened underneath us; nothing to do.
		return
	}
	k.runHandler(ctx)
}

// runHandler invokes the syscall handler, blocking or completing.
func (k *Kernel) runHandler(ctx *syscallCtx) {
	info := &syscallTable[ctx.nr]
	if !ctx.retried {
		k.C.Charge(info.baseCost)
	}
	ret, blocked := info.handler(k, ctx)
	if blocked {
		k.blockCur(ctx)
		return
	}
	if ctx.done {
		return // the handler arranged its own continuation
	}
	k.finishSyscall(ctx, ret)
}

// finishSyscall restores the saved user context with R0 = ret and routes
// execution through the mitigation exit stub.
func (k *Kernel) finishSyscall(ctx *syscallCtx, ret uint64) {
	p := ctx.proc
	if p.State == ProcExited {
		k.scheduleNext()
		return
	}
	c := k.C
	c.Regs = p.Regs
	c.FlagEQ, c.FlagLT = p.FlagEQ, p.FlagLT
	c.Regs[isa.R0] = ret
	c.SavedUserPC = p.UserPC
	c.PC = k.exitPC
	p.State = ProcRunning
}

// resumePending re-runs a blocked syscall after wakeup (called when the
// process is rescheduled).
func (k *Kernel) resumePending(p *Proc) {
	ctx := p.pending
	p.pending = nil
	ctx.retried = true
	k.inflight = nil
	k.runHandler(ctx)
}

// ---- handlers -----------------------------------------------------------

func (k *Kernel) sysExit(ctx *syscallCtx) (uint64, bool) {
	ctx.done = true
	k.exitProc(ctx.proc, ctx.args[0])
	k.scheduleNext()
	return 0, false
}

func (k *Kernel) sysGetPID(ctx *syscallCtx) (uint64, bool) {
	return uint64(ctx.proc.PID), false
}

func (k *Kernel) sysGetTSC(ctx *syscallCtx) (uint64, bool) {
	return k.C.Cycles, false
}

func (k *Kernel) sysRead(ctx *syscallCtx) (uint64, bool) {
	p := ctx.proc
	fd, bufVA, n := int(ctx.args[0]), ctx.args[1], int(ctx.args[2])
	f, ok := p.fds[fd]
	if !ok {
		return EBADF, false
	}
	data, blocked := f.read(k, n)
	if blocked {
		return 0, true
	}
	k.C.Charge(k.copyCost(len(data)))
	if err := k.copyToUser(p, bufVA, data); err != nil {
		return EFAULT, false
	}
	return uint64(len(data)), false
}

func (k *Kernel) sysWrite(ctx *syscallCtx) (uint64, bool) {
	p := ctx.proc
	fd, bufVA, n := int(ctx.args[0]), ctx.args[1], int(ctx.args[2])
	f, ok := p.fds[fd]
	if !ok {
		return EBADF, false
	}
	buf := make([]byte, n)
	if err := k.copyFromUser(p, bufVA, buf); err != nil {
		return EFAULT, false
	}
	k.C.Charge(k.copyCost(n))
	wrote, blocked := f.write(k, buf)
	if blocked {
		return 0, true
	}
	return uint64(wrote), false
}

func (k *Kernel) sysMmap(ctx *syscallCtx) (uint64, bool) {
	p := ctx.proc
	npages := ctx.args[0]
	if npages == 0 || npages > 1<<20 {
		return EINVAL, false
	}
	base := p.mmapNext
	p.mmapNext += (npages + 8) * mem.PageSize
	for i := uint64(0); i < npages; i++ {
		p.lazy[mem.VPN(base)+i] = lazyPage{writable: true}
	}
	// Per-page bookkeeping cost.
	k.C.Charge(40 * npages)
	return base, false
}

func (k *Kernel) sysMunmap(ctx *syscallCtx) (uint64, bool) {
	p := ctx.proc
	base, npages := ctx.args[0], ctx.args[1]
	if base&mem.PageMask != 0 || npages == 0 {
		return EINVAL, false
	}
	k.unmapRange(p, base, int(npages))
	k.C.Charge(60 * npages)
	return 0, false
}

func (k *Kernel) sysYield(ctx *syscallCtx) (uint64, bool) {
	ctx.done = true
	p := ctx.proc
	// State was saved at entry; resume will return 0 from the syscall.
	p.Regs[isa.R0] = 0
	k.enqueue(p)
	k.scheduleNext()
	return 0, false
}

func (k *Kernel) sysFork(ctx *syscallCtx) (uint64, bool) {
	parent := ctx.proc
	child := k.forkProc(parent)
	// Child resumes at the same user PC with R0 = 0.
	child.Regs = parent.Regs
	child.Regs[isa.R0] = 0
	child.UserPC = parent.UserPC
	k.enqueue(child)
	return uint64(child.PID), false
}

// forkProc clones the process's address space (shared physical pages —
// the workloads don't need COW semantics, only the table-copy cost).
func (k *Kernel) forkProc(parent *Proc) *Proc {
	pid := k.nextPID
	k.nextPID++
	child := &Proc{
		PID:      pid,
		Name:     parent.Name + "+fork",
		State:    ProcReady,
		fds:      make(map[int]fileLike),
		lazy:     make(map[uint64]lazyPage),
		nextFD:   parent.nextFD,
		mmapNext: parent.mmapNext,
		FRegs:    parent.FRegs,
		Seccomp:  parent.Seccomp,
	}
	child.KPT = parent.KPT.Clone(k.C.PTs, uint16(pid*2%4096))
	if k.Mit.PTI {
		child.UPT = parent.UPT.Clone(k.C.PTs, uint16((pid*2+1)%4096))
	} else {
		child.UPT = child.KPT
	}
	for vpn, lz := range parent.lazy {
		child.lazy[vpn] = lz
	}
	for fd, f := range parent.fds {
		child.fds[fd] = f.dup()
	}
	child.fpuSaveArea = KernDataBase + mem.PageSize + uint64(pid)*256
	// Table-copy cost proportional to the address-space size.
	k.C.Charge(uint64(parent.KPT.Len()) * 6)
	k.procs[pid] = child
	k.live++
	return child
}

func (k *Kernel) sysThreadSpawn(ctx *syscallCtx) (uint64, bool) {
	parent := ctx.proc
	pid := k.nextPID
	k.nextPID++
	th := &Proc{
		PID:      pid,
		Name:     parent.Name + "+thr",
		State:    ProcReady,
		fds:      parent.fds, // threads share descriptors
		lazy:     parent.lazy,
		nextFD:   parent.nextFD,
		mmapNext: parent.mmapNext,
		KPT:      parent.KPT, // and the address space
		UPT:      parent.UPT,
		Seccomp:  parent.Seccomp,
	}
	th.fpuSaveArea = KernDataBase + mem.PageSize + uint64(pid)*256
	// args[0] = entry PC, args[1] = stack top.
	th.UserPC = ctx.args[0]
	th.Regs[isa.SP] = ctx.args[1]
	k.procs[pid] = th
	k.live++
	k.enqueue(th)
	return uint64(pid), false
}

func (k *Kernel) sysPipe(ctx *syscallCtx) (uint64, bool) {
	p := ctx.proc
	pp := &pipe{readers: 1, writers: 1}
	rfd, wfd := p.nextFD, p.nextFD+1
	p.nextFD += 2
	p.fds[rfd] = &pipeEnd{p: pp, readEnd: true}
	p.fds[wfd] = &pipeEnd{p: pp}
	// Result: rfd in low 32 bits, wfd in high.
	return uint64(rfd) | uint64(wfd)<<32, false
}

func (k *Kernel) sysSend(ctx *syscallCtx) (uint64, bool) {
	// Loopback socket send == pipe write with protocol overhead.
	k.C.Charge(200)
	return k.sysWrite(ctx)
}

func (k *Kernel) sysRecv(ctx *syscallCtx) (uint64, bool) {
	k.C.Charge(200)
	return k.sysRead(ctx)
}

func (k *Kernel) sysSelect(ctx *syscallCtx) (uint64, bool) {
	p := ctx.proc
	nfds := int(ctx.args[0])
	readyCount := 0
	scanned := 0
	for fd, f := range p.fds {
		if fd >= nfds {
			continue
		}
		scanned++
		if f.readReady() {
			readyCount++
		}
	}
	k.C.Charge(uint64(scanned) * 45)
	if readyCount == 0 && ctx.args[1] != 0 {
		// Blocking select: sleep on every pipe read end so a writer
		// wakes us.
		for fd, f := range p.fds {
			if fd >= nfds {
				continue
			}
			if pe, ok := f.(*pipeEnd); ok && pe.readEnd {
				pe.p.addWaiter(p)
			}
		}
		return 0, true
	}
	return uint64(readyCount), false
}

func (k *Kernel) sysPrctl(ctx *syscallCtx) (uint64, bool) {
	p := ctx.proc
	const prSetSpeculationCtrl = 53
	if ctx.args[0] == prSetSpeculationCtrl {
		if !k.C.Model.Spec.SSBDImplemented {
			return ENOSYS, false
		}
		p.SSBDPrctl = ctx.args[1] != 0
		k.applySpecCtrl(p)
		return 0, false
	}
	return EINVAL, false
}

// sysSeccomp enters seccomp mode. args[0], when nonzero, is a bitmask
// of permitted syscall numbers (bit n = syscall n allowed); SysExit is
// always permitted. Violations kill the process. On kernels ≤ 5.15
// entering seccomp also implies SSBD (§4.3).
func (k *Kernel) sysSeccomp(ctx *syscallCtx) (uint64, bool) {
	p := ctx.proc
	p.Seccomp = true
	if ctx.args[0] != 0 {
		p.seccompAllowed = ctx.args[0] | 1<<SysExit
	}
	k.applySpecCtrl(p)
	return 0, false
}

// applySpecCtrl re-evaluates the process's SPEC_CTRL policy immediately.
func (k *Kernel) applySpecCtrl(p *Proc) {
	want := k.userSpecCtrl(p)
	if k.Mit.SpectreV2 == V2EIBRS {
		want |= cpu.SpecCtrlIBRS
	}
	cur := k.C.MSR(cpu.MSRSpecCtrl)
	if cur != want {
		k.C.Charge(k.C.Model.Costs.WrmsrSpecCtrl)
		k.C.SetMSR(cpu.MSRSpecCtrl, want)
	}
	k.C.Phys.Write64(KernDataBase+trampUserSC, want)
}

func (k *Kernel) sysNanosleep(ctx *syscallCtx) (uint64, bool) {
	// Sleeping burns simulated time without blocking the scheduler:
	// the workloads use it as a calibrated delay.
	k.C.Charge(ctx.args[0])
	return 0, false
}

func (k *Kernel) sysOpen(ctx *syscallCtx) (uint64, bool) {
	p := ctx.proc
	// args[0] = file id, args[1] = size hint.
	var f fileLike
	if k.OpenFileProvider != nil {
		ext := k.OpenFileProvider(ctx.args[0], ctx.args[1])
		if ext == nil {
			return EBADF, false
		}
		f = &extFile{f: ext}
	} else {
		f = &memFile{data: make([]byte, ctx.args[1])}
	}
	fd := p.nextFD
	p.nextFD++
	p.fds[fd] = f
	return uint64(fd), false
}

// sysSignal registers a user-mode fault handler (args[0] = handler PC;
// 0 unregisters).
func (k *Kernel) sysSignal(ctx *syscallCtx) (uint64, bool) {
	ctx.proc.sigHandler = ctx.args[0]
	return 0, false
}

func (k *Kernel) sysClose(ctx *syscallCtx) (uint64, bool) {
	p := ctx.proc
	fd := int(ctx.args[0])
	f, ok := p.fds[fd]
	if !ok {
		return EBADF, false
	}
	f.close(k)
	delete(p.fds, fd)
	return 0, false
}
