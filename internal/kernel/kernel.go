package kernel

import (
	"fmt"

	"spectrebench/internal/cpu"
	"spectrebench/internal/isa"
	"spectrebench/internal/mem"
)

// Virtual address-space layout. User space occupies the low half; kernel
// text/data live high, mapped supervisor+global in every kernel table.
const (
	UserCodeBase  = 0x0040_0000
	UserDataBase  = 0x0100_0000
	UserStackTop  = 0x0800_0000
	UserStackPgs  = 64
	UserMmapBase  = 0x2000_0000
	KernTextBase  = 0x8000_0000 // entry/exit stubs, kcall loop, kernel funcs
	KernDataBase  = 0x8100_0000 // trampoline slots, FPU save areas
	KernModBase   = 0x8200_0000 // registered kernel-module code (probe support)
	kernTextPages = 16
	kernDataPages = 64
)

// Trampoline data slots (offsets into KernDataBase). The entry/exit
// stubs read these; the page is mapped into PTI user tables too, like
// KPTI's cpu-entry area.
const (
	trampKernelCR3 = 0  // current process's kernel-table CR3
	trampUserCR3   = 8  // current process's user-table CR3
	trampKernSC    = 16 // SPEC_CTRL value for kernel mode (IBRS modes)
	trampUserSC    = 24 // SPEC_CTRL value for user mode
)

// rsbBenign returns the harmless address RSB stuffing points at.
func (k *Kernel) rsbBenign() uint64 { return k.stubs.LabelAddr("rsb_benign") }

// ProcState is a process's scheduler state.
type ProcState int

// Process states.
const (
	ProcReady ProcState = iota
	ProcRunning
	ProcBlocked
	ProcExited
)

// Proc is a simulated process (or thread — threads share page tables).
type Proc struct {
	PID  int
	Name string

	KPT *mem.PageTable // full table (kernel + user mappings)
	UPT *mem.PageTable // PTI user table (user mappings + trampoline); == KPT without PTI

	State ProcState

	// Saved user context (filled at syscall entry / switch).
	Regs        [isa.NumRegs]uint64
	FRegs       [isa.NumFRegs]float64
	FlagEQ      bool
	FlagLT      bool
	UserPC      uint64
	SpecCtrlSSB bool // SSBD requested via prctl or implied by seccomp policy

	Seccomp   bool
	SSBDPrctl bool
	// seccompAllowed, when nonzero, is a bitmask of permitted syscall
	// numbers after SysSeccomp installed a filter; violations kill the
	// process (SECCOMP_RET_KILL semantics).
	seccompAllowed uint64

	// sigHandler, when nonzero, receives user-mode page faults (a
	// minimal SIGSEGV handler — how Meltdown-style attacks survive the
	// faults they provoke). The handler runs with the faulting
	// register state; R14 holds the faulting address.
	sigHandler uint64

	// Pending syscall continuation (set while blocked in a syscall).
	pending *syscallCtx

	// Demand-paging regions: VPN → mapped lazily on first touch.
	lazy map[uint64]lazyPage

	// Open file descriptors.
	fds map[int]fileLike

	nextFD   int
	mmapNext uint64
	exitCode uint64

	// fpuSaveArea is this process's kernel save slot for FPU state.
	fpuSaveArea uint64
}

type lazyPage struct {
	writable bool
}

// Kernel is the simulated operating system.
type Kernel struct {
	C   *cpu.Core
	Mit Mitigations

	procs   map[int]*Proc
	ready   []*Proc
	cur     *Proc
	lastRun *Proc // most recently descheduled process (for switch-cost accounting after exits)
	nextPID int
	// live counts non-exited processes; the scheduler polls it every
	// step, so it is maintained at the three creation sites and in
	// exitProc rather than recounted from the map.
	live int

	// fpuOwner is the process whose state is live in the FPU registers
	// under lazy FPU switching.
	fpuOwner *Proc

	// Assembled kernel text.
	stubs *isa.Program
	// Entry points within the stubs.
	entryPC, exitPC, kcallPC, kfuncPC uint64

	// syscall dispatch context for the thunk continuation.
	inflight *syscallCtx

	// Registered kernel modules (supervisor code reachable via SYS_KMOD).
	nextModBase uint64

	// SpecCtrlOverride, when non-nil, pins IA32_SPEC_CTRL to a fixed
	// value for every process in both modes — how the §6 probe holds
	// IBRS on or off independent of mitigation policy.
	SpecCtrlOverride *uint64

	// OpenFileProvider, when set, supplies the backing for SysOpen
	// (args: file id and size hint). The VM workloads use it to mount a
	// real filesystem over the hypervisor's emulated disk.
	OpenFileProvider func(id, sizeHint uint64) ExternalFile

	// Statistics.
	Syscalls        uint64
	ContextSwitches uint64
	PageFaults      uint64
	FPUTraps        uint64
	// SyscallRestarts counts injected EINTR interruptions transparently
	// restarted by the dispatch path (faultinject.SyscallEINTR).
	SyscallRestarts uint64
}

// syscallCtx carries one in-progress syscall across the thunk boundary.
type syscallCtx struct {
	proc    *Proc
	nr      uint64
	args    [5]uint64
	retried bool
	// done marks that the handler already arranged the continuation
	// itself (exit, yield) and no generic completion must run.
	done bool
}

// New boots a kernel on the core with the given mitigation set: it maps
// kernel text/data, assembles the mitigation-dependent entry/exit stubs,
// installs LSTAR and trap hooks, and applies boot-time MSR state.
func New(c *cpu.Core, mit Mitigations) *Kernel {
	k := &Kernel{
		C:       c,
		Mit:     mit,
		procs:   make(map[int]*Proc),
		nextPID: 1,

		nextModBase: KernModBase,
	}
	k.loadStubs()
	c.LoadProgram(k.stubs)
	c.SetMSR(cpu.MSRLStar, k.entryPC)
	c.OnTrap = k.handleTrap
	c.RegisterThunk(k.dispatchThunkPC(), k.dispatchThunk)
	c.RegisterThunk(k.postThunkPC(), k.postThunk)

	// Boot-time SPEC_CTRL: eIBRS is enabled once and left on.
	if mit.SpectreV2 == V2EIBRS {
		c.SetMSR(cpu.MSRSpecCtrl, cpu.SpecCtrlIBRS)
	}
	return k
}

// Thunk addresses live inside the kernel text page but past the
// assembled stubs.
func (k *Kernel) dispatchThunkPC() uint64 { return KernTextBase + 0xe00 }
func (k *Kernel) postThunkPC() uint64     { return KernTextBase + 0xe10 }

// mapKernelInto installs the kernel's global mappings into a page table.
func (k *Kernel) mapKernelInto(pt *mem.PageTable) {
	pt.MapRange(KernTextBase, KernTextBase, kernTextPages, false, false, false, true)
	pt.MapRange(KernDataBase, KernDataBase, kernDataPages, true, false, true, true)
	pt.MapRange(KernModBase, KernModBase, 16, false, false, false, true)
}

// mapTrampolineInto installs the minimal PTI user-table kernel footprint:
// the stub text page and the trampoline data page.
func (k *Kernel) mapTrampolineInto(pt *mem.PageTable) {
	pt.MapRange(KernTextBase, KernTextBase, 1, false, false, false, true)
	pt.MapRange(KernDataBase, KernDataBase, 1, true, false, true, true)
}

// populateProcTables installs a new process's mappings: the kernel's
// global footprint plus the user code/data/stack windows into kpt, and
// the user windows plus the trampoline into upt (nil without PTI). Both
// the cold NewProcess path and the checkpoint template builder call
// this, so forked tables are the cold tables by construction.
func (k *Kernel) populateProcTables(kpt, upt *mem.PageTable, physBase uint64, codePages int, extra []Region) {
	k.mapKernelInto(kpt)

	// User mappings. Physical backing is identity-mapped from a
	// per-process physical window so processes do not alias.
	kpt.MapRange(UserCodeBase, physBase+UserCodeBase, codePages, false, true, false, false)
	kpt.MapRange(UserDataBase, physBase+UserDataBase, 512, true, true, true, false)
	stackBase := uint64(UserStackTop - UserStackPgs*mem.PageSize)
	kpt.MapRange(stackBase, physBase+stackBase, UserStackPgs, true, true, true, false)
	for _, r := range extra {
		kpt.MapRange(r.VA, physBase+r.VA, r.Pages, r.Writable, true, r.NX, false)
	}

	if upt != nil {
		upt.MapRange(UserCodeBase, physBase+UserCodeBase, codePages, false, true, false, false)
		upt.MapRange(UserDataBase, physBase+UserDataBase, 512, true, true, true, false)
		upt.MapRange(stackBase, physBase+stackBase, UserStackPgs, true, true, true, false)
		for _, r := range extra {
			upt.MapRange(r.VA, physBase+r.VA, r.Pages, r.Writable, true, r.NX, false)
		}
		k.mapTrampolineInto(upt)
	}
}

// Region describes an extra user mapping installed at process creation
// in addition to the standard code/data/stack windows. The physical
// backing is identity-mapped from the process's physical window, like
// every other user mapping.
type Region struct {
	VA       uint64
	Pages    int
	Writable bool
	NX       bool
}

// NewProcess creates a process running prog (based at UserCodeBase),
// with a stack and a data region mapped.
func (k *Kernel) NewProcess(name string, prog *isa.Program) *Proc {
	return k.NewProcessWithRegions(name, prog, nil)
}

// NewProcessWithRegions creates a process with extra user mappings
// beyond the standard windows (the JS engine maps its heap and IC site
// table this way). Folding the regions into process creation lets the
// checkpoint template cover them too: the region list is part of the
// template key, so a forked table carries the full address space.
func (k *Kernel) NewProcessWithRegions(name string, prog *isa.Program, extra []Region) *Proc {
	pid := k.nextPID
	k.nextPID++
	kpcid := uint16(pid * 2 % 4096)
	upcid := uint16((pid*2 + 1) % 4096)

	p := &Proc{
		PID:      pid,
		Name:     name,
		State:    ProcReady,
		fds:      make(map[int]fileLike),
		lazy:     make(map[uint64]lazyPage),
		nextFD:   3,
		mmapNext: UserMmapBase,
	}
	// Page tables. The mappings are a pure function of (PTI, codePages,
	// pid), so under checkpointed warmup they are forked from a frozen
	// template instead of being repopulated entry by entry; the cold
	// path below builds the identical tables in place.
	physBase := uint64(pid) << 32
	codePages := int(prog.SizeBytes()/mem.PageSize) + 1
	if img, ok := k.procTableImage(pid, codePages, extra); ok {
		p.KPT = k.C.PTs.NewTableFrom(img.kpt, kpcid)
		if k.Mit.PTI {
			p.UPT = k.C.PTs.NewTableFrom(img.upt, upcid)
		} else {
			p.UPT = p.KPT
		}
	} else {
		p.KPT = k.C.PTs.NewTable(kpcid)
		var upt *mem.PageTable
		if k.Mit.PTI {
			upt = k.C.PTs.NewTable(upcid)
		}
		k.populateProcTables(p.KPT, upt, physBase, codePages, extra)
		if upt != nil {
			p.UPT = upt
		} else {
			p.UPT = p.KPT
		}
	}

	// FPU save area in kernel data space.
	p.fpuSaveArea = KernDataBase + mem.PageSize + uint64(pid)*256

	p.Regs[isa.SP] = UserStackTop
	p.UserPC = prog.Base

	k.C.LoadProgram(prog)
	k.procs[pid] = p
	k.live++
	k.ready = append(k.ready, p)
	return p
}

// userPhys translates a user virtual address through the process's full
// table for kernel-side copies (the kernel always uses KPT).
func (k *Kernel) userPhys(p *Proc, va uint64, acc mem.Access) (uint64, error) {
	pa, _, fault := p.KPT.Translate(va, acc, true)
	if fault != mem.FaultNone {
		// Try demand mapping.
		if k.demandMap(p, va) {
			pa, _, fault = p.KPT.Translate(va, acc, true)
		}
		if fault != mem.FaultNone {
			return 0, fmt.Errorf("kernel: bad user address %#x (%v)", va, fault)
		}
	}
	return pa, nil
}

// copyToUser writes buf into the process's memory at va, charging a
// representative memcpy cost (~16 bytes/cycle).
func (k *Kernel) copyToUser(p *Proc, va uint64, buf []byte) error {
	for len(buf) > 0 {
		pa, err := k.userPhys(p, va, mem.AccessWrite)
		if err != nil {
			return err
		}
		n := mem.PageSize - (va & mem.PageMask)
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		k.C.Phys.WriteBytes(pa, buf[:n])
		buf = buf[n:]
		va += n
	}
	return nil
}

// copyFromUser reads len(buf) bytes from the process's memory at va.
func (k *Kernel) copyFromUser(p *Proc, va uint64, buf []byte) error {
	for len(buf) > 0 {
		pa, err := k.userPhys(p, va, mem.AccessRead)
		if err != nil {
			return err
		}
		n := mem.PageSize - (va & mem.PageMask)
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		k.C.Phys.ReadBytes(pa, buf[:n])
		buf = buf[n:]
		va += n
	}
	return nil
}

// copyCost returns the cycle cost charged for an n-byte kernel copy,
// plus the Spectre V1 masking cmov when enabled (≈ free, §4.6).
func (k *Kernel) copyCost(n int) uint64 {
	c := uint64(n)/16 + 4
	if k.Mit.SpectreV1 {
		c++ // array_index_nospec-style mask on the bounds check
	}
	return c
}

// RegisterKernelModule maps supervisor code (e.g. the §6 probe's kernel
// victim) and returns its program. Modules are reachable from user space
// via SYS_KMOD, which jumps to the module entry in kernel mode.
func (k *Kernel) RegisterKernelModule(build func(a *isa.Asm)) *isa.Program {
	a := isa.NewAsm()
	build(a)
	prog := a.MustAssemble(k.nextModBase)
	k.nextModBase += (prog.SizeBytes()/mem.PageSize + 1) * mem.PageSize
	k.C.LoadProgram(prog)
	return prog
}

// ExitStubPC returns the kernel-exit stub address; kernel modules jump
// here to return to user space through the full mitigation exit path.
func (k *Kernel) ExitStubPC() uint64 { return k.exitPC }

// Current returns the currently scheduled process.
func (k *Kernel) Current() *Proc { return k.cur }

// Proc returns the process with the given pid, or nil.
func (k *Kernel) Proc(pid int) *Proc { return k.procs[pid] }

// LiveProcs returns the number of non-exited processes.
func (k *Kernel) LiveProcs() int { return k.live }
