package kernel

import (
	"math/rand"
	"strings"
	"testing"

	"spectrebench/internal/isa"
	"spectrebench/internal/model"
)

// buildSyscallFuzz emits a program of n random syscalls with plausible
// (and sometimes deliberately bad) arguments, then exits. Blocking calls
// are avoided unless a partner exists, so the only acceptable outcomes
// are clean completion or a detected deadlock — never a crash.
func buildSyscallFuzz(r *rand.Rand, n int, withPartner bool) *isa.Program {
	a := isa.NewAsm()
	if withPartner {
		// A partner that yields a bounded number of times then exits.
		a.MovI(isa.R7, SysFork)
		a.Syscall()
		a.CmpI(isa.R0, 0)
		a.Jne("fz_main")
		a.MovI(isa.R9, 20)
		a.Label("fz_partner")
		a.MovI(isa.R7, SysYield)
		a.Syscall()
		a.SubI(isa.R9, 1)
		a.CmpI(isa.R9, 0)
		a.Jne("fz_partner")
		a.MovI(isa.R1, 0)
		a.MovI(isa.R7, SysExit)
		a.Syscall()
		a.Label("fz_main")
	}
	// Keep one known-good fd around.
	a.MovI(isa.R1, 1)
	a.MovI(isa.R2, 4096)
	a.MovI(isa.R7, SysOpen)
	a.Syscall()
	a.Mov(isa.R8, isa.R0)

	for i := 0; i < n; i++ {
		switch r.Intn(10) {
		case 0:
			a.MovI(isa.R7, SysGetPID)
			a.Syscall()
		case 1:
			a.Mov(isa.R1, isa.R8) // valid fd
			if r.Intn(4) == 0 {
				a.MovI(isa.R1, int64(r.Intn(64))) // maybe-bogus fd
			}
			a.MovI(isa.R2, UserDataBase+int64(r.Intn(8))*512)
			a.MovI(isa.R3, int64(r.Intn(4096)))
			a.MovI(isa.R7, SysRead)
			a.Syscall()
		case 2:
			a.Mov(isa.R1, isa.R8)
			a.MovI(isa.R2, UserDataBase+int64(r.Intn(8))*512)
			a.MovI(isa.R3, int64(r.Intn(2048)))
			a.MovI(isa.R7, SysWrite)
			a.Syscall()
		case 3:
			a.MovI(isa.R1, int64(r.Intn(16)))
			a.MovI(isa.R7, SysMmap)
			a.Syscall()
			// Touch the mapping if it succeeded (high bit set = error).
			a.Mov(isa.R10, isa.R0)
			a.MovI(isa.R11, 1)
			a.ShrI(isa.R10, 63)
			a.CmpI(isa.R10, 0)
			a.Jne("skip_touch_" + lbl(i))
			a.Mov(isa.R10, isa.R0)
			a.MovI(isa.R12, 7)
			a.Store(isa.R10, 0, isa.R12)
			a.Label("skip_touch_" + lbl(i))
		case 4:
			a.MovI(isa.R7, SysYield)
			a.Syscall()
		case 5:
			a.MovI(isa.R1, 8)
			a.MovI(isa.R2, 0) // non-blocking select
			a.MovI(isa.R7, SysSelect)
			a.Syscall()
		case 6:
			a.MovI(isa.R1, int64(r.Intn(200)))
			a.MovI(isa.R7, SysNanosleep)
			a.Syscall()
		case 7:
			a.MovI(isa.R1, 53) // speculation prctl
			a.MovI(isa.R2, int64(r.Intn(2)))
			a.MovI(isa.R7, SysPrctl)
			a.Syscall()
		case 8:
			a.MovI(isa.R7, SysGetTSC)
			a.Syscall()
		default:
			// A possibly-invalid syscall number — but never SysExit or
			// SysFork mid-stream (they change the control structure).
			nr := int64(r.Intn(40))
			if nr == SysExit || nr == SysFork {
				nr = SysGetPID
			}
			a.MovI(isa.R1, int64(r.Intn(999)))
			a.MovI(isa.R2, int64(r.Intn(999))) // garbage kmod targets get EINVAL
			a.MovI(isa.R7, nr)
			a.Syscall()
		}
	}
	a.MovI(isa.R1, 0)
	a.MovI(isa.R7, SysExit)
	a.Syscall()
	return a.MustAssemble(UserCodeBase)
}

func lbl(i int) string { return string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// TestSyscallFuzz drives random syscall streams on several CPUs. The
// kernel must never panic and must always either finish or detect a
// deadlock; after completion no process may be left running.
func TestSyscallFuzz(t *testing.T) {
	models := []*model.CPU{model.Broadwell(), model.CascadeLake(), model.Zen3()}
	trials := 25
	if testing.Short() {
		trials = 6
	}
	for seed := 0; seed < trials; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		m := models[seed%len(models)]
		_, k := boot(m, Defaults(m))
		prog := buildSyscallFuzz(r, 30, seed%2 == 0)
		k.NewProcess("fuzz", prog)
		err := k.RunProcessToCompletion(20_000_000)
		if err != nil && !strings.Contains(err.Error(), "deadlock") {
			t.Fatalf("seed %d on %s: %v", seed, m.Uarch, err)
		}
		if err == nil && k.LiveProcs() != 0 {
			t.Errorf("seed %d: %d processes still live", seed, k.LiveProcs())
		}
	}
}

// A couple of directed abuse cases the fuzzer space includes.
func TestSyscallAbuse(t *testing.T) {
	m := model.SkylakeClient()

	// Exit with outstanding blocked reader (the partner exits first and
	// the pipe read then sees EOF rather than deadlocking).
	_, k := boot(m, Defaults(m))
	a := isa.NewAsm()
	emitSyscall(a, SysPipe)
	emitSyscall(a, SysFork)
	a.CmpI(isa.R0, 0)
	a.Jeq("child")
	// Parent closes its write end, then reads: EOF (0 bytes).
	a.MovI(isa.R1, 4)
	emitSyscall(a, SysClose)
	a.MovI(isa.R1, 3)
	a.MovI(isa.R2, UserDataBase)
	a.MovI(isa.R3, 8)
	emitSyscall(a, SysRead)
	a.Mov(isa.R9, isa.R0)
	emitExit(a, 0)
	a.Label("child")
	// Child closes both ends immediately and exits.
	a.MovI(isa.R1, 3)
	emitSyscall(a, SysClose)
	a.MovI(isa.R1, 4)
	emitSyscall(a, SysClose)
	emitExit(a, 0)
	k.NewProcess("eof", a.MustAssemble(UserCodeBase))
	if err := k.RunProcessToCompletion(5_000_000); err != nil {
		t.Fatal(err)
	}
}
