package kernel

// fileLike is the kernel's descriptor abstraction. read/write return
// blocked=true when the caller must sleep; the object is responsible for
// waking waiters when state changes.
type fileLike interface {
	// read returns up to n bytes, or blocked=true.
	read(k *Kernel, n int) (data []byte, blocked bool)
	// write appends buf, returning bytes written or blocked=true.
	write(k *Kernel, buf []byte) (n int, blocked bool)
	// readReady reports whether a read would not block.
	readReady() bool
	// close releases the endpoint.
	close(k *Kernel)
	// dup returns the descriptor to install in a forked child.
	dup() fileLike
}

// pipeCapacity matches the Linux default (64 KiB).
const pipeCapacity = 64 << 10

// pipe is a byte queue connecting two pipeEnds.
type pipe struct {
	buf     []byte
	readers int
	writers int
	// waiters are processes blocked on this pipe (readers waiting for
	// data, writers waiting for space, selectors waiting for either).
	waiters []*Proc
}

func (pp *pipe) wakeAll(k *Kernel) {
	for _, p := range pp.waiters {
		k.wake(p)
	}
	pp.waiters = pp.waiters[:0]
}

func (pp *pipe) addWaiter(p *Proc) {
	for _, w := range pp.waiters {
		if w == p {
			return
		}
	}
	pp.waiters = append(pp.waiters, p)
}

// pipeEnd is one side of a pipe.
type pipeEnd struct {
	p       *pipe
	readEnd bool
}

func (e *pipeEnd) read(k *Kernel, n int) ([]byte, bool) {
	if !e.readEnd {
		return nil, false
	}
	pp := e.p
	if len(pp.buf) == 0 {
		if pp.writers == 0 && k != nil {
			return nil, false // EOF
		}
		pp.addWaiter(k.cur)
		return nil, true
	}
	if n > len(pp.buf) {
		n = len(pp.buf)
	}
	out := make([]byte, n)
	copy(out, pp.buf)
	pp.buf = pp.buf[n:]
	pp.wakeAll(k) // writers may proceed
	return out, false
}

func (e *pipeEnd) write(k *Kernel, buf []byte) (int, bool) {
	if e.readEnd {
		return 0, false
	}
	pp := e.p
	if len(pp.buf)+len(buf) > pipeCapacity {
		pp.addWaiter(k.cur)
		return 0, true
	}
	pp.buf = append(pp.buf, buf...)
	pp.wakeAll(k) // readers may proceed
	return len(buf), false
}

func (e *pipeEnd) readReady() bool {
	return e.readEnd && len(e.p.buf) > 0
}

func (e *pipeEnd) close(k *Kernel) {
	if e.readEnd {
		e.p.readers--
	} else {
		e.p.writers--
	}
	if k != nil {
		e.p.wakeAll(k)
	}
}

func (e *pipeEnd) dup() fileLike {
	if e.readEnd {
		e.p.readers++
	} else {
		e.p.writers++
	}
	return e
}

// ExternalFile is a pluggable file backing (e.g. a real filesystem over
// an emulated disk) installed through Kernel.OpenFileProvider. Offsets
// are managed by the kernel-side wrapper: reads advance sequentially,
// writes append.
type ExternalFile interface {
	ReadAt(off int64, buf []byte) (int, error)
	WriteAt(off int64, data []byte) (int, error)
	Close() error
}

// extFile adapts an ExternalFile to the kernel descriptor model.
type extFile struct {
	f    ExternalFile
	roff int64
	woff int64
}

func (e *extFile) read(_ *Kernel, n int) ([]byte, bool) {
	buf := make([]byte, n)
	got, err := e.f.ReadAt(e.roff, buf)
	if err != nil {
		return nil, false
	}
	e.roff += int64(got)
	return buf[:got], false
}

func (e *extFile) write(_ *Kernel, buf []byte) (int, bool) {
	n, err := e.f.WriteAt(e.woff, buf)
	if err != nil {
		return 0, false
	}
	e.woff += int64(n)
	return n, false
}

func (e *extFile) readReady() bool { return true }
func (e *extFile) close(*Kernel)   { _ = e.f.Close() }
func (e *extFile) dup() fileLike   { return e }

// memFile is a seekless in-memory file: reads start at an internal
// offset, writes append. It never blocks — the LEBench read/write
// microbenchmarks use it as their hot file.
type memFile struct {
	data []byte
	off  int
}

func (f *memFile) read(_ *Kernel, n int) ([]byte, bool) {
	if f.off >= len(f.data) {
		f.off = 0 // wrap: benchmarks re-read the same file repeatedly
	}
	end := f.off + n
	if end > len(f.data) {
		end = len(f.data)
	}
	out := make([]byte, end-f.off)
	copy(out, f.data[f.off:end])
	f.off = end
	return out, false
}

func (f *memFile) write(_ *Kernel, buf []byte) (int, bool) {
	f.data = append(f.data, buf...)
	if len(f.data) > 1<<24 {
		f.data = f.data[:0] // cap growth in long benchmark loops
	}
	return len(buf), false
}

func (f *memFile) readReady() bool { return true }
func (f *memFile) close(*Kernel)   {}
func (f *memFile) dup() fileLike   { return f }
