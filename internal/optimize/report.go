package optimize

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

func pct(p *float64) string {
	if p == nil {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", *p)
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// Render writes the human-readable optimizer report: one row per uarch
// with the cheapest secure configuration, its overhead over the
// mitigations=off baseline, the Defaults overhead, and the share of
// the default mitigation cost recovered. verbose adds per-uarch
// counters, the effective mitigation list, per-workload costs and
// evaluation errors.
func (r *Result) Render(w io.Writer, verbose bool) {
	fmt.Fprintf(w, "optimize: require=%s workloads=%s prune=%s combos/uarch=%d seed=%d\n",
		strings.Join(r.Require, ","), strings.Join(r.Workloads, ","),
		onOff(r.Prune), r.Combos, r.Seed)
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "uarch\tbest configuration\tcost\toverhead\tdefaults\trecovered")
	for i := range r.PerUarch {
		u := &r.PerUarch[i]
		if u.Best == nil {
			reason := "requirement unsatisfiable in lattice"
			if u.Counters.Secure > 0 {
				reason = "every secure evaluation errored"
			}
			fmt.Fprintf(tw, "%s\t(%s)\t-\t-\t%s\t-\n", u.Uarch, reason, pct(u.OverheadDefaultsPct))
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%s\t%s\t%s\n",
			u.Uarch, u.Best.Display, u.Best.Cost,
			pct(u.OverheadBestPct), pct(u.OverheadDefaultsPct), pct(u.RecoveredPct))
	}
	tw.Flush()
	if verbose {
		for i := range r.PerUarch {
			u := &r.PerUarch[i]
			c := u.Counters
			fmt.Fprintf(w, "%s: %d combos -> %d classes, %d secure; evaluated %d, pruned %d, errored %d\n",
				u.Uarch, c.Examined, c.Classes, c.Secure, c.Evaluated, c.Pruned, c.Errored)
			if u.Best != nil {
				fmt.Fprintf(w, "  mitigations: %s\n", strings.Join(u.Best.Mit.Enabled(), " "))
				for _, name := range r.Workloads {
					fmt.Fprintf(w, "  %s: %.2f cycles\n", name, u.Best.PerWorkload[name])
				}
			}
			for _, e := range u.Errors {
				fmt.Fprintf(w, "  error: %s\n", e)
			}
		}
	}
	t := r.Totals
	fmt.Fprintf(w, "search: %d combos -> %d classes (%d secure); evaluated %d, pruned %d, errored %d, rounds %d\n",
		t.Examined, t.Classes, t.Secure, t.Evaluated, t.Pruned, t.Errored, t.Rounds)
	touched := r.Engine.Simulated + r.Engine.SecondLevelHits
	line := fmt.Sprintf("engine: %d cells simulated, %d replayed from store; deduped sweep = %d cells",
		r.Engine.Simulated, r.Engine.SecondLevelHits, r.SweepCells)
	if touched > 0 && uint64(r.SweepCells) > touched {
		line += fmt.Sprintf(" (%.1fx fewer)", float64(r.SweepCells)/float64(touched))
	}
	fmt.Fprintln(w, line)
}
