// Package optimize finds the cheapest mitigation configuration that
// still blocks a required attack set — the "Beyond Over-Protection"
// experiment — as a search instead of a sweep.
//
// The boot-param × spectre_v2 × SSBD lattice has 21 504 combos per
// uarch, but three structural facts shrink the work the optimizer pays
// for:
//
//  1. Canonical-class folding (free). Every combo lowers through
//     kernel.Defaults + BootParams.Apply to an effective Mitigations
//     value; combos with equal effective sets are one equivalence class
//     and one simulation. This is the same fold the sweep's -dedup
//     path uses, keyed by kernel.CanonicalKey, so optimizer cells share
//     memo and store entries with gridbench sweeps.
//  2. Security is decided without simulating (free). The attacks
//     taxonomy predicate consults only (uarch, effective mitigations),
//     so every class is classified secure/insecure by pure host-side
//     computation.
//  3. Dominance pruning (the tentpole). Under the partial order
//     defined below, a ≤ b means a enables no costlier mitigation than
//     b in every dimension, and the simulator's cost model is monotone
//     along every compared dimension: each extra mitigation only adds
//     cycles. So if a secure class A satisfies A ≤ B for another
//     secure class B, then cost(A) ≤ cost(B) and B never needs to be
//     evaluated. The optimizer therefore evaluates only the *minimal
//     antichain* (frontier) of secure classes — typically a few dozen
//     out of hundreds per uarch — through engine.SubmitBatch with
//     store-backed memoized costs.
//
// Two dimensions need care:
//
//   - EagerFPU is NOT cost-monotone: eager saving charges 2×Xsave per
//     context switch while lazy switching charges an FP trap only on
//     actual FPU use, so either setting can be cheaper depending on the
//     workload. Classes are comparable only when EagerFPU is equal.
//   - SpectreV2 modes are mutually incomparable (retpoline vs IBRS
//     relative cost is workload-dependent); only "off ≤ any mode"
//     holds. Classes are comparable when the modes are equal or a's
//     mode is off.
//
// Equivalence with the exhaustive baseline is exact, including ties.
// Both searches apply the same dominance-consistent selection rule
// (see pickBest): a secure class strictly dominated by another
// evaluated-OK secure class is ineligible, and the survivors rank by
// (cost, weight, canonical key), where weight counts costly-direction
// dimensions and is strictly monotone under strict dominance. Under
// the fault-free cost model the rule coincides with a plain argmin
// (the dominator is never costlier, and wins cost ties on weight), so
// the brute-force winner is always a frontier element and pruning
// cannot change one output byte. Under fault injection two extra
// mechanisms keep the searches identical: injected faults perturb
// per-cell cycle counts, so the rule's dominance filter stops noise
// from crowning a strictly-over-mitigated class the pruned search
// provably never visits; and when an evaluation errors outright, the
// search runs expansion rounds — re-evaluating the minimal elements of
// the still-unevaluated classes not dominated by any successfully
// evaluated one — until the optimum is again provably covered.
package optimize

import (
	"fmt"
	"sort"
	"strings"

	"spectrebench/internal/attacks"
	"spectrebench/internal/engine"
	"spectrebench/internal/grid"
	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
)

// Leq reports a ≤ b in the dominance order: a enables no costlier
// mitigation than b in every comparable dimension. See the package
// comment for why EagerFPU must match and SpectreV2 modes other than
// off are incomparable.
func Leq(a, b kernel.Mitigations) bool {
	if a.EagerFPU != b.EagerFPU {
		return false
	}
	if a.SpectreV2 != b.SpectreV2 && a.SpectreV2 != kernel.V2Off {
		return false
	}
	pairs := [...][2]bool{
		{a.PTI, b.PTI},
		{a.PTEInversion, b.PTEInversion},
		{a.L1TFFlushOnVMEntry, b.L1TFFlushOnVMEntry},
		{a.SpectreV1, b.SpectreV1},
		{a.IBPB, b.IBPB},
		{a.RSBStuff, b.RSBStuff},
		{a.MDSClear, b.MDSClear},
		{a.SSBDSeccomp, b.SSBDSeccomp},
		{a.SSBDAlways, b.SSBDAlways},
		{a.NoSMT, b.NoSMT},
	}
	for _, p := range pairs {
		if p[0] && !p[1] {
			return false
		}
	}
	return true
}

// Less reports strict dominance: a ≤ b and a ≠ b.
func Less(a, b kernel.Mitigations) bool { return a != b && Leq(a, b) }

// Weight counts the costly-direction dimensions a mitigation set
// enables: the ten monotone bools plus one for any non-off SpectreV2
// mode. EagerFPU is excluded (not cost-monotone). Weight is strictly
// monotone under strict dominance — the property the tie-break
// equivalence proof rests on.
func Weight(m kernel.Mitigations) int {
	w := 0
	for _, b := range [...]bool{
		m.PTI, m.PTEInversion, m.L1TFFlushOnVMEntry, m.SpectreV1,
		m.IBPB, m.RSBStuff, m.MDSClear, m.SSBDSeccomp, m.SSBDAlways,
		m.NoSMT,
	} {
		if b {
			w++
		}
	}
	if m.SpectreV2 != kernel.V2Off {
		w++
	}
	return w
}

// Class is one equivalence class of the lattice on one uarch: every
// boot-param combo whose effective mitigation set equals Mit.
type Class struct {
	// Canon is the kernel.CanonicalKey of the effective set — the
	// engine/store identity (prefixed "canon|" in cell keys).
	Canon string `json:"canon"`
	// Display is the boot-param token string of the first combo that
	// lowers into this class, as a human-readable representative.
	Display string             `json:"display"`
	Mit     kernel.Mitigations `json:"-"`
	// Combos counts lattice combos folding into this class.
	Combos int  `json:"combos"`
	Weight int  `json:"weight"`
	Secure bool `json:"secure"`
	// Open lists the required attack IDs the class leaves unblocked
	// (empty when Secure).
	Open []string `json:"open,omitempty"`
}

// Evaluated is a class with its measured cost.
type Evaluated struct {
	Class
	// Cost is the objective: the sum of cycle costs across the selected
	// workloads.
	Cost float64 `json:"cost"`
	// PerWorkload breaks Cost down by workload name.
	PerWorkload map[string]float64 `json:"per_workload"`
}

// Better reports whether e is preferred over o under the total
// preference order (cost, weight, canonical key).
func (e *Evaluated) Better(o *Evaluated) bool {
	if o == nil {
		return true
	}
	if e.Cost != o.Cost {
		return e.Cost < o.Cost
	}
	if e.Weight != o.Weight {
		return e.Weight < o.Weight
	}
	return e.Canon < o.Canon
}

// Counters reports how much of the lattice the search touched.
type Counters struct {
	// Examined is the number of lattice combos folded (the full
	// per-uarch combo count × uarchs at full scale).
	Examined int `json:"examined"`
	// Classes is the number of distinct equivalence classes.
	Classes int `json:"classes"`
	// Secure is the number of classes blocking every required attack.
	Secure int `json:"secure"`
	// Evaluated is the number of secure classes whose cost was
	// measured; Pruned = Secure - Evaluated were skipped as dominated.
	Evaluated int `json:"evaluated"`
	Pruned    int `json:"pruned"`
	// Errored counts evaluations that failed (fault injection).
	Errored int `json:"errored"`
	// Rounds is the number of frontier/expansion batches submitted.
	Rounds int `json:"rounds"`
}

func (c *Counters) add(o Counters) {
	c.Examined += o.Examined
	c.Classes += o.Classes
	c.Secure += o.Secure
	c.Evaluated += o.Evaluated
	c.Pruned += o.Pruned
	c.Errored += o.Errored
	if o.Rounds > c.Rounds {
		c.Rounds = o.Rounds
	}
}

// UarchResult is the per-uarch outcome.
type UarchResult struct {
	Uarch string `json:"uarch"`
	// Best is the cheapest secure configuration, nil when the
	// requirement is unsatisfiable inside the lattice (or every secure
	// evaluation errored).
	Best *Evaluated `json:"best,omitempty"`
	// DefaultsCost / BaselineCost are the costs of kernel.Defaults
	// auto-selection and of mitigations=off, the endpoints the
	// recovered-overhead figure is computed against. Nil when the
	// reference evaluation errored.
	DefaultsCost *float64 `json:"defaults_cost,omitempty"`
	BaselineCost *float64 `json:"baseline_cost,omitempty"`
	// OverheadDefaultsPct / OverheadBestPct are the mitigation
	// overheads of Defaults and Best over the mitigations=off baseline.
	OverheadDefaultsPct *float64 `json:"overhead_defaults_pct,omitempty"`
	OverheadBestPct     *float64 `json:"overhead_best_pct,omitempty"`
	// RecoveredPct = 100·(defaults - best)/(defaults - baseline): the
	// share of the default configuration's mitigation overhead the
	// optimizer recovered while staying secure. Nil when undefined
	// (references errored, or defaults has no measurable overhead).
	RecoveredPct *float64 `json:"recovered_pct,omitempty"`
	Counters     Counters `json:"counters"`
	// Errors lists evaluation failures as "canon-key: error", sorted.
	Errors []string `json:"errors,omitempty"`
}

// Options configures a search.
type Options struct {
	// Require is the attack set to block (default: the default threat
	// model).
	Require []attacks.Attack
	// Workloads are the cost objectives (default: the grid default
	// workload). The objective is the sum of their cycle costs.
	Workloads []grid.WorkloadSpec
	// Uarchs restricts the search (default: model.All()).
	Uarchs []*model.CPU
	// Combos restricts the lattice to the first n combos per uarch
	// (default/0: the full grid.CombosPerUarch) — the reduced-lattice
	// hook the equivalence tests and CI ablation use.
	Combos int
	// Prune disables dominance pruning when false — the exhaustive
	// baseline the ablation compares against. NOTE: the zero value
	// means brute force; callers normally set Prune: true.
	Prune bool
	// Seed is stamped into cell keys (nonzero only under fault
	// injection), keeping fault-run cells distinct in memo and store.
	Seed uint64
}

// Result is the full search outcome.
type Result struct {
	Require   []string      `json:"require"`
	Workloads []string      `json:"workloads"`
	Prune     bool          `json:"prune"`
	Combos    int           `json:"combos_per_uarch"`
	Seed      uint64        `json:"seed,omitempty"`
	PerUarch  []UarchResult `json:"per_uarch"`
	Totals    Counters      `json:"totals"`
	// Engine is the engine counter delta attributed to this search:
	// Simulated cells actually executed, SecondLevelHits replayed from
	// the store.
	Engine engine.StatsDetail `json:"engine"`
	// SweepCells is what the exhaustive deduped sweep would have
	// simulated/replayed at the same lattice size: classes × workloads,
	// summed over uarchs. The headline speedup is SweepCells /
	// (Engine.Simulated + Engine.SecondLevelHits).
	SweepCells int `json:"sweep_cells"`
}

// ustate is the per-uarch search state.
type ustate struct {
	cpu     *model.CPU
	classes []*Class // all lattice classes, sorted by Canon
	byCanon map[string]*Class
	secure  []*Class // secure lattice classes, sorted by Canon
	// defaults/baseline are the reporting reference classes (always
	// evaluated; they may or may not appear in a reduced lattice).
	defaults, baseline *Class
	evalOK             map[string]*Evaluated
	evalErr            map[string]error
	counters           Counters
}

// buildState folds the lattice prefix for one uarch and classifies
// every class.
func buildState(m *model.CPU, combos int, require []attacks.Attack) *ustate {
	st := &ustate{
		cpu:     m,
		byCanon: make(map[string]*Class),
		evalOK:  make(map[string]*Evaluated),
		evalErr: make(map[string]error),
	}
	def := kernel.Defaults(m)
	for ci := 0; ci < combos; ci++ {
		bp, display := grid.ComboAt(ci)
		mit := bp.Apply(m, def)
		ck := mit.CanonicalKey()
		if c, ok := st.byCanon[ck]; ok {
			c.Combos++
			continue
		}
		c := &Class{Canon: ck, Display: display, Mit: mit, Combos: 1, Weight: Weight(mit)}
		c.Secure, c.Open = attacks.Secure(m, mit, require)
		st.byCanon[ck] = c
		st.classes = append(st.classes, c)
	}
	sort.Slice(st.classes, func(i, j int) bool { return st.classes[i].Canon < st.classes[j].Canon })
	for _, c := range st.classes {
		if c.Secure {
			st.secure = append(st.secure, c)
		}
	}
	st.defaults = st.ensureClass(def, "defaults", require)
	st.baseline = st.ensureClass(
		kernel.BootParams{MitigationsOff: true}.Apply(m, def), "mitigations=off", require)
	st.counters = Counters{Examined: combos, Classes: len(st.classes), Secure: len(st.secure)}
	return st
}

// ensureClass returns the lattice class for mit, or a detached
// reference class when the reduced lattice does not contain it.
func (st *ustate) ensureClass(mit kernel.Mitigations, display string, require []attacks.Attack) *Class {
	ck := mit.CanonicalKey()
	if c, ok := st.byCanon[ck]; ok {
		return c
	}
	c := &Class{Canon: ck, Display: display, Mit: mit, Weight: Weight(mit)}
	c.Secure, c.Open = attacks.Secure(st.cpu, mit, require)
	return c
}

// candidates returns the classes to evaluate this round: the minimal
// elements (under dominance) of the secure classes that are not yet
// evaluated and not dominated by an already-OK evaluation. With
// pruning off it returns every unevaluated secure class at once.
func (st *ustate) candidates(prune bool) []*Class {
	var live []*Class
	for _, c := range st.secure {
		if _, ok := st.evalOK[c.Canon]; ok {
			continue
		}
		if _, ok := st.evalErr[c.Canon]; ok {
			continue
		}
		if !prune {
			live = append(live, c)
			continue
		}
		covered := false
		for _, e := range st.evalOK {
			if e.Secure && Less(e.Mit, c.Mit) {
				covered = true
				break
			}
		}
		if !covered {
			live = append(live, c)
		}
	}
	if !prune {
		return live
	}
	var frontier []*Class
	for _, c := range live {
		minimal := true
		for _, o := range live {
			if o != c && Less(o.Mit, c.Mit) {
				minimal = false
				break
			}
		}
		if minimal {
			frontier = append(frontier, c)
		}
	}
	return frontier
}

// evalUnit is one (uarch, class) evaluation across all workloads.
type evalUnit struct {
	st    *ustate
	class *Class
	tasks []*engine.Task
}

// Search runs the optimizer on the given engine. The caller owns fault
// activation: either the global faultinject.Activate (CLI) or an
// entered simscope carrying an activation snapshot (server), exactly
// as with engine.Submit-based experiments.
func Search(eng *engine.Engine, opts Options) (*Result, error) {
	require := opts.Require
	if len(require) == 0 {
		require = attacks.DefaultModel()
	}
	workloads := opts.Workloads
	if len(workloads) == 0 {
		workloads = []grid.WorkloadSpec{grid.DefaultWorkload()}
	}
	uarchs := opts.Uarchs
	if len(uarchs) == 0 {
		uarchs = model.All()
	}
	combos := opts.Combos
	if combos <= 0 || combos > grid.CombosPerUarch {
		combos = grid.CombosPerUarch
	}

	sd0 := eng.StatsDetail()
	states := make([]*ustate, len(uarchs))
	for i, m := range uarchs {
		states[i] = buildState(m, combos, require)
	}

	// Evaluation rounds, all uarchs in lockstep so each round is one
	// SubmitBatch. Round 1 additionally evaluates the defaults and
	// baseline reference classes. Rounds after the first only happen
	// when an evaluation errored under fault injection (expansion).
	rounds := 0
	for {
		var units []*evalUnit
		for _, st := range states {
			cands := st.candidates(opts.Prune)
			if rounds == 0 {
				cands = appendRefs(cands, st)
			}
			for _, c := range cands {
				units = append(units, &evalUnit{st: st, class: c})
			}
		}
		if len(units) == 0 {
			break
		}
		rounds++
		var batch []engine.BatchCell
		for _, u := range units {
			mit, cpu := u.class.Mit, u.st.cpu
			for _, w := range workloads {
				run := w.Run
				batch = append(batch, engine.BatchCell{
					Key: engine.Key{
						Workload: w.Name,
						Uarch:    cpu.Uarch,
						Config:   "canon|" + u.class.Canon,
						Seed:     opts.Seed,
					},
					Fn: func() (any, error) { return run(cpu, mit) },
				})
			}
		}
		tasks := eng.SubmitBatch(batch)
		for i, u := range units {
			u.tasks = tasks[i*len(workloads) : (i+1)*len(workloads)]
		}
		for _, u := range units {
			ev := &Evaluated{Class: *u.class, PerWorkload: make(map[string]float64, len(workloads))}
			var err error
			for wi, t := range u.tasks {
				v, werr := t.Wait()
				if werr != nil {
					err = fmt.Errorf("%s: %w", workloads[wi].Name, werr)
					break
				}
				cyc := v.(float64)
				ev.PerWorkload[workloads[wi].Name] = cyc
				ev.Cost += cyc
			}
			st := u.st
			if _, dup := st.evalOK[u.class.Canon]; dup {
				continue // reference class coincided with a frontier class
			}
			if _, dup := st.evalErr[u.class.Canon]; dup {
				continue
			}
			if u.class.Secure {
				st.counters.Evaluated++
			}
			if err != nil {
				st.evalErr[u.class.Canon] = err
				st.counters.Errored++
			} else {
				st.evalOK[u.class.Canon] = ev
			}
		}
	}

	res := &Result{
		Require: attacks.IDs(require),
		Prune:   opts.Prune,
		Combos:  combos,
		Seed:    opts.Seed,
		Engine:  eng.StatsDetail().Sub(sd0),
	}
	for _, w := range workloads {
		res.Workloads = append(res.Workloads, w.Name)
	}
	for _, st := range states {
		st.counters.Pruned = st.counters.Secure - st.counters.Evaluated
		st.counters.Rounds = rounds
		ur := UarchResult{Uarch: st.cpu.Uarch, Counters: st.counters}
		best := st.pickBest()
		ur.Best = best
		if d, ok := st.evalOK[st.defaults.Canon]; ok {
			ur.DefaultsCost = f64p(d.Cost)
			if b, ok := st.evalOK[st.baseline.Canon]; ok {
				ur.BaselineCost = f64p(b.Cost)
				if b.Cost > 0 {
					ur.OverheadDefaultsPct = f64p(100 * (d.Cost - b.Cost) / b.Cost)
					if best != nil {
						ur.OverheadBestPct = f64p(100 * (best.Cost - b.Cost) / b.Cost)
					}
				}
				if best != nil && d.Cost != b.Cost {
					ur.RecoveredPct = f64p(100 * (d.Cost - best.Cost) / (d.Cost - b.Cost))
				}
			}
		}
		for ck, err := range st.evalErr {
			ur.Errors = append(ur.Errors, ck+": "+err.Error())
		}
		sort.Strings(ur.Errors)
		res.PerUarch = append(res.PerUarch, ur)
		res.Totals.add(st.counters)
		res.SweepCells += st.counters.Classes * len(workloads)
	}
	return res, nil
}

// pickBest applies the dominance-consistent selection rule: among the
// successfully evaluated secure classes, only those not strictly
// dominated by another evaluated-OK secure class are eligible, and the
// eligible class with the best (cost, weight, canonical key) wins.
//
// Filtering dominated classes out of the *selection* (not just the
// evaluation schedule) is what keeps pruned and brute-force results
// byte-identical even under fault injection: injected faults perturb
// per-cell cycle counts, so a strictly-more-mitigated class can
// measure marginally cheaper than its subset — and the brute sweep,
// which evaluates it, must not crown a winner the pruned search
// provably never needs to visit. Semantically the rule says noise can
// never talk the optimizer into enabling extra mitigations; under the
// fault-free monotone cost model it coincides with a plain argmin.
func (st *ustate) pickBest() *Evaluated {
	var best *Evaluated
	for _, c := range st.secure {
		e, ok := st.evalOK[c.Canon]
		if !ok {
			continue
		}
		dominated := false
		for _, o := range st.secure {
			if oe, ok := st.evalOK[o.Canon]; ok && Less(oe.Mit, e.Mit) {
				dominated = true
				break
			}
		}
		if !dominated && e.Better(best) {
			best = e
		}
	}
	return best
}

// appendRefs adds the defaults/baseline reference classes to a
// candidate list unless already present.
func appendRefs(cands []*Class, st *ustate) []*Class {
	for _, ref := range []*Class{st.defaults, st.baseline} {
		dup := false
		for _, c := range cands {
			if c.Canon == ref.Canon {
				dup = true
				break
			}
		}
		if !dup {
			cands = append(cands, ref)
		}
	}
	return cands
}

func f64p(v float64) *float64 { return &v }

// SelectUarchs resolves uarch names (exact model.CPU Uarch strings)
// into models; an empty list means every model. Shared by the CLI flag
// and the HTTP request field.
func SelectUarchs(names []string) ([]*model.CPU, error) {
	if len(names) == 0 {
		return nil, nil
	}
	out := make([]*model.CPU, 0, len(names))
	for _, n := range names {
		m := model.ByName(n)
		if m == nil {
			return nil, fmt.Errorf("unknown uarch %q (known: %s)", n, strings.Join(model.Names(), ", "))
		}
		out = append(out, m)
	}
	return out, nil
}
