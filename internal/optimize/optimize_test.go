package optimize

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"spectrebench/internal/attacks"
	"spectrebench/internal/engine"
	"spectrebench/internal/faultinject"
	"spectrebench/internal/grid"
	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
)

// reducedUarchs is the equivalence-matrix pair: one Intel part with the
// full Table-1 mitigation load and one AMD part with a different
// support profile.
func reducedUarchs(t *testing.T) []*model.CPU {
	t.Helper()
	var intel, amd *model.CPU
	for _, m := range model.All() {
		switch m.Uarch {
		case "Skylake Client":
			intel = m
		case "Zen 2":
			amd = m
		}
	}
	if intel == nil || amd == nil {
		t.Fatal("expected Skylake Client and Zen 2 in model.All()")
	}
	return []*model.CPU{intel, amd}
}

// reducedCombos covers every spectre_v2 × SSBD value and the first
// handful of flag patterns — a few hundred combos, minutes of lattice,
// milliseconds of search.
const reducedCombos = 336 // 16 flag patterns × 7 v2 values × 3 ssbd modes

func runSearch(t *testing.T, prune bool, seed uint64, jobs int) *Result {
	t.Helper()
	eng := engine.New(jobs)
	defer eng.Close()
	res, err := Search(eng, Options{
		Workloads: []grid.WorkloadSpec{grid.DefaultWorkload()},
		Uarchs:    reducedUarchs(t),
		Combos:    reducedCombos,
		Prune:     prune,
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertSameOptima asserts the pruned and brute-force searches agree
// byte-for-byte on everything the report prints: best class, costs,
// references, recovered overhead.
func assertSameOptima(t *testing.T, pruned, brute *Result) {
	t.Helper()
	if len(pruned.PerUarch) != len(brute.PerUarch) {
		t.Fatalf("uarch count mismatch: %d vs %d", len(pruned.PerUarch), len(brute.PerUarch))
	}
	for i := range pruned.PerUarch {
		p, b := pruned.PerUarch[i], brute.PerUarch[i]
		if p.Uarch != b.Uarch {
			t.Fatalf("uarch order mismatch: %s vs %s", p.Uarch, b.Uarch)
		}
		if !reflect.DeepEqual(p.Best, b.Best) {
			pj, _ := json.Marshal(p.Best)
			bj, _ := json.Marshal(b.Best)
			t.Errorf("%s: best mismatch:\n pruned: %s\n brute:  %s", p.Uarch, pj, bj)
		}
		for name, pv := range map[string]*float64{
			"defaults":  p.DefaultsCost,
			"baseline":  p.BaselineCost,
			"recovered": p.RecoveredPct,
		} {
			bv := map[string]*float64{
				"defaults":  b.DefaultsCost,
				"baseline":  b.BaselineCost,
				"recovered": b.RecoveredPct,
			}[name]
			if (pv == nil) != (bv == nil) || (pv != nil && *pv != *bv) {
				t.Errorf("%s: %s cost mismatch: %v vs %v", p.Uarch, name, pv, bv)
			}
		}
	}
}

// TestPrunedMatchesBruteForce is the exhaustive-equivalence gate: on
// the reduced lattice the dominance-pruned search must return
// byte-identical optima and costs to the brute-force sweep of every
// secure class, while evaluating strictly fewer classes.
func TestPrunedMatchesBruteForce(t *testing.T) {
	pruned := runSearch(t, true, 0, 4)
	brute := runSearch(t, false, 0, 4)
	assertSameOptima(t, pruned, brute)
	if pruned.Totals.Evaluated >= brute.Totals.Evaluated {
		t.Errorf("pruning evaluated %d classes, brute force %d — no pruning happened",
			pruned.Totals.Evaluated, brute.Totals.Evaluated)
	}
	if pruned.Totals.Pruned == 0 {
		t.Error("pruned counter is zero")
	}
	for _, u := range pruned.PerUarch {
		if u.Best == nil {
			t.Errorf("%s: no secure optimum found on the reduced lattice", u.Uarch)
			continue
		}
		if u.RecoveredPct == nil {
			t.Errorf("%s: recovered overhead missing", u.Uarch)
		}
	}
}

// TestPrunedMatchesBruteForceUnderFaults repeats the equivalence gate
// with fault injection active: errored frontier evaluations must
// trigger expansion rounds until the surviving optimum matches brute
// force exactly.
func TestPrunedMatchesBruteForceUnderFaults(t *testing.T) {
	const seed = 20260808
	run := func(prune bool) *Result {
		faultinject.Activate(faultinject.Config{Seed: seed})
		defer faultinject.Deactivate()
		return runSearch(t, prune, seed, 4)
	}
	pruned := run(true)
	brute := run(false)
	assertSameOptima(t, pruned, brute)
	if pruned.Totals.Errored > 0 && pruned.Totals.Rounds < 2 {
		t.Errorf("evaluations errored but no expansion round ran (rounds=%d)", pruned.Totals.Rounds)
	}
}

// TestErrorExpansionMatchesBruteForce forces evaluation errors with a
// deterministic flaky workload (fault-point rates alone rarely push a
// getpid cell over an error threshold) and asserts the pruned search's
// expansion rounds recover the exact brute-force optimum.
func TestErrorExpansionMatchesBruteForce(t *testing.T) {
	flaky := grid.DefaultWorkload()
	inner := flaky.Run
	flaky.Run = func(m *model.CPU, mit kernel.Mitigations) (float64, error) {
		if fnv32(mit.CanonicalKey())%3 == 0 {
			return 0, fmt.Errorf("injected failure for class %s", mit.CanonicalKey())
		}
		return inner(m, mit)
	}
	run := func(prune bool) *Result {
		eng := engine.New(4)
		defer eng.Close()
		res, err := Search(eng, Options{
			Workloads: []grid.WorkloadSpec{flaky},
			Uarchs:    reducedUarchs(t),
			Combos:    reducedCombos,
			Prune:     prune,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	pruned := run(true)
	brute := run(false)
	assertSameOptima(t, pruned, brute)
	if brute.Totals.Errored == 0 {
		t.Fatal("flaky predicate hit no classes; test is vacuous")
	}
	if pruned.Totals.Errored == 0 {
		t.Fatal("no frontier evaluation errored; expansion path untested")
	}
	if pruned.Totals.Rounds < 2 {
		t.Errorf("frontier evaluations errored but rounds=%d", pruned.Totals.Rounds)
	}
	for _, u := range pruned.PerUarch {
		if u.Best == nil {
			t.Errorf("%s: expansion failed to recover an optimum", u.Uarch)
		}
	}
}

func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// TestSearchDeterministicAcrossJobs asserts the whole result — optima,
// costs, counters — is independent of worker count.
func TestSearchDeterministicAcrossJobs(t *testing.T) {
	a := runSearch(t, true, 0, 1)
	b := runSearch(t, true, 0, 8)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("results differ between -jobs 1 and -jobs 8:\n%s\n%s", aj, bj)
	}
}

// TestFullLatticeFrontierIsSmall checks the structural 10x claim
// without simulating: on the full 21504-combo lattice, for every
// uarch, the secure frontier the pruned search would evaluate is at
// least 10x smaller than the class count a full deduped sweep
// simulates.
func TestFullLatticeFrontierIsSmall(t *testing.T) {
	for _, m := range model.All() {
		st := buildState(m, grid.CombosPerUarch, attacks.DefaultModel())
		frontier := st.candidates(true)
		evals := len(appendRefs(frontier, st))
		if evals*10 > len(st.classes) {
			t.Errorf("%s: frontier %d (+refs) vs %d classes — less than 10x",
				m.Uarch, evals, len(st.classes))
		}
		if len(frontier) == 0 {
			t.Errorf("%s: empty frontier", m.Uarch)
		}
	}
}

// TestDominanceOrder pins the partial order's contracts.
func TestDominanceOrder(t *testing.T) {
	off := kernel.Mitigations{EagerFPU: true}
	var m *model.CPU
	for _, c := range model.All() {
		if c.Uarch == "Skylake Client" {
			m = c
		}
	}
	full := kernel.Defaults(m)
	if !Leq(off, full) || Leq(full, off) {
		t.Fatal("mitigations=off must strictly dominate Defaults")
	}
	if !Leq(full, full) {
		t.Fatal("Leq must be reflexive")
	}
	lazy := full
	lazy.EagerFPU = false
	if Leq(lazy, full) || Leq(full, lazy) {
		t.Fatal("EagerFPU settings must be incomparable")
	}
	ibrs, ret := full, full
	ibrs.SpectreV2 = kernel.V2IBRS
	ret.SpectreV2 = kernel.V2RetpolineGeneric
	if Leq(ibrs, ret) || Leq(ret, ibrs) {
		t.Fatal("distinct non-off SpectreV2 modes must be incomparable")
	}
	// Weight strict monotonicity over a random-ish walk of the space.
	base := kernel.Mitigations{EagerFPU: true, SpectreV1: true}
	step := base
	step.PTI = true
	if !Less(base, step) || Weight(base) >= Weight(step) {
		t.Fatal("weight must strictly increase along strict dominance")
	}
}

// TestSearchSharedEngineReplays asserts a second search on the same
// engine re-derives every cost from the memo (zero new simulations) —
// the property that makes optimizer runs free-riders on sweep stores.
func TestSearchSharedEngineReplays(t *testing.T) {
	eng := engine.New(2)
	defer eng.Close()
	opts := Options{
		Workloads: []grid.WorkloadSpec{grid.DefaultWorkload()},
		Uarchs:    reducedUarchs(t),
		Combos:    reducedCombos,
		Prune:     true,
	}
	first, err := Search(eng, opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Search(eng, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Engine.Simulated == 0 {
		t.Fatal("first search simulated nothing")
	}
	if second.Engine.Simulated != 0 {
		t.Fatalf("second search simulated %d cells; want 0 (memo hits)", second.Engine.Simulated)
	}
	if second.PerUarch[0].Best.Cost != first.PerUarch[0].Best.Cost {
		t.Fatal("memo replay changed the optimum cost")
	}
}
