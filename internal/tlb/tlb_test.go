package tlb

import (
	"testing"
	"testing/quick"

	"spectrebench/internal/mem"
)

func pte(pa uint64, global bool) mem.PTE {
	return mem.PTE{Phys: pa, Present: true, Writable: true, User: true, Global: global}
}

func TestLookupInsert(t *testing.T) {
	tl := New(16, 4)
	if _, ok := tl.Lookup(5, 1); ok {
		t.Fatal("empty TLB hit")
	}
	tl.Insert(5, 1, pte(0x5000, false))
	got, ok := tl.Lookup(5, 1)
	if !ok || got.Phys != 0x5000 {
		t.Fatalf("lookup = %+v / %v", got, ok)
	}
	// Different PCID misses.
	if _, ok := tl.Lookup(5, 2); ok {
		t.Error("cross-PCID hit on non-global entry")
	}
}

func TestGlobalMatchesAnyPCID(t *testing.T) {
	tl := New(16, 4)
	tl.Insert(9, 1, pte(0x9000, true))
	for _, pcid := range []uint16{0, 1, 7, 4095} {
		if _, ok := tl.Lookup(9, pcid); !ok {
			t.Errorf("global entry missed under pcid %d", pcid)
		}
	}
}

func TestFlushPCID(t *testing.T) {
	tl := New(16, 4)
	tl.Insert(1, 1, pte(0x1000, false))
	tl.Insert(2, 2, pte(0x2000, false))
	tl.Insert(3, 1, pte(0x3000, true)) // global, tagged 1
	tl.FlushPCID(1)
	if _, ok := tl.Lookup(1, 1); ok {
		t.Error("pcid-1 entry survived FlushPCID(1)")
	}
	if _, ok := tl.Lookup(2, 2); !ok {
		t.Error("pcid-2 entry lost")
	}
	if _, ok := tl.Lookup(3, 1); !ok {
		t.Error("global entry must survive FlushPCID")
	}
}

func TestFlushNonGlobal(t *testing.T) {
	tl := New(16, 4)
	tl.Insert(1, 1, pte(0x1000, false))
	tl.Insert(2, 1, pte(0x2000, true))
	tl.FlushNonGlobal()
	if _, ok := tl.Lookup(1, 1); ok {
		t.Error("non-global survived")
	}
	if _, ok := tl.Lookup(2, 1); !ok {
		t.Error("global flushed")
	}
	tl.FlushAll()
	if _, ok := tl.Lookup(2, 1); ok {
		t.Error("global survived FlushAll")
	}
}

func TestFlushVPN(t *testing.T) {
	tl := New(16, 4)
	tl.Insert(7, 1, pte(0x7000, false))
	tl.Insert(7, 2, pte(0x7000, false))
	tl.Insert(8, 1, pte(0x8000, false))
	tl.FlushVPN(7)
	if _, ok := tl.Lookup(7, 1); ok {
		t.Error("vpn 7 pcid 1 survived")
	}
	if _, ok := tl.Lookup(7, 2); ok {
		t.Error("vpn 7 pcid 2 survived")
	}
	if _, ok := tl.Lookup(8, 1); !ok {
		t.Error("vpn 8 lost")
	}
}

func TestEvictionLRU(t *testing.T) {
	tl := New(1, 2) // one set, two ways
	tl.Insert(10, 1, pte(0xa000, false))
	tl.Insert(20, 1, pte(0xb000, false))
	tl.Lookup(10, 1) // 10 becomes MRU
	tl.Insert(30, 1, pte(0xc000, false))
	if _, ok := tl.Lookup(10, 1); !ok {
		t.Error("MRU entry evicted")
	}
	if _, ok := tl.Lookup(20, 1); ok {
		t.Error("LRU entry survived")
	}
}

func TestInsertUpdatesExisting(t *testing.T) {
	tl := New(4, 2)
	tl.Insert(4, 1, pte(0x4000, false))
	tl.Insert(4, 1, pte(0x6000, false))
	got, ok := tl.Lookup(4, 1)
	if !ok || got.Phys != 0x6000 {
		t.Fatalf("update lost: %+v %v", got, ok)
	}
	if tl.Valid() != 1 {
		t.Errorf("valid = %d, want 1 (update must not duplicate)", tl.Valid())
	}
}

func TestStatsCount(t *testing.T) {
	tl := New(8, 2)
	tl.Lookup(1, 1)
	tl.Insert(1, 1, pte(0x1000, false))
	tl.Lookup(1, 1)
	if tl.Misses != 1 || tl.Hits != 1 {
		t.Errorf("stats = %d hits / %d misses", tl.Hits, tl.Misses)
	}
	tl.ResetStats()
	if tl.Hits != 0 || tl.Misses != 0 {
		t.Error("ResetStats failed")
	}
}

// Property: insert then lookup under the same PCID always hits with the
// inserted translation.
func TestInsertLookupProperty(t *testing.T) {
	tl := New(64, 8)
	f := func(vpn uint64, pcid uint16, pa uint64) bool {
		vpn &= 0xfffff
		p := pte(pa&^uint64(mem.PageMask), false)
		tl.Insert(vpn, pcid, p)
		got, ok := tl.Lookup(vpn, pcid)
		return ok && got.Phys == p.Phys
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSetRefMatchesLookup drives a SetRef and the plain Lookup path over
// the same access sequence on two identically-populated TLBs and checks
// the results, counters, and subsequent eviction behaviour agree — the
// decoded-block fast path depends on SetRef being observationally
// identical to Lookup.
func TestSetRefMatchesLookup(t *testing.T) {
	mk := func() *TLB {
		tl := New(4, 2)
		tl.Insert(8, 1, pte(0x8000, false)) // set 0
		tl.Insert(12, 1, pte(0xc000, true)) // set 0, global
		return tl
	}
	a, b := mk(), mk()
	ref := a.SetFor(8)
	seq := []struct {
		vpn  uint64
		pcid uint16
	}{{8, 1}, {12, 9}, {8, 2}, {16, 1}, {8, 1}}
	for i, s := range seq {
		gotA, okA := ref.Lookup(s.vpn, s.pcid)
		gotB, okB := b.Lookup(s.vpn, s.pcid)
		if okA != okB || gotA != gotB {
			t.Fatalf("access %d (%d,%d): SetRef (%+v,%v) vs Lookup (%+v,%v)",
				i, s.vpn, s.pcid, gotA, okA, gotB, okB)
		}
	}
	if a.Hits != b.Hits || a.Misses != b.Misses {
		t.Fatalf("counters diverged: SetRef %d/%d vs Lookup %d/%d", a.Hits, a.Misses, b.Hits, b.Misses)
	}
	// The LRU clocks must have advanced identically: insert a third entry
	// into the full set and check both TLBs evict the same victim.
	a.Insert(16, 1, pte(0x10000, false))
	b.Insert(16, 1, pte(0x10000, false))
	for _, vpn := range []uint64{8, 12, 16} {
		_, okA := a.Lookup(vpn, 1)
		_, okB := b.Lookup(vpn, 1)
		if okA != okB {
			t.Fatalf("post-eviction vpn %d: SetRef-side %v vs Lookup-side %v", vpn, okA, okB)
		}
	}
}

// TestSetRefValidAcrossFlush checks the documented pinning contract: a
// SetRef taken before a full flush still works afterwards (entries are
// invalidated in place, never reallocated).
func TestSetRefValidAcrossFlush(t *testing.T) {
	tl := New(4, 2)
	tl.Insert(8, 1, pte(0x8000, false))
	ref := tl.SetFor(8)
	if _, ok := ref.Lookup(8, 1); !ok {
		t.Fatal("pre-flush lookup missed")
	}
	tl.FlushAll()
	if _, ok := ref.Lookup(8, 1); ok {
		t.Fatal("SetRef saw a stale entry after FlushAll")
	}
	tl.Insert(8, 1, pte(0x8000, false))
	if _, ok := ref.Lookup(8, 1); !ok {
		t.Fatal("SetRef missed an entry inserted after FlushAll")
	}
}
