// Package tlb models a set-associative translation lookaside buffer with
// PCID (process-context identifier) tags and global pages.
//
// PCIDs are what make kernel page-table isolation affordable on Broadwell
// and Skylake (§5.1 of the paper): without them every CR3 write flushes
// the TLB; with them the user and kernel page tables coexist under
// different tags and the switch costs only the CR3 write itself.
package tlb

import "spectrebench/internal/mem"

// Entry is a cached translation.
type Entry struct {
	valid  bool
	vpn    uint64
	pcid   uint16
	global bool
	pte    mem.PTE
	used   uint64
}

// TLB is a set-associative translation cache.
type TLB struct {
	sets  int
	ways  int
	mask  uint64 // sets-1 when sets is a power of two, else 0 with pow2 false
	pow2  bool
	lines []Entry
	clock uint64

	Hits, Misses, Flushes uint64
}

// New returns a TLB with the given geometry.
func New(sets, ways int) *TLB {
	t := &TLB{sets: sets, ways: ways, lines: make([]Entry, sets*ways)}
	if sets > 0 && sets&(sets-1) == 0 {
		t.mask = uint64(sets - 1)
		t.pow2 = true
	}
	return t
}

func (t *TLB) set(vpn uint64) []Entry {
	var idx int
	if t.pow2 {
		idx = int(vpn & t.mask)
	} else {
		idx = int(vpn % uint64(t.sets))
	}
	return t.lines[idx*t.ways : (idx+1)*t.ways]
}

// SetRef pins the set that holds translations for one VPN. The CPU
// core's decoded-block fetch path resolves the set once per basic block
// (the block never crosses a page, so the set index is fixed) and then
// performs per-instruction lookups against the pinned slice without
// recomputing the index. The backing array is allocated once in New and
// flush operations invalidate entries in place, so a SetRef stays valid
// across flushes, inserts and evictions for the lifetime of the TLB.
type SetRef struct {
	t   *TLB
	set []Entry
}

// SetFor returns a SetRef for vpn's set.
func (t *TLB) SetFor(vpn uint64) SetRef {
	return SetRef{t: t, set: t.set(vpn)}
}

// Lookup is exactly TLB.Lookup restricted to the pinned set: same scan
// order, same LRU-clock and hit/miss bookkeeping, so interleaving SetRef
// and TLB lookups is indistinguishable from using TLB.Lookup alone.
func (r SetRef) Lookup(vpn uint64, pcid uint16) (mem.PTE, bool) {
	for i := range r.set {
		e := &r.set[i]
		if e.valid && e.vpn == vpn && (e.global || e.pcid == pcid) {
			r.t.clock++
			e.used = r.t.clock
			r.t.Hits++
			return e.pte, true
		}
	}
	r.t.Misses++
	return mem.PTE{}, false
}

// Lookup returns the cached PTE for vpn under pcid. Global entries match
// any PCID.
func (t *TLB) Lookup(vpn uint64, pcid uint16) (mem.PTE, bool) {
	set := t.set(vpn)
	for i := range set {
		e := &set[i]
		if e.valid && e.vpn == vpn && (e.global || e.pcid == pcid) {
			t.clock++
			e.used = t.clock
			t.Hits++
			return e.pte, true
		}
	}
	t.Misses++
	return mem.PTE{}, false
}

// Insert caches a translation.
func (t *TLB) Insert(vpn uint64, pcid uint16, pte mem.PTE) {
	set := t.set(vpn)
	victim := &set[0]
	for i := range set {
		e := &set[i]
		if e.valid && e.vpn == vpn && e.pcid == pcid && e.global == pte.Global {
			victim = e
			break
		}
		if !e.valid {
			victim = e
			break
		}
		if e.used < victim.used {
			victim = e
		}
	}
	t.clock++
	*victim = Entry{valid: true, vpn: vpn, pcid: pcid, global: pte.Global, pte: pte, used: t.clock}
}

// FlushAll invalidates everything, including global entries.
func (t *TLB) FlushAll() {
	t.Flushes++
	for i := range t.lines {
		t.lines[i].valid = false
	}
}

// FlushNonGlobal invalidates all non-global entries (legacy CR3 write
// without PCID support).
func (t *TLB) FlushNonGlobal() {
	t.Flushes++
	for i := range t.lines {
		if !t.lines[i].global {
			t.lines[i].valid = false
		}
	}
}

// FlushPCID invalidates entries tagged with pcid.
func (t *TLB) FlushPCID(pcid uint16) {
	t.Flushes++
	for i := range t.lines {
		if t.lines[i].valid && !t.lines[i].global && t.lines[i].pcid == pcid {
			t.lines[i].valid = false
		}
	}
}

// FlushVPN invalidates any entry for vpn regardless of PCID (invlpg).
// Only vpn's own set can hold such entries, so only it is scanned.
func (t *TLB) FlushVPN(vpn uint64) {
	set := t.set(vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].valid = false
		}
	}
}

// Valid returns the number of valid entries (for tests).
func (t *TLB) Valid() int {
	n := 0
	for i := range t.lines {
		if t.lines[i].valid {
			n++
		}
	}
	return n
}

// Reset returns the TLB to the observable state of a freshly
// constructed one, reusing the entry array: every entry is zeroed, the
// LRU clock and all statistics return to zero. Unlike FlushAll it does
// not count as a flush — reuse is host-side recycling, not a simulated
// TLB event.
func (t *TLB) Reset() {
	for i := range t.lines {
		t.lines[i] = Entry{}
	}
	t.clock = 0
	t.Hits, t.Misses, t.Flushes = 0, 0, 0
}

// ResetStats zeroes the hit/miss/flush counters.
func (t *TLB) ResetStats() { t.Hits, t.Misses, t.Flushes = 0, 0, 0 }
