// Package tlb models a set-associative translation lookaside buffer with
// PCID (process-context identifier) tags and global pages.
//
// PCIDs are what make kernel page-table isolation affordable on Broadwell
// and Skylake (§5.1 of the paper): without them every CR3 write flushes
// the TLB; with them the user and kernel page tables coexist under
// different tags and the switch costs only the CR3 write itself.
//
// # Memory-path fast path
//
// Like internal/cache, the TLB supports epoch-stamped invalidation
// behind the package-level fast-path switch (see SetFastPath): each
// entry records the validity epochs it was inserted under, and the two
// bulk flushes become O(1) epoch bumps. Two epochs are needed because
// the TLB has two bulk-invalidation granularities: FlushAll kills
// everything (bump epoch), while FlushNonGlobal must spare global
// entries (bump ngEpoch, which only non-global entries are checked
// against). The targeted flushes — FlushPCID (INVPCID) and FlushVPN
// (invlpg) — stay as scans; they are rare and touch one PCID or one
// set.
//
// The TLB also maintains a mutation generation (Gen) counted up on
// every state change — insert, any flush, reset. An unchanged
// generation guarantees the entry arrays are bit-identical, which lets
// the CPU core cache "the entry that hit last time" per translation
// stream and replay a hit against it (Rehit) without rescanning the
// set: if the generation still matches, the cached entry is provably
// still the first match the scan would find.
package tlb

import (
	"sync/atomic"

	"spectrebench/internal/mem"
)

// fastOff is inverted so the zero value means the fast path is on.
var fastOff atomic.Bool

// SetFastPath enables or disables epoch-bump flushes for subsequently
// constructed or Reset TLBs, returning the previous setting. Both modes
// produce byte-identical simulated state.
func SetFastPath(on bool) (prev bool) { return !fastOff.Swap(!on) }

// FastPath reports whether the fast path is enabled for new TLBs.
func FastPath() bool { return !fastOff.Load() }

// Entry is a cached translation.
type Entry struct {
	valid   bool
	global  bool
	pcid    uint16
	vpn     uint64
	pte     mem.PTE
	used    uint64
	epoch   uint64 // validity epoch at insert (checked against TLB.epoch)
	ngEpoch uint64 // non-global epoch at insert (checked unless global)
}

// TLB is a set-associative translation cache.
type TLB struct {
	sets  int
	ways  int
	mask  uint64 // sets-1 when sets is a power of two, else 0 with pow2 false
	pow2  bool
	fast  bool // captured from FastPath at New/Reset
	lines []Entry
	clock uint64

	// epoch is bumped by FlushAll, invalidating every entry in O(1) on
	// the fast path; ngEpoch is bumped by FlushNonGlobal and checked
	// only for non-global entries. An entry is live iff
	//   valid && epoch matches && (global || ngEpoch matches).
	// The eager path clears valid bits instead; the predicate holds in
	// both modes, so mixed histories (flag flips between Resets) are
	// safe.
	epoch   uint64
	ngEpoch uint64

	// gen counts mutations (inserts, flushes, resets). Read via Gen by
	// the CPU core's translation cache; never part of simulated state.
	gen uint64

	Hits, Misses, Flushes uint64
}

// New returns a TLB with the given geometry.
func New(sets, ways int) *TLB {
	t := &TLB{sets: sets, ways: ways, lines: make([]Entry, sets*ways), fast: FastPath()}
	if sets > 0 && sets&(sets-1) == 0 {
		t.mask = uint64(sets - 1)
		t.pow2 = true
	}
	return t
}

func (t *TLB) set(vpn uint64) []Entry {
	var idx int
	if t.pow2 {
		idx = int(vpn & t.mask)
	} else {
		idx = int(vpn % uint64(t.sets))
	}
	return t.lines[idx*t.ways : (idx+1)*t.ways]
}

// live reports whether an entry currently holds a valid translation.
func (t *TLB) live(e *Entry) bool {
	return e.valid && e.epoch == t.epoch && (e.global || e.ngEpoch == t.ngEpoch)
}

// Gen returns the TLB's mutation generation. It changes whenever any
// insert, flush or reset could have altered which entry a lookup finds;
// lookups themselves (which only touch LRU state and counters) keep it
// stable. Callers may cache an *Entry obtained from LookupH and reuse
// it via Rehit for as long as Gen is unchanged.
func (t *TLB) Gen() uint64 { return t.gen }

// SetRef pins the set that holds translations for one VPN. The CPU
// core's decoded-block fetch path resolves the set once per basic block
// (the block never crosses a page, so the set index is fixed) and then
// performs per-instruction lookups against the pinned slice without
// recomputing the index. The backing array is allocated once in New and
// flush operations invalidate entries in place (or bump epochs), so a
// SetRef stays valid across flushes, inserts and evictions for the
// lifetime of the TLB.
type SetRef struct {
	t   *TLB
	set []Entry
}

// SetFor returns a SetRef for vpn's set.
func (t *TLB) SetFor(vpn uint64) SetRef {
	return SetRef{t: t, set: t.set(vpn)}
}

// Lookup is exactly TLB.Lookup restricted to the pinned set: same scan
// order, same LRU-clock and hit/miss bookkeeping, so interleaving SetRef
// and TLB lookups is indistinguishable from using TLB.Lookup alone.
func (r SetRef) Lookup(vpn uint64, pcid uint16) (mem.PTE, bool) {
	if e, ok := r.LookupH(vpn, pcid); ok {
		return e.pte, true
	}
	return mem.PTE{}, false
}

// LookupH is Lookup returning a handle to the hitting entry, for callers
// that cache the hit (see TLB.Rehit). Bookkeeping is identical.
func (r SetRef) LookupH(vpn uint64, pcid uint16) (*Entry, bool) {
	t := r.t
	for i := range r.set {
		e := &r.set[i]
		if t.live(e) && e.vpn == vpn && (e.global || e.pcid == pcid) {
			t.clock++
			e.used = t.clock
			t.Hits++
			return e, true
		}
	}
	t.Misses++
	return nil, false
}

// Lookup returns the cached PTE for vpn under pcid. Global entries match
// any PCID.
func (t *TLB) Lookup(vpn uint64, pcid uint16) (mem.PTE, bool) {
	if e, ok := t.LookupH(vpn, pcid); ok {
		return e.pte, true
	}
	return mem.PTE{}, false
}

// LookupH is Lookup returning a handle to the hitting entry, for callers
// that cache the hit (see Rehit). Bookkeeping is identical to Lookup.
func (t *TLB) LookupH(vpn uint64, pcid uint16) (*Entry, bool) {
	set := t.set(vpn)
	for i := range set {
		e := &set[i]
		if t.live(e) && e.vpn == vpn && (e.global || e.pcid == pcid) {
			t.clock++
			e.used = t.clock
			t.Hits++
			return e, true
		}
	}
	t.Misses++
	return nil, false
}

// Rehit replays a hit against an entry previously returned by LookupH,
// with bookkeeping identical to the scan finding it: the LRU clock
// advances, the entry's timestamp updates, Hits increments. Only valid
// while Gen is unchanged since the LookupH — an unchanged generation
// means no insert/flush/reset has run, so the entry is still live and
// still the first match in its set's scan order (scan order is way
// order, which lookups never permute).
func (t *TLB) Rehit(e *Entry) mem.PTE {
	t.clock++
	e.used = t.clock
	t.Hits++
	return e.pte
}

// PTE returns the entry's translation (for callers holding a handle).
func (e *Entry) PTE() mem.PTE { return e.pte }

// Insert caches a translation. A dead entry — never filled, eagerly
// invalidated, or with a stale epoch — is claimed before evicting LRU,
// and an existing live entry for the same (vpn, pcid, global) tag is
// overwritten in place.
func (t *TLB) Insert(vpn uint64, pcid uint16, pte mem.PTE) {
	t.gen++
	set := t.set(vpn)
	victim := &set[0]
	for i := range set {
		e := &set[i]
		if t.live(e) && e.vpn == vpn && e.pcid == pcid && e.global == pte.Global {
			victim = e
			break
		}
		if !t.live(e) {
			victim = e
			break
		}
		if e.used < victim.used {
			victim = e
		}
	}
	t.clock++
	*victim = Entry{
		valid: true, vpn: vpn, pcid: pcid, global: pte.Global, pte: pte,
		used: t.clock, epoch: t.epoch, ngEpoch: t.ngEpoch,
	}
}

// FlushAll invalidates everything, including global entries. O(1) on
// the fast path (epoch bump).
func (t *TLB) FlushAll() {
	t.gen++
	t.Flushes++
	if t.fast {
		t.epoch++
		return
	}
	for i := range t.lines {
		t.lines[i].valid = false
	}
}

// FlushNonGlobal invalidates all non-global entries (legacy CR3 write
// without PCID support). O(1) on the fast path (non-global epoch bump).
func (t *TLB) FlushNonGlobal() {
	t.gen++
	t.Flushes++
	if t.fast {
		t.ngEpoch++
		return
	}
	for i := range t.lines {
		if !t.lines[i].global {
			t.lines[i].valid = false
		}
	}
}

// FlushPCID invalidates entries tagged with pcid (INVPCID). Rare enough
// that it stays a scan in both modes; only live entries are cleared so
// epoch-dead ones never resurrect.
func (t *TLB) FlushPCID(pcid uint16) {
	t.gen++
	t.Flushes++
	for i := range t.lines {
		e := &t.lines[i]
		if t.live(e) && !e.global && e.pcid == pcid {
			e.valid = false
		}
	}
}

// FlushVPN invalidates any entry for vpn regardless of PCID (invlpg).
// Only vpn's own set can hold such entries, so only it is scanned.
func (t *TLB) FlushVPN(vpn uint64) {
	t.gen++
	set := t.set(vpn)
	for i := range set {
		if t.live(&set[i]) && set[i].vpn == vpn {
			set[i].valid = false
		}
	}
}

// Valid returns the number of valid entries (for tests).
func (t *TLB) Valid() int {
	n := 0
	for i := range t.lines {
		if t.live(&t.lines[i]) {
			n++
		}
	}
	return n
}

// Reset returns the TLB to the observable state of a freshly
// constructed one, reusing the entry array: every entry is invalidated
// (epoch bumps on the fast path, in-place zeroing otherwise), the LRU
// clock and all statistics return to zero. Unlike FlushAll it does not
// count as a flush — reuse is host-side recycling, not a simulated TLB
// event. Reset re-captures the package fast-path setting so pooled
// cores honour an ablation flip at their next checkout.
func (t *TLB) Reset() {
	t.gen++
	t.fast = FastPath()
	if t.fast {
		t.epoch++
		t.ngEpoch++
	} else {
		for i := range t.lines {
			t.lines[i] = Entry{}
		}
	}
	t.clock = 0
	t.Hits, t.Misses, t.Flushes = 0, 0, 0
}

// ResetStats zeroes the hit/miss/flush counters.
func (t *TLB) ResetStats() { t.Hits, t.Misses, t.Flushes = 0, 0, 0 }
