// Package tlb models a set-associative translation lookaside buffer with
// PCID (process-context identifier) tags and global pages.
//
// PCIDs are what make kernel page-table isolation affordable on Broadwell
// and Skylake (§5.1 of the paper): without them every CR3 write flushes
// the TLB; with them the user and kernel page tables coexist under
// different tags and the switch costs only the CR3 write itself.
package tlb

import "spectrebench/internal/mem"

// Entry is a cached translation.
type Entry struct {
	valid  bool
	vpn    uint64
	pcid   uint16
	global bool
	pte    mem.PTE
	used   uint64
}

// TLB is a set-associative translation cache.
type TLB struct {
	sets  int
	ways  int
	lines []Entry
	clock uint64

	Hits, Misses, Flushes uint64
}

// New returns a TLB with the given geometry.
func New(sets, ways int) *TLB {
	return &TLB{sets: sets, ways: ways, lines: make([]Entry, sets*ways)}
}

func (t *TLB) set(vpn uint64) []Entry {
	idx := int(vpn % uint64(t.sets))
	return t.lines[idx*t.ways : (idx+1)*t.ways]
}

// Lookup returns the cached PTE for vpn under pcid. Global entries match
// any PCID.
func (t *TLB) Lookup(vpn uint64, pcid uint16) (mem.PTE, bool) {
	set := t.set(vpn)
	for i := range set {
		e := &set[i]
		if e.valid && e.vpn == vpn && (e.global || e.pcid == pcid) {
			t.clock++
			e.used = t.clock
			t.Hits++
			return e.pte, true
		}
	}
	t.Misses++
	return mem.PTE{}, false
}

// Insert caches a translation.
func (t *TLB) Insert(vpn uint64, pcid uint16, pte mem.PTE) {
	set := t.set(vpn)
	victim := &set[0]
	for i := range set {
		e := &set[i]
		if e.valid && e.vpn == vpn && e.pcid == pcid && e.global == pte.Global {
			victim = e
			break
		}
		if !e.valid {
			victim = e
			break
		}
		if e.used < victim.used {
			victim = e
		}
	}
	t.clock++
	*victim = Entry{valid: true, vpn: vpn, pcid: pcid, global: pte.Global, pte: pte, used: t.clock}
}

// FlushAll invalidates everything, including global entries.
func (t *TLB) FlushAll() {
	t.Flushes++
	for i := range t.lines {
		t.lines[i].valid = false
	}
}

// FlushNonGlobal invalidates all non-global entries (legacy CR3 write
// without PCID support).
func (t *TLB) FlushNonGlobal() {
	t.Flushes++
	for i := range t.lines {
		if !t.lines[i].global {
			t.lines[i].valid = false
		}
	}
}

// FlushPCID invalidates entries tagged with pcid.
func (t *TLB) FlushPCID(pcid uint16) {
	t.Flushes++
	for i := range t.lines {
		if t.lines[i].valid && !t.lines[i].global && t.lines[i].pcid == pcid {
			t.lines[i].valid = false
		}
	}
}

// FlushVPN invalidates any entry for vpn regardless of PCID (invlpg).
func (t *TLB) FlushVPN(vpn uint64) {
	for i := range t.lines {
		if t.lines[i].valid && t.lines[i].vpn == vpn {
			t.lines[i].valid = false
		}
	}
}

// Valid returns the number of valid entries (for tests).
func (t *TLB) Valid() int {
	n := 0
	for i := range t.lines {
		if t.lines[i].valid {
			n++
		}
	}
	return n
}

// ResetStats zeroes the hit/miss/flush counters.
func (t *TLB) ResetStats() { t.Hits, t.Misses, t.Flushes = 0, 0, 0 }
