package tlb

import (
	"math/rand"
	"testing"
)

// withFastPath runs f under both fast-path settings as subtests,
// restoring the package flag afterwards. Epoch-bump and eager-clear
// flushes must be observationally identical.
func withFastPath(t *testing.T, f func(t *testing.T)) {
	for _, mode := range []struct {
		name string
		on   bool
	}{{"fast", true}, {"eager", false}} {
		t.Run(mode.name, func(t *testing.T) {
			prev := SetFastPath(mode.on)
			defer SetFastPath(prev)
			f(t)
		})
	}
}

// TestEpochFlushAllObservability: after FlushAll every entry — global
// or not — must be dead to Lookup and Valid, and inserts must reclaim
// the dead ways.
func TestEpochFlushAllObservability(t *testing.T) {
	withFastPath(t, func(t *testing.T) {
		tl := New(4, 2)
		tl.Insert(1, 1, pte(0x1000, false))
		tl.Insert(2, 2, pte(0x2000, true))
		tl.FlushAll()
		if tl.Valid() != 0 {
			t.Fatalf("Valid after FlushAll = %d, want 0", tl.Valid())
		}
		if _, ok := tl.Lookup(1, 1); ok {
			t.Fatal("non-global entry survived FlushAll")
		}
		if _, ok := tl.Lookup(2, 2); ok {
			t.Fatal("global entry survived FlushAll")
		}
		tl.Insert(5, 1, pte(0x5000, false))
		if tl.Valid() != 1 {
			t.Fatalf("Valid after post-flush insert = %d, want 1", tl.Valid())
		}
	})
}

// TestEpochFlushNonGlobalSparesGlobals: the non-global epoch bump must
// kill exactly the non-global entries, leaving globals live — the PCID
// economics of §5.1 depend on this distinction.
func TestEpochFlushNonGlobalSparesGlobals(t *testing.T) {
	withFastPath(t, func(t *testing.T) {
		tl := New(4, 2)
		tl.Insert(1, 1, pte(0x1000, false))
		tl.Insert(2, 1, pte(0x2000, true))
		tl.Insert(3, 2, pte(0x3000, false))
		tl.FlushNonGlobal()
		if tl.Valid() != 1 {
			t.Fatalf("Valid after FlushNonGlobal = %d, want 1 (the global)", tl.Valid())
		}
		if _, ok := tl.Lookup(2, 7); !ok {
			t.Fatal("global entry lost by FlushNonGlobal")
		}
		if _, ok := tl.Lookup(1, 1); ok {
			t.Fatal("non-global entry survived FlushNonGlobal")
		}
		// A second FlushNonGlobal after re-inserting must kill the new
		// entry but keep sparing the old global.
		tl.Insert(1, 1, pte(0x1000, false))
		tl.FlushNonGlobal()
		if _, ok := tl.Lookup(2, 7); !ok {
			t.Fatal("global entry lost by the second FlushNonGlobal")
		}
		if _, ok := tl.Lookup(1, 1); ok {
			t.Fatal("re-inserted entry survived the second FlushNonGlobal")
		}
		// FlushAll still kills the global.
		tl.FlushAll()
		if _, ok := tl.Lookup(2, 7); ok {
			t.Fatal("global survived FlushAll after epoch history")
		}
	})
}

// TestEpochFlushPCIDOnEpochDeadEntries: FlushPCID scans only live
// entries; an entry already dead via an epoch bump must not be
// resurrected or double-counted by a later targeted flush, and a
// same-PCID entry inserted after the bump must still be flushable.
func TestEpochFlushPCIDOnEpochDeadEntries(t *testing.T) {
	withFastPath(t, func(t *testing.T) {
		tl := New(4, 2)
		tl.Insert(1, 3, pte(0x1000, false))
		tl.FlushAll()
		tl.FlushPCID(3) // entry already epoch-dead; must be a no-op
		if tl.Valid() != 0 {
			t.Fatalf("Valid = %d after FlushAll+FlushPCID, want 0", tl.Valid())
		}
		tl.Insert(1, 3, pte(0x1000, false))
		tl.Insert(2, 4, pte(0x2000, false))
		tl.FlushPCID(3)
		if _, ok := tl.Lookup(1, 3); ok {
			t.Fatal("pcid-3 entry survived FlushPCID after epoch history")
		}
		if _, ok := tl.Lookup(2, 4); !ok {
			t.Fatal("pcid-4 entry lost by FlushPCID(3)")
		}
	})
}

// TestEpochResetObservability: Reset must return the TLB to fresh
// state — no live entries, zero statistics — and the next insert/lookup
// sequence must behave exactly as on a new TLB.
func TestEpochResetObservability(t *testing.T) {
	withFastPath(t, func(t *testing.T) {
		tl := New(4, 2)
		tl.Insert(1, 1, pte(0x1000, false))
		tl.Insert(2, 1, pte(0x2000, true))
		tl.Lookup(1, 1)
		tl.Lookup(9, 9)
		tl.FlushAll()
		tl.Reset()
		if tl.Valid() != 0 {
			t.Fatalf("Valid after Reset = %d, want 0", tl.Valid())
		}
		if tl.Hits != 0 || tl.Misses != 0 || tl.Flushes != 0 {
			t.Fatalf("stats after Reset = %d/%d/%d, want zeros", tl.Hits, tl.Misses, tl.Flushes)
		}
		fresh := New(4, 2)
		for _, step := range []struct {
			vpn  uint64
			pcid uint16
		}{{1, 1}, {2, 1}, {1, 2}} {
			_, okA := tl.Lookup(step.vpn, step.pcid)
			_, okB := fresh.Lookup(step.vpn, step.pcid)
			if okA != okB {
				t.Fatalf("post-Reset lookup (%d,%d) = %v, fresh = %v", step.vpn, step.pcid, okA, okB)
			}
		}
	})
}

// TestRehitMatchesLookup: replaying a hit through Rehit must leave the
// TLB in exactly the state a second Lookup would — same PTE, same hit
// count, and the same LRU consequences for later evictions.
func TestRehitMatchesLookup(t *testing.T) {
	withFastPath(t, func(t *testing.T) {
		mk := func() *TLB {
			tl := New(1, 2)
			tl.Insert(10, 1, pte(0xa000, false))
			tl.Insert(20, 1, pte(0xb000, false))
			return tl
		}
		a, b := mk(), mk()
		// a: LookupH then Rehit; b: two plain Lookups.
		ea, ok := a.LookupH(10, 1)
		if !ok {
			t.Fatal("LookupH missed")
		}
		genBefore := a.Gen()
		pa := a.Rehit(ea)
		if a.Gen() != genBefore {
			t.Fatal("Rehit mutated the generation; lookups must keep Gen stable")
		}
		b.Lookup(10, 1)
		pb, _ := b.Lookup(10, 1)
		if pa != pb {
			t.Fatalf("Rehit PTE %+v != Lookup PTE %+v", pa, pb)
		}
		if a.Hits != b.Hits || a.Misses != b.Misses {
			t.Fatalf("counters diverged: rehit %d/%d lookup %d/%d", a.Hits, a.Misses, b.Hits, b.Misses)
		}
		// vpn 10 is MRU on both; inserting a third entry must evict 20 on
		// both sides.
		a.Insert(30, 1, pte(0xc000, false))
		b.Insert(30, 1, pte(0xc000, false))
		for _, vpn := range []uint64{10, 20, 30} {
			_, okA := a.Lookup(vpn, 1)
			_, okB := b.Lookup(vpn, 1)
			if okA != okB {
				t.Fatalf("post-eviction vpn %d: rehit-side %v lookup-side %v", vpn, okA, okB)
			}
		}
	})
}

// TestGenTracksMutations pins the contract the CPU core's translation
// cache relies on: Gen changes on every insert, flush, and reset, and
// never on lookups.
func TestGenTracksMutations(t *testing.T) {
	tl := New(4, 2)
	g := tl.Gen()
	tl.Lookup(1, 1)
	tl.Lookup(2, 2)
	if tl.Gen() != g {
		t.Fatal("lookups changed Gen")
	}
	for _, mut := range []struct {
		name string
		f    func()
	}{
		{"Insert", func() { tl.Insert(1, 1, pte(0x1000, false)) }},
		{"FlushVPN", func() { tl.FlushVPN(1) }},
		{"FlushPCID", func() { tl.FlushPCID(1) }},
		{"FlushNonGlobal", func() { tl.FlushNonGlobal() }},
		{"FlushAll", func() { tl.FlushAll() }},
		{"Reset", func() { tl.Reset() }},
	} {
		before := tl.Gen()
		mut.f()
		if tl.Gen() == before {
			t.Fatalf("%s did not change Gen", mut.name)
		}
	}
}

// tlbObs is one observation of the differential fuzz: lookup outcome
// plus the translated physical page.
type tlbObs struct {
	ok   bool
	phys uint64
}

// TestEpochDifferentialFuzz drives random interleavings of Insert,
// Lookup, all four flushes and Reset through an epoch-stamped and an
// eager-clear TLB and requires identical observations: every lookup
// outcome and PTE, Hits/Misses/Flushes, and Valid. Resets on the fast
// instance flip the package flag at random so mixed histories are
// covered.
func TestEpochDifferentialFuzz(t *testing.T) {
	prev := FastPath()
	defer SetFastPath(prev)

	mk := func(fast bool) *TLB {
		SetFastPath(fast)
		return New(4, 2)
	}
	for seed := int64(1); seed <= 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		ref := mk(false)
		fast := mk(true)
		fastMode := true
		apply := func(tl *TLB, k int, vpn uint64, pcid uint16, global bool) tlbObs {
			switch k {
			case 0:
				tl.Insert(vpn, pcid, pte(vpn<<12, global))
			case 1:
				p, ok := tl.Lookup(vpn, pcid)
				return tlbObs{ok: ok, phys: p.Phys}
			case 2:
				tl.FlushAll()
			case 3:
				tl.FlushNonGlobal()
			case 4:
				tl.FlushPCID(pcid)
			case 5:
				tl.FlushVPN(vpn)
			case 6:
				tl.Reset()
			}
			return tlbObs{}
		}
		for step := 0; step < 3000; step++ {
			vpn := uint64(r.Intn(16))
			pcid := uint16(r.Intn(4))
			global := r.Intn(4) == 0
			var k int
			switch x := r.Intn(100); {
			case x < 35:
				k = 0 // insert
			case x < 70:
				k = 1 // lookup
			case x < 78:
				k = 2 // flushAll
			case x < 86:
				k = 3 // flushNonGlobal
			case x < 92:
				k = 4 // flushPCID
			case x < 97:
				k = 5 // flushVPN
			default:
				k = 6 // reset
			}
			if k == 6 {
				fastMode = r.Intn(2) == 0
			}
			SetFastPath(false)
			refObs := apply(ref, k, vpn, pcid, global)
			SetFastPath(fastMode)
			fastObs := apply(fast, k, vpn, pcid, global)
			if refObs != fastObs {
				t.Fatalf("seed %d step %d: op %d (vpn %d pcid %d global %v): eager %+v fast %+v",
					seed, step, k, vpn, pcid, global, refObs, fastObs)
			}
			if ref.Hits != fast.Hits || ref.Misses != fast.Misses || ref.Flushes != fast.Flushes {
				t.Fatalf("seed %d step %d: stats diverged: eager %d/%d/%d fast %d/%d/%d",
					seed, step, ref.Hits, ref.Misses, ref.Flushes, fast.Hits, fast.Misses, fast.Flushes)
			}
			if step%61 == 0 && ref.Valid() != fast.Valid() {
				t.Fatalf("seed %d step %d: Valid diverged: eager %d fast %d",
					seed, step, ref.Valid(), fast.Valid())
			}
		}
		if ref.Valid() != fast.Valid() {
			t.Fatalf("seed %d: final Valid diverged: eager %d fast %d", seed, ref.Valid(), fast.Valid())
		}
	}
}
