// Package lfs implements the LFS smallfile and largefile benchmarks
// (Rosenblum & Ousterhout) the paper runs inside a virtual machine
// against an emulated disk (§4.4): the guest kernel serves file syscalls
// from a log-structured filesystem whose block I/O exits to the host.
package lfs

import (
	"fmt"

	"spectrebench/internal/checkpoint"
	"spectrebench/internal/fs"
	"spectrebench/internal/isa"
	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
	"spectrebench/internal/vmm"
)

// Benchmark names.
const (
	Smallfile = "smallfile"
	Largefile = "largefile"
)

// hvDevice adapts the hypervisor's paravirtual block path to the fs
// device interface; every block transfer is a VM exit.
type hvDevice struct {
	hv *vmm.Hypervisor
}

func (d hvDevice) Read(n int, buf []byte) error  { return d.hv.HostBlockIO(n, buf, false) }
func (d hvDevice) Write(n int, buf []byte) error { return d.hv.HostBlockIO(n, buf, true) }
func (d hvDevice) Blocks() int                   { return d.hv.Disk().Blocks() }

// Result is one benchmark run's outcome.
type Result struct {
	Cycles  float64
	VMExits uint64
}

// Run executes one LFS benchmark inside a guest VM, returning cycles
// and exit counts. hostMit controls the host's VM-boundary mitigations.
func Run(m *model.CPU, hostMit, guestMit kernel.Mitigations, name string) (*Result, error) {
	hv := vmm.New(m, hostMit, guestMit, 4096)
	defer hv.Close()
	hv.Boot()
	k := hv.GuestKernel

	volume, err := fs.Format(hvDevice{hv})
	if err != nil {
		return nil, err
	}
	// Guest kernel file provider: file ids map to LFS files.
	k.OpenFileProvider = func(id, _ uint64) kernel.ExternalFile {
		fname := fmt.Sprintf("f%d", id)
		if fl, err := volume.Open(fname); err == nil {
			return fl
		}
		fl, err := volume.Create(fname)
		if err != nil {
			return nil
		}
		return fl
	}

	prog, err := benchProgram(name)
	if err != nil {
		return nil, err
	}
	hv.NewGuestProcess("lfs-"+name, prog)
	start := hv.C.Cycles
	if err := k.RunProcessToCompletion(120_000_000); err != nil {
		return nil, err
	}
	return &Result{Cycles: float64(hv.C.Cycles - start), VMExits: hv.Exits}, nil
}

func emitSyscall(a *isa.Asm, nr int64) {
	a.MovI(isa.R7, nr)
	a.Syscall()
}

// assembled carries a guest program (or its deterministic assembly
// failure) through the checkpoint registry.
type assembled struct {
	prog *isa.Program
	err  error
}

// benchProgram assembles the guest program for the named benchmark,
// reusing the checkpointed assembly across runs — the emitted code
// depends only on the name, and the program is immutable once built.
// Only the host-side assembly is checkpointed; the VM itself (disk
// format traffic included) always runs cold, because formatting charges
// guest cycles and VM exits that appear in the measured output.
func benchProgram(name string) (*isa.Program, error) {
	v, ok := checkpoint.Get("lfs/prog|"+name, func() any {
		prog, err := buildProgram(name)
		return &assembled{prog: prog, err: err}
	})
	if !ok {
		return buildProgram(name)
	}
	asm := v.(*assembled)
	return asm.prog, asm.err
}

// buildProgram emits the guest user program for the benchmark.
func buildProgram(name string) (*isa.Program, error) {
	a := isa.NewAsm()
	switch name {
	case Smallfile:
		// 12 files: create, write 4 KiB, close (sync), reopen, read.
		const files = 12
		a.MovI(isa.R9, 0)
		a.Label("file_loop")
		// open(id)
		a.Mov(isa.R1, isa.R9)
		a.MovI(isa.R2, 0)
		emitSyscall(a, kernel.SysOpen)
		a.Mov(isa.R8, isa.R0) // fd
		// write 4 KiB
		a.Mov(isa.R1, isa.R8)
		a.MovI(isa.R2, kernel.UserDataBase)
		a.MovI(isa.R3, 4096)
		emitSyscall(a, kernel.SysWrite)
		// close → sync → block I/O → VM exits
		a.Mov(isa.R1, isa.R8)
		emitSyscall(a, kernel.SysClose)
		// reopen + read back
		a.Mov(isa.R1, isa.R9)
		a.MovI(isa.R2, 0)
		emitSyscall(a, kernel.SysOpen)
		a.Mov(isa.R8, isa.R0)
		a.Mov(isa.R1, isa.R8)
		a.MovI(isa.R2, kernel.UserDataBase+0x2000)
		a.MovI(isa.R3, 4096)
		emitSyscall(a, kernel.SysRead)
		a.Mov(isa.R1, isa.R8)
		emitSyscall(a, kernel.SysClose)
		a.AddI(isa.R9, 1)
		a.CmpI(isa.R9, files)
		a.Jne("file_loop")

	case Largefile:
		// One 256 KiB file written in 4 KiB chunks, synced, re-read.
		const chunks = 64
		a.MovI(isa.R1, 1000)
		a.MovI(isa.R2, 0)
		emitSyscall(a, kernel.SysOpen)
		a.Mov(isa.R8, isa.R0)
		a.MovI(isa.R9, 0)
		a.Label("wchunk")
		a.Mov(isa.R1, isa.R8)
		a.MovI(isa.R2, kernel.UserDataBase)
		a.MovI(isa.R3, 4096)
		emitSyscall(a, kernel.SysWrite)
		a.AddI(isa.R9, 1)
		a.CmpI(isa.R9, chunks)
		a.Jne("wchunk")
		a.Mov(isa.R1, isa.R8)
		emitSyscall(a, kernel.SysClose) // sync: the big log append
		// Reopen and read back sequentially.
		a.MovI(isa.R1, 1000)
		a.MovI(isa.R2, 0)
		emitSyscall(a, kernel.SysOpen)
		a.Mov(isa.R8, isa.R0)
		a.MovI(isa.R9, 0)
		a.Label("rchunk")
		a.Mov(isa.R1, isa.R8)
		a.MovI(isa.R2, kernel.UserDataBase+0x2000)
		a.MovI(isa.R3, 4096)
		emitSyscall(a, kernel.SysRead)
		a.AddI(isa.R9, 1)
		a.CmpI(isa.R9, chunks)
		a.Jne("rchunk")
		a.Mov(isa.R1, isa.R8)
		emitSyscall(a, kernel.SysClose)

	default:
		return nil, fmt.Errorf("lfs: unknown benchmark %q", name)
	}
	a.MovI(isa.R1, 0)
	emitSyscall(a, kernel.SysExit)
	return a.Assemble(kernel.UserCodeBase)
}

// HostMitigationOverhead measures §4.4's question for one benchmark:
// how much do the host's mitigations slow the guest down?
func HostMitigationOverhead(m *model.CPU, name string) (float64, error) {
	guestMit := kernel.Defaults(m)
	off := kernel.BootParams{MitigationsOff: true}.Apply(m, kernel.Defaults(m))
	base, err := Run(m, off, guestMit, name)
	if err != nil {
		return 0, err
	}
	with, err := Run(m, kernel.Defaults(m), guestMit, name)
	if err != nil {
		return 0, err
	}
	return (with.Cycles - base.Cycles) / base.Cycles, nil
}
