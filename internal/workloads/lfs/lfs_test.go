package lfs

import (
	"testing"

	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
)

func TestSmallfileRunsAndExits(t *testing.T) {
	m := model.SkylakeClient()
	res, err := Run(m, kernel.Defaults(m), kernel.Defaults(m), Smallfile)
	if err != nil {
		t.Fatal(err)
	}
	if res.VMExits == 0 {
		t.Error("smallfile produced no VM exits")
	}
	if res.Cycles <= 0 {
		t.Error("no cycles measured")
	}
}

func TestLargefileRunsAndExits(t *testing.T) {
	m := model.Zen3()
	res, err := Run(m, kernel.Defaults(m), kernel.Defaults(m), Largefile)
	if err != nil {
		t.Fatal(err)
	}
	if res.VMExits < 64 {
		t.Errorf("largefile exits = %d, want ≥ one per data block", res.VMExits)
	}
}

func TestUnknownBenchmark(t *testing.T) {
	m := model.Zen()
	if _, err := Run(m, kernel.Defaults(m), kernel.Defaults(m), "nosuch"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// §4.4: the median overhead of host mitigations on the LFS workloads was
// under 2% (high variance; we allow a few percent). On hardware-fixed
// parts it must be ≈0.
func TestHostMitigationOverheadSmall(t *testing.T) {
	cases := []struct {
		m     *model.CPU
		bound float64
	}{
		{model.Broadwell(), 0.035},     // L1TF + MDS vulnerable: flush+verw per exit
		{model.SkylakeClient(), 0.035}, //
		{model.IceLakeServer(), 0.01},  // nothing to do at the boundary
		{model.Zen3(), 0.01},
	}
	for _, bench := range []string{Smallfile, Largefile} {
		for _, c := range cases {
			ov, err := HostMitigationOverhead(c.m, bench)
			if err != nil {
				t.Fatalf("%s/%s: %v", c.m.Uarch, bench, err)
			}
			if ov < -0.005 || ov > c.bound {
				t.Errorf("%s/%s: host mitigation overhead = %.2f%%, want [0, %.1f%%]",
					c.m.Uarch, bench, ov*100, c.bound*100)
			}
			t.Logf("%s/%s: %.2f%%", c.m.Uarch, bench, ov*100)
		}
	}
}
