// Package parsec reimplements the three PARSEC kernels the paper uses
// (§4.5, Figure 5): swaptions, facesim, and bodytrack. They are
// compute-bound programs with no syscalls in their hot loops, chosen for
// their different working-set sizes and — what Figure 5 turns on —
// different densities of tight store-to-load dependencies, which is the
// traffic Speculative Store Bypass Disable taxes.
package parsec

import (
	"fmt"

	"spectrebench/internal/checkpoint"
	"spectrebench/internal/cpu"
	"spectrebench/internal/isa"
	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
)

// Benchmark is one PARSEC kernel.
type Benchmark struct {
	Name  string
	Build func(a *isa.Asm)
}

// Suite returns swaptions, facesim, and bodytrack.
func Suite() []Benchmark {
	return []Benchmark{
		{Name: "swaptions", Build: buildSwaptions},
		{Name: "facesim", Build: buildFacesim},
		{Name: "bodytrack", Build: buildBodytrack},
	}
}

const (
	dataVA  = kernel.UserDataBase
	checkVA = kernel.UserDataBase + 0x3f00
)

// emitFPWork pads an iteration with n alternating FP multiply/add pairs
// on registers 7 and 5 (the kernels' arithmetic between memory phases).
func emitFPWork(a *isa.Asm, n int) {
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			a.FMul(7, 5)
		} else {
			a.FAdd(7, 5)
		}
	}
}

// Run executes one kernel under the kernel/mitigation configuration,
// optionally with SSBD forced on (Figure 5), returning total cycles.
func Run(m *model.CPU, mit kernel.Mitigations, name string) (float64, error) {
	var bench *Benchmark
	for i := range Suite() {
		if Suite()[i].Name == name {
			b := Suite()[i]
			bench = &b
		}
	}
	if bench == nil {
		return 0, fmt.Errorf("parsec: unknown benchmark %q", name)
	}

	c := cpu.New(m)
	defer c.Recycle()
	k := kernel.New(c, mit)

	prog, err := benchProgram(bench)
	if err != nil {
		return 0, err
	}
	p := k.NewProcess("parsec-"+name, prog)
	start := c.Cycles
	if err := k.RunProcessToCompletion(80_000_000); err != nil {
		return 0, err
	}
	if got := c.Phys.Read64((uint64(p.PID) << 32) + checkVA); got == 0 {
		return 0, fmt.Errorf("parsec %s: no checksum recorded", name)
	}
	return float64(c.Cycles - start), nil
}

// assembled carries a benchmark program (or its deterministic assembly
// failure) through the checkpoint registry.
type assembled struct {
	prog *isa.Program
	err  error
}

// benchProgram assembles b's program, reusing the checkpointed assembly
// when the same kernel has run before — the emitted code depends only
// on the benchmark name, and the program is immutable once assembled.
func benchProgram(b *Benchmark) (*isa.Program, error) {
	v, ok := checkpoint.Get("parsec/prog|"+b.Name, func() any {
		prog, err := assembleBench(b)
		return &assembled{prog: prog, err: err}
	})
	if !ok {
		return assembleBench(b)
	}
	asm := v.(*assembled)
	return asm.prog, asm.err
}

// assembleBench emits the kernel body followed by the exit path.
func assembleBench(b *Benchmark) (*isa.Program, error) {
	a := isa.NewAsm()
	b.Build(a)
	// Exit with the checksum stored for validation.
	a.MovI(isa.R1, 0)
	a.MovI(isa.R7, kernel.SysExit)
	a.Syscall()
	return a.Assemble(kernel.UserCodeBase)
}

// buildSwaptions emits the HJM-path-pricing-like kernel: per simulated
// path, forward rates are updated in place and immediately re-read for
// discounting — a dense store→load dependency per loop iteration, the
// worst case for SSBD.
func buildSwaptions(a *isa.Asm) {
	const paths = 120
	const tenors = 16

	a.MovI(isa.R1, dataVA) // rates[]
	// Initialise rates.
	a.MovI(isa.R2, 0)
	a.FMovI(1, 0.05)
	a.Label("init")
	a.Mov(isa.R3, isa.R2)
	a.ShlI(isa.R3, 3)
	a.Add(isa.R3, isa.R1)
	a.FStore(isa.R3, 0, 1)
	a.AddI(isa.R2, 1)
	a.CmpI(isa.R2, tenors)
	a.Jne("init")

	a.FMovI(4, 0.0)    // price accumulator
	a.FMovI(5, 1.0001) // drift factor
	a.FMovI(7, 0.9999) // volatility factor
	a.MovI(isa.R8, paths)
	a.Label("path")
	a.MovI(isa.R2, 0)
	a.Label("tenor")
	a.Mov(isa.R3, isa.R2)
	a.ShlI(isa.R3, 3)
	a.Add(isa.R3, isa.R1)
	// rate = rates[t] * drift  (load → FP → store)
	a.FLoad(2, isa.R3, 0)
	a.FMul(2, 5)
	a.FStore(isa.R3, 0, 2)
	// discount += rates[t]: an immediate reload of the just-stored
	// value — the forwarding SSBD blocks, once per short iteration.
	a.FLoad(3, isa.R3, 0)
	a.FAdd(4, 3)
	// HJM drift/vol arithmetic between memory phases.
	emitFPWork(a, 7)
	a.AddI(isa.R2, 1)
	a.CmpI(isa.R2, tenors)
	a.Jne("tenor")
	a.SubI(isa.R8, 1)
	a.CmpI(isa.R8, 0)
	a.Jne("path")

	// Checksum: scaled price.
	a.FMovI(6, 1000.0)
	a.FMul(4, 6)
	a.FToI(isa.R9, 4)
	a.MovI(isa.R10, checkVA)
	a.Store(isa.R10, 0, isa.R9)
}

// buildFacesim emits the mesh-relaxation-like kernel: a stencil update
// where each node's new position is stored and re-read one neighbour
// later — a medium store→load dependency density.
func buildFacesim(a *isa.Asm) {
	const nodes = 64
	const iters = 40

	a.MovI(isa.R1, dataVA)
	a.MovI(isa.R2, 0)
	a.Label("finit")
	a.Mov(isa.R3, isa.R2)
	a.ShlI(isa.R3, 3)
	a.Add(isa.R3, isa.R1)
	a.IToF(1, isa.R2)
	a.FStore(isa.R3, 0, 1)
	a.AddI(isa.R2, 1)
	a.CmpI(isa.R2, nodes)
	a.Jne("finit")

	a.FMovI(5, 0.5)
	a.FMovI(6, 0.0) // strain accumulator
	a.FMovI(7, 1.0002)
	a.MovI(isa.R8, iters)
	a.Label("fiter")
	a.MovI(isa.R2, 1)
	a.Label("fnode")
	a.Mov(isa.R3, isa.R2)
	a.ShlI(isa.R3, 3)
	a.Add(isa.R3, isa.R1)
	// pos[i] = (pos[i-1] + pos[i]) * 0.5, then the new position is
	// immediately re-read for the strain metric — one blocked forward
	// per (longer) iteration: medium SSBD density.
	a.FLoad(1, isa.R3, -8)
	a.FLoad(2, isa.R3, 0)
	a.FAdd(1, 2)
	a.FMul(1, 5)
	a.FStore(isa.R3, 0, 1)
	a.FLoad(2, isa.R3, 0) // strain term: blocked forward under SSBD
	a.FAdd(6, 2)
	// Elasticity arithmetic padding the iteration.
	emitFPWork(a, 16)
	a.AddI(isa.R2, 1)
	a.CmpI(isa.R2, nodes)
	a.Jne("fnode")
	a.SubI(isa.R8, 1)
	a.CmpI(isa.R8, 0)
	a.Jne("fiter")

	a.Mov(isa.R3, isa.R1)
	a.FLoad(3, isa.R3, (nodes-1)*8)
	a.FMovI(6, 100.0)
	a.FMul(3, 6)
	a.FToI(isa.R9, 3)
	a.MovI(isa.R10, checkVA)
	a.Store(isa.R10, 0, isa.R9)
}

// buildBodytrack emits the particle-scoring-like kernel: dominated by
// arithmetic with memory touched only once per particle — sparse
// forwarding, so SSBD barely shows (the Figure 5 low bar).
func buildBodytrack(a *isa.Asm) {
	const particles = 1200

	a.MovI(isa.R1, dataVA)
	a.FMovI(4, 0.0) // score accumulator
	a.FMovI(5, 1.3)
	a.FMovI(6, 0.7)
	a.MovI(isa.R8, particles)
	a.Label("particle")
	// Weight computation: a long chain of FP ops, little memory.
	a.IToF(1, isa.R8)
	a.FMul(1, 5)
	a.FAdd(1, 6)
	a.FMul(1, 5)
	a.FAdd(1, 6)
	a.FMul(1, 6)
	a.FAdd(4, 1)
	emitFPWork(a, 28)
	// One store + immediate weight normalisation reload per particle —
	// a single blocked forward per long iteration: sparse density.
	a.Mov(isa.R3, isa.R8)
	a.AndI(isa.R3, 63)
	a.ShlI(isa.R3, 3)
	a.Add(isa.R3, isa.R1)
	a.FStore(isa.R3, 0, 1)
	a.FLoad(2, isa.R3, 0)
	a.FAdd(4, 2)
	a.SubI(isa.R8, 1)
	a.CmpI(isa.R8, 0)
	a.Jne("particle")

	a.FToI(isa.R9, 4)
	a.MovI(isa.R10, checkVA)
	a.Store(isa.R10, 0, isa.R9)
}

// SSBDSlowdown measures the Figure 5 number for one benchmark on one
// CPU: the slowdown of forcing SSBD on versus the default configuration.
func SSBDSlowdown(m *model.CPU, name string) (float64, error) {
	base, err := Run(m, kernel.Defaults(m), name)
	if err != nil {
		return 0, err
	}
	forced := kernel.BootParams{SSBDOn: true}.Apply(m, kernel.Defaults(m))
	with, err := Run(m, forced, name)
	if err != nil {
		return 0, err
	}
	return (with - base) / base, nil
}

// DefaultMitigationOverhead measures §4.5: the overhead of the default
// mitigation set on a compute-only workload (expected ≈ 0).
func DefaultMitigationOverhead(m *model.CPU, name string) (float64, error) {
	off := kernel.BootParams{MitigationsOff: true}.Apply(m, kernel.Defaults(m))
	base, err := Run(m, off, name)
	if err != nil {
		return 0, err
	}
	with, err := Run(m, kernel.Defaults(m), name)
	if err != nil {
		return 0, err
	}
	return (with - base) / base, nil
}
