package parsec

import (
	"math"
	"testing"

	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
)

func TestKernelsRunAndChecksum(t *testing.T) {
	for _, m := range []*model.CPU{model.Broadwell(), model.Zen3()} {
		for _, b := range Suite() {
			cyc, err := Run(m, kernel.Defaults(m), b.Name)
			if err != nil {
				t.Fatalf("%s/%s: %v", m.Uarch, b.Name, err)
			}
			if cyc <= 0 {
				t.Errorf("%s/%s: cycles = %v", m.Uarch, b.Name, cyc)
			}
		}
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, err := Run(model.Zen(), kernel.Defaults(model.Zen()), "raytrace"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// §4.5: default mitigations cost ≈ nothing on compute-only workloads
// (the paper saw within ±0.5%, never more than 2%).
func TestDefaultMitigationsNearZero(t *testing.T) {
	for _, m := range model.All() {
		for _, b := range Suite() {
			ov, err := DefaultMitigationOverhead(m, b.Name)
			if err != nil {
				t.Fatalf("%s/%s: %v", m.Uarch, b.Name, err)
			}
			if math.Abs(ov) > 0.02 {
				t.Errorf("%s/%s: default-mitigation overhead = %.2f%%, want within ±2%%",
					m.Uarch, b.Name, ov*100)
			}
		}
	}
}

// Figure 5: forced SSBD is expensive, ordered swaptions > facesim >
// bodytrack, and trending worse on newer parts.
func TestFigure5Shape(t *testing.T) {
	slow := map[string]map[string]float64{}
	for _, m := range model.All() {
		slow[m.Uarch] = map[string]float64{}
		for _, b := range Suite() {
			ov, err := SSBDSlowdown(m, b.Name)
			if err != nil {
				t.Fatalf("%s/%s: %v", m.Uarch, b.Name, err)
			}
			slow[m.Uarch][b.Name] = ov
		}
		s := slow[m.Uarch]
		if !(s["swaptions"] > s["facesim"] && s["facesim"] > s["bodytrack"]) {
			t.Errorf("%s: ordering wrong: swaptions %.1f%% facesim %.1f%% bodytrack %.1f%%",
				m.Uarch, s["swaptions"]*100, s["facesim"]*100, s["bodytrack"]*100)
		}
		if s["bodytrack"] <= 0 {
			t.Errorf("%s: bodytrack SSBD slowdown = %.2f%%, want positive", m.Uarch, s["bodytrack"]*100)
		}
		t.Logf("%s: swaptions %.1f%% facesim %.1f%% bodytrack %.1f%%",
			m.Uarch, s["swaptions"]*100, s["facesim"]*100, s["bodytrack"]*100)
	}
	// The paper: "as much as 34%, trending worse over time".
	if slow["Zen 3"]["swaptions"] < 0.20 {
		t.Errorf("Zen 3 swaptions = %.1f%%, paper peaks ~34%%", slow["Zen 3"]["swaptions"]*100)
	}
	if slow["Zen 3"]["swaptions"] > 0.45 {
		t.Errorf("Zen 3 swaptions = %.1f%%, too hot vs paper's 34%%", slow["Zen 3"]["swaptions"]*100)
	}
	if slow["Broadwell"]["swaptions"] >= slow["Ice Lake Server"]["swaptions"] {
		t.Error("Intel SSBD cost should trend worse across generations")
	}
	if slow["Zen"]["swaptions"] >= slow["Zen 3"]["swaptions"] {
		t.Error("AMD SSBD cost should trend worse across generations")
	}
}

func TestDeterministic(t *testing.T) {
	m := model.CascadeLake()
	a, err := Run(m, kernel.Defaults(m), "swaptions")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(m, kernel.Defaults(m), "swaptions")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}
