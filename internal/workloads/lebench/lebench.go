// Package lebench reimplements the LEBench microbenchmark suite (Ren et
// al., SOSP'19; the WARD-distributed variant the paper uses) against the
// simulated kernel. Each benchmark stresses one core OS operation; the
// paper's Figure 2 reports the geometric mean slowdown of the suite
// under successively disabled mitigations.
package lebench

import (
	"fmt"
	"sync/atomic"

	"spectrebench/internal/checkpoint"
	"spectrebench/internal/cpu"
	"spectrebench/internal/isa"
	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
)

// Benchmark is one LEBench microbenchmark.
type Benchmark struct {
	Name string
	// Iters is the in-simulation repetition count (kept modest: the
	// simulator is deterministic, so variance comes only from state).
	Iters int
	// Build emits the benchmark body (one iteration inside a counted
	// loop provided by the driver).
	Build func(a *isa.Asm)
	// Epilogue, if set, emits cleanup after the measured loop (e.g.
	// signalling a partner process to exit).
	Epilogue func(a *isa.Asm)
	// TwoProc marks benchmarks that need a forked partner process
	// (context switch / pipe ping-pong).
	TwoProc bool
}

// Suite returns the benchmark list. The mix mirrors LEBench's coverage:
// null syscalls, file read/write at two sizes, mmap/munmap, page faults,
// fork, thread creation, context switches, select, and send/recv.
func Suite() []Benchmark {
	return []Benchmark{
		{Name: "getpid", Iters: 60, Build: buildGetpid},
		{Name: "read-small", Iters: 40, Build: buildRead(8 * 1024)},
		{Name: "read-big", Iters: 8, Build: buildRead(56 * 1024)},
		{Name: "write-small", Iters: 40, Build: buildWrite(8 * 1024)},
		{Name: "write-big", Iters: 8, Build: buildWrite(56 * 1024)},
		{Name: "read-huge", Iters: 4, Build: buildRead(256 * 1024)},
		{Name: "write-huge", Iters: 4, Build: buildWrite(256 * 1024)},
		{Name: "mmap", Iters: 12, Build: buildMmap},
		{Name: "munmap", Iters: 12, Build: buildMunmap},
		{Name: "pagefault", Iters: 16, Build: buildPageFault},
		{Name: "mmap-huge", Iters: 4, Build: buildMmapHuge},
		{Name: "fork", Iters: 6, Build: buildFork},
		{Name: "thread-create", Iters: 6, Build: buildThreadCreate},
		{Name: "ctx-switch", Iters: 24, Build: buildYield, Epilogue: stopPartner, TwoProc: true},
		{Name: "send-recv", Iters: 20, Build: buildSendRecv},
		{Name: "select", Iters: 30, Build: buildSelect},
	}
}

// Result is one benchmark's measured cost.
type Result struct {
	Name   string
	Cycles float64 // per iteration
}

// Run executes every benchmark on a fresh machine with the given model
// and mitigation set, returning per-iteration cycle costs.
func Run(m *model.CPU, mit kernel.Mitigations) ([]Result, error) {
	out := make([]Result, 0, len(Suite()))
	for _, b := range Suite() {
		cyc, err := runOne(m, mit, b)
		if err != nil {
			return nil, fmt.Errorf("lebench %s: %w", b.Name, err)
		}
		out = append(out, Result{Name: b.Name, Cycles: cyc})
	}
	return out, nil
}

// runOne measures one benchmark on a fresh machine. The machine is dead
// once the per-iteration cycle count is extracted, so the core goes
// straight back to the pool.
func runOne(m *model.CPU, mit kernel.Mitigations, b Benchmark) (float64, error) {
	c := cpu.New(m)
	defer c.Recycle()
	k := kernel.New(c, mit)
	return RunOn(c, k, b)
}

// RunOn measures one benchmark on a prepared machine (the vmm package
// uses this to run the suite inside a guest). It returns per-iteration
// cycles.
func RunOn(c *cpu.Core, k *kernel.Kernel, b Benchmark) (float64, error) {
	prog, err := benchProgram(b)
	if err != nil {
		return 0, err
	}
	p := k.NewProcess("lebench-"+b.Name, prog)
	if err := k.RunProcessToCompletion(60_000_000); err != nil {
		return 0, err
	}
	elapsedPA := (uint64(p.PID) << 32) + kernel.UserDataBase + 0x3f00
	elapsed := c.Phys.Read64(elapsedPA)
	if elapsed == 0 {
		return 0, fmt.Errorf("no elapsed time recorded")
	}
	return float64(elapsed) / float64(b.Iters), nil
}

// assembled carries a benchmark program (or its deterministic assembly
// failure) through the checkpoint registry.
type assembled struct {
	prog *isa.Program
	err  error
}

// benchProgram assembles b's driver program. The emitted code is a pure
// function of the benchmark definition (label uniquifiers vary between
// builds but resolve to identical targets before assembly), so under
// checkpointed warmup each benchmark is assembled once per process and
// the immutable program is shared by every machine that runs it — host
// and guest alike.
func benchProgram(b Benchmark) (*isa.Program, error) {
	v, ok := checkpoint.Get("lebench/prog|"+b.Name, func() any {
		prog, err := assembleBench(b)
		return &assembled{prog: prog, err: err}
	})
	if !ok {
		return assembleBench(b)
	}
	asm := v.(*assembled)
	return asm.prog, asm.err
}

// assembleBench emits and assembles one benchmark's driver: prologue,
// one warm-up iteration, the measured loop bracketed by TSC reads, and
// the exit path.
func assembleBench(b Benchmark) (*isa.Program, error) {
	a := isa.NewAsm()
	prologue(a, b)
	// Warm-up iteration (populates TLB, caches, predictor state).
	b.Build(a)
	// Measured loop.
	a.MovI(isa.R9, int64(b.Iters))
	emitSyscall(a, kernel.SysGetTSC)
	a.Mov(isa.R8, isa.R0) // start cycles
	a.Label("bench_loop")
	b.Build(a)
	a.SubI(isa.R9, 1)
	a.CmpI(isa.R9, 0)
	a.Jne("bench_loop")
	emitSyscall(a, kernel.SysGetTSC)
	a.Sub(isa.R0, isa.R8) // elapsed
	// Park the result where the host can read it.
	a.MovI(isa.R10, kernel.UserDataBase+0x3f00)
	a.Store(isa.R10, 0, isa.R0)
	if b.Epilogue != nil {
		b.Epilogue(a)
	}
	a.MovI(isa.R1, 0)
	emitSyscall(a, kernel.SysExit)
	return a.Assemble(kernel.UserCodeBase)
}

func emitSyscall(a *isa.Asm, nr int64) {
	a.MovI(isa.R7, nr)
	a.Syscall()
}

// prologue emits per-benchmark setup executed once (fd setup, partner
// process creation).
func prologue(a *isa.Asm, b Benchmark) {
	switch b.Name {
	case "read-small", "read-big", "write-small", "write-big",
		"read-huge", "write-huge", "select":
		// fd 3: a 64 KiB in-memory file.
		a.MovI(isa.R1, 0)
		a.MovI(isa.R2, 64*1024)
		emitSyscall(a, kernel.SysOpen)
	case "send-recv":
		// A pipe to loop data through (fds 3=read end, 4=write end).
		emitSyscall(a, kernel.SysPipe)
	case "ctx-switch":
		// Fork a partner that yields until the parent raises the stop
		// flag in shared memory.
		emitSyscall(a, kernel.SysFork)
		a.CmpI(isa.R0, 0)
		a.Jne("parent")
		a.Label("child_spin")
		a.MovI(isa.R12, stopFlagVA)
		a.Load(isa.R13, isa.R12, 0)
		a.CmpI(isa.R13, 0)
		a.Jne("child_exit")
		emitSyscall(a, kernel.SysYield)
		a.Jmp("child_spin")
		a.Label("child_exit")
		a.MovI(isa.R1, 0)
		emitSyscall(a, kernel.SysExit)
		a.Label("parent")
	case "pagefault":
		// A large lazily-mapped region; each iteration touches a fresh
		// page. R11 = next page to touch.
		a.MovI(isa.R1, 512)
		emitSyscall(a, kernel.SysMmap)
		a.Mov(isa.R11, isa.R0)
	case "mmap":
		// nothing
	case "munmap":
		// nothing (each iteration maps then unmaps)
	}
}

func buildGetpid(a *isa.Asm) {
	emitSyscall(a, kernel.SysGetPID)
}

func buildRead(n int64) func(a *isa.Asm) {
	return func(a *isa.Asm) {
		a.MovI(isa.R1, 3)
		a.MovI(isa.R2, kernel.UserDataBase)
		a.MovI(isa.R3, n)
		emitSyscall(a, kernel.SysRead)
	}
}

func buildWrite(n int64) func(a *isa.Asm) {
	return func(a *isa.Asm) {
		a.MovI(isa.R1, 3)
		a.MovI(isa.R2, kernel.UserDataBase)
		a.MovI(isa.R3, n)
		emitSyscall(a, kernel.SysWrite)
	}
}

func buildMmap(a *isa.Asm) {
	a.MovI(isa.R1, 64)
	emitSyscall(a, kernel.SysMmap)
}

func buildMmapHuge(a *isa.Asm) {
	a.MovI(isa.R1, 512)
	emitSyscall(a, kernel.SysMmap)
	a.Mov(isa.R1, isa.R0)
	a.MovI(isa.R2, 512)
	emitSyscall(a, kernel.SysMunmap)
}

func buildMunmap(a *isa.Asm) {
	a.MovI(isa.R1, 64)
	emitSyscall(a, kernel.SysMmap)
	a.Mov(isa.R1, isa.R0)
	a.MovI(isa.R2, 64)
	emitSyscall(a, kernel.SysMunmap)
}

func buildPageFault(a *isa.Asm) {
	// Touch the next untouched page of the prologue's mapping.
	a.MovI(isa.R12, 7)
	a.Store(isa.R11, 0, isa.R12)
	a.AddI(isa.R11, 4096)
}

func buildFork(a *isa.Asm) {
	id := uniq()
	emitSyscall(a, kernel.SysFork)
	a.CmpI(isa.R0, 0)
	a.Jne("fork_parent_" + id)
	// Child: exit immediately.
	a.MovI(isa.R1, 0)
	emitSyscall(a, kernel.SysExit)
	a.Label("fork_parent_" + id)
}

func buildThreadCreate(a *isa.Asm) {
	// Spawn a thread that exits immediately. Threads run only when the
	// parent is descheduled, so a single shared stack is safe.
	id := uniq()
	a.Jmp("spawn_" + id)
	a.Label("thr_entry_" + id)
	a.MovI(isa.R1, 0)
	emitSyscall(a, kernel.SysExit)
	a.Label("spawn_" + id)
	a.MovLabel(isa.R1, "thr_entry_"+id)
	a.MovI(isa.R2, kernel.UserDataBase+0x8000) // thread stack top
	emitSyscall(a, kernel.SysThreadSpawn)
}

// stopPartner raises the shared stop flag for ctx-switch partners.
func stopPartner(a *isa.Asm) {
	a.MovI(isa.R12, stopFlagVA)
	a.MovI(isa.R13, 1)
	a.Store(isa.R12, 0, isa.R13)
	// One more yield so the partner observes the flag and exits before
	// the parent (keeps teardown deterministic).
	emitSyscall(a, kernel.SysYield)
}

// stopFlagVA is the shared-memory flag ctx-switch partners poll.
const stopFlagVA = kernel.UserDataBase + 0x3f80

func buildYield(a *isa.Asm) {
	emitSyscall(a, kernel.SysYield)
}

func buildSendRecv(a *isa.Asm) {
	// Write 64 bytes into the pipe, read them back (send+recv pair).
	a.MovI(isa.R1, 4) // write end
	a.MovI(isa.R2, kernel.UserDataBase)
	a.MovI(isa.R3, 1024)
	emitSyscall(a, kernel.SysSend)
	a.MovI(isa.R1, 3) // read end
	a.MovI(isa.R2, kernel.UserDataBase+0x1000)
	a.MovI(isa.R3, 1024)
	emitSyscall(a, kernel.SysRecv)
}

func buildSelect(a *isa.Asm) {
	a.MovI(isa.R1, 8) // nfds
	a.MovI(isa.R2, 0) // non-blocking
	emitSyscall(a, kernel.SysSelect)
}

// uniqCounter is atomic because suites assemble concurrently on engine
// workers; the labels only need process-wide uniqueness, not any
// particular order.
var uniqCounter atomic.Int64

func uniq() string {
	return fmt.Sprintf("%d", uniqCounter.Add(1))
}
