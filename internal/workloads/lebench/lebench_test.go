package lebench

import (
	"testing"

	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
	"spectrebench/internal/stats"
)

func TestSuiteRunsOnAllModels(t *testing.T) {
	for _, m := range []*model.CPU{model.Broadwell(), model.IceLakeServer(), model.Zen3()} {
		res, err := Run(m, kernel.Defaults(m))
		if err != nil {
			t.Fatalf("%s: %v", m.Uarch, err)
		}
		if len(res) != len(Suite()) {
			t.Fatalf("%s: %d results", m.Uarch, len(res))
		}
		for _, r := range res {
			if r.Cycles <= 0 {
				t.Errorf("%s/%s: %v cycles", m.Uarch, r.Name, r.Cycles)
			}
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	m := model.SkylakeClient()
	a, err := Run(m, kernel.Defaults(m))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(m, kernel.Defaults(m))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Cycles != b[i].Cycles {
			t.Errorf("%s: %v vs %v", a[i].Name, a[i].Cycles, b[i].Cycles)
		}
	}
}

// The paper's headline OS-boundary result: mitigations cost >10% on old
// Intel parts (Broadwell/Skylake), and only a few percent on Ice Lake.
func TestFigure2Shape(t *testing.T) {
	geomean := func(m *model.CPU, mit kernel.Mitigations) float64 {
		res, err := Run(m, mit)
		if err != nil {
			t.Fatal(err)
		}
		vals := make([]float64, len(res))
		for i, r := range res {
			vals[i] = r.Cycles
		}
		return stats.GeoMean(vals)
	}
	overhead := func(m *model.CPU) float64 {
		on := geomean(m, kernel.Defaults(m))
		off := geomean(m, kernel.BootParams{MitigationsOff: true}.Apply(m, kernel.Defaults(m)))
		return stats.Overhead(off, on)
	}

	bw := overhead(model.Broadwell())
	icx := overhead(model.IceLakeServer())
	zen3 := overhead(model.Zen3())

	if bw < 0.10 {
		t.Errorf("Broadwell overhead = %.1f%%, want >10%% (paper: >30%%)", bw*100)
	}
	if icx > 0.10 {
		t.Errorf("Ice Lake Server overhead = %.1f%%, want <10%% (paper: ~3%%)", icx*100)
	}
	if icx >= bw {
		t.Errorf("overheads should decline across generations: BW %.1f%% vs ICX %.1f%%", bw*100, icx*100)
	}
	if zen3 >= bw {
		t.Errorf("AMD Zen 3 (%.1f%%) should be far below Broadwell (%.1f%%)", zen3*100, bw*100)
	}
	t.Logf("LEBench geomean overhead: Broadwell %.1f%%, IceLakeServer %.1f%%, Zen3 %.1f%%",
		bw*100, icx*100, zen3*100)
}

// Mitigation attribution: disabling PTI must recover most of the
// Meltdown tax on Broadwell; disabling MDS must recover the verw tax.
func TestAttributionDirections(t *testing.T) {
	m := model.Broadwell()
	geomean := func(mit kernel.Mitigations) float64 {
		res, err := Run(m, mit)
		if err != nil {
			t.Fatal(err)
		}
		vals := make([]float64, len(res))
		for i, r := range res {
			vals[i] = r.Cycles
		}
		return stats.GeoMean(vals)
	}
	full := geomean(kernel.Defaults(m))
	noPTI := geomean(kernel.BootParams{NoPTI: true}.Apply(m, kernel.Defaults(m)))
	noMDS := geomean(kernel.BootParams{MDSOff: true}.Apply(m, kernel.Defaults(m)))
	if noPTI >= full {
		t.Errorf("disabling PTI did not speed up: %v -> %v", full, noPTI)
	}
	if noMDS >= full {
		t.Errorf("disabling MDS clear did not speed up: %v -> %v", full, noMDS)
	}
}
