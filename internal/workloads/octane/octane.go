package octane

import (
	"fmt"

	"spectrebench/internal/js"
	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
	"spectrebench/internal/stats"
)

// Config is one measured suite configuration: a JIT mitigation set plus
// the kernel policy knobs that matter to the browser process.
type Config struct {
	JS js.Mitigations
	// SeccompSSBD applies the ≤5.15 kernel default of SSBD-on-seccomp.
	SeccompSSBD bool
	// OtherOS applies the remaining default OS mitigations.
	OtherOS bool
}

// BrowserDefault is the shipping configuration: full JIT hardening on a
// default kernel.
func BrowserDefault() Config {
	return Config{JS: js.AllMitigations(), SeccompSSBD: true, OtherOS: true}
}

// kernelMitigations folds the config's OS knobs into a mitigation set.
func (cfg Config) kernelMitigations(m *model.CPU) kernel.Mitigations {
	var mit kernel.Mitigations
	if cfg.OtherOS {
		mit = kernel.Defaults(m)
	} else {
		mit = kernel.BootParams{MitigationsOff: true}.Apply(m, kernel.Defaults(m))
	}
	mit.SSBDSeccomp = cfg.SeccompSSBD
	return mit
}

// RunSuite executes every kernel under the configuration and returns
// the total cycle cost. Kernel checksums are validated.
func RunSuite(m *model.CPU, cfg Config) (float64, error) {
	var cycles []float64
	for _, k := range Kernels() {
		e := js.NewEngine(m, cfg.kernelMitigations(m), cfg.JS)
		res, err := e.Run(k.Source, 200_000_000)
		if err != nil {
			return 0, fmt.Errorf("octane %s: %w", k.Name, err)
		}
		if len(res.Reports) == 0 || res.Reports[len(res.Reports)-1] != k.Expect {
			return 0, fmt.Errorf("octane %s: checksum %v, want %d", k.Name, res.Reports, k.Expect)
		}
		cycles = append(cycles, float64(res.Cycles))
	}
	// Octane aggregates with a geometric mean of per-test scores;
	// cycles are inversely proportional to score.
	return stats.GeoMean(cycles), nil
}

// Part is one mitigation's share of the Octane slowdown.
type Part struct {
	Name     string
	Overhead float64 // fraction of the unmitigated cost
}

// Attribution is the Figure 3 decomposition for one CPU.
type Attribution struct {
	CPU       string
	Total     float64
	Parts     []Part
	Baseline  float64
	Mitigated float64
}

// Rung is one configuration of the Figure 3 strip-down ladder: Name is
// the mitigation whose cost is isolated by comparing this rung's suite
// cost against the previous one ("full" for the starting default).
type Rung struct {
	Name   string
	Config Config
}

// Rungs returns the ordered Figure 3 ladder: the browser default first,
// then each cumulative strip — index masking, object mitigations, the
// other JavaScript mitigations, SSBD, the remaining OS mitigations —
// ending fully unmitigated. Exposing the ladder lets callers schedule
// every rung as an independent (and cacheable) simulation cell.
func Rungs() []Rung {
	cfg := BrowserDefault()
	out := []Rung{{Name: "full", Config: cfg}}
	steps := []struct {
		name  string
		strip func(*Config)
	}{
		{"index masking", func(c *Config) { c.JS.IndexMasking = false }},
		{"object mitigations", func(c *Config) { c.JS.ObjectGuards = false }},
		{"other JavaScript", func(c *Config) { c.JS.PointerPoisoning = false; c.JS.ReducedTimer = false }},
		{"SSBD (seccomp)", func(c *Config) { c.SeccompSSBD = false }},
		{"other OS", func(c *Config) { c.OtherOS = false }},
	}
	for _, st := range steps {
		st.strip(&cfg)
		out = append(out, Rung{Name: st.name, Config: cfg})
	}
	return out
}

// AttributeCycles assembles the Figure 3 decomposition from per-rung
// suite costs given in Rungs() order.
func AttributeCycles(uarch string, cycles []float64) *Attribution {
	attr := &Attribution{CPU: uarch, Mitigated: cycles[0]}
	rungs := Rungs()
	prev := cycles[0]
	for i := 1; i < len(rungs); i++ {
		attr.Parts = append(attr.Parts, Part{Name: rungs[i].Name, Overhead: prev - cycles[i]})
		prev = cycles[i]
	}
	attr.Baseline = prev
	if attr.Baseline > 0 {
		attr.Total = (attr.Mitigated - attr.Baseline) / attr.Baseline
		for i := range attr.Parts {
			attr.Parts[i].Overhead /= attr.Baseline
		}
	}
	return attr
}

// Attribute reproduces Figure 3 on one CPU: starting from the browser
// default, successively disable index masking, object mitigations, the
// other JavaScript mitigations, SSBD, and the remaining OS mitigations,
// attributing the difference at each rung.
func Attribute(m *model.CPU) (*Attribution, error) {
	rungs := Rungs()
	cycles := make([]float64, len(rungs))
	for i, r := range rungs {
		v, err := RunSuite(m, r.Config)
		if err != nil {
			return nil, fmt.Errorf("octane rung %q: %w", r.Name, err)
		}
		cycles[i] = v
	}
	return AttributeCycles(m.Uarch, cycles), nil
}
