// Package octane provides an Octane-2-like JavaScript benchmark suite
// for the simulated JS engine: six kernels that mirror the composition
// of the original (scheduler simulation, constraint solving, tree
// manipulation, big-number arithmetic, stencil computation, and vector
// math), written in the engine's integer mini-JS dialect.
//
// Figure 3 of the paper decomposes the suite's slowdown into the JIT
// mitigations (index masking, object mitigations, other JavaScript) and
// the OS mitigations (SSBD via seccomp, other OS).
package octane

// Kernel is one benchmark of the suite.
type Kernel struct {
	Name string
	// Source is the mini-JS program. Each kernel report()s a checksum
	// as its last action; the harness validates it against Expect.
	Source string
	// Expect is the checksum the kernel must report.
	Expect int64
}

// Kernels returns the suite in canonical order.
func Kernels() []Kernel {
	return []Kernel{
		{Name: "richards", Source: richardsSrc, Expect: richardsExpect},
		{Name: "deltablue", Source: deltablueSrc, Expect: deltablueExpect},
		{Name: "splay", Source: splaySrc, Expect: splayExpect},
		{Name: "crypto", Source: cryptoSrc, Expect: cryptoExpect},
		{Name: "navier", Source: navierSrc, Expect: navierExpect},
		{Name: "raytrace", Source: raytraceSrc, Expect: raytraceExpect},
	}
}

// richards: a cooperative task scheduler with polymorphic task records —
// property-access heavy, like the original Richards benchmark.
const richardsSrc = `
function runTask(t, q) {
	// t: task record; q: work queue array
	var work = t.work;
	var id = t.id;
	var done = 0;
	while (work > 0 && done < 4) {
		q[(id * 7 + work) % q.length] = work;
		work = work - t.step;
		done = done + 1;
	}
	t.work = work;
	return done;
}

var queue = new Array(32);
var tasks = [
	{id: 1, work: 40, step: 1, prio: 3},
	{id: 2, work: 30, step: 2, prio: 1},
	{id: 3, work: 50, step: 1, prio: 2},
	{prio: 9, id: 4, work: 25, step: 3}  // different shape: polymorphic sites
];
var totalRuns = 0;
var live = 4;
while (live > 0) {
	live = 0;
	for (var i = 0; i < 4; i = i + 1) {
		var t = tasks[i];
		if (t.work > 0) {
			totalRuns = totalRuns + runTask(t, queue);
			if (t.work > 0) { live = live + 1; }
		}
	}
}
var check = totalRuns;
for (var i = 0; i < queue.length; i = i + 1) { check = check + queue[i]; }
report(check);
`

const richardsExpect = 390

// deltablue: one-way dataflow constraint propagation over a chain —
// objects with guarded property access, like DeltaBlue's planner.
const deltablueSrc = `
function propagate(vars, deps, n) {
	var changes = 0;
	for (var i = 1; i < n; i = i + 1) {
		var v = vars[i];
		var d = vars[deps[i]];
		var want = d.value + v.offset;
		if (v.value != want) {
			v.value = want;
			changes = changes + 1;
		}
	}
	return changes;
}

var n = 24;
var vars = new Array(n);
var deps = new Array(n);
for (var i = 0; i < n; i = i + 1) {
	vars[i] = {value: 0, offset: i % 5, stay: 0};
	deps[i] = (i * 3) % n;
	if (deps[i] >= i) { deps[i] = 0; }
}
vars[0].value = 11;
var total = 0;
for (var round = 0; round < 12; round = round + 1) {
	total = total + propagate(vars, deps, n);
}
var check = total;
for (var i = 0; i < n; i = i + 1) { check = check + vars[i].value; }
report(check);
`

const deltablueExpect = 362

// splay: binary search tree built from object nodes with recursive
// insert/lookup — pointer-chasing property loads.
const splaySrc = `
function insert(nodes, root, key, free) {
	// nodes: arena of {k, l, r}; indexes as links; 0 = null (slot 0 unused)
	var cur = root;
	while (true) {
		var node = nodes[cur];
		if (key < node.k) {
			if (node.l == 0) { node.l = free; return free; }
			cur = node.l;
		} else {
			if (node.r == 0) { node.r = free; return free; }
			cur = node.r;
		}
	}
	return 0;
}

function depthOf(nodes, root, key) {
	var cur = root;
	var d = 0;
	while (cur != 0) {
		var node = nodes[cur];
		if (key == node.k) { return d; }
		if (key < node.k) { cur = node.l; } else { cur = node.r; }
		d = d + 1;
	}
	return 0 - 1;
}

var cap = 64;
var nodes = new Array(cap);
for (var i = 0; i < cap; i = i + 1) { nodes[i] = {k: 0, l: 0, r: 0}; }
nodes[1] = {k: 500, l: 0, r: 0};
var free = 2;
var seed = 7;
while (free < cap) {
	seed = (seed * 131 + 41) % 1000;
	var slot = insert(nodes, 1, seed, free);
	nodes[slot].k = seed;
	free = free + 1;
}
var check = 0;
seed = 7;
for (var i = 0; i < 40; i = i + 1) {
	seed = (seed * 131 + 41) % 1000;
	check = check + depthOf(nodes, 1, seed);
}
report(check);
`

const splayExpect = 199

// crypto: multi-word modular arithmetic over digit arrays — the
// array-indexing-dominated profile of Octane's crypto.
const cryptoSrc = `
function mulmod(a, b, m, digits) {
	// (a * b) % m over base-10000 digit arrays of length digits.
	var result = 0;
	var carry = 0;
	var acc = new Array(digits * 2);
	for (var i = 0; i < digits; i = i + 1) {
		carry = 0;
		for (var j = 0; j < digits; j = j + 1) {
			var cur = acc[i + j] + a[i] * b[j] + carry;
			acc[i + j] = cur % 10000;
			carry = cur / 10000;
		}
		acc[i + digits] = acc[i + digits] + carry;
	}
	// Fold the accumulator into a scalar mod m.
	var fold = 0;
	for (var i = digits * 2 - 1; i >= 0; i = i - 1) {
		fold = (fold * 10000 + acc[i]) % m;
	}
	return fold;
}

var digits = 6;
var a = new Array(digits);
var b = new Array(digits);
var seed = 3;
for (var i = 0; i < digits; i = i + 1) {
	seed = (seed * 377 + 91) % 10000;
	a[i] = seed;
	seed = (seed * 377 + 91) % 10000;
	b[i] = seed;
}
var check = 0;
for (var round = 0; round < 6; round = round + 1) {
	check = (check + mulmod(a, b, 99991, digits)) % 1000000;
	a[round % digits] = (a[round % digits] + round) % 10000;
}
report(check);
`

const cryptoExpect = 384106

// navier: a fixed-point diffusion stencil over a 2-D grid — the dense
// array traffic of NavierStokes.
const navierSrc = `
function step(src, dst, w, h) {
	for (var y = 1; y < h - 1; y = y + 1) {
		for (var x = 1; x < w - 1; x = x + 1) {
			var i = y * w + x;
			var v = src[i] * 4 + src[i - 1] + src[i + 1] + src[i - w] + src[i + w];
			dst[i] = v / 8;
		}
	}
}

var w = 14;
var h = 14;
var a = new Array(w * h);
var b = new Array(w * h);
for (var i = 0; i < w * h; i = i + 1) { a[i] = (i * 37) % 256; }
for (var iter = 0; iter < 6; iter = iter + 1) {
	step(a, b, w, h);
	step(b, a, w, h);
}
var check = 0;
for (var i = 0; i < w * h; i = i + 1) { check = check + a[i]; }
report(check);
`

const navierExpect = 20199

// raytrace: fixed-point 3-vector math over point objects — object
// construction and property math like the RayTrace kernel.
const raytraceSrc = `
function dot(p, q) {
	return p.x * q.x + p.y * q.y + p.z * q.z;
}
function scaleAdd(p, q, s) {
	return {x: p.x + q.x * s / 256, y: p.y + q.y * s / 256, z: p.z + q.z * s / 256};
}

var origin = {x: 10, y: 20, z: 30};
var dir = {x: 256, y: 128, z: 64};
var check = 0;
var p = origin;
for (var bounce = 0; bounce < 48; bounce = bounce + 1) {
	p = scaleAdd(p, dir, bounce * 16);
	var d = dot(p, dir);
	check = (check + d) % 1000003;
	if (d % 3 == 0) {
		dir = {x: dir.y, y: dir.z, z: dir.x};
	}
}
report(check);
`

const raytraceExpect = 385047
