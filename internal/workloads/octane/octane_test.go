package octane

import (
	"testing"

	"spectrebench/internal/js"
	"spectrebench/internal/model"
)

// Every kernel must produce its checksum in the interpreter AND in the
// JIT, hardened and unhardened.
func TestKernelChecksums(t *testing.T) {
	m := model.IceLakeServer()
	for _, k := range Kernels() {
		prog, err := js.Parse(k.Source)
		if err != nil {
			t.Fatalf("%s: parse: %v", k.Name, err)
		}
		ip := js.NewInterp(prog)
		if err := ip.Run(); err != nil {
			t.Fatalf("%s: interp: %v", k.Name, err)
		}
		rep := ip.Reports()
		if len(rep) == 0 || rep[len(rep)-1] != k.Expect {
			t.Errorf("%s: interp checksum %v, want %d", k.Name, rep, k.Expect)
		}
	}
	// The JIT path is covered by RunSuite's own validation.
	if _, err := RunSuite(m, BrowserDefault()); err != nil {
		t.Fatalf("hardened suite: %v", err)
	}
	if _, err := RunSuite(m, Config{}); err != nil {
		t.Fatalf("unhardened suite: %v", err)
	}
}

func TestFigure3Shape(t *testing.T) {
	// The paper: Octane overhead stays in the 15-25% range on every
	// CPU, roughly half from JS mitigations (index masking ~4%, object
	// mitigations ~6%) and the rest from SSBD and other OS effects.
	for _, m := range []*model.CPU{model.Broadwell(), model.IceLakeServer(), model.Zen3()} {
		attr, err := Attribute(m)
		if err != nil {
			t.Fatalf("%s: %v", m.Uarch, err)
		}
		if attr.Total < 0.08 || attr.Total > 0.45 {
			t.Errorf("%s: Octane overhead = %.1f%%, paper says ~15-25%%", m.Uarch, attr.Total*100)
		}
		parts := map[string]float64{}
		for _, p := range attr.Parts {
			parts[p.Name] = p.Overhead
		}
		if parts["index masking"] <= 0 {
			t.Errorf("%s: index masking share = %.3f, want positive", m.Uarch, parts["index masking"])
		}
		if parts["object mitigations"] <= 0 {
			t.Errorf("%s: object mitigations share = %.3f, want positive", m.Uarch, parts["object mitigations"])
		}
		if parts["SSBD (seccomp)"] <= 0 {
			t.Errorf("%s: SSBD share = %.3f, want positive", m.Uarch, parts["SSBD (seccomp)"])
		}
		t.Logf("%s: total %.1f%% | masking %.1f%% objects %.1f%% otherJS %.1f%% ssbd %.1f%% otherOS %.1f%%",
			m.Uarch, attr.Total*100, parts["index masking"]*100, parts["object mitigations"]*100,
			parts["other JavaScript"]*100, parts["SSBD (seccomp)"]*100, parts["other OS"]*100)
	}
}

// The paper's persistence finding: unlike the OS boundary, the browser
// overhead does NOT collapse on new hardware — no JS mitigation has
// been moved to silicon.
func TestBrowserOverheadPersistsAcrossGenerations(t *testing.T) {
	old, err := Attribute(model.Broadwell())
	if err != nil {
		t.Fatal(err)
	}
	newest, err := Attribute(model.IceLakeServer())
	if err != nil {
		t.Fatal(err)
	}
	if newest.Total < old.Total/3 {
		t.Errorf("browser overhead collapsed on new hardware (%.1f%% -> %.1f%%): JS mitigations have no hardware fix",
			old.Total*100, newest.Total*100)
	}
}
