// Package stats implements the measurement methodology of §4.1: run each
// benchmark configuration repeatedly, tracking the mean and a 95%
// confidence interval, and stop once the interval is tight enough. It
// also provides the geometric mean used to aggregate LEBench.
package stats

import (
	"fmt"
	"math"
)

// Sample accumulates observations with streaming mean/variance (Welford).
type Sample struct {
	n    int
	mean float64
	m2   float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean.
func (s *Sample) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance.
func (s *Sample) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// CI95 returns the half-width of the 95% confidence interval of the mean
// using the Student t distribution.
func (s *Sample) CI95() float64 {
	if s.n < 2 {
		return math.Inf(1)
	}
	return tCritical95(s.n-1) * s.StdDev() / math.Sqrt(float64(s.n))
}

// RelCI95 returns CI95 as a fraction of the mean (∞ if the mean is 0).
func (s *Sample) RelCI95() float64 {
	m := math.Abs(s.mean)
	if m == 0 {
		return math.Inf(1)
	}
	return s.CI95() / m
}

func (s *Sample) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean(), s.CI95(), s.N())
}

// tCritical95 returns the two-sided 95% critical value of Student's t
// for the given degrees of freedom.
func tCritical95(df int) float64 {
	// Table for small df; converges to the normal quantile.
	table := []float64{
		0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
		2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110,
		2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
		2.052, 2.048, 2.045, 2.042,
	}
	if df <= 0 {
		return math.Inf(1)
	}
	if df < len(table) {
		return table[df]
	}
	switch {
	case df < 40:
		return 2.030
	case df < 60:
		return 2.009
	case df < 120:
		return 1.990
	default:
		return 1.960
	}
}

// RunUntil repeatedly invokes measure, accumulating results, until the
// relative 95% CI is at most relCI (e.g. 0.01 for ±1%) or maxRuns is
// reached; it always performs at least minRuns. This is the paper's
// "run each configuration many times, stopping once the error was small
// enough" methodology.
func RunUntil(minRuns, maxRuns int, relCI float64, measure func() float64) *Sample {
	if minRuns < 2 {
		minRuns = 2
	}
	if maxRuns < minRuns {
		maxRuns = minRuns
	}
	s := &Sample{}
	for i := 0; i < maxRuns; i++ {
		s.Add(measure())
		if i+1 >= minRuns && s.RelCI95() <= relCI {
			break
		}
	}
	return s
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values are skipped (and an all-skipped input returns 0).
func GeoMean(xs []float64) float64 {
	var sum float64
	n := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		sum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Overhead returns the relative slowdown of measured versus baseline, as
// a fraction: (measured-baseline)/baseline.
func Overhead(baseline, measured float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (measured - baseline) / baseline
}

// Noise is a small deterministic pseudo-random perturbation source used
// to exercise the adaptive-sampling methodology. It is a SplitMix64
// stream; amplitude is the maximum relative perturbation.
type Noise struct {
	state     uint64
	amplitude float64
}

// NewNoise returns a noise source with the given seed and relative
// amplitude (e.g. 0.02 for ±2%, matching the paper's observed run-to-run
// variation).
func NewNoise(seed uint64, amplitude float64) *Noise {
	return &Noise{state: seed, amplitude: amplitude}
}

func (n *Noise) next() uint64 {
	n.state += 0x9e3779b97f4a7c15
	z := n.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Perturb returns x scaled by a factor in [1-amplitude, 1+amplitude].
func (n *Noise) Perturb(x float64) float64 {
	if n == nil || n.amplitude == 0 {
		return x
	}
	u := float64(n.next()>>11) / float64(1<<53) // [0,1)
	return x * (1 + n.amplitude*(2*u-1))
}
