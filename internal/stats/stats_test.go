package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSampleMeanVariance(t *testing.T) {
	s := &Sample{}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("mean = %g", s.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if math.Abs(s.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("variance = %g", s.Variance())
	}
}

func TestCI95Behaviour(t *testing.T) {
	s := &Sample{}
	s.Add(10)
	if !math.IsInf(s.CI95(), 1) {
		t.Error("CI of one observation must be infinite")
	}
	for i := 0; i < 99; i++ {
		s.Add(10)
	}
	if s.CI95() != 0 {
		t.Errorf("CI of constant data = %g, want 0", s.CI95())
	}

	// CI shrinks with more data.
	a, b := &Sample{}, &Sample{}
	vals := []float64{9, 11, 10, 12, 8, 10, 9, 11}
	for _, v := range vals {
		a.Add(v)
	}
	for i := 0; i < 8; i++ {
		for _, v := range vals {
			b.Add(v)
		}
	}
	if b.CI95() >= a.CI95() {
		t.Errorf("CI did not shrink: %g → %g", a.CI95(), b.CI95())
	}
}

func TestTCriticalMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df < 300; df++ {
		v := tCritical95(df)
		if v > prev {
			t.Fatalf("t-critical increased at df=%d: %g > %g", df, v, prev)
		}
		prev = v
	}
	if tCritical95(1000) != 1.960 {
		t.Errorf("large-df critical = %g", tCritical95(1000))
	}
}

func TestRunUntilStopsEarlyOnTightCI(t *testing.T) {
	calls := 0
	s := RunUntil(3, 1000, 0.01, func() float64 {
		calls++
		return 100 // zero variance
	})
	if calls != 3 {
		t.Errorf("calls = %d, want 3 (minRuns)", calls)
	}
	if s.Mean() != 100 {
		t.Errorf("mean = %g", s.Mean())
	}
}

func TestRunUntilKeepsGoingOnNoisyData(t *testing.T) {
	n := NewNoise(7, 0.10)
	calls := 0
	s := RunUntil(3, 500, 0.005, func() float64 {
		calls++
		return n.Perturb(100)
	})
	if calls <= 3 {
		t.Errorf("noisy data should need more than minRuns, got %d", calls)
	}
	if s.RelCI95() > 0.005 && calls < 500 {
		t.Error("stopped without meeting the CI target")
	}
	if math.Abs(s.Mean()-100) > 3 {
		t.Errorf("mean = %g, want ≈100", s.Mean())
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Errorf("geomean(1,100) = %g", g)
	}
	if g := GeoMean([]float64{4, 4, 4}); math.Abs(g-4) > 1e-9 {
		t.Errorf("geomean const = %g", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("geomean empty = %g", g)
	}
	if g := GeoMean([]float64{-5, 0, 8}); math.Abs(g-8) > 1e-9 {
		t.Errorf("geomean skips nonpositive: %g", g)
	}
}

func TestOverhead(t *testing.T) {
	if o := Overhead(100, 130); math.Abs(o-0.30) > 1e-12 {
		t.Errorf("overhead = %g", o)
	}
	if o := Overhead(100, 90); math.Abs(o+0.10) > 1e-12 {
		t.Errorf("speedup = %g", o)
	}
	if Overhead(0, 5) != 0 {
		t.Error("zero baseline must not divide")
	}
}

func TestNoiseDeterministicAndBounded(t *testing.T) {
	a := NewNoise(42, 0.02)
	b := NewNoise(42, 0.02)
	for i := 0; i < 100; i++ {
		x, y := a.Perturb(1000), b.Perturb(1000)
		if x != y {
			t.Fatal("noise not deterministic for equal seeds")
		}
		if x < 980 || x > 1020 {
			t.Fatalf("perturbation out of bounds: %g", x)
		}
	}
	c := NewNoise(43, 0.02)
	same := true
	for i := 0; i < 10; i++ {
		if a.Perturb(1000) != c.Perturb(1000) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
	var nilNoise *Noise
	if nilNoise.Perturb(5) != 5 {
		t.Error("nil noise must be identity")
	}
}

// Property: mean of the sample always lies within [min, max] of inputs.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		s := &Sample{}
		lo, hi := math.Inf(1), math.Inf(-1)
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				continue
			}
			s.Add(x)
			lo, hi = math.Min(lo, x), math.Max(hi, x)
			n++
		}
		if n == 0 {
			return true
		}
		const eps = 1e-9
		return s.Mean() >= lo-eps-math.Abs(lo)*1e-9 && s.Mean() <= hi+eps+math.Abs(hi)*1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
