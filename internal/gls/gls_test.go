package gls

import (
	"sync"
	"testing"
)

func TestIDStableWithinGoroutine(t *testing.T) {
	a, b := ID(), ID()
	if a == 0 {
		t.Fatal("ID() = 0, want nonzero")
	}
	if a != b {
		t.Fatalf("ID changed within one goroutine: %d then %d", a, b)
	}
}

func TestIDDistinctAcrossGoroutines(t *testing.T) {
	const n = 16
	ids := make([]uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = ID()
		}(i)
	}
	wg.Wait()
	seen := map[uint64]bool{ID(): true}
	for i, id := range ids {
		if id == 0 {
			t.Fatalf("goroutine %d: ID() = 0", i)
		}
		if seen[id] {
			t.Fatalf("goroutine %d: duplicate ID %d", i, id)
		}
		seen[id] = true
	}
}
