// Package gls provides the one goroutine-identity primitive the
// simulation-scope layer needs: a stable numeric ID for the calling
// goroutine. The runtime does not expose goroutine IDs on purpose, so
// this parses the header line of runtime.Stack — the documented,
// stable-for-a-decade "goroutine N [state]:" format.
//
// Parsing costs ~1µs per call, which is invisible at core-construction
// frequency but not on a scheduler's submit/wait/steal path. Long-lived
// goroutines that make many identity-keyed lookups — the engine's
// workers above all — should therefore call ID once, keep the result,
// and use the *G variants of the simscope API (EnterG, CurrentG) plus
// the engine's internal id-threading instead of re-parsing at every
// scope entry. ID itself stays allocation-free: the stack snapshot
// lands in a stack buffer and only the leading decimal is read.
package gls

import "runtime"

// ID returns the calling goroutine's ID.
//
// Callers on hot paths should cache the result for the lifetime of the
// goroutine rather than re-parsing: the value is stable from the
// goroutine's birth to its exit and is never reused while the goroutine
// is alive.
func ID() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	// Skip "goroutine " (10 bytes) and parse the decimal that follows.
	var id uint64
	for i := 10; i < n; i++ {
		c := buf[i]
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
