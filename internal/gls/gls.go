// Package gls provides the one goroutine-identity primitive the
// simulation-scope layer needs: a stable numeric ID for the calling
// goroutine. The runtime does not expose goroutine IDs on purpose, so
// this parses the header line of runtime.Stack — the documented,
// stable-for-a-decade "goroutine N [state]:" format. The cost (~1µs) is
// paid only at scope entry/exit and core construction, never inside the
// simulator's cycle loop.
package gls

import "runtime"

// ID returns the calling goroutine's ID.
func ID() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	// Skip "goroutine " (10 bytes) and parse the decimal that follows.
	var id uint64
	for i := 10; i < n; i++ {
		c := buf[i]
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
