package model

import "testing"

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("len(All()) = %d, want 8", len(all))
	}
	// Paper order: 5 Intel then 3 AMD.
	for i, c := range all[:5] {
		if c.Vendor != Intel {
			t.Errorf("All()[%d] = %v, want Intel", i, c)
		}
	}
	for i, c := range all[5:] {
		if c.Vendor != AMD {
			t.Errorf("All()[%d] = %v, want AMD", i+5, c)
		}
	}
}

func TestAccessorsMatchRegistry(t *testing.T) {
	cases := []struct {
		got  *CPU
		name string
	}{
		{Broadwell(), "Broadwell"},
		{SkylakeClient(), "Skylake Client"},
		{CascadeLake(), "Cascade Lake"},
		{IceLakeClient(), "Ice Lake Client"},
		{IceLakeServer(), "Ice Lake Server"},
		{Zen(), "Zen"},
		{Zen2(), "Zen 2"},
		{Zen3(), "Zen 3"},
	}
	for _, c := range cases {
		if c.got == nil {
			t.Fatalf("%s accessor returned nil", c.name)
		}
		if c.got.Uarch != c.name {
			t.Errorf("accessor %s returned %s", c.name, c.got.Uarch)
		}
		if ByName(c.name) != c.got {
			t.Errorf("ByName(%q) mismatch", c.name)
		}
	}
	if ByName("Alder Lake") != nil {
		t.Error("unknown uarch should return nil")
	}
}

// Table 2 checks: catalogue data.
func TestTable2Catalogue(t *testing.T) {
	cases := []struct {
		cpu    *CPU
		model  string
		year   int
		powerW int
		clock  float64
		cores  int
		smt    bool
	}{
		{Broadwell(), "E5-2640v4", 2014, 90, 2.4, 10, true},
		{SkylakeClient(), "i7-6600U", 2015, 15, 2.6, 2, true},
		{CascadeLake(), "Xeon Silver 4210R", 2019, 100, 2.4, 10, true},
		{IceLakeClient(), "i5-10351G1", 2019, 15, 1.0, 4, true},
		{IceLakeServer(), "Xeon Gold 6354", 2021, 205, 3.0, 18, true},
		{Zen(), "Ryzen 3 1200", 2017, 65, 3.1, 4, false}, // the only non-SMT part
		{Zen2(), "EPYC 7452", 2019, 155, 2.35, 32, true},
		{Zen3(), "Ryzen 5 5600X", 2020, 65, 3.7, 6, true},
	}
	for _, c := range cases {
		if c.cpu.Model != c.model || c.cpu.Year != c.year || c.cpu.PowerW != c.powerW ||
			c.cpu.ClockGHz != c.clock || c.cpu.Cores != c.cores || c.cpu.SMT != c.smt {
			t.Errorf("%s: catalogue mismatch: %+v", c.cpu.Uarch, c.cpu)
		}
	}
}

// Vulnerability profile checks (drives Table 1).
func TestVulnerabilityProfiles(t *testing.T) {
	// Meltdown and L1TF: only Broadwell and Skylake Client.
	for _, c := range All() {
		wantMeltdown := c.Uarch == "Broadwell" || c.Uarch == "Skylake Client"
		if c.Vulns.Meltdown != wantMeltdown {
			t.Errorf("%s: Meltdown = %v, want %v", c.Uarch, c.Vulns.Meltdown, wantMeltdown)
		}
		if c.Vulns.L1TF != wantMeltdown {
			t.Errorf("%s: L1TF = %v, want %v", c.Uarch, c.Vulns.L1TF, wantMeltdown)
		}
		// MDS: Broadwell, Skylake, Cascade Lake.
		wantMDS := wantMeltdown || c.Uarch == "Cascade Lake"
		if c.Vulns.MDS != wantMDS {
			t.Errorf("%s: MDS = %v, want %v", c.Uarch, c.Vulns.MDS, wantMDS)
		}
		// Everyone: Spectre V1, Spectre V2, SSB, LazyFP default handling.
		if !c.Vulns.SpectreV1.SpectreV1 || !c.Vulns.SpectreV2 || !c.Vulns.SSB || !c.Vulns.LazyFP {
			t.Errorf("%s: universal vulnerability flags wrong: %+v", c.Uarch, c.Vulns)
		}
	}
}

func TestSpecCaps(t *testing.T) {
	// eIBRS: Cascade Lake and both Ice Lakes.
	for _, c := range All() {
		wantEIBRS := c.Uarch == "Cascade Lake" || c.Uarch == "Ice Lake Client" || c.Uarch == "Ice Lake Server"
		if c.Spec.EIBRS != wantEIBRS {
			t.Errorf("%s: EIBRS = %v, want %v", c.Uarch, c.Spec.EIBRS, wantEIBRS)
		}
	}
	if Zen().Spec.IBRS {
		t.Error("Zen must not support IBRS (Table 10 N/A)")
	}
	for _, c := range []*CPU{Broadwell(), SkylakeClient(), Zen2(), Zen3()} {
		if !c.Spec.IBRSBlocksAllIndirect {
			t.Errorf("%s: legacy IBRS should block all indirect prediction", c.Uarch)
		}
	}
	if !IceLakeClient().Spec.IBRSBlocksKernelKernel {
		t.Error("Ice Lake Client quirk missing")
	}
	if Zen3().Spec.BTBHistoryDepth <= 128 {
		t.Error("Zen 3 history depth must exceed the 128-branch fill loop")
	}
	for _, c := range All() {
		if c.Uarch != "Zen 3" && c.Spec.BTBHistoryDepth > 128 {
			t.Errorf("%s: history depth should be shallow", c.Uarch)
		}
	}
}

// Table 3 cost checks.
func TestTable3Costs(t *testing.T) {
	cases := []struct {
		cpu                      *CPU
		syscall, sysret, swapCR3 uint64
	}{
		{Broadwell(), 49, 40, 206},
		{SkylakeClient(), 42, 42, 191},
		{CascadeLake(), 70, 43, 0},
		{IceLakeClient(), 21, 29, 0},
		{IceLakeServer(), 45, 32, 0},
		{Zen(), 63, 53, 0},
		{Zen2(), 53, 46, 0},
		{Zen3(), 83, 55, 0},
	}
	for _, c := range cases {
		if c.cpu.Costs.Syscall != c.syscall || c.cpu.Costs.Sysret != c.sysret || c.cpu.Costs.SwapCR3 != c.swapCR3 {
			t.Errorf("%s: table 3 costs = %d/%d/%d, want %d/%d/%d", c.cpu.Uarch,
				c.cpu.Costs.Syscall, c.cpu.Costs.Sysret, c.cpu.Costs.SwapCR3,
				c.syscall, c.sysret, c.swapCR3)
		}
	}
}

// Table 4: verw on vulnerable parts; legacy cost in the tens elsewhere.
func TestTable4Verw(t *testing.T) {
	want := map[string]uint64{"Broadwell": 610, "Skylake Client": 518, "Cascade Lake": 458}
	for _, c := range All() {
		if w, vulnerable := want[c.Uarch]; vulnerable {
			if c.Costs.VerwClear != w {
				t.Errorf("%s: verw = %d, want %d", c.Uarch, c.Costs.VerwClear, w)
			}
		} else if c.Vulns.MDS {
			t.Errorf("%s should not be MDS vulnerable", c.Uarch)
		}
		if c.Costs.VerwLegacy == 0 || c.Costs.VerwLegacy > 60 {
			t.Errorf("%s: legacy verw = %d, want tens of cycles", c.Uarch, c.Costs.VerwLegacy)
		}
	}
}

// Tables 5-8 spot checks.
func TestTables5Through8(t *testing.T) {
	bw := Broadwell()
	if bw.Costs.IndirectBase != 16 || bw.Costs.IBRSDelta != 32 || bw.Costs.RetpolineGeneric != 28 {
		t.Errorf("Broadwell table 5: %+v", bw.Costs)
	}
	if bw.Costs.RetpolineAMDOK {
		t.Error("AMD retpoline must not apply on Intel")
	}
	z2 := Zen2()
	if !z2.Costs.RetpolineAMDOK || z2.Costs.RetpolineAMD != 0 {
		t.Errorf("Zen 2 AMD retpoline delta = %d, want 0", z2.Costs.RetpolineAMD)
	}
	ibpb := map[string]uint64{
		"Broadwell": 5600, "Skylake Client": 4500, "Cascade Lake": 340,
		"Ice Lake Client": 2500, "Ice Lake Server": 840,
		"Zen": 7400, "Zen 2": 1100, "Zen 3": 800,
	}
	for _, c := range All() {
		if c.Costs.IBPB != ibpb[c.Uarch] {
			t.Errorf("%s: IBPB = %d, want %d", c.Uarch, c.Costs.IBPB, ibpb[c.Uarch])
		}
	}
	rsb := map[string]uint64{
		"Broadwell": 130, "Skylake Client": 130, "Cascade Lake": 120,
		"Ice Lake Client": 40, "Ice Lake Server": 69,
		"Zen": 114, "Zen 2": 68, "Zen 3": 94,
	}
	lfence := map[string]uint64{
		"Broadwell": 28, "Skylake Client": 20, "Cascade Lake": 15,
		"Ice Lake Client": 8, "Ice Lake Server": 13,
		"Zen": 48, "Zen 2": 4, "Zen 3": 30,
	}
	for _, c := range All() {
		if c.Costs.RSBFill != rsb[c.Uarch] {
			t.Errorf("%s: RSB fill = %d, want %d", c.Uarch, c.Costs.RSBFill, rsb[c.Uarch])
		}
		if c.Costs.Lfence != lfence[c.Uarch] {
			t.Errorf("%s: lfence = %d, want %d", c.Uarch, c.Costs.Lfence, lfence[c.Uarch])
		}
	}
}

// SSBD penalty trends worse on newer parts (Figure 5's observation).
func TestSSBDTrendsWorse(t *testing.T) {
	if !(Broadwell().Costs.SSBDForwardStall < IceLakeServer().Costs.SSBDForwardStall) {
		t.Error("Intel SSBD stall should grow across generations")
	}
	if !(Zen().Costs.SSBDForwardStall < Zen3().Costs.SSBDForwardStall) {
		t.Error("AMD SSBD stall should grow across generations")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != 8 {
		t.Fatalf("Names() = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted at %d: %v", i, names)
		}
	}
}

func TestEIBRSBimodal(t *testing.T) {
	for _, c := range []*CPU{CascadeLake(), IceLakeClient(), IceLakeServer()} {
		if c.Spec.EIBRSBimodalPeriod < 8 || c.Spec.EIBRSBimodalPeriod > 20 {
			t.Errorf("%s: bimodal period = %d, paper says 8-20", c.Uarch, c.Spec.EIBRSBimodalPeriod)
		}
		if c.Spec.EIBRSBimodalExtra != 210 {
			t.Errorf("%s: bimodal extra = %d, paper says ~210", c.Uarch, c.Spec.EIBRSBimodalExtra)
		}
	}
	if Broadwell().Spec.EIBRSBimodalPeriod != 0 {
		t.Error("non-eIBRS parts must not have bimodal entries")
	}
}
