// Package model describes the eight CPU microarchitectures the paper
// evaluates (Table 2): their vulnerability profiles (which decide the
// default mitigations of Table 1), their branch-prediction behaviour
// (which decides the speculation matrices of Tables 9 and 10), and their
// per-instruction cycle costs (calibrated from the paper's Tables 3-8).
package model

import (
	"fmt"
	"sort"
)

// Vendor is a CPU manufacturer.
type Vendor string

// CPU vendors evaluated by the paper.
const (
	Intel Vendor = "Intel"
	AMD   Vendor = "AMD"
)

// Vulns records which transient-execution attacks a microarchitecture is
// susceptible to in hardware. An unset flag means the part is fixed (or
// was never vulnerable) and the corresponding software mitigation is not
// required.
type Vulns struct {
	Meltdown bool // rogue data cache load → needs page table isolation
	L1TF     bool // L1 terminal fault → needs PTE inversion + L1 flush on VM entry
	LazyFP   bool // lazy FPU switching is unsafe → eager FPU used (Table 1: all parts)
	// LazyFPLeak marks parts where transient FPU access actually leaks
	// stale registers (the pre-fix Intel parts). Eager FPU is the
	// default everywhere regardless, because it is also faster (§3.1).
	LazyFPLeak bool
	SpectreV1
	SpectreV2 bool // branch target injection → retpoline / (e)IBRS + IBPB + RSB fill
	SSB       bool // speculative store bypass → SSBD opt-in
	MDS       bool // µarch data sampling → VERW clears (+ SMT off for full safety)
}

// SpectreV1 is separate because every CPU in the study is vulnerable;
// the field exists so the zero Vulns value is visibly incomplete in
// tests rather than silently "safe".
type SpectreV1 struct {
	SpectreV1 bool
}

// SpecCaps describes the branch-predictor and speculation behaviour
// observed in §6 of the paper.
type SpecCaps struct {
	// IBRS reports whether the IA32_SPEC_CTRL.IBRS bit is implemented.
	// (Zen does not support it; Table 10 marks it N/A.)
	IBRS bool
	// EIBRS reports enhanced IBRS: set once at boot, no per-entry MSR
	// write needed, and the BTB is partitioned/tagged by privilege mode
	// even when the legacy IBRS bit is clear (Table 9: user→kernel
	// blocked on Cascade Lake and both Ice Lakes).
	EIBRS bool
	// IBRSBlocksAllIndirect reports that enabling legacy IBRS disables
	// indirect branch prediction in *all* modes (the pre-eIBRS
	// behaviour the paper found on Broadwell, Skylake, Zen 2, Zen 3 —
	// Table 10 rows that are entirely blank).
	IBRSBlocksAllIndirect bool
	// IBRSBlocksKernelKernel is the Ice Lake Client quirk: with IBRS
	// enabled, kernel→kernel BTB training stops working while
	// user→user still predicts (Table 10).
	IBRSBlocksKernelKernel bool
	// BTBHistoryDepth is how many recent branches the BTB index hash
	// folds in. Depths beyond the classic 128-branch history-fill loop
	// make cross-training infeasible — the paper's Zen 3 observation.
	BTBHistoryDepth int
	// SSBDImplemented reports whether SSBD is available.
	SSBDImplemented bool
	// EIBRSBimodalPeriod, when nonzero, reproduces the paper's
	// observation (§6.2.2) that with eIBRS enabled roughly one in every
	// 8-20 kernel entries takes ~210 extra cycles. The value is the
	// entry period of the slow case.
	EIBRSBimodalPeriod int
	// EIBRSBimodalExtra is the extra cycle cost of a slow kernel entry.
	EIBRSBimodalExtra uint64
}

// Costs holds per-instruction cycle costs. Mitigation-relevant values
// are taken directly from the paper's Tables 3-8 for each CPU.
type Costs struct {
	// Table 3.
	Syscall uint64 // syscall instruction
	Sysret  uint64 // sysret instruction
	SwapCR3 uint64 // mov %cr3 (page table isolation); 0 ⇒ not measured by the paper (not vulnerable), a generic cost is used if PTI is forced
	// Table 4.
	VerwClear  uint64 // verw with MD_CLEAR microcode (vulnerable parts)
	VerwLegacy uint64 // verw's legacy segmentation behaviour only
	// Table 5.
	IndirectBase     uint64 // correctly-predicted indirect branch
	IBRSDelta        uint64 // extra per indirect branch with legacy IBRS on
	RetpolineGeneric uint64 // extra for a generic retpoline sequence
	RetpolineAMD     uint64 // extra for lfence+jmp retpoline (0 on Intel ⇒ N/A)
	RetpolineAMDOK   bool   // whether the AMD retpoline variant applies
	// Table 6.
	IBPB uint64 // wrmsr IA32_PRED_CMD (full barrier)
	// Table 7.
	RSBFill uint64 // stuffing the return stack buffer
	// Table 8.
	Lfence uint64 // lfence in a loop
	// Not in the tables: supporting costs.
	WrmsrSpecCtrl     uint64 // wrmsr to IA32_SPEC_CTRL (per-entry IBRS toggle)
	Mispredict        uint64 // branch mispredict recovery
	ALU               uint64 // simple ALU op
	Mul               uint64
	Div               uint64 // also counts divider-active cycles
	CacheL1           uint64 // L1 hit latency
	CacheL2           uint64
	CacheLLC          uint64
	Mem               uint64 // full miss
	TLBMiss           uint64 // page walk
	Xsave             uint64 // xsave/xrstor of FPU state
	FPTrap            uint64 // #NM trap round trip for lazy FPU switching
	Swapgs            uint64
	Trap              uint64 // exception entry (page fault etc.)
	Iret              uint64
	VMEntry           uint64 // vm entry (hypervisor → guest)
	VMExit            uint64 // vm exit (guest → hypervisor)
	L1Flush           uint64 // explicit L1 flush (L1TF mitigation)
	SSBDForwardStall  uint64 // extra cycles per blocked store→load forward with SSBD on
	FPU               uint64 // FP add/mul
	FDiv              uint64
	StoreForwardCycle uint64 // store-to-load forwarding latency (SSBD off)
}

// CPU is one evaluated processor (a row of Table 2 plus behaviour).
type CPU struct {
	Vendor    Vendor
	Model     string // market name, e.g. "E5-2640v4"
	Uarch     string // microarchitecture, e.g. "Broadwell"
	Year      int
	PowerW    int
	ClockGHz  float64
	Cores     int
	SMT       bool // 2-way SMT ("hyperthreads")
	Vulns     Vulns
	Spec      SpecCaps
	Costs     Costs
	RSBDepth  int
	SpecDepth int // transient-execution window in instructions
}

// Key returns the canonical lookup key (the microarchitecture name).
func (c *CPU) Key() string { return c.Uarch }

// MitigationSupport summarises which mitigation mechanisms a CPU needs
// and which requests it can actually honor — the per-uarch facts the
// kernel's Table-1 auto-selection and boot-parameter lowering consult.
// It exists as a first-class view because the sweep canonicaliser needs
// the same facts: a boot-param request the hardware cannot honor (ibrs
// on a part without the MSR, SSBD where it is unimplemented) lowers to
// the same effective mitigation set as not asking, so the two configs
// are one simulation cell.
type MitigationSupport struct {
	// NeedsPTI / NeedsL1TF / NeedsMDS / NeedsSpectreV2 report the
	// vulnerabilities the kernel mitigates by default on this part
	// (Table 1's checkmarks).
	NeedsPTI       bool
	NeedsL1TF      bool
	NeedsMDS       bool
	NeedsSpectreV2 bool
	// PreferEIBRS: the default Spectre-V2 strategy is eIBRS (set-once)
	// rather than retpolines.
	PreferEIBRS bool
	// PreferRetpolineAMD: the paper-era AMD default, lfence+jmp.
	PreferRetpolineAMD bool
	// HasIBRS / HasEIBRS / HasSSBD report whether an explicit
	// spectre_v2=ibrs / spectre_v2=eibrs / spec_store_bypass_disable=on
	// request can be honored at all; an unhonorable request is inert.
	HasIBRS  bool
	HasEIBRS bool
	HasSSBD  bool
}

// Support derives the CPU's mitigation-support summary from its
// vulnerability flags, speculation capabilities and cost model.
func (c *CPU) Support() MitigationSupport {
	return MitigationSupport{
		NeedsPTI:           c.Vulns.Meltdown,
		NeedsL1TF:          c.Vulns.L1TF,
		NeedsMDS:           c.Vulns.MDS,
		NeedsSpectreV2:     c.Vulns.SpectreV2,
		PreferEIBRS:        c.Spec.EIBRS,
		PreferRetpolineAMD: c.Vendor == AMD && c.Costs.RetpolineAMDOK,
		HasIBRS:            c.Spec.IBRS,
		HasEIBRS:           c.Spec.EIBRS,
		HasSSBD:            c.Spec.SSBDImplemented,
	}
}

func (c *CPU) String() string {
	return fmt.Sprintf("%s %s (%s, %d)", c.Vendor, c.Model, c.Uarch, c.Year)
}

// common cost values shared across models.
func baseCosts() Costs {
	return Costs{
		VerwLegacy:        25,
		WrmsrSpecCtrl:     90,
		Mispredict:        18,
		ALU:               1,
		Mul:               3,
		Div:               22,
		CacheL1:           4,
		CacheL2:           14,
		CacheLLC:          40,
		Mem:               180,
		TLBMiss:           28,
		Xsave:             64,
		FPTrap:            750,
		Swapgs:            3,
		Trap:              320,
		Iret:              280,
		VMEntry:           500,
		VMExit:            1100,
		L1Flush:           1500,
		FPU:               3,
		FDiv:              14,
		StoreForwardCycle: 1,
	}
}

// registry of the eight evaluated CPUs, keyed by microarchitecture.
var registry = map[string]*CPU{}

func register(c *CPU) *CPU {
	registry[c.Key()] = c
	return c
}

// Broadwell returns the Intel E5-2640v4 profile (pre-Spectre server).
func Broadwell() *CPU { return registry["Broadwell"] }

// SkylakeClient returns the Intel i7-6600U profile.
func SkylakeClient() *CPU { return registry["Skylake Client"] }

// CascadeLake returns the Intel Xeon Silver 4210R profile.
func CascadeLake() *CPU { return registry["Cascade Lake"] }

// IceLakeClient returns the Intel i5-10351G1 profile.
func IceLakeClient() *CPU { return registry["Ice Lake Client"] }

// IceLakeServer returns the Intel Xeon Gold 6354 profile.
func IceLakeServer() *CPU { return registry["Ice Lake Server"] }

// Zen returns the AMD Ryzen 3 1200 profile.
func Zen() *CPU { return registry["Zen"] }

// Zen2 returns the AMD EPYC 7452 profile.
func Zen2() *CPU { return registry["Zen 2"] }

// Zen3 returns the AMD Ryzen 5 5600X profile.
func Zen3() *CPU { return registry["Zen 3"] }

// ByName returns the CPU whose microarchitecture name matches, or nil.
func ByName(uarch string) *CPU { return registry[uarch] }

// All returns every registered CPU in the paper's presentation order:
// Intel by generation, then AMD by generation.
func All() []*CPU {
	order := []string{
		"Broadwell", "Skylake Client", "Cascade Lake",
		"Ice Lake Client", "Ice Lake Server",
		"Zen", "Zen 2", "Zen 3",
	}
	out := make([]*CPU, 0, len(order))
	for _, k := range order {
		if c, ok := registry[k]; ok {
			out = append(out, c)
		}
	}
	return out
}

// Names returns all registered microarchitecture names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func init() {
	// ---- Intel --------------------------------------------------------
	{
		c := baseCosts()
		c.Syscall, c.Sysret, c.SwapCR3 = 49, 40, 206
		c.VerwClear = 610
		c.IndirectBase, c.IBRSDelta, c.RetpolineGeneric = 16, 32, 28
		c.IBPB = 5600
		c.RSBFill = 130
		c.Lfence = 28
		c.SSBDForwardStall = 6
		register(&CPU{
			Vendor: Intel, Model: "E5-2640v4", Uarch: "Broadwell", Year: 2014,
			PowerW: 90, ClockGHz: 2.4, Cores: 10, SMT: true,
			Vulns: Vulns{
				Meltdown: true, L1TF: true, LazyFP: true, LazyFPLeak: true,
				SpectreV1: SpectreV1{true}, SpectreV2: true, SSB: true, MDS: true,
			},
			Spec: SpecCaps{
				IBRS: true, IBRSBlocksAllIndirect: true,
				BTBHistoryDepth: 16, SSBDImplemented: true,
			},
			Costs: c, RSBDepth: 16, SpecDepth: 48,
		})
	}
	{
		c := baseCosts()
		c.Syscall, c.Sysret, c.SwapCR3 = 42, 42, 191
		c.VerwClear = 518
		c.IndirectBase, c.IBRSDelta, c.RetpolineGeneric = 11, 15, 19
		c.IBPB = 4500
		c.RSBFill = 130
		c.Lfence = 20
		c.SSBDForwardStall = 7
		register(&CPU{
			Vendor: Intel, Model: "i7-6600U", Uarch: "Skylake Client", Year: 2015,
			PowerW: 15, ClockGHz: 2.6, Cores: 2, SMT: true,
			Vulns: Vulns{
				Meltdown: true, L1TF: true, LazyFP: true, LazyFPLeak: true,
				SpectreV1: SpectreV1{true}, SpectreV2: true, SSB: true, MDS: true,
			},
			Spec: SpecCaps{
				IBRS: true, IBRSBlocksAllIndirect: true,
				BTBHistoryDepth: 16, SSBDImplemented: true,
			},
			Costs: c, RSBDepth: 16, SpecDepth: 56,
		})
	}
	{
		c := baseCosts()
		c.Syscall, c.Sysret = 70, 43
		c.VerwClear = 458
		c.IndirectBase, c.IBRSDelta, c.RetpolineGeneric = 3, 0, 49
		c.IBPB = 340
		c.RSBFill = 120
		c.Lfence = 15
		c.SSBDForwardStall = 8
		register(&CPU{
			Vendor: Intel, Model: "Xeon Silver 4210R", Uarch: "Cascade Lake", Year: 2019,
			PowerW: 100, ClockGHz: 2.4, Cores: 10, SMT: true,
			Vulns: Vulns{
				LazyFP: true, SpectreV1: SpectreV1{true}, SpectreV2: true,
				SSB: true, MDS: true,
			},
			Spec: SpecCaps{
				IBRS: true, EIBRS: true,
				BTBHistoryDepth: 16, SSBDImplemented: true,
				EIBRSBimodalPeriod: 12, EIBRSBimodalExtra: 210,
			},
			Costs: c, RSBDepth: 32, SpecDepth: 72,
		})
	}
	{
		c := baseCosts()
		c.Syscall, c.Sysret = 21, 29
		c.IndirectBase, c.IBRSDelta, c.RetpolineGeneric = 5, 0, 21
		c.IBPB = 2500
		c.RSBFill = 40
		c.Lfence = 8
		c.SSBDForwardStall = 7
		register(&CPU{
			Vendor: Intel, Model: "i5-10351G1", Uarch: "Ice Lake Client", Year: 2019,
			PowerW: 15, ClockGHz: 1.0, Cores: 4, SMT: true,
			Vulns: Vulns{
				LazyFP: true, SpectreV1: SpectreV1{true}, SpectreV2: true,
				SSB: true,
			},
			Spec: SpecCaps{
				IBRS: true, EIBRS: true, IBRSBlocksKernelKernel: true,
				BTBHistoryDepth: 16, SSBDImplemented: true,
				EIBRSBimodalPeriod: 8, EIBRSBimodalExtra: 210,
			},
			Costs: c, RSBDepth: 32, SpecDepth: 80,
		})
	}
	{
		c := baseCosts()
		c.Syscall, c.Sysret = 45, 32
		c.IndirectBase, c.IBRSDelta, c.RetpolineGeneric = 1, 1, 50
		c.IBPB = 840
		c.RSBFill = 69
		c.Lfence = 13
		c.SSBDForwardStall = 12
		register(&CPU{
			Vendor: Intel, Model: "Xeon Gold 6354", Uarch: "Ice Lake Server", Year: 2021,
			PowerW: 205, ClockGHz: 3.0, Cores: 18, SMT: true,
			Vulns: Vulns{
				LazyFP: true, SpectreV1: SpectreV1{true}, SpectreV2: true,
				SSB: true,
			},
			Spec: SpecCaps{
				IBRS: true, EIBRS: true,
				BTBHistoryDepth: 16, SSBDImplemented: true,
				EIBRSBimodalPeriod: 16, EIBRSBimodalExtra: 210,
			},
			Costs: c, RSBDepth: 32, SpecDepth: 80,
		})
	}

	// ---- AMD ----------------------------------------------------------
	{
		c := baseCosts()
		c.Syscall, c.Sysret = 63, 53
		c.IndirectBase, c.RetpolineGeneric = 30, 25
		c.RetpolineAMD, c.RetpolineAMDOK = 28, true
		c.IBPB = 7400
		c.RSBFill = 114
		c.Lfence = 48
		c.SSBDForwardStall = 10
		register(&CPU{
			Vendor: AMD, Model: "Ryzen 3 1200", Uarch: "Zen", Year: 2017,
			PowerW: 65, ClockGHz: 3.1, Cores: 4, SMT: false,
			Vulns: Vulns{
				LazyFP: true, SpectreV1: SpectreV1{true}, SpectreV2: true,
				SSB: true,
			},
			Spec: SpecCaps{
				IBRS:            false, // Table 10 marks Zen N/A
				BTBHistoryDepth: 16, SSBDImplemented: true,
			},
			Costs: c, RSBDepth: 16, SpecDepth: 44,
		})
	}
	{
		c := baseCosts()
		c.Syscall, c.Sysret = 53, 46
		c.IndirectBase, c.IBRSDelta, c.RetpolineGeneric = 3, 13, 14
		c.RetpolineAMD, c.RetpolineAMDOK = 0, true
		c.IBPB = 1100
		c.RSBFill = 68
		c.Lfence = 4
		c.SSBDForwardStall = 9
		register(&CPU{
			Vendor: AMD, Model: "EPYC 7452", Uarch: "Zen 2", Year: 2019,
			PowerW: 155, ClockGHz: 2.35, Cores: 32, SMT: true,
			Vulns: Vulns{
				LazyFP: true, SpectreV1: SpectreV1{true}, SpectreV2: true,
				SSB: true,
			},
			Spec: SpecCaps{
				IBRS: true, IBRSBlocksAllIndirect: true,
				BTBHistoryDepth: 16, SSBDImplemented: true,
			},
			Costs: c, RSBDepth: 32, SpecDepth: 64,
		})
	}
	{
		c := baseCosts()
		c.Syscall, c.Sysret = 83, 55
		c.IndirectBase, c.IBRSDelta, c.RetpolineGeneric = 23, 19, 13
		c.RetpolineAMD, c.RetpolineAMDOK = 18, true
		c.IBPB = 800
		c.RSBFill = 94
		c.Lfence = 30
		c.SSBDForwardStall = 15
		register(&CPU{
			Vendor: AMD, Model: "Ryzen 5 5600X", Uarch: "Zen 3", Year: 2020,
			PowerW: 65, ClockGHz: 3.7, Cores: 6, SMT: true,
			Vulns: Vulns{
				LazyFP: true, SpectreV1: SpectreV1{true}, SpectreV2: true,
				SSB: true,
			},
			Spec: SpecCaps{
				IBRS: true, IBRSBlocksAllIndirect: true,
				// Deeper than the 128-branch history-fill loop: the
				// paper could not poison the Zen 3 BTB at all (§6.2).
				BTBHistoryDepth: 300, SSBDImplemented: true,
			},
			Costs: c, RSBDepth: 32, SpecDepth: 64,
		})
	}
}
