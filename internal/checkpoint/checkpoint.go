// Package checkpoint implements checkpointed warmup: a process-wide
// registry of immutable snapshots taken after a workload's warmup
// prefix, keyed by everything that determines the warmed-up state (the
// cell-key prefix: workload identity, uarch, warmup-relevant
// configuration — plus the ablation-flag fingerprint, since flipped
// fast-path defaults change host representations mid-process in the
// differential tests). Cells that share a prefix fork from the snapshot
// instead of re-simulating it: memory forks by copy-on-write page
// sharing (mem.Phys.Snapshot/NewPhys — a snapshot costs a page-table
// copy, not a memory-image clone), and core/kernel state is restored by
// the owning packages' clone hooks.
//
// Determinism contract. A forked cell must be byte-identical to a cold
// cell, including its fault-injection draw sequence. Two rules enforce
// that:
//
//   - Host-side checkpoints (parsed ASTs, compiled/assembled programs)
//     never touch simulated state and draw nothing from the injector;
//     they are always eligible.
//   - Machine checkpoints (booted VMs) capture state produced by
//     simulated execution, which consumes injector draws. They are
//     created and consumed only when the requesting core has no active
//     fault-injection stream (Injector.Active() == false): with -faults
//     on, every consumer takes the cold path, so the draw sequence is
//     the cold sequence by construction.
//
// Concurrency. The registry is a sync.Map of per-key once-cells: under
// -jobs N, whichever worker reaches a key first builds the snapshot and
// everyone else blocks on it. Snapshot values are immutable after
// construction, so sharing across workers is safe, and the contents are
// a pure function of the key — whichever cell wins the race builds the
// same bytes.
package checkpoint

import (
	"sync"
	"sync/atomic"
)

// defaultOff is inverted so the zero value means checkpointing is on
// (mirrors the other ablation flags).
var defaultOff atomic.Bool

// SetDefault enables or disables checkpointed warmup process-wide,
// returning the previous setting. The -checkpoint=on|off flag calls
// this once at startup; tests flip it around ablation comparisons.
func SetDefault(on bool) (prev bool) {
	return !defaultOff.Swap(!on)
}

// Default reports whether checkpointed warmup is enabled.
func Default() bool { return !defaultOff.Load() }

// entry is one once-guarded snapshot slot.
type entry struct {
	once sync.Once
	v    any
}

// registry is the process-wide key → snapshot map.
var registry sync.Map

// hits/misses count registry consultations (host-side observability
// only — never printed to stdout, so output stays byte-identical with
// the registry cold, warm, or disabled).
var hits, misses atomic.Uint64

// Stats reports how many Get calls were served from an existing
// snapshot and how many built one.
func Stats() (h, m uint64) { return hits.Load(), misses.Load() }

// Get returns the snapshot stored under key, building it with build on
// first use. All callers of the same key receive the same value; build
// runs exactly once per key for the life of the process. Returns
// (nil, false) without consulting the registry when checkpointing is
// disabled — the caller must then run its cold path.
//
// build must produce a value that is (a) immutable or only ever cloned
// from, and (b) a pure function of key: the key must encode every input
// the snapshot depends on, including ablation-flag state for anything
// holding host-representation-sensitive structures.
func Get(key string, build func() any) (any, bool) {
	if !Default() {
		return nil, false
	}
	e, loaded := registry.Load(key)
	if !loaded {
		e, loaded = registry.LoadOrStore(key, &entry{})
	}
	ent := e.(*entry)
	if loaded {
		hits.Add(1)
	} else {
		misses.Add(1)
	}
	ent.once.Do(func() { ent.v = build() })
	return ent.v, true
}

// Clear drops every snapshot (tests; flag flips around differential
// comparisons must not reuse snapshots built under the other setting —
// keys embed the flag fingerprint, but Clear keeps memory bounded).
func Clear() {
	registry.Range(func(k, _ any) bool {
		registry.Delete(k)
		return true
	})
	hits.Store(0)
	misses.Store(0)
}
