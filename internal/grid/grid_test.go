package grid

import (
	"reflect"
	"testing"

	"spectrebench/internal/engine"
)

// TestCellsPrefixStable: the enumeration is deterministic and
// prefix-stable — -cells N names the same cells in the same order no
// matter how large the sweep around it is.
func TestCellsPrefixStable(t *testing.T) {
	small := Cells(100, 0)
	big := Cells(500, 0)
	if len(small) != 100 || len(big) != 500 {
		t.Fatalf("lengths %d/%d, want 100/500", len(small), len(big))
	}
	if !reflect.DeepEqual(small, big[:100]) {
		t.Fatal("Cells(100) is not a prefix of Cells(500)")
	}
}

// TestDisplayKeysUnique: every cell in the full grid has a distinct
// display key (the boot-param rendering is injective), so no two cells
// alias in the memo cache.
func TestDisplayKeysUnique(t *testing.T) {
	cells := Cells(MaxCells(), 0)
	if len(cells) != MaxCells() {
		t.Fatalf("full grid has %d cells, want %d", len(cells), MaxCells())
	}
	seen := make(map[engine.Key]int, len(cells))
	for i, c := range cells {
		if j, dup := seen[c.Display]; dup {
			t.Fatalf("cells %d and %d share display key %v", j, i, c.Display)
		}
		seen[c.Display] = i
	}
}

// TestCanonKeyMatchesEffectiveMitigations: cells share a canonical key
// exactly when their lowered mitigation sets (and uarch) are equal —
// the correctness condition for sharing one simulation.
func TestCanonKeyMatchesEffectiveMitigations(t *testing.T) {
	cells := Cells(20000, 0)
	byCanon := map[engine.Key]Cell{}
	for _, c := range cells {
		if c.Canon.Uarch != c.Display.Uarch || c.Canon.Workload != c.Display.Workload || c.Canon.Seed != c.Display.Seed {
			t.Fatalf("canonical key changes non-config fields: %v vs %v", c.Canon, c.Display)
		}
		first, ok := byCanon[c.Canon]
		if !ok {
			byCanon[c.Canon] = c
			continue
		}
		if first.Mit != c.Mit {
			t.Fatalf("canon key %v covers different mitigation sets:\n  %+v\n  %+v", c.Canon, first.Mit, c.Mit)
		}
	}
	// And distinct canon keys on one uarch mean distinct mitigations.
	byMit := map[string]engine.Key{}
	for canon, c := range byCanon {
		mk := c.Display.Uarch + "|" + c.Mit.CanonicalKey()
		if prev, dup := byMit[mk]; dup && prev != canon {
			t.Fatalf("mitigation set %q has two canon keys: %v and %v", mk, prev, canon)
		}
		byMit[mk] = canon
	}
}

// TestDedupRatioSubstantial pins the point of the whole exercise: the
// boot-param space is massively redundant, so classes must be an order
// of magnitude fewer than cells.
func TestDedupRatioSubstantial(t *testing.T) {
	cells := Cells(10000, 0)
	classes := Classes(cells)
	t.Logf("10000 cells, %d classes (%.1fx)", classes, float64(len(cells))/float64(classes))
	if classes*8 > len(cells) {
		t.Fatalf("dedup ratio %.1fx below 8x — canonicalisation is not folding", float64(len(cells))/float64(classes))
	}
}

// TestCanonicalizerPassesForeignKeysThrough: keys outside the cell set
// (other experiments sharing the engine) are untouched.
func TestCanonicalizerPassesForeignKeysThrough(t *testing.T) {
	cz := Canonicalizer(Cells(100, 0))
	foreign := engine.Key{Workload: "lebench/run", Uarch: "Skylake Client", Config: "whatever"}
	if got := cz(foreign); got != foreign {
		t.Fatalf("foreign key rewritten: %v -> %v", foreign, got)
	}
	cells := Cells(100, 0)
	if got := cz(cells[42].Display); got != cells[42].Canon {
		t.Fatalf("grid key folded to %v, want %v", got, cells[42].Canon)
	}
}

// TestEndToEndDedupMatchesNoDedup runs a small grid prefix through two
// engines — dedup on and off — and requires identical per-cell values:
// the ablation byte-identity contract at unit-test scale.
func TestEndToEndDedupMatchesNoDedup(t *testing.T) {
	cells := Cells(24, 0)
	run := func(e *engine.Engine) []float64 {
		defer e.Close()
		e.SetCanonicalizer(Canonicalizer(cells))
		var tasks []*engine.Task
		for _, c := range cells {
			c := c
			tasks = append(tasks, e.Submit(c.Display, c.Run))
		}
		out := make([]float64, len(tasks))
		for i, tk := range tasks {
			v, err := tk.Wait()
			if err != nil {
				t.Fatalf("cell %d: %v", i, err)
			}
			out[i] = v.(float64)
		}
		return out
	}

	deduped := run(engine.New(2))

	engine.SetDedupDefault(false)
	defer engine.SetDedupDefault(true)
	plain := run(engine.New(2))

	if !reflect.DeepEqual(deduped, plain) {
		t.Fatalf("dedup on/off diverge:\n  on:  %v\n  off: %v", deduped, plain)
	}
}
