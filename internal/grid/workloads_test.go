package grid

import (
	"testing"

	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
)

func TestLookupWorkload(t *testing.T) {
	for _, name := range []string{Workload, "getpid", "grid/vm/lfs/smallfile", "smallfile"} {
		if _, err := LookupWorkload(name); err != nil {
			t.Errorf("LookupWorkload(%q): %v", name, err)
		}
	}
	if _, err := LookupWorkload("no-such-workload"); err == nil {
		t.Error("expected error for unknown workload")
	}
	names := WorkloadNames()
	if len(names) < 17 { // 16 LEBench benchmarks + 2 LFS workloads
		t.Fatalf("registry too small: %v", names)
	}
}

// TestDefaultWorkloadMatchesCellRun pins Cell.Run to the registry's
// default entry so gridbench results cannot drift when workloads are
// added.
func TestDefaultWorkloadMatchesCellRun(t *testing.T) {
	m := model.All()[0]
	mit := kernel.Defaults(m)
	c := Cells(1, 0)[0]
	got, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, err := DefaultWorkload().Run(m, mit)
	if err != nil {
		t.Fatal(err)
	}
	if got.(float64) != want {
		t.Fatalf("Cell.Run = %v, DefaultWorkload().Run = %v", got, want)
	}
}

// TestLFSFamilyPricesVMFlush asserts the VM workload family actually
// charges for L1TFFlushOnVMEntry on a vulnerable part — the property
// that makes it a distinct cost objective from the syscall family.
func TestLFSFamilyPricesVMFlush(t *testing.T) {
	var vuln *model.CPU
	for _, m := range model.All() {
		if m.Vulns.L1TF {
			vuln = m
			break
		}
	}
	if vuln == nil {
		t.Skip("no L1TF-vulnerable part in the model set")
	}
	spec, err := LookupWorkload("grid/vm/lfs/smallfile")
	if err != nil {
		t.Fatal(err)
	}
	with := kernel.Defaults(vuln)
	with.L1TFFlushOnVMEntry = true
	without := with
	without.L1TFFlushOnVMEntry = false
	cWith, err := spec.Run(vuln, with)
	if err != nil {
		t.Fatal(err)
	}
	cWithout, err := spec.Run(vuln, without)
	if err != nil {
		t.Fatal(err)
	}
	if cWith <= cWithout {
		t.Fatalf("L1TF flush should cost cycles in the VM family: with=%v without=%v", cWith, cWithout)
	}
}
