// Package grid generates the synthetic boot-parameter configuration
// grids the million-cell sweep machinery is exercised with — the
// scaling stand-in for the "Beyond Over-Protection" config-search
// space. A grid cell is (boot-param combo × uarch) running a fixed
// one-benchmark workload; the full space is 21504 combos × 8 uarchs =
// 172032 cells, enumerated deterministically so a prefix of any length
// names the same cells in the same order on every run.
//
// The interesting property of the space — and the reason the engine
// grew canonical keys — is that most of it is redundant: boot-param
// requests the hardware cannot honor are inert (spectre_v2=ibrs on a
// part without the MSR), mitigations=off erases every other toggle,
// and nospectre_v2 makes the IBPB/RSB toggles dead. Lowering each
// combo through kernel.Defaults + BootParams.Apply (which consult
// model.MitigationSupport) yields the cell's effective mitigation set;
// cells with equal effective sets are one equivalence class and need
// one simulation. Canonicalizer exposes that fold to the engine.
package grid

import (
	"strings"

	"spectrebench/internal/engine"
	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
)

// Workload names the grid's default cell workload in engine keys (the
// fixed PR 8 objective; see workloads.go for the full registry).
const Workload = "grid/lebench/getpid"

// boolParams are the ten independent boot-parameter toggles the grid
// sweeps (bit i of the combo's flag field). Order is part of the
// enumeration contract.
var boolParams = []struct {
	token string
	set   func(*kernel.BootParams)
}{
	{"mitigations=off", func(bp *kernel.BootParams) { bp.MitigationsOff = true }},
	{"nopti", func(bp *kernel.BootParams) { bp.NoPTI = true }},
	{"pti=on", func(bp *kernel.BootParams) { bp.ForcePTI = true }},
	{"nospectre_v1", func(bp *kernel.BootParams) { bp.NoSpectreV1 = true }},
	{"nospectre_v2", func(bp *kernel.BootParams) { bp.NoSpectreV2 = true }},
	{"mds=off", func(bp *kernel.BootParams) { bp.MDSOff = true }},
	{"eagerfpu=off", func(bp *kernel.BootParams) { bp.LazyFPU = true }},
	{"l1tf=off", func(bp *kernel.BootParams) { bp.L1TFOff = true }},
	{"noibpb", func(bp *kernel.BootParams) { bp.NoIBPB = true }},
	{"norsb", func(bp *kernel.BootParams) { bp.NoRSBStuff = true }},
}

// v2Values are the spectre_v2= request values swept ("" = not passed).
// "retpoline" and "retpoline,generic" are distinct requests that lower
// identically — deliberate dedup fodder.
var v2Values = []string{"", "off", "retpoline", "retpoline,generic", "retpoline,amd", "ibrs", "eibrs"}

// ssbd modes: not passed / =off / =on.
const ssbdModes = 3

// CombosPerUarch is the boot-param combo count: 2^10 flag patterns × 7
// spectre_v2 values × 3 SSBD modes = 21504.
const CombosPerUarch = (1 << 10) * 7 * ssbdModes

// MaxCells is the full grid size across every simulated uarch.
func MaxCells() int { return CombosPerUarch * len(model.All()) }

func init() {
	if got := (1 << len(boolParams)) * len(v2Values) * ssbdModes; got != CombosPerUarch {
		panic("grid: CombosPerUarch out of sync with the parameter tables")
	}
}

// Cell is one grid cell: a display identity (the raw boot-param
// request), its canonical identity (the effective mitigation set the
// request lowers to), and what to run.
type Cell struct {
	// Display is the cell's submission key: Config holds the raw
	// boot-param string, so rendered output is a function of what was
	// asked for, not of how it folded.
	Display engine.Key
	// Canon is the equivalence-class key: Config holds the effective
	// kernel.Mitigations rendering. Cells with equal Canon simulate
	// once.
	Canon engine.Key
	// CPU and Mit are the lowered machine configuration the cell runs.
	CPU *model.CPU
	Mit kernel.Mitigations
}

// combo reconstructs boot params and the display token string for one
// combo index in [0, CombosPerUarch).
func combo(i int) (kernel.BootParams, string) {
	var bp kernel.BootParams
	var tokens []string
	bp.SpectreV2 = v2Values[i%len(v2Values)]
	if bp.SpectreV2 != "" {
		tokens = append(tokens, "spectre_v2="+bp.SpectreV2)
	}
	switch (i / len(v2Values)) % ssbdModes {
	case 1:
		bp.NoSSBSD = true
		tokens = append(tokens, "spec_store_bypass_disable=off")
	case 2:
		bp.SSBDOn = true
		tokens = append(tokens, "spec_store_bypass_disable=on")
	}
	flags := i / (len(v2Values) * ssbdModes)
	for bit, p := range boolParams {
		if flags&(1<<bit) != 0 {
			p.set(&bp)
			tokens = append(tokens, p.token)
		}
	}
	if len(tokens) == 0 {
		return bp, "defaults"
	}
	return bp, strings.Join(tokens, " ")
}

// ComboAt exposes the enumeration to other packages (the optimizer
// walks the same combo space the sweep does): the boot params and
// display token string for combo index i in [0, CombosPerUarch).
func ComboAt(i int) (kernel.BootParams, string) { return combo(i) }

// Cells enumerates the first n grid cells. The order is combo-major
// with the uarchs interleaved inside each combo, so any prefix spreads
// across every uarch (the prefix-locality planner has real work to do)
// and -cells N names the same set at every jobs/plan/dedup setting.
// seed is the fault seed stamped into every key (0 when faults are
// off), keeping fault-run cells distinct from clean ones in the memo
// and the store.
func Cells(n int, seed uint64) []Cell {
	if max := MaxCells(); n > max {
		n = max
	}
	if n < 0 {
		n = 0
	}
	cpus := model.All()
	out := make([]Cell, 0, n)
	for ci := 0; len(out) < n; ci++ {
		bp, display := combo(ci)
		for _, m := range cpus {
			if len(out) >= n {
				break
			}
			mit := bp.Apply(m, kernel.Defaults(m))
			out = append(out, Cell{
				Display: engine.Key{Workload: Workload, Uarch: m.Uarch, Config: display, Seed: seed},
				Canon:   engine.Key{Workload: Workload, Uarch: m.Uarch, Config: "canon|" + mit.CanonicalKey(), Seed: seed},
				CPU:     m,
				Mit:     mit,
			})
		}
	}
	return out
}

// Classes counts the distinct equivalence classes in a cell set — the
// number of simulations a fully deduped sweep performs, and the
// denominator of the dedup ratio.
func Classes(cells []Cell) int {
	seen := make(map[engine.Key]struct{}, len(cells))
	for _, c := range cells {
		seen[c.Canon] = struct{}{}
	}
	return len(seen)
}

// Canonicalizer builds the engine's display-key → class-key fold for a
// cell set. Keys outside the set (other experiments sharing the
// engine) pass through unchanged.
func Canonicalizer(cells []Cell) engine.Canonicalizer {
	fold := make(map[engine.Key]engine.Key, len(cells))
	for _, c := range cells {
		fold[c.Display] = c.Canon
	}
	return func(k engine.Key) engine.Key {
		if ck, ok := fold[k]; ok {
			return ck
		}
		return k
	}
}

// Run simulates the cell: a fresh machine with the cell's lowered
// mitigation set, running the default workload. Pure with respect to
// the cell's canonical key, as engine.Submit requires.
func (c Cell) Run() (any, error) {
	cyc, err := DefaultWorkload().Run(c.CPU, c.Mit)
	if err != nil {
		return nil, err
	}
	return cyc, nil
}
