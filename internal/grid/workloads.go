// Workload registry: the cost objectives a grid/optimizer cell can run.
// PR 8 fixed every cell to LEBench-getpid so gridbench throughput
// measured sweep machinery; the optimizer needs real objectives, so the
// workload is now a parameter. Two families are registered:
//
//   - grid/lebench/<bench>: every LEBench syscall benchmark, run on a
//     fresh machine with the cell's lowered mitigation set (the PR 8
//     cell body, generalised from getpid to the whole suite).
//   - grid/vm/lfs/<name>: the LFS filesystem workloads run inside a
//     guest VM with the swept mitigation set applied on both host and
//     guest sides — the only family where L1TFFlushOnVMEntry has a
//     price, so "cheapest secure config" answers differ from the
//     syscall family.
//
// Every Run is a pure function of (uarch, effective mitigation set),
// exactly like Cell.Run, so results memoise under the same canonical
// keys.
package grid

import (
	"fmt"
	"sort"

	"spectrebench/internal/cpu"
	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
	"spectrebench/internal/workloads/lebench"
	"spectrebench/internal/workloads/lfs"
)

// WorkloadSpec is one runnable cost objective.
type WorkloadSpec struct {
	// Name is the engine-key Workload field for cells of this
	// objective (e.g. "grid/lebench/getpid").
	Name string
	// Run simulates the objective on a fresh machine with the given
	// lowered mitigation set and returns the cycle cost.
	Run func(m *model.CPU, mit kernel.Mitigations) (float64, error)
}

func lebenchSpec(b lebench.Benchmark) WorkloadSpec {
	return WorkloadSpec{
		Name: "grid/lebench/" + b.Name,
		Run: func(m *model.CPU, mit kernel.Mitigations) (float64, error) {
			core := cpu.New(m)
			defer core.Recycle()
			k := kernel.New(core, mit)
			return lebench.RunOn(core, k, b)
		},
	}
}

func lfsSpec(name string) WorkloadSpec {
	return WorkloadSpec{
		Name: "grid/vm/lfs/" + name,
		Run: func(m *model.CPU, mit kernel.Mitigations) (float64, error) {
			res, err := lfs.Run(m, mit, mit, name)
			if err != nil {
				return 0, err
			}
			return res.Cycles, nil
		},
	}
}

// workloadRegistry maps workload names to specs, built once at init.
var workloadRegistry = func() map[string]WorkloadSpec {
	reg := make(map[string]WorkloadSpec)
	for _, b := range lebench.Suite() {
		s := lebenchSpec(b)
		reg[s.Name] = s
	}
	for _, name := range []string{lfs.Smallfile, lfs.Largefile} {
		s := lfsSpec(name)
		reg[s.Name] = s
	}
	if _, ok := reg[Workload]; !ok {
		panic("grid: default workload " + Workload + " missing from registry")
	}
	return reg
}()

// LookupWorkload resolves a workload name to its spec. Besides full
// names, it accepts the bare suffix of either family ("getpid",
// "smallfile") as shorthand.
func LookupWorkload(name string) (WorkloadSpec, error) {
	if s, ok := workloadRegistry[name]; ok {
		return s, nil
	}
	for _, prefix := range []string{"grid/lebench/", "grid/vm/lfs/"} {
		if s, ok := workloadRegistry[prefix+name]; ok {
			return s, nil
		}
	}
	return WorkloadSpec{}, fmt.Errorf("unknown workload %q (known: %v)", name, WorkloadNames())
}

// WorkloadNames lists every registered workload name, sorted.
func WorkloadNames() []string {
	out := make([]string, 0, len(workloadRegistry))
	for name := range workloadRegistry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DefaultWorkload is the registry entry for the grid's fixed PR 8
// workload (LEBench getpid).
func DefaultWorkload() WorkloadSpec {
	s, ok := workloadRegistry[Workload]
	if !ok {
		panic("grid: default workload missing")
	}
	return s
}
