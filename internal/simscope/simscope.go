// Package simscope carries per-simulation-cell determinism state to the
// code that needs it without threading a context parameter through every
// constructor in the simulator.
//
// A Scope travels implicitly with a goroutine (Enter/Current, keyed by
// goroutine ID) and holds everything that used to live in process-global
// state and therefore broke determinism the moment two experiments ran
// concurrently:
//
//   - the fault-injection seed and the activation snapshot captured when
//     the cell was scheduled, so injector streams derive from the cell's
//     identity instead of global creation order;
//   - the watchdog cycle budget the cell was scheduled under, so a
//     budget change for a later batch cannot leak into a still-queued
//     cell;
//   - a cycle accumulator, replacing the process-wide counter for
//     per-experiment cost attribution;
//   - the most recently fired fault point, replacing the global
//     last-fired register for failure attribution.
//
// The package sits below faultinject and cpu in the dependency order and
// imports nothing but gls, so every simulator layer can consult it.
package simscope

import (
	"sync"
	"sync/atomic"

	"spectrebench/internal/gls"
)

// Scope is the determinism context for one unit of simulation (a cell or
// a supervised experiment attempt). The exported fields are set before
// Enter and read-only afterwards; the accumulators are safe for
// concurrent use (a scope may be shared by an experiment goroutine and
// the sweep tasks it fans out).
type Scope struct {
	// FaultSeed roots injector derivation for cores constructed under
	// this scope. For a cell it is the hash of the cell key; for an
	// experiment attempt it is the (seed, id, attempt) derivation.
	FaultSeed uint64
	// Fault is the opaque fault-injection activation snapshot captured
	// when the scope was created (nil = faults off for this scope, even
	// if a global activation appears later).
	Fault any
	// Budget is the watchdog cycle budget for cores constructed under
	// this scope (0 = unlimited). Only consulted when HasBudget is set;
	// otherwise cores fall back to the process default.
	Budget    uint64
	HasBudget bool
	// Tag carries an arbitrary scheduler handle (the harness stores its
	// engine here so experiment code finds it without a global).
	Tag any

	seq       atomic.Uint64
	cycles    atomic.Uint64
	lastFired atomic.Uint32

	// releaseMu guards releases: a scope shared by an experiment attempt
	// and the sweep tasks it fans out sees concurrent Defer calls.
	releaseMu sync.Mutex
	releases  []func()
	released  bool
}

// NextSeq returns the next injector-derivation sequence number in this
// scope (1, 2, ...). Construction order within a scope is deterministic,
// so the sequence decorrelates sibling cores reproducibly.
func (s *Scope) NextSeq() uint64 { return s.seq.Add(1) }

// AddCycles charges simulated cycles to the scope.
func (s *Scope) AddCycles(n uint64) {
	if s != nil && n > 0 {
		s.cycles.Add(n)
	}
}

// Cycles returns the simulated cycles charged so far.
func (s *Scope) Cycles() uint64 {
	if s == nil {
		return 0
	}
	return s.cycles.Load()
}

// NoteFired records p as the most recently fired fault point.
func (s *Scope) NoteFired(p uint8) {
	if s != nil {
		s.lastFired.Store(uint32(p) + 1)
	}
}

// LastFired returns the most recently fired fault point and whether any
// point fired under this scope.
func (s *Scope) LastFired() (uint8, bool) {
	if s == nil {
		return 0, false
	}
	v := s.lastFired.Load()
	if v == 0 {
		return 0, false
	}
	return uint8(v - 1), true
}

// Defer registers fn to run when the scope is released. The scope owner
// (the engine for per-cell scopes, the supervisor for attempt scopes)
// calls Release exactly once, after every task running under the scope
// has completed — which is what lets resource layers (the CPU core pool)
// hang reclamation off the scope without knowing who scheduled it.
// Registering on an already-released scope drops fn silently: cleanups
// here are reclamation opportunities (recycle a core into a pool), and
// for those, leaking to the garbage collector is always safe while
// running early against a live resource never is.
func (s *Scope) Defer(fn func()) {
	if s == nil {
		return
	}
	s.releaseMu.Lock()
	if !s.released {
		s.releases = append(s.releases, fn)
	}
	s.releaseMu.Unlock()
}

// Release runs the scope's deferred cleanups (LIFO, like defer) and
// marks the scope released. Safe to call more than once; later calls are
// no-ops. Call only when no task can still be running under the scope.
func (s *Scope) Release() {
	if s == nil {
		return
	}
	s.releaseMu.Lock()
	fns := s.releases
	s.releases = nil
	s.released = true
	s.releaseMu.Unlock()
	for i := len(fns) - 1; i >= 0; i-- {
		fns[i]()
	}
}

// scopes maps goroutine ID -> *Scope (possibly nil: an explicit
// "no scope" shadowing an outer one while a worker runs an unscoped
// task).
var scopes sync.Map

// Enter installs s (which may be nil) as the calling goroutine's current
// scope and returns a restore function that reinstates the previous
// binding. Always call the restore function on the same goroutine.
func Enter(s *Scope) (restore func()) {
	return EnterG(gls.ID(), s)
}

// EnterG is Enter for a caller that has already resolved its goroutine
// ID (engine workers cache theirs once at startup): it skips the
// runtime.Stack parse that dominates Enter's cost on the worker path.
// id must be the calling goroutine's own ID, and the restore function
// must run on that same goroutine.
func EnterG(id uint64, s *Scope) (restore func()) {
	prev, had := scopes.Load(id)
	scopes.Store(id, s)
	return func() {
		if had {
			scopes.Store(id, prev)
		} else {
			scopes.Delete(id)
		}
	}
}

// Current returns the calling goroutine's scope, or nil.
func Current() *Scope {
	return CurrentG(gls.ID())
}

// CurrentG is Current with the goroutine ID supplied by the caller
// (see EnterG).
func CurrentG(id uint64) *Scope {
	v, ok := scopes.Load(id)
	if !ok {
		return nil
	}
	s, _ := v.(*Scope)
	return s
}
