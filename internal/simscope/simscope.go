// Package simscope carries per-simulation-cell determinism state to the
// code that needs it without threading a context parameter through every
// constructor in the simulator.
//
// A Scope travels implicitly with a goroutine (Enter/Current, keyed by
// goroutine ID) and holds everything that used to live in process-global
// state and therefore broke determinism the moment two experiments ran
// concurrently:
//
//   - the fault-injection seed and the activation snapshot captured when
//     the cell was scheduled, so injector streams derive from the cell's
//     identity instead of global creation order;
//   - the watchdog cycle budget the cell was scheduled under, so a
//     budget change for a later batch cannot leak into a still-queued
//     cell;
//   - a cycle accumulator, replacing the process-wide counter for
//     per-experiment cost attribution;
//   - the most recently fired fault point, replacing the global
//     last-fired register for failure attribution.
//
// The package sits below faultinject and cpu in the dependency order and
// imports nothing but gls, so every simulator layer can consult it.
package simscope

import (
	"sync"
	"sync/atomic"

	"spectrebench/internal/gls"
)

// Scope is the determinism context for one unit of simulation (a cell or
// a supervised experiment attempt). The exported fields are set before
// Enter and read-only afterwards; the accumulators are safe for
// concurrent use (a scope may be shared by an experiment goroutine and
// the sweep tasks it fans out).
type Scope struct {
	// FaultSeed roots injector derivation for cores constructed under
	// this scope. For a cell it is the hash of the cell key; for an
	// experiment attempt it is the (seed, id, attempt) derivation.
	FaultSeed uint64
	// Fault is the opaque fault-injection activation snapshot captured
	// when the scope was created (nil = faults off for this scope, even
	// if a global activation appears later).
	Fault any
	// Budget is the watchdog cycle budget for cores constructed under
	// this scope (0 = unlimited). Only consulted when HasBudget is set;
	// otherwise cores fall back to the process default.
	Budget    uint64
	HasBudget bool
	// Tag carries an arbitrary scheduler handle (the harness stores its
	// engine here so experiment code finds it without a global).
	Tag any

	seq       atomic.Uint64
	cycles    atomic.Uint64
	lastFired atomic.Uint32
}

// NextSeq returns the next injector-derivation sequence number in this
// scope (1, 2, ...). Construction order within a scope is deterministic,
// so the sequence decorrelates sibling cores reproducibly.
func (s *Scope) NextSeq() uint64 { return s.seq.Add(1) }

// AddCycles charges simulated cycles to the scope.
func (s *Scope) AddCycles(n uint64) {
	if s != nil && n > 0 {
		s.cycles.Add(n)
	}
}

// Cycles returns the simulated cycles charged so far.
func (s *Scope) Cycles() uint64 {
	if s == nil {
		return 0
	}
	return s.cycles.Load()
}

// NoteFired records p as the most recently fired fault point.
func (s *Scope) NoteFired(p uint8) {
	if s != nil {
		s.lastFired.Store(uint32(p) + 1)
	}
}

// LastFired returns the most recently fired fault point and whether any
// point fired under this scope.
func (s *Scope) LastFired() (uint8, bool) {
	if s == nil {
		return 0, false
	}
	v := s.lastFired.Load()
	if v == 0 {
		return 0, false
	}
	return uint8(v - 1), true
}

// scopes maps goroutine ID -> *Scope (possibly nil: an explicit
// "no scope" shadowing an outer one while a worker runs an unscoped
// task).
var scopes sync.Map

// Enter installs s (which may be nil) as the calling goroutine's current
// scope and returns a restore function that reinstates the previous
// binding. Always call the restore function on the same goroutine.
func Enter(s *Scope) (restore func()) {
	id := gls.ID()
	prev, had := scopes.Load(id)
	scopes.Store(id, s)
	return func() {
		if had {
			scopes.Store(id, prev)
		} else {
			scopes.Delete(id)
		}
	}
}

// Current returns the calling goroutine's scope, or nil.
func Current() *Scope {
	v, ok := scopes.Load(gls.ID())
	if !ok {
		return nil
	}
	s, _ := v.(*Scope)
	return s
}
