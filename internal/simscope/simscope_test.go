package simscope

import (
	"sync"
	"testing"
)

func TestEnterRestore(t *testing.T) {
	if Current() != nil {
		t.Fatal("fresh goroutine should have no scope")
	}
	outer := &Scope{FaultSeed: 1}
	restoreOuter := Enter(outer)
	if Current() != outer {
		t.Fatal("outer scope not current after Enter")
	}
	inner := &Scope{FaultSeed: 2}
	restoreInner := Enter(inner)
	if Current() != inner {
		t.Fatal("inner scope not current after nested Enter")
	}
	restoreInner()
	if Current() != outer {
		t.Fatal("outer scope not restored")
	}
	restoreOuter()
	if Current() != nil {
		t.Fatal("scope binding not cleared by final restore")
	}
}

func TestEnterNilShadowsOuter(t *testing.T) {
	outer := &Scope{FaultSeed: 1}
	restoreOuter := Enter(outer)
	defer restoreOuter()
	restoreNil := Enter(nil)
	if Current() != nil {
		t.Fatal("Enter(nil) should shadow the outer scope")
	}
	restoreNil()
	if Current() != outer {
		t.Fatal("outer scope not restored after nil shadow")
	}
}

func TestScopesAreGoroutineLocal(t *testing.T) {
	restore := Enter(&Scope{FaultSeed: 7})
	defer restore()
	done := make(chan *Scope)
	go func() { done <- Current() }()
	if got := <-done; got != nil {
		t.Fatalf("scope leaked to a fresh goroutine: %+v", got)
	}
}

func TestAccumulators(t *testing.T) {
	s := &Scope{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.AddCycles(3)
			}
		}()
	}
	wg.Wait()
	if got := s.Cycles(); got != 8*100*3 {
		t.Fatalf("Cycles() = %d, want %d", got, 8*100*3)
	}
	if _, ok := s.LastFired(); ok {
		t.Fatal("LastFired should start unset")
	}
	s.NoteFired(0) // point 0 must round-trip despite the zero value
	if p, ok := s.LastFired(); !ok || p != 0 {
		t.Fatalf("LastFired = %d,%v after NoteFired(0)", p, ok)
	}
	var nilScope *Scope
	nilScope.AddCycles(1) // nil-receiver safe
	nilScope.NoteFired(2)
	if nilScope.Cycles() != 0 {
		t.Fatal("nil scope accumulated cycles")
	}
}
