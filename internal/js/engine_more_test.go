package js

import (
	"strings"
	"testing"

	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
)

func TestHeapExhaustion(t *testing.T) {
	m := model.Zen2()
	e := NewEngine(m, kernel.Defaults(m), Mitigations{})
	// Allocate far more than the 8 MiB heap in a loop.
	src := `
		for (var i = 0; i < 200; i = i + 1) {
			var a = new Array(100000);
			a[0] = i;
		}
		report(1);
	`
	_, err := e.Run(src, 400_000_000)
	if err == nil || !strings.Contains(err.Error(), "heap exhausted") {
		t.Fatalf("err = %v, want heap exhaustion", err)
	}
}

func TestPointerPoisoningChangesStoredBits(t *testing.T) {
	// With poisoning on, the raw 64-bit value a heap reference variable
	// holds differs from the true address; the program still works.
	m := model.Zen()
	src := `
		var a = [5, 6, 7];
		report(a[0] + a[2]);
	`
	plain := NewEngine(m, kernel.Defaults(m), Mitigations{})
	rp, err := plain.Run(src, 20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	poisoned := NewEngine(m, kernel.Defaults(m), Mitigations{PointerPoisoning: true})
	rq, err := poisoned.Run(src, 20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Reports[0] != 12 || rq.Reports[0] != 12 {
		t.Errorf("results: %v vs %v", rp.Reports, rq.Reports)
	}
	if rq.Instructions <= rp.Instructions {
		t.Error("poisoning must execute extra unpoison instructions")
	}
}

func TestEngineStepBudget(t *testing.T) {
	m := model.Zen()
	e := NewEngine(m, kernel.Defaults(m), Mitigations{})
	src := `var i = 0; while (i < 1000000) { i = i + 1; } report(i);`
	if _, err := e.Run(src, 1000); err == nil {
		t.Fatal("step budget exceeded but no error")
	}
}

func TestEngineParseErrorPropagates(t *testing.T) {
	m := model.Zen()
	e := NewEngine(m, kernel.Defaults(m), Mitigations{})
	if _, err := e.Run("var x = ;", 1000); err == nil {
		t.Fatal("parse error not propagated")
	}
}

func TestJITCompileErrors(t *testing.T) {
	m := model.Zen()
	cases := []string{
		`var a = [1]; var x = a[0] << a[0];`,   // dynamic shift amount
		`report(missing);`,                     // undefined variable
		`var o = {length: 1};`,                 // reserved property
		`function f(a) { return g(a); } f(1);`, // undefined function
		`function f(a, b) { return a; } f(1);`, // arity mismatch
	}
	for _, src := range cases {
		e := NewEngine(m, kernel.Defaults(m), Mitigations{})
		if _, err := e.Run(src, 1000_000); err == nil {
			t.Errorf("Run(%q) succeeded, want compile error", src)
		}
	}
}

func TestDivideByZeroKillsJSProcess(t *testing.T) {
	m := model.Zen()
	e := NewEngine(m, kernel.Defaults(m), Mitigations{})
	src := `var z = 0; report(5 / z);`
	if _, err := e.Run(src, 1_000_000); err == nil {
		t.Fatal("division by zero did not error")
	}
}

func TestWhileTrueReturnInFunction(t *testing.T) {
	src := `
		function find(a, want) {
			var i = 0;
			while (true) {
				if (a[i] == want) { return i; }
				i = i + 1;
				if (i >= a.length) { return 0 - 1; }
			}
			return 0 - 2;
		}
		var a = [9, 8, 7, 6];
		report(find(a, 7));
		report(find(a, 42));
	`
	got := differential(t, src)
	if got[0] != 2 || got[1] != -1 {
		t.Errorf("reports = %v", got)
	}
}

func TestDeepRecursionWorks(t *testing.T) {
	src := `
		function down(n) {
			if (n == 0) { return 0; }
			return 1 + down(n - 1);
		}
		report(down(200));
	`
	got := differential(t, src)
	if got[0] != 200 {
		t.Errorf("depth = %v", got)
	}
}
