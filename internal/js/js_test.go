package js

import (
	"reflect"
	"strings"
	"testing"

	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
)

// runInterp parses and interprets, returning reports.
func runInterp(t *testing.T, src string) []int64 {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ip := NewInterp(prog)
	if err := ip.Run(); err != nil {
		t.Fatalf("interp: %v", err)
	}
	return ip.Reports()
}

// runJIT compiles and executes on the simulator, returning reports.
func runJIT(t *testing.T, src string, jsMit Mitigations) []int64 {
	t.Helper()
	m := model.IceLakeServer()
	e := NewEngine(m, kernel.Defaults(m), jsMit)
	res, err := e.Run(src, 80_000_000)
	if err != nil {
		t.Fatalf("jit run: %v", err)
	}
	return res.Reports
}

// differential runs the same program in the interpreter and the JIT
// (both hardened and unhardened) and requires identical reports.
func differential(t *testing.T, src string) []int64 {
	t.Helper()
	want := runInterp(t, src)
	for _, mit := range []Mitigations{{}, AllMitigations()} {
		got := runJIT(t, src, mit)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("JIT (mit=%+v) reports %v, interpreter %v", mit, got, want)
		}
	}
	return want
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"var ;",
		"function f( { }",
		"if (1 { }",
		"x = ;",
		"1 +",
		"var a = [1,;",
		"@",
		"var x = 5",   // missing semicolon
		"o = {f 1};",  // missing colon
		"new Foo(1);", // only new Array
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestArithmetic(t *testing.T) {
	got := differential(t, `
		var a = 10;
		var b = 3;
		report(a + b);
		report(a - b);
		report(a * b);
		report(a / b);
		report(a % b);
		report(-a);
		report(a << 2);
		report(a >> 1);
	`)
	want := []int64{13, 7, 30, 3, 1, -10, 40, 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("reports = %v, want %v", got, want)
	}
}

func TestComparisonsSigned(t *testing.T) {
	got := differential(t, `
		var a = 0 - 5;
		var b = 3;
		report(a < b);
		report(a > b);
		report(a <= a);
		report(b >= a);
		report(a == a);
		report(a != b);
		report(!0);
		report(!7);
	`)
	want := []int64{1, 0, 1, 1, 1, 1, 1, 0}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("reports = %v, want %v", got, want)
	}
}

func TestShortCircuit(t *testing.T) {
	got := differential(t, `
		var calls = 0;
		function bump() { return 1; }
		// RHS with no side effects still short-circuits structurally.
		report(0 && 1);
		report(1 && 2);
		report(0 || 0);
		report(0 || 3);
		report(1 || 0);
	`)
	want := []int64{0, 1, 0, 1, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("reports = %v, want %v", got, want)
	}
}

func TestControlFlow(t *testing.T) {
	got := differential(t, `
		var sum = 0;
		for (var i = 1; i <= 10; i = i + 1) {
			sum = sum + i;
		}
		report(sum);
		var n = 0;
		while (n < 5) { n = n + 1; }
		report(n);
		if (sum > 50) { report(1); } else { report(2); }
		if (sum == 55) { report(3); } else if (sum == 54) { report(4); } else { report(5); }
	`)
	want := []int64{55, 5, 1, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("reports = %v, want %v", got, want)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	got := differential(t, `
		function fib(n) {
			if (n < 2) { return n; }
			return fib(n - 1) + fib(n - 2);
		}
		function max(a, b) {
			if (a > b) { return a; }
			return b;
		}
		report(fib(15));
		report(max(3, 9));
		report(max(9, 3));
	`)
	want := []int64{610, 9, 9}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("reports = %v, want %v", got, want)
	}
}

func TestArrays(t *testing.T) {
	got := differential(t, `
		var a = [10, 20, 30];
		report(a.length);
		report(a[0] + a[1] + a[2]);
		a[1] = 99;
		report(a[1]);
		var b = new Array(100);
		for (var i = 0; i < b.length; i = i + 1) { b[i] = i * i; }
		var sum = 0;
		for (var i = 0; i < b.length; i = i + 1) { sum = sum + b[i]; }
		report(sum);
		// OOB reads are 0, OOB writes are dropped.
		report(a[50]);
		a[50] = 7;
		report(a.length);
	`)
	want := []int64{3, 60, 99, 328350, 0, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("reports = %v, want %v", got, want)
	}
}

func TestObjectsAndShapes(t *testing.T) {
	got := differential(t, `
		function mass(p) { return p.m; }
		var a = {m: 5, x: 1};
		var b = {m: 7, x: 2};
		var c = {x: 3, m: 11};  // different shape: polymorphic site
		report(mass(a));
		report(mass(b));
		report(mass(c));
		a.m = 50;
		report(a.m + b.x);
	`)
	want := []int64{5, 7, 11, 52}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("reports = %v, want %v", got, want)
	}
}

func TestNestedDataStructures(t *testing.T) {
	differential(t, `
		function sum2d(grid, n) {
			var total = 0;
			for (var i = 0; i < n; i = i + 1) {
				var row = grid[i];
				for (var j = 0; j < row.length; j = j + 1) {
					total = total + row[j];
				}
			}
			return total;
		}
		var g = [[1,2,3],[4,5,6],[7,8,9]];
		report(sum2d(g, 3));
	`)
}

func TestInterpErrors(t *testing.T) {
	cases := []string{
		"report(nosuchvar);",
		"nosuchfn(1);",
		"var o = {a: 1}; report(o.b);",
		"var x = 5; report(x[0]);",
		"report(1 / 0);",
	}
	for _, src := range cases {
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if err := NewInterp(prog).Run(); err == nil {
			t.Errorf("interp(%q) succeeded, want error", src)
		}
	}
}

func TestJITReportsICMisses(t *testing.T) {
	m := model.Zen3()
	src := `
		function get(o) { return o.v; }
		var a = {v: 1};
		var b = {w: 0, v: 2};
		var s = 0;
		for (var i = 0; i < 20; i = i + 1) {
			s = s + get(a) + get(b); // alternating shapes: misses
		}
		report(s);
	`
	e := NewEngine(m, kernel.Defaults(m), AllMitigations())
	res, err := e.Run(src, 40_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reports[0] != 60 {
		t.Errorf("report = %d", res.Reports[0])
	}
	if res.ICMisses < 10 {
		t.Errorf("IC misses = %d, want many (polymorphic site)", res.ICMisses)
	}
}

func TestMitigationsCostCycles(t *testing.T) {
	src := `
		var a = new Array(256);
		var o = {x: 1, y: 2};
		var s = 0;
		for (var i = 0; i < 200; i = i + 1) {
			a[i % 256] = i;
			s = s + a[(i * 7) % 256] + o.x + o.y;
		}
		report(s);
	`
	m := model.IceLakeServer()
	// Measure with seccomp-SSBD off so only the JIT-inserted work is
	// compared (under SSBD, extra instructions between stores and loads
	// can mask stalls and perturb the ordering).
	kmit := kernel.BootParams{NoSSBSD: true}.Apply(m, kernel.Defaults(m))
	run := func(jsMit Mitigations) uint64 {
		e := NewEngine(m, kmit, jsMit)
		res, err := e.Run(src, 80_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	none := run(Mitigations{})
	masked := run(Mitigations{IndexMasking: true})
	guarded := run(Mitigations{IndexMasking: true, ObjectGuards: true})
	all := run(AllMitigations())
	if !(none < masked && masked < guarded && guarded < all) {
		t.Errorf("cycle ordering wrong: none=%d masked=%d guarded=%d all=%d",
			none, masked, guarded, all)
	}
}

func TestSeccompSSBDTaxesTheEngine(t *testing.T) {
	// The engine enters seccomp; on ≤5.15 kernels that enables SSBD,
	// which taxes the JIT's store→load-heavy code. Disabling the
	// seccomp-SSBD policy (the 5.16 change) must speed the run up.
	src := `
		var a = new Array(64);
		var s = 0;
		for (var i = 0; i < 300; i = i + 1) {
			a[i % 64] = i;
			s = s + a[i % 64];
		}
		report(s);
	`
	m := model.Zen3()
	old := NewEngine(m, kernel.Defaults(m), AllMitigations())
	resOld, err := old.Run(src, 80_000_000)
	if err != nil {
		t.Fatal(err)
	}
	newMit := kernel.BootParams{NoSSBSD: true}.Apply(m, kernel.Defaults(m))
	newer := NewEngine(m, newMit, AllMitigations())
	resNew, err := newer.Run(src, 80_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if resOld.Cycles <= resNew.Cycles {
		t.Errorf("seccomp-SSBD run (%d) should be slower than 5.16 default (%d)",
			resOld.Cycles, resNew.Cycles)
	}
	if !reflect.DeepEqual(resOld.Reports, resNew.Reports) {
		t.Error("results must not depend on SSBD")
	}
}

func TestReducedTimerQuantises(t *testing.T) {
	src := `
		var t0 = clock();
		var s = 0;
		for (var i = 0; i < 100; i = i + 1) { s = s + i; }
		var t1 = clock();
		report(t1 - t0);
	`
	m := model.Broadwell()
	precise := NewEngine(m, kernel.Defaults(m), Mitigations{})
	rp, err := precise.Run(src, 40_000_000)
	if err != nil {
		t.Fatal(err)
	}
	coarse := NewEngine(m, kernel.Defaults(m), Mitigations{ReducedTimer: true})
	rc, err := coarse.Run(src, 40_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Reports[0] == 0 {
		t.Error("precise timer shows no elapsed time")
	}
	if rc.Reports[0]%2000 != 0 {
		t.Errorf("coarse timer delta %d not quantised", rc.Reports[0])
	}
}

func TestRuntimeErrorsSurface(t *testing.T) {
	m := model.Zen2()
	cases := []string{
		`var o = {a: 1}; report(o.b);`, // missing property
		`var x = 5; var y = x.a;`,      // property on non-object
	}
	for _, src := range cases {
		e := NewEngine(m, kernel.Defaults(m), AllMitigations())
		if _, err := e.Run(src, 20_000_000); err == nil {
			t.Errorf("Run(%q) succeeded, want error", src)
		}
	}
}

func TestLexerCoverage(t *testing.T) {
	src := "// comment\n/* block\ncomment */ var x = 0x10; x = x + 2;"
	got := differential(t, src+" report(x);")
	if got[0] != 18 {
		t.Errorf("hex + comments: %v", got)
	}
	if _, err := Parse("var x = 99999999999999999999999999;"); err == nil {
		t.Error("overflow literal accepted")
	}
	if !strings.Contains((&Error{Line: 3, Msg: "boom"}).Error(), "line 3") {
		t.Error("error formatting")
	}
}
