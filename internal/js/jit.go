package js

import (
	"fmt"

	"spectrebench/internal/isa"
	"spectrebench/internal/kernel"
)

// Mitigations are the JIT-inserted Spectre defences Firefox toggles via
// about:config (§4.3): the blue bars of Figure 3.
type Mitigations struct {
	// IndexMasking inserts a cmov that zeroes the index of any array
	// access that would be out of bounds (SpiderMonkey's Spectre V1
	// defence, ~4% on Octane).
	IndexMasking bool
	// ObjectGuards inserts a cmov that poisons the object pointer when
	// a shape guard fails, stopping speculative type confusion (~6%).
	ObjectGuards bool
	// PointerPoisoning stores heap pointers XORed with a secret
	// constant, unpoisoning at each dereference (part of "other
	// JavaScript" mitigations).
	PointerPoisoning bool
	// ReducedTimer coarsens the clock() builtin so it cannot time cache
	// hits (the other part of "other JavaScript").
	ReducedTimer bool
}

// AllMitigations returns the browser-default hardened configuration.
func AllMitigations() Mitigations {
	return Mitigations{IndexMasking: true, ObjectGuards: true, PointerPoisoning: true, ReducedTimer: true}
}

// Simulated address-space layout of the engine.
const (
	jsHeapBase  = 0x3000_0000 // bump-allocated heap
	jsHeapPages = 2048        // 8 MiB
	jsSiteBase  = 0x2f00_0000 // inline-cache site table
	jsSitePages = 16

	// Runtime thunk entry points (host-Go helpers; no mapping needed).
	thunkAlloc    = 0x7800_0000
	thunkReport   = 0x7800_0010
	thunkClock    = 0x7800_0020
	thunkPropMiss = 0x7800_0030

	// pointerPoison is the XOR constant for poisoned heap references.
	pointerPoison = 0x5a5a_0000_0000
)

// jit compiles a Program to simulator code.
type jit struct {
	a      *isa.Asm
	prog   *Program
	shapes *shapeTable
	cfg    Mitigations

	labelN int
	// sites records the property name behind each inline-cache site.
	sites []siteInfo

	fn *fnCtx
}

type siteInfo struct {
	prop  string
	store bool
}

type fnCtx struct {
	name    string
	params  []string
	slots   map[string]int // local name → slot index
	nlocals int
}

func (j *jit) label(prefix string) string {
	j.labelN++
	return fmt.Sprintf(".%s_%d", prefix, j.labelN)
}

func (j *jit) errf(format string, args ...any) error {
	return fmt.Errorf("jit: %s: "+format, append([]any{j.fn.name}, args...)...)
}

// compile translates the whole program. The returned site list maps IC
// site ids to property names for the miss thunk.
func compile(prog *Program, shapes *shapeTable, cfg Mitigations) (*isa.Program, []siteInfo, error) {
	j := &jit{a: isa.NewAsm(), prog: prog, shapes: shapes, cfg: cfg}
	a := j.a

	// Entry: enter the sandbox (Firefox uses seccomp), call main, exit.
	a.MovI(isa.R7, kernel.SysSeccomp)
	a.Syscall()
	a.Call("fn_main")
	a.MovI(isa.R1, 0)
	a.MovI(isa.R7, kernel.SysExit)
	a.Syscall()

	// Main as a function.
	if err := j.compileFunc(&Function{Name: "main", Body: prog.Main}); err != nil {
		return nil, nil, err
	}
	for _, fn := range sortedFuncs(prog) {
		if err := j.compileFunc(fn); err != nil {
			return nil, nil, err
		}
	}
	p, err := a.Assemble(kernel.UserCodeBase)
	if err != nil {
		return nil, nil, err
	}
	return p, j.sites, nil
}

func sortedFuncs(p *Program) []*Function {
	names := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		names = append(names, n)
	}
	// Deterministic compilation order.
	for i := 1; i < len(names); i++ {
		for k := i; k > 0 && names[k-1] > names[k]; k-- {
			names[k-1], names[k] = names[k], names[k-1]
		}
	}
	out := make([]*Function, len(names))
	for i, n := range names {
		out[i] = p.Funcs[n]
	}
	return out
}

// Frame layout (stack grows down; R15=SP, R14=FP):
//
//	[FP+16+8(n-1-i)]  argument i (pushed left-to-right by the caller)
//	[FP+8]            return address (pushed by CALL)
//	[FP]              saved FP
//	[FP-8-8j]         local j
func (j *jit) compileFunc(fn *Function) error {
	j.fn = &fnCtx{name: fn.Name, params: fn.Params, slots: map[string]int{}}
	collectLocals(fn.Body, j.fn)

	a := j.a
	a.Label("fn_" + fn.Name)
	// Prologue.
	a.SubI(isa.SP, 8)
	a.Store(isa.SP, 0, isa.R14)
	a.Mov(isa.R14, isa.SP)
	if j.fn.nlocals > 0 {
		a.SubI(isa.SP, int64(8*j.fn.nlocals))
	}
	for _, s := range fn.Body {
		if err := j.stmt(s); err != nil {
			return err
		}
	}
	// Implicit return 0.
	a.MovI(isa.R0, 0)
	a.Label(".epilogue_" + fn.Name)
	a.Mov(isa.SP, isa.R14)
	a.Load(isa.R14, isa.SP, 0)
	a.AddI(isa.SP, 8)
	a.Ret()
	return nil
}

// collectLocals assigns a frame slot to every var declared in the body.
func collectLocals(stmts []Stmt, fc *fnCtx) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *VarDecl:
			if _, dup := fc.slots[st.Name]; !dup {
				fc.slots[st.Name] = fc.nlocals
				fc.nlocals++
			}
		case *If:
			collectLocals(st.Then, fc)
			collectLocals(st.Else, fc)
		case *While:
			collectLocals(st.Body, fc)
		case *For:
			if st.Init != nil {
				collectLocals([]Stmt{st.Init}, fc)
			}
			collectLocals(st.Body, fc)
		}
	}
}

// varOffset returns the FP-relative offset of a name (param or local).
func (j *jit) varOffset(name string) (int64, error) {
	if slot, ok := j.fn.slots[name]; ok {
		return int64(-8 - 8*slot), nil
	}
	for i, p := range j.fn.params {
		if p == name {
			return int64(16 + 8*(len(j.fn.params)-1-i)), nil
		}
	}
	return 0, j.errf("undefined variable %q", name)
}

// push/pop of the operand stack.
func (j *jit) push(r isa.Reg) {
	j.a.SubI(isa.SP, 8)
	j.a.Store(isa.SP, 0, r)
}

func (j *jit) pop(r isa.Reg) {
	// Peephole: a pop immediately following a push collapses to a
	// register move — the "virtual top of stack in a register"
	// optimisation every baseline JIT performs. Without it, every
	// nested expression round-trips through memory and wildly
	// overstates store-forwarding traffic.
	if tail := j.a.Tail(2); len(tail) == 2 &&
		tail[0].Op == isa.SUBI && tail[0].Dst == isa.SP && tail[0].Imm == 8 &&
		tail[1].Op == isa.STORE && tail[1].Src1 == isa.SP && tail[1].Imm == 0 {
		src := tail[1].Src2
		if j.a.DropLast(2) {
			if src != r {
				j.a.Mov(r, src)
			}
			return
		}
	}
	j.a.Load(r, isa.SP, 0)
	j.a.AddI(isa.SP, 8)
}

// simpleTo emits a direct evaluation of trivially-computable expressions
// into a register, bypassing the operand stack — the register-direct
// fast path any baseline JIT performs for leaf operands. Reports false
// when the expression needs the general stack path.
func (j *jit) simpleTo(e Expr, r isa.Reg) bool {
	switch ex := e.(type) {
	case *NumLit:
		j.a.MovI(r, ex.Value)
		return true
	case *Ident:
		off, err := j.varOffset(ex.Name)
		if err != nil {
			return false // surfaced by the general path
		}
		j.a.Load(r, isa.R14, off)
		return true
	}
	return false
}

// operandsTo evaluates two operands into (rl, rr), using the direct
// path where possible.
func (j *jit) operandsTo(l, r Expr, rl, rr isa.Reg) error {
	switch {
	case j.canSimple(l) && j.canSimple(r):
		j.simpleTo(l, rl)
		j.simpleTo(r, rr)
	case j.canSimple(r):
		if err := j.expr(l); err != nil {
			return err
		}
		j.pop(rl)
		j.simpleTo(r, rr)
	default:
		if err := j.expr(l); err != nil {
			return err
		}
		if err := j.expr(r); err != nil {
			return err
		}
		j.pop(rr)
		j.pop(rl)
	}
	return nil
}

func (j *jit) canSimple(e Expr) bool {
	switch ex := e.(type) {
	case *NumLit:
		return true
	case *Ident:
		_, err := j.varOffset(ex.Name)
		return err == nil
	}
	return false
}

// unpoison strips pointer poisoning from a heap reference in r.
func (j *jit) unpoison(r isa.Reg) {
	if j.cfg.PointerPoisoning {
		j.a.MovI(isa.R9, pointerPoison)
		j.a.Xor(r, isa.R9)
	}
}

func (j *jit) stmt(s Stmt) error {
	a := j.a
	switch st := s.(type) {
	case *VarDecl:
		off, err := j.varOffset(st.Name)
		if err != nil {
			return err
		}
		switch {
		case st.Init == nil:
			a.MovI(isa.R0, 0)
		case j.canSimple(st.Init):
			j.simpleTo(st.Init, isa.R0)
		default:
			if err := j.expr(st.Init); err != nil {
				return err
			}
			j.pop(isa.R0)
		}
		a.Store(isa.R14, off, isa.R0)
		return nil

	case *Assign:
		switch tgt := st.Target.(type) {
		case *Ident:
			off, err := j.varOffset(tgt.Name)
			if err != nil {
				return err
			}
			if j.canSimple(st.Val) {
				j.simpleTo(st.Val, isa.R0)
			} else {
				if err := j.expr(st.Val); err != nil {
					return err
				}
				j.pop(isa.R0)
			}
			a.Store(isa.R14, off, isa.R0)
			return nil
		case *Index:
			if j.canSimple(tgt.Arr) && j.canSimple(tgt.Idx) && j.canSimple(st.Val) {
				j.simpleTo(tgt.Arr, isa.R0)
				j.simpleTo(tgt.Idx, isa.R1)
				j.simpleTo(st.Val, isa.R3)
			} else {
				if err := j.expr(tgt.Arr); err != nil {
					return err
				}
				if err := j.expr(tgt.Idx); err != nil {
					return err
				}
				if err := j.expr(st.Val); err != nil {
					return err
				}
				j.pop(isa.R3) // value
				j.pop(isa.R1) // index
				j.pop(isa.R0) // array
			}
			j.unpoison(isa.R0)
			j.emitBoundsCheckedStore()
			return nil
		case *Prop:
			if j.canSimple(tgt.Obj) && j.canSimple(st.Val) {
				j.simpleTo(tgt.Obj, isa.R0)
				j.simpleTo(st.Val, isa.R6)
			} else {
				if err := j.expr(tgt.Obj); err != nil {
					return err
				}
				if err := j.expr(st.Val); err != nil {
					return err
				}
				j.pop(isa.R6) // value
				j.pop(isa.R0) // object
			}
			j.unpoison(isa.R0)
			j.emitPropSite(tgt.Name, true)
			return nil
		}
		return j.errf("bad assignment target %T", st.Target)

	case *ExprStmt:
		if err := j.expr(st.X); err != nil {
			return err
		}
		a.AddI(isa.SP, 8) // discard
		return nil

	case *If:
		els, done := j.label("else"), j.label("endif")
		if err := j.condJumpFalse(st.Cond, els); err != nil {
			return err
		}
		for _, s := range st.Then {
			if err := j.stmt(s); err != nil {
				return err
			}
		}
		a.Jmp(done)
		a.Label(els)
		for _, s := range st.Else {
			if err := j.stmt(s); err != nil {
				return err
			}
		}
		a.Label(done)
		return nil

	case *While:
		top, done := j.label("while"), j.label("endwhile")
		a.Label(top)
		if err := j.condJumpFalse(st.Cond, done); err != nil {
			return err
		}
		for _, s := range st.Body {
			if err := j.stmt(s); err != nil {
				return err
			}
		}
		a.Jmp(top)
		a.Label(done)
		return nil

	case *For:
		if st.Init != nil {
			if err := j.stmt(st.Init); err != nil {
				return err
			}
		}
		top, done := j.label("for"), j.label("endfor")
		a.Label(top)
		if st.Cond != nil {
			if err := j.condJumpFalse(st.Cond, done); err != nil {
				return err
			}
		}
		for _, s := range st.Body {
			if err := j.stmt(s); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if err := j.stmt(st.Post); err != nil {
				return err
			}
		}
		a.Jmp(top)
		a.Label(done)
		return nil

	case *Return:
		switch {
		case st.Val == nil:
			a.MovI(isa.R0, 0)
		case j.canSimple(st.Val):
			j.simpleTo(st.Val, isa.R0)
		default:
			if err := j.expr(st.Val); err != nil {
				return err
			}
			j.pop(isa.R0)
		}
		a.Jmp(".epilogue_" + j.fn.name)
		return nil
	}
	return j.errf("unknown statement %T", s)
}

// condJumpFalse evaluates cond and jumps to target when it is falsy.
func (j *jit) condJumpFalse(cond Expr, target string) error {
	if j.canSimple(cond) {
		j.simpleTo(cond, isa.R0)
	} else {
		if err := j.expr(cond); err != nil {
			return err
		}
		j.pop(isa.R0)
	}
	j.a.CmpI(isa.R0, 0)
	j.a.Jeq(target)
	return nil
}

// expr compiles an expression; the result is left on the operand stack.
func (j *jit) expr(e Expr) error {
	a := j.a
	switch ex := e.(type) {
	case *NumLit:
		a.MovI(isa.R0, ex.Value)
		j.push(isa.R0)
		return nil

	case *Ident:
		off, err := j.varOffset(ex.Name)
		if err != nil {
			return err
		}
		a.Load(isa.R0, isa.R14, off)
		j.push(isa.R0)
		return nil

	case *Unary:
		if j.canSimple(ex.X) {
			j.simpleTo(ex.X, isa.R1)
		} else {
			if err := j.expr(ex.X); err != nil {
				return err
			}
			j.pop(isa.R1)
		}
		if ex.Op == "-" {
			a.MovI(isa.R0, 0)
			a.Sub(isa.R0, isa.R1)
		} else { // !
			a.CmpI(isa.R1, 0)
			a.MovI(isa.R0, 0)
			a.MovI(isa.R2, 1)
			a.CmovEq(isa.R0, isa.R2)
		}
		j.push(isa.R0)
		return nil

	case *Binary:
		return j.binary(ex)

	case *Call:
		return j.call(ex)

	case *ArrayLit:
		// Allocate, then fill element by element with the pointer kept
		// on the stack.
		a.MovI(isa.R1, int64(len(ex.Elems)))
		a.MovI(isa.R2, 0) // kind: array
		j.emitThunkCall(thunkAlloc)
		j.push(isa.R0) // (possibly poisoned) pointer
		for i, el := range ex.Elems {
			if err := j.expr(el); err != nil {
				return err
			}
			j.pop(isa.R1)             // value
			a.Load(isa.R0, isa.SP, 0) // peek pointer
			j.unpoison(isa.R0)
			a.Store(isa.R0, int64(8+8*i), isa.R1)
		}
		return nil

	case *ObjectLit:
		props := make([]string, len(ex.Fields))
		for i, f := range ex.Fields {
			props[i] = f.Name
			if f.Name == "length" {
				return j.errf("property name 'length' is reserved")
			}
		}
		shape := j.shapes.intern(props)
		a.MovI(isa.R1, int64(len(ex.Fields)))
		a.MovI(isa.R2, int64(shape.ID))
		j.emitThunkCall(thunkAlloc)
		j.push(isa.R0)
		for i, f := range ex.Fields {
			if err := j.expr(f.Val); err != nil {
				return err
			}
			j.pop(isa.R1)
			a.Load(isa.R0, isa.SP, 0)
			j.unpoison(isa.R0)
			a.Store(isa.R0, int64(8+8*i), isa.R1)
		}
		return nil

	case *Index:
		if err := j.operandsTo(ex.Arr, ex.Idx, isa.R0, isa.R1); err != nil {
			return err
		}
		j.unpoison(isa.R0)
		j.emitBoundsCheckedLoad()
		j.push(isa.R0)
		return nil

	case *Prop:
		if j.canSimple(ex.Obj) {
			j.simpleTo(ex.Obj, isa.R0)
		} else {
			if err := j.expr(ex.Obj); err != nil {
				return err
			}
			j.pop(isa.R0)
		}
		j.unpoison(isa.R0)
		if ex.Name == "length" {
			// Arrays store their length in the header word.
			a.Load(isa.R0, isa.R0, 0)
			j.push(isa.R0)
			return nil
		}
		j.emitPropSite(ex.Name, false)
		j.push(isa.R0)
		return nil
	}
	return j.errf("unknown expression %T", e)
}

func (j *jit) binary(ex *Binary) error {
	a := j.a
	// Short-circuit logic compiles to branches (same semantics as the
	// interpreter).
	if ex.Op == "&&" || ex.Op == "||" {
		fail, done := j.label("sc"), j.label("scdone")
		if err := j.expr(ex.L); err != nil {
			return err
		}
		j.pop(isa.R0)
		a.CmpI(isa.R0, 0)
		if ex.Op == "&&" {
			a.Jeq(fail)
		} else {
			a.Jne(fail) // for ||, "fail" is the early-true path
		}
		if err := j.expr(ex.R); err != nil {
			return err
		}
		j.pop(isa.R0)
		a.CmpI(isa.R0, 0)
		a.MovI(isa.R0, 0)
		a.MovI(isa.R1, 1)
		a.CmovNe(isa.R0, isa.R1)
		a.Jmp(done)
		a.Label(fail)
		if ex.Op == "&&" {
			a.MovI(isa.R0, 0)
		} else {
			a.MovI(isa.R0, 1)
		}
		a.Label(done)
		j.push(isa.R0)
		return nil
	}

	if err := j.operandsTo(ex.L, ex.R, isa.R0, isa.R1); err != nil {
		return err
	}
	switch ex.Op {
	case "+":
		a.Add(isa.R0, isa.R1)
	case "-":
		a.Sub(isa.R0, isa.R1)
	case "*":
		a.Mul(isa.R0, isa.R1)
	case "/":
		a.Div(isa.R0, isa.R1)
	case "%":
		a.Mov(isa.R2, isa.R0)
		a.Div(isa.R2, isa.R1)
		a.Mul(isa.R2, isa.R1)
		a.Sub(isa.R0, isa.R2)
	case "<<":
		// Dynamic shifts are compiled as multiply by 2^k for constant
		// shifts only.
		if lit, ok := ex.R.(*NumLit); ok {
			j.a.ShlI(isa.R0, lit.Value)
		} else {
			return j.errf("only constant shift amounts are supported")
		}
	case ">>":
		if lit, ok := ex.R.(*NumLit); ok {
			j.a.ShrI(isa.R0, lit.Value)
		} else {
			return j.errf("only constant shift amounts are supported")
		}
	case "==", "!=":
		a.Cmp(isa.R0, isa.R1)
		a.MovI(isa.R0, 0)
		a.MovI(isa.R2, 1)
		if ex.Op == "==" {
			a.CmovEq(isa.R0, isa.R2)
		} else {
			a.CmovNe(isa.R0, isa.R2)
		}
	case "<", "<=", ">", ">=":
		j.emitSignedCompare(ex.Op)
	default:
		return j.errf("unknown operator %q", ex.Op)
	}
	j.push(isa.R0)
	return nil
}

// emitSignedCompare compares R0 (lhs) with R1 (rhs) as signed integers
// by biasing both into unsigned space, leaving 0/1 in R0.
func (j *jit) emitSignedCompare(op string) {
	a := j.a
	a.MovI(isa.R3, -0x8000_0000_0000_0000) // sign-bias
	a.Add(isa.R0, isa.R3)
	a.Add(isa.R1, isa.R3)
	switch op {
	case "<":
		a.Cmp(isa.R0, isa.R1)
		a.MovI(isa.R0, 0)
		a.MovI(isa.R2, 1)
		a.CmovLt(isa.R0, isa.R2)
	case ">=":
		a.Cmp(isa.R0, isa.R1)
		a.MovI(isa.R0, 1)
		a.MovI(isa.R2, 0)
		a.CmovLt(isa.R0, isa.R2)
	case ">":
		a.Cmp(isa.R1, isa.R0) // rhs < lhs
		a.MovI(isa.R0, 0)
		a.MovI(isa.R2, 1)
		a.CmovLt(isa.R0, isa.R2)
	case "<=":
		a.Cmp(isa.R1, isa.R0)
		a.MovI(isa.R0, 1)
		a.MovI(isa.R2, 0)
		a.CmovLt(isa.R0, isa.R2)
	}
}

func (j *jit) call(c *Call) error {
	a := j.a
	switch c.Name {
	case "report":
		if len(c.Args) != 1 {
			return j.errf("report takes 1 argument")
		}
		if err := j.expr(c.Args[0]); err != nil {
			return err
		}
		j.pop(isa.R1)
		j.emitThunkCall(thunkReport)
		a.MovI(isa.R0, 0)
		j.push(isa.R0)
		return nil
	case "array":
		if len(c.Args) != 1 {
			return j.errf("array takes 1 argument")
		}
		if err := j.expr(c.Args[0]); err != nil {
			return err
		}
		j.pop(isa.R1)
		a.MovI(isa.R2, 0)
		j.emitThunkCall(thunkAlloc)
		j.push(isa.R0)
		return nil
	case "clock":
		j.emitThunkCall(thunkClock)
		j.push(isa.R0)
		return nil
	}

	fn, ok := j.prog.Funcs[c.Name]
	if !ok {
		return j.errf("undefined function %q", c.Name)
	}
	if len(c.Args) != len(fn.Params) {
		return j.errf("%s expects %d args, got %d", c.Name, len(fn.Params), len(c.Args))
	}
	for _, arg := range c.Args {
		if err := j.expr(arg); err != nil {
			return err
		}
	}
	a.Call("fn_" + c.Name)
	if len(c.Args) > 0 {
		a.AddI(isa.SP, int64(8*len(c.Args)))
	}
	j.push(isa.R0)
	return nil
}

// emitThunkCall transfers to a host-Go runtime helper and resumes at a
// fresh continuation label. Arguments are in registers per thunk ABI;
// the thunk sets PC = R11.
func (j *jit) emitThunkCall(addr uint64) {
	cont := j.label("thunkret")
	j.a.MovLabel(isa.R11, cont)
	j.a.JmpAbs(addr)
	j.a.Label(cont)
}

// emitBoundsCheckedLoad compiles `R0 = array[R1]` with the mandatory
// bounds check and the optional index-masking cmov. R0 holds the
// unpoisoned array pointer on entry and the element (or 0 for OOB) on
// exit. The predicted-not-taken bounds branch is the Spectre V1 window.
func (j *jit) emitBoundsCheckedLoad() {
	a := j.a
	oob, done := j.label("oob"), j.label("idxdone")
	a.Load(isa.R2, isa.R0, 0) // length
	a.Cmp(isa.R1, isa.R2)
	a.Jge(oob) // unsigned: negative indexes are huge and fail too
	if j.cfg.IndexMasking {
		// cmp idx,len ; cmovge idx,zero — the SpiderMonkey pattern: on
		// the architectural path this is a no-op, but it clamps the
		// index before the transient load can run ahead of the bounds
		// branch.
		a.MovI(isa.R3, 0)
		a.Cmp(isa.R1, isa.R2)
		a.CmovGe(isa.R1, isa.R3)
	}
	a.Mov(isa.R3, isa.R1)
	a.ShlI(isa.R3, 3)
	a.Add(isa.R3, isa.R0)
	a.Load(isa.R0, isa.R3, 8)
	if j.cfg.ObjectGuards {
		// Element-kind guard: engines re-validate loaded elements
		// (hole checks / unboxing) with a conditional move keyed to
		// the bounds comparison still in flags.
		a.MovI(isa.R3, 0)
		a.Cmp(isa.R1, isa.R2)
		a.CmovGe(isa.R0, isa.R3)
	}
	a.Jmp(done)
	a.Label(oob)
	a.MovI(isa.R0, 0)
	a.Label(done)
}

// emitBoundsCheckedStore compiles `array[R1] = R3` (R0 = unpoisoned
// array pointer). OOB stores are dropped.
func (j *jit) emitBoundsCheckedStore() {
	a := j.a
	oob := j.label("oobst")
	a.Load(isa.R2, isa.R0, 0)
	a.Cmp(isa.R1, isa.R2)
	a.Jge(oob)
	if j.cfg.IndexMasking {
		a.MovI(isa.R4, 0)
		a.Cmp(isa.R1, isa.R2)
		a.CmovGe(isa.R1, isa.R4)
	}
	a.Mov(isa.R4, isa.R1)
	a.ShlI(isa.R4, 3)
	a.Add(isa.R4, isa.R0)
	a.Store(isa.R4, 8, isa.R3)
	a.Label(oob)
}

// emitPropSite compiles a property access through an inline cache with
// a shape guard. On entry R0 holds the unpoisoned object pointer (and
// R6 the value for stores); on exit R0 holds the loaded value (loads).
// The shape-guard branch is the speculative-type-confusion surface; the
// optional cmov poisons the object pointer when the guard fails.
func (j *jit) emitPropSite(name string, store bool) {
	a := j.a
	siteID := len(j.sites)
	j.sites = append(j.sites, siteInfo{prop: name, store: store})
	siteVA := int64(jsSiteBase + siteID*16)

	retry := j.label("icretry")
	slow := j.label("icslow")
	done := j.label("icdone")

	a.Label(retry)
	a.Load(isa.R1, isa.R0, 0) // shape id
	a.MovI(isa.R2, siteVA)
	a.Load(isa.R3, isa.R2, 0) // cached shape
	a.Cmp(isa.R1, isa.R3)
	a.Jne(slow)
	if j.cfg.ObjectGuards {
		// Zero the object pointer if the shape guard failed: a
		// mis-speculated type confusion dereferences null instead of
		// reinterpreting another object's fields.
		a.MovI(isa.R4, 0)
		a.CmovNe(isa.R0, isa.R4)
	}
	a.Load(isa.R5, isa.R2, 8) // cached byte offset
	a.Add(isa.R5, isa.R0)
	if store {
		a.Store(isa.R5, 0, isa.R6)
	} else {
		a.Load(isa.R0, isa.R5, 0)
		if j.cfg.ObjectGuards {
			// Unboxing guard: production engines re-check the type of
			// every loaded value before using it; the guard is another
			// conditional move in the dependency chain.
			a.MovI(isa.R4, 0)
			a.Cmp(isa.R1, isa.R3)
			a.CmovNe(isa.R0, isa.R4)
		}
	}
	a.Jmp(done)
	a.Label(slow)
	a.MovI(isa.R10, int64(siteID))
	a.MovLabel(isa.R11, retry)
	a.JmpAbs(thunkPropMiss)
	a.Label(done)
}
