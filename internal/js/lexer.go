package js

import (
	"fmt"
	"strconv"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokNum
	tokIdent
	tokKeyword
	tokPunct
)

type token struct {
	kind tokKind
	text string
	num  int64
	line int
}

var keywords = map[string]bool{
	"function": true, "var": true, "let": true, "if": true, "else": true,
	"while": true, "for": true, "return": true, "true": true, "false": true,
	"new": true,
}

// lexer tokenises mini-JS source.
type lexer struct {
	src  []rune
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1}
}

func (l *lexer) errf(format string, args ...any) *Error {
	return &Error{Line: l.line, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekRune() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) at(i int) rune {
	if l.pos+i >= len(l.src) {
		return 0
	}
	return l.src[l.pos+i]
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case unicode.IsSpace(c):
			l.pos++
		case c == '/' && l.at(1) == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.at(1) == '*':
			l.pos += 2
			for l.pos < len(l.src) && !(l.src[l.pos] == '*' && l.at(1) == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			l.pos += 2
		default:
			return
		}
	}
}

// twoCharPunct lists multi-rune operators, longest match first.
var twoCharPunct = []string{"==", "!=", "<=", ">=", "&&", "||", "<<", ">>"}

func (l *lexer) next() (token, *Error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	c := l.peekRune()
	start := l.pos

	if unicode.IsDigit(c) {
		for l.pos < len(l.src) && (unicode.IsDigit(l.src[l.pos]) ||
			l.src[l.pos] == 'x' || l.src[l.pos] == 'X' ||
			(l.src[l.pos] >= 'a' && l.src[l.pos] <= 'f') ||
			(l.src[l.pos] >= 'A' && l.src[l.pos] <= 'F')) {
			l.pos++
		}
		text := string(l.src[start:l.pos])
		n, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return token{}, l.errf("bad number %q", text)
		}
		return token{kind: tokNum, text: text, num: n, line: l.line}, nil
	}

	if unicode.IsLetter(c) || c == '_' {
		for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) || unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
			l.pos++
		}
		text := string(l.src[start:l.pos])
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: l.line}, nil
	}

	for _, p := range twoCharPunct {
		if string(l.src[l.pos:min(l.pos+2, len(l.src))]) == p {
			l.pos += 2
			return token{kind: tokPunct, text: p, line: l.line}, nil
		}
	}

	switch c {
	case '+', '-', '*', '/', '%', '<', '>', '=', '!', '(', ')', '{', '}',
		'[', ']', ',', ';', '.', ':':
		l.pos++
		return token{kind: tokPunct, text: string(c), line: l.line}, nil
	}
	return token{}, l.errf("unexpected character %q", string(c))
}

// lexAll tokenises the whole input.
func lexAll(src string) ([]token, *Error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
