package js

import "fmt"

// Interp is the reference tree-walking interpreter. It defines the
// language semantics; the JIT is differentially tested against it.
type Interp struct {
	prog    *Program
	shapes  *shapeTable
	reports []int64
	// clock provides the clock() builtin (tests inject a counter).
	clock func() int64
	steps int
	limit int
}

// object is an interpreter heap object.
type object struct {
	shape  *Shape
	fields []value
}

// array is an interpreter heap array.
type array struct {
	elems []value
}

// value is an interpreter value: int64, *array, or *object.
type value any

// NewInterp prepares an interpreter for a parsed program.
func NewInterp(prog *Program) *Interp {
	return &Interp{
		prog:   prog,
		shapes: newShapeTable(),
		clock:  func() int64 { return 0 },
		limit:  200_000_000,
	}
}

// Reports returns the values passed to report() during execution.
func (ip *Interp) Reports() []int64 { return ip.reports }

// Run executes the program's main statements.
func (ip *Interp) Run() error {
	env := newScope(nil)
	hoistVars(ip.prog.Main, env)
	_, err := ip.execBlock(ip.prog.Main, env)
	return err
}

// hoistVars pre-declares every var in the body as 0 (JS `var` hoisting),
// mirroring the JIT's zero-initialised frame slots.
func hoistVars(stmts []Stmt, env *scope) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *VarDecl:
			if _, ok := env.vars[st.Name]; !ok {
				env.vars[st.Name] = int64(0)
			}
		case *If:
			hoistVars(st.Then, env)
			hoistVars(st.Else, env)
		case *While:
			hoistVars(st.Body, env)
		case *For:
			if st.Init != nil {
				hoistVars([]Stmt{st.Init}, env)
			}
			hoistVars(st.Body, env)
		}
	}
}

type scope struct {
	vars   map[string]value
	parent *scope
}

func newScope(parent *scope) *scope {
	return &scope{vars: make(map[string]value), parent: parent}
}

func (s *scope) lookup(name string) (value, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if v, ok := cur.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

func (s *scope) set(name string, v value) bool {
	for cur := s; cur != nil; cur = cur.parent {
		if _, ok := cur.vars[name]; ok {
			cur.vars[name] = v
			return true
		}
	}
	return false
}

// returnSignal unwinds a function return.
type returnSignal struct{ val value }

func (ip *Interp) tick() error {
	ip.steps++
	if ip.steps > ip.limit {
		return fmt.Errorf("js: interpreter step limit exceeded")
	}
	return nil
}

func (ip *Interp) execBlock(stmts []Stmt, env *scope) (*returnSignal, error) {
	for _, s := range stmts {
		ret, err := ip.exec(s, env)
		if err != nil || ret != nil {
			return ret, err
		}
	}
	return nil, nil
}

func (ip *Interp) exec(s Stmt, env *scope) (*returnSignal, error) {
	if err := ip.tick(); err != nil {
		return nil, err
	}
	switch st := s.(type) {
	case *VarDecl:
		var v value = int64(0)
		if st.Init != nil {
			ev, err := ip.eval(st.Init, env)
			if err != nil {
				return nil, err
			}
			v = ev
		}
		env.vars[st.Name] = v
		return nil, nil

	case *Assign:
		v, err := ip.eval(st.Val, env)
		if err != nil {
			return nil, err
		}
		switch tgt := st.Target.(type) {
		case *Ident:
			if !env.set(tgt.Name, v) {
				// Implicit global-ish declaration at current scope.
				env.vars[tgt.Name] = v
			}
		case *Index:
			av, err := ip.eval(tgt.Arr, env)
			if err != nil {
				return nil, err
			}
			iv, err := ip.evalInt(tgt.Idx, env)
			if err != nil {
				return nil, err
			}
			arr, ok := av.(*array)
			if !ok {
				return nil, fmt.Errorf("js: indexing non-array")
			}
			if iv >= 0 && int(iv) < len(arr.elems) {
				arr.elems[iv] = v
			}
			// OOB writes are silently dropped (dense-array model).
		case *Prop:
			ov, err := ip.eval(tgt.Obj, env)
			if err != nil {
				return nil, err
			}
			obj, ok := ov.(*object)
			if !ok {
				return nil, fmt.Errorf("js: property store on non-object")
			}
			slot := obj.shape.Slot(tgt.Name)
			if slot < 0 {
				return nil, fmt.Errorf("js: unknown property %q", tgt.Name)
			}
			obj.fields[slot] = v
		}
		return nil, nil

	case *ExprStmt:
		_, err := ip.eval(st.X, env)
		return nil, err

	case *If:
		// var declarations are function-scoped (JS `var` hoisting), so
		// blocks execute in the enclosing scope — matching the JIT's
		// frame-slot allocation.
		c, err := ip.evalInt(st.Cond, env)
		if err != nil {
			return nil, err
		}
		if c != 0 {
			return ip.execBlock(st.Then, env)
		}
		return ip.execBlock(st.Else, env)

	case *While:
		for {
			c, err := ip.evalInt(st.Cond, env)
			if err != nil {
				return nil, err
			}
			if c == 0 {
				return nil, nil
			}
			ret, err := ip.execBlock(st.Body, env)
			if err != nil || ret != nil {
				return ret, err
			}
		}

	case *For:
		if st.Init != nil {
			if ret, err := ip.exec(st.Init, env); err != nil || ret != nil {
				return ret, err
			}
		}
		for {
			if st.Cond != nil {
				c, err := ip.evalInt(st.Cond, env)
				if err != nil {
					return nil, err
				}
				if c == 0 {
					return nil, nil
				}
			}
			ret, err := ip.execBlock(st.Body, env)
			if err != nil || ret != nil {
				return ret, err
			}
			if st.Post != nil {
				if ret, err := ip.exec(st.Post, env); err != nil || ret != nil {
					return ret, err
				}
			}
		}

	case *Return:
		var v value = int64(0)
		if st.Val != nil {
			ev, err := ip.eval(st.Val, env)
			if err != nil {
				return nil, err
			}
			v = ev
		}
		return &returnSignal{val: v}, nil
	}
	return nil, fmt.Errorf("js: unknown statement %T", s)
}

func toInt(v value) (int64, error) {
	if n, ok := v.(int64); ok {
		return n, nil
	}
	return 0, fmt.Errorf("js: expected number, got %T", v)
}

func (ip *Interp) evalInt(e Expr, env *scope) (int64, error) {
	v, err := ip.eval(e, env)
	if err != nil {
		return 0, err
	}
	return toInt(v)
}

func (ip *Interp) eval(e Expr, env *scope) (value, error) {
	if err := ip.tick(); err != nil {
		return nil, err
	}
	switch ex := e.(type) {
	case *NumLit:
		return ex.Value, nil

	case *Ident:
		v, ok := env.lookup(ex.Name)
		if !ok {
			return nil, fmt.Errorf("js: undefined variable %q", ex.Name)
		}
		return v, nil

	case *Unary:
		x, err := ip.evalInt(ex.X, env)
		if err != nil {
			return nil, err
		}
		if ex.Op == "-" {
			return -x, nil
		}
		if x == 0 {
			return int64(1), nil
		}
		return int64(0), nil

	case *Binary:
		// Short-circuit logic first.
		if ex.Op == "&&" {
			l, err := ip.evalInt(ex.L, env)
			if err != nil || l == 0 {
				return int64(0), err
			}
			r, err := ip.evalInt(ex.R, env)
			if err != nil {
				return nil, err
			}
			return b2i(r != 0), nil
		}
		if ex.Op == "||" {
			l, err := ip.evalInt(ex.L, env)
			if err != nil {
				return nil, err
			}
			if l != 0 {
				return int64(1), nil
			}
			r, err := ip.evalInt(ex.R, env)
			if err != nil {
				return nil, err
			}
			return b2i(r != 0), nil
		}
		l, err := ip.evalInt(ex.L, env)
		if err != nil {
			return nil, err
		}
		r, err := ip.evalInt(ex.R, env)
		if err != nil {
			return nil, err
		}
		switch ex.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return nil, fmt.Errorf("js: division by zero")
			}
			return l / r, nil
		case "%":
			if r == 0 {
				return nil, fmt.Errorf("js: modulo by zero")
			}
			return l % r, nil
		case "<":
			return b2i(l < r), nil
		case "<=":
			return b2i(l <= r), nil
		case ">":
			return b2i(l > r), nil
		case ">=":
			return b2i(l >= r), nil
		case "==":
			return b2i(l == r), nil
		case "!=":
			return b2i(l != r), nil
		case "<<":
			return l << uint64(r&63), nil
		case ">>":
			return int64(uint64(l) >> uint64(r&63)), nil
		}
		return nil, fmt.Errorf("js: unknown operator %q", ex.Op)

	case *Call:
		return ip.call(ex, env)

	case *ArrayLit:
		arr := &array{elems: make([]value, len(ex.Elems))}
		for i, el := range ex.Elems {
			v, err := ip.eval(el, env)
			if err != nil {
				return nil, err
			}
			arr.elems[i] = v
		}
		return arr, nil

	case *Index:
		av, err := ip.eval(ex.Arr, env)
		if err != nil {
			return nil, err
		}
		iv, err := ip.evalInt(ex.Idx, env)
		if err != nil {
			return nil, err
		}
		arr, ok := av.(*array)
		if !ok {
			return nil, fmt.Errorf("js: indexing non-array")
		}
		if iv < 0 || int(iv) >= len(arr.elems) {
			return int64(0), nil // OOB read = 0 ("undefined")
		}
		return arr.elems[iv], nil

	case *ObjectLit:
		props := make([]string, len(ex.Fields))
		fields := make([]value, len(ex.Fields))
		for i, f := range ex.Fields {
			props[i] = f.Name
			v, err := ip.eval(f.Val, env)
			if err != nil {
				return nil, err
			}
			fields[i] = v
		}
		return &object{shape: ip.shapes.intern(props), fields: fields}, nil

	case *Prop:
		ov, err := ip.eval(ex.Obj, env)
		if err != nil {
			return nil, err
		}
		switch o := ov.(type) {
		case *object:
			slot := o.shape.Slot(ex.Name)
			if slot < 0 {
				return nil, fmt.Errorf("js: unknown property %q", ex.Name)
			}
			return o.fields[slot], nil
		case *array:
			if ex.Name == "length" {
				return int64(len(o.elems)), nil
			}
		}
		return nil, fmt.Errorf("js: property %q on non-object", ex.Name)
	}
	return nil, fmt.Errorf("js: unknown expression %T", e)
}

func (ip *Interp) call(c *Call, env *scope) (value, error) {
	// Builtins.
	switch c.Name {
	case "report":
		if len(c.Args) != 1 {
			return nil, fmt.Errorf("js: report takes 1 argument")
		}
		v, err := ip.evalInt(c.Args[0], env)
		if err != nil {
			return nil, err
		}
		ip.reports = append(ip.reports, v)
		return int64(0), nil
	case "array":
		if len(c.Args) != 1 {
			return nil, fmt.Errorf("js: array takes 1 argument")
		}
		n, err := ip.evalInt(c.Args[0], env)
		if err != nil {
			return nil, err
		}
		if n < 0 || n > 1<<24 {
			return nil, fmt.Errorf("js: bad array size %d", n)
		}
		arr := &array{elems: make([]value, n)}
		for i := range arr.elems {
			arr.elems[i] = int64(0)
		}
		return arr, nil
	case "clock":
		return ip.clock(), nil
	}

	fn, ok := ip.prog.Funcs[c.Name]
	if !ok {
		return nil, fmt.Errorf("js: undefined function %q", c.Name)
	}
	if len(c.Args) != len(fn.Params) {
		return nil, fmt.Errorf("js: %s expects %d args, got %d", c.Name, len(fn.Params), len(c.Args))
	}
	frame := newScope(nil) // functions close over globals only via params (no closures)
	for i, p := range fn.Params {
		v, err := ip.eval(c.Args[i], env)
		if err != nil {
			return nil, err
		}
		frame.vars[p] = v
	}
	hoistVars(fn.Body, frame)
	ret, err := ip.execBlock(fn.Body, frame)
	if err != nil {
		return nil, err
	}
	if ret != nil {
		return ret.val, nil
	}
	return int64(0), nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
