package js

// parser is a recursive-descent parser for the mini-JS grammar:
//
//	program  := (funcdecl | stmt)*
//	funcdecl := "function" ident "(" params ")" block
//	stmt     := vardecl | assign-or-expr ";" | if | while | for | return
//	expr     := precedence-climbing over || && == != < <= > >= + - * / % << >>
//	primary  := num | ident | call | "(" expr ")" | "[" elems "]" |
//	            "{" fields "}" | "new" ident "(" args ")" | unary
//	postfix  := primary ("[" expr "]" | "." ident)*
type parser struct {
	toks []token
	pos  int
	// depth guards against pathologically nested inputs (fuzzing).
	depth int
}

// maxParseDepth bounds expression/statement nesting.
const maxParseDepth = 200

func (p *parser) enter() *Error {
	p.depth++
	if p.depth > maxParseDepth {
		return &Error{Line: p.line(), Msg: "input nested too deeply"}
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

// Parse parses mini-JS source into a Program.
func Parse(src string) (*Program, error) {
	toks, lerr := lexAll(src)
	if lerr != nil {
		return nil, lerr
	}
	p := &parser{toks: toks}
	prog := &Program{Funcs: make(map[string]*Function)}
	for !p.atEOF() {
		if p.peekIs(tokKeyword, "function") {
			fn, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			if _, dup := prog.Funcs[fn.Name]; dup {
				return nil, &Error{Line: p.line(), Msg: "duplicate function " + fn.Name}
			}
			prog.Funcs[fn.Name] = fn
			continue
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		prog.Main = append(prog.Main, s)
	}
	return prog, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) line() int   { return p.cur().line }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) peekIs(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && t.text == text
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.peekIs(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) *Error {
	if p.accept(kind, text) {
		return nil
	}
	return &Error{Line: p.line(), Msg: "expected " + text + ", got " + p.cur().text}
}

func (p *parser) expectIdent() (string, *Error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", &Error{Line: t.line, Msg: "expected identifier, got " + t.text}
	}
	p.pos++
	return t.text, nil
}

func (p *parser) funcDecl() (*Function, *Error) {
	p.pos++ // "function"
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var params []string
	for !p.peekIs(tokPunct, ")") {
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		params = append(params, id)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, berr := p.block()
	if berr != nil {
		return nil, berr
	}
	return &Function{Name: name, Params: params, Body: body}, nil
}

func (p *parser) block() ([]Stmt, *Error) {
	if err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.peekIs(tokPunct, "}") {
		if p.atEOF() {
			return nil, &Error{Line: p.line(), Msg: "unterminated block"}
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	p.pos++ // "}"
	return out, nil
}

func (p *parser) stmt() (Stmt, *Error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	switch {
	case p.peekIs(tokKeyword, "var") || p.peekIs(tokKeyword, "let"):
		p.pos++
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		var init Expr
		if p.accept(tokPunct, "=") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			init = e
		}
		if err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &VarDecl{Name: name, Init: init}, nil

	case p.peekIs(tokKeyword, "if"):
		p.pos++
		if err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		then, berr := p.block()
		if berr != nil {
			return nil, berr
		}
		var els []Stmt
		if p.accept(tokKeyword, "else") {
			if p.peekIs(tokKeyword, "if") {
				s, err := p.stmt()
				if err != nil {
					return nil, err
				}
				els = []Stmt{s}
			} else {
				els, berr = p.block()
				if berr != nil {
					return nil, berr
				}
			}
		}
		return &If{Cond: cond, Then: then, Else: els}, nil

	case p.peekIs(tokKeyword, "while"):
		p.pos++
		if err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, berr := p.block()
		if berr != nil {
			return nil, berr
		}
		return &While{Cond: cond, Body: body}, nil

	case p.peekIs(tokKeyword, "for"):
		p.pos++
		if err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		var init, post Stmt
		var cond Expr
		if !p.peekIs(tokPunct, ";") {
			s, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			init = s
		}
		if err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		if !p.peekIs(tokPunct, ";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			cond = e
		}
		if err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		if !p.peekIs(tokPunct, ")") {
			s, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			post = s
		}
		if err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, berr := p.block()
		if berr != nil {
			return nil, berr
		}
		return &For{Init: init, Cond: cond, Post: post, Body: body}, nil

	case p.peekIs(tokKeyword, "return"):
		p.pos++
		var val Expr
		if !p.peekIs(tokPunct, ";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			val = e
		}
		if err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &Return{Val: val}, nil

	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// simpleStmt parses an assignment, var decl (in for-init), or bare
// expression, without the trailing semicolon.
func (p *parser) simpleStmt() (Stmt, *Error) {
	if p.peekIs(tokKeyword, "var") || p.peekIs(tokKeyword, "let") {
		p.pos++
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		var init Expr
		if p.accept(tokPunct, "=") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			init = e
		}
		return &VarDecl{Name: name, Init: init}, nil
	}
	lhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.accept(tokPunct, "=") {
		switch lhs.(type) {
		case *Ident, *Index, *Prop:
		default:
			return nil, &Error{Line: p.line(), Msg: "invalid assignment target"}
		}
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &Assign{Target: lhs, Val: rhs}, nil
	}
	return &ExprStmt{X: lhs}, nil
}

// binding powers for precedence climbing.
var binPrec = map[string]int{
	"||": 1, "&&": 2,
	"==": 3, "!=": 3,
	"<": 4, "<=": 4, ">": 4, ">=": 4,
	"<<": 5, ">>": 5,
	"+": 6, "-": 6,
	"*": 7, "/": 7, "%": 7,
}

func (p *parser) expr() (Expr, *Error) { return p.binExpr(0) }

func (p *parser) binExpr(minPrec int) (Expr, *Error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec, isOp := binPrec[t.text]
		if t.kind != tokPunct || !isOp || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: t.text, L: lhs, R: rhs}
	}
}

func (p *parser) unary() (Expr, *Error) {
	if p.peekIs(tokPunct, "-") {
		p.pos++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	if p.peekIs(tokPunct, "!") {
		p.pos++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "!", X: x}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, *Error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokPunct, "["):
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			e = &Index{Arr: e, Idx: idx}
		case p.accept(tokPunct, "."):
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			e = &Prop{Obj: e, Name: name}
		default:
			return e, nil
		}
	}
}

func (p *parser) primary() (Expr, *Error) {
	t := p.cur()
	switch {
	case t.kind == tokNum:
		p.pos++
		return &NumLit{Value: t.num}, nil

	case t.kind == tokKeyword && t.text == "true":
		p.pos++
		return &NumLit{Value: 1}, nil
	case t.kind == tokKeyword && t.text == "false":
		p.pos++
		return &NumLit{Value: 0}, nil

	case t.kind == tokKeyword && t.text == "new":
		// new Array(n) sugar → builtin array(n).
		p.pos++
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if name != "Array" {
			return nil, &Error{Line: t.line, Msg: "only new Array(n) is supported"}
		}
		if err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		n, perr := p.expr()
		if perr != nil {
			return nil, perr
		}
		if err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return &Call{Name: "array", Args: []Expr{n}}, nil

	case t.kind == tokIdent:
		p.pos++
		if p.accept(tokPunct, "(") {
			var args []Expr
			for !p.peekIs(tokPunct, ")") {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(tokPunct, ",") {
					break
				}
			}
			if err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return &Call{Name: t.text, Args: args}, nil
		}
		return &Ident{Name: t.text}, nil

	case p.accept(tokPunct, "("):
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if eerr := p.expect(tokPunct, ")"); eerr != nil {
			return nil, eerr
		}
		return e, nil

	case p.accept(tokPunct, "["):
		var elems []Expr
		for !p.peekIs(tokPunct, "]") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
		if err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
		return &ArrayLit{Elems: elems}, nil

	case p.accept(tokPunct, "{"):
		var fields []Field
		for !p.peekIs(tokPunct, "}") {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if eerr := p.expect(tokPunct, ":"); eerr != nil {
				return nil, eerr
			}
			v, verr := p.expr()
			if verr != nil {
				return nil, verr
			}
			fields = append(fields, Field{Name: name, Val: v})
			if !p.accept(tokPunct, ",") {
				break
			}
		}
		if err := p.expect(tokPunct, "}"); err != nil {
			return nil, err
		}
		return &ObjectLit{Fields: fields}, nil
	}
	return nil, &Error{Line: t.line, Msg: "unexpected token " + t.text}
}
