package js

import "testing"

// FuzzParse is a native fuzz target: the parser must never panic and,
// when it accepts an input, the interpreter must fail cleanly (never
// crash) within a small step budget.
//
//	go test -fuzz=FuzzParse ./internal/js
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"var x = 1;",
		"function f(a) { return a * 2; } report(f(21));",
		"for (var i = 0; i < 3; i = i + 1) { report(i); }",
		"var a = [1,2,3]; a[1] = a[0] + a[2]; report(a[1]);",
		"var o = {x: 1, y: 2}; o.x = o.y; report(o.x);",
		"if (1 < 2 && 3 != 4) { report(1); } else { report(0); }",
		"while (0) { }",
		"var x = ((1));",
		"report(1 % 2 / 1);",
		"var x = 0x1f << 2 >> 1;",
		"new Array(4);",
		"// comment\n/* block */ var y = 2;",
		"var é = 1;",
		"}{", ";;", "var var = 1;", "function () {}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return // keep individual cases cheap
		}
		prog, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		ip := NewInterp(prog)
		ip.limit = 100_000
		_ = ip.Run() // errors are fine; panics are not
	})
}
