package js

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
)

// progGen builds random — but terminating and error-free — mini-JS
// programs directly as ASTs, for differential testing of the JIT
// against the reference interpreter.
type progGen struct {
	r *rand.Rand
	// vars in scope (all integers; includes loop counters, readable).
	vars []string
	// assignable excludes loop counters (assigning to a counter could
	// make a generated loop diverge).
	assignable []string
	// arrays in scope with their fixed lengths.
	arrays map[string]int64
	// objects in scope with their property names.
	objects map[string][]string
	depth   int
}

func newProgGen(seed int64) *progGen {
	return &progGen{
		r:       rand.New(rand.NewSource(seed)),
		arrays:  map[string]int64{},
		objects: map[string][]string{},
	}
}

func (g *progGen) pick(ss []string) string { return ss[g.r.Intn(len(ss))] }

// expr generates an integer-valued expression. Division is only by
// non-zero constants, so no runtime errors are possible.
func (g *progGen) expr() Expr {
	g.depth++
	defer func() { g.depth-- }()
	if g.depth > 4 {
		return &NumLit{Value: int64(g.r.Intn(100))}
	}
	switch g.r.Intn(10) {
	case 0, 1:
		return &NumLit{Value: int64(g.r.Intn(1000)) - 200}
	case 2, 3:
		if len(g.vars) > 0 {
			return &Ident{Name: g.pick(g.vars)}
		}
		return &NumLit{Value: 7}
	case 4:
		// Safe division / modulo by a nonzero constant.
		op := "/"
		if g.r.Intn(2) == 0 {
			op = "%"
		}
		// Keep the dividend non-negative: `/` and `%` follow Go's
		// truncated semantics in both engines, but non-negative inputs
		// also keep hand-reasoning simple.
		return &Binary{Op: op,
			L: &Binary{Op: "*", L: g.expr(), R: g.expr()},
			R: &NumLit{Value: int64(g.r.Intn(9)) + 1},
		}
	case 5:
		if len(g.arrays) > 0 {
			name := g.pickArray()
			return &Index{Arr: &Ident{Name: name}, Idx: g.index(name)}
		}
		return g.expr()
	case 6:
		if len(g.objects) > 0 {
			name := g.pickObject()
			return &Prop{Obj: &Ident{Name: name}, Name: g.pick(g.objects[name])}
		}
		return g.expr()
	case 7:
		ops := []string{"<", "<=", ">", ">=", "==", "!=", "&&", "||"}
		return &Binary{Op: ops[g.r.Intn(len(ops))], L: g.expr(), R: g.expr()}
	case 8:
		return &Unary{Op: "-", X: g.expr()}
	default:
		ops := []string{"+", "-", "*"}
		return &Binary{Op: ops[g.r.Intn(len(ops))], L: g.expr(), R: g.expr()}
	}
}

func (g *progGen) pickArray() string {
	names := make([]string, 0, len(g.arrays))
	for n := range g.arrays {
		names = append(names, n)
	}
	// Deterministic order for the seeded generator.
	sortStrings(names)
	return g.pick(names)
}

func (g *progGen) pickObject() string {
	names := make([]string, 0, len(g.objects))
	for n := range g.objects {
		names = append(names, n)
	}
	sortStrings(names)
	return g.pick(names)
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j-1] > ss[j]; j-- {
			ss[j-1], ss[j] = ss[j], ss[j-1]
		}
	}
}

// index generates an index expression: usually in bounds via modulo,
// occasionally a deliberate constant OOB (whose semantics — reads give
// 0, writes drop — are defined and must match).
func (g *progGen) index(array string) Expr {
	if g.r.Intn(8) == 0 {
		return &NumLit{Value: g.arrays[array] + int64(g.r.Intn(5))}
	}
	// (expr % len + len) % len would be fully safe; simpler: mask a
	// non-negative expression into range.
	return &Binary{Op: "%",
		L: &Binary{Op: "*", L: g.expr(), R: g.expr()},
		R: &NumLit{Value: g.arrays[array]},
	}
}

// stmt generates one statement. Loops are always bounded counters.
func (g *progGen) stmt(depth int) Stmt {
	if depth > 2 {
		return g.assignOrReport()
	}
	switch g.r.Intn(8) {
	case 0:
		name := fmt.Sprintf("v%d", len(g.vars))
		g.vars = append(g.vars, name)
		g.assignable = append(g.assignable, name)
		return &VarDecl{Name: name, Init: g.expr()}
	case 1:
		cond := g.expr()
		return &If{Cond: cond, Then: g.block(depth + 1), Else: g.block(depth + 1)}
	case 2:
		// Bounded for loop over a fresh counter (readable afterwards —
		// var semantics — but never an assignment target).
		name := fmt.Sprintf("i%d", g.r.Int31())
		g.vars = append(g.vars, name)
		body := g.block(depth + 1)
		return &For{
			Init: &VarDecl{Name: name, Init: &NumLit{Value: 0}},
			Cond: &Binary{Op: "<", L: &Ident{Name: name}, R: &NumLit{Value: int64(g.r.Intn(6) + 1)}},
			Post: &Assign{Target: &Ident{Name: name},
				Val: &Binary{Op: "+", L: &Ident{Name: name}, R: &NumLit{Value: 1}}},
			Body: body,
		}
	default:
		return g.assignOrReport()
	}
}

func (g *progGen) assignOrReport() Stmt {
	switch g.r.Intn(5) {
	case 0:
		return &ExprStmt{X: &Call{Name: "report", Args: []Expr{g.expr()}}}
	case 1:
		if len(g.arrays) > 0 {
			name := g.pickArray()
			return &Assign{
				Target: &Index{Arr: &Ident{Name: name}, Idx: g.index(name)},
				Val:    g.expr(),
			}
		}
		fallthrough
	case 2:
		if len(g.objects) > 0 {
			name := g.pickObject()
			return &Assign{
				Target: &Prop{Obj: &Ident{Name: name}, Name: g.pick(g.objects[name])},
				Val:    g.expr(),
			}
		}
		fallthrough
	default:
		if len(g.assignable) == 0 {
			name := fmt.Sprintf("v%d", len(g.vars))
			g.vars = append(g.vars, name)
			g.assignable = append(g.assignable, name)
			return &VarDecl{Name: name, Init: g.expr()}
		}
		return &Assign{Target: &Ident{Name: g.pick(g.assignable)}, Val: g.expr()}
	}
}

func (g *progGen) block(depth int) []Stmt {
	n := g.r.Intn(3) + 1
	out := make([]Stmt, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.stmt(depth))
	}
	return out
}

// generate builds a whole program: declarations, arrays, an object, a
// body, and final reports of every variable (the checksum).
func (g *progGen) generate() *Program {
	p := &Program{Funcs: map[string]*Function{}}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("v%d", i)
		g.vars = append(g.vars, name)
		g.assignable = append(g.assignable, name)
		p.Main = append(p.Main, &VarDecl{Name: name, Init: &NumLit{Value: int64(g.r.Intn(50))}})
	}
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("a%d", i)
		size := int64(g.r.Intn(6) + 2)
		g.arrays[name] = size
		p.Main = append(p.Main, &VarDecl{Name: name,
			Init: &Call{Name: "array", Args: []Expr{&NumLit{Value: size}}}})
	}
	g.objects["o0"] = []string{"x", "y", "z"}
	p.Main = append(p.Main, &VarDecl{Name: "o0", Init: &ObjectLit{Fields: []Field{
		{Name: "x", Val: &NumLit{Value: 1}},
		{Name: "y", Val: &NumLit{Value: 2}},
		{Name: "z", Val: &NumLit{Value: 3}},
	}}})

	for i := 0; i < 8; i++ {
		p.Main = append(p.Main, g.stmt(0))
	}
	// Checksum: report every variable, array element, and property.
	for _, v := range []string{"v0", "v1", "v2"} {
		p.Main = append(p.Main, &ExprStmt{X: &Call{Name: "report", Args: []Expr{&Ident{Name: v}}}})
	}
	for a, size := range map[string]int64{"a0": g.arrays["a0"], "a1": g.arrays["a1"]} {
		for j := int64(0); j < size; j++ {
			p.Main = append(p.Main, &ExprStmt{X: &Call{Name: "report",
				Args: []Expr{&Index{Arr: &Ident{Name: a}, Idx: &NumLit{Value: j}}}}})
		}
	}
	for _, f := range g.objects["o0"] {
		p.Main = append(p.Main, &ExprStmt{X: &Call{Name: "report",
			Args: []Expr{&Prop{Obj: &Ident{Name: "o0"}, Name: f}}}})
	}
	return p
}

// TestDifferentialFuzz generates random programs and checks that the
// interpreter, the unhardened JIT, and the fully hardened JIT all
// produce identical reports — the engine's core correctness invariant.
func TestDifferentialFuzz(t *testing.T) {
	m := model.IceLakeClient()
	trials := 60
	if testing.Short() {
		trials = 12
	}
	for seed := int64(0); seed < int64(trials); seed++ {
		prog := newProgGen(seed).generate()

		ip := NewInterp(prog)
		if err := ip.Run(); err != nil {
			t.Fatalf("seed %d: interp: %v", seed, err)
		}
		want := ip.Reports()

		for _, mit := range []Mitigations{{}, AllMitigations()} {
			e := NewEngine(m, kernel.Defaults(m), mit)
			res, err := e.RunProgram(prog, 80_000_000)
			if err != nil {
				t.Fatalf("seed %d (mit=%+v): run: %v", seed, mit, err)
			}
			if !reflect.DeepEqual(res.Reports, want) {
				t.Fatalf("seed %d (mit=%+v):\nJIT    %v\ninterp %v", seed, mit, res.Reports, want)
			}
		}
	}
}
