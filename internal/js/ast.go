// Package js implements a small JavaScript-like language engine with a
// template JIT that compiles to the simulator ISA — the substrate for
// reproducing the paper's browser-sandbox measurements (Figure 3).
//
// The engine mirrors the structure of a production JS engine where it
// matters to the study:
//
//   - Arrays carry their length and every access is bounds checked; the
//     bounds-check branch is the Spectre V1 surface, and the optional
//     index-masking cmov is SpiderMonkey's mitigation (§5.4).
//   - Objects have shapes (hidden classes); property sites use inline
//     caches guarded by a shape check, with an optional cmov that
//     poisons the object pointer on mismatch ("object mitigations").
//   - Heap pointers can be stored poisoned (XOR with a secret constant)
//     and timers can be coarsened — the "other JavaScript" mitigations.
//   - The engine process enters seccomp at startup like Firefox, which
//     on pre-5.16 kernels means the OS enables SSBD for it (§4.3).
//
// Values are 64-bit integers (Octane-style kernels are written integer
// only); arrays and objects are heap blocks.
package js

import "fmt"

// Node is an AST node.
type Node interface{ node() }

// Expressions.
type (
	// NumLit is an integer literal.
	NumLit struct{ Value int64 }
	// Ident references a variable.
	Ident struct{ Name string }
	// Unary is -x or !x.
	Unary struct {
		Op string
		X  Expr
	}
	// Binary is x op y for arithmetic, comparison, and logic.
	Binary struct {
		Op   string
		L, R Expr
	}
	// Call invokes a named function or builtin.
	Call struct {
		Name string
		Args []Expr
	}
	// ArrayLit allocates an array from element expressions.
	ArrayLit struct{ Elems []Expr }
	// Index reads a[i].
	Index struct {
		Arr, Idx Expr
	}
	// ObjectLit allocates an object with a fixed shape.
	ObjectLit struct {
		Fields []Field
	}
	// Prop reads o.f.
	Prop struct {
		Obj  Expr
		Name string
	}
)

// Field is one property of an object literal.
type Field struct {
	Name string
	Val  Expr
}

// Expr is an expression node.
type Expr interface {
	Node
	expr()
}

func (*NumLit) node()    {}
func (*Ident) node()     {}
func (*Unary) node()     {}
func (*Binary) node()    {}
func (*Call) node()      {}
func (*ArrayLit) node()  {}
func (*Index) node()     {}
func (*ObjectLit) node() {}
func (*Prop) node()      {}

func (*NumLit) expr()    {}
func (*Ident) expr()     {}
func (*Unary) expr()     {}
func (*Binary) expr()    {}
func (*Call) expr()      {}
func (*ArrayLit) expr()  {}
func (*Index) expr()     {}
func (*ObjectLit) expr() {}
func (*Prop) expr()      {}

// Statements.
type (
	// VarDecl declares (and initialises) a local.
	VarDecl struct {
		Name string
		Init Expr
	}
	// Assign writes to a variable, array element, or property.
	Assign struct {
		Target Expr // Ident, Index, or Prop
		Val    Expr
	}
	// ExprStmt evaluates an expression for its effects.
	ExprStmt struct{ X Expr }
	// If is a conditional with an optional else.
	If struct {
		Cond       Expr
		Then, Else []Stmt
	}
	// While loops while the condition is truthy.
	While struct {
		Cond Expr
		Body []Stmt
	}
	// For is for(init; cond; post).
	For struct {
		Init Stmt // may be nil
		Cond Expr // may be nil (infinite)
		Post Stmt // may be nil
		Body []Stmt
	}
	// Return exits the enclosing function.
	Return struct{ Val Expr } // Val may be nil
)

// Stmt is a statement node.
type Stmt interface {
	Node
	stmt()
}

func (*VarDecl) node()  {}
func (*Assign) node()   {}
func (*ExprStmt) node() {}
func (*If) node()       {}
func (*While) node()    {}
func (*For) node()      {}
func (*Return) node()   {}

func (*VarDecl) stmt()  {}
func (*Assign) stmt()   {}
func (*ExprStmt) stmt() {}
func (*If) stmt()       {}
func (*While) stmt()    {}
func (*For) stmt()      {}
func (*Return) stmt()   {}

// Function is a user-defined function.
type Function struct {
	Name   string
	Params []string
	Body   []Stmt
}

// Program is a parsed script: function declarations plus top-level
// statements (the implicit main).
type Program struct {
	Funcs map[string]*Function
	Main  []Stmt
}

// Error is a source-position-annotated front-end error.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("js: line %d: %s", e.Line, e.Msg) }
