package js

// Shape is a hidden class: a fixed property→slot layout created per
// object literal site. Different literals with identical property lists
// share a shape (like transition-tree dedup in real engines), so
// monomorphic sites stay monomorphic.
type Shape struct {
	ID    uint64
	Props []string
	slots map[string]int
}

// Slot returns the property's field index, or -1.
func (s *Shape) Slot(name string) int {
	if i, ok := s.slots[name]; ok {
		return i
	}
	return -1
}

// shapeTable interns shapes by property list.
type shapeTable struct {
	byKey  map[string]*Shape
	byID   map[uint64]*Shape
	nextID uint64
}

func newShapeTable() *shapeTable {
	return &shapeTable{
		byKey:  make(map[string]*Shape),
		byID:   make(map[uint64]*Shape),
		nextID: 1, // 0 means "array" in heap headers
	}
}

func (t *shapeTable) intern(props []string) *Shape {
	key := ""
	for _, p := range props {
		key += p + ","
	}
	if s, ok := t.byKey[key]; ok {
		return s
	}
	s := &Shape{ID: t.nextID, Props: append([]string(nil), props...), slots: make(map[string]int)}
	for i, p := range props {
		s.slots[p] = i
	}
	t.nextID++
	t.byKey[key] = s
	t.byID[s.ID] = s
	return s
}

// Heap layout (both the interpreter's Go heap and the JIT's simulated
// heap use the same logical layout):
//
//	array:  [length, elem0, elem1, ...]           header word = length, tag kind by context
//	object: [shapeID, field0, field1, ...]
//
// In the simulated heap each word is 8 bytes; the header is word 0.
const (
	heapHeaderWords = 1
	wordBytes       = 8
)
