package js

import (
	"fmt"

	"spectrebench/internal/checkpoint"
	"spectrebench/internal/cpu"
	"spectrebench/internal/isa"
	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
)

// Result is the outcome of one engine run.
type Result struct {
	// Reports holds the values passed to report(), in order.
	Reports []int64
	// Cycles is the total simulated cycle count of the run.
	Cycles uint64
	// Instructions is the retired-instruction count.
	Instructions uint64
	// ICMisses counts inline-cache slow paths taken.
	ICMisses uint64
}

// Engine runs mini-JS programs on a simulated machine. One engine is
// one sandboxed content process: it enters seccomp at startup (so the
// pre-5.16 kernel default enables SSBD for it, §4.3).
type Engine struct {
	cpuModel *model.CPU
	kernMit  kernel.Mitigations
	jsMit    Mitigations

	// CPUSetup, when set, customises the core before the run (used by
	// what-if experiments, e.g. hypothetical guard-fusion hardware).
	CPUSetup func(*cpu.Core)
}

// NewEngine creates an engine for the given CPU model, kernel mitigation
// set, and JIT mitigation set.
func NewEngine(m *model.CPU, kmit kernel.Mitigations, jsMit Mitigations) *Engine {
	return &Engine{cpuModel: m, kernMit: kmit, jsMit: jsMit}
}

// compiled is the host-side product of one parse+JIT: the assembled
// program, the shape table it interned, and the IC site list. All three
// are read-only at run time (the runtime's inline-cache state lives in
// simulated memory, not in these structures), so one compiled value is
// shared by every run of the same source under the same JIT mitigation
// set — including concurrent runs under -jobs N.
type compiled struct {
	code   *isa.Program
	shapes *shapeTable
	sites  []siteInfo
	err    error // deterministic parse/compile failure, replayed per run
}

// compileSource parses and JIT-compiles src under the given mitigation
// set. Errors are carried in the result so a cached failure replays
// identically to a cold one.
func compileSource(src string, jsMit Mitigations) *compiled {
	prog, err := Parse(src)
	if err != nil {
		return &compiled{err: err}
	}
	shapes := newShapeTable()
	code, sites, err := compile(prog, shapes, jsMit)
	if err != nil {
		return &compiled{err: err}
	}
	return &compiled{code: code, shapes: shapes, sites: sites}
}

// Run parses, JIT-compiles, and executes src, returning the run result.
// The parse+JIT product is a pure function of (source, JIT mitigations),
// so under checkpointed warmup it is compiled once per distinct pair and
// reused by every cell that runs the same source.
func (e *Engine) Run(src string, maxSteps int) (*Result, error) {
	key := fmt.Sprintf("js/compile|%+v|", e.jsMit) + src
	if v, ok := checkpoint.Get(key, func() any { return compileSource(src, e.jsMit) }); ok {
		return e.runCompiled(v.(*compiled), maxSteps)
	}
	return e.runCompiled(compileSource(src, e.jsMit), maxSteps)
}

// RunProgram JIT-compiles and executes an already-parsed (or
// programmatically constructed) program. Programs built in memory have
// no source text to key a checkpoint on, so this path always compiles.
func (e *Engine) RunProgram(prog *Program, maxSteps int) (*Result, error) {
	shapes := newShapeTable()
	code, sites, err := compile(prog, shapes, e.jsMit)
	if err != nil {
		return nil, err
	}
	return e.runCompiled(&compiled{code: code, shapes: shapes, sites: sites}, maxSteps)
}

// runCompiled executes a compiled program on a fresh machine.
func (e *Engine) runCompiled(cp *compiled, maxSteps int) (*Result, error) {
	if cp.err != nil {
		return nil, cp.err
	}
	code, shapes, sites := cp.code, cp.shapes, cp.sites

	c := cpu.New(e.cpuModel)
	defer c.Recycle()
	if e.CPUSetup != nil {
		e.CPUSetup(c)
	}
	k := kernel.New(c, e.kernMit)
	// The heap and IC site table are mapped as process-creation regions
	// so the checkpointed page-table template covers the whole engine
	// address space.
	p := k.NewProcessWithRegions("js-engine", code, []kernel.Region{
		{VA: jsHeapBase, Pages: jsHeapPages, Writable: true, NX: true},
		{VA: jsSiteBase, Pages: jsSitePages, Writable: true, NX: true},
	})
	physBase := uint64(p.PID) << 32

	rt := &runtime{
		c:        c,
		shapes:   shapes,
		sites:    sites,
		physBase: physBase,
		heapNext: jsHeapBase,
		poison:   e.jsMit.PointerPoisoning,
		reduced:  e.jsMit.ReducedTimer,
	}
	rt.install()

	if err := k.RunProcessToCompletion(maxSteps); err != nil {
		if rt.err != nil {
			// The runtime raised the real error and terminated the
			// process; the resulting kill-fault is just the mechanism.
			return nil, rt.err
		}
		return nil, fmt.Errorf("js: %w", err)
	}
	if rt.err != nil {
		return nil, rt.err
	}
	return &Result{
		Reports:      rt.reports,
		Cycles:       c.Cycles,
		Instructions: c.Instret,
		ICMisses:     rt.icMisses,
	}, nil
}

// runtime backs the JIT's thunks: allocation, report, clock, and inline
// cache misses.
type runtime struct {
	c        *cpu.Core
	shapes   *shapeTable
	sites    []siteInfo
	physBase uint64
	heapNext uint64
	poison   bool
	reduced  bool

	reports  []int64
	icMisses uint64
	err      error
}

// heapLimit is the first address past the mapped heap.
const heapLimit = jsHeapBase + jsHeapPages*4096

func (rt *runtime) install() {
	c := rt.c
	c.RegisterThunk(thunkAlloc, rt.alloc)
	c.RegisterThunk(thunkReport, rt.report)
	c.RegisterThunk(thunkClock, rt.clockThunk)
	c.RegisterThunk(thunkPropMiss, rt.propMiss)
}

func (rt *runtime) fail(format string, args ...any) {
	if rt.err == nil {
		rt.err = fmt.Errorf("js runtime: "+format, args...)
	}
	// Terminate the program: jumping to an unmapped page kills the
	// process through the kernel's fault path.
	rt.c.PC = 0xdead_0000
}

func (rt *runtime) resume() { rt.c.PC = rt.c.Regs[isa.R11] }

// alloc carves a heap block: R1 = payload words, R2 = shape id (0 for
// arrays, where the header is the length). Returns the (possibly
// poisoned) pointer in R0. A bump allocator is faithful enough — the
// benchmarks are sized to fit without collection, like Octane warmups.
func (rt *runtime) alloc(c *cpu.Core) {
	words := c.Regs[isa.R1]
	shapeID := c.Regs[isa.R2]
	size := (words + heapHeaderWords) * wordBytes
	// Align to the word size and charge a representative allocation cost.
	c.Charge(20 + words/4)
	if rt.heapNext+size > heapLimit {
		rt.fail("heap exhausted (%d words requested)", words)
		return
	}
	ptr := rt.heapNext
	rt.heapNext += size
	header := words // array: header = length
	if shapeID != 0 {
		header = shapeID
	}
	c.Phys.Write64(rt.physBase+ptr, header)
	// Pages spring up zeroed, so elements/fields start at 0.
	res := ptr
	if rt.poison {
		res ^= pointerPoison
	}
	c.Regs[isa.R0] = res
	rt.resume()
}

func (rt *runtime) report(c *cpu.Core) {
	rt.reports = append(rt.reports, int64(c.Regs[isa.R1]))
	c.Charge(30)
	rt.resume()
}

// clockThunk implements clock(): cycle-accurate by default, coarsened
// to 1µs-equivalent granularity under the reduced-timer mitigation
// (browsers dropped performance.now precision after Spectre, §2).
func (rt *runtime) clockThunk(c *cpu.Core) {
	t := c.Cycles
	if rt.reduced {
		const quantum = 2000 // ~1µs at 2 GHz
		t -= t % quantum
	}
	c.Regs[isa.R0] = t
	c.Charge(16)
	rt.resume()
}

// propMiss services an inline-cache miss: R0 = unpoisoned object
// pointer, R10 = site id. It updates the site's cached (shape, offset)
// pair and resumes at the site's retry label in R11.
func (rt *runtime) propMiss(c *cpu.Core) {
	rt.icMisses++
	siteID := c.Regs[isa.R10]
	if siteID >= uint64(len(rt.sites)) {
		rt.fail("bad IC site %d", siteID)
		return
	}
	site := rt.sites[siteID]
	objPtr := c.Regs[isa.R0]
	if objPtr < jsHeapBase || objPtr >= heapLimit {
		rt.fail("property %q on non-object value %#x", site.prop, objPtr)
		return
	}
	shapeID := c.Phys.Read64(rt.physBase + objPtr)
	shape, ok := rt.shapes.byID[shapeID]
	if !ok {
		rt.fail("property %q on array or corrupt object (header %#x)", site.prop, shapeID)
		return
	}
	slot := shape.Slot(site.prop)
	if slot < 0 {
		rt.fail("object has no property %q", site.prop)
		return
	}
	siteVA := uint64(jsSiteBase) + siteID*16
	c.Phys.Write64(rt.physBase+siteVA, shapeID)
	c.Phys.Write64(rt.physBase+siteVA+8, uint64(8+8*slot))
	// Slow paths are expensive in real engines (megamorphic lookup).
	c.Charge(220)
	rt.resume()
}
