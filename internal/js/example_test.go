package js_test

import (
	"fmt"

	"spectrebench/internal/js"
	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
)

// Run a JavaScript program through the JIT on a simulated Ice Lake
// Server with the full browser hardening.
func ExampleEngine_Run() {
	src := `
		function square(x) { return x * x; }
		var total = 0;
		for (var i = 1; i <= 5; i = i + 1) {
			total = total + square(i);
		}
		report(total);
	`
	m := model.IceLakeServer()
	e := js.NewEngine(m, kernel.Defaults(m), js.AllMitigations())
	res, err := e.Run(src, 10_000_000)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("reports:", res.Reports)
	// Output:
	// reports: [55]
}

// Parse exposes the front end separately from execution.
func ExampleParse() {
	prog, err := js.Parse(`var x = 2 + 3; report(x);`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ip := js.NewInterp(prog)
	if err := ip.Run(); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(ip.Reports())
	// Output:
	// [5]
}
