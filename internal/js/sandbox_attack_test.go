package js

import (
	"testing"

	"spectrebench/internal/kernel"
	"spectrebench/internal/model"
)

// sandboxSpectreSrc is Spectre V1 written in the sandboxed language
// itself — the attack the browser mitigations exist for. The "secret"
// is a value in an adjacent heap object, reachable only by a transient
// out-of-bounds read past arr's bounds check:
//
//	heap layout (bump allocator, allocation order):
//	  [len=4][arr0..arr3] [len=1][SECRET] [probe...] [evict...]
//
// so arr[5] is the secret. The gadget function keeps the dependent
// probe access inside the speculation window; recovery is classic
// prime-and-time over the probe array using clock().
const sandboxSpectreSrc = `
function gadget(a, p, i) {
	// bounds check -> (transient) load -> dependent probe touch
	return p[(a[i] % 256) * 8];
}

var arr = [1, 2, 3, 4];
var secretHolder = [83];
var probe = new Array(2048);  // 256 cache lines at 8 slots/line
var evict = new Array(8192);  // 64 KiB: evicts the whole L1

// Phase 1: train the bounds check in-bounds.
var junk = 0;
for (var it = 0; it < 32; it = it + 1) {
	junk = junk + gadget(arr, probe, it % 4);
}

// Phase 2: evict the probe array from the cache.
for (var i = 0; i < evict.length; i = i + 1) {
	junk = junk + evict[i];
}

// Phase 3: the transient out-of-bounds read (arr[5] = the secret).
junk = junk + gadget(arr, probe, 5);

// Phase 4: time every probe line; the hot one encodes the secret.
var best = 0 - 1;
var bestLat = 1000000;
for (var v = 0; v < 256; v = v + 1) {
	var t0 = clock();
	junk = junk + probe[v * 8];
	var t1 = clock();
	if (t1 - t0 < bestLat) {
		bestLat = t1 - t0;
		best = v;
	}
}
report(best);
report(junk % 2);  // keep junk live
`

// runSandboxAttack executes the in-sandbox attack under the given JIT
// hardening and returns the recovered byte.
func runSandboxAttack(t *testing.T, m *model.CPU, mit Mitigations) int64 {
	t.Helper()
	e := NewEngine(m, kernel.Defaults(m), mit)
	res, err := e.Run(sandboxSpectreSrc, 200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return res.Reports[0]
}

// With no JIT hardening and a precise timer, JavaScript reads beyond its
// own array bounds — on every CPU in the study, because no hardware
// fixes Spectre V1 (§7).
func TestSandboxSpectreLeaks(t *testing.T) {
	for _, m := range []*model.CPU{model.Broadwell(), model.IceLakeServer(), model.Zen3()} {
		got := runSandboxAttack(t, m, Mitigations{})
		if got != 83 {
			t.Errorf("%s: in-sandbox Spectre recovered %d, want the secret 83", m.Uarch, got)
		}
	}
}

// Index masking clamps the transient index to zero: the attacker sees
// arr[0]'s value instead of the secret.
func TestSandboxSpectreBlockedByIndexMasking(t *testing.T) {
	m := model.IceLakeServer()
	got := runSandboxAttack(t, m, Mitigations{IndexMasking: true})
	if got == 83 {
		t.Fatal("secret leaked despite index masking")
	}
}

// Coarsening the timer alone also defeats the recovery: the probe
// timings quantise to the same bucket, so the hot line is
// indistinguishable (the Firefox performance.now change, §2).
func TestSandboxSpectreBlockedByReducedTimer(t *testing.T) {
	m := model.IceLakeServer()
	got := runSandboxAttack(t, m, Mitigations{ReducedTimer: true})
	if got == 83 {
		t.Fatal("secret leaked despite the coarse timer")
	}
}

// The full browser hardening obviously blocks it too.
func TestSandboxSpectreBlockedByFullHardening(t *testing.T) {
	m := model.Zen3()
	got := runSandboxAttack(t, m, AllMitigations())
	if got == 83 {
		t.Fatal("secret leaked despite full hardening")
	}
}
