package cpu

import (
	"errors"
	"sync/atomic"

	"spectrebench/internal/simscope"
)

// ErrCycleBudget is wrapped by the error Step returns when the core's
// simulated-cycle watchdog budget is exhausted. Callers classify it with
// errors.Is; the experiment supervisor maps it to a "timeout" status.
var ErrCycleBudget = errors.New("cpu: simulated-cycle budget exhausted")

// ErrInterrupted is wrapped by the error Step returns after
// Core.Interrupt was called (an asynchronous abort, e.g. an external
// watchdog goroutine).
var ErrInterrupted = errors.New("cpu: interrupted")

// defaultCycleBudget seeds Core.CycleBudget at construction time
// (0 = unlimited). Installed by the experiment supervisor so budgets
// reach cores created deep inside experiment code without threading a
// parameter through every constructor.
var defaultCycleBudget atomic.Uint64

// SetDefaultCycleBudget sets the watchdog budget copied into every
// subsequently constructed core and returns the previous value.
func SetDefaultCycleBudget(n uint64) (prev uint64) {
	return defaultCycleBudget.Swap(n)
}

// DefaultCycleBudget returns the budget new cores start with.
func DefaultCycleBudget() uint64 { return defaultCycleBudget.Load() }

// scopeCycleBudget resolves the watchdog budget for a core constructed
// under sc: the budget captured when the scope was scheduled, or the
// process default outside managed runs. Capturing at scheduling time
// means a queued cell keeps its budget even if the default is swapped
// for a later batch.
func scopeCycleBudget(sc *simscope.Scope) uint64 {
	if sc != nil && sc.HasBudget {
		return sc.Budget
	}
	return defaultCycleBudget.Load()
}

// totalCycles aggregates simulated cycles across every core in the
// process. Cores flush into it periodically (and on halt or watchdog
// expiry), so readings trail the exact sum by at most a few thousand
// cycles per live core — good enough for the supervisor's per-experiment
// cost accounting, and deterministic for a deterministic simulation.
var totalCycles atomic.Uint64

// TotalCycles returns the process-wide simulated cycle counter.
func TotalCycles() uint64 { return totalCycles.Load() }

// flushCycleTelemetry publishes this core's not-yet-published cycles to
// the process-wide counter and, when the core was constructed under a
// simulation scope, to that scope's accumulator (the supervisor's
// order-independent per-experiment cost attribution).
func (c *Core) flushCycleTelemetry() {
	if d := c.Cycles - c.flushedCycles; d > 0 {
		totalCycles.Add(d)
		c.scope.AddCycles(d)
		c.flushedCycles = c.Cycles
	}
}

// FlushCycleTelemetry publishes this core's cycles accrued since the
// last periodic flush. Run-loop owners (the kernel scheduler, the
// hypervisor) call it when their loop returns: charge-heavy workloads
// can retire far fewer than one flush interval of instructions, so
// without a final flush their whole cost would go unreported.
func (c *Core) FlushCycleTelemetry() { c.flushCycleTelemetry() }

// Interrupt requests an asynchronous abort: the next Step returns an
// error wrapping ErrInterrupted. Safe to call from another goroutine —
// this is the supervisor-facing hook for killing a runaway core that is
// not bound by a cycle budget.
func (c *Core) Interrupt() { c.interrupted.Store(true) }

// ClearInterrupt resets the abort flag (after the error was consumed).
func (c *Core) ClearInterrupt() { c.interrupted.Store(false) }
