package cpu

import (
	"strings"
	"testing"

	"spectrebench/internal/isa"
	"spectrebench/internal/mem"
	"spectrebench/internal/model"
	"spectrebench/internal/pmc"
)

func TestFloatingPointOps(t *testing.T) {
	c := newUserCore(t, model.IceLakeClient())
	a := isa.NewAsm()
	a.FMovI(0, 6.0)
	a.FMovI(1, 1.5)
	a.FAdd(0, 1) // 7.5
	a.FMul(0, 1) // 11.25
	a.FDiv(0, 1) // 7.5
	a.FToI(isa.R1, 0)
	a.MovI(isa.R2, 4)
	a.IToF(2, isa.R2)
	a.MovI(isa.R3, dataBase)
	a.FStore(isa.R3, 0, 0)
	a.FLoad(3, isa.R3, 0)
	a.FToI(isa.R4, 3)
	a.Hlt()
	run(t, c, a.MustAssemble(codeBase))
	if c.Regs[isa.R1] != 7 {
		t.Errorf("ftoi = %d, want 7 (truncated 7.5)", c.Regs[isa.R1])
	}
	if c.FRegs[2] != 4.0 {
		t.Errorf("itof = %v", c.FRegs[2])
	}
	if c.Regs[isa.R4] != 7 {
		t.Errorf("fstore/fload roundtrip = %d", c.Regs[isa.R4])
	}
	if c.PMC.Read(pmc.ArithDividerActive) == 0 {
		t.Error("fdiv did not count divider-active cycles")
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	c := newUserCore(t, model.Zen())
	var kind FaultKind
	c.OnTrap = func(_ *Core, f Fault) TrapAction { kind = f.Kind; return TrapSkip }
	a := isa.NewAsm()
	a.MovI(isa.R1, 10)
	a.MovI(isa.R2, 0)
	a.Div(isa.R1, isa.R2)
	a.Hlt()
	run(t, c, a.MustAssemble(codeBase))
	if kind != FaultDivide {
		t.Errorf("fault = %v, want divide-error", kind)
	}
}

func TestSignedDivision(t *testing.T) {
	c := newUserCore(t, model.Zen())
	a := isa.NewAsm()
	a.MovI(isa.R1, -10)
	a.MovI(isa.R2, 3)
	a.Div(isa.R1, isa.R2)
	a.Hlt()
	run(t, c, a.MustAssemble(codeBase))
	if int64(c.Regs[isa.R1]) != -3 {
		t.Errorf("-10/3 = %d, want -3 (truncated)", int64(c.Regs[isa.R1]))
	}
}

func TestXsaveXrstorRoundTrip(t *testing.T) {
	c := newUserCore(t, model.Broadwell())
	c.Priv = PrivKernel
	c.FRegs[0], c.FRegs[7], c.FRegs[15] = 1.25, -3.5, 99.0
	a := isa.NewAsm()
	a.MovI(isa.R1, dataBase)
	a.Xsave(isa.R1)
	a.FMovI(0, 0)
	a.FMovI(7, 0)
	a.Xrstor(isa.R1)
	a.Hlt()
	run(t, c, a.MustAssemble(codeBase))
	if c.FRegs[0] != 1.25 || c.FRegs[7] != -3.5 || c.FRegs[15] != 99.0 {
		t.Errorf("xrstor state: %v %v %v", c.FRegs[0], c.FRegs[7], c.FRegs[15])
	}
}

func TestInvpcidModes(t *testing.T) {
	c := newUserCore(t, model.CascadeLake())
	c.Priv = PrivKernel
	// Warm the TLB.
	a := isa.NewAsm()
	a.MovI(isa.R1, dataBase)
	a.Load(isa.R2, isa.R1, 0)
	a.Invpcid(isa.R3, 2) // flush all
	a.Hlt()
	run(t, c, a.MustAssemble(codeBase))
	// The post-flush HLT fetch repopulates the code page's entry.
	if c.TLB.Valid() > 1 {
		t.Errorf("TLB valid = %d after invpcid-all", c.TLB.Valid())
	}

	// Mode 0: flush by PCID.
	c2 := newUserCore(t, model.CascadeLake())
	c2.Priv = PrivKernel
	b := isa.NewAsm()
	b.MovI(isa.R1, dataBase)
	b.Load(isa.R2, isa.R1, 0)
	b.MovI(isa.R3, 1) // the test table's PCID
	b.Invpcid(isa.R3, 0)
	b.Hlt()
	run(t, c2, b.MustAssemble(codeBase))
	if c2.TLB.Valid() > 1 {
		t.Errorf("TLB valid = %d after invpcid-pcid", c2.TLB.Valid())
	}
}

func TestPrefetchFillsWithoutFaulting(t *testing.T) {
	c := newUserCore(t, model.Zen2())
	a := isa.NewAsm()
	a.MovI(isa.R1, dataBase+0x100)
	a.Raw(isa.Instruction{Op: isa.PREFETCH, Src1: isa.R1})
	// Prefetch of an unmapped address is a no-op, not a fault.
	a.MovI(isa.R2, 0x7777_0000)
	a.Raw(isa.Instruction{Op: isa.PREFETCH, Src1: isa.R2})
	a.Hlt()
	run(t, c, a.MustAssemble(codeBase))
	if !c.L1.Probe(dataBase + 0x100) {
		t.Error("prefetch did not fill the line")
	}
}

func TestClflushUnmappedFaults(t *testing.T) {
	c := newUserCore(t, model.Zen2())
	var faulted bool
	c.OnTrap = func(_ *Core, f Fault) TrapAction { faulted = true; return TrapSkip }
	a := isa.NewAsm()
	a.MovI(isa.R1, 0x7777_0000)
	a.Clflush(isa.R1, 0)
	a.Hlt()
	run(t, c, a.MustAssemble(codeBase))
	if !faulted {
		t.Error("clflush of unmapped memory did not fault")
	}
}

func TestFencesAndPause(t *testing.T) {
	c := newUserCore(t, model.Broadwell())
	a := isa.NewAsm()
	a.MovI(isa.R1, dataBase)
	a.MovI(isa.R2, 1)
	a.Store(isa.R1, 0, isa.R2)
	a.Sfence()
	a.Store(isa.R1, 8, isa.R2)
	a.Mfence()
	a.Pause()
	a.Hlt()
	run(t, c, a.MustAssemble(codeBase))
	if c.SB.Len() != 0 {
		t.Errorf("store buffer not drained by fences: %d", c.SB.Len())
	}
}

func TestRdCR3AndMovCR3NoPCID(t *testing.T) {
	c := newUserCore(t, model.Broadwell())
	c.Priv = PrivKernel
	c.NoPCID = true
	a := isa.NewAsm()
	a.MovI(isa.R1, dataBase)
	a.Load(isa.R2, isa.R1, 0) // warm a TLB entry
	a.RdCR3(isa.R3)
	a.MovCR3(isa.R3) // same table, but no-PCID flushes non-globals
	a.Hlt()
	run(t, c, a.MustAssemble(codeBase))
	if c.Regs[isa.R3] != c.CR3 {
		t.Errorf("rdcr3 = %#x, cr3 = %#x", c.Regs[isa.R3], c.CR3)
	}
	// The kernel page is Global in newUserCore; the data page is not.
	if c.TLB.Valid() > 2 {
		t.Errorf("TLB valid = %d; no-PCID mov-cr3 should flush non-globals", c.TLB.Valid())
	}
}

func TestRdpmcReadsCounters(t *testing.T) {
	c := newUserCore(t, model.Zen3())
	a := isa.NewAsm()
	a.MovI(isa.R1, 100)
	a.MovI(isa.R2, 4)
	a.Div(isa.R1, isa.R2)
	a.Rdpmc(isa.R3, int64(pmc.ArithDividerActive))
	a.Rdpmc(isa.R4, int64(pmc.Instructions))
	a.Hlt()
	run(t, c, a.MustAssemble(codeBase))
	if c.Regs[isa.R3] == 0 {
		t.Error("divider counter reads zero after a div")
	}
	if c.Regs[isa.R4] == 0 {
		t.Error("instruction counter reads zero")
	}
}

func TestVMCALLOutsideGuestIsUD(t *testing.T) {
	c := newUserCore(t, model.Broadwell())
	var kind FaultKind
	c.OnTrap = func(_ *Core, f Fault) TrapAction { kind = f.Kind; return TrapSkip }
	a := isa.NewAsm()
	a.Vmcall()
	a.Hlt()
	run(t, c, a.MustAssemble(codeBase))
	if kind != FaultInvalidOp {
		t.Errorf("vmcall outside guest: fault = %v, want #UD", kind)
	}
}

func TestPortIOOutsideGuest(t *testing.T) {
	c := newUserCore(t, model.Broadwell())
	a := isa.NewAsm()
	a.MovI(isa.R2, 0x55)
	a.Out(0x10, isa.R2)
	a.In(isa.R3, 0x10)
	a.Hlt()
	run(t, c, a.MustAssemble(codeBase))
	if c.Regs[isa.R3] != 0 {
		t.Errorf("bare-metal IN = %#x, want 0", c.Regs[isa.R3])
	}
}

func TestRunStepLimits(t *testing.T) {
	c := newUserCore(t, model.Zen())
	a := isa.NewAsm()
	a.Label("spin")
	a.Jmp("spin")
	c.LoadProgram(a.MustAssemble(codeBase))
	c.PC = codeBase
	if err := c.RunUntilHalt(100); err == nil ||
		!strings.Contains(err.Error(), "no HLT") {
		t.Errorf("RunUntilHalt on a spin loop: %v", err)
	}
	// Run returns nil when the budget runs out without a fault.
	if err := c.Run(10); err != nil {
		t.Errorf("Run = %v", err)
	}
	// Step after HLT returns ErrHalted.
	c2 := newUserCore(t, model.Zen())
	b := isa.NewAsm()
	b.Hlt()
	run(t, c2, b.MustAssemble(codeBase))
	if err := c2.Step(); err != ErrHalted {
		t.Errorf("step after halt = %v", err)
	}
	c2.ClearHalt()
	if c2.Halted() {
		t.Error("ClearHalt failed")
	}
}

func TestFetchFaults(t *testing.T) {
	// Jumping to unmapped memory page-faults at fetch.
	c := newUserCore(t, model.Broadwell())
	var kinds []FaultKind
	c.OnTrap = func(cc *Core, f Fault) TrapAction {
		kinds = append(kinds, f.Kind)
		cc.PC = codeBase + 4 // recover to the HLT below
		return TrapContext
	}
	a := isa.NewAsm()
	a.Jmp("away")
	a.Hlt()
	a.Label("away")
	a.Nop()
	p := a.MustAssemble(codeBase)
	p.Code[0].Target = 0x7700_0000 // retarget into the void
	c.LoadProgram(p)
	c.PC = codeBase
	if err := c.RunUntilHalt(100); err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 1 || kinds[0] != FaultPage {
		t.Errorf("faults = %v", kinds)
	}

	// Fetching from an NX data page is a page fault.
	c2 := newUserCore(t, model.Broadwell())
	var kind FaultKind
	c2.OnTrap = func(_ *Core, f Fault) TrapAction { kind = f.Kind; return TrapKill }
	c2.PC = dataBase // mapped, but NX
	if err := c2.Run(10); err == nil {
		t.Fatal("expected error")
	}
	if kind != FaultPage {
		t.Errorf("fault = %v, want page fault (NX)", kind)
	}

	// Fetching from an executable page with no loaded instruction is #UD.
	c3 := newUserCore(t, model.Broadwell())
	c3.OnTrap = func(_ *Core, f Fault) TrapAction { kind = f.Kind; return TrapKill }
	c3.PC = codeBase + 0x8000 // mapped executable, nothing loaded there
	if err := c3.Run(10); err == nil {
		t.Fatal("expected error")
	}
	if kind != FaultInvalidOp {
		t.Errorf("fault = %v, want #UD", kind)
	}
}

func TestTrapWithoutHookHalts(t *testing.T) {
	c := newUserCore(t, model.Zen())
	c.OnTrap = nil
	a := isa.NewAsm()
	a.Ud()
	c.LoadProgram(a.MustAssemble(codeBase))
	c.PC = codeBase
	if err := c.Step(); err == nil {
		t.Fatal("expected fault error")
	}
	if !c.Halted() {
		t.Error("core must halt on unhandled trap")
	}
}

// emitTrainedMispredict emits the Spectre-V1-shaped skeleton: a loop
// whose branch is trained not-taken for 8 iterations and taken on the
// 9th, so the gadget emitted by `gadget` (which receives R1 = 0 during
// training, 1 transiently) runs architecturally while training and
// transiently on the final iteration. Architectural execution then
// lands on "done".
func emitTrainedMispredict(a *isa.Asm, gadget func(a *isa.Asm)) {
	a.MovI(isa.R9, 9)
	a.Label("tm_loop")
	a.SubI(isa.R9, 1)
	a.MovI(isa.R1, 0)
	a.MovI(isa.R2, 1)
	a.CmpI(isa.R9, 0)
	a.CmovEq(isa.R1, isa.R2) // r1 = (last iteration)
	a.CmpI(isa.R1, 0)
	a.Jne("tm_done") // trained not-taken; final iteration mispredicts
	gadget(a)
	a.Jmp("tm_loop")
	a.Label("tm_done")
	a.Hlt()
}

func TestTransientWindowStopsAtSerializing(t *testing.T) {
	// The mispredicted path contains WRMSR (serialising): speculation
	// must stop there, leaving the probe line for the transient value
	// (r1=1 → line 1) cold. Training (r1=0) touches line 0 instead.
	c := newUserCore(t, model.Broadwell())
	c.Priv = PrivKernel // wrmsr is privileged; train it architecturally
	a := isa.NewAsm()
	emitTrainedMispredict(a, func(a *isa.Asm) {
		a.Wrmsr(MSRLStar, isa.R13) // serialising (R13 = 0: hook path stays)
		a.Mov(isa.R5, isa.R1)
		a.ShlI(isa.R5, 6)
		a.AddI(isa.R5, probeBase)
		a.Mov(isa.R6, isa.R5)
		a.Load(isa.R7, isa.R6, 0)
	})
	run(t, c, a.MustAssemble(codeBase))
	if !c.L1.Probe(probeBase) {
		t.Fatal("training did not exercise the gadget")
	}
	if c.L1.Probe(probeBase + 64) {
		t.Error("speculation crossed a serialising instruction")
	}
}

func TestTransientFaultEndsWindowOnFixedHardware(t *testing.T) {
	// On a fully fixed part, a transient load to unmapped memory ends
	// the window: the probe load after it must stay cold.
	c := newUserCore(t, model.IceLakeServer())
	a := isa.NewAsm()
	emitTrainedMispredict(a, func(a *isa.Asm) {
		// During training r1=0 keeps the pointer valid; transiently
		// r1=1 swings it to an unmapped page.
		a.MovI(isa.R5, dataBase)
		a.MovI(isa.R6, 0x7777_0000)
		a.CmpI(isa.R1, 1)
		a.CmovEq(isa.R5, isa.R6)
		a.Load(isa.R7, isa.R5, 0) // transient fault on the last run
		a.Mov(isa.R5, isa.R1)
		a.ShlI(isa.R5, 6)
		a.AddI(isa.R5, probeBase)
		a.Load(isa.R8, isa.R5, 0)
	})
	run(t, c, a.MustAssemble(codeBase))
	if !c.L1.Probe(probeBase) {
		t.Fatal("training did not exercise the gadget")
	}
	if c.L1.Probe(probeBase + 64) {
		t.Error("transient execution continued past an unleakable fault")
	}
}

func TestTransientCallRetFollowStack(t *testing.T) {
	// Inside a window, CALL/RET use the transient stack: the helper
	// runs and returns to the call site. The helper touches probe line
	// 2+r1 and the post-return code line 4+r1.
	c := newUserCore(t, model.Broadwell())
	a := isa.NewAsm()
	a.Jmp("start")
	a.Label("helper")
	a.Mov(isa.R5, isa.R1)
	a.AddI(isa.R5, 2)
	a.ShlI(isa.R5, 6)
	a.AddI(isa.R5, probeBase)
	a.Load(isa.R6, isa.R5, 0)
	a.Ret()
	a.Label("start")
	emitTrainedMispredict(a, func(a *isa.Asm) {
		a.Call("helper")
		a.Mov(isa.R5, isa.R1)
		a.AddI(isa.R5, 4)
		a.ShlI(isa.R5, 6)
		a.AddI(isa.R5, probeBase)
		a.Load(isa.R7, isa.R5, 0)
	})
	run(t, c, a.MustAssemble(codeBase))
	if !c.L1.Probe(probeBase + 3*64) {
		t.Error("transient CALL did not execute the helper (line 3)")
	}
	if !c.L1.Probe(probeBase + 5*64) {
		t.Error("transient RET did not return to the call site (line 5)")
	}
}

func TestSpecEnabledFalseStopsAllWindows(t *testing.T) {
	c := newUserCore(t, model.Broadwell())
	c.SpecEnabled = false
	if c.PMC.Read(pmc.ArithDividerActive) != 0 {
		t.Fatal("dirty counters")
	}
	// Even a direct speculate call is a no-op.
	c.speculate(codeBase, nil)
}

func TestFusedCmovGuardsFree(t *testing.T) {
	run := func(fused bool) uint64 {
		c := newUserCore(t, model.IceLakeServer())
		c.FusedCmovGuards = fused
		a := isa.NewAsm()
		a.MovI(isa.R9, 100)
		a.Label("loop")
		a.CmpI(isa.R9, 50)
		a.CmovGe(isa.R1, isa.R9)
		a.CmovLt(isa.R2, isa.R9)
		a.SubI(isa.R9, 1)
		a.CmpI(isa.R9, 0)
		a.Jne("loop")
		a.Hlt()
		run(t, c, a.MustAssemble(codeBase))
		return c.Cycles
	}
	plain := run(false)
	fused := run(true)
	if fused >= plain {
		t.Errorf("fused (%d) should be cheaper than plain (%d)", fused, plain)
	}
	if plain-fused != 200 {
		t.Errorf("fusion saved %d cycles, want exactly 200 (2 cmovs × 100 iters)", plain-fused)
	}
}

func TestResetPreservesProgramsAndMemory(t *testing.T) {
	c := newUserCore(t, model.Zen())
	a := isa.NewAsm()
	a.MovI(isa.R1, 7)
	a.Hlt()
	p := a.MustAssemble(codeBase)
	run(t, c, p)
	c.Phys.Write64(dataBase, 123)
	c.Reset()
	if c.Regs[isa.R1] != 0 {
		t.Error("Reset did not clear registers")
	}
	if c.Phys.Read64(dataBase) != 123 {
		t.Error("Reset must not clear memory")
	}
	c.PC = codeBase
	if err := c.RunUntilHalt(100); err != nil {
		t.Fatalf("re-run after reset: %v", err)
	}
}

func TestLoadProgramReplacesSameBase(t *testing.T) {
	c := newUserCore(t, model.Zen())
	a1 := isa.NewAsm()
	a1.MovI(isa.R1, 1)
	a1.Hlt()
	a2 := isa.NewAsm()
	a2.MovI(isa.R1, 2)
	a2.Hlt()
	c.LoadProgram(a1.MustAssemble(codeBase))
	c.LoadProgram(a2.MustAssemble(codeBase)) // JIT recompilation path
	c.PC = codeBase
	if err := c.RunUntilHalt(10); err != nil {
		t.Fatal(err)
	}
	if c.Regs[isa.R1] != 2 {
		t.Errorf("r1 = %d; replacement program did not run", c.Regs[isa.R1])
	}
}

func TestArchCapsMSR(t *testing.T) {
	cases := []struct {
		m        *model.CPU
		meltdown bool
		mds      bool
		eibrs    bool
	}{
		{model.Broadwell(), false, false, false},
		{model.CascadeLake(), true, false, true},
		{model.IceLakeServer(), true, true, true},
		{model.Zen3(), true, true, false},
	}
	for _, cs := range cases {
		c := New(cs.m)
		caps := c.MSR(MSRArchCaps)
		if got := caps&ArchCapRDCLNoMeltdown != 0; got != cs.meltdown {
			t.Errorf("%s: RDCL_NO = %v", cs.m.Uarch, got)
		}
		if got := caps&ArchCapMDSNo != 0; got != cs.mds {
			t.Errorf("%s: MDS_NO = %v", cs.m.Uarch, got)
		}
		if got := caps&ArchCapIBRSAll != 0; got != cs.eibrs {
			t.Errorf("%s: IBRS_ALL = %v", cs.m.Uarch, got)
		}
		// The SSB_NO bit is never set (§4.3).
		if caps&ArchCapSSBNo != 0 {
			t.Errorf("%s: SSB_NO set; no shipping CPU reports it", cs.m.Uarch)
		}
		// ArchCaps is read-only even via SetMSR.
		c.SetMSR(MSRArchCaps, 0)
		if c.MSR(MSRArchCaps) != caps {
			t.Errorf("%s: ARCH_CAPABILITIES is writable", cs.m.Uarch)
		}
	}
}

func TestFaultErrorAndStrings(t *testing.T) {
	f := Fault{Kind: FaultPage, VA: 0x1234, PC: 0x4000}
	if !strings.Contains(f.Error(), "page-fault") || !strings.Contains(f.Error(), "0x1234") {
		t.Errorf("fault error: %s", f.Error())
	}
	for _, k := range []FaultKind{FaultNone, FaultPage, FaultFPUDisabled, FaultInvalidOp, FaultDivide, FaultGP} {
		if k.String() == "" {
			t.Errorf("kind %d has empty string", k)
		}
	}
	if PrivUser.String() != "user" || PrivKernel.String() != "kernel" {
		t.Error("priv strings")
	}
}

func TestMemFaultKinds(t *testing.T) {
	// Write to a read-only page (code) faults as a page fault.
	c := newUserCore(t, model.Broadwell())
	var got Fault
	c.OnTrap = func(_ *Core, f Fault) TrapAction { got = f; return TrapSkip }
	a := isa.NewAsm()
	a.MovI(isa.R1, codeBase)
	a.MovI(isa.R2, 1)
	a.Store(isa.R1, 0, isa.R2)
	a.Hlt()
	run(t, c, a.MustAssemble(codeBase))
	if got.Kind != FaultPage || got.Access != mem.AccessWrite {
		t.Errorf("fault = %+v", got)
	}
}

func TestOnRetireTraceHook(t *testing.T) {
	c := newUserCore(t, model.Zen())
	var trace []string
	c.OnRetire = func(pc uint64, in *isa.Instruction) {
		trace = append(trace, in.Op.String())
	}
	a := isa.NewAsm()
	a.MovI(isa.R1, 1)
	a.AddI(isa.R1, 2)
	a.Hlt()
	run(t, c, a.MustAssemble(codeBase))
	want := []string{"movi", "addi", "hlt"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Errorf("trace[%d] = %q, want %q", i, trace[i], want[i])
		}
	}
}

func TestOnRetireDoesNotSeeTransient(t *testing.T) {
	// The hook observes committed instructions only: a mispredicted
	// branch's wrong path must leave no trace entries.
	c := newUserCore(t, model.Broadwell())
	divs := 0
	c.OnRetire = func(_ uint64, in *isa.Instruction) {
		if in.Op == isa.DIV {
			divs++
		}
	}
	a := isa.NewAsm()
	emitTrainedMispredict(a, func(a *isa.Asm) {
		// Gadget: only ever divides during training (r1=0 → divisor 4);
		// the transient run (r1=1) also "executes" it, but must not
		// appear in the trace.
		a.MovI(isa.R5, 100)
		a.MovI(isa.R6, 4)
		a.Div(isa.R5, isa.R6)
	})
	run(t, c, a.MustAssemble(codeBase))
	if divs != 8 {
		t.Errorf("trace saw %d divs, want exactly the 8 architectural ones", divs)
	}
}
