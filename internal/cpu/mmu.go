package cpu

import (
	"spectrebench/internal/faultinject"
	"spectrebench/internal/mem"
	"spectrebench/internal/pmc"
)

// crossesPage reports whether an 8-byte access at va straddles a page
// boundary. The simulator's data path is 8 bytes wide and translates one
// page per access, so a straddling access cannot be satisfied; the core
// raises FaultAlign and lets the kernel trap path decide (it kills the
// offending process, like a real kernel delivering SIGBUS).
func crossesPage(va uint64) bool {
	return va&mem.PageMask > mem.PageSize-8
}

// xlate translates a virtual address for the given access, charging TLB
// and page-walk costs when charge is true (architectural accesses).
// Transient lookups pass charge=false: speculation does not stall the
// committed stream, but it does install TLB entries and leave the PTE
// visible to the leak models.
func (c *Core) xlate(va uint64, acc mem.Access, charge bool) (pa uint64, pte mem.PTE, fault mem.FaultKind) {
	vpn := mem.VPN(va)
	user := c.Priv == PrivUser

	if c.MemFast {
		// Last-translation cache: if the entry that served this access
		// stream's previous translation is provably still the scan's
		// first match (same VPN, same CR3, unchanged TLB generation),
		// replay the hit against it — identical LRU/Hits bookkeeping via
		// Rehit, identical injector draw, identical permission check —
		// and skip both the registry lookup and the set scan. The
		// registry lookup is skipped soundly: the cache was filled after
		// a translation under this exact CR3, and registry bindings are
		// never removed, so PageTable() cannot have become nil.
		xc := &c.xcData
		if acc == mem.AccessFetch {
			xc = &c.xcFetch
		}
		if xc.hit(c, vpn) {
			pte = c.TLB.Rehit(xc.e)
			if charge && c.FI.Fire(faultinject.TLBGlitch) {
				// Injected weather: a shootdown IPI lands between lookup
				// and use; drop the entry and take the walk below. (The
				// flush bumps the TLB generation, emptying this cache.)
				c.TLB.FlushVPN(vpn)
				return c.xlateWalk(c.PageTable(), va, vpn, mem.CR3PCID(c.CR3), user, acc, charge)
			}
			fault = checkPTE(pte, acc, user)
			if fault != mem.FaultNone {
				return 0, pte, fault
			}
			return pte.Phys | (va & mem.PageMask), pte, mem.FaultNone
		}
	}

	pt := c.PageTable()
	if pt == nil {
		return 0, mem.PTE{}, mem.FaultNotPresent
	}
	pcid := mem.CR3PCID(c.CR3)

	if e, ok := c.TLB.LookupH(vpn, pcid); ok {
		if charge && c.FI.Fire(faultinject.TLBGlitch) {
			// Injected weather: a shootdown IPI lands between lookup
			// and use; drop the entry and take the walk below.
			c.TLB.FlushVPN(vpn)
		} else {
			if c.MemFast {
				if acc == mem.AccessFetch {
					c.xcFetch.fill(c, vpn, e)
				} else {
					c.xcData.fill(c, vpn, e)
				}
			}
			pte = e.PTE()
			fault = checkPTE(pte, acc, user)
			if fault != mem.FaultNone {
				return 0, pte, fault
			}
			return pte.Phys | (va & mem.PageMask), pte, mem.FaultNone
		}
	}

	return c.xlateWalk(pt, va, vpn, pcid, user, acc, charge)
}

// xlateWalk is the TLB-miss tail of xlate: charge the walk, translate
// through the active page table (and the nested table for guests), and
// install the result. The decoded-block fetch path calls it directly
// after its own pinned-set TLB probe misses, so miss handling is one
// shared code path with identical counters and charges.
func (c *Core) xlateWalk(pt *mem.PageTable, va, vpn uint64, pcid uint16, user bool, acc mem.Access, charge bool) (pa uint64, pte mem.PTE, fault mem.FaultKind) {
	if charge {
		c.charge(c.Model.Costs.TLBMiss)
		c.PMC.Add(pmc.TLBMisses, 1)
	}
	pa, pte, fault = pt.Translate(va, acc, user)
	if fault != mem.FaultNone {
		return 0, pte, fault
	}
	// Nested translation when running as a guest.
	if c.Guest && c.Nested != nil {
		hpa, nfault := c.Nested.Translate(pa, acc)
		if nfault != mem.FaultNone {
			return 0, pte, nfault
		}
		pa = hpa
		pte.Phys = mem.PageBase(hpa)
	}
	c.TLB.Insert(vpn, pcid, pte)
	return pa, pte, mem.FaultNone
}

func checkPTE(pte mem.PTE, acc mem.Access, user bool) mem.FaultKind {
	if !pte.Present {
		return mem.FaultNotPresent
	}
	if user && !pte.User {
		return mem.FaultProtection
	}
	if acc == mem.AccessWrite && !pte.Writable {
		return mem.FaultWrite
	}
	if acc == mem.AccessFetch && pte.NX {
		return mem.FaultNX
	}
	return mem.FaultNone
}

// load performs an architectural 8-byte load, charging cache latency and
// modelling store-to-load forwarding. When the load forwards from an
// in-flight store on an SSB-vulnerable part with SSBD off, ssbStale
// returns the stale pre-store value the disambiguation hardware would
// transiently expose; the executor runs the transient window with it.
func (c *Core) load(va uint64) (v uint64, ssbStale *uint64, fault *Fault) {
	c.lastLoadRet = c.Instret
	if crossesPage(va) {
		return 0, nil, &Fault{Kind: FaultAlign, VA: va, Access: mem.AccessRead, PC: c.PC}
	}
	pa, pte, mf := c.xlate(va, mem.AccessRead, true)
	if mf != mem.FaultNone {
		// A faulting architectural load is the trigger point for the
		// Meltdown family. The transient continuation runs before the
		// fault is delivered; the executor calls faultingLoadLeak with
		// the destination register context.
		c.pendingLeak = pendingLeak{va: va, pte: pte, kind: mf, valid: true}
		return 0, nil, &Fault{Kind: FaultPage, VA: va, Access: mem.AccessRead, PC: c.PC}
	}

	if e, hit := c.SB.Lookup(pa); hit {
		// Store-to-load forwarding.
		if c.SSBDActive() && e.Age < 2 {
			// SSBD: a load aliasing a just-issued store (whose address
			// may still be unresolved) must wait for disambiguation
			// instead of forwarding optimistically (§5.5). Older
			// in-flight stores have resolved and forward normally.
			c.charge(c.Model.Costs.SSBDForwardStall)
		} else {
			c.charge(c.Model.Costs.StoreForwardCycle)
			if !c.SSBDActive() && c.SpecEnabled && c.Model.Vulns.SSB && e.Prev != e.Value {
				// Speculative Store Bypass: memory disambiguation
				// speculates the load does not alias the in-flight
				// store, transiently using the stale memory value. The
				// executor consults the disambiguation predictor before
				// actually opening the window; SSBD suppresses the
				// bypass entirely.
				stale := e.Prev
				ssbStale = &stale
			}
		}
		c.FB.Deposit(e.Value)
		return e.Value, ssbStale, nil
	}

	missesBefore := c.L1.Misses
	c.charge(c.L1.Access(pa))
	if c.L1.Misses > missesBefore {
		c.PMC.Add(pmc.L1Misses, 1)
	}
	v = c.Phys.Read64(pa)
	c.FB.Deposit(v)
	if c.FI.Fire(faultinject.CacheEvict) {
		// Injected weather: the line is evicted right after use (an
		// imaginary sibling's conflict miss); the next access re-fills.
		c.L1.Flush(pa)
	}
	return v, nil, nil
}

// store performs an architectural 8-byte store. The value is written
// through to physical memory immediately (architectural state is always
// current); the store buffer entry models the forwarding window.
func (c *Core) store(va uint64, v uint64) *Fault {
	if crossesPage(va) {
		return &Fault{Kind: FaultAlign, VA: va, Access: mem.AccessWrite, PC: c.PC}
	}
	pa, _, mf := c.xlate(va, mem.AccessWrite, true)
	if mf != mem.FaultNone {
		return &Fault{Kind: FaultPage, VA: va, Access: mem.AccessWrite, PC: c.PC}
	}
	prev := c.Phys.Read64(pa)
	c.Phys.Write64(pa, v)
	c.SB.Insert(pa, v, prev)
	c.lastStoreRet = c.Instret
	c.charge(c.L1.Access(pa))
	c.FB.Deposit(v)
	return nil
}

// pendingLeak records the translation state of a faulting load so the
// executor can run the Meltdown-family transient window with register
// context before delivering the fault.
type pendingLeak struct {
	va    uint64
	pte   mem.PTE
	kind  mem.FaultKind
	valid bool
}

// leakValue resolves what a faulting load transiently observes:
//
//   - Meltdown: user access to a present supervisor page transiently
//     returns the real data on vulnerable parts. PTI removes the
//     mapping entirely, so the walk yields not-present and nothing
//     leaks.
//   - L1TF: access through a non-present PTE transiently returns L1
//     contents addressed by the PTE's frame bits on vulnerable parts.
//     PTE inversion points the frame at an uncacheable address.
//   - MDS: any faulting load on a vulnerable part can transiently
//     observe stale fill-buffer contents, regardless of address.
//
// ok is false when the part leaks nothing (fixed hardware, or mitigated
// page tables).
func (c *Core) leakValue(p pendingLeak) (uint64, bool) {
	if !c.SpecEnabled || !p.valid {
		return 0, false
	}
	switch p.kind {
	case mem.FaultProtection:
		if c.Model.Vulns.Meltdown && p.pte.Present {
			return c.Phys.Read64(p.pte.Phys | (p.va & mem.PageMask)), true
		}
	case mem.FaultNotPresent:
		if c.Model.Vulns.L1TF && p.pte.Phys != 0 {
			// The "terminal fault" path: translation stops at the
			// not-present PTE but the frame bits still index the L1.
			pa := p.pte.Phys | (p.va & mem.PageMask)
			if c.L1.Probe(pa) {
				return c.Phys.Read64(pa), true
			}
		}
	}
	if c.Model.Vulns.MDS {
		// Fill-buffer sampling: the faulting load transiently
		// completes with whatever data is in the shared buffers.
		return c.FB.Sample(), true
	}
	return 0, false
}
