package cpu

import "errors"

// smtContentionNum/Den model the per-thread slowdown of simultaneous
// multithreading: two co-running siblings share execution ports, so each
// retires instructions ~50% slower than when running alone — the usual
// SMT yield (two threads ≈ 1.33× one core).
const (
	smtContentionNum = 5
	smtContentionDen = 10
)

// RunSMTPair co-executes two sibling logical cores (created with
// NewSMTSibling so they share the L1, fill buffers and predictors) in
// cycle order: at each step the core that is behind in time runs,
// which interleaves their memory traffic realistically. While both are
// live, each step pays port-contention overhead.
//
// It returns the wall-clock cycles of the pair (the later finisher) and
// stops when both cores halt or maxSteps is exhausted.
//
// The pair deliberately steps per instruction, never through the
// decoded-block fast path: the whole point of the interleaving is that
// each single instruction's cycle charge decides which thread's memory
// traffic hits the shared L1/fill buffers next, and replaying a block
// on one thread would reorder that traffic against the sibling.
func RunSMTPair(a, b *Core, maxSteps int) (uint64, error) {
	if a.L1 != b.L1 || a.FB != b.FB {
		return 0, errors.New("cpu: RunSMTPair needs sibling cores sharing a physical core")
	}
	// Fractional-contention remainders (per core) so sub-cycle charges
	// are not truncated away.
	rem := map[*Core]uint64{}
	for i := 0; i < maxSteps; i++ {
		if a.Halted() && b.Halted() {
			return maxU64(a.Cycles, b.Cycles), nil
		}
		// Pick the runnable core that is earliest in time.
		x := a
		if a.Halted() || (!b.Halted() && b.Cycles < a.Cycles) {
			x = b
		}
		other := a
		if x == a {
			other = b
		}
		before := x.Cycles
		if err := x.Step(); err != nil && !errors.Is(err, ErrHalted) {
			return 0, err
		}
		if !other.Halted() {
			// Port contention while the sibling is live.
			acc := (x.Cycles-before)*smtContentionNum + rem[x]
			x.Charge(acc / smtContentionDen)
			rem[x] = acc % smtContentionDen
		}
	}
	return 0, errors.New("cpu: SMT pair did not finish within the step budget")
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
